#!/usr/bin/env python3
"""Fail when a benchmark run regresses a watched metric vs a checked-in baseline.

Compares records (matched by "name") between a fresh bench JSON emitted by a
bench binary (bench_retrieval -> BENCH_retrieval.json, bench_recall ->
BENCH_recall.json, bench_fig_depth -> BENCH_depth.json, bench_fig_mixed_depth
-> BENCH_mixed_depth.json; schema in docs/BENCH.md) and a baseline checked in
under bench/baselines/. A record regresses when

    current.<metric> < (1 - tolerance) * baseline.<metric>      (--direction higher)
    current.<metric> > (1 + tolerance) * baseline.<metric>      (--direction lower)

for the watched metric (default: qps; any higher-is-better metric works, e.g.
--metric recall_at_10 for the recall gate — and lower-is-better metrics like
bytes_per_row gate with --direction lower, where GROWTH is the regression).
Records missing from either side are reported but do not fail the check
(configs come and go); metric-free records (e.g. the "summary" row) are
skipped.

QPS is machine-dependent: the baseline is only meaningful for the machine
family that produced it (the envelope's "note" field records the host).
Refresh it after intentional perf changes with --update (or by copying the
fresh JSON over the baseline) and commit the new baseline alongside the
change that moved the numbers. recall_at_10 is host-independent — the
kernels are bit-identical across CPUs — so the recall gate runs with a much
tighter tolerance (see the check_bench_regression CMake target).

Usage:
    tools/check_bench_regression.py [--current build/BENCH_retrieval.json]
                                    [--baseline bench/baselines/BENCH_retrieval.baseline.json]
                                    [--metric qps] [--tolerance 0.20] [--update]

Exit status: 0 = no regression, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import os
import shutil
import sys


def load_records(path, role):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        print(f"error: {role} file not found: {path}", file=sys.stderr)
        if role == "current":
            print("hint: run the matching bench binary first (e.g. ./build/bench_retrieval "
                  "writes BENCH_retrieval.json into its working directory)", file=sys.stderr)
        else:
            print("hint: create the baseline from a fresh run with --update "
                  "(then commit it under bench/baselines/)", file=sys.stderr)
        sys.exit(2)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {role} file {path}: {e}", file=sys.stderr)
        sys.exit(2)
    records = doc.get("records")
    if not isinstance(records, list):
        print(f"error: {path} has no 'records' array", file=sys.stderr)
        sys.exit(2)
    by_name = {}
    for rec in records:
        name = rec.get("name")
        if isinstance(name, str):
            by_name[name] = rec
    return doc.get("bench", "?"), by_name


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", default="build/BENCH_retrieval.json",
                        help="fresh bench JSON (default: %(default)s)")
    parser.add_argument("--baseline",
                        default="bench/baselines/BENCH_retrieval.baseline.json",
                        help="checked-in baseline JSON (default: %(default)s)")
    parser.add_argument("--metric", default="qps",
                        help="metric to watch (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop (--direction higher) or growth "
                             "(--direction lower) before failing (default: %(default)s)")
    parser.add_argument("--direction", choices=("higher", "lower"), default="higher",
                        help="whether the watched metric is higher-is-better (qps, recall) "
                             "or lower-is-better (bytes_per_row, latency); default: "
                             "%(default)s")
    parser.add_argument("--report-metric", action="append", default=[],
                        help="additionally print current-vs-baseline for this metric "
                             "WITHOUT gating on it (repeatable; e.g. "
                             "--report-metric prefill_tokens_saved on the e2e bench, "
                             "where the saved-token count is the mechanism being "
                             "tracked but goodput/f1 are the contract)")
    parser.add_argument("--update", action="store_true",
                        help="copy --current over --baseline instead of checking")
    args = parser.parse_args()

    if args.update:
        # Validate before overwriting the baseline, and say exactly what got
        # rewritten — a chained -update sweep over several benches should
        # leave an audit trail of which baselines actually moved.
        bench_cur, current = load_records(args.current, "current")
        try:
            baseline_dir = os.path.dirname(args.baseline)
            if baseline_dir:
                os.makedirs(baseline_dir, exist_ok=True)
            shutil.copyfile(args.current, args.baseline)
        except OSError as e:
            print(f"error: cannot update baseline {args.baseline}: {e}", file=sys.stderr)
            return 2
        print(f"baseline updated: {args.current} -> {args.baseline} "
              f"(bench {bench_cur!r}, {len(current)} records)")
        return 0

    bench_cur, current = load_records(args.current, "current")
    bench_base, baseline = load_records(args.baseline, "baseline")
    if bench_cur != bench_base:
        print(f"warning: bench names differ (current={bench_cur!r}, baseline={bench_base!r})")

    regressions = []
    compared = 0
    for name, base_rec in sorted(baseline.items()):
        base_val = base_rec.get(args.metric)
        if not isinstance(base_val, (int, float)) or base_val <= 0:
            continue
        cur_rec = current.get(name)
        if cur_rec is None:
            print(f"  [gone]  {name}: in baseline only (not failing)")
            continue
        cur_val = cur_rec.get(args.metric)
        if not isinstance(cur_val, (int, float)):
            print(f"  [gone]  {name}: no {args.metric!r} in current run (not failing)")
            continue
        compared += 1
        ratio = cur_val / base_val
        if args.direction == "higher":
            ok = ratio >= 1.0 - args.tolerance
        else:
            ok = ratio <= 1.0 + args.tolerance
        status = "ok" if ok else "REGRESSED"
        print(f"  [{status:>9}] {name}: {args.metric} {base_val:.6g} -> {cur_val:.6g} "
              f"({100.0 * (ratio - 1.0):+.1f}%)")
        if status == "REGRESSED":
            regressions.append(name)
    for name in sorted(set(current) - set(baseline)):
        if isinstance(current[name].get(args.metric), (int, float)):
            print(f"  [new]   {name}: not in baseline (not failing)")

    # Informational metrics: tracked run to run for visibility, never gated.
    for metric in args.report_metric:
        printed = False
        for name, base_rec in sorted(baseline.items()):
            base_val = base_rec.get(metric)
            cur_val = current.get(name, {}).get(metric)
            if not isinstance(base_val, (int, float)) or not isinstance(cur_val, (int, float)):
                continue
            if not printed:
                print(f"  -- {metric} (informational, not gated) --")
                printed = True
            delta = ""
            if base_val > 0:
                delta = f" ({100.0 * (cur_val / base_val - 1.0):+.1f}%)"
            print(f"  [info] {name}: {metric} {base_val:.6g} -> {cur_val:.6g}{delta}")

    if compared == 0:
        print("error: no records with the watched metric in common", file=sys.stderr)
        return 2
    if regressions:
        print(f"\nFAIL: {len(regressions)}/{compared} record(s) regressed {args.metric} by more "
              f"than {100.0 * args.tolerance:.0f}%: {', '.join(regressions)}")
        return 1
    print(f"\nOK: {compared} record(s) within {100.0 * args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
