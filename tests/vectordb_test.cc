// Unit tests for the vector database: flat index, IVF index, chunk store.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

Embedding MakeVec(std::initializer_list<float> xs) { return Embedding(xs); }

TEST(FlatL2IndexTest, FindsExactNearest) {
  FlatL2Index index(2);
  index.Add(0, MakeVec({0.0f, 0.0f}));
  index.Add(1, MakeVec({1.0f, 0.0f}));
  index.Add(2, MakeVec({0.0f, 2.0f}));
  auto hits = index.Search(MakeVec({0.9f, 0.1f}), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1);
  EXPECT_EQ(hits[1].id, 0);
  EXPECT_LT(hits[0].distance, hits[1].distance);
}

TEST(FlatL2IndexTest, KLargerThanSizeReturnsAll) {
  FlatL2Index index(2);
  index.Add(5, MakeVec({1.0f, 1.0f}));
  auto hits = index.Search(MakeVec({0.0f, 0.0f}), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 5);
}

TEST(FlatL2IndexTest, TiesBrokenByInsertionOrder) {
  FlatL2Index index(1);
  index.Add(7, MakeVec({1.0f}));
  index.Add(3, MakeVec({1.0f}));
  auto hits = index.Search(MakeVec({0.0f}), 2);
  EXPECT_EQ(hits[0].id, 7);
  EXPECT_EQ(hits[1].id, 3);
}

TEST(FlatL2IndexTest, EmptyIndexReturnsNothing) {
  FlatL2Index index(3);
  EXPECT_TRUE(index.Search(MakeVec({0.0f, 0.0f, 0.0f}), 4).empty());
}

class IvfIndexTest : public ::testing::Test {
 protected:
  // Two well-separated clusters around (0,0) and (10,10).
  void BuildClusters(IvfL2Index& index) {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
      float cx = i < 25 ? 0.0f : 10.0f;
      index.Add(i, MakeVec({cx + static_cast<float>(rng.Uniform(-0.5, 0.5)),
                            cx + static_cast<float>(rng.Uniform(-0.5, 0.5))}));
    }
    index.Train();
  }
};

TEST_F(IvfIndexTest, AgreesWithFlatOnClusteredData) {
  IvfL2Index ivf(2, 2, 2, 99);
  BuildClusters(ivf);
  EXPECT_TRUE(ivf.trained());
  EXPECT_EQ(ivf.size(), 50u);
  auto hits = ivf.Search(MakeVec({10.0f, 10.0f}), 5);
  ASSERT_EQ(hits.size(), 5u);
  for (const auto& h : hits) {
    EXPECT_GE(h.id, 25);  // All from the (10,10) cluster.
  }
}

TEST_F(IvfIndexTest, NprobeOneStillFindsOwnCluster) {
  IvfL2Index ivf(2, 2, 1, 99);
  BuildClusters(ivf);
  auto hits = ivf.Search(MakeVec({0.0f, 0.0f}), 3);
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& h : hits) {
    EXPECT_LT(h.id, 25);
  }
}

TEST_F(IvfIndexTest, AddAfterTrainGoesToNearestList) {
  IvfL2Index ivf(2, 2, 2, 99);
  BuildClusters(ivf);
  ivf.Add(100, MakeVec({10.2f, 9.8f}));
  auto hits = ivf.Search(MakeVec({10.2f, 9.8f}), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 100);
}

TEST(FlatL2IndexTest, SearchBatchMatchesPerQuerySearch) {
  FlatL2Index index(2);
  index.Add(0, MakeVec({0.0f, 0.0f}));
  index.Add(1, MakeVec({1.0f, 0.0f}));
  index.Add(2, MakeVec({0.0f, 2.0f}));
  std::vector<Embedding> queries = {MakeVec({0.9f, 0.1f}), MakeVec({0.0f, 1.9f})};
  auto batched = index.SearchBatch(queries, 2);
  ASSERT_EQ(batched.size(), 2u);
  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = index.Search(queries[q], 2);
    ASSERT_EQ(batched[q].size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, single[i].id);
      EXPECT_EQ(batched[q][i].distance, single[i].distance);
    }
  }
}

TEST_F(IvfIndexTest, SizeIsMaintainedAcrossStagingTrainingAndAdds) {
  IvfL2Index ivf(2, 2, 2, 99);
  EXPECT_EQ(ivf.size(), 0u);
  BuildClusters(ivf);  // 50 staged adds, then Train().
  EXPECT_EQ(ivf.size(), 50u);
  ivf.Add(100, MakeVec({10.2f, 9.8f}));
  ivf.Add(101, MakeVec({0.1f, -0.2f}));
  EXPECT_EQ(ivf.size(), 52u);
}

TEST(IvfIndexTest2, ProbeHistogramClampsDeepScansIntoLastBucket) {
  // nlist wider than the histogram (70 > 65 buckets): a full-width probe must
  // clamp into the last bucket — never index past the array — while the raw
  // probes_issued() tally stays exact.
  constexpr size_t kNlist = IvfL2Index::kProbeHistogramBuckets + 5;
  IvfL2Index ivf(2, kNlist, /*nprobe=*/1, /*seed=*/99);
  Rng rng(11);
  for (int i = 0; i < 280; ++i) {
    ivf.Add(i, MakeVec({static_cast<float>(rng.Uniform(0.0, 10.0)),
                        static_cast<float>(rng.Uniform(0.0, 10.0))}));
  }
  ivf.Train();

  RetrievalQuality full;
  full.mode = RetrievalQuality::ProbeMode::kFixed;
  full.nprobe = kNlist;
  ASSERT_FALSE(ivf.Search(MakeVec({5.0f, 5.0f}), 3, full).empty());

  std::vector<uint64_t> hist = ivf.probe_histogram();
  ASSERT_EQ(hist.size(), IvfL2Index::kProbeHistogramBuckets);
  EXPECT_EQ(hist.back(), 1u);
  uint64_t below_clamp = 0;
  for (size_t b = 0; b + 1 < hist.size(); ++b) {
    below_clamp += hist[b];
  }
  EXPECT_EQ(below_clamp, 0u);
  EXPECT_EQ(ivf.searches(), 1u);
  EXPECT_EQ(ivf.probes_issued(), kNlist);
}

TEST(IvfIndexDeathTest, SearchBeforeTrainAborts) {
  IvfL2Index ivf(2, 2, 1, 1);
  ivf.Add(0, MakeVec({0.0f, 0.0f}));
  EXPECT_DEATH(ivf.Search(MakeVec({0.0f, 0.0f}), 1), "CHECK failed");
}

class VectorDatabaseTest : public ::testing::Test {
 protected:
  VectorDatabaseTest()
      : db_(EmbeddingModel(GetEmbeddingModel("cohere-embed-v3-sim")),
            DatabaseMetadata{"test corpus", 64, "test"}) {}

  VectorDatabase db_;
};

TEST_F(VectorDatabaseTest, AddAssignsSequentialIds) {
  Chunk a;
  a.text = "alpha beta";
  Chunk b;
  b.text = "gamma delta";
  EXPECT_EQ(db_.AddChunk(a), 0);
  EXPECT_EQ(db_.AddChunk(b), 1);
  EXPECT_EQ(db_.num_chunks(), 2u);
  EXPECT_EQ(db_.chunk(1).text, "gamma delta");
}

TEST_F(VectorDatabaseTest, RetrievePrefersLexicalOverlap) {
  Chunk relevant;
  relevant.text = "the kimbrough stadium county is randall filler words here";
  Chunk noise;
  noise.text = "semiconductor quarterly revenue numbers and more filler words";
  db_.AddChunk(relevant);
  db_.AddChunk(noise);
  auto ids = db_.Retrieve("in what county is the kimbrough stadium", 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0);
}

TEST_F(VectorDatabaseTest, MetadataAccessible) {
  EXPECT_EQ(db_.metadata().chunk_size_tokens, 64);
  EXPECT_EQ(db_.metadata().description, "test corpus");
}

TEST_F(VectorDatabaseTest, ChunkOutOfRangeAborts) {
  EXPECT_DEATH(db_.chunk(0), "CHECK failed");
}

}  // namespace
}  // namespace metis
