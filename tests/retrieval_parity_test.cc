// Parity property tests for the high-throughput retrieval substrate.
//
// The rebuilt vectordb (SoA rows + norm-trick distances + bounded-heap top-k
// + batched/threaded sweeps) must return *exactly* the seed implementation's
// rankings: same ids, same order, including insertion-order tie-breaks on
// duplicate-distance inputs. The reference oracle is the frozen seed copy in
// src/vectordb/seed_reference.h (scalar double-precision loop, materialize
// every candidate, stable_sort, truncate).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/retrieval_batcher.h"
#include "src/sim/simulator.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/seed_reference.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

// Forces one dispatch tier for a scope; restores the startup default on exit.
struct ScopedKernelTarget {
  explicit ScopedKernelTarget(KernelTarget t) { METIS_CHECK(SetKernelTarget(t)); }
  ~ScopedKernelTarget() { ResetKernelTarget(); }
};

std::vector<KernelTarget> SupportedTargets() {
  std::vector<KernelTarget> targets;
  for (KernelTarget t : {KernelTarget::kScalar, KernelTarget::kAvx2, KernelTarget::kAvx512}) {
    if (KernelTargetSupported(t)) {
      targets.push_back(t);
    }
  }
  return targets;
}

void ExpectSameRanking(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
  }
}

// --- Flat parity ------------------------------------------------------------

TEST(RetrievalParityTest, FlatMatchesSeedOnRandomInputs) {
  for (size_t dim : {7u, 64u, 256u}) {
    for (size_t n : {1u, 13u, 400u}) {
      Rng rng(0x5EED ^ (dim * 1315423911u) ^ n);
      FlatL2Index index(dim);
      SeedFlatIndex seed(dim);
      for (size_t i = 0; i < n; ++i) {
        Embedding v = RandomUnitVector(rng, dim);
        // Non-contiguous ids to catch id/row mixups.
        ChunkId id = static_cast<ChunkId>(7 * i + 3);
        index.Add(id, v);
        seed.Add(id, v);
      }
      for (size_t k : {size_t{1}, size_t{7}, n, n + 5}) {
        for (int q = 0; q < 8; ++q) {
          Embedding query = RandomUnitVector(rng, dim);
          ExpectSameRanking(index.Search(query, k), seed.Search(query, k),
                            "dim=" + std::to_string(dim) + " n=" + std::to_string(n) +
                                " k=" + std::to_string(k));
        }
      }
    }
  }
}

TEST(RetrievalParityTest, FlatMatchesSeedOnAdversarialDuplicateDistances) {
  // 150 rows drawn from only 6 distinct vectors: almost everything is an
  // exact distance tie, so any deviation from insertion-order tie-breaking
  // shows up immediately. Queries include the duplicated vectors themselves
  // (distance exactly 0 for whole groups of rows).
  const size_t kDim = 16;
  Rng rng(0xD0D0);
  std::vector<Embedding> basis;
  for (int b = 0; b < 6; ++b) {
    basis.push_back(RandomUnitVector(rng, kDim));
  }
  FlatL2Index index(kDim);
  SeedFlatIndex seed(kDim);
  for (int i = 0; i < 150; ++i) {
    const Embedding& v = basis[static_cast<size_t>(rng.UniformInt(0, 5))];
    index.Add(i, v);
    seed.Add(i, v);
  }
  std::vector<Embedding> queries = basis;
  queries.push_back(RandomUnitVector(rng, kDim));
  for (size_t k : {size_t{3}, size_t{17}, size_t{150}, size_t{200}}) {
    for (size_t q = 0; q < queries.size(); ++q) {
      ExpectSameRanking(index.Search(queries[q], k), seed.Search(queries[q], k),
                        "dup k=" + std::to_string(k) + " q=" + std::to_string(q));
    }
  }
}

TEST(RetrievalParityTest, FlatSearchEdgeCases) {
  FlatL2Index index(4);
  EXPECT_TRUE(index.Search(Embedding(4, 0.0f), 3).empty());  // Empty index.
  index.Add(9, Embedding(4, 0.5f));
  EXPECT_TRUE(index.Search(Embedding(4, 0.0f), 0).empty());  // k == 0.
  auto hits = index.Search(Embedding(4, 0.5f), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 9);
  // Same bits in, same accumulation structure -> exact zero self-distance.
  EXPECT_EQ(hits[0].distance, 0.0f);
}

// --- Kernel dispatch parity --------------------------------------------------
//
// The dispatched dot kernel must return the bit-identical double on every
// tier (scalar / AVX2 / AVX-512): same eight accumulation chains, same
// rounding per element (no FMA), same reduction tree. These tests force each
// CPU-supported tier and compare against the scalar tier exactly.

TEST(KernelDispatchTest, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(KernelTargetSupported(KernelTarget::kScalar));
  // The active tier is one of the supported ones.
  EXPECT_TRUE(KernelTargetSupported(ActiveKernelTarget()));
}

TEST(KernelDispatchTest, ForcingAnUnsupportedTargetIsRejected) {
  for (KernelTarget t : {KernelTarget::kAvx2, KernelTarget::kAvx512}) {
    if (!KernelTargetSupported(t)) {
      KernelTarget before = ActiveKernelTarget();
      EXPECT_FALSE(SetKernelTarget(t));
      EXPECT_EQ(ActiveKernelTarget(), before);
    }
  }
}

TEST(KernelDispatchTest, ForcedTargetBecomesActive) {
  for (KernelTarget t : SupportedTargets()) {
    ScopedKernelTarget scoped(t);
    EXPECT_EQ(ActiveKernelTarget(), t);
    EXPECT_STREQ(KernelTargetName(ActiveKernelTarget()), KernelTargetName(t));
  }
  // Destructor restored the default.
  EXPECT_TRUE(KernelTargetSupported(ActiveKernelTarget()));
}

TEST(KernelDispatchTest, AllTargetsReturnBitIdenticalDots) {
  Rng rng(0x51D5);
  // Dims cover every tail length mod 8, plus production-sized vectors.
  for (size_t n : {1u, 2u, 3u, 5u, 7u, 8u, 9u, 12u, 15u, 16u, 17u, 31u, 64u, 100u, 256u, 257u}) {
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<float> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        // Mixed magnitudes and signs make the rounding sequence matter: any
        // reassociation or contraction difference between tiers shows up.
        double scale = (i % 3 == 0) ? 1e3 : (i % 3 == 1) ? 1.0 : 1e-3;
        a[i] = static_cast<float>(rng.Normal(0, 1) * scale);
        b[i] = static_cast<float>(rng.Normal(0, 1) * scale);
      }
      double want = DotBlockedTarget(KernelTarget::kScalar, a.data(), b.data(), n);
      for (KernelTarget t : SupportedTargets()) {
        double got = DotBlockedTarget(t, a.data(), b.data(), n);
        EXPECT_EQ(got, want) << "target=" << KernelTargetName(t) << " n=" << n
                             << " rep=" << rep;
        // Self-dot parity too (the norm path).
        EXPECT_EQ(DotBlockedTarget(t, a.data(), a.data(), n),
                  DotBlockedTarget(KernelTarget::kScalar, a.data(), a.data(), n))
            << "target=" << KernelTargetName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelDispatchTest, DispatchedEntryPointsFollowTheForcedTarget) {
  Rng rng(0xD15);
  const size_t kN = 77;
  std::vector<float> a(kN), b(kN);
  for (size_t i = 0; i < kN; ++i) {
    a[i] = static_cast<float>(rng.Normal(0, 1));
    b[i] = static_cast<float>(rng.Normal(0, 1));
  }
  double want_dot = DotBlockedTarget(KernelTarget::kScalar, a.data(), b.data(), kN);
  double want_norm = DotBlockedTarget(KernelTarget::kScalar, a.data(), a.data(), kN);
  for (KernelTarget t : SupportedTargets()) {
    ScopedKernelTarget scoped(t);
    EXPECT_EQ(DotBlocked(a.data(), b.data(), kN), want_dot) << KernelTargetName(t);
    EXPECT_EQ(SquaredNormBlocked(a.data(), kN), want_norm) << KernelTargetName(t);
    EXPECT_EQ(ActiveDotKernel()(a.data(), b.data(), kN), want_dot) << KernelTargetName(t);
  }
}

TEST(RetrievalParityTest, FlatSearchIsBitIdenticalAcrossDispatchTargets) {
  // Build once under the default tier (norms are tier-independent), then
  // search the same queries under every supported tier: ids, order, AND float
  // distances must match bit-for-bit — and the ranking must match the seed.
  const size_t kDim = 96;
  Rng rng(0x7A26E7);
  FlatL2Index index(kDim);
  SeedFlatIndex seed(kDim);
  std::vector<Embedding> stored;
  for (int i = 0; i < 240; ++i) {
    // A quarter duplicates: ties must break identically on every tier.
    Embedding v = (i >= 80 && i % 4 == 0) ? stored[static_cast<size_t>(i) / 3]
                                          : RandomUnitVector(rng, kDim);
    stored.push_back(v);
    index.Add(i, v);
    seed.Add(i, v);
  }
  std::vector<Embedding> queries;
  for (int q = 0; q < 12; ++q) {
    queries.push_back(q % 3 == 0 ? stored[static_cast<size_t>(q) * 5]
                                 : RandomUnitVector(rng, kDim));
  }
  const size_t kK = 14;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<SearchHit> scalar_hits;
    {
      ScopedKernelTarget scoped(KernelTarget::kScalar);
      scalar_hits = index.Search(queries[qi], kK);
    }
    ExpectSameRanking(scalar_hits, seed.Search(queries[qi], kK),
                      "scalar vs seed q=" + std::to_string(qi));
    for (KernelTarget t : SupportedTargets()) {
      ScopedKernelTarget scoped(t);
      std::vector<SearchHit> hits = index.Search(queries[qi], kK);
      ASSERT_EQ(hits.size(), scalar_hits.size()) << KernelTargetName(t) << " q=" << qi;
      for (size_t r = 0; r < hits.size(); ++r) {
        EXPECT_EQ(hits[r].id, scalar_hits[r].id)
            << KernelTargetName(t) << " q=" << qi << " rank=" << r;
        EXPECT_EQ(hits[r].distance, scalar_hits[r].distance)
            << KernelTargetName(t) << " q=" << qi << " rank=" << r;
      }
    }
  }
}

TEST(RetrievalParityTest, IvfSearchIsBitIdenticalAcrossDispatchTargets) {
  // IVF adds centroid ranking and per-list scans on top of the kernels; the
  // whole pipeline (train under default tier, search under each tier) must
  // agree bit-for-bit, fixed and adaptive probing alike.
  const size_t kDim = 40;
  Rng rng(0x1F2E3D);
  IvfL2Index ivf(kDim, 12, 4, 2024);
  for (int i = 0; i < 300; ++i) {
    ivf.Add(i, RandomUnitVector(rng, kDim));
  }
  ivf.Train();
  std::vector<Embedding> queries;
  for (int q = 0; q < 10; ++q) {
    queries.push_back(RandomUnitVector(rng, kDim));
  }
  RetrievalQuality adaptive;
  adaptive.mode = RetrievalQuality::ProbeMode::kAdaptive;
  adaptive.nprobe = 8;
  for (const RetrievalQuality& quality : {RetrievalQuality{}, adaptive}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<SearchHit> want;
      {
        ScopedKernelTarget scoped(KernelTarget::kScalar);
        want = ivf.Search(queries[qi], 9, quality);
      }
      for (KernelTarget t : SupportedTargets()) {
        ScopedKernelTarget scoped(t);
        std::vector<SearchHit> got = ivf.Search(queries[qi], 9, quality);
        ASSERT_EQ(got.size(), want.size()) << KernelTargetName(t) << " q=" << qi;
        for (size_t r = 0; r < got.size(); ++r) {
          EXPECT_EQ(got[r].id, want[r].id)
              << KernelTargetName(t) << " q=" << qi << " rank=" << r;
          EXPECT_EQ(got[r].distance, want[r].distance)
              << KernelTargetName(t) << " q=" << qi << " rank=" << r;
        }
      }
    }
  }
}

// --- Batched parity across thread counts ------------------------------------

TEST(RetrievalParityTest, SearchBatchMatchesSeedForEveryThreadCount) {
  const size_t kDim = 48;
  Rng rng(0xBA7C4);
  FlatL2Index index(kDim);
  SeedFlatIndex seed(kDim);
  std::vector<Embedding> stored;
  for (int i = 0; i < 300; ++i) {
    // A third of the rows duplicate an earlier row: ties must survive
    // batching and threading too.
    Embedding v = (i >= 100 && i % 3 == 0) ? stored[static_cast<size_t>(i) / 2]
                                           : RandomUnitVector(rng, kDim);
    stored.push_back(v);
    index.Add(i, v);
    seed.Add(i, v);
  }
  std::vector<Embedding> queries;
  for (int q = 0; q < 33; ++q) {
    queries.push_back(q % 4 == 0 ? stored[static_cast<size_t>(q) * 7]
                                 : RandomUnitVector(rng, kDim));
  }

  const size_t kK = 12;
  std::vector<std::vector<SearchHit>> want;
  want.reserve(queries.size());
  for (const Embedding& q : queries) {
    want.push_back(seed.Search(q, kK));
  }

  // No pool (inline), then pools of 1, 2, 4, 8 workers.
  for (size_t threads : {0u, 1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto got = index.SearchBatch(queries, kK, threads == 0 ? nullptr : &pool);
    ASSERT_EQ(got.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectSameRanking(got[qi], want[qi],
                        "threads=" + std::to_string(threads) + " q=" + std::to_string(qi));
    }
  }
}

// --- IVF --------------------------------------------------------------------

TEST(RetrievalParityTest, IvfExhaustiveProbeMatchesFlatOnTieFreeInputs) {
  // With nprobe == nlist the IVF index scans every row; on tie-free inputs
  // (random distinct vectors) its ranking must equal the flat index's.
  const size_t kDim = 24;
  Rng rng(0x1F1F);
  FlatL2Index flat(kDim);
  IvfL2Index ivf(kDim, 8, 8, 77);
  for (int i = 0; i < 200; ++i) {
    Embedding v = RandomUnitVector(rng, kDim);
    flat.Add(i, v);
    ivf.Add(i, v);
  }
  ivf.Train();
  for (int q = 0; q < 10; ++q) {
    Embedding query = RandomUnitVector(rng, kDim);
    ExpectSameRanking(ivf.Search(query, 15), flat.Search(query, 15), "q=" + std::to_string(q));
  }
}

TEST(RetrievalParityTest, IvfSearchBatchMatchesSequentialSearch) {
  const size_t kDim = 24;
  Rng rng(0xABCD);
  IvfL2Index ivf(kDim, 6, 2, 7);
  for (int i = 0; i < 180; ++i) {
    ivf.Add(i, RandomUnitVector(rng, kDim));
  }
  ivf.Train();
  std::vector<Embedding> queries;
  for (int q = 0; q < 17; ++q) {
    queries.push_back(RandomUnitVector(rng, kDim));
  }
  for (size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto got = ivf.SearchBatch(queries, 9, threads == 0 ? nullptr : &pool);
    ASSERT_EQ(got.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectSameRanking(got[qi], ivf.Search(queries[qi], 9), "q=" + std::to_string(qi));
    }
  }
}

TEST(RetrievalParityTest, IvfTrainIsDeterministicAcrossThreadCounts) {
  const size_t kDim = 32;
  auto build = [&](ThreadPool* pool) {
    Rng rng(0x7A17);
    IvfL2Index ivf(kDim, 10, 3, 123);
    for (int i = 0; i < 250; ++i) {
      ivf.Add(i, RandomUnitVector(rng, kDim));
    }
    ivf.Train(pool);
    return ivf;
  };
  IvfL2Index serial = build(nullptr);
  ThreadPool pool8(8);
  IvfL2Index threaded = build(&pool8);

  Rng qrng(0x9999);
  for (int q = 0; q < 12; ++q) {
    Embedding query = RandomUnitVector(qrng, kDim);
    auto a = serial.Search(query, 11);
    auto b = threaded.Search(query, 11);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "q=" << q << " rank=" << i;
      EXPECT_EQ(a[i].distance, b[i].distance) << "q=" << q << " rank=" << i;
    }
  }
}

// --- Sharded storage parity ---------------------------------------------------
//
// Hash-partitioned IndexShards must be invisible in results: for ANY shard
// count and ANY thread count, ids, order, AND float distances are bit-equal
// to the single-shard index (which is itself seed-parity-tested above). The
// corpora include heavy duplicate groups so cross-shard tie-breaks are
// exercised, and shard count 7 leaves shards unevenly filled.

void ExpectBitEqualHits(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << context << " rank " << i;
  }
}

TEST(ShardedParityTest, FlatShardedBitEqualForAnyShardAndThreadCount) {
  const size_t kDim = 56;
  const size_t kK = 13;
  Rng rng(0x5AA5D);
  std::vector<std::pair<ChunkId, Embedding>> corpus;
  std::vector<Embedding> stored;
  for (int i = 0; i < 320; ++i) {
    // A third duplicates: exact distance ties must break identically no
    // matter which shard each duplicate landed in.
    Embedding v = (i >= 90 && i % 3 == 0) ? stored[static_cast<size_t>(i) / 2]
                                          : RandomUnitVector(rng, kDim);
    stored.push_back(v);
    // Non-contiguous ids: the shard hash and the global order must not be
    // conflated with the id value.
    corpus.emplace_back(static_cast<ChunkId>(5 * i + 2), v);
  }
  std::vector<Embedding> queries;
  for (int q = 0; q < 21; ++q) {
    queries.push_back(q % 4 == 0 ? stored[static_cast<size_t>(q) * 9]
                                 : RandomUnitVector(rng, kDim));
  }

  FlatL2Index reference(kDim, 1);
  for (const auto& [id, v] : corpus) {
    reference.Add(id, v);
  }
  std::vector<std::vector<SearchHit>> want;
  for (const Embedding& q : queries) {
    want.push_back(reference.Search(q, kK));
  }

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    FlatL2Index index(kDim, shards);
    for (const auto& [id, v] : corpus) {
      index.Add(id, v);
    }
    ASSERT_EQ(index.size(), corpus.size());
    // Single-query path (serial across shards, one heap).
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectBitEqualHits(index.Search(queries[qi], kK), want[qi],
                         "search shards=" + std::to_string(shards) + " q=" + std::to_string(qi));
    }
    // Batched path: per-(shard x query) heaps merged, across thread counts.
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ThreadPool pool(threads);
      auto got = index.SearchBatch(queries, kK, &pool);
      ASSERT_EQ(got.size(), queries.size());
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectBitEqualHits(got[qi], want[qi],
                           "batch shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads) +
                               " q=" + std::to_string(qi));
      }
    }
  }
}

TEST(ShardedParityTest, IvfShardedBitEqualForAnyShardAndThreadCount) {
  const size_t kDim = 36;
  const size_t kK = 11;
  Rng rng(0x1C0DE);
  std::vector<std::pair<ChunkId, Embedding>> corpus;
  std::vector<Embedding> stored;
  for (int i = 0; i < 350; ++i) {
    Embedding v = (i >= 120 && i % 4 == 0) ? stored[static_cast<size_t>(i) / 3]
                                           : RandomUnitVector(rng, kDim);
    stored.push_back(v);
    corpus.emplace_back(static_cast<ChunkId>(3 * i + 1), v);
  }
  std::vector<Embedding> queries;
  for (int q = 0; q < 15; ++q) {
    queries.push_back(q % 5 == 0 ? stored[static_cast<size_t>(q) * 11]
                                 : RandomUnitVector(rng, kDim));
  }
  RetrievalQuality adaptive;
  adaptive.mode = RetrievalQuality::ProbeMode::kAdaptive;
  adaptive.nprobe = 6;

  auto build = [&](size_t shards) {
    IvfL2Index ivf(kDim, 9, 3, 4242, shards);
    for (const auto& [id, v] : corpus) {
      ivf.Add(id, v);
    }
    ivf.Train();
    // Post-train adds append through the shard router too.
    for (int i = 0; i < 30; ++i) {
      ivf.Add(static_cast<ChunkId>(2000 + i), stored[static_cast<size_t>(i) * 7]);
    }
    return ivf;
  };

  IvfL2Index reference = build(1);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    IvfL2Index ivf = build(shards);
    ASSERT_EQ(ivf.size(), reference.size());
    for (const RetrievalQuality& quality : {RetrievalQuality{}, adaptive}) {
      std::string mode = quality.mode == RetrievalQuality::ProbeMode::kAdaptive ? "adaptive"
                                                                                : "default";
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectBitEqualHits(ivf.Search(queries[qi], kK, quality),
                           reference.Search(queries[qi], kK, quality),
                           "ivf search shards=" + std::to_string(shards) + " mode=" + mode +
                               " q=" + std::to_string(qi));
      }
      for (size_t threads : {size_t{1}, size_t{4}}) {
        ThreadPool pool(threads);
        auto got = ivf.SearchBatch(queries, kK, &pool, quality);
        auto want = reference.SearchBatch(queries, kK, nullptr, quality);
        ASSERT_EQ(got.size(), want.size());
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ExpectBitEqualHits(got[qi], want[qi],
                             "ivf batch shards=" + std::to_string(shards) + " mode=" + mode +
                                 " threads=" + std::to_string(threads) +
                                 " q=" + std::to_string(qi));
        }
      }
    }
  }
}

TEST(ShardedParityTest, ShardedProbeAccountingMatchesSingleShard) {
  // The probe planner is shard-blind: mean_probes must not depend on the
  // shard count, in either fixed or adaptive mode.
  const size_t kDim = 20;
  Rng rng(0xFACE5);
  std::vector<Embedding> corpus;
  for (int i = 0; i < 240; ++i) {
    corpus.push_back(RandomUnitVector(rng, kDim));
  }
  std::vector<Embedding> queries;
  for (int q = 0; q < 12; ++q) {
    queries.push_back(RandomUnitVector(rng, kDim));
  }
  RetrievalQuality adaptive;
  adaptive.mode = RetrievalQuality::ProbeMode::kAdaptive;
  adaptive.nprobe = 5;
  std::vector<double> fixed_means;
  std::vector<double> adaptive_means;
  for (size_t shards : {size_t{1}, size_t{4}}) {
    IvfL2Index ivf(kDim, 8, 2, 99, shards);
    for (size_t i = 0; i < corpus.size(); ++i) {
      ivf.Add(static_cast<ChunkId>(i), corpus[i]);
    }
    ivf.Train();
    ivf.SearchBatch(queries, 5, nullptr);
    fixed_means.push_back(ivf.mean_probes());
    ivf.ResetProbeStats();
    ivf.SearchBatch(queries, 5, nullptr, adaptive);
    adaptive_means.push_back(ivf.mean_probes());
  }
  EXPECT_EQ(fixed_means[0], fixed_means[1]);
  EXPECT_EQ(fixed_means[0], 2.0);  // Fixed nprobe=2 probes exactly 2 lists.
  EXPECT_EQ(adaptive_means[0], adaptive_means[1]);
}

TEST(ShardedParityTest, ShardOfIdIsStableAndInRange) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    for (ChunkId id = 0; id < 100; ++id) {
      size_t s = ShardOfId(id, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardOfId(id, shards));  // Pure function of (id, shards).
    }
  }
  EXPECT_EQ(ShardOfId(12345, 1), 0u);
}

// --- Database-level batching + memo cache ------------------------------------

std::unique_ptr<VectorDatabase> MakeDb() {
  auto db = std::make_unique<VectorDatabase>(
      EmbeddingModel(GetEmbeddingModel("all-mpnet-base-v2-sim")),
      DatabaseMetadata{"parity corpus", 64, "test"});
  const char* texts[] = {
      "the kimbrough stadium sits in randall county texas",
      "quarterly semiconductor revenue beat analyst expectations",
      "the committee meeting adjourned after the budget vote",
      "rainfall totals in the river basin broke the seasonal record",
      "the stadium hosted the county championship game in randall",
      "chip fabrication capacity expanded across three new plants",
  };
  for (const char* t : texts) {
    Chunk c;
    c.text = t;
    db->AddChunk(std::move(c));
  }
  return db;
}

TEST(RetrievalParityTest, RetrieveBatchMatchesSequentialRetrieve) {
  std::unique_ptr<VectorDatabase> dbp = MakeDb();
  VectorDatabase& db = *dbp;
  std::vector<std::string> queries = {
      "what county is the kimbrough stadium in",
      "semiconductor revenue this quarter",
      "what county is the kimbrough stadium in",  // Repeat: exercises the cache.
      "budget vote at the committee meeting",
  };
  auto batched = db.RetrieveBatch(queries, 4);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto direct = db.RetrieveWithDistances(queries[i], 4);
    ExpectSameRanking(batched[i], direct, "query " + std::to_string(i));
  }
  // 4 unique texts total across both passes; everything else was memoized.
  EXPECT_GT(db.query_cache_hits(), 0u);
}

TEST(RetrievalParityTest, TruncatedBatchWidthIsAPrefixOfWiderSearch) {
  // The batcher serves mixed-k groups from one max-k sweep; that is only
  // sound if top-k lists are prefix-consistent.
  std::unique_ptr<VectorDatabase> dbp = MakeDb();
  VectorDatabase& db = *dbp;
  auto wide = db.RetrieveWithDistances("stadium county game", 6);
  for (size_t k = 1; k <= 6; ++k) {
    auto narrow = db.RetrieveWithDistances("stadium county game", k);
    ASSERT_EQ(narrow.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(narrow[i].id, wide[i].id) << "k=" << k << " rank=" << i;
    }
  }
}

TEST(RetrievalParityTest, RetrievalBatcherCoalescesSameTickRequests) {
  std::unique_ptr<VectorDatabase> dbp = MakeDb();
  VectorDatabase& db = *dbp;
  Simulator sim;
  RetrievalBatcher batcher(&sim, &db, 0.004);

  struct Got {
    SimTime at = -1;
    std::vector<ChunkId> ids;
  };
  std::vector<Got> got(4);
  std::vector<std::string> queries = {
      "what county is the kimbrough stadium in",
      "semiconductor revenue this quarter",
      "budget vote at the committee meeting",
      "rainfall in the river basin",
  };
  // Three requests at t=0 (with different k!), one more at t=0.001.
  for (size_t i = 0; i < 3; ++i) {
    batcher.Submit(queries[i], i + 1, [&, i](std::vector<ChunkId> ids) {
      got[i].at = sim.now();
      got[i].ids = std::move(ids);
    });
  }
  sim.ScheduleAt(0.001, [&]() {
    batcher.Submit(queries[3], 2, [&](std::vector<ChunkId> ids) {
      got[3].at = sim.now();
      got[3].ids = std::move(ids);
    });
  });
  sim.Run();

  // Timing is exactly Submit + delay, per request.
  EXPECT_DOUBLE_EQ(got[0].at, 0.004);
  EXPECT_DOUBLE_EQ(got[1].at, 0.004);
  EXPECT_DOUBLE_EQ(got[2].at, 0.004);
  EXPECT_DOUBLE_EQ(got[3].at, 0.005);
  // The same-tick trio shared one sweep; the straggler got its own.
  EXPECT_EQ(batcher.requests(), 4u);
  EXPECT_EQ(batcher.batches_issued(), 2u);
  EXPECT_EQ(batcher.max_batch_size(), 3u);
  // Results identical to direct per-query retrieval at the requested widths.
  for (size_t i = 0; i < 4; ++i) {
    size_t k = i < 3 ? i + 1 : 2;
    EXPECT_EQ(got[i].ids, db.Retrieve(queries[i], k)) << "request " << i;
  }
}

}  // namespace
}  // namespace metis
