// Parity property tests for the high-throughput retrieval substrate.
//
// The rebuilt vectordb (SoA rows + norm-trick distances + bounded-heap top-k
// + batched/threaded sweeps) must return *exactly* the seed implementation's
// rankings: same ids, same order, including insertion-order tie-breaks on
// duplicate-distance inputs. The reference oracle is the frozen seed copy in
// src/vectordb/seed_reference.h (scalar double-precision loop, materialize
// every candidate, stable_sort, truncate).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/retrieval_batcher.h"
#include "src/sim/simulator.h"
#include "src/vectordb/seed_reference.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

void ExpectSameRanking(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
  }
}

// --- Flat parity ------------------------------------------------------------

TEST(RetrievalParityTest, FlatMatchesSeedOnRandomInputs) {
  for (size_t dim : {7u, 64u, 256u}) {
    for (size_t n : {1u, 13u, 400u}) {
      Rng rng(0x5EED ^ (dim * 1315423911u) ^ n);
      FlatL2Index index(dim);
      SeedFlatIndex seed(dim);
      for (size_t i = 0; i < n; ++i) {
        Embedding v = RandomUnitVector(rng, dim);
        // Non-contiguous ids to catch id/row mixups.
        ChunkId id = static_cast<ChunkId>(7 * i + 3);
        index.Add(id, v);
        seed.Add(id, v);
      }
      for (size_t k : {size_t{1}, size_t{7}, n, n + 5}) {
        for (int q = 0; q < 8; ++q) {
          Embedding query = RandomUnitVector(rng, dim);
          ExpectSameRanking(index.Search(query, k), seed.Search(query, k),
                            "dim=" + std::to_string(dim) + " n=" + std::to_string(n) +
                                " k=" + std::to_string(k));
        }
      }
    }
  }
}

TEST(RetrievalParityTest, FlatMatchesSeedOnAdversarialDuplicateDistances) {
  // 150 rows drawn from only 6 distinct vectors: almost everything is an
  // exact distance tie, so any deviation from insertion-order tie-breaking
  // shows up immediately. Queries include the duplicated vectors themselves
  // (distance exactly 0 for whole groups of rows).
  const size_t kDim = 16;
  Rng rng(0xD0D0);
  std::vector<Embedding> basis;
  for (int b = 0; b < 6; ++b) {
    basis.push_back(RandomUnitVector(rng, kDim));
  }
  FlatL2Index index(kDim);
  SeedFlatIndex seed(kDim);
  for (int i = 0; i < 150; ++i) {
    const Embedding& v = basis[static_cast<size_t>(rng.UniformInt(0, 5))];
    index.Add(i, v);
    seed.Add(i, v);
  }
  std::vector<Embedding> queries = basis;
  queries.push_back(RandomUnitVector(rng, kDim));
  for (size_t k : {size_t{3}, size_t{17}, size_t{150}, size_t{200}}) {
    for (size_t q = 0; q < queries.size(); ++q) {
      ExpectSameRanking(index.Search(queries[q], k), seed.Search(queries[q], k),
                        "dup k=" + std::to_string(k) + " q=" + std::to_string(q));
    }
  }
}

TEST(RetrievalParityTest, FlatSearchEdgeCases) {
  FlatL2Index index(4);
  EXPECT_TRUE(index.Search(Embedding(4, 0.0f), 3).empty());  // Empty index.
  index.Add(9, Embedding(4, 0.5f));
  EXPECT_TRUE(index.Search(Embedding(4, 0.0f), 0).empty());  // k == 0.
  auto hits = index.Search(Embedding(4, 0.5f), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 9);
  // Same bits in, same accumulation structure -> exact zero self-distance.
  EXPECT_EQ(hits[0].distance, 0.0f);
}

// --- Batched parity across thread counts ------------------------------------

TEST(RetrievalParityTest, SearchBatchMatchesSeedForEveryThreadCount) {
  const size_t kDim = 48;
  Rng rng(0xBA7C4);
  FlatL2Index index(kDim);
  SeedFlatIndex seed(kDim);
  std::vector<Embedding> stored;
  for (int i = 0; i < 300; ++i) {
    // A third of the rows duplicate an earlier row: ties must survive
    // batching and threading too.
    Embedding v = (i >= 100 && i % 3 == 0) ? stored[static_cast<size_t>(i) / 2]
                                           : RandomUnitVector(rng, kDim);
    stored.push_back(v);
    index.Add(i, v);
    seed.Add(i, v);
  }
  std::vector<Embedding> queries;
  for (int q = 0; q < 33; ++q) {
    queries.push_back(q % 4 == 0 ? stored[static_cast<size_t>(q) * 7]
                                 : RandomUnitVector(rng, kDim));
  }

  const size_t kK = 12;
  std::vector<std::vector<SearchHit>> want;
  want.reserve(queries.size());
  for (const Embedding& q : queries) {
    want.push_back(seed.Search(q, kK));
  }

  // No pool (inline), then pools of 1, 2, 4, 8 workers.
  for (size_t threads : {0u, 1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto got = index.SearchBatch(queries, kK, threads == 0 ? nullptr : &pool);
    ASSERT_EQ(got.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectSameRanking(got[qi], want[qi],
                        "threads=" + std::to_string(threads) + " q=" + std::to_string(qi));
    }
  }
}

// --- IVF --------------------------------------------------------------------

TEST(RetrievalParityTest, IvfExhaustiveProbeMatchesFlatOnTieFreeInputs) {
  // With nprobe == nlist the IVF index scans every row; on tie-free inputs
  // (random distinct vectors) its ranking must equal the flat index's.
  const size_t kDim = 24;
  Rng rng(0x1F1F);
  FlatL2Index flat(kDim);
  IvfL2Index ivf(kDim, 8, 8, 77);
  for (int i = 0; i < 200; ++i) {
    Embedding v = RandomUnitVector(rng, kDim);
    flat.Add(i, v);
    ivf.Add(i, v);
  }
  ivf.Train();
  for (int q = 0; q < 10; ++q) {
    Embedding query = RandomUnitVector(rng, kDim);
    ExpectSameRanking(ivf.Search(query, 15), flat.Search(query, 15), "q=" + std::to_string(q));
  }
}

TEST(RetrievalParityTest, IvfSearchBatchMatchesSequentialSearch) {
  const size_t kDim = 24;
  Rng rng(0xABCD);
  IvfL2Index ivf(kDim, 6, 2, 7);
  for (int i = 0; i < 180; ++i) {
    ivf.Add(i, RandomUnitVector(rng, kDim));
  }
  ivf.Train();
  std::vector<Embedding> queries;
  for (int q = 0; q < 17; ++q) {
    queries.push_back(RandomUnitVector(rng, kDim));
  }
  for (size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    auto got = ivf.SearchBatch(queries, 9, threads == 0 ? nullptr : &pool);
    ASSERT_EQ(got.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectSameRanking(got[qi], ivf.Search(queries[qi], 9), "q=" + std::to_string(qi));
    }
  }
}

TEST(RetrievalParityTest, IvfTrainIsDeterministicAcrossThreadCounts) {
  const size_t kDim = 32;
  auto build = [&](ThreadPool* pool) {
    Rng rng(0x7A17);
    IvfL2Index ivf(kDim, 10, 3, 123);
    for (int i = 0; i < 250; ++i) {
      ivf.Add(i, RandomUnitVector(rng, kDim));
    }
    ivf.Train(pool);
    return ivf;
  };
  IvfL2Index serial = build(nullptr);
  ThreadPool pool8(8);
  IvfL2Index threaded = build(&pool8);

  Rng qrng(0x9999);
  for (int q = 0; q < 12; ++q) {
    Embedding query = RandomUnitVector(qrng, kDim);
    auto a = serial.Search(query, 11);
    auto b = threaded.Search(query, 11);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "q=" << q << " rank=" << i;
      EXPECT_EQ(a[i].distance, b[i].distance) << "q=" << q << " rank=" << i;
    }
  }
}

// --- Database-level batching + memo cache ------------------------------------

std::unique_ptr<VectorDatabase> MakeDb() {
  auto db = std::make_unique<VectorDatabase>(
      EmbeddingModel(GetEmbeddingModel("all-mpnet-base-v2-sim")),
      DatabaseMetadata{"parity corpus", 64, "test"});
  const char* texts[] = {
      "the kimbrough stadium sits in randall county texas",
      "quarterly semiconductor revenue beat analyst expectations",
      "the committee meeting adjourned after the budget vote",
      "rainfall totals in the river basin broke the seasonal record",
      "the stadium hosted the county championship game in randall",
      "chip fabrication capacity expanded across three new plants",
  };
  for (const char* t : texts) {
    Chunk c;
    c.text = t;
    db->AddChunk(std::move(c));
  }
  return db;
}

TEST(RetrievalParityTest, RetrieveBatchMatchesSequentialRetrieve) {
  std::unique_ptr<VectorDatabase> dbp = MakeDb();
  VectorDatabase& db = *dbp;
  std::vector<std::string> queries = {
      "what county is the kimbrough stadium in",
      "semiconductor revenue this quarter",
      "what county is the kimbrough stadium in",  // Repeat: exercises the cache.
      "budget vote at the committee meeting",
  };
  auto batched = db.RetrieveBatch(queries, 4);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto direct = db.RetrieveWithDistances(queries[i], 4);
    ExpectSameRanking(batched[i], direct, "query " + std::to_string(i));
  }
  // 4 unique texts total across both passes; everything else was memoized.
  EXPECT_GT(db.query_cache_hits(), 0u);
}

TEST(RetrievalParityTest, TruncatedBatchWidthIsAPrefixOfWiderSearch) {
  // The batcher serves mixed-k groups from one max-k sweep; that is only
  // sound if top-k lists are prefix-consistent.
  std::unique_ptr<VectorDatabase> dbp = MakeDb();
  VectorDatabase& db = *dbp;
  auto wide = db.RetrieveWithDistances("stadium county game", 6);
  for (size_t k = 1; k <= 6; ++k) {
    auto narrow = db.RetrieveWithDistances("stadium county game", k);
    ASSERT_EQ(narrow.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(narrow[i].id, wide[i].id) << "k=" << k << " rank=" << i;
    }
  }
}

TEST(RetrievalParityTest, RetrievalBatcherCoalescesSameTickRequests) {
  std::unique_ptr<VectorDatabase> dbp = MakeDb();
  VectorDatabase& db = *dbp;
  Simulator sim;
  RetrievalBatcher batcher(&sim, &db, 0.004);

  struct Got {
    SimTime at = -1;
    std::vector<ChunkId> ids;
  };
  std::vector<Got> got(4);
  std::vector<std::string> queries = {
      "what county is the kimbrough stadium in",
      "semiconductor revenue this quarter",
      "budget vote at the committee meeting",
      "rainfall in the river basin",
  };
  // Three requests at t=0 (with different k!), one more at t=0.001.
  for (size_t i = 0; i < 3; ++i) {
    batcher.Submit(queries[i], i + 1, [&, i](std::vector<ChunkId> ids) {
      got[i].at = sim.now();
      got[i].ids = std::move(ids);
    });
  }
  sim.ScheduleAt(0.001, [&]() {
    batcher.Submit(queries[3], 2, [&](std::vector<ChunkId> ids) {
      got[3].at = sim.now();
      got[3].ids = std::move(ids);
    });
  });
  sim.Run();

  // Timing is exactly Submit + delay, per request.
  EXPECT_DOUBLE_EQ(got[0].at, 0.004);
  EXPECT_DOUBLE_EQ(got[1].at, 0.004);
  EXPECT_DOUBLE_EQ(got[2].at, 0.004);
  EXPECT_DOUBLE_EQ(got[3].at, 0.005);
  // The same-tick trio shared one sweep; the straggler got its own.
  EXPECT_EQ(batcher.requests(), 4u);
  EXPECT_EQ(batcher.batches_issued(), 2u);
  EXPECT_EQ(batcher.max_batch_size(), 3u);
  // Results identical to direct per-query retrieval at the requested widths.
  for (size_t i = 0; i < 4; ++i) {
    size_t k = i < 3 ? i + 1 : 2;
    EXPECT_EQ(got[i].ids, db.Retrieve(queries[i], k)) << "request " << i;
  }
}

}  // namespace
}  // namespace metis
