// Golden-determinism replay: the full Runner stack — dataset generation,
// embedding cache, batched+sharded retrieval, engine simulation, profiler
// noise, scheduler decisions — must be a pure function of the RunSpec.
// Running the same spec twice must reproduce RunMetrics bit for bit: every
// per-query F1 and delay, the probe accounting, and the per-query probe
// histogram. This pins the whole stack's reproducibility contract (the
// property every parity test and bench baseline in this repo leans on) in
// one place, across backends (flat, IVF) and with per-query retrieval depth
// on and off.

#include <gtest/gtest.h>

#include <vector>

#include "src/runner/runner.h"

namespace metis {
namespace {

// `compare_retrieval_quality=false` for cross-flag comparisons: the record
// field logs what the depth policy CHOSE (which differs by design when the
// flag flips), while everything the quality feeds into must still match.
void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b,
                        bool compare_retrieval_quality = true) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const QueryRecord& ra = a.records[i];
    const QueryRecord& rb = b.records[i];
    EXPECT_EQ(ra.query_id, rb.query_id) << "record " << i;
    EXPECT_EQ(ra.config.method, rb.config.method) << "record " << i;
    EXPECT_EQ(ra.config.num_chunks, rb.config.num_chunks) << "record " << i;
    EXPECT_EQ(ra.config.intermediate_tokens, rb.config.intermediate_tokens) << "record " << i;
    if (compare_retrieval_quality) {
      EXPECT_EQ(ra.retrieval_quality.mode, rb.retrieval_quality.mode) << "record " << i;
      EXPECT_EQ(ra.retrieval_quality.nprobe, rb.retrieval_quality.nprobe) << "record " << i;
    }
    // Exact double equality — bit-identical, not approximately equal.
    EXPECT_EQ(ra.result.f1, rb.result.f1) << "record " << i;
    EXPECT_EQ(ra.e2e_delay, rb.e2e_delay) << "record " << i;
    EXPECT_EQ(ra.finish_time, rb.finish_time) << "record " << i;
    EXPECT_EQ(ra.profiler_delay, rb.profiler_delay) << "record " << i;
    EXPECT_EQ(ra.result.retrieved_chunks, rb.result.retrieved_chunks) << "record " << i;
    EXPECT_EQ(ra.result.gold_facts_retrieved, rb.result.gold_facts_retrieved) << "record " << i;
  }
  EXPECT_EQ(a.delays.values(), b.delays.values());
  EXPECT_EQ(a.f1s.values(), b.f1s.values());
  EXPECT_EQ(a.profiler_delays.values(), b.profiler_delays.values());
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_EQ(a.mean_probes, b.mean_probes);
  EXPECT_EQ(a.probe_histogram, b.probe_histogram);
  EXPECT_EQ(a.engine_cost_usd, b.engine_cost_usd);
  EXPECT_EQ(a.profiler_cost_usd, b.profiler_cost_usd);
}

RunSpec BaseSpec(bool ivf, bool per_query_depth) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 15;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kMetis;
  spec.seed = 23;
  spec.scheduler.per_query_depth = per_query_depth;
  if (ivf) {
    spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
    spec.retrieval.nlist = 16;
    spec.retrieval.nprobe = 4;
  }
  return spec;
}

TEST(DeterminismTest, FlatBackendReplaysBitIdentically) {
  for (bool depth : {false, true}) {
    RunSpec spec = BaseSpec(/*ivf=*/false, depth);
    RunMetrics first = RunExperiment(spec);
    RunMetrics second = RunExperiment(spec);
    ASSERT_EQ(first.records.size(), 15u) << "per_query_depth=" << depth;
    ExpectBitIdentical(first, second);
  }
}

TEST(DeterminismTest, IvfBackendReplaysBitIdentically) {
  for (bool depth : {false, true}) {
    RunSpec spec = BaseSpec(/*ivf=*/true, depth);
    RunMetrics first = RunExperiment(spec);
    RunMetrics second = RunExperiment(spec);
    ASSERT_EQ(first.records.size(), 15u) << "per_query_depth=" << depth;
    EXPECT_GT(first.mean_probes, 0.0);
    ExpectBitIdentical(first, second);
  }
}

TEST(DeterminismTest, FlatBackendIgnoresPerQueryDepthBitForBit) {
  // On the exact backend the per-query quality is threaded end to end but
  // ignored by the index — so flipping the flag must move NOTHING. This is
  // the "flag off == PR 3" parity on the paper's default setup.
  RunMetrics off = RunExperiment(BaseSpec(/*ivf=*/false, /*per_query_depth=*/false));
  RunMetrics on = RunExperiment(BaseSpec(/*ivf=*/false, /*per_query_depth=*/true));
  ExpectBitIdentical(off, on, /*compare_retrieval_quality=*/false);
}

TEST(DeterminismTest, ShardedIvfReplayMatchesUnshardedWithPerQueryDepth) {
  // Per-query depth composes with the PR 3 shard contract: heterogeneous
  // budgets over a 4-shard index reproduce the single-shard run exactly.
  RunSpec spec = BaseSpec(/*ivf=*/true, /*per_query_depth=*/true);
  RunMetrics single = RunExperiment(spec);
  spec.retrieval.shards = 4;
  RunMetrics sharded = RunExperiment(spec);
  ASSERT_EQ(single.records.size(), sharded.records.size());
  EXPECT_EQ(single.mean_f1(), sharded.mean_f1());
  EXPECT_EQ(single.mean_delay(), sharded.mean_delay());
  EXPECT_EQ(single.mean_probes, sharded.mean_probes);
  EXPECT_EQ(single.probe_histogram, sharded.probe_histogram);
}

}  // namespace
}  // namespace metis
