// Mixed-workload runner: per-dataset depth policies (DepthCalibrator +
// MixedRunSpec::per_dataset_depth) and the RunMixedExperiment accounting
// contracts —
//
//   - repeated dataset names keep per-stack probe accounting (no shared-index
//     cross-talk through the dataset cache),
//   - sim_duration / throughput_qps use each dataset's OWN first arrival, and
//     metrics.spec is populated like RunExperiment's,
//   - per_dataset_depth=false replays the shared-curve mixed run bit-for-bit
//     no matter what the per-dataset fields hold, and the flat backend
//     ignores the new options entirely,
//   - the calibrator derives sane covering lines (and degrades gracefully on
//     flat backends).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/depth_calibrator.h"
#include "src/runner/runner.h"
#include "src/workload/dataset.h"

namespace metis {
namespace {

// Bit-identical simulation outcome: every served query's timing, quality,
// and config agree exactly, as do the probe counters.
void ExpectRunsBitIdentical(const std::vector<RunMetrics>& a,
                            const std::vector<RunMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t d = 0; d < a.size(); ++d) {
    ASSERT_EQ(a[d].records.size(), b[d].records.size()) << "dataset " << d;
    for (size_t i = 0; i < a[d].records.size(); ++i) {
      const QueryRecord& ra = a[d].records[i];
      const QueryRecord& rb = b[d].records[i];
      EXPECT_EQ(ra.query_id, rb.query_id) << "dataset " << d << " record " << i;
      EXPECT_EQ(ra.result.f1, rb.result.f1) << "dataset " << d << " record " << i;
      EXPECT_EQ(ra.finish_time, rb.finish_time) << "dataset " << d << " record " << i;
      EXPECT_EQ(ra.e2e_delay, rb.e2e_delay) << "dataset " << d << " record " << i;
      EXPECT_TRUE(ra.config == rb.config) << "dataset " << d << " record " << i;
    }
    EXPECT_EQ(a[d].mean_probes, b[d].mean_probes) << "dataset " << d;
    EXPECT_EQ(a[d].probe_histogram, b[d].probe_histogram) << "dataset " << d;
    EXPECT_EQ(a[d].sim_duration, b[d].sim_duration) << "dataset " << d;
    EXPECT_EQ(a[d].throughput_qps, b[d].throughput_qps) << "dataset " << d;
  }
}

MixedRunSpec IvfSpec() {
  MixedRunSpec spec;
  spec.queries_per_dataset = 20;
  spec.seed = 11;
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 8;
  spec.retrieval.nprobe = 2;
  return spec;
}

TEST(MixedRunnerTest, DuplicateDatasetsKeepPerStackProbeStats) {
  MixedRunSpec spec = IvfSpec();
  spec.datasets = {"squad", "squad"};
  spec.system = SystemKind::kVllmFixed;
  spec.fixed_configs = {RagConfig{SynthesisMethod::kStuff, 4, 0}};
  // Fixed budget B: every search probes exactly B lists, so per-stack
  // accounting is exactly countable.
  spec.scheduler.adaptive_nprobe = false;
  spec.scheduler.nprobe_budget = 3;

  auto results = RunMixedExperiment(spec);
  ASSERT_EQ(results.size(), 2u);
  for (size_t d = 0; d < results.size(); ++d) {
    EXPECT_EQ(results[d].records.size(), 20u) << "stack " << d;
    // One retrieval per query at exactly 3 probes. Before the fix, both
    // stacks read ONE shared index whose counters commingled 40 searches.
    EXPECT_DOUBLE_EQ(results[d].mean_probes, 3.0) << "stack " << d;
    ASSERT_LT(3u, results[d].probe_histogram.size());
    EXPECT_EQ(results[d].probe_histogram[3], 20u) << "stack " << d;
    uint64_t total = 0;
    for (uint64_t bucket : results[d].probe_histogram) {
      total += bucket;
    }
    EXPECT_EQ(total, 20u) << "stack " << d;
  }
  // Identical workloads on a fair shared engine: both stacks served fully.
  EXPECT_EQ(results[0].records.size(), results[1].records.size());
}

TEST(MixedRunnerTest, SimDurationAndSpecArePerDataset) {
  MixedRunSpec spec;
  spec.datasets = {"squad", "musique"};
  spec.queries_per_dataset = 25;
  spec.rate_per_dataset = 1.5;
  spec.seed = 11;
  spec.system = SystemKind::kMetis;

  auto results = RunMixedExperiment(spec);
  ASSERT_EQ(results.size(), 2u);
  for (size_t d = 0; d < results.size(); ++d) {
    const RunMetrics& m = results[d];
    ASSERT_FALSE(m.records.empty());
    // The dataset's own serving window, recoverable from its records
    // (arrival = finish - e2e delay).
    double first_arrival = m.records[0].finish_time - m.records[0].e2e_delay;
    double last_finish = m.records[0].finish_time;
    for (const QueryRecord& rec : m.records) {
      first_arrival = std::min(first_arrival, rec.finish_time - rec.e2e_delay);
      last_finish = std::max(last_finish, rec.finish_time);
    }
    EXPECT_NEAR(m.sim_duration, last_finish - first_arrival, 1e-9) << "dataset " << d;
    EXPECT_NEAR(m.throughput_qps,
                static_cast<double>(m.records.size()) / m.sim_duration, 1e-12)
        << "dataset " << d;
    // metrics.spec mirrors the equivalent single-dataset RunSpec.
    EXPECT_EQ(m.spec.dataset, spec.datasets[d]);
    EXPECT_EQ(m.spec.num_queries, spec.queries_per_dataset);
    EXPECT_EQ(m.spec.arrival_rate, spec.rate_per_dataset);
    EXPECT_EQ(m.spec.system, spec.system);
    EXPECT_EQ(m.spec.seed, spec.seed);
  }
  // The two datasets' Poisson streams start at different instants, so the
  // per-dataset windows must genuinely differ.
  EXPECT_NE(results[0].sim_duration, results[1].sim_duration);
}

// per_dataset_depth=false must replay the shared-curve run bit-for-bit no
// matter what the per-dataset fields are set to.
TEST(MixedRunnerTest, PerDatasetFieldsInertWhenFlagOff) {
  MixedRunSpec base = IvfSpec();
  base.datasets = {"squad", "musique"};
  base.system = SystemKind::kMetis;
  auto want = RunMixedExperiment(base);

  MixedRunSpec loaded = base;
  loaded.per_dataset_depth = false;  // Explicitly off.
  loaded.depth_calibration = MixedRunSpec::DepthCalibration::kOffline;
  loaded.calibrator.holdout_queries = 5;
  JointSchedulerOptions wild;
  wild.depth.base_probes = 1;
  wild.depth.probes_per_piece = 0;
  wild.depth.min_budget = 1;
  wild.depth.max_budget = 1;
  loaded.per_dataset_scheduler = {wild, wild};
  auto got = RunMixedExperiment(loaded);

  ExpectRunsBitIdentical(want, got);
}

// The flat (exact) backend has no probe knob: engaging per-dataset depth must
// not change a single result.
TEST(MixedRunnerTest, FlatBackendIgnoresPerDatasetDepth) {
  MixedRunSpec base;
  base.datasets = {"squad", "qmsum"};
  base.queries_per_dataset = 20;
  base.seed = 11;
  base.system = SystemKind::kMetis;
  ASSERT_EQ(base.retrieval.backend, RetrievalIndexOptions::Backend::kFlat);
  auto want = RunMixedExperiment(base);

  for (auto mode : {MixedRunSpec::DepthCalibration::kProfile,
                    MixedRunSpec::DepthCalibration::kOffline}) {
    MixedRunSpec on = base;
    on.per_dataset_depth = true;
    on.depth_calibration = mode;
    auto got = RunMixedExperiment(on);
    ExpectRunsBitIdentical(want, got);
  }
}

// Engaged on the IVF backend, per-dataset lines must actually reach the
// index: the per-stack probe distributions change.
TEST(MixedRunnerTest, PerDatasetDepthChangesIvfProbes) {
  MixedRunSpec base = IvfSpec();
  base.datasets = {"squad", "qmsum"};
  base.system = SystemKind::kMetis;
  // Shared curve pinned at full depth, fixed probe mode, so any change can
  // only come from the per-dataset lines.
  base.scheduler.depth.base_probes = 8;
  base.scheduler.depth.probes_per_piece = 0;
  base.scheduler.depth.min_budget = 8;
  base.scheduler.depth.max_budget = 8;
  base.scheduler.depth.adaptive = false;
  base.calibrator.adaptive = false;
  auto shared = RunMixedExperiment(base);

  MixedRunSpec on = base;
  on.per_dataset_depth = true;
  on.depth_calibration = MixedRunSpec::DepthCalibration::kProfile;
  auto per_dataset = RunMixedExperiment(on);

  ASSERT_EQ(shared.size(), per_dataset.size());
  for (size_t d = 0; d < shared.size(); ++d) {
    EXPECT_DOUBLE_EQ(shared[d].mean_probes, 8.0) << "dataset " << d;
  }
  // qmsum's profile-derived line (long outputs, many pieces) is shallower
  // than 8 across its piece range; squad's keeps deep scans for lookups.
  bool any_changed = false;
  for (size_t d = 0; d < per_dataset.size(); ++d) {
    any_changed = any_changed || per_dataset[d].mean_probes != shared[d].mean_probes;
  }
  EXPECT_TRUE(any_changed);
}

TEST(MixedRunnerTest, ExplicitOverrideBeatsCalibration) {
  MixedRunSpec spec = IvfSpec();
  spec.datasets = {"squad", "musique"};
  spec.system = SystemKind::kMetis;
  spec.per_dataset_depth = true;
  JointSchedulerOptions override_options = spec.scheduler;
  override_options.depth.base_probes = 5;
  override_options.depth.probes_per_piece = 0;
  override_options.depth.min_budget = 5;
  override_options.depth.max_budget = 5;
  spec.per_dataset_scheduler = {override_options, std::nullopt};

  auto squad = GetOrGenerateDataset("squad", spec.queries_per_dataset, spec.embedding_model,
                                    spec.seed, spec.retrieval);
  auto musique = GetOrGenerateDataset("musique", spec.queries_per_dataset,
                                      spec.embedding_model, spec.seed, spec.retrieval);
  JointSchedulerOptions o0 = EffectiveSchedulerOptions(spec, 0, *squad);
  EXPECT_EQ(o0.depth.base_probes, 5u);
  EXPECT_EQ(o0.depth.max_budget, 5u);
  JointSchedulerOptions o1 = EffectiveSchedulerOptions(spec, 1, *musique);
  DepthCalibrator calibrator(spec.calibrator);
  RetrievalDepthPolicyOptions derived =
      calibrator.DeriveFromProfile(musique->profile(), spec.retrieval.nlist);
  EXPECT_EQ(o1.depth.base_probes, derived.base_probes);
  EXPECT_EQ(o1.depth.probes_per_piece, derived.probes_per_piece);
  EXPECT_EQ(o1.depth.min_budget, derived.min_budget);
  EXPECT_EQ(o1.depth.max_budget, derived.max_budget);

  MixedRunSpec off = spec;
  off.per_dataset_depth = false;
  JointSchedulerOptions shared = EffectiveSchedulerOptions(off, 0, *squad);
  EXPECT_EQ(shared.depth.base_probes, spec.scheduler.depth.base_probes);
  EXPECT_EQ(shared.depth.max_budget, spec.scheduler.depth.max_budget);
}

TEST(DepthCalibratorTest, DeriveFromProfileTracksDatasetShape) {
  DepthCalibrator calibrator;
  const size_t nlist = 16;
  RetrievalDepthPolicyOptions squad =
      calibrator.DeriveFromProfile(GetDatasetProfile("squad_topical"), nlist);
  RetrievalDepthPolicyOptions qmsum =
      calibrator.DeriveFromProfile(GetDatasetProfile("qmsum_topical"), nlist);
  // Short-answer lookups may scan every list; long-output summarization is
  // capped below nlist.
  EXPECT_EQ(squad.max_budget, nlist);
  EXPECT_LT(qmsum.max_budget, nlist);
  // Both descend in pieces, qmsum more gently (wider piece range).
  EXPECT_LT(squad.probes_per_piece, 0);
  EXPECT_LT(qmsum.probes_per_piece, 0);
  EXPECT_LE(squad.probes_per_piece, qmsum.probes_per_piece);
  // Diffuse geometry keeps a higher floor than the topical variant.
  RetrievalDepthPolicyOptions diffuse =
      calibrator.DeriveFromProfile(GetDatasetProfile("squad"), nlist);
  EXPECT_GT(diffuse.min_budget, squad.min_budget);
  // p = 1 gets the full cap on every derived line.
  EXPECT_EQ(static_cast<long>(squad.base_probes) + squad.probes_per_piece,
            static_cast<long>(squad.max_budget));
  // nlist 0 (flat backend) keeps the inert defaults.
  RetrievalDepthPolicyOptions flat =
      calibrator.DeriveFromProfile(GetDatasetProfile("squad"), 0);
  EXPECT_EQ(flat.base_probes, RetrievalDepthPolicyOptions{}.base_probes);
}

TEST(DepthCalibratorTest, GridClampsAndDeduplicates) {
  DepthCalibratorOptions options;
  options.probe_grid = {4, 1, 64, 4, 32};
  DepthCalibrator calibrator(options);
  EXPECT_EQ(calibrator.GridFor(8), (std::vector<size_t>{1, 4, 8}));
  std::vector<size_t> grid = calibrator.GridFor(0);
  for (size_t b : grid) {
    EXPECT_EQ(b, 1u);  // Degenerate nlist: everything clamps to one list.
  }
}

TEST(DepthCalibratorTest, CalibrateFitsCoveringLineOnIvf) {
  RetrievalIndexOptions ivf;
  ivf.backend = RetrievalIndexOptions::Backend::kIvf;
  ivf.nlist = 8;
  ivf.nprobe = 2;
  auto dataset = GetOrGenerateDataset("musique_topical", 40, "cohere-embed-v3-sim", 7, ivf);
  DepthCalibratorOptions options;
  options.holdout_queries = 40;
  options.adaptive = false;
  DepthCalibrator calibrator(options);
  RetrievalDepthPolicyOptions line = calibrator.Calibrate(*dataset);
  // A valid covering line over the 8-list index: bounds inside the grid,
  // non-ascending slope (fail-safe under piece under-estimates), fixed mode
  // as configured.
  EXPECT_GE(line.min_budget, 1u);
  EXPECT_LE(line.max_budget, 8u);
  EXPECT_GE(line.max_budget, line.min_budget);
  EXPECT_LE(line.probes_per_piece, 0);
  EXPECT_FALSE(line.adaptive);
  // Deterministic: calibrating twice fits the same line.
  RetrievalDepthPolicyOptions again = calibrator.Calibrate(*dataset);
  EXPECT_EQ(line.base_probes, again.base_probes);
  EXPECT_EQ(line.probes_per_piece, again.probes_per_piece);
  EXPECT_EQ(line.min_budget, again.min_budget);
  EXPECT_EQ(line.max_budget, again.max_budget);
}

TEST(DepthCalibratorTest, TierSweepPicksCheaperTierOnlyWhenCoverageHolds) {
  RetrievalIndexOptions ivf;
  ivf.backend = RetrievalIndexOptions::Backend::kIvf;
  ivf.nlist = 8;
  ivf.nprobe = 2;
  ivf.quant.sq = true;
  ivf.quant.pq = true;
  auto dataset = GetOrGenerateDataset("musique_topical", 40, "cohere-embed-v3-sim", 7, ivf);
  ASSERT_NE(dataset->db().index().quantizers(), nullptr);

  // Default (empty tier_grid): the sweep is skipped entirely — same line as
  // the budget-only calibrator, fp32.
  DepthCalibratorOptions options;
  options.holdout_queries = 40;
  DepthCalibrator budget_only(options);
  RetrievalDepthPolicyOptions base_line = budget_only.Calibrate(*dataset);
  EXPECT_EQ(base_line.precision, RetrievalPrecision::kFp32);
  EXPECT_EQ(base_line.rerank_factor, 0u);

  // int8 + exact rerank matches fp32 coverage on this corpus (quantize_test
  // pins its recall), so the sweep may move to the cheaper tier; it must
  // never pick a tier whose coverage fell short. Either way the budget line
  // itself is untouched.
  options.tier_grid = {RetrievalPrecision::kInt8};
  options.rerank_grid = {4};
  DepthCalibrator tiered(options);
  RetrievalDepthPolicyOptions line = tiered.Calibrate(*dataset);
  EXPECT_EQ(line.base_probes, base_line.base_probes);
  EXPECT_EQ(line.probes_per_piece, base_line.probes_per_piece);
  EXPECT_EQ(line.min_budget, base_line.min_budget);
  EXPECT_EQ(line.max_budget, base_line.max_budget);
  EXPECT_EQ(line.precision, RetrievalPrecision::kInt8);
  EXPECT_EQ(line.rerank_factor, 4u);
  // Deterministic.
  RetrievalDepthPolicyOptions again = tiered.Calibrate(*dataset);
  EXPECT_EQ(again.precision, line.precision);
  EXPECT_EQ(again.rerank_factor, line.rerank_factor);

  // A dataset whose index never built mirrors skips the sweep even with a
  // configured grid.
  RetrievalIndexOptions plain = ivf;
  plain.quant = QuantizationOptions{};
  auto bare = GetOrGenerateDataset("musique_topical", 40, "cohere-embed-v3-sim", 7, plain);
  EXPECT_EQ(tiered.Calibrate(*bare).precision, RetrievalPrecision::kFp32);
}

TEST(DepthCalibratorTest, CalibrateOnFlatFallsBackToProfileLine) {
  auto dataset = GetOrGenerateDataset("squad", 20, "cohere-embed-v3-sim", 7);
  DepthCalibrator calibrator;
  RetrievalDepthPolicyOptions line = calibrator.Calibrate(*dataset);
  RetrievalDepthPolicyOptions derived = calibrator.DeriveFromProfile(dataset->profile(), 0);
  EXPECT_EQ(line.base_probes, derived.base_probes);
  EXPECT_EQ(line.probes_per_piece, derived.probes_per_piece);
}

TEST(MixedRunnerTest, ClearDatasetCacheDropsEntries) {
  auto a = GetOrGenerateDataset("squad", 15, "cohere-embed-v3-sim", 3);
  auto b = GetOrGenerateDataset("squad", 15, "cohere-embed-v3-sim", 3);
  EXPECT_EQ(a.get(), b.get());
  ClearDatasetCache();
  auto c = GetOrGenerateDataset("squad", 15, "cohere-embed-v3-sim", 3);
  EXPECT_NE(a.get(), c.get());  // Regenerated; `a` stays alive through its ref.
  EXPECT_EQ(a->queries().size(), c->queries().size());
}

// Pins the per-dataset arrival seeding: dataset d's stream is the historical
// Poisson stream under seed SplitMix64(spec.seed ^ (0xD00D + d)) — mixed
// through SplitMix64 so structurally related spec seeds (e.g. seed and
// seed ^ 1) cannot produce correlated per-dataset streams the way the old
// raw `seed ^ (0xD00D + d)` Rng seeding could.
TEST(MixedRunnerTest, PerDatasetArrivalStreamsUseSplitMixedSeeds) {
  MixedRunSpec spec;
  spec.datasets = {"squad", "musique"};
  spec.queries_per_dataset = 25;
  spec.rate_per_dataset = 1.5;
  spec.seed = 11;
  spec.system = SystemKind::kMetis;

  auto results = RunMixedExperiment(spec);
  ASSERT_EQ(results.size(), 2u);
  for (size_t d = 0; d < results.size(); ++d) {
    uint64_t state = spec.seed ^ (0xD00Dull + static_cast<uint64_t>(d));
    std::vector<RagQuery> expected(static_cast<size_t>(spec.queries_per_dataset));
    AssignPoissonArrivals(expected, spec.rate_per_dataset, SplitMix64(state));
    std::vector<double> want, got;
    for (const RagQuery& q : expected) {
      want.push_back(q.arrival_time);
    }
    for (const QueryRecord& rec : results[d].records) {
      got.push_back(rec.arrival_time);
    }
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(want.size(), got.size()) << "dataset " << d;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(want[i], got[i]) << "dataset " << d << " arrival " << i;
    }
  }
}

}  // namespace
}  // namespace metis
