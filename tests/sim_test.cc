// Unit tests for the discrete-event simulator.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace metis {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(1.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1;
  sim.ScheduleAt(5.0, [&] {
    sim.ScheduleAfter(2.5, [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) {
      sim.ScheduleAfter(1.0, chain);
    }
  };
  sim.ScheduleAfter(0.0, chain);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.ScheduleAt(1.0, [&] { fired = true; });
  h.Cancel();
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(h.cancelled());
}

TEST(SimulatorTest, HorizonStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(10.0, [&] { ++fired; });
  sim.Run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, IdleAndCounters) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  sim.ScheduleAt(0.0, [] {});
  EXPECT_FALSE(sim.idle());
  sim.Run();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(5.0, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(1.0, [] {}), "CHECK failed");
}

}  // namespace
}  // namespace metis
