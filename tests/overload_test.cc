// Multi-tenant overload control: the OverloadController's ladder mechanics,
// the MetisSystem admission path, flag-off parity, and whole-run accounting
// under above-capacity load (src/core/overload.h, src/runner SLO plumbing).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/overload.h"
#include "src/core/retrieval_depth.h"
#include "src/runner/runner.h"

namespace metis {
namespace {

// --- OverloadController unit mechanics (idle engine: pressure 0) ----------

struct ControllerFixture {
  Simulator sim;
  LlmEngine engine;
  ControllerFixture()
      : engine(&sim,
               [] {
                 EngineConfig cfg;
                 cfg.model = GetModelSpec("mistral-7b-v3-awq");
                 cfg.kv_pool_bytes = 4.0 * kGiB;
                 return cfg;
               }(),
               1) {}
};

std::vector<TenantClass> TwoClasses() {
  return {TenantClass{"interactive", /*priority=*/2, /*deadline_s=*/3.0, /*rate_share=*/0.5},
          TenantClass{"besteffort", /*priority=*/0, /*deadline_s=*/0.0, /*rate_share=*/0.5}};
}

TEST(OverloadControllerTest, IdleEnginePressureIsZeroAndAdmitsEverything) {
  ControllerFixture f;
  OverloadOptions options;
  options.enabled = true;
  OverloadController controller(&f.engine, TwoClasses(), options);
  EXPECT_DOUBLE_EQ(controller.Pressure(), 0.0);
  for (int i = 0; i < 10; ++i) {
    OverloadLevel level = controller.Assess();
    EXPECT_EQ(level, OverloadLevel::kNone);
    EXPECT_TRUE(controller.Admit(i % 2, level));
  }
  EXPECT_EQ(controller.stats().rejected, 0u);
  EXPECT_EQ(controller.stats().admitted, 10u);
  EXPECT_EQ(controller.stats().max_level, 0);
}

TEST(OverloadControllerTest, TenantIndexClampsToDefaultClass) {
  ControllerFixture f;
  OverloadController controller(&f.engine, TwoClasses(), OverloadOptions{});
  EXPECT_EQ(controller.tenant(0).name, "interactive");
  EXPECT_EQ(controller.tenant(1).name, "besteffort");
  EXPECT_EQ(controller.tenant(-1).name, "default");
  EXPECT_EQ(controller.tenant(7).name, "default");
}

TEST(OverloadControllerTest, ProtectedClassNeverRejectedUnprotectedBacksOff) {
  ControllerFixture f;
  OverloadOptions options;
  options.enabled = true;
  options.protect_priority = 1;
  options.backoff_initial = 2;
  options.backoff_max = 8;
  OverloadController controller(&f.engine, TwoClasses(), options);

  // Protected class (priority 2 >= 1): always admitted, even at kReject.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(controller.Admit(0, OverloadLevel::kReject));
  }
  // Unprotected class at kReject: deterministic trickle. First arrival admits
  // and arms stride=2 (1 reject), then stride doubles on each admitted probe
  // up to backoff_max: admit, reject, admit, reject x3, admit, reject x7, ...
  std::vector<bool> admitted;
  for (int i = 0; i < 14; ++i) {
    admitted.push_back(controller.Admit(1, OverloadLevel::kReject));
  }
  std::vector<bool> expected = {true, false, true, false, false, false, true,
                                false, false, false, false, false, false, false};
  EXPECT_EQ(admitted, expected);

  // Below kReject everything admits regardless of class.
  EXPECT_TRUE(controller.Admit(1, OverloadLevel::kCheapSynthesis));
}

TEST(OverloadControllerTest, PressureRisesWithBacklogAndLeavingRejectResetsBackoff) {
  ControllerFixture f;
  OverloadOptions options;
  options.enabled = true;
  // One submission is admitted into the running batch immediately; each
  // *waiting* request then contributes 1.0 pressure, clearing reject_at.
  options.queue_depth_ref = 1.0;
  OverloadController controller(&f.engine, TwoClasses(), options);

  for (int i = 0; i < 4; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 32;
    req.output_tokens = 8;
    f.engine.Submit(std::move(req));
  }
  EXPECT_GE(controller.Pressure(), options.reject_at);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kReject);
  EXPECT_TRUE(controller.Admit(1, OverloadLevel::kReject));   // Arms stride 2.
  EXPECT_FALSE(controller.Admit(1, OverloadLevel::kReject));
  EXPECT_TRUE(controller.Admit(1, OverloadLevel::kReject));   // Stride -> 4.
  EXPECT_FALSE(controller.Admit(1, OverloadLevel::kReject));

  f.sim.Run();  // Drain the backlog; pressure returns to zero.
  EXPECT_DOUBLE_EQ(controller.Pressure(), 0.0);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kNone);  // Leaves kReject.

  // Fresh episode: the backoff starts over at the initial stride instead of
  // continuing the stride-4 countdown armed above.
  EXPECT_TRUE(controller.Admit(1, OverloadLevel::kReject));
  EXPECT_FALSE(controller.Admit(1, OverloadLevel::kReject));
  EXPECT_TRUE(controller.Admit(1, OverloadLevel::kReject));
  EXPECT_EQ(controller.stats().max_level, static_cast<int>(OverloadLevel::kReject));
  EXPECT_GE(controller.stats().peak_pressure, options.reject_at);
}

TEST(OverloadControllerTest, ShedPrecisionRungSitsBetweenCheapSynthesisAndReject) {
  ControllerFixture f;
  OverloadOptions options;
  options.enabled = true;
  // 3 waiting requests / ref 1.5 = pressure 2.0: exactly shed_precision_at
  // (2.0 default), below reject_at (2.5).
  options.queue_depth_ref = 1.5;
  OverloadController controller(&f.engine, TwoClasses(), options);
  for (int i = 0; i < 4; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 32;
    req.output_tokens = 8;
    f.engine.Submit(std::move(req));
  }
  OverloadLevel level = controller.Assess();
  EXPECT_EQ(level, OverloadLevel::kShedPrecision);
  // Below kReject: everything still admits.
  EXPECT_TRUE(controller.Admit(0, level));
  EXPECT_TRUE(controller.Admit(1, level));
  EXPECT_EQ(controller.stats().rejected, 0u);
  EXPECT_EQ(controller.stats().max_level, static_cast<int>(OverloadLevel::kShedPrecision));

  // The shed tier only ever moves a query cheaper: cost fp32 > int8 > pq.
  EXPECT_GT(RetrievalPrecisionCost(RetrievalPrecision::kFp32),
            RetrievalPrecisionCost(RetrievalPrecision::kInt8));
  EXPECT_GT(RetrievalPrecisionCost(RetrievalPrecision::kInt8),
            RetrievalPrecisionCost(RetrievalPrecision::kPq));
  controller.NotePrecisionShed();
  EXPECT_EQ(controller.stats().precision_shed, 1u);
}

TEST(OverloadControllerTest, RungThresholdDefaultsArePinned) {
  // The ladder's contract with the rest of the stack: systems.cc applies
  // hybrid/depth sheds at kShedDepth, cheap synthesis at kCheapSynthesis,
  // precision sheds at kShedPrecision, admission trickle at kReject. Moving
  // a default silently re-tunes every deployment — pin them.
  OverloadOptions defaults;
  EXPECT_DOUBLE_EQ(defaults.shed_depth_at, 0.75);
  EXPECT_DOUBLE_EQ(defaults.cheap_synthesis_at, 1.5);
  EXPECT_DOUBLE_EQ(defaults.shed_precision_at, 2.0);
  EXPECT_DOUBLE_EQ(defaults.reject_at, 2.5);
  // The service-estimate pressure term ships disabled: three-term parity.
  EXPECT_DOUBLE_EQ(defaults.service_ref_s, 0.0);
}

TEST(OverloadControllerTest, ServiceTermOffIsBitForBitInert) {
  // service_ref_s == 0 (default): feeding estimates must not perturb the
  // pressure score at all — the EWMA may accumulate, the term never fires.
  ControllerFixture f;
  OverloadOptions options;
  options.enabled = true;
  OverloadController controller(&f.engine, TwoClasses(), options);
  EXPECT_DOUBLE_EQ(controller.Pressure(), 0.0);
  for (int i = 0; i < 8; ++i) {
    controller.ObserveServiceEstimate(100.0);
  }
  EXPECT_DOUBLE_EQ(controller.Pressure(), 0.0);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kNone);
}

TEST(OverloadControllerTest, ServiceTermClimbsLadderOnPredictedServiceAlone) {
  // With an idle engine (all queue terms zero) the EWMA'd service estimate is
  // the only pressure source, so each rung is crossed at an exactly
  // predictable observation count: ewma_{n+1} = 0.8*ewma_n + 0.2*est.
  ControllerFixture f;
  OverloadOptions options;
  options.enabled = true;
  options.service_ref_s = 1.0;  // pressure == service EWMA, directly.
  OverloadController controller(&f.engine, TwoClasses(), options);

  // Zero/negative estimates (decisions with no model, e.g. MedianOfSpace)
  // are ignored rather than decaying the EWMA toward zero.
  controller.ObserveServiceEstimate(0.0);
  controller.ObserveServiceEstimate(-1.0);
  EXPECT_DOUBLE_EQ(controller.mean_service_estimate(), 0.0);

  controller.ObserveServiceEstimate(4.0);  // ewma = 0.2 * 4.0 = 0.8.
  EXPECT_NEAR(controller.Pressure(), 0.8, 1e-9);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kShedDepth);  // >= 0.75.

  controller.ObserveServiceEstimate(4.8);  // ewma = 0.64 + 0.96 = 1.6.
  EXPECT_NEAR(controller.Pressure(), 1.6, 1e-9);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kCheapSynthesis);  // >= 1.5.

  controller.ObserveServiceEstimate(4.1);  // ewma = 1.28 + 0.82 = 2.1.
  EXPECT_NEAR(controller.Pressure(), 2.1, 1e-9);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kShedPrecision);  // >= 2.0.

  controller.ObserveServiceEstimate(4.8);  // ewma = 1.68 + 0.96 = 2.64.
  EXPECT_NEAR(controller.Pressure(), 2.64, 1e-9);
  EXPECT_EQ(controller.Assess(), OverloadLevel::kReject);  // >= 2.5.

  // Hybrid-shed accounting rides the same stats block.
  EXPECT_EQ(controller.stats().hybrid_shed, 0u);
  controller.NoteHybridShed();
  EXPECT_EQ(controller.stats().hybrid_shed, 1u);
}

TEST(OverloadControllerTest, ThresholdValidationAborts) {
  ControllerFixture f;
  OverloadOptions bad;
  bad.shed_depth_at = 2.0;
  bad.cheap_synthesis_at = 1.0;  // Not ascending.
  EXPECT_DEATH(OverloadController(&f.engine, {}, bad), "cheap_synthesis_at");
}

TEST(ClampToBudgetTest, CapsFixedAndAdaptiveAndPinsIndexDefault) {
  RetrievalQuality fixed;
  fixed.mode = RetrievalQuality::ProbeMode::kFixed;
  fixed.nprobe = 10;
  EXPECT_EQ(RetrievalDepthPolicy::ClampToBudget(fixed, 4).nprobe, 4u);
  EXPECT_EQ(RetrievalDepthPolicy::ClampToBudget(fixed, 16).nprobe, 10u);  // No inflation.
  EXPECT_EQ(RetrievalDepthPolicy::ClampToBudget(fixed, 0).nprobe, 10u);   // 0 = disabled.

  RetrievalQuality adaptive;
  adaptive.mode = RetrievalQuality::ProbeMode::kAdaptive;
  adaptive.nprobe = 12;
  RetrievalQuality clamped = RetrievalDepthPolicy::ClampToBudget(adaptive, 3);
  EXPECT_EQ(clamped.mode, RetrievalQuality::ProbeMode::kAdaptive);
  EXPECT_EQ(clamped.nprobe, 3u);

  RetrievalQuality def;  // kIndexDefault: depth invisible, shed to exactly cap.
  RetrievalQuality shed = RetrievalDepthPolicy::ClampToBudget(def, 2);
  EXPECT_EQ(shed.mode, RetrievalQuality::ProbeMode::kFixed);
  EXPECT_EQ(shed.nprobe, 2u);
}

// --- Whole-run behaviour ---------------------------------------------------

RunSpec OverloadSpec(double rate, bool ladder) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 80;
  spec.arrival_rate = rate;
  spec.system = SystemKind::kMetis;
  spec.seed = 42;
  spec.tenants = {
      TenantClass{"interactive", /*priority=*/2, /*deadline_s=*/3.5, /*rate_share=*/0.3},
      TenantClass{"besteffort", /*priority=*/0, /*deadline_s=*/14.0, /*rate_share=*/0.7}};
  spec.overload.enabled = ladder;
  return spec;
}

TEST(OverloadRunTest, AboveCapacityRunDrainsWithExactAccounting) {
  RunMetrics m = RunExperiment(OverloadSpec(/*rate=*/64.0, /*ladder=*/true));

  // The admission queue drained: every query produced exactly one record.
  ASSERT_EQ(m.records.size(), 80u);
  std::set<int32_t> ids;
  for (const QueryRecord& rec : m.records) {
    ids.insert(rec.query_id);
  }
  EXPECT_EQ(ids.size(), 80u);  // No query lost or double-completed.

  // Offered/completed/rejected accounting is exact, overall and per class.
  ASSERT_EQ(m.class_metrics.size(), 2u);
  uint64_t offered = 0, completed = 0, rejected = 0;
  for (const TenantClassMetrics& cm : m.class_metrics) {
    EXPECT_EQ(cm.offered, cm.completed + cm.rejected);
    offered += cm.offered;
    completed += cm.completed;
    rejected += cm.rejected;
  }
  EXPECT_EQ(offered, 80u);
  EXPECT_EQ(rejected, m.rejected_queries);
  EXPECT_EQ(completed, static_cast<uint64_t>(m.delays.count()));

  // Engine completed exactly what it admitted (no stuck requests).
  EXPECT_EQ(m.engine_stats.submitted, m.engine_stats.completed);

  // Backlog observables are monotone-sane: the high-water marks bound any
  // instantaneous value and an above-capacity burst must have queued.
  EXPECT_GT(m.engine_stats.peak_queue_depth, 0u);
  EXPECT_GE(m.engine_stats.peak_queue_age_s, 0.0);
  RunMetrics low = RunExperiment(OverloadSpec(/*rate=*/1.0, /*ladder=*/true));
  EXPECT_GE(m.engine_stats.peak_queue_depth, low.engine_stats.peak_queue_depth);

  // Rejections (if any at this spec) never touch the protected class, and
  // rejected records carry no result.
  for (const QueryRecord& rec : m.records) {
    if (rec.rejected) {
      EXPECT_EQ(m.class_metrics[static_cast<size_t>(rec.tenant)].name, "besteffort");
      EXPECT_DOUBLE_EQ(rec.e2e_delay, 0.0);
      EXPECT_EQ(rec.overload_level, static_cast<int>(OverloadLevel::kReject));
    }
  }
}

TEST(OverloadRunTest, LadderEngagesPastSaturationAndShedsWork) {
  RunMetrics off = RunExperiment(OverloadSpec(/*rate=*/64.0, /*ladder=*/false));
  RunMetrics on = RunExperiment(OverloadSpec(/*rate=*/64.0, /*ladder=*/true));

  // Ladder-off never rejects or degrades.
  EXPECT_EQ(off.rejected_queries, 0u);
  for (const QueryRecord& rec : off.records) {
    EXPECT_FALSE(rec.rejected);
    EXPECT_FALSE(rec.depth_shed);
    EXPECT_FALSE(rec.synthesis_degraded);
    EXPECT_EQ(rec.overload_level, 0);
  }

  // Ladder-on: some decision point saw a non-zero rung at 8x saturation.
  uint64_t engaged = 0, degraded = 0;
  for (const QueryRecord& rec : on.records) {
    engaged += rec.overload_level > 0 ? 1 : 0;
    degraded += rec.synthesis_degraded ? 1 : 0;
  }
  EXPECT_GT(engaged, 0u);
  EXPECT_GT(degraded, 0u);
  // And degradation pays: total goodput at least matches ladder-off.
  EXPECT_GE(on.goodput_qps, off.goodput_qps);
}

TEST(OverloadRunTest, FlagOffIsBitForBitIdenticalToNoTenantRun) {
  // Declaring SLO classes with the ladder disabled must not change ANY
  // behaviour: delays, F1, configs, and arrival times all match a run that
  // never heard of tenants (class routing uses its own Rng stream and the
  // controller is never constructed).
  RunSpec plain;
  plain.dataset = "musique";
  plain.num_queries = 40;
  plain.arrival_rate = 8.0;
  plain.system = SystemKind::kMetis;
  plain.seed = 42;

  RunSpec tenanted = plain;
  tenanted.tenants = {
      TenantClass{"interactive", /*priority=*/2, /*deadline_s=*/3.5, /*rate_share=*/0.3},
      TenantClass{"besteffort", /*priority=*/0, /*deadline_s=*/14.0, /*rate_share=*/0.7}};
  tenanted.overload.enabled = false;  // Flag off.

  RunMetrics a = RunExperiment(plain);
  RunMetrics b = RunExperiment(tenanted);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const QueryRecord& ra = a.records[i];
    const QueryRecord& rb = b.records[i];
    EXPECT_EQ(ra.query_id, rb.query_id);
    EXPECT_DOUBLE_EQ(ra.arrival_time, rb.arrival_time);
    EXPECT_DOUBLE_EQ(ra.finish_time, rb.finish_time);
    EXPECT_DOUBLE_EQ(ra.e2e_delay, rb.e2e_delay);
    EXPECT_DOUBLE_EQ(ra.result.f1, rb.result.f1);
    EXPECT_EQ(ra.config, rb.config);
    EXPECT_FALSE(rb.rejected);
    EXPECT_EQ(rb.overload_level, 0);
  }
  EXPECT_DOUBLE_EQ(a.mean_f1(), b.mean_f1());
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  // Without deadlines goodput degenerates to throughput; with (unmissed)
  // deadline accounting it still reflects completions only.
  EXPECT_DOUBLE_EQ(a.goodput_qps, a.throughput_qps);
  // Per-class accounting covers all queries even with the ladder off.
  ASSERT_EQ(b.class_metrics.size(), 2u);
  EXPECT_EQ(b.class_metrics[0].offered + b.class_metrics[1].offered, 40u);
  EXPECT_EQ(b.rejected_queries, 0u);
}

TEST(OverloadRunTest, ReplayIsDeterministic) {
  RunMetrics a = RunExperiment(OverloadSpec(/*rate=*/64.0, /*ladder=*/true));
  RunMetrics b = RunExperiment(OverloadSpec(/*rate=*/64.0, /*ladder=*/true));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].query_id, b.records[i].query_id);
    EXPECT_EQ(a.records[i].rejected, b.records[i].rejected);
    EXPECT_EQ(a.records[i].overload_level, b.records[i].overload_level);
    EXPECT_DOUBLE_EQ(a.records[i].e2e_delay, b.records[i].e2e_delay);
    EXPECT_DOUBLE_EQ(a.records[i].result.f1, b.records[i].result.f1);
  }
  EXPECT_EQ(a.rejected_queries, b.rejected_queries);
}

TEST(OverloadRunTest, TenantRoutingTracksRateShares) {
  RunMetrics m = RunExperiment(OverloadSpec(/*rate=*/4.0, /*ladder=*/false));
  ASSERT_EQ(m.class_metrics.size(), 2u);
  double interactive_frac =
      static_cast<double>(m.class_metrics[0].offered) / m.records.size();
  // 30/70 split, 80 draws: generous tolerance, deterministic value.
  EXPECT_NEAR(interactive_frac, 0.3, 0.15);
  EXPECT_GT(m.class_metrics[1].offered, m.class_metrics[0].offered);
}

}  // namespace
}  // namespace metis
