// Unit tests for the fixed-size worker pool behind batched retrieval.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"

namespace metis {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (size_t threads : {0u, 1u, 3u, 8u}) {
    ThreadPool pool(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> touched(n);
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        touched[i].fetch_add(1);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // n == 0: nothing runs.

  std::vector<int> hits(2, 0);
  pool.ParallelFor(2, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);  // n < threads still covers everything.
}

TEST(ThreadPoolTest, ShardBoundariesAreContiguousAndDeterministic) {
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<std::pair<size_t, size_t>> shards(4, {SIZE_MAX, SIZE_MAX});
    std::atomic<size_t> next{0};
    pool.ParallelFor(10, [&](size_t begin, size_t end) {
      shards[next.fetch_add(1)] = {begin, end};
    });
    std::sort(shards.begin(), shards.end());
    // 10 over 4 shards: 3,3,2,2 — contiguous, in index order once sorted.
    EXPECT_EQ(shards[0], (std::pair<size_t, size_t>{0, 3}));
    EXPECT_EQ(shards[1], (std::pair<size_t, size_t>{3, 6}));
    EXPECT_EQ(shards[2], (std::pair<size_t, size_t>{6, 8}));
    EXPECT_EQ(shards[3], (std::pair<size_t, size_t>{8, 10}));
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  std::vector<long> data(500);
  std::iota(data.begin(), data.end(), 0);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(data.size(), [&](size_t begin, size_t end) {
      long local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += data[i];
      }
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 500L * 499 / 2);
  }
}

}  // namespace
}  // namespace metis
