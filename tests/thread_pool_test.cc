// Unit tests for the fixed-size worker pool behind batched retrieval, plus
// stress coverage for the shutdown-sensitive paths: Submit() from inside a
// running task, destruction with work still queued, and many threads hammering
// ParallelFor on one shared pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"

namespace metis {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (size_t threads : {0u, 1u, 3u, 8u}) {
    ThreadPool pool(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> touched(n);
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        touched[i].fetch_add(1);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // n == 0: nothing runs.

  std::vector<int> hits(2, 0);
  pool.ParallelFor(2, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);  // n < threads still covers everything.
}

TEST(ThreadPoolTest, ShardBoundariesAreContiguousAndDeterministic) {
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<std::pair<size_t, size_t>> shards(4, {SIZE_MAX, SIZE_MAX});
    std::atomic<size_t> next{0};
    pool.ParallelFor(10, [&](size_t begin, size_t end) {
      shards[next.fetch_add(1)] = {begin, end};
    });
    std::sort(shards.begin(), shards.end());
    // 10 over 4 shards: 3,3,2,2 — contiguous, in index order once sorted.
    EXPECT_EQ(shards[0], (std::pair<size_t, size_t>{0, 3}));
    EXPECT_EQ(shards[1], (std::pair<size_t, size_t>{3, 6}));
    EXPECT_EQ(shards[2], (std::pair<size_t, size_t>{6, 8}));
    EXPECT_EQ(shards[3], (std::pair<size_t, size_t>{8, 10}));
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  std::vector<long> data(500);
  std::iota(data.begin(), data.end(), 0);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(data.size(), [&](size_t begin, size_t end) {
      long local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += data[i];
      }
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 500L * 499 / 2);
  }
}

TEST(ThreadPoolStressTest, SubmitRunsEveryTaskBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 2000; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
    // No explicit wait: the destructor must drain the queue.
  }
  EXPECT_EQ(ran.load(), 2000);
}

TEST(ThreadPoolStressTest, SubmitWithZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int ran = 0;
  pool.Submit([&ran]() { ++ran; });
  EXPECT_EQ(ran, 1);  // Synchronous: observable immediately, single-threaded.
}

TEST(ThreadPoolStressTest, SubmitFromInsideTasksChainsToCompletion) {
  // Tasks that spawn follow-up tasks from worker context — the re-entrant
  // Submit path. The chain must finish even when the pool is destroyed the
  // moment the seeds are in (the destructor waits out running tasks, which
  // keep submitting).
  constexpr int kChains = 8;
  constexpr int kDepth = 200;
  std::atomic<int> ran{0};
  {
    // `step` outlives the pool (declared first), so tasks running during the
    // pool's draining destructor can still call it.
    std::function<void(int)> step;
    ThreadPool pool(4);
    step = [&](int remaining) {
      ran.fetch_add(1);
      if (remaining > 1) {
        pool.Submit([&step, remaining]() { step(remaining - 1); });
      }
    };
    for (int c = 0; c < kChains; ++c) {
      pool.Submit([&step]() { step(kDepth); });
    }
  }
  EXPECT_EQ(ran.load(), kChains * kDepth);
}

TEST(ThreadPoolStressTest, DestructionWithSlowQueuedWorkDrains) {
  // Queue far more slow tasks than workers, then destroy immediately: the
  // destructor must not drop queued work or deadlock.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolStressTest, HammerConstructDestructWithMixedWork) {
  // The shutdown race window, taken many times: every iteration queues work
  // (some of which re-submits) and immediately tears the pool down.
  std::atomic<int> ran{0};
  int expected = 0;
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(1 + round % 4);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran, &pool]() {
        ran.fetch_add(1);
        pool.Submit([&ran]() { ran.fetch_add(1); });
      });
    }
    expected += 20;
  }
  EXPECT_EQ(ran.load(), expected);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForFromManyThreads) {
  // Several external threads sharing one pool, each issuing barriers in a
  // loop — the contended enqueue/notify/wait path. Every caller must see its
  // own complete, correct result.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr size_t kN = 400;
  std::vector<long> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c]() {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<long> sum{0};
        pool.ParallelFor(kN, [&sum](size_t begin, size_t end) {
          long local = 0;
          for (size_t i = begin; i < end; ++i) {
            local += static_cast<long>(i);
          }
          sum.fetch_add(local);
        });
        if (sum.load() != static_cast<long>(kN) * (kN - 1) / 2) {
          sums[c] = -1;  // Corrupted barrier; fail below.
          return;
        }
      }
      sums[c] = static_cast<long>(kN) * (kN - 1) / 2;
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], static_cast<long>(kN) * (kN - 1) / 2) << "caller " << c;
  }
}

TEST(ThreadPoolStressTest, SubmitAndParallelForInterleave) {
  // Fire-and-forget traffic must not break ParallelFor's barrier (both share
  // the one task queue).
  ThreadPool pool(3);
  std::atomic<int> background{0};
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&background]() { background.fetch_add(1); });
    }
    std::atomic<long> sum{0};
    pool.ParallelFor(100, [&sum](size_t begin, size_t end) {
      sum.fetch_add(static_cast<long>(end - begin));
    });
    EXPECT_EQ(sum.load(), 100);
  }
  // Destructor drains whatever background work is still queued.
}

}  // namespace
}  // namespace metis
