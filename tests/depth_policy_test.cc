// Profiler-driven per-query retrieval depth, unit + end to end (the
// retrieval_knob_test counterpart for the per-QUERY knob):
//
//   1. RetrievalDepthPolicy implements the documented budget curve
//      budget(p) = clamp(base + slope * p, min, max), with the low-confidence
//      fallback to the full budget.
//   2. Through a full Runner experiment on the IVF backend with
//      per_query_depth enabled, every query probes exactly the budget its
//      profile maps to — pinned by comparing RunMetrics::probe_histogram
//      bucket-for-bucket against the histogram predicted from the recorded
//      per-query profiles.
//   3. With per_query_depth off, the per-run knob is bit-identical to the
//      PR 3 behaviour (the depth policy is provably out of the loop).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/joint_scheduler.h"
#include "src/core/retrieval_depth.h"
#include "src/runner/runner.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

QueryProfile ProfileWith(int pieces, double confidence = 1.0) {
  QueryProfile p;
  p.num_info_pieces = pieces;
  p.confidence = confidence;
  return p;
}

TEST(RetrievalDepthPolicyTest, DocumentedBudgetCurve) {
  // Defaults: base=10, slope=-2, min=2, max=8 -> budget(p) = clamp(10 - 2p)
  // — deep scans for all-or-nothing single-fact lookups, shallow for
  // partial-credit multihop (the measured direction; see retrieval_depth.h).
  RetrievalDepthPolicy policy;
  EXPECT_EQ(policy.BudgetFor(ProfileWith(1)), 8u);
  EXPECT_EQ(policy.BudgetFor(ProfileWith(2)), 6u);
  EXPECT_EQ(policy.BudgetFor(ProfileWith(3)), 4u);
  EXPECT_EQ(policy.BudgetFor(ProfileWith(4)), 2u);
  EXPECT_EQ(policy.BudgetFor(ProfileWith(10)), 2u);  // Clamped to min_budget.
  EXPECT_EQ(policy.BudgetFor(ProfileWith(0)), 8u);   // Pieces floor at 1.

  // Positive slopes remain expressible (the slope is signed).
  RetrievalDepthPolicyOptions opts;
  opts.base_probes = 2;
  opts.probes_per_piece = 3;
  opts.min_budget = 4;
  opts.max_budget = 12;
  RetrievalDepthPolicy custom(opts);
  EXPECT_EQ(custom.BudgetFor(ProfileWith(1)), 5u);   // 2 + 3*1.
  EXPECT_EQ(custom.BudgetFor(ProfileWith(3)), 11u);  // 2 + 3*3.
  EXPECT_EQ(custom.BudgetFor(ProfileWith(4)), 12u);  // Clamped.
}

TEST(RetrievalDepthPolicyTest, LowConfidenceFallsBackToFullBudget) {
  RetrievalDepthPolicy policy;  // min_confidence = 0.5, max_budget = 8.
  EXPECT_EQ(policy.BudgetFor(ProfileWith(4, /*confidence=*/0.4)), 8u);
  EXPECT_EQ(policy.BudgetFor(ProfileWith(4, /*confidence=*/0.5)), 2u);  // At threshold: trusted.
}

TEST(RetrievalDepthPolicyTest, QualityForCarriesModeAndBudget) {
  RetrievalDepthPolicyOptions opts;
  opts.adaptive = true;
  RetrievalDepthPolicy adaptive(opts);
  RetrievalQuality q = adaptive.QualityFor(ProfileWith(3));
  EXPECT_EQ(q.mode, RetrievalQuality::ProbeMode::kAdaptive);
  EXPECT_EQ(q.nprobe, 4u);  // 10 - 2*3.

  opts.adaptive = false;
  RetrievalDepthPolicy fixed(opts);
  q = fixed.QualityFor(ProfileWith(3));
  EXPECT_EQ(q.mode, RetrievalQuality::ProbeMode::kFixed);
  EXPECT_EQ(q.nprobe, 4u);
}

RunSpec MetisIvfSpec() {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 30;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kMetis;
  spec.seed = 11;
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 16;
  spec.retrieval.nprobe = 4;
  return spec;
}

TEST(RetrievalDepthEndToEndTest, PerQueryBudgetsMatchProfilesAndHistogramExactly) {
  RunSpec spec = MetisIvfSpec();
  spec.scheduler.per_query_depth = true;
  spec.scheduler.depth.adaptive = false;  // Fixed per-query budgets: every
                                          // search probes exactly budget(p).
  RunMetrics m = RunExperiment(spec);
  ASSERT_EQ(m.records.size(), 30u);

  // Predict the probe histogram from the recorded profiles through the
  // documented curve; each query retrieves exactly once.
  RetrievalDepthPolicy policy(spec.scheduler.depth);
  std::vector<uint64_t> expected(IvfL2Index::kProbeHistogramBuckets, 0);
  uint64_t total_probes = 0;
  for (const QueryRecord& rec : m.records) {
    size_t budget = policy.BudgetFor(rec.profile);
    // The stack recorded the quality it actually used for this query.
    EXPECT_EQ(rec.retrieval_quality.nprobe, budget);
    EXPECT_EQ(rec.retrieval_quality.mode, RetrievalQuality::ProbeMode::kFixed);
    expected[budget] += 1;
    total_probes += budget;
  }
  ASSERT_EQ(m.probe_histogram.size(), expected.size());
  EXPECT_EQ(m.probe_histogram, expected);
  EXPECT_DOUBLE_EQ(m.mean_probes,
                   static_cast<double>(total_probes) / static_cast<double>(m.records.size()));

  // The whole point: budgets actually VARY per query (otherwise this is the
  // per-run knob in disguise).
  size_t distinct = 0;
  for (uint64_t count : m.probe_histogram) {
    if (count > 0) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 2u);
}

TEST(RetrievalDepthEndToEndTest, AdaptiveModeStaysWithinPerQueryBudgets) {
  RunSpec spec = MetisIvfSpec();
  spec.scheduler.per_query_depth = true;
  spec.scheduler.depth.adaptive = true;
  spec.retrieval.adaptive.min_probes = 1;
  spec.retrieval.adaptive.distance_ratio = 1.5;
  RunMetrics m = RunExperiment(spec);
  ASSERT_EQ(m.records.size(), 30u);

  RetrievalDepthPolicy policy(spec.scheduler.depth);
  uint64_t max_budget = 0;
  for (const QueryRecord& rec : m.records) {
    max_budget = std::max<uint64_t>(max_budget, policy.BudgetFor(rec.profile));
  }
  // Early termination can only shorten scans: nothing past the largest
  // assigned budget, at least one probe each.
  ASSERT_EQ(m.probe_histogram.size(), IvfL2Index::kProbeHistogramBuckets);
  EXPECT_EQ(m.probe_histogram[0], 0u);
  for (size_t p = max_budget + 1; p < m.probe_histogram.size(); ++p) {
    EXPECT_EQ(m.probe_histogram[p], 0u) << "bucket " << p;
  }
  EXPECT_GE(m.mean_probes, 1.0);
  EXPECT_LE(m.mean_probes, static_cast<double>(max_budget));
}

TEST(RetrievalDepthEndToEndTest, FlagOffRestoresThePerRunKnob) {
  // per_query_depth=false: the per-run knob applies to every query, exactly
  // as in PR 3 — a fixed budget of 2 pins every search at 2 probes, and the
  // depth-policy options are provably out of the loop (changing them moves
  // nothing).
  RunSpec spec = MetisIvfSpec();
  spec.scheduler.per_query_depth = false;
  spec.scheduler.adaptive_nprobe = false;
  spec.scheduler.nprobe_budget = 2;
  RunMetrics off = RunExperiment(spec);
  ASSERT_EQ(off.records.size(), 30u);
  EXPECT_DOUBLE_EQ(off.mean_probes, 2.0);
  ASSERT_EQ(off.probe_histogram.size(), IvfL2Index::kProbeHistogramBuckets);
  EXPECT_EQ(off.probe_histogram[2], 30u);

  spec.scheduler.depth.max_budget = 16;  // Would change per-query behaviour...
  spec.scheduler.depth.base_probes = 7;
  RunMetrics off2 = RunExperiment(spec);
  EXPECT_EQ(off.probe_histogram, off2.probe_histogram);  // ...but the flag is off.
  EXPECT_DOUBLE_EQ(off.mean_f1(), off2.mean_f1());
  EXPECT_DOUBLE_EQ(off.mean_delay(), off2.mean_delay());
}

}  // namespace
}  // namespace metis
