// End-to-end retrieval-depth knob tests: the IVF backend + nprobe knob must
// be reachable from a RunSpec, through RetrievalQualityFromOptions and the
// serving stack (SynthesisExecutor / RetrievalBatcher), down to IvfL2Index —
// observable as probe accounting in RunMetrics. This is the integration
// counterpart to the unit coverage in recall_test / retrieval_parity_test:
// it proves the knob is live in real experiments, not just in bench_recall.

#include <gtest/gtest.h>

#include "src/core/joint_scheduler.h"
#include "src/runner/runner.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

RunSpec IvfSpec() {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 20;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kVllmFixed;  // Fixed config: every retrieval goes
                                         // through the executor/batcher path.
  spec.seed = 7;
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 16;
  spec.retrieval.nprobe = 4;
  return spec;
}

TEST(RetrievalQualityFromOptionsTest, MapsSchedulerKnobsToProbeModes) {
  JointSchedulerOptions options;
  options.adaptive_nprobe = true;
  options.nprobe_budget = 6;
  RetrievalQuality q = RetrievalQualityFromOptions(options);
  EXPECT_EQ(q.mode, RetrievalQuality::ProbeMode::kAdaptive);
  EXPECT_EQ(q.nprobe, 6u);

  options.adaptive_nprobe = false;
  options.nprobe_budget = 0;
  q = RetrievalQualityFromOptions(options);
  EXPECT_EQ(q.mode, RetrievalQuality::ProbeMode::kFixed);
  EXPECT_EQ(q.nprobe, 0u);  // 0 = the index's configured default.
}

TEST(RetrievalKnobTest, DatasetBuildsTrainedIvfBackend) {
  RunSpec spec = IvfSpec();
  std::shared_ptr<const Dataset> ds = GetOrGenerateDataset(
      spec.dataset, spec.num_queries, spec.embedding_model, spec.seed, spec.retrieval);
  const IvfL2Index* ivf = ds->db().ivf_index();
  ASSERT_NE(ivf, nullptr);
  EXPECT_TRUE(ivf->trained());  // FinalizeIndex ran during generation.
  EXPECT_EQ(ivf->nlist(), 16u);
  EXPECT_EQ(ivf->size(), ds->db().num_chunks());
}

TEST(RetrievalKnobTest, FixedNprobeBudgetReachesTheIndexThroughARun) {
  // With adaptive probing off and an explicit budget, EVERY index search in
  // the run must probe exactly that many lists — mean_probes == budget is
  // only possible if the RunSpec knob reached IvfL2Index unmodified.
  RunSpec spec = IvfSpec();
  spec.scheduler.adaptive_nprobe = false;
  spec.scheduler.nprobe_budget = 2;
  RunMetrics m = RunExperiment(spec);
  EXPECT_EQ(m.records.size(), 20u);
  EXPECT_GT(m.mean_f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_probes, 2.0);
}

TEST(RetrievalKnobTest, AdaptiveNprobeVariesWithinBudgetEndToEnd) {
  // Adaptive mode: per-query early termination keeps the mean at or under
  // the budget and at or above one probe; completing the run proves the
  // adaptive path is live under the full serving stack.
  RunSpec spec = IvfSpec();
  spec.retrieval.adaptive.enabled = true;
  spec.retrieval.adaptive.min_probes = 1;
  spec.retrieval.adaptive.distance_ratio = 1.5;
  spec.scheduler.adaptive_nprobe = true;
  spec.scheduler.nprobe_budget = 8;
  RunMetrics m = RunExperiment(spec);
  EXPECT_EQ(m.records.size(), 20u);
  EXPECT_GE(m.mean_probes, 1.0);
  EXPECT_LE(m.mean_probes, 8.0);

  // A deeper budget can only probe more (or equal): the knob moves the
  // measured behaviour monotonically.
  spec.scheduler.nprobe_budget = 1;
  RunMetrics shallow = RunExperiment(spec);
  EXPECT_DOUBLE_EQ(shallow.mean_probes, 1.0);  // Budget 1 pins every query.
  EXPECT_LE(shallow.mean_probes, m.mean_probes);
}

TEST(RetrievalKnobTest, FlatBackendReportsZeroProbes) {
  RunSpec spec = IvfSpec();
  spec.retrieval = RetrievalIndexOptions{};  // Paper default: exact flat.
  RunMetrics m = RunExperiment(spec);
  EXPECT_EQ(m.records.size(), 20u);
  EXPECT_DOUBLE_EQ(m.mean_probes, 0.0);
}

TEST(RetrievalKnobTest, ShardedIvfRunMatchesSingleShardResults) {
  // Shard count is a pure storage/parallelism choice: the same experiment on
  // a 4-shard database must produce identical quality and probe depth.
  RunSpec spec = IvfSpec();
  spec.scheduler.adaptive_nprobe = false;
  spec.scheduler.nprobe_budget = 3;
  RunMetrics single = RunExperiment(spec);
  spec.retrieval.shards = 4;
  RunMetrics sharded = RunExperiment(spec);
  ASSERT_EQ(single.records.size(), sharded.records.size());
  EXPECT_DOUBLE_EQ(single.mean_f1(), sharded.mean_f1());
  EXPECT_DOUBLE_EQ(single.mean_delay(), sharded.mean_delay());
  EXPECT_DOUBLE_EQ(single.mean_probes, sharded.mean_probes);
}

}  // namespace
}  // namespace metis
