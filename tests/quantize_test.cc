// Determinism + parity property tests for the quantized index tiers
// (src/vectordb/quantize.h): int8 SQ and PQ mirrors with the exact-rerank
// tail, layered over both static backends and the mutable index.
//
// Contracts under test:
//
//   - u8 kernel tier parity: DotU8F32 in strict mode is bit-identical across
//     scalar / AVX2 / AVX-512 (16 float chains, fixed reduction tree).
//   - fp32 bit-parity: an index built WITH quantized mirrors, queried at
//     precision=fp32, returns bit-identical ids/order/distances to an index
//     built with no quantization at all. The knob off == the knob absent.
//   - Quantized determinism: for a fixed (tier, rerank_factor), results are
//     identical across shards {1,4} x threads {1,4} x flat/IVF(full-probe),
//     and across repeated runs — ids, order, AND distances (the rerank tail
//     re-scores with the exact kernel, so distances are exact fp32).
//   - Mutable index: quantized searches after an insert/delete/seal/compact/
//     retrain history are deterministic (same history -> same results) and
//     fp32 queries stay bit-identical to the quant-free twin.
//   - Probe accounting: quantized searches on IVF record the same probe
//     counts as their fp32 twins (probe planning is always fp32), and the
//     rerank pass is NOT a probe.
//   - Recall: int8 + rerank recovers >= 0.99 recall@10 on the clustered
//     corpus; PQ with generous rerank stays usable.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/clustered_corpus.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/mutable_index.h"
#include "src/vectordb/quantize.h"
#include "src/vectordb/recall.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

struct ScopedKernelTarget {
  explicit ScopedKernelTarget(KernelTarget t) { METIS_CHECK(SetKernelTarget(t)); }
  ~ScopedKernelTarget() { ResetKernelTarget(); }
};

std::vector<KernelTarget> SupportedTargets() {
  std::vector<KernelTarget> targets;
  for (KernelTarget t : {KernelTarget::kScalar, KernelTarget::kAvx2, KernelTarget::kAvx512}) {
    if (KernelTargetSupported(t)) {
      targets.push_back(t);
    }
  }
  return targets;
}

void ExpectBitEqual(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                    const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " rank " << i;
  }
}

QuantizationOptions BothTiers() {
  QuantizationOptions q;
  q.sq = true;
  q.pq = true;
  q.pq_m = 8;
  return q;
}

// --- u8 kernel tier parity ---------------------------------------------------

TEST(QuantKernelTest, U8DotBitIdenticalAcrossTargets) {
  Rng rng(0xCAB1E);
  for (size_t n : {1u, 7u, 15u, 16u, 17u, 64u, 100u, 256u, 1000u}) {
    std::vector<uint8_t> codes(n);
    std::vector<float> w(n);
    for (size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<uint8_t>(rng.Index(256));
      w[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    const float want = DotU8F32Target(KernelTarget::kScalar, /*fast_math=*/false, codes.data(),
                                      w.data(), n);
    for (KernelTarget t : SupportedTargets()) {
      const float got = DotU8F32Target(t, /*fast_math=*/false, codes.data(), w.data(), n);
      EXPECT_EQ(got, want) << "target=" << KernelTargetName(t) << " n=" << n;
    }
  }
}

TEST(QuantKernelTest, FastMathToggleRoundTrips) {
  EXPECT_FALSE(KernelFastMathEnabled());
  SetKernelFastMath(true);
  EXPECT_TRUE(KernelFastMathEnabled());
  // Fast-math results need not be bit-identical to strict, but must be close.
  Rng rng(0xFA57);
  const size_t n = 256;
  std::vector<uint8_t> codes(n);
  std::vector<float> w(n);
  double mag = 0.0;
  for (size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<uint8_t>(rng.Index(256));
    w[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    mag += 255.0 * std::abs(w[i]);
  }
  for (KernelTarget t : SupportedTargets()) {
    const float strict = DotU8F32Target(t, false, codes.data(), w.data(), n);
    const float fast = DotU8F32Target(t, true, codes.data(), w.data(), n);
    EXPECT_NEAR(strict, fast, 1e-3 * mag) << KernelTargetName(t);
  }
  SetKernelFastMath(false);
  EXPECT_FALSE(KernelFastMathEnabled());
}

// --- Static backend: fp32 bit-parity + quantized determinism -----------------

struct StaticCase {
  RetrievalIndexOptions::Backend backend;
  size_t shards;
  size_t threads;
};

std::vector<StaticCase> StaticGrid() {
  std::vector<StaticCase> cases;
  for (auto backend :
       {RetrievalIndexOptions::Backend::kFlat, RetrievalIndexOptions::Backend::kIvf}) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        cases.push_back(StaticCase{backend, shards, threads});
      }
    }
  }
  return cases;
}

std::string CaseName(const StaticCase& c) {
  return std::string(c.backend == RetrievalIndexOptions::Backend::kFlat ? "flat" : "ivf") +
         " shards=" + std::to_string(c.shards) + " threads=" + std::to_string(c.threads);
}

// Builds a static backend over the clustered corpus, mirrors trained.
std::unique_ptr<VectorIndex> BuildStatic(const ClusteredCorpus& corpus, const StaticCase& c,
                                         const QuantizationOptions& quant) {
  RetrievalIndexOptions opts;
  opts.backend = c.backend;
  opts.shards = c.shards;
  opts.nlist = 8;
  opts.nprobe = 8;  // Full probe: IVF results shard/tier-stable for parity.
  opts.quant = quant;
  IvfL2Index* ivf = nullptr;
  std::unique_ptr<VectorIndex> index = MakeBackendIndex(/*dim=*/corpus.centers[0].size(), opts, &ivf);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    index->Add(static_cast<ChunkId>(i + 1), corpus.points[i]);
  }
  if (ivf != nullptr) {
    ivf->Train();
  }
  if (quant.any()) {
    index->BuildQuantizedMirrors();
  }
  return index;
}

TEST(QuantStaticTest, Fp32QueriesBitIdenticalToQuantFreeIndex) {
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 60, 10, 6, 0x0DDBA11);
  const std::vector<Embedding> queries = corpus.AllQueries();
  for (const StaticCase& c : StaticGrid()) {
    ThreadPool pool(c.threads);
    auto plain = BuildStatic(corpus, c, QuantizationOptions{});
    auto quant = BuildStatic(corpus, c, BothTiers());
    RetrievalQuality fp32;  // Default: precision=kFp32.
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectBitEqual(quant->Search(queries[qi], 10, fp32), plain->Search(queries[qi], 10),
                     CaseName(c) + " q=" + std::to_string(qi));
    }
    // Batch path, all-fp32 qualities: must take the bit-identical sweep.
    std::vector<RetrievalQuality> quals(queries.size());
    auto got = quant->SearchBatch(queries, 10, &pool, quals);
    auto want = plain->SearchBatch(queries, 10, &pool);
    ASSERT_EQ(got.size(), want.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectBitEqual(got[qi], want[qi], CaseName(c) + " batch q=" + std::to_string(qi));
    }
  }
}

TEST(QuantStaticTest, QuantizedResultsInvariantAcrossShardsAndThreads) {
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 60, 10, 6, 0x5EED5);
  const std::vector<Embedding> queries = corpus.AllQueries();
  for (RetrievalPrecision tier : {RetrievalPrecision::kInt8, RetrievalPrecision::kPq}) {
    for (size_t rerank : {size_t{2}, size_t{4}}) {
      RetrievalQuality quality;
      quality.precision = tier;
      quality.rerank_factor = rerank;
      for (auto backend :
           {RetrievalIndexOptions::Backend::kFlat, RetrievalIndexOptions::Backend::kIvf}) {
        // Reference: shards=1, threads=1, per-query Search.
        StaticCase ref_case{backend, 1, 1};
        auto ref = BuildStatic(corpus, ref_case, BothTiers());
        std::vector<std::vector<SearchHit>> want;
        for (const Embedding& q : queries) {
          want.push_back(ref->Search(q, 10, quality));
        }
        for (const StaticCase& c : StaticGrid()) {
          if (c.backend != backend) {
            continue;
          }
          ThreadPool pool(c.threads);
          auto index = BuildStatic(corpus, c, BothTiers());
          const std::string ctx = std::string(RetrievalPrecisionName(tier)) + " rf=" +
                                  std::to_string(rerank) + " " + CaseName(c);
          for (size_t qi = 0; qi < queries.size(); ++qi) {
            ExpectBitEqual(index->Search(queries[qi], 10, quality), want[qi],
                           ctx + " q=" + std::to_string(qi));
          }
          // Batched with per-query qualities (exercises the split path).
          std::vector<RetrievalQuality> quals(queries.size(), quality);
          auto got = index->SearchBatch(queries, 10, &pool, quals);
          for (size_t qi = 0; qi < queries.size(); ++qi) {
            ExpectBitEqual(got[qi], want[qi], ctx + " batch q=" + std::to_string(qi));
          }
        }
      }
    }
  }
}

TEST(QuantStaticTest, MixedQualityBatchMatchesPerQuerySearch) {
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 50, 8, 4, 0x317ED);
  const std::vector<Embedding> queries = corpus.AllQueries();
  StaticCase c{RetrievalIndexOptions::Backend::kIvf, 4, 4};
  ThreadPool pool(c.threads);
  auto index = BuildStatic(corpus, c, BothTiers());
  // Interleave fp32 / int8 / pq across the batch.
  std::vector<RetrievalQuality> quals(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    quals[qi].precision = static_cast<RetrievalPrecision>(qi % 3);
    quals[qi].rerank_factor = 4;
  }
  auto got = index->SearchBatch(queries, 10, &pool, quals);
  ASSERT_EQ(got.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectBitEqual(got[qi], index->Search(queries[qi], 10, quals[qi]),
                   "mixed batch q=" + std::to_string(qi));
  }
}

TEST(QuantStaticTest, RerankedDistancesAreExact) {
  // Every distance a quantized search returns must equal the exact fp32
  // distance for that id — the rerank tail re-scores with the exact kernel.
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 50, 6, 4, 0xE7AC7);
  StaticCase c{RetrievalIndexOptions::Backend::kFlat, 1, 1};
  auto plain = BuildStatic(corpus, c, QuantizationOptions{});
  auto quant = BuildStatic(corpus, c, BothTiers());
  for (RetrievalPrecision tier : {RetrievalPrecision::kInt8, RetrievalPrecision::kPq}) {
    RetrievalQuality quality;
    quality.precision = tier;
    for (const Embedding& q : corpus.AllQueries()) {
      // Exhaustive exact ranking for distance lookup.
      auto exact = plain->Search(q, corpus.points.size());
      for (const SearchHit& h : quant->Search(q, 10, quality)) {
        bool found = false;
        for (const SearchHit& e : exact) {
          if (e.id == h.id) {
            EXPECT_EQ(h.distance, e.distance)
                << RetrievalPrecisionName(tier) << " id=" << h.id;
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "hit id " << h.id << " not in corpus";
      }
    }
  }
}

// --- Probe accounting --------------------------------------------------------

TEST(QuantProbeTest, QuantizedSearchRecordsSameProbesAsFp32) {
  // Probe planning is always fp32, so a quantized search scans exactly the
  // lists its fp32 twin scans — and the rerank pass is NOT a probe. The
  // histograms of two identical query streams, one per tier, must match.
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 60, 10, 6, 0x9B0BE);
  RetrievalIndexOptions opts;
  opts.backend = RetrievalIndexOptions::Backend::kIvf;
  opts.nlist = 8;
  opts.nprobe = 3;  // Partial probing: histogram is informative.
  opts.quant = BothTiers();
  IvfL2Index* ivf = nullptr;
  auto index = MakeBackendIndex(64, opts, &ivf);
  ASSERT_NE(ivf, nullptr);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    index->Add(static_cast<ChunkId>(i + 1), corpus.points[i]);
  }
  ivf->Train();
  index->BuildQuantizedMirrors();

  const std::vector<Embedding> queries = corpus.AllQueries();
  std::vector<std::vector<uint64_t>> hists;
  std::vector<double> means;
  for (RetrievalPrecision tier :
       {RetrievalPrecision::kFp32, RetrievalPrecision::kInt8, RetrievalPrecision::kPq}) {
    ivf->ResetProbeStats();
    RetrievalQuality quality;
    quality.precision = tier;
    for (const Embedding& q : queries) {
      index->Search(q, 10, quality);
    }
    EXPECT_EQ(ivf->searches(), queries.size()) << RetrievalPrecisionName(tier);
    hists.push_back(ivf->probe_histogram());
    means.push_back(ivf->mean_probes());
  }
  for (size_t t = 1; t < hists.size(); ++t) {
    EXPECT_EQ(hists[t], hists[0]) << "tier " << t << " histogram diverged from fp32";
    EXPECT_EQ(means[t], means[0]) << "tier " << t << " mean_probes diverged from fp32";
  }
  // Rerank factor must not change probe accounting either.
  ivf->ResetProbeStats();
  RetrievalQuality big_rerank;
  big_rerank.precision = RetrievalPrecision::kInt8;
  big_rerank.rerank_factor = 16;
  for (const Embedding& q : queries) {
    index->Search(q, 10, big_rerank);
  }
  EXPECT_EQ(ivf->probe_histogram(), hists[0]) << "rerank_factor leaked into probe accounting";
}

// --- Mutable index -----------------------------------------------------------

TEST(QuantMutableTest, QuantizedDeterministicAfterChurn) {
  // Two identical (options, op-history) mutable indexes must answer quantized
  // queries identically at every lifecycle checkpoint, and fp32 queries must
  // stay bit-identical to a quant-free twin with the same history.
  const size_t dim = 64;
  ClusteredCorpus corpus = MakeClusteredCorpus(dim, 8, 40, 8, 4, 0xC0DE5);
  const std::vector<Embedding> queries = corpus.AllQueries();

  for (auto backend :
       {RetrievalIndexOptions::Backend::kFlat, RetrievalIndexOptions::Backend::kIvf}) {
    RetrievalIndexOptions opts;
    opts.backend = backend;
    opts.shards = 2;
    opts.nlist = 8;
    opts.nprobe = 8;
    opts.quant = BothTiers();
    opts.mutable_index = true;
    opts.mutation.memtable_rows = 48;
    opts.mutation.compact_segments = 3;
    RetrievalIndexOptions plain_opts = opts;
    plain_opts.quant = QuantizationOptions{};

    auto a = std::make_unique<MutableIndex>(dim, opts);
    auto b = std::make_unique<MutableIndex>(dim, opts);
    auto plain = std::make_unique<MutableIndex>(dim, plain_opts);
    auto run_all = [&](auto&& fn) {
      fn(*a);
      fn(*b);
      fn(*plain);
    };

    // Initial bulk load + finalize (trains base + mirrors).
    run_all([&](MutableIndex& m) {
      for (size_t i = 0; i < corpus.points.size(); ++i) {
        m.Add(static_cast<ChunkId>(i + 1), corpus.points[i]);
      }
      m.Finalize();
    });

    Rng oprng(0xC115 + (backend == RetrievalIndexOptions::Backend::kIvf ? 1 : 0));
    ChunkId next_id = static_cast<ChunkId>(corpus.points.size() + 1);
    auto check = [&](const std::string& stage) {
      for (RetrievalPrecision tier : {RetrievalPrecision::kInt8, RetrievalPrecision::kPq}) {
        RetrievalQuality quality;
        quality.precision = tier;
        quality.rerank_factor = 4;
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ExpectBitEqual(a->Search(queries[qi], 10, quality), b->Search(queries[qi], 10, quality),
                         stage + " " + RetrievalPrecisionName(tier) + " q=" + std::to_string(qi));
        }
      }
      RetrievalQuality fp32;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectBitEqual(a->Search(queries[qi], 10, fp32), plain->Search(queries[qi], 10),
                       stage + " fp32-parity q=" + std::to_string(qi));
      }
    };

    check("post-finalize");
    // Churn: inserts (cluster-jittered so they matter to the top-k) and
    // deletes, crossing seal and compaction thresholds.
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 60; ++i) {
        size_t c = oprng.Index(corpus.centers.size());
        Embedding v = Jitter(oprng, corpus.centers[c], 0.35);
        ChunkId id = next_id++;
        run_all([&](MutableIndex& m) { m.Insert(id, v); });
        if (i % 7 == 3) {
          ChunkId victim = static_cast<ChunkId>(1 + oprng.Index(corpus.points.size()));
          run_all([&](MutableIndex& m) { m.Delete(victim); });
        }
      }
      check("churn round " + std::to_string(round));
    }
    run_all([&](MutableIndex& m) { m.SealMemtable(); });
    check("post-seal");
    run_all([&](MutableIndex& m) { m.CompactSegments(); });
    check("post-compact");
    run_all([&](MutableIndex& m) { m.RetrainBase(); });
    check("post-retrain");
  }
}

// --- Recall ------------------------------------------------------------------

TEST(QuantRecallTest, Int8WithRerankRecoversExactRecall) {
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 80, 16, 8, 0x4ECA11);
  FlatL2Index truth(64);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    truth.Add(static_cast<ChunkId>(i + 1), corpus.points[i]);
  }
  RecallEval eval(truth, corpus.AllQueries(), /*k=*/10);

  StaticCase c{RetrievalIndexOptions::Backend::kFlat, 1, 1};
  auto index = BuildStatic(corpus, c, BothTiers());
  RetrievalQuality int8;
  int8.precision = RetrievalPrecision::kInt8;
  int8.rerank_factor = 4;
  EXPECT_GE(eval.Evaluate(*index, nullptr, int8), 0.99) << "int8+rerank recall@10";
  RetrievalQuality pq;
  pq.precision = RetrievalPrecision::kPq;
  pq.rerank_factor = 8;
  EXPECT_GE(eval.Evaluate(*index, nullptr, pq), 0.90) << "pq+rerank recall@10";
}

// --- bytes_per_row -----------------------------------------------------------

TEST(QuantMemoryTest, BytesPerRowReflectsTierStorage) {
  ClusteredCorpus corpus = MakeClusteredCorpus(64, 8, 40, 4, 2, 0xB17E5);
  StaticCase c{RetrievalIndexOptions::Backend::kFlat, 1, 1};
  auto index = BuildStatic(corpus, c, BothTiers());
  auto* flat = dynamic_cast<FlatL2Index*>(index.get());
  ASSERT_NE(flat, nullptr);
  const size_t fp32 = flat->bytes_per_row(RetrievalPrecision::kFp32);
  const size_t int8 = flat->bytes_per_row(RetrievalPrecision::kInt8);
  const size_t pq = flat->bytes_per_row(RetrievalPrecision::kPq);
  EXPECT_EQ(fp32, 64 * sizeof(float));
  EXPECT_EQ(int8, 64u);  // dim=64 already 64B-aligned.
  EXPECT_EQ(pq, 8u);
  EXPECT_GE(fp32, 8 * pq) << "PQ must deliver >= 8x memory reduction";
}

}  // namespace
}  // namespace metis
