// Unit tests for the embedding model: geometry and retrieval-relevant
// properties (similar texts close, unrelated texts near-orthogonal).

#include <gtest/gtest.h>

#include "src/embed/embedding.h"

namespace metis {
namespace {

EmbeddingModel Cohere() { return EmbeddingModel(GetEmbeddingModel("cohere-embed-v3-sim")); }

TEST(EmbeddingTest, DeterministicPerText) {
  EmbeddingModel m = Cohere();
  EXPECT_EQ(m.Embed("alpha beta gamma"), m.Embed("alpha beta gamma"));
}

TEST(EmbeddingTest, NormalizedToUnitLength) {
  EmbeddingModel m = Cohere();
  Embedding v = m.Embed("some words to embed here");
  double norm = 0;
  for (float x : v) {
    norm += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EmbeddingTest, EmptyTextIsZeroVector) {
  EmbeddingModel m = Cohere();
  Embedding v = m.Embed("");
  for (float x : v) {
    EXPECT_EQ(x, 0.0f);
  }
}

TEST(EmbeddingTest, SharedVocabularyIsCloserThanDisjoint) {
  EmbeddingModel m = Cohere();
  Embedding q = m.Embed("kimbrough stadium location county");
  Embedding related = m.Embed("the kimbrough stadium location is in randall county texas");
  Embedding unrelated = m.Embed("quarterly revenue growth of semiconductor vendors");
  EXPECT_LT(L2DistanceSquared(q, related), L2DistanceSquared(q, unrelated));
  EXPECT_GT(CosineSimilarity(q, related), CosineSimilarity(q, unrelated));
}

TEST(EmbeddingTest, MoreOverlapMeansCloser) {
  EmbeddingModel m = Cohere();
  Embedding q = m.Embed("alpha beta gamma delta");
  Embedding three = m.Embed("alpha beta gamma zzz yyy");
  Embedding one = m.Embed("alpha qqq rrr sss ttt");
  EXPECT_LT(L2DistanceSquared(q, three), L2DistanceSquared(q, one));
}

TEST(EmbeddingTest, CosineOfIdenticalTextIsOne) {
  EmbeddingModel m = Cohere();
  Embedding a = m.Embed("hello there friend");
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-5);
}

TEST(EmbeddingTest, UnrelatedTextsNearOrthogonal) {
  EmbeddingModel m = Cohere();
  Embedding a = m.Embed("stadium county location born");
  Embedding b = m.Embed("voyager spacecraft neptune storms");
  EXPECT_LT(std::abs(CosineSimilarity(a, b)), 0.35);
}

TEST(EmbeddingTest, DifferentModelsDifferentGeometry) {
  EmbeddingModel a(GetEmbeddingModel("cohere-embed-v3-sim"));
  EmbeddingModel b(GetEmbeddingModel("text-embedding-3-large-256-sim"));
  EXPECT_NE(a.Embed("same text"), b.Embed("same text"));
}

TEST(EmbeddingTest, CatalogHasThreeModels) {
  EXPECT_EQ(EmbeddingModelCatalog().size(), 3u);
  EXPECT_EQ(GetEmbeddingModel("all-mpnet-base-v2-sim").dim, 768u);
}

TEST(EmbeddingDeathTest, UnknownModelAborts) {
  EXPECT_DEATH(GetEmbeddingModel("no-such-model"), "CHECK failed");
}

TEST(EmbeddingDeathTest, DimensionMismatchAborts) {
  Embedding a(4, 0.0f);
  Embedding b(5, 0.0f);
  EXPECT_DEATH(L2DistanceSquared(a, b), "CHECK failed");
}

}  // namespace
}  // namespace metis
