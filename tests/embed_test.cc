// Unit tests for the embedding model: geometry and retrieval-relevant
// properties (similar texts close, unrelated texts near-orthogonal).

#include <gtest/gtest.h>

#include "src/embed/embedding.h"

namespace metis {
namespace {

EmbeddingModel Cohere() { return EmbeddingModel(GetEmbeddingModel("cohere-embed-v3-sim")); }

TEST(EmbeddingTest, DeterministicPerText) {
  EmbeddingModel m = Cohere();
  EXPECT_EQ(m.Embed("alpha beta gamma"), m.Embed("alpha beta gamma"));
}

TEST(EmbeddingTest, NormalizedToUnitLength) {
  EmbeddingModel m = Cohere();
  Embedding v = m.Embed("some words to embed here");
  double norm = 0;
  for (float x : v) {
    norm += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EmbeddingTest, EmptyTextIsZeroVector) {
  EmbeddingModel m = Cohere();
  Embedding v = m.Embed("");
  for (float x : v) {
    EXPECT_EQ(x, 0.0f);
  }
}

TEST(EmbeddingTest, SharedVocabularyIsCloserThanDisjoint) {
  EmbeddingModel m = Cohere();
  Embedding q = m.Embed("kimbrough stadium location county");
  Embedding related = m.Embed("the kimbrough stadium location is in randall county texas");
  Embedding unrelated = m.Embed("quarterly revenue growth of semiconductor vendors");
  EXPECT_LT(L2DistanceSquared(q, related), L2DistanceSquared(q, unrelated));
  EXPECT_GT(CosineSimilarity(q, related), CosineSimilarity(q, unrelated));
}

TEST(EmbeddingTest, MoreOverlapMeansCloser) {
  EmbeddingModel m = Cohere();
  Embedding q = m.Embed("alpha beta gamma delta");
  Embedding three = m.Embed("alpha beta gamma zzz yyy");
  Embedding one = m.Embed("alpha qqq rrr sss ttt");
  EXPECT_LT(L2DistanceSquared(q, three), L2DistanceSquared(q, one));
}

TEST(EmbeddingTest, CosineOfIdenticalTextIsOne) {
  EmbeddingModel m = Cohere();
  Embedding a = m.Embed("hello there friend");
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-5);
}

TEST(EmbeddingTest, UnrelatedTextsNearOrthogonal) {
  EmbeddingModel m = Cohere();
  Embedding a = m.Embed("stadium county location born");
  Embedding b = m.Embed("voyager spacecraft neptune storms");
  EXPECT_LT(std::abs(CosineSimilarity(a, b)), 0.35);
}

TEST(EmbeddingTest, DifferentModelsDifferentGeometry) {
  EmbeddingModel a(GetEmbeddingModel("cohere-embed-v3-sim"));
  EmbeddingModel b(GetEmbeddingModel("text-embedding-3-large-256-sim"));
  EXPECT_NE(a.Embed("same text"), b.Embed("same text"));
}

TEST(EmbeddingTest, CatalogHasThreeModels) {
  EXPECT_EQ(EmbeddingModelCatalog().size(), 3u);
  EXPECT_EQ(GetEmbeddingModel("all-mpnet-base-v2-sim").dim, 768u);
}

TEST(EmbedBatchTest, MatchesPerTextEmbedForAnyPoolSize) {
  EmbeddingModel m = Cohere();
  std::vector<std::string> texts = {
      "alpha beta gamma", "", "quarterly revenue figures", "alpha beta gamma",
      "committee budget vote outcome",
  };
  std::vector<Embedding> want;
  for (const std::string& t : texts) {
    want.push_back(m.Embed(t));
  }
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<Embedding> got = m.EmbedBatch(texts, threads == 0 ? nullptr : &pool);
    ASSERT_EQ(got.size(), texts.size());
    for (size_t i = 0; i < texts.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(EmbedBatchTest, EmptyBatchIsEmpty) {
  EmbeddingModel m = Cohere();
  EXPECT_TRUE(m.EmbedBatch({}).empty());
}

TEST(EmbeddingCacheTest, GetBatchMatchesGetAndMemoizes) {
  EmbeddingModel m = Cohere();
  EmbeddingCache cache(&m, 16);
  // Warm one entry so the batch sees a pre-existing hit.
  cache.Get("warm entry text");
  ThreadPool pool(2);
  std::vector<std::string> texts = {
      "warm entry text", "fresh one", "fresh two", "fresh one",  // Duplicate miss.
  };
  std::vector<Embedding> got = cache.GetBatch(texts, &pool);
  ASSERT_EQ(got.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(got[i], m.Embed(texts[i])) << "i=" << i;
  }
  // 1 warm hit; 2 unique misses (the duplicate is served from the single
  // computation, not recomputed).
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);  // warm-up miss + 2 batch misses.
  // Everything from the batch is memoized now.
  size_t misses_before = cache.misses();
  cache.GetBatch(texts, nullptr);
  EXPECT_EQ(cache.misses(), misses_before);
}

TEST(EmbeddingCacheTest, GetBatchResultsSurviveEviction) {
  EmbeddingModel m = Cohere();
  EmbeddingCache cache(&m, 2);  // Tiny: the batch itself forces evictions.
  std::vector<std::string> texts = {"one text", "two text", "three text", "four text"};
  std::vector<Embedding> got = cache.GetBatch(texts, nullptr);
  ASSERT_EQ(got.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(got[i], m.Embed(texts[i])) << "i=" << i;  // Owned copies: intact.
  }
}

TEST(EmbeddingDeathTest, UnknownModelAborts) {
  EXPECT_DEATH(GetEmbeddingModel("no-such-model"), "CHECK failed");
}

TEST(EmbeddingDeathTest, DimensionMismatchAborts) {
  Embedding a(4, 0.0f);
  Embedding b(5, 0.0f);
  EXPECT_DEATH(L2DistanceSquared(a, b), "CHECK failed");
}

}  // namespace
}  // namespace metis
