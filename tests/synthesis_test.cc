// Tests for the synthesis executors: all three methods end-to-end on a real
// generated dataset + engine, including the quality/delay orderings the paper
// builds on.

#include <gtest/gtest.h>

#include "src/runner/runner.h"
#include "src/synthesis/config.h"
#include "src/synthesis/synthesis.h"

namespace metis {
namespace {

class SynthesisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = GetOrGenerateDataset("musique", 60, "cohere-embed-v3-sim", 7).get();
    keepalive_ = GetOrGenerateDataset("musique", 60, "cohere-embed-v3-sim", 7);
  }

  RagResult Run(const RagQuery& q, const RagConfig& cfg) {
    return RunSingleQuery(*dataset_, q, cfg, "mistral-7b-v3-awq", 7);
  }

  const RagQuery& JointQuery() {
    for (const RagQuery& q : dataset_->queries()) {
      if (q.requires_joint && q.num_facts >= 3) {
        return q;
      }
    }
    return dataset_->queries()[0];
  }

  static const Dataset* dataset_;
  static std::shared_ptr<const Dataset> keepalive_;
};
const Dataset* SynthesisTest::dataset_ = nullptr;
std::shared_ptr<const Dataset> SynthesisTest::keepalive_;

TEST_F(SynthesisTest, ConfigNames) {
  EXPECT_STREQ(SynthesisMethodName(SynthesisMethod::kStuff), "stuff");
  EXPECT_EQ(SynthesisMethodFromName("map_reduce"), SynthesisMethod::kMapReduce);
  EXPECT_EQ(RagConfigToString(RagConfig{SynthesisMethod::kStuff, 5, 0}), "stuff(k=5)");
  EXPECT_EQ(RagConfigToString(RagConfig{SynthesisMethod::kMapReduce, 5, 80}),
            "map_reduce(k=5,L=80)");
}

TEST_F(SynthesisTest, ConfigNameRoundTrip) {
  for (SynthesisMethod m : {SynthesisMethod::kMapRerank, SynthesisMethod::kStuff,
                            SynthesisMethod::kMapReduce}) {
    EXPECT_EQ(SynthesisMethodFromName(SynthesisMethodName(m)), m);
  }
}

TEST_F(SynthesisTest, StuffMakesOneCall) {
  RagResult r = Run(JointQuery(), RagConfig{SynthesisMethod::kStuff, 5, 0});
  EXPECT_EQ(r.llm_calls, 1);
  EXPECT_EQ(r.retrieved_chunks, 5);
  EXPECT_GT(r.total_prompt_tokens, 5 * 256);
  EXPECT_GT(r.finish_time, r.exec_start);
}

TEST_F(SynthesisTest, MapRerankMakesOneCallPerChunk) {
  RagResult r = Run(JointQuery(), RagConfig{SynthesisMethod::kMapRerank, 4, 0});
  EXPECT_EQ(r.llm_calls, 4);
}

TEST_F(SynthesisTest, MapReduceMakesMappersPlusReduce) {
  RagResult r = Run(JointQuery(), RagConfig{SynthesisMethod::kMapReduce, 4, 60});
  EXPECT_EQ(r.llm_calls, 5);
}

TEST_F(SynthesisTest, DeterministicAcrossRuns) {
  RagConfig cfg{SynthesisMethod::kMapReduce, 5, 60};
  RagResult a = Run(JointQuery(), cfg);
  RagResult b = Run(JointQuery(), cfg);
  EXPECT_EQ(a.answer_text, b.answer_text);
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
}

TEST_F(SynthesisTest, ChunkCountClampsToDatabase) {
  RagResult r = Run(dataset_->queries()[0],
                    RagConfig{SynthesisMethod::kStuff, 1000000, 0});
  EXPECT_LE(r.retrieved_chunks, static_cast<int>(dataset_->db().num_chunks()));
}

TEST_F(SynthesisTest, CoverageDiagnosticsPopulated) {
  const RagQuery& q = JointQuery();
  RagResult r = Run(q, RagConfig{SynthesisMethod::kStuff, 3 * q.num_facts, 0});
  EXPECT_EQ(r.gold_facts_total, q.num_facts);
  EXPECT_GE(r.gold_facts_retrieved, 1);
  EXPECT_LE(r.gold_facts_retrieved, r.gold_facts_total);
}

TEST_F(SynthesisTest, MoreChunksCostMoreComputeAndDelay) {
  const RagQuery& q = JointQuery();
  RagResult r3 = Run(q, RagConfig{SynthesisMethod::kStuff, 3, 0});
  RagResult r35 = Run(q, RagConfig{SynthesisMethod::kStuff, 35, 0});
  EXPECT_GT(r35.total_prompt_tokens, r3.total_prompt_tokens * 5);
  EXPECT_GT(r35.exec_delay(), r3.exec_delay());
}

TEST_F(SynthesisTest, LongerIntermediatesCostMoreDelay) {
  // The map stage decodes ~L tokens per chunk, so intermediate length is a
  // first-order delay knob (Fig. 4c).
  const RagQuery& q = JointQuery();
  double d_short = Run(q, RagConfig{SynthesisMethod::kMapReduce, 5, 10}).exec_delay();
  double d_long = Run(q, RagConfig{SynthesisMethod::kMapReduce, 5, 200}).exec_delay();
  EXPECT_GT(d_long, d_short * 1.5);
}

TEST_F(SynthesisTest, PromptEstimatorsMatchMethodShape) {
  Simulator sim;
  EngineConfig cfg;
  cfg.model = Mistral7BAwq();
  cfg.kv_pool_bytes = 4.0 * kGiB;
  LlmEngine engine(&sim, cfg, 1);
  BehaviorModel behavior(BehaviorParams{}, 1);
  SynthesisExecutor ex(&sim, &engine, &behavior, dataset_, 1);
  int q = 32;
  EXPECT_EQ(ex.StuffPromptTokens(q, 4),
            SynthesisExecutor::kInstructionTokens + q + 4 * 256);
  EXPECT_EQ(ex.MapperPromptTokens(q), SynthesisExecutor::kInstructionTokens + q + 256);
  EXPECT_EQ(ex.ReducePromptTokens(q, 4, 50),
            SynthesisExecutor::kInstructionTokens + q + 200);
  // Stuff grows linearly in chunks; reduce in intermediates.
  EXPECT_GT(ex.StuffPromptTokens(q, 8), ex.StuffPromptTokens(q, 4));
  EXPECT_GT(ex.ReducePromptTokens(q, 4, 100), ex.ReducePromptTokens(q, 4, 50));
}

// Property sweep: for every synthesis method, F1 is in [0,1], the answer is
// non-empty, and timing is monotone.
class SynthesisMethodSweep : public SynthesisTest,
                             public ::testing::WithParamInterface<SynthesisMethod> {};

TEST_P(SynthesisMethodSweep, InvariantsHoldAcrossQueries) {
  for (int qi = 0; qi < 12; ++qi) {
    const RagQuery& q = dataset_->queries()[static_cast<size_t>(qi)];
    RagResult r = Run(q, RagConfig{GetParam(), 4, 60});
    EXPECT_GE(r.f1, 0.0);
    EXPECT_LE(r.f1, 1.0);
    EXPECT_FALSE(r.answer_text.empty());  // Models always emit something.
    EXPECT_GT(r.finish_time, r.exec_start);
    EXPECT_GE(r.exec_delay(), SynthesisExecutor::kRetrievalSeconds);
    EXPECT_GT(r.total_output_tokens, 0);
    EXPECT_EQ(r.query_id, q.id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SynthesisMethodSweep,
                         ::testing::Values(SynthesisMethod::kMapRerank,
                                           SynthesisMethod::kStuff,
                                           SynthesisMethod::kMapReduce),
                         [](const ::testing::TestParamInfo<SynthesisMethod>& info) {
                           return SynthesisMethodName(info.param);
                         });

}  // namespace
}  // namespace metis
