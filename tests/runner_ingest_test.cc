// Runner-level tests for live ingest: deterministic insert/delete streams
// against a mutable serving index inside a full serving experiment, parity of
// the mutable path with the static one when nothing mutates, and defined
// metrics on degenerate zero-completion runs (ingest-only workloads).

#include <gtest/gtest.h>

#include "src/runner/runner.h"
#include "src/vectordb/mutable_index.h"

namespace metis {
namespace {

RunSpec IngestSpec() {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 20;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kMetis;
  spec.seed = 11;
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 8;
  spec.retrieval.nprobe = 2;
  spec.retrieval.mutable_index = true;
  spec.retrieval.mutation.memtable_rows = 64;
  spec.ingest.enabled = true;
  spec.ingest.num_ops = 150;
  spec.ingest.rate = 20.0;
  spec.ingest.insert_fraction = 0.7;
  return spec;
}

TEST(RunnerIngestTest, IngestRunServesQueriesAndCountsOps) {
  RunMetrics m = RunExperiment(IngestSpec());
  EXPECT_EQ(m.records.size(), 20u);
  EXPECT_GT(m.mean_f1(), 0.1);
  // Every scheduled op landed, split across both kinds.
  EXPECT_EQ(m.ingest.inserts + m.ingest.deletes, 150u);
  EXPECT_GT(m.ingest.inserts, 0u);
  EXPECT_GT(m.ingest.deletes, 0u);
  // Enough inserts to roll the memtable over at least once.
  EXPECT_GT(m.ingest.seals, 0u);
  EXPECT_EQ(m.ingest.tombstones, m.ingest.deletes);
  EXPECT_GT(m.ingest.live_chunks, 0u);
  // The depth knob still reaches the (mutable) index.
  EXPECT_GT(m.mean_probes, 0.0);
}

TEST(RunnerIngestTest, IngestRunIsDeterministic) {
  RunMetrics a = RunExperiment(IngestSpec());
  RunMetrics b = RunExperiment(IngestSpec());
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_DOUBLE_EQ(a.mean_f1(), b.mean_f1());
  EXPECT_DOUBLE_EQ(a.mean_delay(), b.mean_delay());
  EXPECT_DOUBLE_EQ(a.mean_probes, b.mean_probes);
  EXPECT_EQ(a.ingest.inserts, b.ingest.inserts);
  EXPECT_EQ(a.ingest.deletes, b.ingest.deletes);
  EXPECT_EQ(a.ingest.seals, b.ingest.seals);
  EXPECT_EQ(a.ingest.compactions, b.ingest.compactions);
  EXPECT_EQ(a.ingest.retrains, b.ingest.retrains);
  EXPECT_EQ(a.ingest.live_chunks, b.ingest.live_chunks);
}

// With no ingest stream, routing the same spec through the mutable index must
// not change serving results at all: same F1s, delays, and probe accounting
// as the static-index build (the runner-level face of the parity contract).
TEST(RunnerIngestTest, MutableIndexWithoutIngestMatchesStaticRun) {
  RunSpec spec = IngestSpec();
  spec.ingest = IngestOptions{};  // No mutation stream.
  RunSpec static_spec = spec;
  static_spec.retrieval.mutable_index = false;

  RunMetrics mut = RunExperiment(spec);
  RunMetrics sta = RunExperiment(static_spec);
  ASSERT_EQ(mut.records.size(), sta.records.size());
  EXPECT_EQ(mut.mean_f1(), sta.mean_f1());
  EXPECT_EQ(mut.mean_delay(), sta.mean_delay());
  EXPECT_EQ(mut.p99_delay(), sta.p99_delay());
  EXPECT_EQ(mut.mean_probes, sta.mean_probes);
  EXPECT_EQ(mut.probe_histogram, sta.probe_histogram);
  for (size_t i = 0; i < mut.records.size(); ++i) {
    EXPECT_EQ(mut.records[i].result.f1, sta.records[i].result.f1);
  }
  // The mutable run reports gauges; the static run reports zeros.
  EXPECT_GT(mut.ingest.live_chunks, 0u);
  EXPECT_EQ(sta.ingest.live_chunks, 0u);
}

// Ingest-only run: zero queries, zero completions. Every metric accessor must
// return a defined value (no CHECK failure, no NaN) and the op stream still
// runs to completion against the index.
TEST(RunnerIngestTest, IngestOnlyRunHasDefinedMetrics) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 0;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kVllmFixed;
  spec.seed = 7;
  spec.retrieval.mutable_index = true;
  spec.retrieval.mutation.memtable_rows = 16;
  spec.ingest.enabled = true;
  spec.ingest.num_ops = 80;
  spec.ingest.rate = 40.0;
  spec.ingest.insert_fraction = 0.6;

  RunMetrics m = RunExperiment(spec);
  EXPECT_TRUE(m.records.empty());
  EXPECT_EQ(m.mean_delay(), 0.0);
  EXPECT_EQ(m.p50_delay(), 0.0);
  EXPECT_EQ(m.p99_delay(), 0.0);
  EXPECT_EQ(m.mean_f1(), 0.0);
  EXPECT_EQ(m.throughput_qps, 0.0);
  EXPECT_EQ(m.goodput_qps, 0.0);
  ASSERT_EQ(m.class_metrics.size(), 1u);  // Implicit default class.
  EXPECT_EQ(m.class_metrics[0].p50_delay(), 0.0);
  EXPECT_EQ(m.class_metrics[0].p99_delay(), 0.0);
  EXPECT_EQ(m.class_metrics[0].goodput_qps, 0.0);
  EXPECT_EQ(m.ingest.inserts + m.ingest.deletes, 80u);
  EXPECT_GT(m.ingest.seals, 0u);
}

// Same degenerate shape through the closed-loop path (arrival_rate <= 0).
TEST(RunnerIngestTest, ClosedLoopZeroQueriesIsDefined) {
  RunSpec spec;
  spec.dataset = "squad";
  spec.num_queries = 0;
  spec.arrival_rate = 0.0;
  spec.system = SystemKind::kVllmFixed;
  spec.seed = 3;
  RunMetrics m = RunExperiment(spec);
  EXPECT_TRUE(m.records.empty());
  EXPECT_EQ(m.p50_delay(), 0.0);
  EXPECT_EQ(m.p99_delay(), 0.0);
  EXPECT_EQ(m.goodput_qps, 0.0);
}

// Mixed-workload ingest: every stack gets its own decorrelated op stream and
// reports its own lifecycle gauges.
TEST(RunnerIngestTest, MixedIngestRunsPerStackStreams) {
  MixedRunSpec spec;
  spec.datasets = {"squad", "musique"};
  spec.queries_per_dataset = 10;
  spec.rate_per_dataset = 2.0;
  spec.system = SystemKind::kVllmFixed;
  spec.seed = 19;
  spec.retrieval.mutable_index = true;
  spec.retrieval.mutation.memtable_rows = 32;
  spec.ingest.enabled = true;
  spec.ingest.num_ops = 60;
  spec.ingest.rate = 15.0;

  std::vector<RunMetrics> out = RunMixedExperiment(spec);
  ASSERT_EQ(out.size(), 2u);
  for (const RunMetrics& m : out) {
    EXPECT_EQ(m.records.size(), 10u);
    EXPECT_EQ(m.ingest.inserts + m.ingest.deletes, 60u);
    EXPECT_GT(m.ingest.seals, 0u);
  }
  // Decorrelated per-stack streams: the insert/delete split differs.
  EXPECT_NE(out[0].ingest.inserts, out[1].ingest.inserts);
}

}  // namespace
}  // namespace metis
