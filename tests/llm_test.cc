// Unit tests for the LLM substrate: model specs, KV-cache manager, engine
// timing/memory behaviour, behaviour model, API client.

#include <gtest/gtest.h>

#include "src/llm/behavior.h"
#include "src/llm/engine.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"
#include "src/sim/simulator.h"

namespace metis {
namespace {

// ---------- ModelSpec ----------

TEST(ModelSpecTest, KvBytesMatchArchitectures) {
  // Mistral-7B: 32 layers x 8 KV heads x 128 dim x fp16 x (K+V) = 128 KiB.
  EXPECT_DOUBLE_EQ(Mistral7BAwq().kv_bytes_per_token, 131072.0);
  // Llama-70B: 80 layers -> 320 KiB.
  EXPECT_DOUBLE_EQ(Llama70BAwq().kv_bytes_per_token, 327680.0);
}

TEST(ModelSpecTest, CatalogLookup) {
  EXPECT_EQ(GetModelSpec("mistral-7b-v3-awq").name, "mistral-7b-v3-awq");
  EXPECT_TRUE(GetModelSpec("gpt-4o").api_model);
  EXPECT_EQ(ModelCatalog().size(), 5u);
}

TEST(ModelSpecTest, BiggerModelIsSlowerAndBetter) {
  ModelSpec small = Mistral7BAwq();
  ModelSpec big = Llama70BAwq();
  EXPECT_GT(small.prefill_tokens_per_sec, big.prefill_tokens_per_sec);
  EXPECT_LT(small.fact_recovery, big.fact_recovery);
  // But only marginally better: RAG answers come from context (§7.4).
  EXPECT_LT(big.fact_recovery - small.fact_recovery, 0.08);
}

TEST(ModelSpecDeathTest, UnknownModelAborts) {
  EXPECT_DEATH(GetModelSpec("nonexistent"), "CHECK failed");
}

// ---------- KvCacheManager ----------

class KvCacheTest : public ::testing::Test {
 protected:
  // 1 MiB pool, 16-token blocks, 1 KiB/token -> 64 blocks of 16 KiB.
  KvCacheManager kv_{1024.0 * 1024.0, 16, 1024.0};
};

TEST_F(KvCacheTest, BlockMath) {
  EXPECT_EQ(kv_.total_blocks(), 64);
  EXPECT_EQ(kv_.BlocksForTokens(1), 1);
  EXPECT_EQ(kv_.BlocksForTokens(16), 1);
  EXPECT_EQ(kv_.BlocksForTokens(17), 2);
  EXPECT_DOUBLE_EQ(kv_.BytesForTokens(17), 2 * 16 * 1024.0);
}

TEST_F(KvCacheTest, AllocateAndFree) {
  EXPECT_TRUE(kv_.Allocate(1, 160));  // 10 blocks.
  EXPECT_EQ(kv_.free_blocks(), 54);
  kv_.Free(1);
  EXPECT_EQ(kv_.free_blocks(), 64);
}

TEST_F(KvCacheTest, AllocationFailsWithoutSideEffects) {
  EXPECT_TRUE(kv_.Allocate(1, 16 * 60));  // 60 blocks.
  EXPECT_FALSE(kv_.Allocate(2, 16 * 10));  // Needs 10 > 4 free.
  EXPECT_EQ(kv_.free_blocks(), 4);
  EXPECT_TRUE(kv_.Allocate(3, 16 * 4));
}

TEST_F(KvCacheTest, ExtendAllocatesOnlyAtBlockBoundary) {
  EXPECT_TRUE(kv_.Allocate(1, 10));
  EXPECT_EQ(kv_.used_blocks(), 1);
  EXPECT_TRUE(kv_.Extend(1, 6));  // 16 total: still one block.
  EXPECT_EQ(kv_.used_blocks(), 1);
  EXPECT_TRUE(kv_.Extend(1, 1));  // 17: second block.
  EXPECT_EQ(kv_.used_blocks(), 2);
}

TEST_F(KvCacheTest, FreeUnknownIsNoop) {
  kv_.Free(42);
  EXPECT_EQ(kv_.free_blocks(), 64);
}

TEST_F(KvCacheTest, PrefixSharingRefcounts) {
  int64_t newly = kv_.AcquirePrefix(7, 32);  // 2 blocks.
  EXPECT_EQ(newly, 2);
  EXPECT_TRUE(kv_.PrefixResident(7));
  EXPECT_EQ(kv_.AcquirePrefix(7, 32), 0);  // Cache hit.
  EXPECT_EQ(kv_.used_blocks(), 2);
  kv_.ReleasePrefix(7);
  EXPECT_TRUE(kv_.PrefixResident(7));  // Still one holder.
  kv_.ReleasePrefix(7);
  EXPECT_FALSE(kv_.PrefixResident(7));
  EXPECT_EQ(kv_.used_blocks(), 0);
}

TEST_F(KvCacheTest, PrefixAcquireFailsWhenFull) {
  EXPECT_TRUE(kv_.Allocate(1, 16 * 63));
  EXPECT_EQ(kv_.AcquirePrefix(9, 64), -1);  // Needs 4 blocks, 1 free.
  EXPECT_FALSE(kv_.PrefixResident(9));
}

// ---------- LlmEngine ----------

class EngineTest : public ::testing::Test {
 protected:
  EngineConfig Config() {
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = 4.0 * kGiB;
    return cfg;
  }

  Simulator sim_;
};

TEST_F(EngineTest, SingleRequestCompletesWithSaneTiming) {
  LlmEngine engine(&sim_, Config(), 1);
  RequestTiming timing;
  bool done = false;
  InferenceRequest req;
  req.prompt_tokens = 2048;
  req.output_tokens = 10;
  req.on_complete = [&](const RequestTiming& t) {
    timing = t;
    done = true;
  };
  engine.Submit(std::move(req));
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(timing.finish_time, 0);
  EXPECT_GE(timing.first_token_time, timing.admit_time);
  EXPECT_GE(timing.finish_time, timing.first_token_time);
  // Prefill 2048 at 64k tok/s plus ~10 decode steps at ~20 ms.
  EXPECT_GT(timing.total_delay(), 0.1);
  EXPECT_LT(timing.total_delay(), 2.0);
}

TEST_F(EngineTest, LongerPromptsTakeLonger) {
  auto run_one = [&](int prompt) {
    Simulator sim;
    LlmEngine engine(&sim, Config(), 1);
    double delay = 0;
    InferenceRequest req;
    req.prompt_tokens = prompt;
    req.output_tokens = 5;
    req.on_complete = [&](const RequestTiming& t) { delay = t.total_delay(); };
    engine.Submit(std::move(req));
    sim.Run();
    return delay;
  };
  EXPECT_LT(run_one(512), run_one(8192));
}

TEST_F(EngineTest, BatchingBeatsSerialService) {
  // 8 decode-heavy requests batched together must finish in far less than
  // 8x the single-request latency (continuous batching shares step overhead).
  auto run_n = [&](int n) {
    Simulator sim;
    LlmEngine engine(&sim, Config(), 1);
    int done = 0;
    for (int i = 0; i < n; ++i) {
      InferenceRequest req;
      req.prompt_tokens = 64;
      req.output_tokens = 50;
      req.on_complete = [&](const RequestTiming&) { ++done; };
      engine.Submit(std::move(req));
    }
    sim.Run();
    EXPECT_EQ(done, n);
    return sim.now();
  };
  double one = run_n(1);
  double eight = run_n(8);
  EXPECT_LT(eight, one * 3);
}

TEST_F(EngineTest, MemoryAdmissionBlocksAndFrees) {
  EngineConfig cfg = Config();
  cfg.kv_pool_bytes = 800 * 131072.0;  // Pool of ~800 tokens.
  LlmEngine engine(&sim_, cfg, 1);
  std::vector<double> finishes;
  for (int i = 0; i < 3; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 512;  // Only one fits at a time (plus buffer).
    req.output_tokens = 4;
    req.on_complete = [&](const RequestTiming& t) { finishes.push_back(t.finish_time); };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  ASSERT_EQ(finishes.size(), 3u);
  // Strictly staggered: each waits for the previous to release memory.
  EXPECT_LT(finishes[0], finishes[1]);
  EXPECT_LT(finishes[1], finishes[2]);
}

TEST_F(EngineTest, PrefixSharingSavesPrefillTokens) {
  EngineConfig cfg = Config();
  cfg.prefix_sharing = true;
  cfg.policy = AdmissionPolicy::kGroupAware;
  LlmEngine engine(&sim_, cfg, 1);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 1000;
    req.output_tokens = 5;
    req.prefix_group = 99;
    req.shared_prefix_tokens = 600;
    req.on_complete = [&](const RequestTiming&) { ++done; };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  EXPECT_EQ(done, 4);
  // Three of the four siblings skip the 600-token shared prefix.
  EXPECT_EQ(engine.stats().prefill_tokens_saved, 3 * 600);
  EXPECT_EQ(engine.stats().prefill_tokens, 4 * 1000 - 3 * 600);
}

TEST_F(EngineTest, NoSharingWithoutFlag) {
  LlmEngine engine(&sim_, Config(), 1);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 1000;
    req.output_tokens = 5;
    req.prefix_group = 99;
    req.shared_prefix_tokens = 600;
    req.on_complete = [&](const RequestTiming&) { ++done; };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(engine.stats().prefill_tokens_saved, 0);
}

TEST_F(EngineTest, ProjectedFreeAccountsForWaitingQueue) {
  EngineConfig cfg = Config();
  cfg.kv_pool_bytes = 2000 * 131072.0;
  LlmEngine engine(&sim_, cfg, 1);
  for (int i = 0; i < 6; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 900;
    req.output_tokens = 50;
    req.on_complete = [](const RequestTiming&) {};
    engine.Submit(std::move(req));
  }
  // At submit time (before the sim runs the queue dry), projected free is
  // well below raw free.
  EXPECT_LT(engine.projected_free_kv_bytes(), engine.free_kv_bytes());
  sim_.Run();
  EXPECT_NEAR(engine.projected_free_kv_bytes(), engine.free_kv_bytes(), 1.0);
}

TEST_F(EngineTest, StatsAccumulate) {
  LlmEngine engine(&sim_, Config(), 1);
  InferenceRequest req;
  req.prompt_tokens = 300;
  req.output_tokens = 8;
  req.on_complete = [](const RequestTiming&) {};
  engine.Submit(std::move(req));
  sim_.Run();
  EXPECT_EQ(engine.stats().submitted, 1u);
  EXPECT_EQ(engine.stats().completed, 1u);
  EXPECT_GT(engine.stats().steps, 0u);
  EXPECT_GT(engine.stats().busy_seconds, 0);
  EXPECT_GT(engine.busy_cost_usd(), 0);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  auto run = [&]() {
    Simulator sim;
    LlmEngine engine(&sim, Config(), 7);
    std::vector<double> finishes;
    for (int i = 0; i < 10; ++i) {
      InferenceRequest req;
      req.prompt_tokens = 200 + i * 100;
      req.output_tokens = 5 + i;
      req.on_complete = [&](const RequestTiming& t) { finishes.push_back(t.finish_time); };
      engine.Submit(std::move(req));
    }
    sim.Run();
    return finishes;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(EngineTest, RequestLargerThanPoolAborts) {
  EngineConfig cfg = Config();
  cfg.kv_pool_bytes = 100 * 131072.0;
  LlmEngine engine(&sim_, cfg, 1);
  InferenceRequest req;
  req.prompt_tokens = 4096;
  req.output_tokens = 64;
  EXPECT_DEATH(engine.Submit(std::move(req)), "CHECK failed");
}

// ---------- ApiLlmClient ----------

TEST(ApiLlmClientTest, LatencyScalesWithTokens) {
  Simulator sim;
  ApiLlmClient api(&sim, Gpt4oApi(), 1);
  double short_latency = 0, long_latency = 0;
  api.Call(50, 8, [&](double l) { short_latency = l; });
  api.Call(5000, 400, [&](double l) { long_latency = l; });
  sim.Run();
  EXPECT_GT(short_latency, 0);
  EXPECT_GT(long_latency, short_latency * 3);
}

TEST(ApiLlmClientTest, CostPerToken) {
  Simulator sim;
  ApiLlmClient api(&sim, Gpt4oApi(), 1);
  // 1M input at $2.5/M + 1M output at $10/M.
  EXPECT_NEAR(api.CostOf(1000000, 1000000), 12.5, 1e-9);
  api.Call(1000, 100, [](double) {});
  sim.Run();
  EXPECT_NEAR(api.total_cost_usd(), api.CostOf(1000, 100), 1e-12);
  EXPECT_EQ(api.calls(), 1u);
}

// ---------- BehaviorModel ----------

class BehaviorTest : public ::testing::Test {
 protected:
  GenerationTask AnswerTask(int facts, int ctx, bool joint) {
    GenerationTask task;
    task.mode = GenerationMode::kAnswer;
    task.context_tokens = ctx;
    task.require_joint = joint;
    task.num_required_facts = facts;
    for (int i = 0; i < facts; ++i) {
      FactInContext f;
      f.fact_id = i;
      f.answer_tokens = {"ans" + std::to_string(i)};
      f.position_frac = (i + 1.0) / (facts + 1.0);
      f.salience = 1.0;
      task.facts.push_back(f);
    }
    task.rng_salt = 77;
    return task;
  }

  BehaviorModel model_{BehaviorParams{}, 42};
  ModelSpec spec_ = Mistral7BAwq();
};

TEST_F(BehaviorTest, DeterministicPerSalt) {
  GenerationTask t = AnswerTask(3, 1000, false);
  GenerationResult a = model_.Generate(spec_, t);
  GenerationResult b = model_.Generate(spec_, t);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  t.rng_salt = 78;
  GenerationResult c = model_.Generate(spec_, t);
  EXPECT_NE(a.text, c.text);
}

TEST_F(BehaviorTest, LitmMultiplierShape) {
  // Short contexts: no penalty anywhere.
  EXPECT_DOUBLE_EQ(model_.LitmMultiplier(0.5, 1000), 1.0);
  // Long contexts: mid-position penalized, edges retained.
  double mid = model_.LitmMultiplier(0.5, 12000);
  double edge = model_.LitmMultiplier(0.02, 12000);
  EXPECT_LT(mid, 0.6);
  EXPECT_GT(edge, 0.9);
}

TEST_F(BehaviorTest, LongContextRecoversFewerFacts) {
  int short_hits = 0, long_hits = 0;
  for (uint64_t s = 0; s < 300; ++s) {
    GenerationTask t_short = AnswerTask(4, 1200, false);
    t_short.rng_salt = s;
    GenerationTask t_long = AnswerTask(4, 14000, false);
    t_long.rng_salt = s;
    short_hits += static_cast<int>(model_.Generate(spec_, t_short).expressed_facts.size());
    long_hits += static_cast<int>(model_.Generate(spec_, t_long).expressed_facts.size());
  }
  EXPECT_GT(short_hits, long_hits * 1.3);
}

TEST_F(BehaviorTest, ConclusionRequiresAllFacts) {
  GenerationTask t = AnswerTask(3, 800, true);
  t.conclusion_tokens = {"conclusion"};
  int with_all = 0, reasoned = 0;
  for (uint64_t s = 0; s < 400; ++s) {
    t.rng_salt = s;
    GenerationResult r = model_.Generate(spec_, t);
    if (r.reasoning_success) {
      ++reasoned;
      EXPECT_GE(r.expressed_facts.size(), 3u);
    }
    if (r.expressed_facts.size() == 3u) {
      ++with_all;
    }
  }
  EXPECT_GT(reasoned, 0);
  EXPECT_LE(reasoned, with_all);
}

TEST_F(BehaviorTest, DistractorsIntrudeMoreInLongContexts) {
  auto count_intrusions = [&](int ctx) {
    int intrusions = 0;
    for (uint64_t s = 0; s < 400; ++s) {
      GenerationTask t = AnswerTask(1, ctx, false);
      FactInContext noise;
      noise.fact_id = 1000;
      noise.answer_tokens = {"noisetoken"};
      noise.relevant = false;
      noise.position_frac = 0.4;
      noise.salience = 0.3;
      t.facts.push_back(noise);
      t.rng_salt = s;
      GenerationResult r = model_.Generate(spec_, t);
      if (r.text.find("noisetoken") != std::string::npos) {
        ++intrusions;
      }
    }
    return intrusions;
  };
  EXPECT_GT(count_intrusions(14000), count_intrusions(800) * 2);
}

TEST_F(BehaviorTest, SummaryKeepsMoreWithBiggerBudget) {
  auto kept = [&](int budget) {
    int total = 0;
    for (uint64_t s = 0; s < 300; ++s) {
      GenerationTask t;
      t.mode = GenerationMode::kSummarize;
      t.summary_budget_tokens = budget;
      t.context_tokens = 1100;
      for (int i = 0; i < 4; ++i) {
        FactInContext f;
        f.fact_id = i;
        f.answer_tokens = {"fact" + std::to_string(i)};
        f.salience = 1.0;
        t.facts.push_back(f);
      }
      t.rng_salt = s;
      total += static_cast<int>(model_.Generate(spec_, t).expressed_facts.size());
    }
    return total;
  };
  EXPECT_GT(kept(160), kept(12) * 2);
}

TEST_F(BehaviorTest, SummaryMarksFactsAsDenoised) {
  GenerationTask t;
  t.mode = GenerationMode::kSummarize;
  t.summary_budget_tokens = 200;
  FactInContext f;
  f.fact_id = 0;
  f.answer_tokens = {"fact0"};
  f.salience = 1.0;
  t.facts.push_back(f);
  for (uint64_t s = 0; s < 50; ++s) {
    t.rng_salt = s;
    GenerationResult r = model_.Generate(spec_, t);
    for (const auto& kept : r.expressed_facts) {
      EXPECT_TRUE(kept.from_summary);
      EXPECT_GE(kept.salience, f.salience);
    }
  }
}

TEST_F(BehaviorTest, BetterModelRecoversMore) {
  int small = 0, big = 0;
  for (uint64_t s = 0; s < 400; ++s) {
    GenerationTask t = AnswerTask(4, 6000, false);
    t.rng_salt = s;
    small += static_cast<int>(model_.Generate(Mistral7BAwq(), t).expressed_facts.size());
    big += static_cast<int>(model_.Generate(Gpt4oApi(), t).expressed_facts.size());
  }
  EXPECT_GT(big, small);
}

}  // namespace
}  // namespace metis
