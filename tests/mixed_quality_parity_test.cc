// Heterogeneous per-query RetrievalQuality parity: a coalesced batch in which
// every query carries its OWN retrieval depth (the profiler-driven per-query
// knob) must return ids, order, and float distances bit-equal to uncoalesced
// per-query scans — across backends (flat, IVF), shard counts {1, 4}, and
// thread counts {1, 4} — and the probe accounting (totals AND per-query
// histogram) must agree exactly. This is the determinism contract that lets
// RetrievalBatcher mix per-query budgets inside one shared sweep.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/retrieval_batcher.h"
#include "src/sim/simulator.h"
#include "src/vectordb/clustered_corpus.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

// The quality mix a per-query-depth serving stack actually produces: fixed
// and adaptive modes, budgets from minimal to past-nlist, index defaults.
std::vector<RetrievalQuality> QualityMix(size_t n) {
  std::vector<RetrievalQuality> mix;
  for (size_t i = 0; i < n; ++i) {
    RetrievalQuality q;
    switch (i % 6) {
      case 0:
        q.mode = RetrievalQuality::ProbeMode::kFixed;
        q.nprobe = 1;
        break;
      case 1:
        q.mode = RetrievalQuality::ProbeMode::kFixed;
        q.nprobe = 3;
        break;
      case 2:
        q.mode = RetrievalQuality::ProbeMode::kAdaptive;
        q.nprobe = 8;
        break;
      case 3:
        q.mode = RetrievalQuality::ProbeMode::kIndexDefault;
        break;
      case 4:
        q.mode = RetrievalQuality::ProbeMode::kAdaptive;
        q.nprobe = 2;
        break;
      case 5:
        q.mode = RetrievalQuality::ProbeMode::kFixed;
        q.nprobe = 100;  // Past nlist: plan clamps to every list.
        break;
    }
    mix.push_back(q);
  }
  return mix;
}

struct ProbeSnapshot {
  uint64_t searches = 0;
  uint64_t probes = 0;
  std::vector<uint64_t> hist;
};

ProbeSnapshot SnapshotAndReset(const IvfL2Index& ivf) {
  ProbeSnapshot snap{ivf.searches(), ivf.probes_issued(), ivf.probe_histogram()};
  ivf.ResetProbeStats();
  return snap;
}

void ExpectHitsBitEqual(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t h = 0; h < got.size(); ++h) {
    EXPECT_EQ(got[h].id, want[h].id) << label << " hit " << h;
    // Bit equality, not approximate: memcmp through the float.
    EXPECT_EQ(got[h].distance, want[h].distance) << label << " hit " << h;
  }
}

TEST(MixedQualityParityTest, IvfBatchMatchesPerQueryScansAcrossShardsAndThreads) {
  const size_t kDim = 32;
  const size_t kClusters = 8;
  ClusteredCorpus corpus = MakeClusteredCorpus(kDim, kClusters, /*points_per_cluster=*/60,
                                               /*num_easy=*/18, /*num_hard=*/6, 0x9177,
                                               /*mix_way=*/4);
  std::vector<Embedding> queries = corpus.AllQueries();
  std::vector<RetrievalQuality> qualities = QualityMix(queries.size());
  const size_t kTopK = 10;

  for (size_t shards : {size_t{1}, size_t{4}}) {
    IvfL2Index ivf(kDim, /*nlist=*/kClusters, /*nprobe=*/2, /*seed=*/0x5EED, shards);
    for (size_t i = 0; i < corpus.points.size(); ++i) {
      ivf.Add(static_cast<ChunkId>(i), corpus.points[i]);
    }
    ivf.Train();
    AdaptiveProbePolicy policy;
    policy.enabled = false;  // Index default stays fixed; overrides force modes.
    policy.min_probes = 1;
    policy.distance_ratio = 1.5;
    ivf.set_adaptive_probe(policy);

    // Reference: uncoalesced per-query scans, each under its own quality.
    ivf.ResetProbeStats();
    std::vector<std::vector<SearchHit>> want;
    for (size_t i = 0; i < queries.size(); ++i) {
      want.push_back(ivf.Search(queries[i], kTopK, qualities[i]));
    }
    ProbeSnapshot want_probes = SnapshotAndReset(ivf);

    for (size_t threads : {size_t{1}, size_t{4}}) {
      ThreadPool pool(threads);
      std::vector<std::vector<SearchHit>> got =
          ivf.SearchBatch(queries, kTopK, &pool, qualities);
      ProbeSnapshot got_probes = SnapshotAndReset(ivf);

      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectHitsBitEqual(got[i], want[i],
                           "shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads) +
                               " query=" + std::to_string(i));
      }
      EXPECT_EQ(got_probes.searches, want_probes.searches);
      EXPECT_EQ(got_probes.probes, want_probes.probes);
      EXPECT_EQ(got_probes.hist, want_probes.hist);
    }
  }
}

TEST(MixedQualityParityTest, FlatBatchIgnoresQualitiesAndMatchesPerQueryScans) {
  const size_t kDim = 32;
  ClusteredCorpus corpus = MakeClusteredCorpus(kDim, 8, 40, 12, 4, 0xF1A7, 4);
  std::vector<Embedding> queries = corpus.AllQueries();
  std::vector<RetrievalQuality> qualities = QualityMix(queries.size());
  const size_t kTopK = 10;

  for (size_t shards : {size_t{1}, size_t{4}}) {
    FlatL2Index flat(kDim, shards);
    for (size_t i = 0; i < corpus.points.size(); ++i) {
      flat.Add(static_cast<ChunkId>(i), corpus.points[i]);
    }
    std::vector<std::vector<SearchHit>> want;
    for (size_t i = 0; i < queries.size(); ++i) {
      want.push_back(flat.Search(queries[i], kTopK, qualities[i]));
    }
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ThreadPool pool(threads);
      std::vector<std::vector<SearchHit>> got =
          flat.SearchBatch(queries, kTopK, &pool, qualities);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectHitsBitEqual(got[i], want[i],
                           "flat shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads) +
                               " query=" + std::to_string(i));
      }
    }
  }
}

// Serving-stack layer: a same-tick RetrievalBatcher group whose requests
// carry different qualities (and different k) must hand every callback the
// ids a direct per-query Retrieve at that quality returns, from ONE sweep.
TEST(MixedQualityParityTest, BatcherCoalescesHeterogeneousQualityGroup) {
  auto db = std::make_unique<VectorDatabase>(
      EmbeddingModel(GetEmbeddingModel("all-mpnet-base-v2-sim")),
      DatabaseMetadata{"mixed quality corpus", 64, "test"},
      []() {
        RetrievalIndexOptions o;
        o.backend = RetrievalIndexOptions::Backend::kIvf;
        o.nlist = 4;
        o.nprobe = 1;
        return o;
      }());
  const char* texts[] = {
      "the kimbrough stadium sits in randall county texas",
      "quarterly semiconductor revenue beat analyst expectations",
      "the committee meeting adjourned after the budget vote",
      "rainfall totals in the river basin broke the seasonal record",
      "the stadium hosted the county championship game in randall",
      "chip fabrication capacity expanded across three new plants",
      "the river authority issued a flood advisory for the basin",
      "the board approved the semiconductor capital budget",
      "county officials repaved the stadium parking lot",
      "the meeting minutes recorded the final budget tally",
      "drought conditions eased after record basin rainfall",
      "analysts raised revenue estimates for chip makers",
  };
  for (const char* t : texts) {
    Chunk c;
    c.text = t;
    db->AddChunk(std::move(c));
  }
  db->FinalizeIndex();
  ASSERT_NE(db->ivf_index(), nullptr);

  std::vector<std::string> query_texts = {
      "what county is the kimbrough stadium in",
      "semiconductor revenue this quarter",
      "budget vote at the committee meeting",
      "rainfall in the river basin",
  };
  std::vector<RetrievalQuality> qualities = QualityMix(query_texts.size());
  std::vector<size_t> ks = {1, 3, 2, 4};

  Simulator sim;
  RetrievalBatcher batcher(&sim, db.get(), 0.004);
  std::vector<std::vector<ChunkId>> got(query_texts.size());
  for (size_t i = 0; i < query_texts.size(); ++i) {
    batcher.Submit(query_texts[i], ks[i], qualities[i],
                   [&got, i](std::vector<ChunkId> ids) { got[i] = std::move(ids); });
  }
  sim.Run();

  // Coalesced into one sweep, yet every request kept its own depth.
  EXPECT_EQ(batcher.batches_issued(), 1u);
  EXPECT_EQ(batcher.max_batch_size(), query_texts.size());
  for (size_t i = 0; i < query_texts.size(); ++i) {
    EXPECT_EQ(got[i], db->Retrieve(query_texts[i], ks[i], qualities[i])) << "request " << i;
  }
}

}  // namespace
}  // namespace metis
