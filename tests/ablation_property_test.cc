// Property sweep over the scheduler's design-ablation switches: under every
// combination, METIS must serve every query, pick configurations consistent
// with the enabled refinements, and keep quality/delay in a sane envelope.

#include <gtest/gtest.h>

#include "src/runner/runner.h"

namespace metis {
namespace {

class AblationProperty : public ::testing::TestWithParam<int> {
 protected:
  JointSchedulerOptions Options() const {
    int bits = GetParam();
    JointSchedulerOptions opts;
    opts.litm_cap = bits & 1;
    opts.prefer_map_reduce_for_complex = bits & 2;
    opts.fig8_fallback = bits & 4;
    opts.use_projected_free = bits & 8;
    return opts;
  }
};

TEST_P(AblationProperty, MetisServesEveryQueryUnderVariant) {
  RunSpec spec;
  spec.dataset = "qmsum";  // Exercises all three methods and the fallbacks.
  spec.num_queries = 25;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kMetis;
  spec.scheduler = Options();
  spec.seed = 17;
  RunMetrics m = RunExperiment(spec);

  ASSERT_EQ(m.records.size(), 25u);
  EXPECT_GT(m.mean_f1(), 0.15);
  EXPECT_LE(m.f1s.max(), 1.0);
  EXPECT_GT(m.mean_delay(), 0.0);
  for (const QueryRecord& r : m.records) {
    EXPECT_GE(r.config.num_chunks, 1);
    EXPECT_LE(r.config.num_chunks, 64);
    if (Options().litm_cap && r.config.method == SynthesisMethod::kStuff &&
        !r.scheduler_fallback && !r.low_confidence_fallback) {
      // In-space stuff choices respect the LITM budget (plus one chunk of
      // slack for the min_chunks floor on large information needs).
      int prompt = 64 + 40 + r.config.num_chunks * 512;
      EXPECT_LE(prompt, JointScheduler::kStuffContextBudgetTokens +
                            r.profile.num_info_pieces * 512);
    }
  }
}

TEST_P(AblationProperty, DeterministicPerVariant) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 15;
  spec.arrival_rate = 2.0;
  spec.system = SystemKind::kMetis;
  spec.scheduler = Options();
  spec.seed = 23;
  RunMetrics a = RunExperiment(spec);
  RunMetrics b = RunExperiment(spec);
  EXPECT_DOUBLE_EQ(a.mean_delay(), b.mean_delay());
  EXPECT_DOUBLE_EQ(a.mean_f1(), b.mean_f1());
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, AblationProperty, ::testing::Range(0, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name = "bits";
                           for (int b = 3; b >= 0; --b) {
                             name += (info.param >> b) & 1 ? '1' : '0';
                           }
                           return name;
                         });

}  // namespace
}  // namespace metis
