// Mutation-parity property tests for the live-mutation serving index
// (src/vectordb/mutable_index.h).
//
// The contract under test: at ANY point in a random interleaving of
// Insert / Delete / seal / compact / retrain, search results — ids, order,
// AND distances — are bit-equal to an index freshly built from the live
// document set, across shards {1,4} x threads {1,4} x {flat,IVF} x
// {fixed,adaptive nprobe}. Specifically:
//
//   - flat backend: bit-equal to a fresh FlatL2Index over the live rows in
//     insertion order, at every checkpoint;
//   - IVF backend, mid-stream: bit-equal to that same flat reference under a
//     full probe budget (nprobe >= nlist scans every list — exact, and
//     duplicates share a list so (distance, order) ties agree);
//   - IVF backend, after RetrainBase: bit-equal to a fresh IvfL2Index
//     (same nlist/nprobe/seed/shards) trained on the live rows, at fixed AND
//     adaptive probe qualities — identical training input means identical
//     centroids, lists, and probe schedules.
//
// The op stream includes delete-then-reinsert (same vector, fresh id) and
// exact duplicate vectors, both of which stress the (distance, candidate
// order) tie-break.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/mutable_index.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

constexpr size_t kDim = 16;
constexpr size_t kTopK = 10;

struct ParityCase {
  size_t shards;
  size_t threads;
  RetrievalIndexOptions::Backend backend;
  bool adaptive;
};

std::vector<ParityCase> Grid() {
  std::vector<ParityCase> cases;
  for (size_t shards : {size_t{1}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (auto backend :
           {RetrievalIndexOptions::Backend::kFlat, RetrievalIndexOptions::Backend::kIvf}) {
        for (bool adaptive : {false, true}) {
          cases.push_back(ParityCase{shards, threads, backend, adaptive});
        }
      }
    }
  }
  return cases;
}

Embedding RandomVec(Rng& rng) {
  Embedding v(kDim);
  for (float& x : v) {
    x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return v;
}

void ExpectBitEqual(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    // Exact float equality: distances must be bit-identical, not just close.
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " rank " << i;
  }
}

// The model the mutable index must match: the live (id, vector) set in
// insertion order.
struct LiveSet {
  std::vector<std::pair<ChunkId, Embedding>> rows;

  void Insert(ChunkId id, Embedding v) { rows.emplace_back(id, std::move(v)); }
  void Delete(ChunkId id) {
    for (auto it = rows.begin(); it != rows.end(); ++it) {
      if (it->first == id) {
        rows.erase(it);
        return;
      }
    }
    FAIL() << "model delete of unknown id " << id;
  }

  FlatL2Index BuildFlat(size_t shards) const {
    FlatL2Index ref(kDim, shards);
    for (const auto& [id, v] : rows) {
      ref.Add(id, v);
    }
    return ref;
  }
  std::unique_ptr<IvfL2Index> BuildIvf(const RetrievalIndexOptions& opt) const {
    auto ref = std::make_unique<IvfL2Index>(kDim, opt.nlist, opt.nprobe, opt.train_seed,
                                            std::max<size_t>(1, opt.shards));
    ref->set_adaptive_probe(opt.adaptive);
    for (const auto& [id, v] : rows) {
      ref->Add(id, v);
    }
    if (!rows.empty()) {
      ref->Train();
    }
    return ref;
  }
};

class MutableIndexParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(MutableIndexParityTest, RandomInterleavingsMatchFreshBuild) {
  const ParityCase& pc = GetParam();
  RetrievalIndexOptions opt;
  opt.backend = pc.backend;
  opt.shards = pc.shards;
  opt.nlist = 8;
  opt.nprobe = 3;
  opt.adaptive.enabled = pc.adaptive;
  opt.adaptive.min_probes = 1;
  opt.adaptive.max_probes = 4;
  opt.train_seed = 17;
  opt.mutable_index = true;
  opt.mutation.memtable_rows = 7;    // Frequent automatic seals.
  opt.mutation.compact_segments = 3;  // Frequent automatic compactions.
  opt.mutation.retrain_delta_fraction = 0.6;
  opt.mutation.max_rows = 4096;

  MutableIndex index(kDim, opt);
  Rng rng(0x5EED0 + pc.shards * 31 + pc.threads * 7 + (pc.adaptive ? 1 : 0) +
          (pc.backend == RetrievalIndexOptions::Backend::kIvf ? 1000 : 0));
  ThreadPool pool(pc.threads);
  ThreadPool* batch_pool = pc.threads > 1 ? &pool : nullptr;

  // Initial corpus (bulk load + finalize), with some exact duplicates.
  LiveSet model;
  std::vector<Embedding> recycled;  // Vectors of deleted rows, for reinsertion.
  ChunkId next_id = 0;
  for (int i = 0; i < 60; ++i) {
    Embedding v = (i > 0 && rng.Bernoulli(0.1)) ? model.rows[rng.Index(model.rows.size())].second
                                                : RandomVec(rng);
    index.Add(next_id, v);
    model.Insert(next_id, std::move(v));
    ++next_id;
  }
  index.Finalize();

  // Full probe budget: scans every inverted list, so an IVF sweep is exact
  // and comparable to the flat reference mid-stream.
  RetrievalQuality full_probe;
  full_probe.mode = RetrievalQuality::ProbeMode::kFixed;
  full_probe.nprobe = 1u << 20;

  auto checkpoint = [&](const char* when) {
    FlatL2Index ref = model.BuildFlat(pc.shards);
    std::vector<Embedding> queries;
    for (int qi = 0; qi < 4; ++qi) {
      queries.push_back(RandomVec(rng));
    }
    if (!model.rows.empty()) {
      // A query sitting exactly on a live row exercises zero-distance ties.
      queries.push_back(model.rows[rng.Index(model.rows.size())].second);
    }
    RetrievalQuality quality =
        pc.backend == RetrievalIndexOptions::Backend::kIvf ? full_probe : RetrievalQuality{};
    std::vector<std::vector<SearchHit>> batch =
        index.SearchBatch(queries, kTopK, batch_pool, quality);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<SearchHit> want = ref.Search(queries[qi], kTopK);
      ExpectBitEqual(index.Search(queries[qi], kTopK, quality), want, when);
      ExpectBitEqual(batch[qi], want, when);
    }
  };

  checkpoint("after finalize");

  // Random op stream with interleaved checkpoints.
  for (int op = 0; op < 220; ++op) {
    double r = rng.NextDouble();
    if (r < 0.45) {
      Embedding v;
      if (!recycled.empty() && rng.Bernoulli(0.3)) {
        v = recycled[rng.Index(recycled.size())];  // Delete-then-reinsert.
      } else if (!model.rows.empty() && rng.Bernoulli(0.1)) {
        v = model.rows[rng.Index(model.rows.size())].second;  // Duplicate.
      } else {
        v = RandomVec(rng);
      }
      index.Insert(next_id, v);
      model.Insert(next_id, std::move(v));
      ++next_id;
    } else if (r < 0.62 && !model.rows.empty()) {
      size_t pick = rng.Index(model.rows.size());
      ChunkId id = model.rows[pick].first;
      recycled.push_back(model.rows[pick].second);
      ASSERT_TRUE(index.Delete(id));
      model.Delete(id);
    } else if (r < 0.70) {
      index.SealMemtable();
    } else if (r < 0.76) {
      index.CompactSegments();
    } else if (r < 0.80) {
      index.RetrainBase();
    } else {
      checkpoint("mid-stream");
    }
  }
  checkpoint("after op stream");

  EXPECT_EQ(index.size(), model.rows.size());
  MutableIndexStats stats = index.stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.deletes, 0u);
  EXPECT_GT(stats.seals, 0u);

  // IVF: after a full retrain the base IS a fresh build over the live set —
  // results must be bit-equal to an independently trained IvfL2Index at any
  // probe quality, and probe accounting must agree too.
  if (pc.backend == RetrievalIndexOptions::Backend::kIvf && !model.rows.empty()) {
    index.RetrainBase();
    std::unique_ptr<IvfL2Index> ref = model.BuildIvf(opt);
    std::vector<RetrievalQuality> qualities;
    qualities.push_back(RetrievalQuality{});  // Index default (fixed or adaptive).
    RetrievalQuality fixed;
    fixed.mode = RetrievalQuality::ProbeMode::kFixed;
    fixed.nprobe = 2;
    qualities.push_back(fixed);
    RetrievalQuality adaptive;
    adaptive.mode = RetrievalQuality::ProbeMode::kAdaptive;
    adaptive.nprobe = 4;
    qualities.push_back(adaptive);
    for (const RetrievalQuality& q : qualities) {
      for (int qi = 0; qi < 4; ++qi) {
        Embedding query = RandomVec(rng);
        ExpectBitEqual(index.Search(query, kTopK, q), ref->Search(query, kTopK, q),
                       "post-retrain vs fresh IVF");
      }
    }
    ASSERT_NE(index.base_ivf(), nullptr);
    EXPECT_EQ(index.base_ivf()->nlist(), ref->nlist());
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MutableIndexParityTest, ::testing::ValuesIn(Grid()),
                         [](const ::testing::TestParamInfo<ParityCase>& info) {
                           const ParityCase& pc = info.param;
                           std::string name =
                               pc.backend == RetrievalIndexOptions::Backend::kIvf ? "ivf" : "flat";
                           name += "_s" + std::to_string(pc.shards);
                           name += "_t" + std::to_string(pc.threads);
                           name += pc.adaptive ? "_adaptive" : "_fixed";
                           return name;
                         });

// Sealing is a pure representation change: results before and after an
// explicit seal/compact must be identical (not just parity with a fresh
// build — literally the same epoch contents).
TEST(MutableIndexLifecycleTest, SealAndCompactDoNotChangeResults) {
  RetrievalIndexOptions opt;
  opt.mutable_index = true;
  opt.mutation.memtable_rows = 1000;      // No automatic seals.
  opt.mutation.compact_segments = 1000;   // No automatic compactions.
  opt.mutation.retrain_delta_fraction = 1e9;
  MutableIndex index(kDim, opt);
  Rng rng(99);
  for (ChunkId id = 0; id < 20; ++id) {
    index.Add(id, RandomVec(rng));
  }
  index.Finalize();
  for (ChunkId id = 20; id < 40; ++id) {
    index.Insert(id, RandomVec(rng));
  }
  ASSERT_TRUE(index.Delete(25));
  ASSERT_TRUE(index.Delete(3));

  Embedding q = RandomVec(rng);
  std::vector<SearchHit> before = index.Search(q, kTopK);
  index.SealMemtable();
  ExpectBitEqual(index.Search(q, kTopK), before, "after seal");
  index.SealMemtable();  // Empty memtable: no-op.
  index.CompactSegments();
  ExpectBitEqual(index.Search(q, kTopK), before, "after compact");
  MutableIndexStats stats = index.stats();
  EXPECT_EQ(stats.seals, 1u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.open_segments, 1u);
  EXPECT_EQ(stats.tombstones, 2u);
  // The compacted segment dropped the dead rows it covered.
  EXPECT_EQ(stats.live_rows, 38u);
}

// Deleting every row leaves a searchable-but-empty index; reinserting under
// fresh ids revives it.
TEST(MutableIndexLifecycleTest, DeleteAllThenReinsert) {
  RetrievalIndexOptions opt;
  opt.mutable_index = true;
  MutableIndex index(kDim, opt);
  Rng rng(7);
  std::vector<Embedding> vecs;
  for (ChunkId id = 0; id < 10; ++id) {
    vecs.push_back(RandomVec(rng));
    index.Add(id, vecs.back());
  }
  index.Finalize();
  for (ChunkId id = 0; id < 10; ++id) {
    ASSERT_TRUE(index.Delete(id));
    EXPECT_FALSE(index.Delete(id));  // Double delete is reported, not fatal.
  }
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Search(vecs[0], kTopK).empty());
  // Reinsert the same vectors under fresh ids.
  for (ChunkId id = 10; id < 20; ++id) {
    index.Insert(id, vecs[static_cast<size_t>(id - 10)]);
  }
  EXPECT_EQ(index.size(), 10u);
  std::vector<SearchHit> hits = index.Search(vecs[0], 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 10);
  EXPECT_EQ(hits[0].distance, 0.0f);
}

}  // namespace
}  // namespace metis
