// Parameterized property tests for the generation behaviour model: the
// quality orderings that every paper figure rests on must hold statistically
// across models and context shapes.

#include <gtest/gtest.h>

#include <tuple>

#include "src/llm/behavior.h"
#include "src/runner/runner.h"

namespace metis {
namespace {

class BehaviorModelSweep : public ::testing::TestWithParam<const char*> {
 protected:
  GenerationTask Task(int facts, int ctx, double salience = 1.0) {
    GenerationTask t;
    t.mode = GenerationMode::kAnswer;
    t.context_tokens = ctx;
    t.num_required_facts = facts;
    for (int i = 0; i < facts; ++i) {
      FactInContext f;
      f.fact_id = i;
      f.answer_tokens = {"a" + std::to_string(i), "b" + std::to_string(i)};
      f.position_frac = (i + 1.0) / (facts + 1.0);
      f.salience = salience;
      t.facts.push_back(f);
    }
    return t;
  }

  double MeanRecovered(const GenerationTask& base, int trials = 250) {
    BehaviorModel model(BehaviorParams{}, 5);
    const ModelSpec& spec = GetModelSpec(GetParam());
    double total = 0;
    for (int s = 0; s < trials; ++s) {
      GenerationTask t = base;
      t.rng_salt = static_cast<uint64_t>(s);
      total += static_cast<double>(model.Generate(spec, t).expressed_facts.size());
    }
    return total / trials;
  }
};

TEST_P(BehaviorModelSweep, RecoveryDecreasesWithContextLength) {
  double short_ctx = MeanRecovered(Task(4, 1500));
  double long_ctx = MeanRecovered(Task(4, 16000));
  EXPECT_GT(short_ctx, long_ctx * 1.15);
}

TEST_P(BehaviorModelSweep, RecoveryIncreasesWithSalience) {
  double salient = MeanRecovered(Task(4, 2000, 1.0));
  double faint = MeanRecovered(Task(4, 2000, 0.1));
  EXPECT_GT(salient, faint);
}

TEST_P(BehaviorModelSweep, OutputTokensNeverZero) {
  BehaviorModel model(BehaviorParams{}, 5);
  const ModelSpec& spec = GetModelSpec(GetParam());
  for (int s = 0; s < 100; ++s) {
    GenerationTask t = Task(1, 500, 0.05);  // Nearly impossible fact.
    t.rng_salt = static_cast<uint64_t>(s);
    GenerationResult r = model.Generate(spec, t);
    EXPECT_GE(r.output_tokens, 1);
    EXPECT_FALSE(r.text.empty());
  }
}

TEST_P(BehaviorModelSweep, SummaryOutputTracksBudget) {
  BehaviorModel model(BehaviorParams{}, 5);
  const ModelSpec& spec = GetModelSpec(GetParam());
  for (int budget : {20, 80, 200}) {
    double mean = 0;
    for (int s = 0; s < 100; ++s) {
      GenerationTask t = Task(2, 1100);
      t.mode = GenerationMode::kSummarize;
      t.summary_budget_tokens = budget;
      t.rng_salt = static_cast<uint64_t>(s);
      mean += model.Generate(spec, t).output_tokens / 100.0;
    }
    // Summaries write toward their budget (the Fig. 4c delay knob).
    EXPECT_GT(mean, budget * 0.6);
    EXPECT_LT(mean, budget * 1.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, BehaviorModelSweep,
                         ::testing::Values("mistral-7b-v3-awq", "llama3.1-70b-awq", "gpt-4o"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Method-quality orderings per dataset: the pattern behind Algorithm 1 must
// hold on every corpus, measured end-to-end through retrieval + synthesis.
class MethodOrderingSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(MethodOrderingSweep, JointQueriesNeedCrossChunkMethods) {
  auto ds = GetOrGenerateDataset(GetParam(), 80, "cohere-embed-v3-sim", 3);
  double joint_rerank = 0, joint_cross = 0;
  int n = 0;
  for (const RagQuery& q : ds->queries()) {
    if (!q.requires_joint || q.num_facts < 3) {
      continue;
    }
    int k = 2 * q.num_facts;
    joint_rerank += RunSingleQuery(*ds, q, RagConfig{SynthesisMethod::kMapRerank, k, 60},
                                   "mistral-7b-v3-awq", 3)
                        .f1;
    RagResult stuff = RunSingleQuery(*ds, q, RagConfig{SynthesisMethod::kStuff, k, 60},
                                     "mistral-7b-v3-awq", 3);
    RagResult reduce = RunSingleQuery(*ds, q, RagConfig{SynthesisMethod::kMapReduce, k, 80},
                                      "mistral-7b-v3-awq", 3);
    joint_cross += std::max(stuff.f1, reduce.f1);
    if (++n == 20) {
      break;
    }
  }
  ASSERT_GT(n, 5);
  // Reading chunks jointly must clearly beat per-chunk answering on
  // multi-fact queries — the premise of Algorithm 1's first rule.
  EXPECT_GT(joint_cross / n, joint_rerank / n + 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, MethodOrderingSweep,
                         ::testing::Values("musique", "kg_rag_finsec", "qmsum"));

}  // namespace
}  // namespace metis
