// Hybrid retrieval layer: router weight tables, deterministic weighted RRF
// fusion, weight-0 backend elision, metadata-filter push-down, BM25 lifecycle
// determinism, and hybrid-off bit-parity with the dense-only stack
// (src/core/hybrid_router.h, src/vectordb/lexical_index.h, vectordb.cc).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/hybrid_router.h"
#include "src/text/tokenizer.h"
#include "src/vectordb/lexical_index.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

// Deterministic synthetic corpus: no RNG, just index arithmetic. Texts draw
// from a small pool so term frequencies and document frequencies vary (BM25
// has work to do) and some chunks collide exactly (tie-breaks are exercised).
std::vector<Chunk> MakeCorpus(int n) {
  const char* pool[] = {"kimbrough", "stadium",  "county",  "randall", "quarterly",
                        "revenue",   "semicon",  "merger",  "treaty",  "glacier",
                        "harvest",   "pipeline", "voltage", "census",  "orbit"};
  const int pool_n = 15;
  std::vector<Chunk> chunks;
  for (int i = 0; i < n; ++i) {
    Chunk c;
    c.doc_id = i / 2;  // Two chunks per document.
    std::string text;
    for (int w = 0; w < 6; ++w) {
      int idx = (i * (w + 3) + w * w) % pool_n;
      // Repeat some words so tf varies by chunk.
      int reps = 1 + (i + w) % 3;
      for (int r = 0; r < reps; ++r) {
        if (!text.empty()) text += ' ';
        text += pool[idx];
      }
    }
    c.text = text;
    c.token_count = static_cast<int32_t>(CountTokens(text));
    c.source = c.doc_id % 3;
    c.time_bucket = c.doc_id % 4;
    c.section = i % 2;
    chunks.push_back(std::move(c));
  }
  return chunks;
}

std::vector<std::string> TestQueries() {
  return {"kimbrough stadium county",  "quarterly revenue semicon merger",
          "treaty glacier harvest",    "pipeline voltage census orbit",
          "randall county stadium",    "glacier orbit merger",
          "census harvest quarterly",  "voltage treaty kimbrough"};
}

std::unique_ptr<VectorDatabase> MakeDb(size_t shards, bool lexical, ThreadPool* pool = nullptr) {
  RetrievalIndexOptions options;
  options.shards = shards;
  options.lexical = lexical;
  auto db = std::make_unique<VectorDatabase>(
      EmbeddingModel(GetEmbeddingModel("cohere-embed-v3-sim")),
      DatabaseMetadata{"hybrid test corpus", 64, "test"}, options);
  db->AddChunks(MakeCorpus(150), pool);
  db->FinalizeIndex(pool);
  return db;
}

void ExpectSameHits(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want,
                    const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << context << " rank " << i;
  }
}

// --- Router unit mechanics --------------------------------------------------

QueryProfile ProfileFor(QueryTaskType type, int time_bucket = -1) {
  QueryProfile p;
  p.task_type = type;
  p.time_bucket = time_bucket;
  return p;
}

TEST(HybridRouterTest, DisabledRouterReturnsBaseUntouched) {
  HybridRouter router(HybridRouterOptions{});  // enabled = false.
  RetrievalQuality base;
  base.nprobe = 7;
  base.precision = RetrievalPrecision::kInt8;
  for (QueryTaskType t : {QueryTaskType::kFactual, QueryTaskType::kSemantic,
                          QueryTaskType::kTemporal, QueryTaskType::kComparative}) {
    RetrievalQuality routed = router.Route(ProfileFor(t, /*time_bucket=*/2), base);
    EXPECT_FALSE(routed.hybrid);
    EXPECT_FALSE(routed.filter.active());
    EXPECT_EQ(routed.nprobe, 7u);
    EXPECT_EQ(routed.precision, RetrievalPrecision::kInt8);
  }
}

TEST(HybridRouterTest, EnabledRouterAppliesWeightTableAndTemporalFilter) {
  HybridRouterOptions options;
  options.enabled = true;
  HybridRouter router(options);

  // Factual default: lexical-only.
  RetrievalQuality factual = router.Route(ProfileFor(QueryTaskType::kFactual), {});
  EXPECT_TRUE(factual.hybrid);
  EXPECT_FLOAT_EQ(factual.dense_weight, 0.0f);
  EXPECT_FLOAT_EQ(factual.lexical_weight, 1.0f);

  // Semantic default: pure dense — the base quality VERBATIM (fast path).
  RetrievalQuality base;
  base.nprobe = 5;
  RetrievalQuality semantic = router.Route(ProfileFor(QueryTaskType::kSemantic), base);
  EXPECT_FALSE(semantic.hybrid);
  EXPECT_EQ(semantic.nprobe, 5u);

  // Temporal with a parsed bucket: fused + time filter.
  RetrievalQuality temporal = router.Route(ProfileFor(QueryTaskType::kTemporal, 3), {});
  EXPECT_TRUE(temporal.hybrid);
  EXPECT_FLOAT_EQ(temporal.dense_weight, 0.5f);
  EXPECT_FLOAT_EQ(temporal.lexical_weight, 0.5f);
  EXPECT_EQ(temporal.filter.time_bucket, 3);

  // Temporal without a bucket cue: fused, no filter.
  RetrievalQuality no_bucket = router.Route(ProfileFor(QueryTaskType::kTemporal, -1), {});
  EXPECT_TRUE(no_bucket.hybrid);
  EXPECT_FALSE(no_bucket.filter.active());

  // Comparative default is lexical-leaning.
  RetrievalQuality cmp = router.Route(ProfileFor(QueryTaskType::kComparative), {});
  EXPECT_TRUE(cmp.hybrid);
  EXPECT_FLOAT_EQ(cmp.dense_weight, 0.4f);
  EXPECT_FLOAT_EQ(cmp.lexical_weight, 0.6f);
}

TEST(HybridRouterTest, ShedCollapsesToCheapestSingleBackendKeepingFilter) {
  RetrievalQuality fused;
  fused.hybrid = true;
  fused.dense_weight = 0.5f;
  fused.lexical_weight = 0.5f;
  fused.filter.time_bucket = 2;
  RetrievalQuality shed = HybridRouter::ShedToSingleBackend(fused);
  EXPECT_FLOAT_EQ(shed.dense_weight, 0.0f);  // Ties go lexical (cheaper scan).
  EXPECT_FLOAT_EQ(shed.lexical_weight, 0.5f);
  EXPECT_EQ(shed.filter.time_bucket, 2);  // Filters only shrink scans: kept.

  RetrievalQuality dense_heavy;
  dense_heavy.hybrid = true;
  dense_heavy.dense_weight = 0.7f;
  dense_heavy.lexical_weight = 0.3f;
  EXPECT_FLOAT_EQ(HybridRouter::ShedToSingleBackend(dense_heavy).lexical_weight, 0.0f);

  // Already single-backend or non-hybrid: untouched.
  RetrievalQuality single;
  single.hybrid = true;
  single.dense_weight = 0.0f;
  single.lexical_weight = 1.0f;
  EXPECT_FLOAT_EQ(HybridRouter::ShedToSingleBackend(single).lexical_weight, 1.0f);
  RetrievalQuality plain;
  EXPECT_FALSE(HybridRouter::ShedToSingleBackend(plain).hybrid);
}

TEST(HybridRouterTest, TaskTypeClassifierReadsKeywordCues) {
  int bucket = -1;
  EXPECT_EQ(ClassifyTaskType(Tokenize("when did the treaty take effect in period3"), &bucket),
            QueryTaskType::kTemporal);
  EXPECT_EQ(bucket, 3);
  EXPECT_EQ(ClassifyTaskType(Tokenize("compare the glacier and the orbit")),
            QueryTaskType::kComparative);
  EXPECT_EQ(ClassifyTaskType(Tokenize("why does the pipeline leak")),
            QueryTaskType::kSemantic);
  EXPECT_EQ(ClassifyTaskType(Tokenize("kimbrough stadium county")),
            QueryTaskType::kFactual);
}

// --- Hybrid-off parity ------------------------------------------------------

TEST(HybridParityTest, HybridOffIsBitIdenticalToLexiclessBuild) {
  // A database that BUILT a lexical index but never routes to it must return
  // byte-for-byte what a dense-only build returns, and must never touch the
  // lexical structures.
  auto with_lex = MakeDb(/*shards=*/2, /*lexical=*/true);
  auto dense_only = MakeDb(/*shards=*/2, /*lexical=*/false);
  ASSERT_NE(with_lex->lexical_index(), nullptr);
  ASSERT_EQ(dense_only->lexical_index(), nullptr);

  for (const std::string& q : TestQueries()) {
    ExpectSameHits(with_lex->RetrieveWithDistances(q, 10, {}),
                   dense_only->RetrieveWithDistances(q, 10, {}), "query '" + q + "'");
  }
  EXPECT_EQ(with_lex->hybrid_stats().dense_searches, 0u);
  EXPECT_EQ(with_lex->hybrid_stats().lexical_searches, 0u);
  EXPECT_EQ(with_lex->hybrid_stats().fused_queries, 0u);
  EXPECT_EQ(with_lex->lexical_index()->stats().searches, 0u);
}

TEST(HybridParityTest, WeightZeroBackendIsNeverScanned) {
  auto db = MakeDb(/*shards=*/2, /*lexical=*/true);

  // Lexical-only route: the dense index is never searched.
  RetrievalQuality lex_only;
  lex_only.hybrid = true;
  lex_only.dense_weight = 0.0f;
  lex_only.lexical_weight = 1.0f;
  for (const std::string& q : TestQueries()) {
    ASSERT_FALSE(db->RetrieveWithDistances(q, 10, lex_only).empty());
  }
  EXPECT_EQ(db->hybrid_stats().dense_searches, 0u);
  EXPECT_EQ(db->hybrid_stats().lexical_searches, TestQueries().size());
  EXPECT_EQ(db->hybrid_stats().fused_queries, 0u);

  // Dense-only route (hybrid flag on, lexical weight 0): the lexical index is
  // never searched.
  db->ResetHybridStats();
  db->lexical_index()->ResetSearchStats();
  RetrievalQuality dense_route;
  dense_route.hybrid = true;
  dense_route.dense_weight = 1.0f;
  dense_route.lexical_weight = 0.0f;
  for (const std::string& q : TestQueries()) {
    ASSERT_FALSE(db->RetrieveWithDistances(q, 10, dense_route).empty());
  }
  EXPECT_EQ(db->lexical_index()->stats().searches, 0u);
  EXPECT_EQ(db->hybrid_stats().lexical_searches, 0u);
  EXPECT_EQ(db->hybrid_stats().fused_queries, 0u);
}

// --- Fusion determinism across shard x thread combinations ------------------

TEST(HybridFusionTest, FusedRankingBitIdenticalAcrossShardsAndThreads) {
  // Baseline: 1 shard, no pool. Every other combination must reproduce the
  // fused ranking (and the raw RRF scores) bit-for-bit.
  auto baseline = MakeDb(/*shards=*/1, /*lexical=*/true);

  RetrievalQuality fused;
  fused.hybrid = true;
  fused.dense_weight = 0.5f;
  fused.lexical_weight = 0.5f;

  RetrievalQuality filtered = fused;
  filtered.filter.time_bucket = 1;

  std::vector<std::vector<SearchHit>> want_fused;
  std::vector<std::vector<SearchHit>> want_filtered;
  for (const std::string& q : TestQueries()) {
    want_fused.push_back(baseline->RetrieveWithDistances(q, 10, fused));
    want_filtered.push_back(baseline->RetrieveWithDistances(q, 10, filtered));
  }

  for (size_t shards : {size_t{1}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      ThreadPool pool(threads);
      auto db = MakeDb(shards, /*lexical=*/true, &pool);
      db->set_search_pool(&pool);
      std::string context =
          "shards=" + std::to_string(shards) + " threads=" + std::to_string(threads);
      const std::vector<std::string> queries = TestQueries();
      for (size_t i = 0; i < queries.size(); ++i) {
        ExpectSameHits(db->RetrieveWithDistances(queries[i], 10, fused), want_fused[i],
                       context + " fused q" + std::to_string(i));
        ExpectSameHits(db->RetrieveWithDistances(queries[i], 10, filtered), want_filtered[i],
                       context + " filtered q" + std::to_string(i));
      }
    }
  }
}

// --- Metadata-filter push-down ----------------------------------------------

TEST(HybridFilterTest, FilterExcludesNonMatchingChunksFromBothLegs) {
  auto db = MakeDb(/*shards=*/2, /*lexical=*/true);
  size_t matching = 0;
  for (size_t i = 0; i < db->num_chunks(); ++i) {
    matching += db->chunk(static_cast<ChunkId>(i)).time_bucket == 2 ? 1 : 0;
  }
  ASSERT_GT(matching, 10u);

  RetrievalQuality quality;
  quality.hybrid = true;
  quality.dense_weight = 0.5f;
  quality.lexical_weight = 0.5f;
  quality.filter.time_bucket = 2;
  for (const std::string& q : TestQueries()) {
    std::vector<SearchHit> hits = db->RetrieveWithDistances(q, 10, quality);
    EXPECT_EQ(hits.size(), std::min<size_t>(10, matching));
    for (const SearchHit& h : hits) {
      EXPECT_EQ(db->chunk(h.id).time_bucket, 2) << "query '" << q << "'";
    }
  }

  // Filter-only (no hybrid flag): the dense leg alone honors the push-down.
  RetrievalQuality dense_filtered;
  dense_filtered.filter.source = 1;
  for (const SearchHit& h : db->RetrieveWithDistances(TestQueries()[0], 10, dense_filtered)) {
    EXPECT_EQ(db->chunk(h.id).source, 1);
  }
}

// --- BM25 lifecycle determinism ---------------------------------------------

TEST(LexicalLifecycleTest, SealedCompactedIndexMatchesFreshBuildOverLiveSet) {
  // A tiny memtable forces seals and compactions mid-stream; removals mask
  // sealed postings and erase memtable postings. Scores must still be exact
  // live-set statistics: bit-identical to a fresh single-shard build over the
  // surviving docs in the same relative order.
  std::vector<Chunk> corpus = MakeCorpus(90);
  LexicalIndex aged(/*num_shards=*/4, /*memtable_rows=*/4, /*compact_segments=*/2);
  for (const Chunk& c : corpus) {
    aged.Add(static_cast<ChunkId>(&c - corpus.data()), c.text);
  }
  for (int i = 0; i < 90; i += 3) {
    EXPECT_TRUE(aged.Remove(i));
  }
  EXPECT_FALSE(aged.Remove(0));  // Already dead.
  EXPECT_GT(aged.stats().seals, 0u);
  EXPECT_EQ(aged.num_docs(), 60u);

  LexicalIndex fresh(/*num_shards=*/1, /*memtable_rows=*/1024, /*compact_segments=*/8);
  for (int i = 0; i < 90; ++i) {
    if (i % 3 != 0) {
      fresh.Add(i, corpus[static_cast<size_t>(i)].text);
    }
  }

  ThreadPool pool(4);
  for (const std::string& q : TestQueries()) {
    std::vector<SearchHit> want = fresh.Search(q, 15);
    ExpectSameHits(aged.Search(q, 15), want, "aged vs fresh, query '" + q + "'");
    ExpectSameHits(aged.Search(q, 15, {}, &pool), want, "aged pooled, query '" + q + "'");
  }
  // Removed docs never resurface even at exhaustive depth.
  for (const SearchHit& h : aged.Search("kimbrough stadium county randall", 90)) {
    EXPECT_NE(h.id % 3, 0);
  }
}

}  // namespace
}  // namespace metis
