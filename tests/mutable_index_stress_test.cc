// Concurrent ingest/query stress for the mutable serving index: searches
// hammer the index while a writer inserts/deletes and background maintenance
// (seal/compact/retrain) runs on a ThreadPool. The core assertion is the
// no-torn-reads contract: every result set is consistent with exactly ONE
// epoch — proven by pinning an epoch, rebuilding an exact flat reference from
// that epoch's own live-row enumeration, and requiring bit-equal results.
// This test (and the epoch machinery) is also what the METIS_SANITIZE=thread
// lane (`check_tsan`) race-checks in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/mutable_index.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

constexpr size_t kDim = 12;
constexpr size_t kTopK = 8;

Embedding RandomVec(Rng& rng) {
  Embedding v(kDim);
  for (float& x : v) {
    x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return v;
}

RetrievalQuality FullProbe() {
  RetrievalQuality q;
  q.mode = RetrievalQuality::ProbeMode::kFixed;
  q.nprobe = 1u << 20;
  return q;
}

// Exact reference for one pinned epoch, built from the epoch's own live-row
// enumeration (insertion order), so it describes that epoch and nothing else.
FlatL2Index EpochReference(const MutableIndex& index, const MutableEpoch& epoch) {
  FlatL2Index ref(kDim, 1);
  index.ForEachLiveRow(epoch, [&](ChunkId id, const float* row) {
    ref.Add(id, Embedding(row, row + kDim));
  });
  return ref;
}

void ExpectBitEqual(const std::vector<SearchHit>& got, const std::vector<SearchHit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(got[i].distance, want[i].distance);
  }
}

TEST(MutableIndexStressTest, ConcurrentIngestAndQueriesSeeOneEpoch) {
  RetrievalIndexOptions opt;
  opt.backend = RetrievalIndexOptions::Backend::kIvf;
  opt.shards = 2;
  opt.nlist = 8;
  opt.nprobe = 3;
  opt.train_seed = 17;
  opt.mutable_index = true;
  opt.mutation.memtable_rows = 32;
  opt.mutation.compact_segments = 3;
  opt.mutation.retrain_delta_fraction = 0.5;
  opt.mutation.max_rows = 1u << 14;
  opt.mutation.background_maintenance = true;

  ThreadPool maintenance_pool(2);
  MutableIndex index(kDim, opt);
  index.set_maintenance_pool(&maintenance_pool);

  Rng seed_rng(0xC0FFEE);
  ChunkId next_id = 0;
  for (int i = 0; i < 200; ++i) {
    index.Add(next_id++, RandomVec(seed_rng));
  }
  index.Finalize();

  std::atomic<bool> done{false};
  std::atomic<ChunkId> max_id{next_id};

  // Readers: mix of (a) pinned-epoch verification against an exact reference
  // for that epoch, (b) cheap invariant-checked searches at serving quality,
  // (c) pinned determinism (same epoch twice -> same bits).
  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    int verifications = 0;
    while (!done.load(std::memory_order_acquire) || verifications < 10) {
      Embedding q = RandomVec(rng);
      std::shared_ptr<const MutableEpoch> epoch = index.PinEpoch();
      if (verifications < 60 && rng.Bernoulli(0.25)) {
        FlatL2Index ref = EpochReference(index, *epoch);
        std::vector<SearchHit> got = index.SearchPinned(*epoch, q, kTopK, FullProbe());
        ExpectBitEqual(got, ref.Search(q, kTopK));
        ExpectBitEqual(index.SearchPinned(*epoch, q, kTopK, FullProbe()), got);
        ++verifications;
      } else {
        // Serving-quality search on the live index: structural invariants
        // (sorted, deduped, bounded) must hold no matter how the writer and
        // the maintenance jobs race this call.
        std::vector<SearchHit> hits = index.Search(q, kTopK);
        EXPECT_LE(hits.size(), kTopK);
        for (size_t i = 0; i < hits.size(); ++i) {
          EXPECT_GE(hits[i].distance, 0.0f);
          EXPECT_GE(hits[i].id, 0);
          EXPECT_LT(hits[i].id, max_id.load(std::memory_order_acquire));
          if (i > 0) {
            EXPECT_LE(hits[i - 1].distance, hits[i].distance);
          }
          for (size_t j = 0; j < i; ++j) {
            EXPECT_NE(hits[j].id, hits[i].id);
          }
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (uint64_t t = 0; t < 3; ++t) {
    readers.emplace_back(reader, 0xABC + t);
  }

  // Writer: inserts, deletes, and occasional explicit lifecycle ops (which
  // wait out in-flight background maintenance, exercising that handshake).
  Rng wrng(0xD1CE);
  std::vector<ChunkId> live;
  for (ChunkId id = 0; id < next_id; ++id) {
    live.push_back(id);
  }
  for (int op = 0; op < 1500; ++op) {
    double r = wrng.NextDouble();
    if (r < 0.70 || live.empty()) {
      ChunkId id = next_id++;
      // Advance the bound BEFORE the insert publishes: a reader may see the
      // new id the instant Insert swaps the epoch in.
      max_id.store(next_id, std::memory_order_release);
      index.Insert(id, RandomVec(wrng));
      live.push_back(id);
    } else if (r < 0.97) {
      size_t pick = wrng.Index(live.size());
      ASSERT_TRUE(index.Delete(live[pick]));
      live[pick] = live.back();
      live.pop_back();
    } else if (r < 0.985) {
      index.SealMemtable();
    } else {
      index.CompactSegments();
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }

  // The background machinery actually ran.
  MutableIndexStats stats = index.stats();
  EXPECT_GT(stats.seals, 0u);
  EXPECT_GT(stats.retrains + stats.compactions, 0u);
  EXPECT_EQ(stats.live_rows, live.size());

  // Quiesced: the final state still matches an exact rebuild.
  std::shared_ptr<const MutableEpoch> epoch = index.PinEpoch();
  FlatL2Index ref = EpochReference(index, *epoch);
  Rng qrng(0xF00D);
  for (int i = 0; i < 5; ++i) {
    Embedding q = RandomVec(qrng);
    ExpectBitEqual(index.SearchPinned(*epoch, q, kTopK, FullProbe()), ref.Search(q, kTopK));
  }
}

// A pinned epoch is immortal: hundreds of later mutations (including retrain,
// which swaps the base out from under it) never change its answers.
TEST(MutableIndexStressTest, PinnedEpochSurvivesLaterMutations) {
  RetrievalIndexOptions opt;
  opt.backend = RetrievalIndexOptions::Backend::kIvf;
  opt.nlist = 4;
  opt.nprobe = 2;
  opt.mutable_index = true;
  opt.mutation.memtable_rows = 16;
  opt.mutation.compact_segments = 2;
  MutableIndex index(kDim, opt);
  Rng rng(42);
  ChunkId next_id = 0;
  for (int i = 0; i < 80; ++i) {
    index.Add(next_id++, RandomVec(rng));
  }
  index.Finalize();

  std::shared_ptr<const MutableEpoch> pinned = index.PinEpoch();
  Embedding q = RandomVec(rng);
  std::vector<SearchHit> before = index.SearchPinned(*pinned, q, kTopK, FullProbe());

  for (int op = 0; op < 300; ++op) {
    if (op % 3 == 0 && next_id > 5) {
      index.Delete(static_cast<ChunkId>(op % next_id));
    } else {
      index.Insert(next_id++, RandomVec(rng));
    }
  }
  index.RetrainBase();
  ExpectBitEqual(index.SearchPinned(*pinned, q, kTopK, FullProbe()), before);
  EXPECT_GT(index.stats().retrains, 0u);
}

}  // namespace
}  // namespace metis
