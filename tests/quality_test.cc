// Unit tests for the token-F1 quality metric.

#include <gtest/gtest.h>

#include "src/quality/f1.h"

namespace metis {
namespace {

TEST(TokenF1Test, PerfectMatch) {
  F1Breakdown r = TokenF1({"a", "b", "c"}, {"a", "b", "c"});
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(TokenF1Test, NoOverlap) {
  F1Breakdown r = TokenF1({"x", "y"}, {"a", "b"});
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
  EXPECT_EQ(r.overlap, 0u);
}

TEST(TokenF1Test, PartialOverlap) {
  // 2 of 4 generated correct; 2 of 2 gold covered.
  F1Breakdown r = TokenF1({"a", "b", "x", "y"}, {"a", "b"});
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_NEAR(r.f1, 2 * 0.5 / 1.5, 1e-12);
}

TEST(TokenF1Test, MultisetSemantics) {
  // Duplicates only count as many times as they appear in the gold.
  F1Breakdown r = TokenF1({"a", "a", "a"}, {"a"});
  EXPECT_EQ(r.overlap, 1u);
  EXPECT_NEAR(r.precision, 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(TokenF1Test, EmptyInputs) {
  EXPECT_DOUBLE_EQ(TokenF1({}, {"a"}).f1, 0.0);
  EXPECT_DOUBLE_EQ(TokenF1({"a"}, {}).f1, 0.0);
  EXPECT_DOUBLE_EQ(TokenF1({}, {}).f1, 0.0);
}

TEST(TokenF1Test, OrderInsensitive) {
  EXPECT_DOUBLE_EQ(TokenF1({"b", "a"}, {"a", "b"}).f1, 1.0);
}

TEST(TextF1Test, TokenizesBeforeScoring) {
  F1Breakdown r = TextF1("The Answer!", "the answer");
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(TextF1Test, SymmetricHarmonicMean) {
  // Precision 1/2 and recall 1/4 -> F1 = 2pr/(p+r) = 1/3.
  F1Breakdown r = TokenF1({"a", "x"}, {"a", "b", "c", "d"});
  EXPECT_NEAR(r.f1, 1.0 / 3, 1e-12);
}

}  // namespace
}  // namespace metis
