// Unit tests for the dataset generators: structure, retrievability, Table-1
// statistics, arrival processes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/text/tokenizer.h"
#include "src/workload/dataset.h"

namespace metis {
namespace {

std::unique_ptr<Dataset> Gen(const char* name, int n = 60, uint64_t seed = 7) {
  DatasetGenerator gen(GetDatasetProfile(name), seed);
  return gen.Generate(n, "cohere-embed-v3-sim");
}

TEST(DatasetProfilesTest, FourDatasetsExist) {
  EXPECT_EQ(AllDatasetProfiles().size(), 4u);
  EXPECT_EQ(GetDatasetProfile("squad").chunk_tokens, 256);
  EXPECT_EQ(GetDatasetProfile("kg_rag_finsec").chunk_tokens, 1024);
}

TEST(DatasetProfilesDeathTest, UnknownAborts) {
  EXPECT_DEATH(GetDatasetProfile("nope"), "CHECK failed");
}

TEST(DatasetGeneratorTest, QueryCountAndIds) {
  auto ds = Gen("musique");
  ASSERT_EQ(ds->queries().size(), 60u);
  for (size_t i = 0; i < ds->queries().size(); ++i) {
    EXPECT_EQ(ds->queries()[i].id, static_cast<int32_t>(i));
  }
}

TEST(DatasetGeneratorTest, DeterministicForSeed) {
  auto a = Gen("squad", 20, 5);
  auto b = Gen("squad", 20, 5);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a->queries()[i].text, b->queries()[i].text);
    EXPECT_EQ(a->queries()[i].gold_answer_tokens, b->queries()[i].gold_answer_tokens);
  }
  EXPECT_NE(Gen("squad", 20, 6)->queries()[0].text, a->queries()[0].text);
}

TEST(DatasetGeneratorTest, GoldFactsLiveInChunks) {
  auto ds = Gen("musique");
  for (const RagQuery& q : ds->queries()) {
    EXPECT_EQ(static_cast<int>(q.gold_fact_ids.size()), q.num_facts);
    for (int32_t fid : q.gold_fact_ids) {
      const Fact& f = ds->fact(fid);
      EXPECT_TRUE(f.gold);
      EXPECT_EQ(f.query_id, q.id);
      ASSERT_GE(f.chunk_id, 0);
      const Chunk& chunk = ds->db().chunk(f.chunk_id);
      // The fact is registered on its chunk and its sentence is embedded in
      // the chunk text at the recorded offset.
      bool registered = false;
      for (int32_t cf : chunk.fact_ids) {
        registered = registered || cf == fid;
      }
      EXPECT_TRUE(registered);
      EXPECT_NE(chunk.text.find(f.sentence), std::string::npos);
    }
  }
}

TEST(DatasetGeneratorTest, ChunksHaveExactTokenCounts) {
  auto ds = Gen("kg_rag_finsec", 20);
  for (size_t c = 0; c < ds->db().num_chunks(); ++c) {
    const Chunk& chunk = ds->db().chunk(static_cast<ChunkId>(c));
    EXPECT_EQ(chunk.token_count, 1024);
    EXPECT_EQ(CountTokens(chunk.text), 1024u);
  }
}

TEST(DatasetGeneratorTest, GoldAnswerContainsAllFactTokens) {
  auto ds = Gen("qmsum", 30);
  for (const RagQuery& q : ds->queries()) {
    std::unordered_set<std::string> gold(q.gold_answer_tokens.begin(),
                                         q.gold_answer_tokens.end());
    for (int32_t fid : q.gold_fact_ids) {
      for (const auto& t : ds->fact(fid).answer_tokens) {
        EXPECT_TRUE(gold.count(t)) << "missing " << t;
      }
    }
    if (q.requires_joint) {
      EXPECT_FALSE(q.conclusion_tokens.empty());
    }
  }
}

TEST(DatasetGeneratorTest, QueryTextCarriesEntityAnchors) {
  auto ds = Gen("musique", 30);
  for (const RagQuery& q : ds->queries()) {
    if (q.underspecified) {
      continue;  // Deliberately omits most anchors.
    }
    auto tokens = Tokenize(q.text);
    std::unordered_set<std::string> set(tokens.begin(), tokens.end());
    for (int32_t fid : q.gold_fact_ids) {
      int matched = 0;
      for (const auto& e : ds->fact(fid).entity_words) {
        matched += set.count(e) ? 1 : 0;
      }
      EXPECT_GT(matched, 0) << q.text;
    }
  }
}

TEST(DatasetGeneratorTest, RetrievalFindsGoldChunks) {
  auto ds = Gen("musique", 60);
  double covered = 0, total = 0;
  for (const RagQuery& q : ds->queries()) {
    auto ids = ds->db().Retrieve(q.text, static_cast<size_t>(3 * q.num_facts));
    std::unordered_set<ChunkId> set(ids.begin(), ids.end());
    for (int32_t fid : q.gold_fact_ids) {
      covered += set.count(ds->fact(fid).chunk_id) ? 1 : 0;
      total += 1;
    }
  }
  // Good but deliberately imperfect: the 1-3x over-fetch rule exists because
  // hard negatives outrank some golds.
  EXPECT_GT(covered / total, 0.80);
  EXPECT_LT(covered / total, 1.00);
}

TEST(DatasetGeneratorTest, HardNegativesShareAnchorsButNotAnswers) {
  auto ds = Gen("squad", 40);
  int negatives = 0;
  for (size_t c = 0; c < ds->db().num_chunks(); ++c) {
    for (int32_t fid : ds->db().chunk(static_cast<ChunkId>(c)).fact_ids) {
      const Fact& f = ds->fact(fid);
      if (f.gold || f.query_id < 0) {
        continue;
      }
      ++negatives;
      const RagQuery& q = ds->queries()[static_cast<size_t>(f.query_id)];
      std::unordered_set<std::string> gold(q.gold_answer_tokens.begin(),
                                           q.gold_answer_tokens.end());
      for (const auto& t : f.answer_tokens) {
        EXPECT_FALSE(gold.count(t));  // Wrong answers, never gold tokens.
      }
    }
  }
  EXPECT_GT(negatives, 0);
}

TEST(DatasetGeneratorTest, MetadataDescribesCorpus) {
  auto ds = Gen("kg_rag_finsec", 10);
  EXPECT_EQ(ds->db().metadata().chunk_size_tokens, 1024);
  EXPECT_NE(ds->db().metadata().description.find("1024"), std::string::npos);
  EXPECT_EQ(ds->db().metadata().domain, "finance");
}

TEST(DatasetGeneratorTest, ProfileFlagsMatchTemplates) {
  auto ds = Gen("qmsum", 40);
  for (const RagQuery& q : ds->queries()) {
    if (q.requires_joint) {
      EXPECT_GT(q.num_facts, 1);
    }
    EXPECT_GE(q.ideal_summary_tokens, 30);
    EXPECT_LE(q.ideal_summary_tokens, 200);
    EXPECT_GE(q.target_output_tokens, GetDatasetProfile("qmsum").min_output_tokens);
    EXPECT_LE(q.target_output_tokens, GetDatasetProfile("qmsum").max_output_tokens);
  }
}

TEST(ArrivalsTest, PoissonArrivalsAreOrderedWithCorrectRate) {
  Rng rng(3);
  auto times = PoissonArrivalTimes(rng, 4000, 2.0);
  ASSERT_EQ(times.size(), 4000u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
  // Mean inter-arrival ~ 0.5 s at rate 2.
  EXPECT_NEAR(times.back() / 4000.0, 0.5, 0.05);
}

TEST(ArrivalsTest, AssignPoissonIsDeterministic) {
  auto a = Gen("squad", 10);
  std::vector<RagQuery> q1 = a->queries();
  std::vector<RagQuery> q2 = a->queries();
  AssignPoissonArrivals(q1, 2.0, 9);
  AssignPoissonArrivals(q2, 2.0, 9);
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_DOUBLE_EQ(q1[i].arrival_time, q2[i].arrival_time);
  }
  AssignSequentialArrivals(q1);
  EXPECT_DOUBLE_EQ(q1[5].arrival_time, 0.0);
}

TEST(ArrivalsTest, AssignArrivalsPoissonMatchesHistoricalStream) {
  // The kPoisson path of AssignArrivals is documented bit-identical to
  // AssignPoissonArrivals — existing specs keep their exact arrival times.
  auto a = Gen("squad", 20);
  std::vector<RagQuery> legacy = a->queries();
  std::vector<RagQuery> routed = a->queries();
  AssignPoissonArrivals(legacy, 2.0, 42);
  AssignArrivals(routed, ArrivalProcess{}, 2.0, 42);
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy[i].arrival_time, routed[i].arrival_time);
  }
}

class ArrivalKindTest : public testing::TestWithParam<ArrivalKind> {};

TEST_P(ArrivalKindTest, OrderedDeterministicAndRatePreserving) {
  ArrivalProcess process;
  process.kind = GetParam();
  const int n = 4000;
  const double rate = 2.0;
  Rng r1(7), r2(7), r3(8);
  std::vector<SimTime> a = ArrivalTimesFor(process, r1, n, rate);
  std::vector<SimTime> b = ArrivalTimesFor(process, r2, n, rate);
  std::vector<SimTime> c = ArrivalTimesFor(process, r3, n, rate);
  ASSERT_EQ(a.size(), static_cast<size_t>(n));
  EXPECT_EQ(a, b);  // Deterministic per seed...
  EXPECT_NE(a, c);  // ...and actually seed-dependent.
  EXPECT_GE(a.front(), 0.0);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i], a[i - 1]);
  }
  // Mean-rate-preserving: over many arrivals the long-run rate approaches the
  // nominal one for every shape (bursts/lulls average out). Flash crowds
  // front-load a finite window, so the realized rate runs a little HOT of
  // nominal at finite n; bound it from both sides loosely.
  double realized = static_cast<double>(n) / a.back();
  EXPECT_GT(realized, 0.8 * rate);
  EXPECT_LT(realized, 1.6 * rate);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArrivalKindTest,
                         testing::Values(ArrivalKind::kPoisson, ArrivalKind::kBursty,
                                         ArrivalKind::kDiurnal, ArrivalKind::kFlashCrowd),
                         [](const testing::TestParamInfo<ArrivalKind>& info) {
                           return std::string(ArrivalKindName(info.param));
                         });

TEST(ArrivalsTest, BurstyConcentratesArrivalsIntoBurstWindows) {
  // A two-state MMPP at burst_factor 3 must show tighter inter-arrival gaps
  // than Poisson at the same mean rate: the median gap (dominated by in-burst
  // arrivals) shrinks while the mean gap stays ~1/rate.
  ArrivalProcess bursty;
  bursty.kind = ArrivalKind::kBursty;
  const int n = 4000;
  Rng rb(11), rp(11);
  std::vector<SimTime> b = ArrivalTimesFor(bursty, rb, n, 2.0);
  std::vector<SimTime> p = ArrivalTimesFor(ArrivalProcess{}, rp, n, 2.0);
  auto median_gap = [](const std::vector<SimTime>& t) {
    std::vector<double> gaps;
    for (size_t i = 1; i < t.size(); ++i) {
      gaps.push_back(t[i] - t[i - 1]);
    }
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
    return gaps[gaps.size() / 2];
  };
  EXPECT_LT(median_gap(b), 0.8 * median_gap(p));
}

TEST(ArrivalsTest, FlashCrowdConcentratesArrivalsInWindow) {
  ArrivalProcess flash;
  flash.kind = ArrivalKind::kFlashCrowd;
  flash.flash_start_s = 20.0;
  flash.flash_duration_s = 15.0;
  flash.flash_factor = 8.0;
  const int n = 1000;
  const double rate = 2.0;
  Rng rng(5);
  std::vector<SimTime> t = ArrivalTimesFor(flash, rng, n, rate);
  size_t in_window = 0;
  for (SimTime x : t) {
    if (x >= flash.flash_start_s && x < flash.flash_start_s + flash.flash_duration_s) {
      ++in_window;
    }
  }
  // During the window the rate is 8x nominal = 16 qps over 15 s: ~240
  // arrivals vs the ~30 a flat stream would place there.
  EXPECT_GT(in_window, 150u);
  double window_rate = static_cast<double>(in_window) / flash.flash_duration_s;
  EXPECT_NEAR(window_rate, rate * flash.flash_factor, 0.35 * rate * flash.flash_factor);
}

TEST(ArrivalsTest, DiurnalOscillatesAroundMeanRate) {
  ArrivalProcess diurnal;
  diurnal.kind = ArrivalKind::kDiurnal;
  diurnal.diurnal_period_s = 120.0;
  diurnal.diurnal_amplitude = 0.8;
  const int n = 4000;
  const double rate = 2.0;
  Rng rng(13);
  std::vector<SimTime> t = ArrivalTimesFor(diurnal, rng, n, rate);
  // First half-period (sin > 0) runs above nominal, second half below.
  size_t first_half = 0, second_half = 0;
  for (SimTime x : t) {
    double phase = std::fmod(x, diurnal.diurnal_period_s);
    (phase < diurnal.diurnal_period_s / 2 ? first_half : second_half) += 1;
  }
  EXPECT_GT(first_half, second_half * 2);
}

TEST(ArrivalsTest, AssignArrivalsIsDeterministicForEveryKind) {
  auto a = Gen("squad", 30);
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal,
                           ArrivalKind::kFlashCrowd}) {
    ArrivalProcess process;
    process.kind = kind;
    std::vector<RagQuery> q1 = a->queries();
    std::vector<RagQuery> q2 = a->queries();
    AssignArrivals(q1, process, 2.0, 17);
    AssignArrivals(q2, process, 2.0, 17);
    for (size_t i = 0; i < q1.size(); ++i) {
      EXPECT_DOUBLE_EQ(q1[i].arrival_time, q2[i].arrival_time) << ArrivalKindName(kind);
    }
  }
}

}  // namespace
}  // namespace metis
