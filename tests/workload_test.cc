// Unit tests for the dataset generators: structure, retrievability, Table-1
// statistics, arrival processes.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/text/tokenizer.h"
#include "src/workload/dataset.h"

namespace metis {
namespace {

std::unique_ptr<Dataset> Gen(const char* name, int n = 60, uint64_t seed = 7) {
  DatasetGenerator gen(GetDatasetProfile(name), seed);
  return gen.Generate(n, "cohere-embed-v3-sim");
}

TEST(DatasetProfilesTest, FourDatasetsExist) {
  EXPECT_EQ(AllDatasetProfiles().size(), 4u);
  EXPECT_EQ(GetDatasetProfile("squad").chunk_tokens, 256);
  EXPECT_EQ(GetDatasetProfile("kg_rag_finsec").chunk_tokens, 1024);
}

TEST(DatasetProfilesDeathTest, UnknownAborts) {
  EXPECT_DEATH(GetDatasetProfile("nope"), "CHECK failed");
}

TEST(DatasetGeneratorTest, QueryCountAndIds) {
  auto ds = Gen("musique");
  ASSERT_EQ(ds->queries().size(), 60u);
  for (size_t i = 0; i < ds->queries().size(); ++i) {
    EXPECT_EQ(ds->queries()[i].id, static_cast<int32_t>(i));
  }
}

TEST(DatasetGeneratorTest, DeterministicForSeed) {
  auto a = Gen("squad", 20, 5);
  auto b = Gen("squad", 20, 5);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a->queries()[i].text, b->queries()[i].text);
    EXPECT_EQ(a->queries()[i].gold_answer_tokens, b->queries()[i].gold_answer_tokens);
  }
  EXPECT_NE(Gen("squad", 20, 6)->queries()[0].text, a->queries()[0].text);
}

TEST(DatasetGeneratorTest, GoldFactsLiveInChunks) {
  auto ds = Gen("musique");
  for (const RagQuery& q : ds->queries()) {
    EXPECT_EQ(static_cast<int>(q.gold_fact_ids.size()), q.num_facts);
    for (int32_t fid : q.gold_fact_ids) {
      const Fact& f = ds->fact(fid);
      EXPECT_TRUE(f.gold);
      EXPECT_EQ(f.query_id, q.id);
      ASSERT_GE(f.chunk_id, 0);
      const Chunk& chunk = ds->db().chunk(f.chunk_id);
      // The fact is registered on its chunk and its sentence is embedded in
      // the chunk text at the recorded offset.
      bool registered = false;
      for (int32_t cf : chunk.fact_ids) {
        registered = registered || cf == fid;
      }
      EXPECT_TRUE(registered);
      EXPECT_NE(chunk.text.find(f.sentence), std::string::npos);
    }
  }
}

TEST(DatasetGeneratorTest, ChunksHaveExactTokenCounts) {
  auto ds = Gen("kg_rag_finsec", 20);
  for (size_t c = 0; c < ds->db().num_chunks(); ++c) {
    const Chunk& chunk = ds->db().chunk(static_cast<ChunkId>(c));
    EXPECT_EQ(chunk.token_count, 1024);
    EXPECT_EQ(CountTokens(chunk.text), 1024u);
  }
}

TEST(DatasetGeneratorTest, GoldAnswerContainsAllFactTokens) {
  auto ds = Gen("qmsum", 30);
  for (const RagQuery& q : ds->queries()) {
    std::unordered_set<std::string> gold(q.gold_answer_tokens.begin(),
                                         q.gold_answer_tokens.end());
    for (int32_t fid : q.gold_fact_ids) {
      for (const auto& t : ds->fact(fid).answer_tokens) {
        EXPECT_TRUE(gold.count(t)) << "missing " << t;
      }
    }
    if (q.requires_joint) {
      EXPECT_FALSE(q.conclusion_tokens.empty());
    }
  }
}

TEST(DatasetGeneratorTest, QueryTextCarriesEntityAnchors) {
  auto ds = Gen("musique", 30);
  for (const RagQuery& q : ds->queries()) {
    if (q.underspecified) {
      continue;  // Deliberately omits most anchors.
    }
    auto tokens = Tokenize(q.text);
    std::unordered_set<std::string> set(tokens.begin(), tokens.end());
    for (int32_t fid : q.gold_fact_ids) {
      int matched = 0;
      for (const auto& e : ds->fact(fid).entity_words) {
        matched += set.count(e) ? 1 : 0;
      }
      EXPECT_GT(matched, 0) << q.text;
    }
  }
}

TEST(DatasetGeneratorTest, RetrievalFindsGoldChunks) {
  auto ds = Gen("musique", 60);
  double covered = 0, total = 0;
  for (const RagQuery& q : ds->queries()) {
    auto ids = ds->db().Retrieve(q.text, static_cast<size_t>(3 * q.num_facts));
    std::unordered_set<ChunkId> set(ids.begin(), ids.end());
    for (int32_t fid : q.gold_fact_ids) {
      covered += set.count(ds->fact(fid).chunk_id) ? 1 : 0;
      total += 1;
    }
  }
  // Good but deliberately imperfect: the 1-3x over-fetch rule exists because
  // hard negatives outrank some golds.
  EXPECT_GT(covered / total, 0.80);
  EXPECT_LT(covered / total, 1.00);
}

TEST(DatasetGeneratorTest, HardNegativesShareAnchorsButNotAnswers) {
  auto ds = Gen("squad", 40);
  int negatives = 0;
  for (size_t c = 0; c < ds->db().num_chunks(); ++c) {
    for (int32_t fid : ds->db().chunk(static_cast<ChunkId>(c)).fact_ids) {
      const Fact& f = ds->fact(fid);
      if (f.gold || f.query_id < 0) {
        continue;
      }
      ++negatives;
      const RagQuery& q = ds->queries()[static_cast<size_t>(f.query_id)];
      std::unordered_set<std::string> gold(q.gold_answer_tokens.begin(),
                                           q.gold_answer_tokens.end());
      for (const auto& t : f.answer_tokens) {
        EXPECT_FALSE(gold.count(t));  // Wrong answers, never gold tokens.
      }
    }
  }
  EXPECT_GT(negatives, 0);
}

TEST(DatasetGeneratorTest, MetadataDescribesCorpus) {
  auto ds = Gen("kg_rag_finsec", 10);
  EXPECT_EQ(ds->db().metadata().chunk_size_tokens, 1024);
  EXPECT_NE(ds->db().metadata().description.find("1024"), std::string::npos);
  EXPECT_EQ(ds->db().metadata().domain, "finance");
}

TEST(DatasetGeneratorTest, ProfileFlagsMatchTemplates) {
  auto ds = Gen("qmsum", 40);
  for (const RagQuery& q : ds->queries()) {
    if (q.requires_joint) {
      EXPECT_GT(q.num_facts, 1);
    }
    EXPECT_GE(q.ideal_summary_tokens, 30);
    EXPECT_LE(q.ideal_summary_tokens, 200);
    EXPECT_GE(q.target_output_tokens, GetDatasetProfile("qmsum").min_output_tokens);
    EXPECT_LE(q.target_output_tokens, GetDatasetProfile("qmsum").max_output_tokens);
  }
}

TEST(ArrivalsTest, PoissonArrivalsAreOrderedWithCorrectRate) {
  Rng rng(3);
  auto times = PoissonArrivalTimes(rng, 4000, 2.0);
  ASSERT_EQ(times.size(), 4000u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
  // Mean inter-arrival ~ 0.5 s at rate 2.
  EXPECT_NEAR(times.back() / 4000.0, 0.5, 0.05);
}

TEST(ArrivalsTest, AssignPoissonIsDeterministic) {
  auto a = Gen("squad", 10);
  std::vector<RagQuery> q1 = a->queries();
  std::vector<RagQuery> q2 = a->queries();
  AssignPoissonArrivals(q1, 2.0, 9);
  AssignPoissonArrivals(q2, 2.0, 9);
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_DOUBLE_EQ(q1[i].arrival_time, q2[i].arrival_time);
  }
  AssignSequentialArrivals(q1);
  EXPECT_DOUBLE_EQ(q1[5].arrival_time, 0.0);
}

}  // namespace
}  // namespace metis
