// Tests for the LLM query profiler: cue analysis, noise/confidence model,
// feedback learning, latency and cost behaviour.

#include <gtest/gtest.h>

#include "src/llm/engine.h"
#include "src/profiler/profiler.h"
#include "src/runner/runner.h"
#include "src/sim/simulator.h"

namespace metis {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : dataset_(GetOrGenerateDataset("musique", 120, "cohere-embed-v3-sim", 7)),
        api_(&sim_, Gpt4oApi(), 7),
        profiler_(&sim_, &api_, &dataset_->db().metadata(), Gpt4oProfilerParams(), 7) {}

  std::shared_ptr<const Dataset> dataset_;
  Simulator sim_;
  ApiLlmClient api_;
  QueryProfiler profiler_;
};

TEST_F(ProfilerTest, RecoversStructureOnWellSpecifiedQueries) {
  int joint_right = 0, complex_right = 0, pieces_right = 0, n = 0;
  for (const RagQuery& q : dataset_->queries()) {
    if (q.underspecified) {
      continue;
    }
    QueryProfiler::Outcome out = profiler_.Estimate(q);
    ++n;
    joint_right += out.profile.requires_joint == q.requires_joint;
    complex_right += out.profile.high_complexity == q.high_complexity;
    pieces_right += std::abs(out.profile.num_info_pieces - q.num_facts) <= 1;
  }
  ASSERT_GT(n, 50);
  EXPECT_GT(static_cast<double>(joint_right) / n, 0.90);
  EXPECT_GT(static_cast<double>(complex_right) / n, 0.90);
  EXPECT_GT(static_cast<double>(pieces_right) / n, 0.85);
}

TEST_F(ProfilerTest, UnderspecifiedQueriesAreMuchHarder) {
  int under_bad = 0, under_n = 0, spec_bad = 0, spec_n = 0;
  for (const RagQuery& q : dataset_->queries()) {
    QueryProfiler::Outcome out = profiler_.Estimate(q);
    if (q.underspecified) {
      ++under_n;
      under_bad += out.was_bad;
    } else {
      ++spec_n;
      spec_bad += out.was_bad;
    }
  }
  ASSERT_GT(under_n, 3);
  EXPECT_GT(static_cast<double>(under_bad) / under_n,
            static_cast<double>(spec_bad) / spec_n + 0.1);
}

TEST_F(ProfilerTest, ConfidenceCorrelatesWithGoodness) {
  double conf_good = 0, conf_bad = 0;
  int n_good = 0, n_bad = 0;
  for (int round = 0; round < 5; ++round) {
    for (const RagQuery& q : dataset_->queries()) {
      QueryProfiler::Outcome out = profiler_.Estimate(q);
      if (out.was_bad) {
        conf_bad += out.profile.confidence;
        ++n_bad;
      } else {
        conf_good += out.profile.confidence;
        ++n_good;
      }
    }
  }
  ASSERT_GT(n_bad, 5);
  EXPECT_GT(conf_good / n_good, conf_bad / n_bad + 0.1);
}

TEST_F(ProfilerTest, SummaryRangeWithinPaperBounds) {
  for (const RagQuery& q : dataset_->queries()) {
    QueryProfiler::Outcome out = profiler_.Estimate(q);
    EXPECT_GE(out.profile.summary_min_tokens, 30);
    EXPECT_LE(out.profile.summary_max_tokens, 200);
    EXPECT_LT(out.profile.summary_min_tokens, out.profile.summary_max_tokens);
    EXPECT_GE(out.profile.num_info_pieces, 1);
    EXPECT_LE(out.profile.num_info_pieces, 10);
  }
}

TEST_F(ProfilerTest, BiggerChunksRaiseSummaryBudget) {
  auto finsec = GetOrGenerateDataset("kg_rag_finsec", 40, "cohere-embed-v3-sim", 7);
  Simulator sim;
  ApiLlmClient api(&sim, Gpt4oApi(), 7);
  QueryProfiler finsec_profiler(&sim, &api, &finsec->db().metadata(), Gpt4oProfilerParams(), 7);

  double small_chunks = 0, big_chunks = 0;
  int n = 0;
  for (int i = 0; i < 40; ++i) {
    small_chunks += profiler_.Estimate(dataset_->queries()[static_cast<size_t>(i)])
                        .profile.summary_min_tokens;
    big_chunks += finsec_profiler.Estimate(finsec->queries()[static_cast<size_t>(i)])
                      .profile.summary_min_tokens;
    ++n;
  }
  EXPECT_GT(big_chunks / n, small_chunks / n);
}

TEST_F(ProfilerTest, AsyncProfileCarriesLatency) {
  bool done = false;
  profiler_.ProfileAsync(dataset_->queries()[0], [&](QueryProfiler::Outcome out) {
    EXPECT_GT(out.delay_seconds, 0.01);
    EXPECT_LT(out.delay_seconds, 1.0);
    done = true;
  });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(api_.calls(), 0u);
  EXPECT_GT(api_.total_cost_usd(), 0);
}

TEST_F(ProfilerTest, FeedbackReducesErrorRate) {
  // Error rate over underspecified queries before vs after feedback.
  auto bad_rate = [&]() {
    int bad = 0, n = 0;
    for (int round = 0; round < 10; ++round) {
      for (const RagQuery& q : dataset_->queries()) {
        if (!q.underspecified) {
          continue;
        }
        bad += profiler_.Estimate(q).was_bad;
        ++n;
      }
    }
    return static_cast<double>(bad) / n;
  };
  double before = bad_rate();
  for (int i = 0; i < 4; ++i) {
    profiler_.AddGoldenFeedback(dataset_->queries()[static_cast<size_t>(i)], 3, 60);
  }
  EXPECT_EQ(profiler_.feedback_prompts(), 4);
  double after = bad_rate();
  EXPECT_LT(after, before);
}

TEST_F(ProfilerTest, FeedbackKeepsOnlyLastFourPrompts) {
  for (int i = 0; i < 10; ++i) {
    profiler_.AddGoldenFeedback(dataset_->queries()[0], i, 40);
  }
  EXPECT_EQ(profiler_.feedback_prompts(), ProfilerParams::kMaxFeedbackPrompts);
}

TEST_F(ProfilerTest, FeedbackTeachesPieceCounts) {
  for (int i = 0; i < 4; ++i) {
    profiler_.AddGoldenFeedback(dataset_->queries()[0], 6, 80);
  }
  // Underspecified queries should now guess around the learned value.
  double sum = 0;
  int n = 0;
  for (int round = 0; round < 10; ++round) {
    for (const RagQuery& q : dataset_->queries()) {
      if (!q.underspecified) {
        continue;
      }
      sum += profiler_.Estimate(q).profile.num_info_pieces;
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 6.0, 1.5);
}

TEST_F(ProfilerTest, OpenSourceProfilerErrsMore) {
  Simulator sim;
  ApiLlmClient api(&sim, Llama70BApi(), 7);
  QueryProfiler open(&sim, &api, &dataset_->db().metadata(), Llama70BProfilerParams(), 7);
  int open_bad = 0, gpt_bad = 0;
  for (int round = 0; round < 10; ++round) {
    for (const RagQuery& q : dataset_->queries()) {
      open_bad += open.Estimate(q).was_bad;
      gpt_bad += profiler_.Estimate(q).was_bad;
    }
  }
  EXPECT_GT(open_bad, gpt_bad);
}

}  // namespace
}  // namespace metis
