// Integration tests: full serving experiments through the runner, covering
// every system kind, mixed workloads, determinism, and the paper's headline
// orderings at small scale.

#include <gtest/gtest.h>

#include "src/runner/runner.h"

namespace metis {
namespace {

RunSpec SmallSpec(SystemKind system) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 30;
  spec.arrival_rate = 2.0;
  spec.system = system;
  spec.seed = 11;
  return spec;
}

TEST(RunnerTest, VllmFixedServesEveryQuery) {
  RunMetrics m = RunExperiment(SmallSpec(SystemKind::kVllmFixed));
  EXPECT_EQ(m.records.size(), 30u);
  EXPECT_GT(m.mean_f1(), 0.1);
  EXPECT_GT(m.mean_delay(), 0.0);
  EXPECT_GT(m.throughput_qps, 0.0);
  EXPECT_GT(m.engine_cost_usd, 0.0);
  EXPECT_EQ(m.profiler_delays.count(), 0u);  // Fixed config: no profiler.
}

TEST(RunnerTest, MetisServesEveryQueryWithProfiler) {
  RunMetrics m = RunExperiment(SmallSpec(SystemKind::kMetis));
  EXPECT_EQ(m.records.size(), 30u);
  EXPECT_EQ(m.profiler_delays.count(), 30u);
  EXPECT_GT(m.profiler_cost_usd, 0.0);
  for (const QueryRecord& r : m.records) {
    EXPECT_GE(r.e2e_delay, r.profiler_delay);
    EXPECT_GE(r.profile.num_info_pieces, 1);
  }
}

TEST(RunnerTest, AdaptiveRagUsesQualityMaxConfigs) {
  RunMetrics m = RunExperiment(SmallSpec(SystemKind::kAdaptiveRag));
  EXPECT_EQ(m.records.size(), 30u);
  // Its per-query configs vary (adaptive), unlike a fixed system.
  bool varies = false;
  for (const QueryRecord& r : m.records) {
    varies = varies || !(r.config == m.records[0].config);
  }
  EXPECT_TRUE(varies);
}

TEST(RunnerTest, DeterministicAcrossInvocations) {
  RunMetrics a = RunExperiment(SmallSpec(SystemKind::kMetis));
  RunMetrics b = RunExperiment(SmallSpec(SystemKind::kMetis));
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_DOUBLE_EQ(a.mean_f1(), b.mean_f1());
  EXPECT_DOUBLE_EQ(a.mean_delay(), b.mean_delay());
}

TEST(RunnerTest, SeedChangesOutcome) {
  RunSpec spec = SmallSpec(SystemKind::kMetis);
  RunMetrics a = RunExperiment(spec);
  spec.seed = 12;
  RunMetrics b = RunExperiment(spec);
  EXPECT_NE(a.mean_delay(), b.mean_delay());
}

TEST(RunnerTest, ClosedLoopServesSequentially) {
  RunSpec spec = SmallSpec(SystemKind::kVllmFixed);
  spec.arrival_rate = -1;
  RunMetrics m = RunExperiment(spec);
  EXPECT_EQ(m.records.size(), 30u);
  // One query at a time: no queueing, so delays are tight around service.
  EXPECT_LT(m.p90_delay(), m.mean_delay() * 3);
}

TEST(RunnerTest, ParrotIsFasterThanVllmAtSameQuality) {
  RunSpec spec = SmallSpec(SystemKind::kVllmFixed);
  spec.dataset = "kg_rag_finsec";
  spec.num_queries = 60;
  spec.fixed_config = RagConfig{SynthesisMethod::kMapReduce, 6, 80};
  RunMetrics vllm = RunExperiment(spec);
  spec.system = SystemKind::kParrotFixed;
  RunMetrics parrot = RunExperiment(spec);
  EXPECT_DOUBLE_EQ(parrot.mean_f1(), vllm.mean_f1());  // Same configs, same answers.
  EXPECT_LT(parrot.mean_delay(), vllm.mean_delay());   // Batching helps delay.
}

TEST(RunnerTest, MixedRunReportsPerDataset) {
  MixedRunSpec spec;
  spec.datasets = {"squad", "musique"};
  spec.queries_per_dataset = 25;
  spec.seed = 11;
  spec.system = SystemKind::kMetis;
  auto results = RunMixedExperiment(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].records.size(), 25u);
  EXPECT_EQ(results[1].records.size(), 25u);
  EXPECT_NE(results[0].label, results[1].label);
}

TEST(RunnerTest, MixedContentionRaisesDelay) {
  MixedRunSpec spec;
  spec.datasets = {"musique"};
  spec.queries_per_dataset = 40;
  spec.seed = 11;
  spec.system = SystemKind::kVllmFixed;
  spec.fixed_configs = {RagConfig{SynthesisMethod::kStuff, 8, 0}};
  double alone = RunMixedExperiment(spec)[0].mean_delay();
  spec.datasets = {"musique", "kg_rag_finsec", "qmsum"};
  double contended = RunMixedExperiment(spec)[0].mean_delay();
  EXPECT_GT(contended, alone);
}

TEST(RunnerTest, DatasetCacheReturnsSameInstance) {
  auto a = GetOrGenerateDataset("squad", 30, "cohere-embed-v3-sim", 3);
  auto b = GetOrGenerateDataset("squad", 30, "cohere-embed-v3-sim", 3);
  EXPECT_EQ(a.get(), b.get());
  auto c = GetOrGenerateDataset("squad", 30, "cohere-embed-v3-sim", 4);
  EXPECT_NE(a.get(), c.get());
}

TEST(RunnerTest, FixedConfigMenuCoversAllMethods) {
  auto menu = FixedConfigMenu(GetDatasetProfile("qmsum"));
  bool has_rerank = false, has_stuff = false, has_reduce = false;
  for (const RagConfig& c : menu) {
    has_rerank = has_rerank || c.method == SynthesisMethod::kMapRerank;
    has_stuff = has_stuff || c.method == SynthesisMethod::kStuff;
    has_reduce = has_reduce || c.method == SynthesisMethod::kMapReduce;
  }
  EXPECT_TRUE(has_rerank && has_stuff && has_reduce);
}

TEST(RunnerTest, DefaultKvPoolScalesWithModel) {
  EXPECT_GT(DefaultKvPoolGib(Llama70BAwq()), DefaultKvPoolGib(Mistral7BAwq()));
  EXPECT_GE(DefaultKvPoolGib(Mistral7BAwq()), 2.5);
}

// The headline ordering at miniature scale: METIS matches AdaptiveRAG*'s
// quality at visibly lower delay under contention.
TEST(RunnerIntegrationTest, MetisBeatsAdaptiveOnDelayAtParity) {
  MixedRunSpec spec;
  spec.queries_per_dataset = 60;
  spec.seed = 11;
  spec.system = SystemKind::kMetis;
  auto metis = RunMixedExperiment(spec);
  spec.system = SystemKind::kAdaptiveRag;
  auto adaptive = RunMixedExperiment(spec);
  double metis_delay = 0, adaptive_delay = 0, metis_f1 = 0, adaptive_f1 = 0;
  for (size_t d = 0; d < metis.size(); ++d) {
    metis_delay += metis[d].mean_delay();
    adaptive_delay += adaptive[d].mean_delay();
    metis_f1 += metis[d].mean_f1();
    adaptive_f1 += adaptive[d].mean_f1();
  }
  EXPECT_LT(metis_delay, adaptive_delay * 0.9);
  EXPECT_GT(metis_f1, adaptive_f1 - 0.25);
}

// Property sweep over datasets: every dataset serves end-to-end under METIS
// with sane metrics.
class DatasetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetSweep, MetisServesDataset) {
  RunSpec spec;
  spec.dataset = GetParam();
  spec.num_queries = 20;
  spec.arrival_rate = 1.0;
  spec.system = SystemKind::kMetis;
  spec.seed = 13;
  RunMetrics m = RunExperiment(spec);
  EXPECT_EQ(m.records.size(), 20u);
  EXPECT_GT(m.mean_f1(), 0.15);
  EXPECT_LT(m.mean_f1(), 1.0);
  EXPECT_GT(m.mean_delay(), 0.0);
  EXPECT_LT(m.profiler_fracs.mean(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::Values("squad", "musique", "kg_rag_finsec", "qmsum"));

}  // namespace
}  // namespace metis
