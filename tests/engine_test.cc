// Engine-level tests for cross-query KV reuse and the PR's admission bugfix
// batch:
//   - prefix refcount lifecycle including LRU retention (park / revive /
//     evict-under-pressure / expire-past-grace),
//   - retention at the engine level: a grace window carries a warm prefix
//     across the gap between queries; the eager default does not,
//   - admission-livelock regression: a request sized between total - buffer
//     and total bytes must admit on an otherwise-empty pool,
//   - projected-free regression: queued siblings of one prefix group charge
//     the shared prefix once (not at all when resident),
//   - chunked-prefill accounting and group-aware admission determinism,
//   - Runner replays: new knobs at their defaults are bit-identical run to
//     run, and the feature-on stack replays deterministically too.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/llm/engine.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"
#include "src/runner/runner.h"
#include "src/sim/simulator.h"

namespace metis {
namespace {

// ---------- KvCacheManager: prefix LRU retention ----------

class RetainedKvTest : public ::testing::Test {
 protected:
  // 1 MiB pool, 16-token blocks, 1 KiB/token -> 64 blocks of 16 KiB.
  KvCacheManager kv_{1024.0 * 1024.0, 16, 1024.0};
};

TEST_F(RetainedKvTest, ParkReviveRelease) {
  EXPECT_EQ(kv_.AcquirePrefix(7, 160), 10);  // First acquire pays 10 blocks.
  EXPECT_TRUE(kv_.PrefixResident(7));
  EXPECT_FALSE(kv_.PrefixRetained(7));

  kv_.ReleasePrefixRetained(7, /*now=*/1.0);
  // Parked: still resident, blocks still counted used but reclaimable.
  EXPECT_TRUE(kv_.PrefixResident(7));
  EXPECT_TRUE(kv_.PrefixRetained(7));
  EXPECT_EQ(kv_.retained_blocks(), 10);
  EXPECT_EQ(kv_.used_blocks(), 10);

  // Revive in place: no new blocks, off the retained list.
  EXPECT_EQ(kv_.AcquirePrefix(7, 160), 0);
  EXPECT_FALSE(kv_.PrefixRetained(7));
  EXPECT_EQ(kv_.retained_blocks(), 0);
  EXPECT_EQ(kv_.retained_revivals(), 1u);

  // Eager release frees for real.
  kv_.ReleasePrefix(7);
  EXPECT_FALSE(kv_.PrefixResident(7));
  EXPECT_EQ(kv_.used_blocks(), 0);
}

TEST_F(RetainedKvTest, EagerReleaseNeverParks) {
  EXPECT_EQ(kv_.AcquirePrefix(3, 160), 10);
  kv_.ReleasePrefix(3);
  EXPECT_FALSE(kv_.PrefixResident(3));
  EXPECT_EQ(kv_.retained_blocks(), 0);
  EXPECT_EQ(kv_.used_blocks(), 0);
}

TEST_F(RetainedKvTest, AllocationEvictsOldestRetainedFirst) {
  EXPECT_EQ(kv_.AcquirePrefix(1, 160), 10);
  EXPECT_EQ(kv_.AcquirePrefix(2, 160), 10);
  kv_.ReleasePrefixRetained(1, 1.0);  // Oldest release.
  kv_.ReleasePrefixRetained(2, 2.0);
  EXPECT_EQ(kv_.free_blocks(), 44);

  // 50 blocks do not fit the free pool; evicting group 1 (oldest) suffices.
  EXPECT_TRUE(kv_.Allocate(99, 50 * 16));
  EXPECT_FALSE(kv_.PrefixResident(1));
  EXPECT_TRUE(kv_.PrefixRetained(2));
  EXPECT_EQ(kv_.retained_evictions(), 1u);
  EXPECT_EQ(kv_.retained_blocks(), 10);
}

TEST_F(RetainedKvTest, ExpireDropsOnlyPastCutoff) {
  EXPECT_EQ(kv_.AcquirePrefix(1, 160), 10);
  EXPECT_EQ(kv_.AcquirePrefix(2, 160), 10);
  kv_.ReleasePrefixRetained(1, 1.0);
  kv_.ReleasePrefixRetained(2, 2.0);

  kv_.ExpireRetained(/*cutoff=*/1.5);
  EXPECT_FALSE(kv_.PrefixResident(1));
  EXPECT_TRUE(kv_.PrefixRetained(2));
  EXPECT_EQ(kv_.retained_expirations(), 1u);

  kv_.ExpireRetained(/*cutoff=*/2.5);
  EXPECT_FALSE(kv_.PrefixResident(2));
  EXPECT_EQ(kv_.retained_expirations(), 2u);
  EXPECT_EQ(kv_.used_blocks(), 0);
}

// ---------- LlmEngine: retention across a gap ----------

class EngineReuseTest : public ::testing::Test {
 protected:
  EngineConfig Config() {
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = 4.0 * kGiB;
    cfg.prefix_sharing = true;
    cfg.policy = AdmissionPolicy::kGroupAware;
    return cfg;
  }

  // Runs request A (group 9) to completion, then submits an identical B at
  // t = 5 s — well after A finished — and returns the engine stats.
  EngineStats RunGapWorkload(double retention_s) {
    Simulator sim;
    EngineConfig cfg = Config();
    cfg.prefix_retention_s = retention_s;
    LlmEngine engine(&sim, cfg, 1);
    auto submit = [&engine]() {
      InferenceRequest req;
      req.prompt_tokens = 1000;
      req.output_tokens = 5;
      req.prefix_group = 9;
      req.shared_prefix_tokens = 600;
      req.on_complete = [](const RequestTiming&) {};
      engine.Submit(std::move(req));
    };
    submit();
    sim.ScheduleAt(5.0, submit);
    sim.Run();
    EXPECT_EQ(engine.stats().completed, 2u);
    return engine.stats();
  }
};

TEST_F(EngineReuseTest, RetentionCarriesPrefixAcrossGap) {
  // Grace window covers the 5 s gap: B revives A's parked prefix and skips
  // the 600 shared tokens.
  EngineStats stats = RunGapWorkload(/*retention_s=*/10.0);
  EXPECT_EQ(stats.prefill_tokens_saved, 600);
  EXPECT_EQ(stats.prefix_hits, 1u);
  EXPECT_EQ(stats.retained_prefix_hits, 1u);
  EXPECT_EQ(stats.retained_expirations, 0u);
  EXPECT_EQ(stats.prefill_tokens, 2 * 1000 - 600);
}

TEST_F(EngineReuseTest, ShortGraceExpiresBeforeReuse) {
  // 0.2 s grace is long gone by t = 5: the prefix expired, B pays in full.
  EngineStats stats = RunGapWorkload(/*retention_s=*/0.2);
  EXPECT_EQ(stats.prefill_tokens_saved, 0);
  EXPECT_EQ(stats.retained_prefix_hits, 0u);
  EXPECT_EQ(stats.retained_expirations, 1u);
  EXPECT_EQ(stats.prefill_tokens, 2 * 1000);
}

TEST_F(EngineReuseTest, EagerDefaultNeverRetains) {
  // retention 0 (default): bit-parity with the pre-retention engine — no
  // parked prefixes, no retained counters, full prefill for both.
  EngineStats stats = RunGapWorkload(/*retention_s=*/0.0);
  EXPECT_EQ(stats.prefill_tokens_saved, 0);
  EXPECT_EQ(stats.prefix_hits, 0u);
  EXPECT_EQ(stats.retained_prefix_hits, 0u);
  EXPECT_EQ(stats.retained_evictions, 0u);
  EXPECT_EQ(stats.retained_expirations, 0u);
}

// ---------- Adaptive prefix retention ----------

class AdaptiveRetentionTest : public EngineReuseTest {
 protected:
  // Fixed 0.2 s grace plus the adaptive estimator; repeats arrive ~1 s apart,
  // so the fixed window alone always expires the parked prefix first.
  EngineConfig AdaptiveConfig() {
    EngineConfig cfg = Config();
    cfg.prefix_retention_s = 0.2;
    cfg.adaptive_prefix_retention = true;
    return cfg;
  }

  static void SubmitShared(LlmEngine* engine) {
    InferenceRequest req;
    req.prompt_tokens = 1000;
    req.output_tokens = 5;
    req.prefix_group = 9;
    req.shared_prefix_tokens = 600;
    req.on_complete = [](const RequestTiming&) {};
    engine->Submit(std::move(req));
  }
};

TEST_F(AdaptiveRetentionTest, DefaultsOffAndWindowStaysFixedWhenDisabled) {
  // Ships disabled, with pinned tuning constants.
  EngineConfig defaults;
  EXPECT_FALSE(defaults.adaptive_prefix_retention);
  EXPECT_DOUBLE_EQ(defaults.adaptive_retention_mult, 2.0);
  EXPECT_DOUBLE_EQ(defaults.adaptive_retention_min_s, 0.05);
  EXPECT_DOUBLE_EQ(defaults.adaptive_retention_max_s, 5.0);

  // Flag off: RetentionS is the fixed window no matter how many hot repeats
  // arrive — bit-parity with the fixed-window engine.
  Simulator sim;
  EngineConfig cfg = Config();
  cfg.prefix_retention_s = 0.7;
  LlmEngine engine(&sim, cfg, 1);
  SubmitShared(&engine);
  sim.ScheduleAt(1.0, [&] {
    SubmitShared(&engine);
    EXPECT_DOUBLE_EQ(engine.RetentionS(), 0.7);
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(engine.RetentionS(), 0.7);
}

TEST_F(AdaptiveRetentionTest, FixedWindowUntilFirstRepeatThenEwmaTimesMult) {
  Simulator sim;
  LlmEngine engine(&sim, AdaptiveConfig(), 1);
  SubmitShared(&engine);
  // No repeat observed yet: the fixed window applies.
  EXPECT_DOUBLE_EQ(engine.RetentionS(), 0.2);
  sim.ScheduleAt(1.0, [&] {
    SubmitShared(&engine);
    // First gap (1.0 s) seeds the EWMA directly: window = 2.0 * 1.0.
    EXPECT_DOUBLE_EQ(engine.RetentionS(), 2.0);
  });
  sim.ScheduleAt(1.5, [&] {
    SubmitShared(&engine);
    // EWMA = 0.8 * 1.0 + 0.2 * 0.5 = 0.9 -> window 1.8.
    EXPECT_NEAR(engine.RetentionS(), 1.8, 1e-9);
  });
  sim.Run();
  EXPECT_EQ(engine.stats().completed, 3u);
}

TEST_F(AdaptiveRetentionTest, WindowClampsToConfiguredBounds) {
  Simulator sim;
  EngineConfig cfg = AdaptiveConfig();
  cfg.adaptive_retention_min_s = 3.0;
  cfg.adaptive_retention_max_s = 5.0;
  LlmEngine engine(&sim, cfg, 1);
  SubmitShared(&engine);
  sim.ScheduleAt(1.0, [&] {
    SubmitShared(&engine);
    // Raw window 2.0 * 1.0 = 2.0 clamps UP to min_s.
    EXPECT_DOUBLE_EQ(engine.RetentionS(), 3.0);
  });
  sim.ScheduleAt(21.0, [&] {
    SubmitShared(&engine);
    // EWMA = 0.8 * 1.0 + 0.2 * 20.0 = 4.8; raw 9.6 clamps DOWN to max_s.
    EXPECT_DOUBLE_EQ(engine.RetentionS(), 5.0);
  });
  sim.Run();
  EXPECT_EQ(engine.stats().completed, 3u);
}

TEST_F(AdaptiveRetentionTest, AdaptiveWindowCarriesPrefixTheFixedWindowDrops) {
  // Repeats every ~1 s against a 0.2 s fixed grace: the fixed engine expires
  // the parked prefix before every repeat and pays full prefill; the adaptive
  // engine learns a ~2 s window at the first repeat (expiry is evaluated
  // lazily against the CURRENT window, so it extends retroactively) and
  // revives the prefix from then on.
  auto run = [](bool adaptive) {
    Simulator sim;
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = 4.0 * kGiB;
    cfg.prefix_sharing = true;
    cfg.policy = AdmissionPolicy::kGroupAware;
    cfg.prefix_retention_s = 0.2;
    cfg.adaptive_prefix_retention = adaptive;
    LlmEngine engine(&sim, cfg, 1);
    SubmitShared(&engine);
    sim.ScheduleAt(1.0, [&] { SubmitShared(&engine); });
    sim.ScheduleAt(2.0, [&] { SubmitShared(&engine); });
    sim.Run();
    EXPECT_EQ(engine.stats().completed, 3u);
    return engine.stats();
  };

  EngineStats fixed = run(/*adaptive=*/false);
  EXPECT_EQ(fixed.prefill_tokens_saved, 0);
  EXPECT_EQ(fixed.retained_prefix_hits, 0u);
  EXPECT_EQ(fixed.retained_expirations, 2u);
  EXPECT_EQ(fixed.prefill_tokens, 3 * 1000);

  EngineStats adaptive = run(/*adaptive=*/true);
  EXPECT_EQ(adaptive.prefill_tokens_saved, 2 * 600);
  EXPECT_EQ(adaptive.retained_prefix_hits, 2u);
  EXPECT_EQ(adaptive.retained_expirations, 0u);
  EXPECT_EQ(adaptive.prefill_tokens, 3 * 1000 - 2 * 600);
}

// ---------- Bugfix regressions ----------

TEST(EngineAdmissionTest, NearPoolSizedRequestAdmitsOnEmptyPool) {
  // Livelock regression: the pool holds 62 blocks (992 tokens); the request
  // needs exactly 992 tokens, i.e. MORE than total - 2% buffer but not more
  // than total. Submit's satisfiability check passes, and the buffer waiver
  // on an otherwise-empty pool must let it admit — pre-fix, AdmitIfFits
  // demanded bytes + buffer <= free forever and the request hung.
  Simulator sim;
  EngineConfig cfg;
  cfg.model = Mistral7BAwq();
  cfg.kv_pool_bytes = 1000 * cfg.model.kv_bytes_per_token;  // -> 62 blocks.
  LlmEngine engine(&sim, cfg, 1);
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 900;
    req.output_tokens = 92;  // 992 tokens = the whole 62-block pool.
    req.on_complete = [&](const RequestTiming&) { ++done; };
    engine.Submit(std::move(req));
  }
  sim.Run();
  // Both complete, strictly one at a time (each needs the whole pool).
  EXPECT_EQ(done, 2);
}

TEST(EngineAdmissionTest, BufferStillEnforcedWhenPoolBusy) {
  // The waiver is scoped to an otherwise-empty pool: with an incumbent
  // decoding, a request that fits raw-free but not free-minus-buffer must
  // wait for the incumbent to finish (strictly staggered completions).
  Simulator sim;
  EngineConfig cfg;
  cfg.model = Mistral7BAwq();
  cfg.kv_pool_bytes = 1000 * cfg.model.kv_bytes_per_token;  // 62 blocks.
  LlmEngine engine(&sim, cfg, 1);
  std::vector<double> finishes;
  auto submit = [&](int prompt, int output) {
    InferenceRequest req;
    req.prompt_tokens = prompt;
    req.output_tokens = output;
    req.on_complete = [&](const RequestTiming& t) { finishes.push_back(t.finish_time); };
    engine.Submit(std::move(req));
  };
  submit(160, 160);  // 20 blocks; leaves 42 blocks (672 tokens) free.
  submit(600, 64);   // 664 tokens = 42 blocks: fits raw-free, not with buffer.
  sim.Run();
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_LT(finishes[0], finishes[1]);
}

TEST(EngineProjectedFreeTest, QueuedSiblingsChargePrefixOnce) {
  // Three siblings wait behind max_running=1. Their group's prefix is NOT
  // resident, so projected-free charges the 600-token prefix once plus each
  // sibling's tail — not 3x the full prompt.
  Simulator sim;
  EngineConfig cfg;
  cfg.model = Mistral7BAwq();
  cfg.kv_pool_bytes = 4.0 * kGiB;
  cfg.prefix_sharing = true;
  cfg.policy = AdmissionPolicy::kGroupAware;
  cfg.max_running = 1;
  LlmEngine engine(&sim, cfg, 1);

  InferenceRequest head;  // Occupies the single running slot, no group.
  head.prompt_tokens = 500;
  head.output_tokens = 200;
  head.on_complete = [](const RequestTiming&) {};
  engine.Submit(std::move(head));

  for (int i = 0; i < 3; ++i) {
    InferenceRequest req;
    req.prompt_tokens = 1000;
    req.output_tokens = 50;
    req.prefix_group = 5;
    req.shared_prefix_tokens = 600;
    req.on_complete = [](const RequestTiming&) {};
    engine.Submit(std::move(req));
  }
  ASSERT_EQ(engine.queue_depth(), 3u);
  const KvCacheManager& kv = engine.kv();
  double expected_claim = kv.BytesForTokens(600) +        // Prefix, once.
                          3 * kv.BytesForTokens(1000 - 600 + 50);  // Tails.
  EXPECT_DOUBLE_EQ(engine.projected_free_kv_bytes(),
                   engine.free_kv_bytes() - expected_claim);
  sim.Run();
}

TEST(EngineProjectedFreeTest, ResidentPrefixNotChargedToQueue) {
  // The running head holds the group's prefix, so waiting siblings are
  // charged tails only — the resident prefix costs the queue nothing.
  Simulator sim;
  EngineConfig cfg;
  cfg.model = Mistral7BAwq();
  cfg.kv_pool_bytes = 4.0 * kGiB;
  cfg.prefix_sharing = true;
  cfg.policy = AdmissionPolicy::kGroupAware;
  cfg.max_running = 1;
  LlmEngine engine(&sim, cfg, 1);

  auto submit_sibling = [&]() {
    InferenceRequest req;
    req.prompt_tokens = 1000;
    req.output_tokens = 50;
    req.prefix_group = 5;
    req.shared_prefix_tokens = 600;
    req.on_complete = [](const RequestTiming&) {};
    engine.Submit(std::move(req));
  };
  submit_sibling();  // Admits; acquires the prefix.
  submit_sibling();
  submit_sibling();
  ASSERT_EQ(engine.queue_depth(), 2u);
  const KvCacheManager& kv = engine.kv();
  double expected_claim = 2 * kv.BytesForTokens(1000 - 600 + 50);
  EXPECT_DOUBLE_EQ(engine.projected_free_kv_bytes(),
                   engine.free_kv_bytes() - expected_claim);
  sim.Run();
}

// ---------- Chunked prefill + admission determinism ----------

TEST(EngineSchedulingTest, ChunkedPrefillAccountsEveryToken) {
  Simulator sim;
  EngineConfig cfg;
  cfg.model = Mistral7BAwq();
  cfg.kv_pool_bytes = 4.0 * kGiB;
  cfg.max_batched_tokens = 2048;
  LlmEngine engine(&sim, cfg, 1);
  RequestTiming timing;
  InferenceRequest req;
  req.prompt_tokens = 5000;  // Needs >= 3 chunked-prefill steps.
  req.output_tokens = 3;
  req.on_complete = [&](const RequestTiming& t) { timing = t; };
  engine.Submit(std::move(req));
  sim.Run();
  EXPECT_EQ(engine.stats().prefill_tokens, 5000);
  EXPECT_EQ(timing.prefill_tokens_charged, 5000);
  EXPECT_GE(engine.stats().steps, 3u);
  EXPECT_GT(timing.first_token_time, timing.admit_time);
}

TEST(EngineSchedulingTest, GroupAwareAdmissionIsDeterministic) {
  // Mixed prefix groups under memory pressure exercise the sibling-jump
  // admission path; two identical runs must produce identical completion
  // times for every request.
  auto run_once = [&]() {
    Simulator sim;
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = 3000 * cfg.model.kv_bytes_per_token;
    cfg.prefix_sharing = true;
    cfg.policy = AdmissionPolicy::kGroupAware;
    cfg.prefix_retention_s = 0.5;
    LlmEngine engine(&sim, cfg, 1);
    std::vector<double> finishes(12, 0);
    for (int i = 0; i < 12; ++i) {
      InferenceRequest req;
      req.prompt_tokens = 800;
      req.output_tokens = 20;
      req.prefix_group = 1 + (i % 3);
      req.shared_prefix_tokens = 500;
      req.on_complete = [&finishes, i](const RequestTiming& t) {
        finishes[i] = t.finish_time;
      };
      engine.Submit(std::move(req));
    }
    sim.Run();
    EXPECT_GT(engine.stats().prefill_tokens_saved, 0);
    return finishes;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------- Runner replays ----------

RunSpec ReuseSpec(bool feature_on) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 12;
  spec.arrival_rate = 4.0;
  spec.system = SystemKind::kMetis;
  spec.seed = 31;
  if (feature_on) {
    // The grace window must cover the inter-arrival gap between duplicates
    // of one hot template (~1 s at rate 4 with 3 templates), or the parked
    // prefix expires before the next sibling arrives.
    spec.scheduler.cross_query_prefix = true;
    spec.scheduler.prefix_retention_s = 3.0;
    spec.scheduler.e2e_budget_s = 6.0;
    spec.shared_workload.hot_fraction = 0.6;
    spec.shared_workload.num_hot = 3;
  }
  return spec;
}

void ExpectSameRecords(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].query_id, b.records[i].query_id) << i;
    EXPECT_EQ(a.records[i].result.f1, b.records[i].result.f1) << i;
    EXPECT_EQ(a.records[i].e2e_delay, b.records[i].e2e_delay) << i;
    EXPECT_EQ(a.records[i].finish_time, b.records[i].finish_time) << i;
    EXPECT_EQ(a.records[i].config.method, b.records[i].config.method) << i;
    EXPECT_EQ(a.records[i].config.num_chunks, b.records[i].config.num_chunks) << i;
  }
  EXPECT_EQ(a.engine_stats.prefill_tokens, b.engine_stats.prefill_tokens);
  EXPECT_EQ(a.engine_stats.prefill_tokens_saved, b.engine_stats.prefill_tokens_saved);
  EXPECT_EQ(a.engine_stats.busy_seconds, b.engine_stats.busy_seconds);
}

TEST(RunnerReuseTest, DefaultKnobsReplayBitIdentically) {
  // The new knobs default off; the stock METIS run must stay a pure function
  // of the spec (and explicit-off must equal the default spelling).
  RunSpec spec = ReuseSpec(/*feature_on=*/false);
  RunMetrics first = RunExperiment(spec);
  RunMetrics second = RunExperiment(spec);
  ASSERT_EQ(first.records.size(), 12u);
  ExpectSameRecords(first, second);
  EXPECT_EQ(first.engine_stats.retained_prefix_hits, 0u);
  EXPECT_EQ(first.engine_stats.retained_evictions, 0u);

  RunSpec explicit_off = spec;
  explicit_off.scheduler.cross_query_prefix = false;
  explicit_off.scheduler.e2e_budget_s = 0;
  explicit_off.shared_workload.hot_fraction = 0;
  ExpectSameRecords(first, RunExperiment(explicit_off));
}

TEST(RunnerReuseTest, FeatureOnReplaysBitIdentically) {
  RunSpec spec = ReuseSpec(/*feature_on=*/true);
  RunMetrics first = RunExperiment(spec);
  RunMetrics second = RunExperiment(spec);
  ASSERT_EQ(first.records.size(), 12u);
  ExpectSameRecords(first, second);
}

TEST(RunnerReuseTest, SharedWorkloadDuplicatesTemplatesOnly) {
  // hot_fraction replaces queries with duplicates of the first num_hot
  // templates: every record's query id must come from the original stream,
  // the stream length is unchanged, and duplicates actually appear.
  RunSpec spec = ReuseSpec(/*feature_on=*/true);
  RunMetrics metrics = RunExperiment(spec);
  ASSERT_EQ(metrics.records.size(), 12u);
  std::set<int32_t> distinct;
  for (const QueryRecord& rec : metrics.records) {
    distinct.insert(rec.query_id);
  }
  EXPECT_LT(distinct.size(), metrics.records.size());  // Duplicates exist.
}

TEST(RunnerReuseTest, TightBudgetTrimsSynthesisThenTradesDepth) {
  // With an e2e budget far below what profiling + queueing consume, every
  // decision point sees ~zero remaining budget: the scheduler must trim
  // synthesis tokens toward the space floor and flag the depth trade —
  // and stay deterministic while doing it.
  RunSpec spec = ReuseSpec(/*feature_on=*/true);
  spec.scheduler.e2e_budget_s = 0.2;
  RunMetrics first = RunExperiment(spec);
  int trimmed = 0;
  int traded = 0;
  for (const QueryRecord& rec : first.records) {
    trimmed += rec.budget_trimmed ? 1 : 0;
    traded += rec.depth_traded ? 1 : 0;
    if (rec.budget_trimmed || rec.depth_traded) {
      EXPECT_GT(rec.est_service_s, 0) << rec.query_id;
    }
  }
  EXPECT_GT(trimmed + traded, 0);
  ExpectSameRecords(first, RunExperiment(spec));
}

TEST(RunnerReuseTest, SharedHotTrafficSavesPrefillWithReuseOn) {
  // The tentpole's end-to-end effect in miniature: under a shared-query-heavy
  // stream, reuse-on saves strictly more prefill than reuse-off (which only
  // ever shares within one query's own mapper group).
  RunSpec off = ReuseSpec(/*feature_on=*/true);
  off.scheduler.cross_query_prefix = false;
  off.scheduler.e2e_budget_s = 0;
  RunSpec on = ReuseSpec(/*feature_on=*/true);
  RunMetrics m_off = RunExperiment(off);
  RunMetrics m_on = RunExperiment(on);
  EXPECT_GT(m_on.engine_stats.prefill_tokens_saved,
            m_off.engine_stats.prefill_tokens_saved);
  // Equal work served: same query stream, both complete everything.
  EXPECT_EQ(m_off.records.size(), m_on.records.size());
}

}  // namespace
}  // namespace metis
