// Unit tests for src/common: RNG, stats, strings, table.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/table.h"

namespace metis {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng a(42);
  Rng b(42);
  a.NextU64();  // Consume from one parent only.
  EXPECT_EQ(a.Fork("child").NextU64(), b.Fork("child").NextU64());
}

TEST(RngTest, ForkTagsProduceDistinctStreams) {
  Rng a(42);
  EXPECT_NE(a.Fork("x").NextU64(), a.Fork("y").NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Exponential(2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 10000; ++i) {
    stats.Add(rng.Poisson(3.5));
  }
  EXPECT_NEAR(stats.mean(), 3.5, 0.15);
}

TEST(RngTest, ZipfRankZeroMostLikely) {
  Rng rng(29);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(10, 1.1))];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(HashString64Test, StableAndDistinct) {
  EXPECT_EQ(HashString64("hello"), HashString64("hello"));
  EXPECT_NE(HashString64("hello"), HashString64("hellp"));
  EXPECT_NE(HashString64(""), HashString64("a"));
}

TEST(RunningStatsTest, Basics) {
  RunningStats s;
  s.Add(1);
  s.Add(2);
  s.Add(3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SamplesTest, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.p90(), 90.1, 1e-9);
}

TEST(SamplesTest, QuantileAfterAppendResorts) {
  Samples s;
  s.Add(10);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  s.Add(0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(SamplesTest, MeanSumMinMax) {
  Samples s;
  s.AddAll({4.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.05);
  h.Add(0.95);
  h.Add(-5.0);  // Clamps to the first bucket.
  h.Add(5.0);   // Clamps to the last bucket.
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
}

TEST(HistogramTest, FractionAtOrAbove) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.2);
  h.Add(0.5);
  h.Add(0.9);
  h.Add(0.95);
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(0.9), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(0.0), 1.0);
}

TEST(StringsTest, SplitWordsDropsEmpty) {
  auto parts = SplitWords("  a  b\tc\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo-9"), "hello-9");
}

TEST(StringsTest, StripPunct) {
  EXPECT_EQ(StripPunct("(hello!)"), "hello");
  EXPECT_EQ(StripPunct("..."), "");
  EXPECT_EQ(StripPunct("a"), "a");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(TableTest, RendersHeaderAndRows) {
  Table t("demo");
  t.SetHeader({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::string r = t.Render();
  EXPECT_NE(r.find("demo"), std::string::npos);
  EXPECT_NE(r.find("333"), std::string::npos);
  EXPECT_NE(r.find("| a "), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace metis
