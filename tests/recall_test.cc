// Recall subsystem tests: RecallEval ground-truth semantics, the IVF
// recall/nprobe tradeoff, and the adaptive-nprobe claim — on a clustered
// dataset, per-query adaptive probing must beat a fixed-nprobe baseline of
// equal (or higher) average probe count, because it spends probes on the
// queries that straddle cluster boundaries and saves them on the ones that
// do not.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/clustered_corpus.h"
#include "src/vectordb/recall.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

// --- RecallAtK semantics -----------------------------------------------------

TEST(RecallAtKTest, PerfectOverlapIsOne) {
  std::vector<std::vector<SearchHit>> truth = {{{1, 0.1f}, {2, 0.2f}}, {{3, 0.3f}}};
  std::vector<std::vector<SearchHit>> got = {{{2, 0.2f}, {1, 0.1f}}, {{3, 0.3f}}};
  EXPECT_DOUBLE_EQ(RecallAtK(got, truth), 1.0);  // Order within top-k ignored.
}

TEST(RecallAtKTest, PartialOverlapAverages) {
  std::vector<std::vector<SearchHit>> truth = {{{1, 0}, {2, 0}}, {{3, 0}, {4, 0}}};
  std::vector<std::vector<SearchHit>> got = {{{1, 0}, {9, 0}}, {{8, 0}, {7, 0}}};
  EXPECT_DOUBLE_EQ(RecallAtK(got, truth), 0.25);  // (1/2 + 0/2) / 2.
}

TEST(RecallAtKTest, EmptyTruthRowsCountAsPerfect) {
  std::vector<std::vector<SearchHit>> truth = {{}, {{3, 0}}};
  std::vector<std::vector<SearchHit>> got = {{}, {{3, 0}}};
  EXPECT_DOUBLE_EQ(RecallAtK(got, truth), 1.0);
}

// --- Clustered corpus helpers ------------------------------------------------
//
// The corpus generator lives in src/vectordb/clustered_corpus.h, shared with
// bench_recall so the geometry pinned here is the geometry the bench sweeps.

template <typename IndexT>
void AddAll(IndexT& index, const std::vector<Embedding>& points) {
  for (size_t i = 0; i < points.size(); ++i) {
    index.Add(static_cast<ChunkId>(i), points[i]);
  }
}

// --- Recall ground truth -----------------------------------------------------

TEST(RecallEvalTest, FlatIndexRecallIsExactlyOne) {
  ClusteredCorpus corpus = MakeClusteredCorpus(16, 4, 60, 12, 4, 0xC0FFEE, /*mix_way=*/2);
  FlatL2Index flat(16);
  AddAll(flat, corpus.points);
  std::vector<Embedding> queries = corpus.AllQueries();
  RecallEval eval(flat, queries, 10);
  EXPECT_DOUBLE_EQ(eval.Evaluate(flat), 1.0);
  EXPECT_EQ(eval.ground_truth().size(), queries.size());
}

TEST(RecallEvalTest, ExhaustiveProbeIvfRecallIsOne) {
  ClusteredCorpus corpus = MakeClusteredCorpus(16, 4, 60, 12, 4, 0xFACADE, /*mix_way=*/2);
  FlatL2Index flat(16);
  IvfL2Index ivf(16, 4, 4, 7);  // nprobe == nlist: exact.
  AddAll(flat, corpus.points);
  AddAll(ivf, corpus.points);
  ivf.Train();
  RecallEval eval(flat, corpus.easy_queries, 10);
  EXPECT_DOUBLE_EQ(eval.Evaluate(ivf), 1.0);
}

TEST(RecallEvalTest, PrecomputedTruthPathsMatchFlatRebuild) {
  // The cheap paths (precomputed-truth ctor, FromExactSearch on a resident
  // index) must agree exactly with the classic flat-rebuild ctor — the whole
  // point is skipping the per-grid-cell O(n·q) rebuild, not changing truth.
  ClusteredCorpus corpus = MakeClusteredCorpus(16, 4, 60, 12, 4, 0x7B07B, /*mix_way=*/2);
  FlatL2Index flat(16);
  IvfL2Index ivf(16, 4, 2, 7);
  AddAll(flat, corpus.points);
  AddAll(ivf, corpus.points);
  ivf.Train();
  std::vector<Embedding> queries = corpus.AllQueries();

  RecallEval classic(flat, queries, 10);
  RecallEval wrapped(queries, 10, classic.ground_truth());
  RecallEval from_flat = RecallEval::FromExactSearch(flat, queries, 10);
  RetrievalQuality full_probe;
  full_probe.mode = RetrievalQuality::ProbeMode::kFixed;
  full_probe.nprobe = 4;  // == nlist: exact.
  RecallEval from_ivf = RecallEval::FromExactSearch(ivf, queries, 10, nullptr, full_probe);

  RetrievalQuality shallow;
  shallow.mode = RetrievalQuality::ProbeMode::kFixed;
  shallow.nprobe = 1;
  const double want = classic.Evaluate(ivf, nullptr, shallow);
  for (const RecallEval* eval : {&wrapped, &from_flat, &from_ivf}) {
    ASSERT_EQ(eval->ground_truth().size(), queries.size());
    EXPECT_DOUBLE_EQ(eval->Evaluate(ivf, nullptr, shallow), want);
    EXPECT_DOUBLE_EQ(eval->Evaluate(flat), 1.0);
  }
}

TEST(RecallEvalTest, RecallIsMonotoneInNprobe) {
  ClusteredCorpus corpus = MakeClusteredCorpus(24, 8, 80, 16, 16, 0xBEEF);
  FlatL2Index flat(24);
  IvfL2Index ivf(24, 8, 1, 7);
  AddAll(flat, corpus.points);
  AddAll(ivf, corpus.points);
  ivf.Train();
  std::vector<Embedding> queries = corpus.AllQueries();
  RecallEval eval(flat, queries, 10);
  double prev = -1;
  for (size_t nprobe : {1u, 2u, 4u, 8u}) {
    RetrievalQuality quality;
    quality.mode = RetrievalQuality::ProbeMode::kFixed;
    quality.nprobe = nprobe;
    double r = eval.Evaluate(ivf, nullptr, quality);
    EXPECT_GE(r, prev) << "nprobe=" << nprobe;
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // nprobe == nlist scans everything.
}

// --- Adaptive probing --------------------------------------------------------

TEST(AdaptiveProbeTest, BudgetAndMinProbesAreRespected) {
  ClusteredCorpus corpus = MakeClusteredCorpus(16, 6, 50, 8, 8, 0xA110);
  IvfL2Index ivf(16, 6, 3, 7);
  AddAll(ivf, corpus.points);
  ivf.Train();

  AdaptiveProbePolicy policy;
  policy.enabled = true;
  policy.min_probes = 2;
  policy.max_probes = 4;
  policy.distance_ratio = 1e9;  // Never terminates early: always hits budget.
  ivf.set_adaptive_probe(policy);
  ivf.ResetProbeStats();
  for (const Embedding& q : corpus.easy_queries) {
    ivf.Search(q, 5);
  }
  EXPECT_EQ(ivf.searches(), corpus.easy_queries.size());
  EXPECT_DOUBLE_EQ(ivf.mean_probes(), 4.0);  // Ratio never fires: budget.

  policy.distance_ratio = 0.0;  // Terminates as early as allowed.
  ivf.set_adaptive_probe(policy);
  ivf.ResetProbeStats();
  for (const Embedding& q : corpus.easy_queries) {
    ivf.Search(q, 5);
  }
  EXPECT_DOUBLE_EQ(ivf.mean_probes(), 2.0);  // Floor at min_probes.
}

TEST(AdaptiveProbeTest, QualityOverrideForcesFixedProbing) {
  ClusteredCorpus corpus = MakeClusteredCorpus(16, 6, 50, 8, 0, 0xA111);
  IvfL2Index ivf(16, 6, 3, 7);
  AddAll(ivf, corpus.points);
  ivf.Train();
  AdaptiveProbePolicy policy;
  policy.enabled = true;
  policy.min_probes = 1;
  policy.max_probes = 6;
  ivf.set_adaptive_probe(policy);

  RetrievalQuality fixed;
  fixed.mode = RetrievalQuality::ProbeMode::kFixed;
  fixed.nprobe = 5;
  ivf.ResetProbeStats();
  for (const Embedding& q : corpus.easy_queries) {
    ivf.Search(q, 5, fixed);
  }
  EXPECT_DOUBLE_EQ(ivf.mean_probes(), 5.0);
}

TEST(AdaptiveProbeTest, BatchAccountingMatchesSequential) {
  ClusteredCorpus corpus = MakeClusteredCorpus(16, 6, 50, 10, 6, 0xA112);
  IvfL2Index ivf(16, 6, 2, 7);
  AddAll(ivf, corpus.points);
  ivf.Train();
  AdaptiveProbePolicy policy;
  policy.enabled = true;
  policy.min_probes = 1;
  policy.max_probes = 6;
  ivf.set_adaptive_probe(policy);

  std::vector<Embedding> queries = corpus.AllQueries();

  ivf.ResetProbeStats();
  for (const Embedding& q : queries) {
    ivf.Search(q, 5);
  }
  uint64_t sequential_probes = ivf.probes_issued();

  for (size_t threads : {0u, 4u}) {
    ThreadPool pool(threads);
    ivf.ResetProbeStats();
    ivf.SearchBatch(queries, 5, threads == 0 ? nullptr : &pool);
    EXPECT_EQ(ivf.probes_issued(), sequential_probes) << "threads=" << threads;
    EXPECT_EQ(ivf.searches(), queries.size());
  }
}

// The headline claim (ISSUE 2 satellite): on a clustered corpus with a mix of
// in-cluster and boundary queries, adaptive probing reaches HIGHER recall@10
// than the fixed-nprobe baseline whose average probe count is as high or
// higher. The workload: easy queries need one probe; boundary queries need
// several. A fixed nprobe wastes the easy queries' budget and still starves
// the hard ones.
TEST(AdaptiveProbeTest, AdaptiveBeatsFixedAtEqualAverageProbeCount) {
  // 80 in-cluster queries (one probe suffices) + 40 five-cluster midpoints
  // (the true top-10 straddles ~5 exactly-equidistant lists). With a 1.3
  // squared-distance ratio, adaptive probing spends ~1 probe on the easy
  // queries and ~5 on the hard ones (mean ~2.2), while the fixed baseline at
  // the next-integer probe count (3) spends MORE on average and still
  // truncates the hard queries' answer lists.
  const size_t kDim = 24;
  const size_t kClusters = 12;
  ClusteredCorpus corpus =
      MakeClusteredCorpus(kDim, kClusters, 120, 80, 40, 0x5EED2, /*mix_way=*/5);
  FlatL2Index flat(kDim);
  IvfL2Index ivf(kDim, kClusters, 2, 7);
  AddAll(flat, corpus.points);
  AddAll(ivf, corpus.points);
  ivf.Train();

  std::vector<Embedding> queries = corpus.AllQueries();
  RecallEval eval(flat, queries, 10);

  AdaptiveProbePolicy policy;
  policy.enabled = true;
  policy.min_probes = 1;
  policy.max_probes = 8;
  policy.distance_ratio = 1.3;
  ivf.set_adaptive_probe(policy);

  ivf.ResetProbeStats();
  double adaptive_recall = eval.Evaluate(ivf);
  double adaptive_mean_probes = ivf.mean_probes();

  // Fixed baseline at the next-integer probe count: its average probe spend
  // is >= the adaptive run's, so probe-for-probe it has the advantage.
  size_t fixed_nprobe = static_cast<size_t>(std::ceil(adaptive_mean_probes));
  RetrievalQuality fixed;
  fixed.mode = RetrievalQuality::ProbeMode::kFixed;
  fixed.nprobe = fixed_nprobe;
  ivf.ResetProbeStats();
  double fixed_recall = eval.Evaluate(ivf, nullptr, fixed);
  double fixed_mean_probes = ivf.mean_probes();

  EXPECT_GE(fixed_mean_probes, adaptive_mean_probes);  // Fixed is not starved.
  // The headline: strictly better recall on strictly less average work.
  EXPECT_GT(adaptive_recall, fixed_recall)
      << "adaptive recall@10 " << adaptive_recall << " @ " << adaptive_mean_probes
      << " probes vs fixed recall@10 " << fixed_recall << " @ " << fixed_mean_probes;
  // Adaptive is not trivially exhaustive: well under the budget on average,
  // at (near-)exact recall.
  EXPECT_LE(adaptive_mean_probes, 3.0);
  EXPECT_GE(adaptive_recall, 0.999);
  std::printf("[ INFO ] adaptive: recall@10=%.4f mean_probes=%.2f | fixed nprobe=%zu: "
              "recall@10=%.4f\n",
              adaptive_recall, adaptive_mean_probes, fixed_nprobe, fixed_recall);
}

// --- VectorDatabase IVF backend ----------------------------------------------

TEST(VectorDatabaseIvfTest, IvfBackendRetrievesAndHonorsQuality) {
  RetrievalIndexOptions options;
  options.backend = RetrievalIndexOptions::Backend::kIvf;
  options.nlist = 4;
  options.nprobe = 4;
  options.adaptive.enabled = true;
  options.adaptive.min_probes = 1;
  options.adaptive.max_probes = 4;
  VectorDatabase db(EmbeddingModel(GetEmbeddingModel("all-mpnet-base-v2-sim")),
                    DatabaseMetadata{"ivf corpus", 64, "test"}, options);
  VectorDatabase flat_db(EmbeddingModel(GetEmbeddingModel("all-mpnet-base-v2-sim")),
                         DatabaseMetadata{"flat corpus", 64, "test"});
  const char* texts[] = {
      "the stadium sits in randall county texas",
      "quarterly semiconductor revenue beat expectations",
      "the committee meeting adjourned after the budget vote",
      "rainfall totals in the river basin broke the record",
      "chip fabrication capacity expanded across three plants",
      "the championship game drew a record stadium crowd",
      "the budget committee reconvened on thursday",
      "semiconductor exports rose despite the downturn",
  };
  for (const char* t : texts) {
    Chunk c;
    c.text = t;
    db.AddChunk(Chunk(c));
    flat_db.AddChunk(std::move(c));
  }
  ASSERT_NE(db.ivf_index(), nullptr);
  EXPECT_FALSE(db.ivf_index()->trained());
  db.FinalizeIndex();
  EXPECT_TRUE(db.ivf_index()->trained());
  EXPECT_EQ(flat_db.ivf_index(), nullptr);

  // Exhaustive-probe IVF == flat ranking on this tiny tie-free corpus.
  RetrievalQuality exhaustive;
  exhaustive.mode = RetrievalQuality::ProbeMode::kFixed;
  exhaustive.nprobe = 4;
  auto got = db.Retrieve("semiconductor revenue this quarter", 3, exhaustive);
  auto want = flat_db.Retrieve("semiconductor revenue this quarter", 3);
  EXPECT_EQ(got, want);

  // The adaptive default terminates early somewhere: fewer probes issued
  // than exhaustive, and batch retrieval agrees with per-query retrieval.
  db.ivf_index()->ResetProbeStats();
  std::vector<std::string> queries = {"stadium county game", "budget vote meeting"};
  auto batched = db.RetrieveBatch(queries, 3);
  ASSERT_EQ(batched.size(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto direct = db.RetrieveWithDistances(queries[i], 3);
    ASSERT_EQ(batched[i].size(), direct.size()) << i;
    for (size_t r = 0; r < direct.size(); ++r) {
      EXPECT_EQ(batched[i][r].id, direct[r].id) << i << " rank " << r;
    }
  }
  EXPECT_GT(db.ivf_index()->searches(), 0u);
  // On this tiny corpus the ratio rule may legitimately never fire; the knob
  // contract is only that probing stays within the configured budget.
  EXPECT_LE(db.ivf_index()->mean_probes(), 4.0);
}

}  // namespace
}  // namespace metis
