// Tests for METIS core: Algorithm-1 rule mapping, pruned spaces, and the
// joint configuration-scheduler.

#include <gtest/gtest.h>

#include "src/core/joint_scheduler.h"
#include "src/core/mapping.h"
#include "src/runner/runner.h"

namespace metis {
namespace {

QueryProfile MakeProfile(bool joint, bool complex_q, int pieces, int smin = 40,
                         int smax = 120) {
  QueryProfile p;
  p.requires_joint = joint;
  p.high_complexity = complex_q;
  p.num_info_pieces = pieces;
  p.summary_min_tokens = smin;
  p.summary_max_tokens = smax;
  return p;
}

// ---------- Algorithm 1 ----------

TEST(RuleBasedMappingTest, NoJointMapsToRerankOnly) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(false, false, 1));
  ASSERT_EQ(space.methods.size(), 1u);
  EXPECT_EQ(space.methods[0], SynthesisMethod::kMapRerank);
}

TEST(RuleBasedMappingTest, JointLowMapsToStuff) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, false, 3));
  ASSERT_EQ(space.methods.size(), 1u);
  EXPECT_EQ(space.methods[0], SynthesisMethod::kStuff);
}

TEST(RuleBasedMappingTest, JointHighMapsToStuffAndMapReduce) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, true, 4));
  ASSERT_EQ(space.methods.size(), 2u);
  EXPECT_EQ(space.methods[0], SynthesisMethod::kStuff);
  EXPECT_EQ(space.methods[1], SynthesisMethod::kMapReduce);
}

TEST(RuleBasedMappingTest, ChunkRangeIsOneToThreeTimesPieces) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, false, 4));
  EXPECT_EQ(space.min_chunks, 4);
  EXPECT_EQ(space.max_chunks, 12);
}

TEST(RuleBasedMappingTest, ChunkRangeCappedByDatabase) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, false, 10), 12);
  EXPECT_EQ(space.min_chunks, 10);
  EXPECT_EQ(space.max_chunks, 12);
}

TEST(RuleBasedMappingTest, IntermediateRangeFromProfile) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, true, 4, 55, 130));
  EXPECT_EQ(space.min_intermediate, 55);
  EXPECT_EQ(space.max_intermediate, 130);
}

TEST(RuleBasedMappingTest, PruningShrinks50To100x) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, true, 3, 40, 100));
  size_t full = FullConfigSpaceSize();
  size_t pruned = space.ApproximateSize();
  EXPECT_GE(full / pruned, 15u);  // Order-of-magnitude reduction.
  EXPECT_LE(full / pruned, 400u);
}

TEST(PrunedConfigSpaceTest, ContainsChecksAllKnobs) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, true, 3, 40, 100));
  EXPECT_TRUE(space.Contains(RagConfig{SynthesisMethod::kStuff, 5, 0}));
  EXPECT_TRUE(space.Contains(RagConfig{SynthesisMethod::kMapReduce, 5, 60}));
  EXPECT_FALSE(space.Contains(RagConfig{SynthesisMethod::kMapRerank, 5, 0}));
  EXPECT_FALSE(space.Contains(RagConfig{SynthesisMethod::kStuff, 15, 0}));
  EXPECT_FALSE(space.Contains(RagConfig{SynthesisMethod::kMapReduce, 5, 300}));
}

TEST(PrunedConfigSpaceTest, UnionWidens) {
  PrunedConfigSpace a = RuleBasedMapping(MakeProfile(false, false, 1));
  PrunedConfigSpace b = RuleBasedMapping(MakeProfile(true, true, 5));
  a.UnionWith(b);
  EXPECT_EQ(a.methods.size(), 3u);
  EXPECT_EQ(a.min_chunks, 1);
  EXPECT_EQ(a.max_chunks, 15);
}

TEST(PrunedConfigSpaceTest, AverageRightSizes) {
  PrunedConfigSpace a = RuleBasedMapping(MakeProfile(true, false, 2));
  PrunedConfigSpace b = RuleBasedMapping(MakeProfile(true, false, 6));
  PrunedConfigSpace avg = PrunedConfigSpace::AverageOf({a, b});
  EXPECT_EQ(avg.min_chunks, 4);   // (2+6)/2.
  EXPECT_EQ(avg.max_chunks, 12);  // (6+18)/2.
}

// ---------- JointScheduler ----------

class JointSchedulerTest : public ::testing::Test {
 protected:
  JointSchedulerTest()
      : dataset_(GetOrGenerateDataset("kg_rag_finsec", 30, "cohere-embed-v3-sim", 7)) {
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = 4.0 * kGiB;
    engine_ = std::make_unique<LlmEngine>(&sim_, cfg, 1);
    behavior_ = std::make_unique<BehaviorModel>(BehaviorParams{}, 1);
    executor_ = std::make_unique<SynthesisExecutor>(&sim_, engine_.get(), behavior_.get(),
                                                    dataset_.get(), 1);
    scheduler_ = std::make_unique<JointScheduler>(engine_.get(), executor_.get());
  }

  // Occupies the engine's KV pool with a long-running request. The 4 GiB
  // pool holds 32768 tokens; occupancy must stay below that (with the 2%
  // admission buffer) to be admitted at all.
  void OccupyMemory(int tokens) {
    InferenceRequest req;
    req.prompt_tokens = tokens;
    req.output_tokens = 2000;  // Keeps the reservation alive for a while.
    req.on_complete = [](const RequestTiming&) {};
    engine_->Submit(std::move(req));
    sim_.Run(0.5);  // Let it admit.
  }

  std::shared_ptr<const Dataset> dataset_;
  Simulator sim_;
  std::unique_ptr<LlmEngine> engine_;
  std::unique_ptr<BehaviorModel> behavior_;
  std::unique_ptr<SynthesisExecutor> executor_;
  std::unique_ptr<JointScheduler> scheduler_;
};

TEST_F(JointSchedulerTest, PeakBytesOrdering) {
  // stuff holds the whole prompt; map_reduce's unit is a mapper or the
  // reduce prompt; map_rerank's unit is a single mapper.
  RagConfig stuff{SynthesisMethod::kStuff, 10, 0};
  RagConfig rerank{SynthesisMethod::kMapRerank, 10, 0};
  RagConfig reduce{SynthesisMethod::kMapReduce, 10, 60};
  double p_stuff = scheduler_->PeakBytes(stuff, 32, 48);
  double p_rerank = scheduler_->PeakBytes(rerank, 32, 48);
  double p_reduce = scheduler_->PeakBytes(reduce, 32, 48);
  EXPECT_GT(p_stuff, p_reduce);
  EXPECT_GT(p_stuff, p_rerank);
}

TEST_F(JointSchedulerTest, TotalBytesCountsAllCalls) {
  RagConfig rerank{SynthesisMethod::kMapRerank, 10, 0};
  EXPECT_NEAR(scheduler_->TotalBytes(rerank, 32, 48),
              10 * scheduler_->PeakBytes(rerank, 32, 48), 1.0);
}

TEST_F(JointSchedulerTest, FreeMemoryPicksRichestFittingConfig) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, false, 3));
  SchedulerDecision d = scheduler_->Choose(space, MakeProfile(true, false, 3), 32, 48);
  EXPECT_FALSE(d.used_fallback);
  EXPECT_EQ(d.config.method, SynthesisMethod::kStuff);
  // With 4 GiB free it takes the largest LITM-safe chunk count <= 3n.
  EXPECT_GT(d.config.num_chunks, 3);
}

TEST_F(JointSchedulerTest, StuffNeverExceedsLitmBudget) {
  // With pieces=4, 3n=12 chunks would be 12.4k tokens — far past the LITM
  // budget; the scheduler must stop at the budget (but never below n).
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, false, 4));
  SchedulerDecision d = scheduler_->Choose(space, MakeProfile(true, false, 4), 32, 48);
  int prompt = executor_->StuffPromptTokens(32, d.config.num_chunks);
  EXPECT_LE(prompt, JointScheduler::kStuffContextBudgetTokens + 1024);
  EXPECT_GE(d.config.num_chunks, space.min_chunks);
}

TEST_F(JointSchedulerTest, TightMemoryDowngradesToMapReduce) {
  // FinSec chunks are 1024 tokens; occupy most of the pool so no stuff
  // configuration of a complex profile fits, but mapper units do.
  OccupyMemory(28000);
  QueryProfile profile = MakeProfile(true, true, 5);
  SchedulerDecision d = scheduler_->Choose(RuleBasedMapping(profile), profile, 32, 48);
  EXPECT_NE(d.config.method, SynthesisMethod::kStuff);
}

TEST_F(JointSchedulerTest, ExhaustedMemoryFallsBackOutsideSpace) {
  OccupyMemory(29500);
  QueryProfile profile = MakeProfile(true, false, 6);  // Space = {stuff} only.
  PrunedConfigSpace space = RuleBasedMapping(profile);
  SchedulerDecision d = scheduler_->Choose(space, profile, 32, 48);
  EXPECT_TRUE(d.used_fallback);
  // Fig. 8: the fitting fallback for a joint query is map_reduce (mappers
  // slot into the batch piecewise) once stuff cannot cover the need.
  EXPECT_EQ(d.config.method, SynthesisMethod::kMapReduce);
  EXPECT_EQ(d.config.num_chunks, space.min_chunks);
}

TEST_F(JointSchedulerTest, FallbackForSimpleQueriesIsRerank) {
  OccupyMemory(29500);
  QueryProfile profile = MakeProfile(false, false, 2);
  SchedulerDecision d = scheduler_->Choose(RuleBasedMapping(profile), profile, 32, 48);
  // Rerank units always "fit piecewise": chosen either in-space or by
  // fallback, never stuff.
  EXPECT_EQ(d.config.method, SynthesisMethod::kMapRerank);
}

TEST_F(JointSchedulerTest, MedianIsInsideSpace) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, true, 4));
  RagConfig median = scheduler_->MedianOfSpace(space);
  EXPECT_TRUE(space.Contains(median));
}

TEST_F(JointSchedulerTest, QualityMaxPrefersExpensiveMethod) {
  PrunedConfigSpace space = RuleBasedMapping(MakeProfile(true, true, 4));
  RagConfig qmax = scheduler_->QualityMaxOfSpace(space);
  EXPECT_EQ(qmax.method, SynthesisMethod::kMapReduce);
  // Quality saturates inside the range: the pick is past the midpoint but
  // not at the wasteful maximum (Fig. 4c).
  EXPECT_GT(qmax.intermediate_tokens, space.min_intermediate);
  EXPECT_LE(qmax.intermediate_tokens, space.max_intermediate);
  EXPECT_GE(qmax.num_chunks, space.min_chunks);
}

}  // namespace
}  // namespace metis
