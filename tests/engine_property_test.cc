// Parameterized property tests for the engine: invariants that must hold
// across batching policies, pool sizes, and workload shapes.

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/llm/engine.h"
#include "src/sim/simulator.h"

namespace metis {
namespace {

// (prefix_sharing, pool_tokens, num_requests)
using EngineParam = std::tuple<bool, int, int>;

class EngineProperty : public ::testing::TestWithParam<EngineParam> {
 protected:
  EngineConfig Config() {
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = std::get<1>(GetParam()) * cfg.model.kv_bytes_per_token;
    cfg.prefix_sharing = std::get<0>(GetParam());
    cfg.policy = std::get<0>(GetParam()) ? AdmissionPolicy::kGroupAware
                                         : AdmissionPolicy::kFcfs;
    return cfg;
  }
};

TEST_P(EngineProperty, AllRequestsCompleteExactlyOnceInOrderOfNoLoss) {
  Simulator sim;
  LlmEngine engine(&sim, Config(), 3);
  int n = std::get<2>(GetParam());
  Rng rng(99);
  std::vector<int> completions;
  for (int i = 0; i < n; ++i) {
    InferenceRequest req;
    req.prompt_tokens = static_cast<int>(rng.UniformInt(50, 1200));
    req.output_tokens = static_cast<int>(rng.UniformInt(1, 60));
    if (i % 3 == 0) {
      req.prefix_group = 1 + static_cast<uint64_t>(i / 6);
      req.shared_prefix_tokens = std::min(40, req.prompt_tokens);
    }
    req.on_complete = [&completions, i](const RequestTiming& t) {
      completions.push_back(i);
      // Timing sanity for every completion.
      EXPECT_GE(t.admit_time, t.submit_time);
      EXPECT_GE(t.first_token_time, t.admit_time);
      EXPECT_GE(t.finish_time, t.first_token_time);
      EXPECT_GT(t.prompt_tokens, 0);
      EXPECT_GT(t.output_tokens, 0);
      EXPECT_LE(t.prefill_tokens_charged, t.prompt_tokens);
    };
    engine.Submit(std::move(req));
  }
  sim.Run();
  EXPECT_EQ(completions.size(), static_cast<size_t>(n));
  EXPECT_EQ(engine.stats().completed, static_cast<uint64_t>(n));
  // All memory returned.
  EXPECT_NEAR(engine.free_kv_bytes(), engine.total_kv_bytes(), 1.0);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.running_count(), 0u);
}

TEST_P(EngineProperty, PeakMemoryNeverExceedsPool) {
  Simulator sim;
  LlmEngine engine(&sim, Config(), 3);
  Rng rng(7);
  int n = std::get<2>(GetParam());
  for (int i = 0; i < n; ++i) {
    InferenceRequest req;
    req.prompt_tokens = static_cast<int>(rng.UniformInt(100, 900));
    req.output_tokens = static_cast<int>(rng.UniformInt(1, 40));
    req.on_complete = [](const RequestTiming&) {};
    engine.Submit(std::move(req));
  }
  sim.Run();
  EXPECT_LE(engine.stats().peak_kv_bytes, engine.total_kv_bytes() + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineProperty,
    ::testing::Values(EngineParam{false, 4000, 12}, EngineParam{false, 20000, 40},
                      EngineParam{true, 4000, 12}, EngineParam{true, 20000, 40},
                      EngineParam{true, 2500, 25}, EngineParam{false, 2500, 25}),
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      return std::string(std::get<0>(info.param) ? "shared" : "fcfs") + "_pool" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace metis
