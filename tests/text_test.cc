// Unit tests for the text substrate: tokenizer and vocabulary.

#include <gtest/gtest.h>

#include <set>

#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace metis {
namespace {

TEST(TokenizerTest, LowercasesAndStripsPunct) {
  auto toks = Tokenize("Hello, World!");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n").empty());
  EXPECT_TRUE(Tokenize("...").empty());
}

TEST(TokenizerTest, CountTokensMatchesSplit) {
  std::string text = "one two  three\nfour\tfive";
  EXPECT_EQ(CountTokens(text), 5u);
  EXPECT_EQ(CountTokens(""), 0u);
  EXPECT_EQ(CountTokens("solo"), 1u);
}

TEST(TokenizerTest, TruncateTokensShortensLongText) {
  EXPECT_EQ(TruncateTokens("a b c d e", 3), "a b c");
  EXPECT_EQ(TruncateTokens("a b", 10), "a b");
  EXPECT_EQ(TruncateTokens("a b", 0), "");
}

TEST(VocabularyTest, GeneratesRequestedDistinctWords) {
  Vocabulary v(1, 500);
  EXPECT_EQ(v.size(), 500u);
  std::set<std::string> seen;
  for (size_t i = 0; i < v.size(); ++i) {
    seen.insert(v.word(i));
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(VocabularyTest, DeterministicAcrossInstances) {
  Vocabulary a(77, 100);
  Vocabulary b(77, 100);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.word(i), b.word(i));
  }
}

TEST(VocabularyTest, SampleIsZipfSkewed) {
  Vocabulary v(5, 200);
  Rng rng(9);
  int first_word_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (v.Sample(rng) == v.word(0)) {
      ++first_word_hits;
    }
  }
  // Rank 0 under Zipf(s~1.07, n=200) is far above uniform (25 hits).
  EXPECT_GT(first_word_hits, 200);
}

TEST(VocabularyTest, FillerSentenceHasExactTokenCount) {
  Vocabulary v(3, 50);
  Rng rng(4);
  std::string s = v.FillerSentence(rng, 12);
  EXPECT_EQ(CountTokens(s), 12u);
}

TEST(MakeWordTest, ProducesLowercaseAlpha) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    std::string w = MakeWord(rng);
    EXPECT_FALSE(w.empty());
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

}  // namespace
}  // namespace metis
