// Figure 9: the profiler's log-prob confidence separates good profiles from
// bad ones. Paper: >=93% of profiles clear the 90% threshold; of those, >=96%
// are good; of the ~7% below the threshold, 85-90% are bad.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/llm/engine.h"
#include "src/profiler/profiler.h"
#include "src/sim/simulator.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  int above = 0, above_good = 0, below = 0, below_bad = 0, total = 0;

  Table table("Figure 9: profiler confidence vs profile goodness (per dataset)");
  table.SetHeader({"dataset", ">=90% conf", "good | >=90%", "bad | <90%"});

  for (const char* name : {"squad", "musique", "kg_rag_finsec", "qmsum"}) {
    auto ds = GetOrGenerateDataset(name, 200, "cohere-embed-v3-sim", kSeed);
    Simulator sim;
    ApiLlmClient api(&sim, Gpt4oApi(), kSeed);
    QueryProfiler profiler(&sim, &api, &ds->db().metadata(), Gpt4oProfilerParams(), kSeed);

    int d_above = 0, d_above_good = 0, d_below = 0, d_below_bad = 0;
    for (const RagQuery& q : ds->queries()) {
      QueryProfiler::Outcome out = profiler.Estimate(q);
      bool high_conf = out.profile.confidence >= 0.90;
      if (high_conf) {
        ++d_above;
        d_above_good += out.was_bad ? 0 : 1;
      } else {
        ++d_below;
        d_below_bad += out.was_bad ? 1 : 0;
      }
    }
    above += d_above;
    above_good += d_above_good;
    below += d_below;
    below_bad += d_below_bad;
    total += d_above + d_below;
    table.AddRow({name, StrFormat("%.1f%%", 100.0 * d_above / (d_above + d_below)),
                  StrFormat("%.1f%%", d_above ? 100.0 * d_above_good / d_above : 0.0),
                  StrFormat("%.1f%%", d_below ? 100.0 * d_below_bad / d_below : 0.0)});
  }
  table.Print();

  double frac_above = 100.0 * above / total;
  double good_above = above ? 100.0 * above_good / above : 0;
  double bad_below = below ? 100.0 * below_bad / below : 0;
  PrintShapeCheck(">=93% of profiles have confidence >=90%",
                  StrFormat("%.1f%% above threshold", frac_above), frac_above >= 88);
  PrintShapeCheck(">=96% of high-confidence profiles are good",
                  StrFormat("%.1f%% good above threshold", good_above), good_above >= 93);
  PrintShapeCheck("85-90% of low-confidence profiles are bad",
                  StrFormat("%.1f%% bad below threshold", bad_below), bad_below >= 70);
  return 0;
}
