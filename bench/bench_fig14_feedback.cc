// Figure 14: golden-configuration feedback to the profiler (every 30 queries,
// last four prompts kept) lifts F1 by 4-6% over a 350-query run on QMSUM and
// KG RAG FinSec.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 350;

  for (const char* name : {"qmsum", "kg_rag_finsec"}) {
    // Averaged over seeds: the per-run F1 noise (~2%) would otherwise drown
    // the feedback signal.
    auto window = [&](const RunMetrics& m, int lo, int hi) {
      double sum = 0;
      int n = 0;
      for (const QueryRecord& r : m.records) {
        if (r.query_id >= lo && r.query_id < hi) {
          sum += r.result.f1;
          ++n;
        }
      }
      return n ? sum / n : 0.0;
    };

    const int kWindows[] = {50, 150, 250, 350};
    double cum_off[4] = {0, 0, 0, 0};
    double cum_on[4] = {0, 0, 0, 0};
    double f_off = 0, f_on = 0;
    const int kSeeds = 3;
    for (uint64_t seed = kSeed; seed < kSeed + kSeeds; ++seed) {
      RunSpec spec;
      spec.dataset = name;
      spec.num_queries = kQueries;
      spec.arrival_rate = 1.0;  // Single-dataset workload, as in §7.3.
      spec.seed = seed;
      spec.system = SystemKind::kMetis;

      spec.metis.feedback_enabled = false;
      RunMetrics off = RunExperiment(spec);
      spec.metis.feedback_enabled = true;
      RunMetrics on = RunExperiment(spec);
      for (int w = 0; w < 4; ++w) {
        cum_off[w] += window(off, 0, kWindows[w]) / kSeeds;
        cum_on[w] += window(on, 0, kWindows[w]) / kSeeds;
      }
      f_off += window(off, kQueries / 2, kQueries) / kSeeds;
      f_on += window(on, kQueries / 2, kQueries) / kSeeds;
    }

    Table table(StrFormat("Figure 14 (%s): F1 with vs without profiler feedback "
                          "(3-seed average)",
                          name));
    table.SetHeader({"queries served", "no feedback", "with feedback"});
    for (int w = 0; w < 4; ++w) {
      table.AddRow({StrFormat("%d", kWindows[w]), Table::Num(cum_off[w], 3),
                    Table::Num(cum_on[w], 3)});
    }
    table.Print();

    PrintShapeCheck("feedback improves F1 by 4-6%",
                    StrFormat("%.3f -> %.3f (%+.1f%%) over the back half", f_off, f_on,
                              100.0 * (f_on - f_off) / f_off),
                    f_on > f_off);
  }
  return 0;
}
