// Figure 11: delay vs offered load, one panel per dataset (each dataset swept
// on its own engine, as in the paper's per-panel curves). METIS sustains
// 1.8-4.5x higher throughput than fixed-config serving at the 1.8 s delay bar,
// because it adapts configurations to the available resources as load grows.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;
  const std::vector<double> kRates = {0.5, 1.0, 2.0, 4.0, 6.0, 8.0};
  std::vector<std::string> datasets = {"kg_rag_finsec", "musique", "squad", "qmsum"};

  bool shape_ok = true;
  int ratio_below = 0;  // Datasets where METIS lands below parity.
  double ratio_lo = 1e9, ratio_hi = 0;
  for (const auto& name : datasets) {
    auto ds = GetOrGenerateDataset(name, kQueries, "cohere-embed-v3-sim", kSeed);
    RagConfig best = BestQualityFixed(ScoreFixedConfigs(*ds, 30, "mistral-7b-v3-awq", kSeed));

    // delay[system][rate]
    std::vector<std::vector<double>> delay(3);
    for (double rate : kRates) {
      RunSpec spec;
      spec.dataset = name;
      spec.num_queries = kQueries;
      spec.arrival_rate = rate;
      spec.seed = kSeed;

      spec.system = SystemKind::kMetis;
      delay[0].push_back(RunExperiment(spec).mean_delay());
      spec.fixed_config = best;
      spec.system = SystemKind::kParrotFixed;
      delay[1].push_back(RunExperiment(spec).mean_delay());
      spec.system = SystemKind::kVllmFixed;
      delay[2].push_back(RunExperiment(spec).mean_delay());
    }

    Table table(StrFormat("Figure 11 (%s): mean delay (s) vs offered qps", name.c_str()));
    std::vector<std::string> header = {"system"};
    for (double r : kRates) {
      header.push_back(StrFormat("%.1f qps", r));
    }
    table.SetHeader(header);
    const char* systems[] = {"METIS", "Parrot* (fixed)", "vLLM (fixed)"};
    for (size_t s = 0; s < 3; ++s) {
      std::vector<std::string> row = {systems[s]};
      for (double d : delay[s]) {
        row.push_back(Table::Num(d, 2));
      }
      table.AddRow(row);
    }
    table.Print();

    // Throughput at the delay bar. The paper uses an absolute 1.8 s bar; this
    // simulator does not preserve absolute delays, so the bar scales with the
    // dataset's unloaded service time (2.5x the best low-load delay, floored
    // at the paper's 1.8 s) — the same "delay SLO" semantics.
    double base_delay = std::min({delay[0][0], delay[1][0], delay[2][0]});
    double bar = std::max(1.8, 2.5 * base_delay);
    auto tput_at = [&](size_t s) {
      double got = kRates.front() / 2;  // Floor: below the sweep.
      for (size_t ri = 0; ri < kRates.size(); ++ri) {
        if (delay[s][ri] <= bar) {
          got = kRates[ri];
        }
      }
      return got;
    };
    double metis_tput = tput_at(0);
    double fixed_tput = std::max(tput_at(1), tput_at(2));
    double ratio = metis_tput / fixed_tput;
    std::printf("  throughput @%.1fs bar: METIS %.1f qps vs fixed %.1f qps (%.1fx)\n", bar,
                metis_tput, fixed_tput, ratio);
    ratio_lo = std::min(ratio_lo, ratio);
    ratio_hi = std::max(ratio_hi, ratio);
    shape_ok = shape_ok && (ratio >= 1.0 || ratio_below++ < 1);
  }
  PrintShapeCheck("METIS sustains 1.8-4.5x higher throughput at the 1.8s delay bar",
                  StrFormat("%.1f-%.1fx across datasets (>=3 of 4 at/above parity)", ratio_lo,
                            ratio_hi),
                  shape_ok && ratio_hi >= 1.8);
  return 0;
}
