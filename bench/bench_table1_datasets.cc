// Table 1: input and output token-length distributions of the four RAG
// datasets. Regenerates the table from the synthetic corpora and checks the
// ranges against the paper's reported bounds.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/text/tokenizer.h"

using namespace metis;

namespace {

struct Expected {
  const char* dataset;
  const char* task;
  int in_lo, in_hi;    // Relevant-context tokens.
  int out_lo, out_hi;  // Answer tokens.
};

constexpr Expected kExpected[] = {
    {"squad", "Single hop QA", 400, 2000, 5, 10},
    {"musique", "Multihop QA", 1000, 5000, 5, 20},
    {"kg_rag_finsec", "Doc Level QA", 4000, 10000, 20, 40},
    {"qmsum", "Summarization QA", 4000, 12000, 20, 60},
};

}  // namespace

int main() {
  Table table("Table 1: dataset input/output token statistics (200 queries each)");
  table.SetHeader({"Dataset", "Task Type", "Input (tokens)", "Output (tokens)",
                   "paper input", "paper output"});

  bool all_ok = true;
  for (const Expected& e : kExpected) {
    auto ds = GetOrGenerateDataset(e.dataset, 200, "cohere-embed-v3-sim", 42);

    // Input: the relevant-context footprint of a query = tokens of the
    // document chunks generated for it (gold + same-doc distractors).
    Samples inputs;
    Samples outputs;
    for (const RagQuery& q : ds->queries()) {
      std::vector<bool> seen(ds->db().num_chunks(), false);
      int doc_id = -1;
      for (int32_t fid : q.gold_fact_ids) {
        doc_id = ds->db().chunk(ds->fact(fid).chunk_id).doc_id;
      }
      int doc_tokens = 0;
      for (size_t c = 0; c < ds->db().num_chunks(); ++c) {
        if (ds->db().chunk(static_cast<ChunkId>(c)).doc_id == doc_id) {
          doc_tokens += ds->db().chunk(static_cast<ChunkId>(c)).token_count;
        }
      }
      inputs.Add(doc_tokens);
      outputs.Add(static_cast<double>(q.gold_answer_tokens.size()));
    }

    std::string in_range = StrFormat("%.0f - %.0f", inputs.Quantile(0.02), inputs.Quantile(0.98));
    std::string out_range =
        StrFormat("%.0f - %.0f", outputs.Quantile(0.02), outputs.Quantile(0.98));
    table.AddRow({e.dataset, e.task, in_range, out_range,
                  StrFormat("%d - %d", e.in_lo, e.in_hi),
                  StrFormat("%d - %d", e.out_lo, e.out_hi)});

    // Shape: the bulk of the distribution falls inside the paper's bounds
    // (generous slack: synthetic corpora quantize at chunk granularity).
    bool ok = inputs.Quantile(0.10) >= e.in_lo * 0.5 &&
              inputs.Quantile(0.90) <= e.in_hi * 1.3 &&
              outputs.Quantile(0.10) >= e.out_lo * 0.5 &&
              outputs.Quantile(0.90) <= e.out_hi * 1.3;
    all_ok = all_ok && ok;
  }
  table.Print();
  PrintShapeCheck("token ranges match Table 1 per dataset",
                  all_ok ? "all four datasets in range" : "out of range", all_ok);
  return 0;
}
