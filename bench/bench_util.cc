#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "src/common/check.h"
#include "src/vectordb/kernels.h"

namespace metis {

std::vector<FixedConfigScore> ScoreFixedConfigs(const Dataset& dataset, int sample_queries,
                                                const std::string& serving_model,
                                                uint64_t seed) {
  std::vector<FixedConfigScore> scores;
  int n = std::min<int>(sample_queries, static_cast<int>(dataset.queries().size()));
  for (const RagConfig& config : FixedConfigMenu(dataset.profile())) {
    FixedConfigScore score;
    score.config = config;
    for (int i = 0; i < n; ++i) {
      RagResult r = RunSingleQuery(dataset, dataset.queries()[static_cast<size_t>(i)], config,
                                   serving_model, seed);
      score.mean_f1 += r.f1;
      score.mean_delay += r.exec_delay();
    }
    score.mean_f1 /= n;
    score.mean_delay /= n;
    scores.push_back(score);
  }
  return scores;
}

RagConfig BestQualityFixed(const std::vector<FixedConfigScore>& scores) {
  // Highest mean F1, with a 1.5% tie tolerance resolved toward lower delay:
  // no practitioner deploys a config that is seconds slower for a quality
  // difference inside the noise floor.
  return ClosestQualityFixed(scores, 0.015);
}

RagConfig BestQualityFixedStrict(const std::vector<FixedConfigScore>& scores) {
  METIS_CHECK(!scores.empty());
  const FixedConfigScore* best = &scores[0];
  for (const auto& s : scores) {
    if (s.mean_f1 > best->mean_f1) {
      best = &s;
    }
  }
  return best->config;
}

RagConfig ClosestQualityFixed(const std::vector<FixedConfigScore>& scores, double tolerance) {
  METIS_CHECK(!scores.empty());
  double best_f1 = 0;
  for (const auto& s : scores) {
    best_f1 = std::max(best_f1, s.mean_f1);
  }
  const FixedConfigScore* pick = nullptr;
  for (const auto& s : scores) {
    if (s.mean_f1 >= best_f1 - tolerance &&
        (pick == nullptr || s.mean_delay < pick->mean_delay)) {
      pick = &s;
    }
  }
  METIS_CHECK(pick != nullptr);
  return pick->config;
}

RagConfig SimilarDelayFixed(const std::vector<FixedConfigScore>& scores, double target_delay) {
  METIS_CHECK(!scores.empty());
  const FixedConfigScore* pick = nullptr;
  double best_gap = std::numeric_limits<double>::max();
  for (const auto& s : scores) {
    double gap = std::abs(s.mean_delay - target_delay);
    if (gap < best_gap) {
      best_gap = gap;
      pick = &s;
    }
  }
  return pick->config;
}

void PrintShapeCheck(const std::string& claim, const std::string& measured, bool holds) {
  std::printf("  [%s] paper: %s | measured: %s\n", holds ? "SHAPE OK" : "SHAPE OFF",
              claim.c_str(), measured.c_str());
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<BenchJsonRecord>& records, const std::string& note) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  METIS_CHECK(f != nullptr);
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", JsonEscape(bench_name).c_str());
  // Every bench JSON records which SIMD dispatch target and fast-math mode
  // produced it: two results are only comparable when these match, and a
  // regression hunt needs to rule out "different host kernel" first.
  std::string host_note = note.empty() ? "" : note + " | ";
  host_note += "kernel=";
  host_note += KernelTargetName(ActiveKernelTarget());
  host_note += KernelFastMathEnabled() ? " fast_math=on" : " fast_math=off";
  std::fprintf(f, "  \"note\": \"%s\",\n", JsonEscape(host_note).c_str());
  std::fprintf(f, "  \"records\": [\n");
  for (size_t r = 0; r < records.size(); ++r) {
    const BenchJsonRecord& rec = records[r];
    std::fprintf(f, "    {\"name\": \"%s\"", JsonEscape(rec.name).c_str());
    for (const auto& [key, value] : rec.tags) {
      std::fprintf(f, ", \"%s\": \"%s\"", JsonEscape(key).c_str(), JsonEscape(value).c_str());
    }
    for (const auto& [key, value] : rec.metrics) {
      std::fprintf(f, ", \"%s\": %.6g", JsonEscape(key).c_str(), value);
    }
    std::fprintf(f, "}%s\n", r + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace metis
