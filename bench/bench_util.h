// Shared helpers for the per-figure benchmark binaries.

#ifndef METIS_BENCH_BENCH_UTIL_H_
#define METIS_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/runner/runner.h"

namespace metis {

// Evaluates every menu configuration on a sample of the dataset's queries in
// isolation (idle engine) and returns (config, mean F1, mean isolated delay)
// triples — the "offline hand-tuning" step practitioners use to pick a static
// configuration (paper §1).
struct FixedConfigScore {
  RagConfig config;
  double mean_f1 = 0;
  double mean_delay = 0;
};
std::vector<FixedConfigScore> ScoreFixedConfigs(const Dataset& dataset, int sample_queries,
                                                const std::string& serving_model,
                                                uint64_t seed);

// The static configuration with the highest mean F1 (what the paper's Fig. 10
// "selected config" baselines deploy). Ties within 1.5% resolve to lower delay.
RagConfig BestQualityFixed(const std::vector<FixedConfigScore>& scores);

// Strict argmax-F1 static configuration, no tie tolerance (the Fig. 12
// ablation baseline: "vLLM's fixed configuration with highest quality").
RagConfig BestQualityFixedStrict(const std::vector<FixedConfigScore>& scores);

// The lowest-delay static configuration whose F1 is within `tolerance` of the
// best achievable F1 (the paper's "closest quality" comparisons).
RagConfig ClosestQualityFixed(const std::vector<FixedConfigScore>& scores, double tolerance);

// The lowest-delay static configuration with delay >= the given target
// ("fixed configuration of similar delay").
RagConfig SimilarDelayFixed(const std::vector<FixedConfigScore>& scores, double target_delay);

// Emits a one-line paper-vs-measured verdict under a table.
void PrintShapeCheck(const std::string& claim, const std::string& measured, bool holds);

// --- Machine-readable benchmark output ---------------------------------------
//
// One record per measured configuration; WriteBenchJson serializes the lot to
// a JSON file ({"bench": ..., "records": [...]}) so CI and future PRs can
// track the perf trajectory without parsing console tables.
struct BenchJsonRecord {
  std::string name;  // Unique configuration label.
  std::vector<std::pair<std::string, std::string>> tags;     // e.g. {"impl", "flat"}.
  std::vector<std::pair<std::string, double>> metrics;       // e.g. {"qps", 1234.5}.
};
// `note` (optional) becomes a top-level "note" string in the envelope — the
// place to record the measurement host, since QPS baselines are only
// meaningful for the machine family that produced them.
void WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<BenchJsonRecord>& records,
                    const std::string& note = "");

}  // namespace metis

#endif  // METIS_BENCH_BENCH_UTIL_H_
