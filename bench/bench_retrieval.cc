// Retrieval-substrate microbenchmark: flat vs. IVF, seed-scalar vs. blocked
// kernels, 1/2/4/8 threads, batch sizes 1-64, and the shard-count scaling
// surface (1/2/4 hash partitions per backend). Prints console tables and
// emits a machine-readable BENCH_retrieval.json (QPS + p50/p99 per-query
// latency per configuration) so future PRs can track the perf trajectory.
//
// On a 1-CPU host the multi-thread grid rows are skipped (announced once):
// they would only measure worker-pool overhead, and their QPS would poison
// the checked-in baseline. The summary row records `host_cpus` so baselines
// are comparable across machines.
//
// The "seed scalar" baseline is the frozen pre-rebuild FlatL2Index::Search
// from src/vectordb/seed_reference.h (shared with the parity tests, so the
// bench speedup and the test parity measure the same baseline).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/seed_reference.h"
#include "src/vectordb/vectordb.h"

using namespace metis;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Runs `queries` through the index in groups of `batch`, timing each batch
// call; per-query latency is batch time / batch size.
Measurement MeasureBatched(const VectorIndex& index, const std::vector<Embedding>& queries,
                           size_t k, size_t batch, ThreadPool* pool) {
  Samples latencies_ms;
  size_t done = 0;
  auto start = Clock::now();
  while (done < queries.size()) {
    size_t take = std::min(batch, queries.size() - done);
    std::vector<Embedding> group(queries.begin() + done, queries.begin() + done + take);
    auto t0 = Clock::now();
    auto hits = index.SearchBatch(group, k, pool);
    double call_s = SecondsSince(t0);
    for (size_t i = 0; i < take; ++i) {
      latencies_ms.Add(call_s / static_cast<double>(take) * 1e3);
    }
    done += take;
  }
  double total_s = SecondsSince(start);
  Measurement m;
  m.qps = static_cast<double>(queries.size()) / total_s;
  m.p50_ms = latencies_ms.median();
  m.p99_ms = latencies_ms.p99();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 50000;
  size_t dim = 256;
  size_t num_queries = 64;
  const size_t kTopK = 10;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--n=", 4) == 0) {
      n = static_cast<size_t>(std::atol(argv[a] + 4));
    } else if (std::strncmp(argv[a], "--queries=", 10) == 0) {
      num_queries = static_cast<size_t>(std::atol(argv[a] + 10));
    }
  }

  std::printf("Building corpus: n=%zu dim=%zu ...\n", n, dim);
  Rng rng(0xBE7C4);
  SeedFlatIndex seed(dim);
  FlatL2Index flat(dim);
  IvfL2Index ivf(dim, 64, 8, 17);
  for (size_t i = 0; i < n; ++i) {
    Embedding v = RandomUnitVector(rng, dim);
    seed.Add(static_cast<ChunkId>(i), v);
    flat.Add(static_cast<ChunkId>(i), v);
    ivf.Add(static_cast<ChunkId>(i), v);
  }
  std::vector<Embedding> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(RandomUnitVector(rng, dim));
  }

  std::vector<BenchJsonRecord> records;
  auto record = [&records](const std::string& name, const std::string& impl, size_t threads,
                           size_t batch, const Measurement& m) {
    BenchJsonRecord rec;
    rec.name = name;
    rec.tags = {{"impl", impl}};
    rec.metrics = {{"threads", static_cast<double>(threads)},
                   {"batch", static_cast<double>(batch)},
                   {"qps", m.qps},
                   {"p50_ms", m.p50_ms},
                   {"p99_ms", m.p99_ms}};
    records.push_back(std::move(rec));
  };

  // --- Seed scalar baseline (single thread, batch 1) ---
  size_t seed_queries = std::min<size_t>(num_queries, 24);
  {  // Warmup.
    seed.Search(queries[0], kTopK);
  }
  Samples seed_lat_ms;
  auto seed_start = Clock::now();
  for (size_t q = 0; q < seed_queries; ++q) {
    auto t0 = Clock::now();
    auto hits = seed.Search(queries[q], kTopK);
    seed_lat_ms.Add(SecondsSince(t0) * 1e3);
    if (hits.empty()) {
      std::printf("unexpected empty result\n");
      return 1;
    }
  }
  Measurement seed_m;
  seed_m.qps = static_cast<double>(seed_queries) / SecondsSince(seed_start);
  seed_m.p50_ms = seed_lat_ms.median();
  seed_m.p99_ms = seed_lat_ms.p99();
  record("flat_seed_scalar_t1_b1", "flat_seed_scalar", 1, 1, seed_m);

  // --- Kernel dispatch tiers (single thread, batch 1) ---
  // One row per CPU-supported tier, so the perf trajectory separates "wider
  // SIMD" from the substrate-level wins. Rankings are bit-identical across
  // tiers (see kernels.h); only throughput may differ.
  {
    Table tier_table("bench_retrieval: flat QPS per kernel dispatch tier (t=1, b=1)");
    tier_table.SetHeader({"tier", "qps", "p50_ms", "p99_ms"});
    for (KernelTarget target :
         {KernelTarget::kScalar, KernelTarget::kAvx2, KernelTarget::kAvx512}) {
      if (!KernelTargetSupported(target)) {
        std::printf("  [SKIP] kernel tier %s: not supported by this CPU\n",
                    KernelTargetName(target));
        continue;
      }
      SetKernelTarget(target);
      flat.SearchBatch({queries[0]}, kTopK, nullptr);  // Warmup under this tier.
      Measurement m = MeasureBatched(flat, queries, kTopK, 1, nullptr);
      record(StrFormat("flat_blocked_%s_t1_b1", KernelTargetName(target)),
             StrFormat("flat_blocked_%s", KernelTargetName(target)), 1, 1, m);
      tier_table.AddRow({KernelTargetName(target), Table::Num(m.qps, 0),
                         Table::Num(m.p50_ms, 3), Table::Num(m.p99_ms, 3)});
    }
    ResetKernelTarget();
    tier_table.Print();
  }

  // --- Blocked flat + IVF across threads and batch sizes ---
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> thread_grid = {1, 2, 4, 8};
  if (host_cpus == 1) {
    // Announced once, not per grid row: with one hardware thread every t>1
    // row measures pool overhead, not scaling.
    std::printf("  [SKIP] multi-thread grid rows (t=2/4/8): host exposes 1 hardware thread\n");
    thread_grid = {1};
  }
  const std::vector<size_t>& kThreads = thread_grid;
  const std::vector<size_t> kBatches = {1, 4, 16, 64};
  Table flat_table("bench_retrieval: blocked flat QPS (n=50k, dim=256, k=10)");
  std::vector<std::string> header = {"threads \\ batch"};
  for (size_t b : kBatches) {
    header.push_back(StrFormat("b=%zu", b));
  }
  flat_table.SetHeader(header);

  double flat_t1_b1_qps = 0;
  double flat_t4_qps = 0;
  flat.SearchBatch(queries, kTopK, nullptr);  // Warmup.
  for (size_t threads : kThreads) {
    ThreadPool pool(threads);
    std::vector<std::string> row = {StrFormat("t=%zu", threads)};
    for (size_t batch : kBatches) {
      Measurement m = MeasureBatched(flat, queries, kTopK, batch, threads > 1 ? &pool : nullptr);
      record(StrFormat("flat_blocked_t%zu_b%zu", threads, batch), "flat_blocked", threads, batch,
             m);
      row.push_back(Table::Num(m.qps, 0));
      if (threads == 1 && batch == 1) {
        flat_t1_b1_qps = m.qps;
      }
      if (threads == 4 && batch == 64) {
        flat_t4_qps = m.qps;
      }
    }
    flat_table.AddRow(row);
  }
  flat_table.Print();

  Table ivf_table("bench_retrieval: IVF (nlist=64, nprobe=8) QPS");
  ivf_table.SetHeader(header);
  {
    ThreadPool train_pool(ThreadPool::DefaultThreads());
    auto t0 = Clock::now();
    ivf.Train(&train_pool);
    double train_s = SecondsSince(t0);
    BenchJsonRecord rec;
    rec.name = "ivf_train";
    rec.tags = {{"impl", "ivf_train"}};
    rec.metrics = {{"threads", static_cast<double>(train_pool.num_threads())},
                   {"seconds", train_s}};
    records.push_back(std::move(rec));
    std::printf("IVF train (%zu threads): %.2f s\n", train_pool.num_threads(), train_s);
  }
  for (size_t threads : kThreads) {
    ThreadPool pool(threads);
    std::vector<std::string> row = {StrFormat("t=%zu", threads)};
    for (size_t batch : kBatches) {
      Measurement m = MeasureBatched(ivf, queries, kTopK, batch, threads > 1 ? &pool : nullptr);
      record(StrFormat("ivf_blocked_t%zu_b%zu", threads, batch), "ivf_blocked", threads, batch, m);
      row.push_back(Table::Num(m.qps, 0));
    }
    ivf_table.AddRow(row);
  }
  ivf_table.Print();

  // --- Shard-count scaling surface: backend x shards x threads (batch 16) ---
  // Hash-partitioned storage is result-neutral (parity-tested); these rows
  // measure what shard fan-out buys on this host. Shard counts beyond the
  // worker count only add merge overhead, so the grid stays small.
  {
    const size_t kShardBatch = 16;
    Table shard_table("bench_retrieval: sharded QPS (b=16, shards x threads)");
    std::vector<std::string> shard_header = {"backend/shards \\ threads"};
    for (size_t t : kThreads) {
      shard_header.push_back(StrFormat("t=%zu", t));
    }
    shard_table.SetHeader(shard_header);
    // Materialize the corpus once (same stream as the main build) and reuse
    // it for every grid cell; only the selected backend is constructed.
    std::vector<Embedding> corpus;
    corpus.reserve(n);
    {
      Rng fill_rng(0xBE7C4);
      for (size_t i = 0; i < n; ++i) {
        corpus.push_back(RandomUnitVector(fill_rng, dim));
      }
    }
    for (const char* backend : {"flat", "ivf"}) {
      bool is_ivf = std::strcmp(backend, "ivf") == 0;
      for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
        std::unique_ptr<VectorIndex> sharded;
        if (is_ivf) {
          sharded = std::make_unique<IvfL2Index>(dim, 64, 8, 17, shards);
        } else {
          sharded = std::make_unique<FlatL2Index>(dim, shards);
        }
        for (size_t i = 0; i < n; ++i) {
          sharded->Add(static_cast<ChunkId>(i), corpus[i]);
        }
        if (is_ivf) {
          ThreadPool train_pool(ThreadPool::DefaultThreads());
          static_cast<IvfL2Index*>(sharded.get())->Train(&train_pool);
        }
        const VectorIndex& index = *sharded;
        std::vector<std::string> row = {StrFormat("%s s=%zu", backend, shards)};
        for (size_t threads : kThreads) {
          ThreadPool pool(threads);
          Measurement m =
              MeasureBatched(index, queries, kTopK, kShardBatch, threads > 1 ? &pool : nullptr);
          BenchJsonRecord rec;
          rec.name = StrFormat("%s_sharded_s%zu_t%zu_b%zu", backend, shards, threads,
                               kShardBatch);
          rec.tags = {{"impl", StrFormat("%s_sharded", backend)}};
          rec.metrics = {{"shards", static_cast<double>(shards)},
                         {"threads", static_cast<double>(threads)},
                         {"batch", static_cast<double>(kShardBatch)},
                         {"qps", m.qps},
                         {"p50_ms", m.p50_ms},
                         {"p99_ms", m.p99_ms}};
          records.push_back(std::move(rec));
          row.push_back(Table::Num(m.qps, 0));
        }
        shard_table.AddRow(row);
      }
    }
    shard_table.Print();
  }

  // --- Verdicts ---
  double speedup = seed_m.qps > 0 ? flat_t1_b1_qps / seed_m.qps : 0;
  std::printf("\nseed scalar: %.0f qps (p50 %.2f ms) | blocked t1/b1: %.0f qps (speedup %.1fx)\n",
              seed_m.qps, seed_m.p50_ms, flat_t1_b1_qps, speedup);
  PrintShapeCheck(StrFormat("blocked flat search >= 5x seed scalar at dim=%zu, n=%zu", dim, n),
                  StrFormat("%.1fx single-thread speedup", speedup), speedup >= 5.0);
  if (ThreadPool::DefaultThreads() >= 4) {
    PrintShapeCheck("near-linear batched scaling to 4 threads",
                    StrFormat("t4/b64 %.0f qps vs t1/b1 %.0f qps (%.2fx)", flat_t4_qps,
                              flat_t1_b1_qps, flat_t4_qps / std::max(1.0, flat_t1_b1_qps)),
                    flat_t4_qps >= 2.5 * flat_t1_b1_qps);
  } else {
    std::printf("  [SKIP] thread-scaling verdict: only %zu hardware thread(s) available\n",
                ThreadPool::DefaultThreads());
  }

  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"impl", "summary"}};
  summary.tags.emplace_back("kernel", KernelTargetName(ActiveKernelTarget()));
  summary.metrics = {{"n", static_cast<double>(n)},
                     {"dim", static_cast<double>(dim)},
                     {"k", static_cast<double>(kTopK)},
                     {"single_thread_speedup", speedup},
                     {"hardware_threads", static_cast<double>(ThreadPool::DefaultThreads())},
                     {"host_cpus", static_cast<double>(host_cpus)}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_retrieval.json", "retrieval", records,
                 StrFormat("measured on a %u-cpu host, kernel tier %s", host_cpus,
                           KernelTargetName(ActiveKernelTarget())));
  std::printf("wrote BENCH_retrieval.json (%zu records)\n", records.size());
  return 0;
}
