// Figure 4: each RAG configuration knob traces a different quality-delay
// curve, and the curves differ across query archetypes:
//   Q1 (simple single-hop), Q2 (joint reasoning, low complexity),
//   Q3 (joint reasoning, high complexity).
// Panels: (a) synthesis method sweep, (b) num_chunks 1-35 with stuff,
// (c) intermediate_length 1-100 with map_reduce.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

namespace {

struct Archetype {
  const char* label;
  std::vector<const RagQuery*> queries;
};

// Averages isolated quality/delay for a config over an archetype's queries.
struct Point {
  double f1 = 0;
  double delay = 0;
};
Point Probe(const Dataset& ds, const Archetype& a, const RagConfig& cfg, uint64_t seed) {
  Point p;
  for (const RagQuery* q : a.queries) {
    RagResult r = RunSingleQuery(ds, *q, cfg, "mistral-7b-v3-awq", seed);
    p.f1 += r.f1;
    p.delay += r.exec_delay();
  }
  p.f1 /= static_cast<double>(a.queries.size());
  p.delay /= static_cast<double>(a.queries.size());
  return p;
}

}  // namespace

int main() {
  const uint64_t kSeed = 42;
  auto ds = GetOrGenerateDataset("musique", 200, "cohere-embed-v3-sim", kSeed);

  Archetype q1{"Q1 simple", {}};
  Archetype q2{"Q2 joint/low", {}};
  Archetype q3{"Q3 joint/high", {}};
  for (const RagQuery& q : ds->queries()) {
    if (!q.requires_joint && !q.high_complexity && q.num_facts == 1 && q1.queries.size() < 25) {
      q1.queries.push_back(&q);
    } else if (q.requires_joint && !q.high_complexity && q2.queries.size() < 25) {
      q2.queries.push_back(&q);
    } else if (q.requires_joint && q.high_complexity && q3.queries.size() < 25) {
      q3.queries.push_back(&q);
    }
  }

  // --- Panel (a): synthesis method (other knobs fixed: k=6, L=80) ---
  Table a("Figure 4a: synthesis method vs quality-delay per archetype");
  a.SetHeader({"archetype", "method", "mean F1", "mean delay (s)"});
  Point q1_rerank, q1_reduce, q2_rerank, q2_stuff, q3_stuff, q3_reduce;
  for (const Archetype* arch : {&q1, &q2, &q3}) {
    for (SynthesisMethod m : {SynthesisMethod::kMapRerank, SynthesisMethod::kStuff,
                              SynthesisMethod::kMapReduce}) {
      Point p = Probe(*ds, *arch, RagConfig{m, 6, 80}, kSeed);
      a.AddRow({arch->label, SynthesisMethodName(m), Table::Num(p.f1, 3),
                Table::Num(p.delay, 2)});
      if (arch == &q1 && m == SynthesisMethod::kMapRerank) q1_rerank = p;
      if (arch == &q1 && m == SynthesisMethod::kMapReduce) q1_reduce = p;
      if (arch == &q2 && m == SynthesisMethod::kMapRerank) q2_rerank = p;
      if (arch == &q2 && m == SynthesisMethod::kStuff) q2_stuff = p;
      if (arch == &q3 && m == SynthesisMethod::kStuff) q3_stuff = p;
      if (arch == &q3 && m == SynthesisMethod::kMapReduce) q3_reduce = p;
    }
  }
  a.Print();
  PrintShapeCheck("Q1: map_rerank suffices; joint methods add delay without quality",
                  StrFormat("rerank F1 %.3f @ %.2fs vs map_reduce F1 %.3f @ %.2fs", q1_rerank.f1,
                            q1_rerank.delay, q1_reduce.f1, q1_reduce.delay),
                  q1_rerank.f1 >= q1_reduce.f1 - 0.03 && q1_rerank.delay < q1_reduce.delay);
  PrintShapeCheck("Q2: cross-chunk methods beat map_rerank by a wide margin (~35%)",
                  StrFormat("stuff %.3f vs rerank %.3f", q2_stuff.f1, q2_rerank.f1),
                  q2_stuff.f1 > q2_rerank.f1 + 0.10);
  PrintShapeCheck("Q3: map_reduce denoising beats stuff on complex queries",
                  StrFormat("map_reduce %.3f vs stuff %.3f", q3_reduce.f1, q3_stuff.f1),
                  q3_reduce.f1 >= q3_stuff.f1 - 0.01);

  // --- Panel (b): num_chunks sweep with stuff ---
  Table b("Figure 4b: num_chunks 1-35 with stuff");
  b.SetHeader({"k", "Q1 F1", "Q1 delay", "Q2 F1", "Q2 delay", "Q3 F1", "Q3 delay"});
  double q2_best_f1 = 0, q2_f1_at35 = 0, q2_delay_at1 = 0, q2_delay_at35 = 0;
  for (int k : {1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 35}) {
    Point p1 = Probe(*ds, q1, RagConfig{SynthesisMethod::kStuff, k, 80}, kSeed);
    Point p2 = Probe(*ds, q2, RagConfig{SynthesisMethod::kStuff, k, 80}, kSeed);
    Point p3 = Probe(*ds, q3, RagConfig{SynthesisMethod::kStuff, k, 80}, kSeed);
    b.AddRow({StrFormat("%d", k), Table::Num(p1.f1, 3), Table::Num(p1.delay, 2),
              Table::Num(p2.f1, 3), Table::Num(p2.delay, 2), Table::Num(p3.f1, 3),
              Table::Num(p3.delay, 2)});
    q2_best_f1 = std::max(q2_best_f1, p2.f1);
    if (k == 1) q2_delay_at1 = p2.delay;
    if (k == 35) {
      q2_f1_at35 = p2.f1;
      q2_delay_at35 = p2.delay;
    }
  }
  b.Print();
  PrintShapeCheck("more chunks help then hurt (quality drops, delay inflates ~3x)",
                  StrFormat("Q2 peak F1 %.3f vs %.3f at k=35; delay %.2f->%.2fs", q2_best_f1,
                            q2_f1_at35, q2_delay_at1, q2_delay_at35),
                  q2_f1_at35 < q2_best_f1 - 0.05 && q2_delay_at35 > 2.5 * q2_delay_at1);

  // --- Panel (c): intermediate_length sweep with map_reduce ---
  Table c("Figure 4c: intermediate_length 1-100 with map_reduce (k=6)");
  c.SetHeader({"L", "Q1 F1", "Q1 delay", "Q2 F1", "Q2 delay", "Q3 F1", "Q3 delay"});
  double q3_f1_at5 = 0, q3_f1_at100 = 0, q1_f1_at20 = 0, q1_f1_at100 = 0;
  for (int len : {1, 5, 10, 20, 35, 50, 70, 100}) {
    Point p1 = Probe(*ds, q1, RagConfig{SynthesisMethod::kMapReduce, 6, len}, kSeed);
    Point p2 = Probe(*ds, q2, RagConfig{SynthesisMethod::kMapReduce, 6, len}, kSeed);
    Point p3 = Probe(*ds, q3, RagConfig{SynthesisMethod::kMapReduce, 6, len}, kSeed);
    c.AddRow({StrFormat("%d", len), Table::Num(p1.f1, 3), Table::Num(p1.delay, 2),
              Table::Num(p2.f1, 3), Table::Num(p2.delay, 2), Table::Num(p3.f1, 3),
              Table::Num(p3.delay, 2)});
    if (len == 5) q3_f1_at5 = p3.f1;
    if (len == 100) q3_f1_at100 = p3.f1;
    if (len == 20) q1_f1_at20 = p1.f1;
    if (len == 100) q1_f1_at100 = p1.f1;
  }
  c.Print();
  PrintShapeCheck("complex queries need long intermediates; short ones plateau early",
                  StrFormat("Q3: %.3f@L=5 -> %.3f@L=100; Q1: %.3f@L=20 vs %.3f@L=100",
                            q3_f1_at5, q3_f1_at100, q1_f1_at20, q1_f1_at100),
                  q3_f1_at100 > q3_f1_at5 + 0.08 && q1_f1_at20 >= q1_f1_at100 - 0.05);
  return 0;
}
