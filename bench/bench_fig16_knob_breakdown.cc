// Figure 16: incrementally enabling METIS's knobs on QMSUM (Mistral-7B-v3)
// improves the quality-delay point step by step:
//   vLLM fixed -> +num_chunks -> +synthesis_method -> +intermediate_length
//   -> +joint scheduling (full METIS, ~2.8x delay reduction).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;
  auto ds = GetOrGenerateDataset("qmsum", kQueries, "cohere-embed-v3-sim", kSeed);
  RagConfig best = BestQualityFixed(ScoreFixedConfigs(*ds, 40, "mistral-7b-v3-awq", kSeed));

  MixedRunSpec spec;  // QMSUM slice of the concurrent workload.
  spec.queries_per_dataset = kQueries;
  spec.seed = kSeed;
  const size_t kSlice = 3;  // qmsum.

  struct Stage {
    const char* label;
    bool chunks, method, interm, schedule;
  };
  const Stage stages[] = {
      {"vLLM (fixed config)", false, false, false, false},
      {"+ num_chunks", true, false, false, false},
      {"+ synthesis_method", true, true, false, false},
      {"+ intermediate_length", true, true, true, false},
      {"METIS (+ scheduling)", true, true, true, true},
  };

  Table table("Figure 16 (qmsum): tuning more knobs improves quality-delay");
  table.SetHeader({"stage", "mean F1", "mean delay (s)"});
  double base_delay = 0, base_f1 = 0, full_delay = 0, full_f1 = 0;
  double prev_f1 = 0;
  bool monotone_f1 = true;
  for (const Stage& st : stages) {
    RunMetrics m;
    if (!st.chunks) {
      spec.system = SystemKind::kVllmFixed;
      spec.fixed_configs = {best};
      m = RunMixedExperiment(spec)[kSlice];
      base_delay = m.mean_delay();
      base_f1 = m.mean_f1();
    } else {
      spec.system = SystemKind::kMetis;
      spec.metis.tune_chunks = st.chunks;
      spec.metis.tune_method = st.method;
      spec.metis.tune_intermediate = st.interm;
      spec.metis.base_config = best;
      spec.metis.pick = st.schedule ? MetisSystem::ConfigPick::kBestFit
                                    : MetisSystem::ConfigPick::kMedianOfSpace;
      spec.override_prefix_sharing = st.schedule ? std::optional<bool>{} : false;
      m = RunMixedExperiment(spec)[kSlice];
    }
    table.AddRow({st.label, Table::Num(m.mean_f1(), 3), Table::Num(m.mean_delay(), 2)});
    if (st.schedule) {
      full_delay = m.mean_delay();
      full_f1 = m.mean_f1();
    }
    monotone_f1 = monotone_f1 && (prev_f1 == 0 || m.mean_f1() >= prev_f1 - 0.06);
    prev_f1 = m.mean_f1();
  }
  table.Print();

  PrintShapeCheck("full METIS cuts delay ~2.8x vs fixed config at equal-or-better F1",
                  StrFormat("%.2fx delay reduction, F1 %.3f vs %.3f", base_delay / full_delay,
                            full_f1, base_f1),
                  base_delay / full_delay >= 1.5 && full_f1 >= base_f1 - 0.03 && monotone_f1);
  return 0;
}
