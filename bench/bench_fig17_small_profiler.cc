// Figure 17: swapping the GPT-4o profiler for an open-source Llama-3.1-70B
// profiler keeps METIS's gains: 1.4-2.1x lower delay than AdaptiveRAG* at
// similar F1, and 10-14% higher F1 than static configs of similar delay.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;

  for (const char* name : {"kg_rag_finsec", "squad"}) {
    auto ds = GetOrGenerateDataset(name, kQueries, "cohere-embed-v3-sim", kSeed);
    auto scores = ScoreFixedConfigs(*ds, 40, "mistral-7b-v3-awq", kSeed);

    MixedRunSpec spec;
    spec.queries_per_dataset = kQueries;
    spec.profiler_model = "llama3.1-70b-api";
    spec.seed = kSeed;
    size_t slice = std::string(name) == "squad" ? 0 : 2;

    spec.system = SystemKind::kMetis;
    RunMetrics metis = RunMixedExperiment(spec)[slice];
    spec.system = SystemKind::kAdaptiveRag;
    RunMetrics adaptive = RunMixedExperiment(spec)[slice];

    RagConfig similar = SimilarDelayFixed(scores, metis.mean_delay() / 3.0);
    spec.system = SystemKind::kVllmFixed;
    spec.fixed_configs = {similar};
    RunMetrics vllm = RunMixedExperiment(spec)[slice];
    spec.system = SystemKind::kParrotFixed;
    RunMetrics parrot = RunMixedExperiment(spec)[slice];

    Table table(StrFormat("Figure 17 (%s, llama-70b profiler)", name));
    table.SetHeader({"system", "mean F1", "mean delay (s)"});
    struct Row {
      const char* n;
      const RunMetrics* m;
    };
    for (const Row& r : {Row{"METIS", &metis}, Row{"AdaptiveRAG*", &adaptive},
                         Row{"Parrot* (similar delay)", &parrot},
                         Row{"vLLM (similar delay)", &vllm}}) {
      table.AddRow({r.n, Table::Num(r.m->mean_f1(), 3), Table::Num(r.m->mean_delay(), 2)});
    }
    table.Print();

    double speedup = adaptive.mean_delay() / metis.mean_delay();
    double f1_gain = (metis.mean_f1() - vllm.mean_f1()) / vllm.mean_f1();
    PrintShapeCheck("open profiler keeps 1.4-2.1x delay advantage at similar F1",
                    StrFormat("%.2fx vs AdaptiveRAG*, F1 %.3f vs %.3f", speedup,
                              metis.mean_f1(), adaptive.mean_f1()),
                    speedup >= 1.3 && metis.mean_f1() >= adaptive.mean_f1() - 0.05);
    PrintShapeCheck("10-14% higher F1 than similar-delay static configs",
                    StrFormat("%+.1f%% vs vLLM static", 100.0 * f1_gain), f1_gain > 0.0);
  }
  return 0;
}
