// Figure 1 (intro preview): METIS vs AdaptiveRAG, Parrot*, and vLLM on the
// KG RAG FinSec dataset — two panels in the paper: response delay and quality.

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;

  auto finsec = GetOrGenerateDataset("kg_rag_finsec", kQueries, "cohere-embed-v3-sim", kSeed);
  auto scores = ScoreFixedConfigs(*finsec, 40, "mistral-7b-v3-awq", kSeed);
  RagConfig best = BestQualityFixed(scores);

  MixedRunSpec spec;  // Full concurrent workload; FinSec slice reported.
  spec.queries_per_dataset = kQueries;
  spec.seed = kSeed;

  spec.system = SystemKind::kMetis;
  RunMetrics metis = RunMixedExperiment(spec)[2];
  spec.system = SystemKind::kAdaptiveRag;
  RunMetrics adaptive = RunMixedExperiment(spec)[2];
  spec.fixed_configs = {best};
  spec.system = SystemKind::kParrotFixed;
  RunMetrics parrot = RunMixedExperiment(spec)[2];
  spec.system = SystemKind::kVllmFixed;
  RunMetrics vllm = RunMixedExperiment(spec)[2];

  Table table("Figure 1: METIS on KG RAG FinSec vs baselines");
  table.SetHeader({"system", "mean delay (s)", "p90 delay (s)", "mean F1"});
  struct Row {
    const char* name;
    const RunMetrics* m;
  };
  for (const Row& r : {Row{"METIS", &metis}, Row{"AdaptiveRAG (ACL 2024)", &adaptive},
                       Row{"Parrot (OSDI 2024)", &parrot}, Row{"vLLM (SOTA engine)", &vllm}}) {
    table.AddRow({r.name, Table::Num(r.m->mean_delay(), 2), Table::Num(r.m->p90_delay(), 2),
                  Table::Num(r.m->mean_f1(), 3)});
  }
  table.Print();

  bool wins = metis.mean_delay() < adaptive.mean_delay() &&
              metis.mean_delay() < vllm.mean_delay() &&
              metis.mean_f1() >= vllm.mean_f1() - 0.02;
  PrintShapeCheck("METIS sits in the better (low-delay, high-quality) corner on FinSec",
                  StrFormat("delay %.2fs vs %.2f/%.2f/%.2f; F1 %.3f", metis.mean_delay(),
                            adaptive.mean_delay(), parrot.mean_delay(), vllm.mean_delay(),
                            metis.mean_f1()),
                  wins);
  return 0;
}
