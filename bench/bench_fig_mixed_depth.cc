// Mixed-workload per-dataset retrieval depth (ROADMAP "mixed-workload
// per-dataset depth policies"): the paper's §7.1 concurrent-dataset setup —
// every dataset streaming Poisson arrivals into ONE serving engine — with the
// retrieval-depth budget line resolved three ways:
//
//   - shared:     one JointSchedulerOptions::depth line for every dataset
//                 stack (the pre-PR behaviour; per_dataset_depth = false);
//   - perdataset: each stack's line derived closed-form from its
//                 DatasetProfile (DepthCalibrator::DeriveFromProfile);
//   - calibrated: each stack's line fitted by an offline probe-grid sweep
//                 (DepthCalibrator::Calibrate) over the dataset's own query
//                 set — in-sample, like METIS pruning its config space on
//                 its own profiling data; the probes happen before any
//                 serving traffic. Generalization to a genuinely held-out
//                 slice is mixed_runner_test's subject, not this figure's.
//
// The claim under test (RAGGED's workload-dependence transferred to the mixed
// path): per-piece F1-vs-budget curves differ per dataset profile — squad's
// even ASCENDS in pieces where musique's and qmsum's descend, and finsec's
// never plateaus — so no single non-trivial line is quality-safe on all four
// and the shared deployment must over-probe (here: full depth, the exact-
// retrieval setting) to protect its worst dataset. Per-dataset calibrated
// lines then recover probes at matched F1 exactly where a dataset's own
// curve plateaus. The corpus variants are the *_topical profiles (clustered
// embedding geometry, so IVF lists align with topics and depth need
// genuinely varies per query and per dataset).
//
// All metrics are simulation-deterministic (bit-stable kernels + simulated
// time), so BENCH_mixed_depth.json reproduces exactly on any host and the CI
// gate watches mean_f1 at the tight 2% tolerance
// (bench/baselines/BENCH_mixed_depth.baseline.json).
//
// Output: console tables + BENCH_mixed_depth.json (schema in docs/BENCH.md).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/depth_calibrator.h"
#include "src/runner/runner.h"

using namespace metis;

namespace {

const std::vector<std::string> kDatasets = {"squad_topical", "musique_topical",
                                            "kg_rag_finsec_topical", "qmsum_topical"};

MixedRunSpec BaseSpec() {
  MixedRunSpec spec;
  spec.datasets = kDatasets;
  spec.queries_per_dataset = 100;
  spec.rate_per_dataset = 2.0;
  spec.system = SystemKind::kMetis;
  spec.seed = 42;
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 16;
  spec.retrieval.nprobe = 4;
  spec.retrieval.adaptive.min_probes = 1;
  spec.retrieval.adaptive.distance_ratio = 1.2;
  // The shared curve: one quality-safe line for the whole mix. The datasets'
  // budget-line directions CONFLICT (squad's curve ascends in pieces,
  // musique's and qmsum's descend, finsec's never plateaus), so the only
  // line that under-probes none of them is full depth — every query scans
  // every list, i.e. exact retrieval. The retrieval-knob version of the
  // paper's fixed-config over-provisioning story.
  spec.scheduler.per_query_depth = true;
  spec.scheduler.depth.base_probes = 16;
  spec.scheduler.depth.probes_per_piece = 0;
  spec.scheduler.depth.min_budget = 16;
  spec.scheduler.depth.max_budget = 16;
  // Fixed probe mode for every arm: measured mean_probes then IS the budget
  // line, so the figure isolates the per-dataset allocation effect from
  // PR 2's distance-ratio early termination (bench_fig_depth's subject,
  // which would trim all arms toward the same stopping point).
  spec.scheduler.depth.adaptive = false;
  spec.calibrator.adaptive = false;
  // Probe the full query set: the offline pass runs before any serving
  // traffic, and the figure wants each dataset's TRUE per-piece plateaus
  // (a thin slice mistakes a sample plateau for a real one and under-probes
  // the tail; mixed_runner_test covers the genuinely-held-out usage).
  spec.calibrator.holdout_queries = static_cast<size_t>(spec.queries_per_dataset);
  return spec;
}

struct Arm {
  std::string name;
  std::vector<RunMetrics> results;  // Aligned with kDatasets.
};

std::string LineToString(const RetrievalDepthPolicyOptions& line) {
  return StrFormat("%zu%+dp in [%zu, %zu]", line.base_probes, line.probes_per_piece,
                   line.min_budget, line.max_budget);
}

}  // namespace

int main() {
  std::vector<Arm> arms;

  {
    MixedRunSpec spec = BaseSpec();
    spec.per_dataset_depth = false;
    std::printf("running shared ...\n");
    arms.push_back(Arm{"shared", RunMixedExperiment(spec)});
  }
  {
    MixedRunSpec spec = BaseSpec();
    spec.per_dataset_depth = true;
    spec.depth_calibration = MixedRunSpec::DepthCalibration::kProfile;
    std::printf("running perdataset ...\n");
    arms.push_back(Arm{"perdataset", RunMixedExperiment(spec)});
  }
  {
    MixedRunSpec spec = BaseSpec();
    spec.per_dataset_depth = true;
    spec.depth_calibration = MixedRunSpec::DepthCalibration::kOffline;
    std::printf("running calibrated ...\n");
    arms.push_back(Arm{"calibrated", RunMixedExperiment(spec)});
  }

  // The budget lines each arm resolved to (metrics.spec carries the per-stack
  // scheduler options the runner actually built).
  std::printf("\nresolved budget lines (budget(p) = clamp(base + slope*p, min, max)):\n");
  for (const Arm& arm : arms) {
    for (size_t d = 0; d < kDatasets.size(); ++d) {
      std::printf("  %-11s %-16s %s\n", arm.name.c_str(), kDatasets[d].c_str(),
                  LineToString(arm.results[d].spec.scheduler.depth).c_str());
    }
  }

  Table table(
      "bench_fig_mixed_depth: mixed workload, shared vs per-dataset depth lines (IVF nlist=16)");
  table.SetHeader({"arm/dataset", "mean F1", "mean delay (s)", "mean probes", "qps"});
  std::vector<BenchJsonRecord> records;
  for (const Arm& arm : arms) {
    for (size_t d = 0; d < kDatasets.size(); ++d) {
      const RunMetrics& m = arm.results[d];
      std::string name = StrFormat("%s/%s", arm.name.c_str(), kDatasets[d].c_str());
      table.AddRow({name, Table::Num(m.mean_f1(), 4), Table::Num(m.mean_delay(), 3),
                    Table::Num(m.mean_probes, 2), Table::Num(m.throughput_qps, 2)});
      BenchJsonRecord rec;
      rec.name = name;
      rec.tags = {{"arm", arm.name}, {"dataset", kDatasets[d]}};
      rec.metrics = {{"mean_f1", m.mean_f1()},
                     {"mean_delay_s", m.mean_delay()},
                     {"p50_delay_s", m.p50_delay()},
                     {"p90_delay_s", m.p90_delay()},
                     {"p99_delay_s", m.p99_delay()},
                     {"mean_probes", m.mean_probes},
                     {"throughput_qps", m.throughput_qps},
                     {"depth_base", static_cast<double>(m.spec.scheduler.depth.base_probes)},
                     {"depth_slope", static_cast<double>(m.spec.scheduler.depth.probes_per_piece)},
                     {"depth_min", static_cast<double>(m.spec.scheduler.depth.min_budget)},
                     {"depth_max", static_cast<double>(m.spec.scheduler.depth.max_budget)}};
      records.push_back(std::move(rec));
    }
  }
  table.Print();

  // --- Verdicts ---
  // Per dataset: does a per-dataset (or calibrated) line reach the shared
  // curve's mean F1 at fewer mean probes? "Reach" allows a 0.002 absolute F1
  // tie band: mixed-run F1 couples weakly ACROSS stacks through the shared
  // engine (another dataset's chunk contents shift token counts, and with
  // them queueing and scheduler decisions by fractions of a point — a few
  // 1e-4 F1 at this spec, up to +/-0.01 under other shared lines), so exact
  // equality through that coupling is not meaningful. 0.002 covers the
  // at-spec coupling with margin while staying ~5x tighter than the real
  // quality losses it must discriminate (the perdataset arm's 0.01-0.04 F1
  // costs below), and well inside the CI gate's 2%. The mixed claim needs a
  // win on the majority of the mix (>= 2 datasets).
  constexpr double kF1Tie = 0.002;
  const Arm& shared = arms[0];
  int wins = 0;
  for (size_t d = 0; d < kDatasets.size(); ++d) {
    double shared_f1 = shared.results[d].mean_f1();
    double shared_probes = shared.results[d].mean_probes;
    bool won = false;
    std::string detail;
    for (size_t a = 1; a < arms.size(); ++a) {
      const RunMetrics& m = arms[a].results[d];
      bool ok = m.mean_f1() >= shared_f1 - kF1Tie && m.mean_probes < shared_probes;
      detail += StrFormat("%s%s %.4f @ %.2f", a > 1 ? "; " : "", arms[a].name.c_str(),
                          m.mean_f1(), m.mean_probes);
      won = won || ok;
    }
    PrintShapeCheck(
        StrFormat("%s: a per-dataset line reaches shared F1 at fewer probes",
                  kDatasets[d].c_str()),
        StrFormat("shared %.4f @ %.2f vs %s", shared_f1, shared_probes, detail.c_str()), won);
    wins += won ? 1 : 0;
  }
  bool ok = wins >= 2;
  PrintShapeCheck("per-dataset depth wins on the majority of the mix",
                  StrFormat("%d/%zu datasets", wins, kDatasets.size()), ok);

  const MixedRunSpec base = BaseSpec();
  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"arm", "summary"}};
  summary.metrics = {
      {"queries_per_dataset", static_cast<double>(base.queries_per_dataset)},
      {"rate_per_dataset_qps", base.rate_per_dataset},
      {"num_datasets", static_cast<double>(base.datasets.size())},
      {"nlist", static_cast<double>(base.retrieval.nlist)},
      {"shared_depth_base", static_cast<double>(base.scheduler.depth.base_probes)},
      {"shared_depth_slope", static_cast<double>(base.scheduler.depth.probes_per_piece)},
      {"shared_depth_min", static_cast<double>(base.scheduler.depth.min_budget)},
      {"shared_depth_max", static_cast<double>(base.scheduler.depth.max_budget)},
      {"host_cpus", static_cast<double>(std::max(1u, std::thread::hardware_concurrency()))}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_mixed_depth.json", "mixed_depth", records,
                 "all metrics are simulation-deterministic and host-independent "
                 "(bit-identical kernels + simulated time)");
  std::printf("wrote BENCH_mixed_depth.json (%zu records)\n", records.size());
  return ok ? 0 : 1;
}
