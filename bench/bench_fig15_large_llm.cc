// Figure 15: with a larger inference LLM (Llama-3.1-70B), METIS still delivers
// 2.1-2.4x lower delay than AdaptiveRAG* at similar F1, and the fixed-config
// baselines trail by 7-10% F1. RAG answers come from the retrieved context,
// so the bigger model buys only ~2% F1 over Mistral-7B.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;

  double seventy_f1 = 0, seven_f1 = 0;
  for (const char* name : {"musique", "qmsum"}) {
    auto ds = GetOrGenerateDataset(name, kQueries, "cohere-embed-v3-sim", kSeed);
    RagConfig best = BestQualityFixed(ScoreFixedConfigs(*ds, 30, "llama3.1-70b-awq", kSeed));

    MixedRunSpec spec;
    spec.datasets = {"musique", "qmsum"};
    spec.queries_per_dataset = kQueries;
    spec.serving_model = "llama3.1-70b-awq";
    spec.rate_per_dataset = 0.8;  // The 70B engine is ~6x slower per token.
    spec.seed = kSeed;
    size_t slice = std::string(name) == "musique" ? 0 : 1;

    spec.system = SystemKind::kMetis;
    RunMetrics metis = RunMixedExperiment(spec)[slice];
    spec.system = SystemKind::kAdaptiveRag;
    RunMetrics adaptive = RunMixedExperiment(spec)[slice];
    spec.system = SystemKind::kVllmFixed;
    spec.fixed_configs = {best, best};
    RunMetrics vllm = RunMixedExperiment(spec)[slice];
    spec.system = SystemKind::kParrotFixed;
    RunMetrics parrot = RunMixedExperiment(spec)[slice];

    Table table(StrFormat("Figure 15 (%s, llama3.1-70b): delay & F1", name));
    table.SetHeader({"system", "mean F1", "mean delay (s)", "delay vs METIS"});
    struct Row {
      const char* n;
      const RunMetrics* m;
    };
    for (const Row& r : {Row{"METIS", &metis}, Row{"AdaptiveRAG*", &adaptive},
                         Row{"Parrot*", &parrot}, Row{"vLLM", &vllm}}) {
      table.AddRow({r.n, Table::Num(r.m->mean_f1(), 3), Table::Num(r.m->mean_delay(), 2),
                    Table::Num(r.m->mean_delay() / metis.mean_delay(), 2) + "x"});
    }
    table.Print();

    double speedup = adaptive.mean_delay() / metis.mean_delay();
    PrintShapeCheck("METIS 2.1-2.4x lower delay than AdaptiveRAG* at similar F1 (70B)",
                    StrFormat("%.2fx, F1 %.3f vs %.3f", speedup, metis.mean_f1(),
                              adaptive.mean_f1()),
                    speedup >= 1.5 && metis.mean_f1() >= adaptive.mean_f1() - 0.05);
    seventy_f1 += metis.mean_f1() / 2;

    // Same workload on the 7B model for the ~2% claim.
    MixedRunSpec small = spec;
    small.system = SystemKind::kMetis;
    small.serving_model = "mistral-7b-v3-awq";
    small.kv_pool_gib = -1;
    seven_f1 += RunMixedExperiment(small)[slice].mean_f1() / 2;
  }
  PrintShapeCheck("bigger inference model buys only ~2% F1 in RAG",
                  StrFormat("70B mean F1 %.3f vs 7B %.3f (%+.1f%%)", seventy_f1, seven_f1,
                            100.0 * (seventy_f1 - seven_f1) / seven_f1),
                  seventy_f1 - seven_f1 < 0.08 && seventy_f1 >= seven_f1 - 0.02);
  return 0;
}
