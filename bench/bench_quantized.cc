// Quantized-tier bench: QPS / recall@10 / bytes-per-row across scan tiers
// (ISSUE 8; ROADMAP "quantized index tiers as a schedulable precision knob").
//
// Sweeps fp32 / int8-SQ / PQ x rerank_factor on the shared clustered corpus,
// over both static backends (flat exhaustive, IVF fixed-probe), and reports
// each cell's single-thread QPS, recall@10 against exact flat ground truth,
// and the tier's storage bytes per row. Two self-check verdicts pin the
// tentpole's acceptance claims:
//
//   - int8 + rerank beats the exhaustive fp32 flat scan by >= 1.5x QPS while
//     holding recall@10 >= 0.99 (the asymmetric u8xf32 kernel reads 4x fewer
//     bytes and the exact rerank tail recovers the ranking);
//   - the PQ tier stores >= 8x fewer bytes per row than fp32.
//
// Output: console tables + BENCH_quantized.json (schema in docs/BENCH.md),
// gated against bench/baselines/BENCH_quantized.baseline.json by the
// check_bench_regression target (qps 20%, recall_at_10 2%, bytes_per_row
// growth via --direction lower).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/clustered_corpus.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/recall.h"
#include "src/vectordb/vectordb.h"

using namespace metis;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double recall = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t bytes_per_row = 0;
};

size_t BytesPerRow(const VectorIndex& index, RetrievalPrecision tier) {
  if (const auto* flat = dynamic_cast<const FlatL2Index*>(&index)) {
    return flat->bytes_per_row(tier);
  }
  if (const auto* ivf = dynamic_cast<const IvfL2Index*>(&index)) {
    return ivf->bytes_per_row(tier);
  }
  return 0;
}

// Best-of-3 timing repetitions: results are deterministic, so repetitions
// only exist to shake off scheduler noise on shared machines — the fastest
// pass is the least-perturbed one, and it is what the checked-in QPS
// baseline gates against.
Measurement Measure(const VectorIndex& index, const RecallEval& eval,
                    const RetrievalQuality& quality) {
  constexpr int kReps = 3;
  Measurement m;
  m.recall = eval.Evaluate(index, nullptr, quality);
  m.bytes_per_row = BytesPerRow(index, quality.precision);
  for (int rep = 0; rep < kReps; ++rep) {
    Samples lat_ms;
    auto start = Clock::now();
    for (const Embedding& q : eval.queries()) {
      auto t0 = Clock::now();
      auto hits = index.Search(q, eval.k(), quality);
      lat_ms.Add(SecondsSince(t0) * 1e3);
      if (hits.empty()) {
        std::printf("unexpected empty results\n");
      }
    }
    double qps = static_cast<double>(eval.queries().size()) / SecondsSince(start);
    if (qps > m.qps) {
      m.qps = qps;
      m.p50_ms = lat_ms.median();
      m.p99_ms = lat_ms.p99();
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  size_t dim = 64;
  size_t clusters = 32;
  size_t per_cluster = 400;
  size_t num_easy = 192;
  size_t num_hard = 64;
  const size_t kTopK = 10;
  const size_t kMixWay = 5;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--per_cluster=", 14) == 0) {
      per_cluster = static_cast<size_t>(std::atol(argv[a] + 14));
    }
  }
  size_t n = clusters * per_cluster;
  std::printf("Building clustered corpus: n=%zu, dim=%zu, %zu easy + %zu hard queries, "
              "kernel=%s ...\n",
              n, dim, num_easy, num_hard, KernelTargetName(ActiveKernelTarget()));
  ClusteredCorpus corpus =
      MakeClusteredCorpus(dim, clusters, per_cluster, num_easy, num_hard, 0x5CA1E, kMixWay);

  QuantizationOptions quant;
  quant.sq = true;
  quant.pq = true;
  quant.pq_m = 8;

  // One exact ground truth shared by every grid cell (the RecallEval cheap
  // path: no per-cell flat rebuild).
  FlatL2Index flat(dim, /*num_shards=*/1, quant);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    flat.Add(static_cast<ChunkId>(i), corpus.points[i]);
  }
  {
    auto t0 = Clock::now();
    flat.BuildQuantizedMirrors();
    std::printf("flat mirror train+encode: %.2f s\n", SecondsSince(t0));
  }
  RecallEval eval = RecallEval::FromExactSearch(flat, corpus.AllQueries(), kTopK);

  IvfL2Index ivf(dim, clusters, /*nprobe=*/8, 0x1F5EED, /*num_shards=*/1, quant);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    ivf.Add(static_cast<ChunkId>(i), corpus.points[i]);
  }
  {
    ThreadPool pool(ThreadPool::DefaultThreads());
    auto t0 = Clock::now();
    ivf.Train(&pool);
    ivf.BuildQuantizedMirrors();
    std::printf("IVF nlist=%zu train + mirrors: %.2f s\n", clusters, SecondsSince(t0));
  }

  std::vector<BenchJsonRecord> records;
  auto record = [&records](const std::string& name, const std::string& impl,
                           RetrievalPrecision tier, size_t rerank, const Measurement& m) {
    BenchJsonRecord rec;
    rec.name = name;
    rec.tags = {{"impl", impl}, {"tier", RetrievalPrecisionName(tier)}};
    rec.metrics = {{"rerank_factor", static_cast<double>(rerank)},
                   {"recall_at_10", m.recall},
                   {"qps", m.qps},
                   {"p50_ms", m.p50_ms},
                   {"p99_ms", m.p99_ms},
                   {"bytes_per_row", static_cast<double>(m.bytes_per_row)}};
    records.push_back(std::move(rec));
  };

  struct Cell {
    RetrievalPrecision tier;
    size_t rerank;  // 0 = n/a (fp32).
  };
  std::vector<Cell> cells = {{RetrievalPrecision::kFp32, 0}};
  for (RetrievalPrecision tier : {RetrievalPrecision::kInt8, RetrievalPrecision::kPq}) {
    for (size_t rerank : {size_t{2}, size_t{4}, size_t{8}}) {
      cells.push_back(Cell{tier, rerank});
    }
  }

  double flat_fp32_qps = 0;
  double flat_int8_qps = 0;
  double flat_int8_recall = 0;
  size_t flat_int8_rerank = 0;
  size_t fp32_bytes = 0;
  size_t pq_bytes = 0;
  for (const auto& [impl, index] :
       std::vector<std::pair<std::string, const VectorIndex*>>{{"flat", &flat}, {"ivf", &ivf}}) {
    Table table(StrFormat("bench_quantized (%s): recall@10 / QPS / bytes-per-row", impl.c_str()));
    table.SetHeader({"tier", "rerank", "recall@10", "qps", "p50_ms", "bytes/row"});
    for (const Cell& cell : cells) {
      RetrievalQuality quality;
      quality.precision = cell.tier;
      quality.rerank_factor = cell.rerank;
      Measurement m = Measure(*index, eval, quality);
      std::string name = cell.rerank == 0
                             ? StrFormat("%s_%s", impl.c_str(), RetrievalPrecisionName(cell.tier))
                             : StrFormat("%s_%s_rf%zu", impl.c_str(),
                                         RetrievalPrecisionName(cell.tier), cell.rerank);
      record(name, impl, cell.tier, cell.rerank, m);
      table.AddRow({RetrievalPrecisionName(cell.tier),
                    cell.rerank == 0 ? "-" : StrFormat("%zu", cell.rerank),
                    Table::Num(m.recall, 4), Table::Num(m.qps, 0), Table::Num(m.p50_ms, 3),
                    StrFormat("%zu", m.bytes_per_row)});
      if (impl == "flat") {
        if (cell.tier == RetrievalPrecision::kFp32) {
          flat_fp32_qps = m.qps;
          fp32_bytes = m.bytes_per_row;
        } else if (cell.tier == RetrievalPrecision::kInt8 && m.recall >= 0.99 &&
                   m.qps > flat_int8_qps) {
          // Best int8 cell that still recovers exact recall: the knob a
          // scheduler would actually pick.
          flat_int8_qps = m.qps;
          flat_int8_recall = m.recall;
          flat_int8_rerank = cell.rerank;
        } else if (cell.tier == RetrievalPrecision::kPq && cell.rerank == 4) {
          pq_bytes = m.bytes_per_row;
        }
      }
    }
    table.Print();
  }

  PrintShapeCheck(
      "int8 SQ + exact rerank >= 1.5x flat fp32 QPS at recall@10 >= 0.99",
      StrFormat("int8 rf=%zu %.0f qps vs fp32 %.0f qps (%.2fx), recall@10 %.4f",
                flat_int8_rerank, flat_int8_qps, flat_fp32_qps,
                flat_fp32_qps > 0 ? flat_int8_qps / flat_fp32_qps : 0, flat_int8_recall),
      flat_int8_qps >= 1.5 * flat_fp32_qps && flat_int8_recall >= 0.99);
  PrintShapeCheck(
      "PQ tier stores >= 8x fewer bytes per row than fp32",
      StrFormat("fp32 %zu B/row vs pq %zu B/row (%.1fx)", fp32_bytes, pq_bytes,
                pq_bytes > 0 ? static_cast<double>(fp32_bytes) / pq_bytes : 0),
      pq_bytes > 0 && fp32_bytes >= 8 * pq_bytes);

  WriteBenchJson("BENCH_quantized.json", "bench_quantized", records,
                 StrFormat("clustered corpus n=%zu dim=%zu; kernel=%s; single-thread QPS", n,
                           dim, KernelTargetName(ActiveKernelTarget())));
  return 0;
}
