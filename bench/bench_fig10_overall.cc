// Figure 10 (headline): across four datasets served concurrently (Poisson,
// 2 qps per dataset, shared engine — §7.1):
//   - METIS achieves 1.64-2.54x lower delay than the quality-optimized
//     configuration policy (AdaptiveRAG*) at no F1 loss;
//   - METIS achieves 12-18% higher F1 than static configurations tuned to
//     reach a similar served delay, on both vLLM and Parrot*;
//   - Parrot* batching improves delay over vLLM by 1.4-1.8x but cannot
//     improve quality.
// The best-quality static configuration is also reported; at this offered
// load it saturates the engine (the paper's motivation for adapting configs).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const int kQueries = 200;
  const uint64_t kSeed = 42;
  std::vector<std::string> datasets = {"squad", "musique", "kg_rag_finsec", "qmsum"};

  // Offline scoring of the static menu (what a practitioner tunes from).
  std::vector<RagConfig> best_quality;
  std::vector<std::vector<FixedConfigScore>> scores;
  for (const auto& name : datasets) {
    auto ds = GetOrGenerateDataset(name, kQueries, "cohere-embed-v3-sim", kSeed);
    scores.push_back(ScoreFixedConfigs(*ds, 40, "mistral-7b-v3-awq", kSeed));
    best_quality.push_back(BestQualityFixed(scores.back()));
  }

  MixedRunSpec spec;
  spec.datasets = datasets;
  spec.queries_per_dataset = kQueries;
  spec.seed = kSeed;

  spec.system = SystemKind::kMetis;
  auto metis = RunMixedExperiment(spec);
  spec.system = SystemKind::kAdaptiveRag;
  auto adaptive = RunMixedExperiment(spec);
  spec.system = SystemKind::kVllmFixed;
  spec.fixed_configs = best_quality;
  auto vllm_best = RunMixedExperiment(spec);

  // "Fixed config of similar delay": per dataset, the static config whose
  // *served* delay lands nearest METIS's. Iteratively step configs up/down
  // the isolated-cost ladder until served delays land in a [0.6x, 1.4x] band.
  std::vector<RagConfig> similar;
  for (size_t d = 0; d < datasets.size(); ++d) {
    similar.push_back(SimilarDelayFixed(scores[d], metis[d].mean_delay() / 3.0));
  }
  spec.fixed_configs = similar;
  auto vllm_similar = RunMixedExperiment(spec);
  for (int iter = 0; iter < 4; ++iter) {
    bool adjusted = false;
    for (size_t d = 0; d < datasets.size(); ++d) {
      double ratio = vllm_similar[d].mean_delay() / metis[d].mean_delay();
      double current = 0;
      for (const auto& s : scores[d]) {
        if (s.config == similar[d]) {
          current = s.mean_delay;
        }
      }
      const FixedConfigScore* next = nullptr;
      if (ratio > 1.4) {  // Too slow: richest config cheaper than current.
        for (const auto& s : scores[d]) {
          if (s.mean_delay < current * 0.85 &&
              (next == nullptr || s.mean_delay > next->mean_delay)) {
            next = &s;
          }
        }
      } else if (ratio < 0.6) {  // Too fast: cheapest config richer.
        for (const auto& s : scores[d]) {
          if (s.mean_delay > current * 1.15 &&
              (next == nullptr || s.mean_delay < next->mean_delay)) {
            next = &s;
          }
        }
      }
      if (next != nullptr && !(next->config == similar[d])) {
        similar[d] = next->config;
        adjusted = true;
      }
    }
    if (!adjusted) {
      break;
    }
    spec.fixed_configs = similar;
    vllm_similar = RunMixedExperiment(spec);
  }
  spec.system = SystemKind::kParrotFixed;
  spec.fixed_configs = similar;
  auto parrot_similar = RunMixedExperiment(spec);

  // Parrot* on the best-quality configs isolates the batching gain vs vLLM.
  spec.fixed_configs = best_quality;
  auto parrot_best = RunMixedExperiment(spec);

  Table table("Figure 10: per-dataset delay and F1 (mixed serving, 2 qps/dataset)");
  table.SetHeader({"dataset", "system", "config", "mean F1", "mean delay (s)", "p90 (s)",
                   "p99 (s)", "delay vs metis"});
  for (size_t d = 0; d < datasets.size(); ++d) {
    struct Row {
      std::string name;
      std::string config;
      const RunMetrics* m;
    };
    bool saturated = vllm_best[d].mean_delay() > 8 * metis[d].mean_delay();
    Row rows[] = {
        {"METIS", "adaptive", &metis[d]},
        {"AdaptiveRAG*", "quality-optimized", &adaptive[d]},
        {"vLLM (similar delay)", RagConfigToString(similar[d]), &vllm_similar[d]},
        {"Parrot* (similar delay)", RagConfigToString(similar[d]), &parrot_similar[d]},
        {std::string("vLLM (best quality)") + (saturated ? " [saturates]" : ""),
         RagConfigToString(best_quality[d]), &vllm_best[d]},
    };
    for (const Row& r : rows) {
      table.AddRow({datasets[d], r.name, r.config, Table::Num(r.m->mean_f1(), 3),
                    Table::Num(r.m->mean_delay(), 2), Table::Num(r.m->p90_delay(), 2),
                    Table::Num(r.m->p99_delay(), 2),
                    Table::Num(r.m->mean_delay() / metis[d].mean_delay(), 2) + "x"});
    }
  }
  table.Print();

  double lo = 1e9, hi = 0, worst_f1_gap = 0;
  double gain_lo = 1e9, gain_hi = -1e9;
  double batch_lo = 1e9, batch_hi = 0;
  for (size_t d = 0; d < datasets.size(); ++d) {
    double s = adaptive[d].mean_delay() / metis[d].mean_delay();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    worst_f1_gap = std::min(worst_f1_gap, metis[d].mean_f1() - adaptive[d].mean_f1());
    double base = std::max(vllm_similar[d].mean_f1(), parrot_similar[d].mean_f1());
    double gain = (metis[d].mean_f1() - base) / base;
    gain_lo = std::min(gain_lo, gain);
    gain_hi = std::max(gain_hi, gain);
    double batching = vllm_best[d].mean_delay() / parrot_best[d].mean_delay();
    batch_lo = std::min(batch_lo, batching);
    batch_hi = std::max(batch_hi, batching);
  }
  PrintShapeCheck("METIS 1.64-2.54x lower delay than quality-optimized configs, same quality",
                  StrFormat("%.2f-%.2fx lower delay; worst F1 gap %+.3f", lo, hi, worst_f1_gap),
                  lo >= 1.25 && worst_f1_gap >= -0.05);
  PrintShapeCheck("12-18% higher F1 than fixed configs of similar delay",
                  StrFormat("%+.0f%% to %+.0f%% higher F1", gain_lo * 100, gain_hi * 100),
                  gain_lo > -0.02 && gain_hi > 0.08);
  PrintShapeCheck("Parrot* batching improves delay 1.4-1.8x over vLLM, not quality",
                  StrFormat("%.2f-%.2fx", batch_lo, batch_hi), batch_lo >= 1.1);
  return 0;
}
