// Figure 18: the LLM profiler's latency is a small fraction of end-to-end
// response delay — at most ~1/10, on average 0.03-0.06 — because it reads only
// the query and the database metadata, not the retrieved context.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  MixedRunSpec spec;
  spec.queries_per_dataset = 200;
  spec.seed = 42;
  spec.system = SystemKind::kMetis;
  auto results = RunMixedExperiment(spec);

  Table table("Figure 18: profiler delay as a fraction of end-to-end delay");
  table.SetHeader({"dataset", "mean frac", "p90 frac", "max frac", "mean profiler (s)",
                   "mean e2e (s)"});
  bool ok = true;
  double worst_mean = 0;
  for (const RunMetrics& m : results) {
    double max_frac = m.profiler_fracs.empty() ? 0 : m.profiler_fracs.max();
    double mean_frac = m.profiler_fracs.mean();
    table.AddRow({m.label, Table::Num(mean_frac, 3), Table::Num(m.profiler_fracs.p90(), 3),
                  Table::Num(max_frac, 3), Table::Num(m.profiler_delays.mean(), 3),
                  Table::Num(m.delays.mean(), 2)});
    ok = ok && mean_frac <= 0.12;
    worst_mean = std::max(worst_mean, mean_frac);
  }
  table.Print();
  PrintShapeCheck("profiler adds at most ~0.1 of e2e delay; 0.03-0.06 on average",
                  StrFormat("worst per-dataset mean fraction %.3f", worst_mean), ok);
  return 0;
}
