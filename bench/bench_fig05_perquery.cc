// Figure 5: choosing the best configuration per query beats every static
// configuration's quality-delay point (Musique and QMSUM). The per-query best
// is the lowest-delay configuration within 2% of that query's best achievable
// quality — the paper's definition (§3).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  for (const char* name : {"musique", "qmsum"}) {
    auto ds = GetOrGenerateDataset(name, 200, "cohere-embed-v3-sim", kSeed);
    std::vector<RagConfig> menu = FixedConfigMenu(ds->profile());
    const int kN = 40;

    // result[q][c]: isolated (f1, delay) of query q under config c.
    std::vector<std::vector<RagResult>> results(kN);
    for (int qi = 0; qi < kN; ++qi) {
      for (const RagConfig& cfg : menu) {
        results[qi].push_back(RunSingleQuery(*ds, ds->queries()[static_cast<size_t>(qi)], cfg,
                                             "mistral-7b-v3-awq", kSeed));
      }
    }

    // Per-query best: lowest delay within 2% of that query's max F1.
    double pq_f1 = 0, pq_delay = 0;
    for (int qi = 0; qi < kN; ++qi) {
      double best_f1 = 0;
      for (const auto& r : results[qi]) {
        best_f1 = std::max(best_f1, r.f1);
      }
      const RagResult* pick = nullptr;
      for (const auto& r : results[qi]) {
        if (r.f1 >= best_f1 - 0.02 && (pick == nullptr || r.exec_delay() < pick->exec_delay())) {
          pick = &r;
        }
      }
      pq_f1 += pick->f1;
      pq_delay += pick->exec_delay();
    }
    pq_f1 /= kN;
    pq_delay /= kN;

    Table table(StrFormat("Figure 5 (%s): per-query config vs fixed-config Pareto", name));
    table.SetHeader({"configuration", "mean F1", "mean delay (s)"});
    table.AddRow({"per-query best", Table::Num(pq_f1, 3), Table::Num(pq_delay, 2)});

    // Fixed-config points (the Pareto cloud of Figure 5).
    double best_fixed_f1 = 0;
    double best_f1_at_similar_delay = 0;
    double closest_quality_delay = -1;  // Delay of statics within 5% of per-query F1.
    for (size_t c = 0; c < menu.size(); ++c) {
      double f1 = 0, delay = 0;
      for (int qi = 0; qi < kN; ++qi) {
        f1 += results[qi][c].f1;
        delay += results[qi][c].exec_delay();
      }
      f1 /= kN;
      delay /= kN;
      table.AddRow({RagConfigToString(menu[c]), Table::Num(f1, 3), Table::Num(delay, 2)});
      best_fixed_f1 = std::max(best_fixed_f1, f1);
      if (f1 >= pq_f1 - 0.05 && (closest_quality_delay < 0 || delay < closest_quality_delay)) {
        closest_quality_delay = delay;
      }
      if (delay <= pq_delay * 1.15) {
        best_f1_at_similar_delay = std::max(best_f1_at_similar_delay, f1);
      }
    }
    table.Print();

    if (closest_quality_delay < 0) {
      // Even stronger than the paper's claim: no static config reaches the
      // per-query quality at any delay.
      PrintShapeCheck("per-query config dominates the static Pareto frontier",
                      StrFormat("no static within 5%% of per-query F1 %.3f (best static %.3f)",
                                pq_f1, best_fixed_f1),
                      pq_f1 > best_fixed_f1);
    } else {
      PrintShapeCheck("per-query config: up to 3x delay saving vs closest-quality static",
                      StrFormat("%.2fs vs %.2fs (%.1fx)", pq_delay, closest_quality_delay,
                                closest_quality_delay / pq_delay),
                      closest_quality_delay / pq_delay >= 1.5);
    }
    PrintShapeCheck(
        "every static of comparable delay loses >=10% quality",
        StrFormat("best static F1 at similar delay: %.3f vs per-query %.3f",
                  best_f1_at_similar_delay, pq_f1),
        best_f1_at_similar_delay < pq_f1 * 0.93);
  }
  return 0;
}
