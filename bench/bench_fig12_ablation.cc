// Figure 12: where METIS's delay saving comes from. Staged on FinSec and
// Musique against the highest-quality fixed configuration on vLLM:
//   (1) profiler output, median config         -> 1.4-1.68x
//   (2) + Parrot*-style batching               -> additional 1.1-1.2x
//   (3) + memory-aware joint scheduling        -> additional 1.45-1.75x

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;

  // All four datasets run concurrently; the fixed baseline deploys each
  // dataset's own best-quality static config. Rate chosen so the fixed
  // baseline is congested but stable, making stage ratios interpretable.
  MixedRunSpec proto;
  proto.queries_per_dataset = kQueries;
  proto.rate_per_dataset = 1.4;
  proto.seed = kSeed;
  std::vector<RagConfig> best_configs;
  for (const auto& dsname : proto.datasets) {
    auto ds = GetOrGenerateDataset(dsname, kQueries, "cohere-embed-v3-sim", kSeed);
    best_configs.push_back(
        BestQualityFixed(ScoreFixedConfigs(*ds, 40, "mistral-7b-v3-awq", kSeed)));
  }

  for (const char* name : {"kg_rag_finsec", "musique"}) {
    MixedRunSpec spec = proto;
    size_t slice = spec.datasets.size();
    for (size_t d = 0; d < spec.datasets.size(); ++d) {
      if (spec.datasets[d] == name) {
        slice = d;
      }
    }

    // (0) vLLM, best-quality fixed config per dataset.
    spec.system = SystemKind::kVllmFixed;
    spec.fixed_configs = best_configs;
    double base = RunMixedExperiment(spec)[slice].mean_delay();

    // (1) Profiler + median-of-space config, no batching, no joint scheduling.
    spec.system = SystemKind::kMetis;
    spec.metis.pick = MetisSystem::ConfigPick::kMedianOfSpace;
    spec.override_prefix_sharing = false;
    double median = RunMixedExperiment(spec)[slice].mean_delay();

    // (2) + group-aware batching with prefix sharing.
    spec.override_prefix_sharing = true;
    double batching = RunMixedExperiment(spec)[slice].mean_delay();

    // (3) + joint best-fit scheduling (full METIS).
    spec.metis.pick = MetisSystem::ConfigPick::kBestFit;
    double full = RunMixedExperiment(spec)[slice].mean_delay();

    Table table(StrFormat("Figure 12 (%s): delay decomposition", name));
    table.SetHeader({"stage", "mean delay (s)", "vs fixed config", "vs previous stage"});
    table.AddRow({"vLLM best-quality fixed", Table::Num(base, 2), "1.00x", "-"});
    table.AddRow({"+ profiler (median config)", Table::Num(median, 2),
                  Table::Num(base / median, 2) + "x", Table::Num(base / median, 2) + "x"});
    table.AddRow({"+ batching", Table::Num(batching, 2), Table::Num(base / batching, 2) + "x",
                  Table::Num(median / batching, 2) + "x"});
    table.AddRow({"+ joint scheduling (METIS)", Table::Num(full, 2),
                  Table::Num(base / full, 2) + "x", Table::Num(batching / full, 2) + "x"});
    table.Print();

    PrintShapeCheck("each stage contributes: median < +batching < +scheduling",
                    StrFormat("%.2f / %.2f / %.2f / %.2f s", base, median, batching, full),
                    median < base && batching < median * 1.02 && full < batching * 1.02 &&
                        full < base);
  }
  return 0;
}
