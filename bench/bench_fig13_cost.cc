// Figure 13: scaling the *model* instead of adapting the *configuration* is
// expensive. Fixed-config pipelines on Llama-70B cost ~2.38x and on GPT-4o
// ~6.8x more dollars than METIS on Mistral-7B (profiler included), while
// failing to reach its F1.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 150;

  for (const char* name : {"musique", "qmsum"}) {
    auto ds = GetOrGenerateDataset(name, kQueries, "cohere-embed-v3-sim", kSeed);
    RagConfig best = BestQualityFixed(ScoreFixedConfigs(*ds, 30, "mistral-7b-v3-awq", kSeed));

    RunSpec spec;
    spec.dataset = name;
    spec.num_queries = kQueries;
    spec.seed = kSeed;

    // METIS on the small model, profiler cost included.
    spec.system = SystemKind::kMetis;
    spec.serving_model = "mistral-7b-v3-awq";
    RunMetrics metis = RunExperiment(spec);

    // Bigger fixed-config models.
    spec.system = SystemKind::kVllmFixed;
    spec.fixed_config = best;
    spec.serving_model = "llama3.1-70b-awq";
    RunMetrics llama = RunExperiment(spec);
    spec.serving_model = "gpt-4o-serving";
    spec.kv_pool_gib = 200;  // Provider fleet; memory is not the constraint.
    RunMetrics gpt = RunExperiment(spec);

    Table table(StrFormat("Figure 13 (%s): dollar cost vs quality", name));
    table.SetHeader({"system", "model", "mean F1", "cost ($, 150 queries)", "vs METIS"});
    table.AddRow({"METIS (incl. profiler)", "mistral-7b", Table::Num(metis.mean_f1(), 3),
                  Table::Num(metis.total_cost_usd(), 4), "1.00x"});
    table.AddRow({"vLLM fixed", "llama3.1-70b", Table::Num(llama.mean_f1(), 3),
                  Table::Num(llama.total_cost_usd(), 4),
                  Table::Num(llama.total_cost_usd() / metis.total_cost_usd(), 2) + "x"});
    table.AddRow({"fixed config", "gpt-4o", Table::Num(gpt.mean_f1(), 3),
                  Table::Num(gpt.total_cost_usd(), 4),
                  Table::Num(gpt.total_cost_usd() / metis.total_cost_usd(), 2) + "x"});
    table.Print();

    double llama_ratio = llama.total_cost_usd() / metis.total_cost_usd();
    double gpt_ratio = gpt.total_cost_usd() / metis.total_cost_usd();
    PrintShapeCheck("fixed-config 70B ~2.38x and GPT-4o ~6.8x costlier than METIS, without "
                    "beating its F1",
                    StrFormat("70B %.2fx (F1 %.3f), GPT-4o %.2fx (F1 %.3f) vs METIS F1 %.3f",
                              llama_ratio, llama.mean_f1(), gpt_ratio, gpt.mean_f1(),
                              metis.mean_f1()),
                    llama_ratio > 1.5 && gpt_ratio > llama_ratio &&
                        metis.mean_f1() >= llama.mean_f1() - 0.05);
  }
  return 0;
}
