// Figure 19: under low load (queries sent one at a time), METIS's best-fit
// picks the most expensive configuration from the pruned space and still cuts
// delay by 1.48-1.56x vs the highest-quality fixed configuration, because the
// pruned space only contains configurations relevant to the query's profile.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;
  const int kQueries = 120;

  for (const char* name : {"kg_rag_finsec", "musique"}) {
    auto ds = GetOrGenerateDataset(name, kQueries, "cohere-embed-v3-sim", kSeed);
    RagConfig best =
        BestQualityFixedStrict(ScoreFixedConfigs(*ds, 40, "mistral-7b-v3-awq", kSeed));

    RunSpec spec;
    spec.dataset = name;
    spec.num_queries = kQueries;
    spec.arrival_rate = -1;  // Closed loop: next query sent after the previous completes.
    spec.seed = kSeed;

    spec.system = SystemKind::kMetis;
    RunMetrics metis = RunExperiment(spec);
    spec.system = SystemKind::kVllmFixed;
    spec.fixed_config = best;
    RunMetrics vllm = RunExperiment(spec);

    Table table(StrFormat("Figure 19 (%s): sequential (low-load) serving", name));
    table.SetHeader({"system", "mean F1", "mean delay (s)", "reduction"});
    table.AddRow({"vLLM best-quality fixed", Table::Num(vllm.mean_f1(), 3),
                  Table::Num(vllm.mean_delay(), 2), "1.00x"});
    table.AddRow({"METIS", Table::Num(metis.mean_f1(), 3), Table::Num(metis.mean_delay(), 2),
                  Table::Num(vllm.mean_delay() / metis.mean_delay(), 2) + "x"});
    table.Print();

    double reduction = vllm.mean_delay() / metis.mean_delay();
    PrintShapeCheck("METIS reduces delay 1.48-1.56x even without batching pressure",
                    StrFormat("%.2fx at F1 %.3f vs %.3f", reduction, metis.mean_f1(),
                              vllm.mean_f1()),
                    reduction >= 1.15 && metis.mean_f1() >= vllm.mean_f1() - 0.05);
  }
  return 0;
}
