// Recall/latency curves for the ANN recall subsystem (ISSUE 2; ROADMAP
// "expose ANN recall knobs ... and measure recall/latency curves").
//
// Sweeps the IVF index over nlist x nprobe x probe-mode (fixed vs per-query
// adaptive) on a clustered synthetic corpus with a controlled mix of easy
// (in-cluster) and hard (multi-cluster-midpoint) queries, and reports
// recall@10 against FlatL2Index ground truth plus QPS and per-query latency
// percentiles. The flat index itself is the first row — by construction its
// recall@10 is exactly 1.0, which doubles as a self-check of the RecallEval
// plumbing.
//
// Output: console tables + BENCH_recall.json (schema in docs/BENCH.md).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/clustered_corpus.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/recall.h"
#include "src/vectordb/vectordb.h"

using namespace metis;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double recall = 0;
  double mean_probes = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Recall via one batched sweep, latency percentiles via per-query calls.
Measurement Measure(const VectorIndex& index, const RecallEval& eval,
                    const RetrievalQuality& quality) {
  Measurement m;
  const auto* ivf = dynamic_cast<const IvfL2Index*>(&index);
  if (ivf != nullptr) {
    ivf->ResetProbeStats();
  }
  m.recall = eval.Evaluate(index, nullptr, quality);
  if (ivf != nullptr) {
    m.mean_probes = ivf->mean_probes();
  }
  Samples lat_ms;
  size_t total = 0;
  auto start = Clock::now();
  for (const Embedding& q : eval.queries()) {
    auto t0 = Clock::now();
    auto hits = index.Search(q, eval.k(), quality);
    lat_ms.Add(SecondsSince(t0) * 1e3);
    total += hits.size();
  }
  double elapsed = SecondsSince(start);
  if (total == 0) {
    std::printf("unexpected empty results\n");
  }
  m.qps = static_cast<double>(eval.queries().size()) / elapsed;
  m.p50_ms = lat_ms.median();
  m.p99_ms = lat_ms.p99();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  size_t dim = 64;
  size_t clusters = 32;
  size_t per_cluster = 400;
  size_t num_easy = 192;
  size_t num_hard = 64;
  const size_t kTopK = 10;
  const size_t kMixWay = 5;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--per_cluster=", 14) == 0) {
      per_cluster = static_cast<size_t>(std::atol(argv[a] + 14));
    } else if (std::strncmp(argv[a], "--clusters=", 11) == 0) {
      clusters = static_cast<size_t>(std::atol(argv[a] + 11));
    }
  }
  clusters = std::min(std::max(clusters, kMixWay + 1), dim);  // Generator constraints.
  size_t n = clusters * per_cluster;
  std::printf("Building clustered corpus: n=%zu (%zu x %zu), dim=%zu, %zu easy + %zu hard "
              "queries, kernel=%s ...\n",
              n, clusters, per_cluster, dim, num_easy, num_hard,
              KernelTargetName(ActiveKernelTarget()));
  ClusteredCorpus corpus =
      MakeClusteredCorpus(dim, clusters, per_cluster, num_easy, num_hard, 0xB7EC, kMixWay);

  FlatL2Index flat(dim);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    flat.Add(static_cast<ChunkId>(i), corpus.points[i]);
  }
  RecallEval eval(flat, corpus.AllQueries(), kTopK);

  std::vector<BenchJsonRecord> records;
  auto record = [&records](const std::string& name, const std::string& impl, size_t nlist,
                           size_t nprobe, bool adaptive, const Measurement& m) {
    BenchJsonRecord rec;
    rec.name = name;
    rec.tags = {{"impl", impl}, {"mode", adaptive ? "adaptive" : "fixed"}};
    rec.metrics = {{"nlist", static_cast<double>(nlist)},
                   {"nprobe", static_cast<double>(nprobe)},
                   {"adaptive", adaptive ? 1.0 : 0.0},
                   {"recall_at_10", m.recall},
                   {"mean_probes", m.mean_probes},
                   {"qps", m.qps},
                   {"p50_ms", m.p50_ms},
                   {"p99_ms", m.p99_ms}};
    records.push_back(std::move(rec));
  };

  // --- Flat ground-truth row (recall is 1.0 by construction) ---
  Measurement flat_m = Measure(flat, eval, RetrievalQuality{});
  record("flat_exact", "flat", 0, 0, false, flat_m);
  std::printf("flat exact: recall@10=%.4f qps=%.0f p50=%.3f ms\n", flat_m.recall, flat_m.qps,
              flat_m.p50_ms);

  // --- IVF sweep: nlist x nprobe x {fixed, adaptive} ---
  Table table("bench_recall: recall@10 / mean probes / QPS");
  table.SetHeader({"config", "recall@10", "mean_probes", "qps", "p50_ms", "p99_ms"});

  // Highlighted adaptive-vs-fixed pair for the verdict; only valid once both
  // configurations actually ran (a --clusters override can skip them).
  double best_adaptive_recall = 0;
  double best_adaptive_probes = 0;
  double fixed_recall_at_ceil = 0;
  bool have_adaptive_highlight = false;
  bool have_fixed_highlight = false;
  for (size_t nlist : {clusters / 2, clusters}) {
    IvfL2Index ivf(dim, nlist, 1, 0x1F5EED);
    for (size_t i = 0; i < corpus.points.size(); ++i) {
      ivf.Add(static_cast<ChunkId>(i), corpus.points[i]);
    }
    {
      ThreadPool pool(ThreadPool::DefaultThreads());
      auto t0 = Clock::now();
      ivf.Train(&pool);
      std::printf("IVF nlist=%zu train: %.2f s\n", nlist, SecondsSince(t0));
    }
    AdaptiveProbePolicy policy;
    policy.enabled = true;
    policy.min_probes = 1;
    policy.distance_ratio = 1.3;
    for (size_t nprobe : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
      if (nprobe > nlist) {
        continue;
      }
      RetrievalQuality fixed;
      fixed.mode = RetrievalQuality::ProbeMode::kFixed;
      fixed.nprobe = nprobe;
      Measurement fm = Measure(ivf, eval, fixed);
      record(StrFormat("ivf_nlist%zu_nprobe%zu_fixed", nlist, nprobe), "ivf", nlist, nprobe,
             false, fm);
      table.AddRow({StrFormat("nlist=%zu nprobe=%zu fixed", nlist, nprobe),
                    Table::Num(fm.recall, 4), Table::Num(fm.mean_probes, 2),
                    Table::Num(fm.qps, 0), Table::Num(fm.p50_ms, 3), Table::Num(fm.p99_ms, 3)});

      policy.max_probes = nprobe;
      ivf.set_adaptive_probe(policy);
      RetrievalQuality adaptive;
      adaptive.mode = RetrievalQuality::ProbeMode::kAdaptive;
      Measurement am = Measure(ivf, eval, adaptive);
      record(StrFormat("ivf_nlist%zu_nprobe%zu_adaptive", nlist, nprobe), "ivf", nlist, nprobe,
             true, am);
      table.AddRow({StrFormat("nlist=%zu budget=%zu adaptive", nlist, nprobe),
                    Table::Num(am.recall, 4), Table::Num(am.mean_probes, 2),
                    Table::Num(am.qps, 0), Table::Num(am.p50_ms, 3), Table::Num(am.p99_ms, 3)});

      if (nlist == clusters && nprobe == 8) {
        best_adaptive_recall = am.recall;
        best_adaptive_probes = am.mean_probes;
        have_adaptive_highlight = true;
      }
      if (nlist == clusters && nprobe == 4) {
        fixed_recall_at_ceil = fm.recall;
        have_fixed_highlight = true;
      }
    }
  }
  table.Print();

  // --- Verdicts ---
  PrintShapeCheck("flat ground-truth row reports recall@10 == 1.0",
                  StrFormat("recall@10 = %.6f", flat_m.recall), flat_m.recall == 1.0);
  if (have_adaptive_highlight && have_fixed_highlight) {
    PrintShapeCheck(
        "adaptive probing (budget 8) beats fixed nprobe=4 recall at fewer mean probes",
        StrFormat("adaptive %.4f @ %.2f probes vs fixed %.4f @ 4", best_adaptive_recall,
                  best_adaptive_probes, fixed_recall_at_ceil),
        best_adaptive_recall >= fixed_recall_at_ceil && best_adaptive_probes <= 4.0);
  } else {
    std::printf("  [SKIP] adaptive-vs-fixed verdict: highlighted configs not in this sweep "
                "(clusters=%zu)\n", clusters);
  }

  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"impl", "summary"},
                  {"kernel", KernelTargetName(ActiveKernelTarget())}};
  summary.metrics = {{"n", static_cast<double>(n)},
                     {"dim", static_cast<double>(dim)},
                     {"k", static_cast<double>(kTopK)},
                     {"num_queries", static_cast<double>(eval.queries().size())},
                     {"flat_recall_at_10", flat_m.recall},
                     {"host_cpus",
                      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()))}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_recall.json", "recall", records,
                 StrFormat("recall values are host-independent (bit-identical kernels); "
                           "QPS measured on a %u-cpu host",
                           std::max(1u, std::thread::hardware_concurrency())));
  std::printf("wrote BENCH_recall.json (%zu records)\n", records.size());
  return flat_m.recall == 1.0 ? 0 : 1;
}
