// Design-choice ablation (DESIGN.md §5): quantifies the scheduler refinements
// this reproduction layers on top of Algorithm 1's literal text, by switching
// each one off independently under the paper's concurrent workload:
//
//   - LITM cap:          exclude stuff prompts past the quality-safe budget.
//   - method preference: prefer map_reduce for high-complexity queries.
//   - Fig-8 fallback:    fall back to map_reduce when stuff-as-fits cannot
//                        cover the information need.
//   - projected free:    measure headroom net of the waiting queue's claims.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace metis;

int main() {
  const uint64_t kSeed = 42;

  struct Variant {
    const char* label;
    JointSchedulerOptions options;
  };
  JointSchedulerOptions full;
  JointSchedulerOptions no_litm = full;
  no_litm.litm_cap = false;
  JointSchedulerOptions no_pref = full;
  no_pref.prefer_map_reduce_for_complex = false;
  JointSchedulerOptions no_fig8 = full;
  no_fig8.fig8_fallback = false;
  JointSchedulerOptions raw_free = full;
  raw_free.use_projected_free = false;

  const Variant variants[] = {
      {"full METIS", full},
      {"- LITM cap", no_litm},
      {"- map_reduce preference", no_pref},
      {"- Fig-8 fallback", no_fig8},
      {"- projected free memory", raw_free},
  };

  Table table("Design ablation: each refinement removed independently (mixed, 2 qps/ds)");
  table.SetHeader({"variant", "mean F1 (4 ds)", "mean delay (s)", "p90 (s)"});
  double full_f1 = 0, full_delay = 0;
  bool full_is_best = true;
  for (const Variant& v : variants) {
    MixedRunSpec spec;
    spec.queries_per_dataset = 120;
    spec.seed = kSeed;
    spec.system = SystemKind::kMetis;
    spec.scheduler = v.options;
    auto results = RunMixedExperiment(spec);
    double f1 = 0, delay = 0, p90 = 0;
    for (const RunMetrics& m : results) {
      f1 += m.mean_f1() / results.size();
      delay += m.mean_delay() / results.size();
      p90 += m.p90_delay() / results.size();
    }
    table.AddRow({v.label, Table::Num(f1, 3), Table::Num(delay, 2), Table::Num(p90, 2)});
    if (v.label == std::string("full METIS")) {
      full_f1 = f1;
      full_delay = delay;
    } else {
      // The full system should Pareto-dominate-or-tie each ablated variant:
      // no variant may beat it on BOTH quality and delay by a real margin.
      bool dominated = f1 > full_f1 + 0.01 && delay < full_delay * 0.95;
      full_is_best = full_is_best && !dominated;
    }
  }
  table.Print();
  PrintShapeCheck("no ablated variant Pareto-dominates the full system",
                  StrFormat("full: F1 %.3f @ %.2fs", full_f1, full_delay), full_is_best);
  return 0;
}
