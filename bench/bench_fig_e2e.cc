// Cross-query KV reuse + joint co-scheduling, end to end: shared-query
// fraction x offered load, two arms per cell:
//
//   off — today's stack: canonical METIS with per-query prefix groups. The
//         only prefill sharing is intra-query (one query's mapper calls
//         aliasing their common instruction+query header).
//   on  — the PR's tentpole: synthesis contexts assembled in canonical chunk
//         order and keyed by content (chunk-id hash), so concurrent queries
//         that retrieved the same chunks alias resident KV blocks; the engine
//         parks released prefixes for a grace window (prefix LRU retention);
//         and the joint scheduler splits a per-query e2e delay budget between
//         retrieval depth and synthesis tokens using a prefill-cost estimate
//         that discounts predicted prefix hits.
//
// The shared-query axis is shaped by RunSpec::shared_workload: a fraction of
// the arrival stream is replaced by duplicates of a few hot "template"
// queries (think trending questions against one corpus), on BOTH arms — the
// arms see byte-identical query streams and differ only in serving policy.
//
// The claim under test (paper §6: configuration adaptation must be
// serving-aware): under shared-query-heavy load the reuse arm saves >= 20% of
// prefill tokens and serves a lower e2e p99 at equal answer quality, and
// under a fully-unique stream (shared 0) it costs nothing measurable.
//
// All metrics are simulation-deterministic (bit-stable kernels + simulated
// time), so BENCH_e2e.json reproduces exactly on any host and CI gates
// mean_f1 (2%) and goodput (20%) against
// bench/baselines/BENCH_e2e.baseline.json.
//
// Output: console table + BENCH_e2e.json (schema in docs/BENCH.md).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/runner/runner.h"

using namespace metis;

namespace {

const std::vector<double> kSharedFracs = {0.0, 0.5, 0.9};
const std::vector<double> kRates = {4.0, 10.0};

RunSpec BaseSpec(double shared_frac, double rate, bool reuse) {
  RunSpec spec;
  spec.dataset = "musique";
  spec.num_queries = 120;
  spec.arrival_rate = rate;
  spec.system = SystemKind::kMetis;
  spec.seed = 42;
  spec.shared_workload.hot_fraction = shared_frac;
  spec.shared_workload.num_hot = 4;
  if (reuse) {
    spec.scheduler.cross_query_prefix = true;
    // Grace window sized to the duplicate inter-arrival gap: at 4 qps with 4
    // hot templates and half the stream shared, siblings of one template land
    // ~2 s apart — 3 s keeps the parked prefix warm across that gap without
    // pinning KV for idle templates forever.
    spec.scheduler.prefix_retention_s = 3.0;
    // Per-query e2e delay budget the scheduler splits between retrieval depth
    // and synthesis tokens; generous enough to leave healthy-load decisions
    // untouched, binding only when queueing has eaten most of it.
    spec.scheduler.e2e_budget_s = 6.0;
  }
  return spec;
}

struct ArmResult {
  double shared_frac = 0;
  double rate = 0;
  std::string arm;  // "off" / "on"
  RunMetrics metrics;
};

double SavedFrac(const RunMetrics& m) {
  double saved = static_cast<double>(m.engine_stats.prefill_tokens_saved);
  double paid = static_cast<double>(m.engine_stats.prefill_tokens);
  return saved + paid > 0 ? saved / (saved + paid) : 0;
}

}  // namespace

int main() {
  std::vector<ArmResult> results;
  for (double frac : kSharedFracs) {
    for (double rate : kRates) {
      for (bool reuse : {false, true}) {
        std::printf("running shared=%.1f rate=%.0f reuse=%s ...\n", frac, rate,
                    reuse ? "on" : "off");
        ArmResult r;
        r.shared_frac = frac;
        r.rate = rate;
        r.arm = reuse ? "on" : "off";
        r.metrics = RunExperiment(BaseSpec(frac, rate, reuse));
        results.push_back(std::move(r));
      }
    }
  }

  Table table("bench_fig_e2e: cross-query KV reuse + co-scheduling vs shared-query fraction");
  table.SetHeader({"shared/rate/arm", "f1", "p50", "p99", "gpu_s", "prefill", "saved",
                   "saved%", "hits", "trim", "traded"});
  std::vector<BenchJsonRecord> records;
  for (const ArmResult& r : results) {
    const RunMetrics& m = r.metrics;
    uint64_t trimmed = 0;
    uint64_t traded = 0;
    for (const QueryRecord& rec : m.records) {
      trimmed += rec.budget_trimmed ? 1 : 0;
      traded += rec.depth_traded ? 1 : 0;
    }
    table.AddRow({StrFormat("%.1f/%.0f/%s", r.shared_frac, r.rate, r.arm.c_str()),
                  Table::Num(m.mean_f1(), 3), Table::Num(m.p50_delay(), 2),
                  Table::Num(m.p99_delay(), 2), Table::Num(m.engine_stats.busy_seconds, 1),
                  StrFormat("%lld", static_cast<long long>(m.engine_stats.prefill_tokens)),
                  StrFormat("%lld", static_cast<long long>(m.engine_stats.prefill_tokens_saved)),
                  Table::Num(100.0 * SavedFrac(m), 1),
                  StrFormat("%llu", static_cast<unsigned long long>(m.engine_stats.prefix_hits)),
                  StrFormat("%llu", static_cast<unsigned long long>(trimmed)),
                  StrFormat("%llu", static_cast<unsigned long long>(traded))});

    BenchJsonRecord rec;
    rec.name = StrFormat("shared%.1f/rate%.0f/%s", r.shared_frac, r.rate, r.arm.c_str());
    rec.tags = {{"arm", r.arm},
                {"shared", StrFormat("%.1f", r.shared_frac)},
                {"rate", StrFormat("%.0f", r.rate)}};
    rec.metrics = {{"offered_qps", r.rate},
                   {"shared_frac", r.shared_frac},
                   {"mean_f1", m.mean_f1()},
                   {"goodput_qps", m.goodput_qps},
                   {"throughput_qps", m.throughput_qps},
                   {"p50_delay_s", m.p50_delay()},
                   {"p99_delay_s", m.p99_delay()},
                   {"gpu_seconds", m.engine_stats.busy_seconds},
                   {"prefill_tokens", static_cast<double>(m.engine_stats.prefill_tokens)},
                   {"prefill_tokens_saved",
                    static_cast<double>(m.engine_stats.prefill_tokens_saved)},
                   {"saved_frac", SavedFrac(m)},
                   {"prefix_hits", static_cast<double>(m.engine_stats.prefix_hits)},
                   {"retained_prefix_hits",
                    static_cast<double>(m.engine_stats.retained_prefix_hits)},
                   {"budget_trimmed", static_cast<double>(trimmed)},
                   {"depth_traded", static_cast<double>(traded)}};
    records.push_back(std::move(rec));
  }
  table.Print();

  // --- Verdicts ---
  auto find = [&](double frac, double rate, const std::string& arm) -> const RunMetrics& {
    for (const ArmResult& r : results) {
      if (r.shared_frac == frac && r.rate == rate && r.arm == arm) {
        return r.metrics;
      }
    }
    std::fprintf(stderr, "missing arm %.1f/%.0f/%s\n", frac, rate, arm.c_str());
    std::abort();
  };

  // Shared-query-heavy, loaded cell: the tentpole's headline numbers.
  const RunMetrics& hot_off = find(0.9, 10.0, "off");
  const RunMetrics& hot_on = find(0.9, 10.0, "on");

  bool saved_ok = SavedFrac(hot_on) >= 0.20;
  PrintShapeCheck("shared 0.9 @ 10 qps: reuse-on saves >= 20% of prefill tokens",
                  StrFormat("saved %.1f%% (%lld of %lld+saved tokens)",
                            100.0 * SavedFrac(hot_on),
                            static_cast<long long>(hot_on.engine_stats.prefill_tokens_saved),
                            static_cast<long long>(hot_on.engine_stats.prefill_tokens)),
                  saved_ok);

  bool p99_ok = hot_on.p99_delay() < hot_off.p99_delay();
  PrintShapeCheck("shared 0.9 @ 10 qps: reuse-on e2e p99 below reuse-off",
                  StrFormat("on %.2fs vs off %.2fs", hot_on.p99_delay(), hot_off.p99_delay()),
                  p99_ok);

  // Canonical chunk ordering moves fact positions inside the prompt, so F1 is
  // not bit-equal — but it must stay equal in expectation. 0.05 absolute
  // bounds the position-sensitivity noise at this sample size.
  bool f1_ok = true;
  double worst_gap = 0;
  for (double frac : kSharedFracs) {
    for (double rate : kRates) {
      double gap = find(frac, rate, "on").mean_f1() - find(frac, rate, "off").mean_f1();
      if (std::abs(gap) > std::abs(worst_gap)) {
        worst_gap = gap;
      }
      f1_ok = f1_ok && std::abs(gap) <= 0.05;
    }
  }
  PrintShapeCheck("every cell: reuse-on mean F1 within 0.05 of reuse-off",
                  StrFormat("worst gap %+.3f", worst_gap), f1_ok);

  // Fully-unique stream: reuse must cost ~nothing (no duplicate prefixes to
  // find, the budget rarely binds at these loads).
  const RunMetrics& uniq_off = find(0.0, 10.0, "off");
  const RunMetrics& uniq_on = find(0.0, 10.0, "on");
  bool uniq_ok = uniq_on.p99_delay() <= 1.10 * uniq_off.p99_delay();
  PrintShapeCheck("shared 0.0 @ 10 qps: reuse-on p99 within 10% of off",
                  StrFormat("on %.2fs vs off %.2fs", uniq_on.p99_delay(), uniq_off.p99_delay()),
                  uniq_ok);

  bool ok = saved_ok && p99_ok && f1_ok && uniq_ok;

  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"arm", "summary"}};
  summary.metrics = {{"num_queries", static_cast<double>(BaseSpec(0, 4.0, false).num_queries)},
                     {"num_cells", static_cast<double>(kSharedFracs.size() * kRates.size())}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_e2e.json", "e2e", records,
                 "all metrics are simulation-deterministic and host-independent "
                 "(bit-identical kernels + simulated time)");
  std::printf("wrote BENCH_e2e.json (%zu records)\n", records.size());
  return ok ? 0 : 1;
}
