// Sustained ingest + query load on the live-mutation serving index (ISSUE 7).
//
// Streams interleaved insert/delete batches into a mutable IVF index while
// measuring, per phase: query QPS, recall@10 against exact ground truth over
// the CURRENT live set, and the index's segment-lifecycle gauges (seals,
// compactions, retrains, tombstones). A mutable FLAT twin receives the exact
// same op stream; by the mutation-parity contract its results are
// bit-identical to a from-scratch flat build over the live set, so its
// recall@10 must be exactly 1.0 every phase — a built-in self-check that the
// ground truth (and the mutation machinery) is sound.
//
// The final rows compare the mutable index, after the whole stream, against a
// STATIC IvfL2Index freshly built from the final live set with identical
// options: the acceptance claim is recall@10 within 2% (and equal when the
// mutable base has just retrained, since the rebuild is bit-identical).
//
// Output: console table + BENCH_ingest.json (schema in docs/BENCH.md),
// gated by check_bench_regression against bench/baselines/.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/vectordb/clustered_corpus.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/mutable_index.h"
#include "src/vectordb/recall.h"
#include "src/vectordb/vectordb.h"

using namespace metis;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Op {
  bool insert = false;
  ChunkId id = -1;
  Embedding v;  // Insert only.
};

// Exact ground truth for the twin's current live set (and, by parity, the
// IVF index's — both consumed the same op stream).
FlatL2Index LiveTruth(const MutableIndex& twin, size_t dim) {
  FlatL2Index truth(dim);
  std::shared_ptr<const MutableEpoch> epoch = twin.PinEpoch();
  twin.ForEachLiveRow(*epoch, [&](ChunkId id, const float* row) {
    truth.Add(id, Embedding(row, row + dim));
  });
  return truth;
}

double MeasureQps(const VectorIndex& index, const std::vector<Embedding>& queries, size_t k,
                  int repeats) {
  size_t total = 0;
  auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const Embedding& q : queries) {
      total += index.Search(q, k).size();
    }
  }
  double elapsed = SecondsSince(start);
  if (total == 0) {
    std::printf("unexpected empty results\n");
  }
  return static_cast<double>(queries.size() * repeats) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  size_t dim = 48;
  size_t clusters = 16;
  size_t per_cluster = 250;
  int phases = 6;
  int ops_per_phase = 400;
  double insert_fraction = 0.75;
  const size_t kTopK = 10;
  const int kQpsRepeats = 3;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--per_cluster=", 14) == 0) {
      per_cluster = static_cast<size_t>(std::atol(argv[a] + 14));
    } else if (std::strncmp(argv[a], "--ops_per_phase=", 16) == 0) {
      ops_per_phase = std::atoi(argv[a] + 16);
    } else if (std::strncmp(argv[a], "--phases=", 9) == 0) {
      phases = std::atoi(argv[a] + 9);
    }
  }
  size_t n = clusters * per_cluster;
  std::printf("bench_fig_ingest: n=%zu (%zu x %zu), dim=%zu, %d phases x %d ops "
              "(%.0f%% insert), kernel=%s\n",
              n, clusters, per_cluster, dim, phases, ops_per_phase, insert_fraction * 100,
              KernelTargetName(ActiveKernelTarget()));
  ClusteredCorpus corpus = MakeClusteredCorpus(dim, clusters, per_cluster,
                                               /*num_easy=*/128, /*num_hard=*/32, 0xB7EC);
  std::vector<Embedding> queries = corpus.AllQueries();

  RetrievalIndexOptions ivf_opt;
  ivf_opt.backend = RetrievalIndexOptions::Backend::kIvf;
  ivf_opt.nlist = clusters;
  ivf_opt.nprobe = 4;
  ivf_opt.train_seed = 0x1F5EED;
  ivf_opt.mutable_index = true;
  ivf_opt.mutation.memtable_rows = 256;
  ivf_opt.mutation.compact_segments = 4;
  // Low enough that the default stream (6 x 400 ops) crosses it: the bench
  // exercises a mid-stream base retrain, not just seal/compact.
  ivf_opt.mutation.retrain_delta_fraction = 0.25;
  RetrievalIndexOptions flat_opt;
  flat_opt.backend = RetrievalIndexOptions::Backend::kFlat;
  flat_opt.mutable_index = true;
  flat_opt.mutation.memtable_rows = 256;
  flat_opt.mutation.compact_segments = 4;

  MutableIndex ivf(dim, ivf_opt);
  MutableIndex twin(dim, flat_opt);
  for (size_t i = 0; i < corpus.points.size(); ++i) {
    ivf.Add(static_cast<ChunkId>(i), corpus.points[i]);
    twin.Add(static_cast<ChunkId>(i), corpus.points[i]);
  }
  ThreadPool pool(ThreadPool::DefaultThreads());
  {
    auto t0 = Clock::now();
    ivf.Finalize(&pool);
    twin.Finalize(&pool);
    std::printf("finalize (IVF train): %.2f s\n", SecondsSince(t0));
  }

  Rng op_rng(0xFEED5);
  ChunkId next_id = static_cast<ChunkId>(n);
  std::vector<ChunkId> live;
  live.reserve(n * 2);
  for (ChunkId id = 0; id < static_cast<ChunkId>(n); ++id) {
    live.push_back(id);
  }

  Table table("bench_fig_ingest: per-phase recall@10 / QPS under mixed ingest+query load");
  table.SetHeader({"phase", "ingest_ops_s", "qps", "recall@10", "twin_recall", "live", "segs",
                   "tombs", "seals", "compact", "retrain"});
  std::vector<BenchJsonRecord> records;
  double last_recall = 0;

  for (int phase = 0; phase < phases; ++phase) {
    // One phase's deterministic op batch, applied to the IVF index (timed)
    // and replayed onto the flat twin (untimed; it only defines truth).
    std::vector<Op> ops;
    ops.reserve(ops_per_phase);
    for (int i = 0; i < ops_per_phase; ++i) {
      if (op_rng.Bernoulli(insert_fraction) || live.empty()) {
        Op op;
        op.insert = true;
        op.id = next_id++;
        op.v = Jitter(op_rng, corpus.centers[op_rng.Index(clusters)], 0.35);
        live.push_back(op.id);
        ops.push_back(std::move(op));
      } else {
        size_t pick = op_rng.Index(live.size());
        Op op;
        op.id = live[pick];
        live[pick] = live.back();
        live.pop_back();
        ops.push_back(std::move(op));
      }
    }
    auto t0 = Clock::now();
    for (const Op& op : ops) {
      if (op.insert) {
        ivf.Insert(op.id, op.v);
      } else {
        ivf.Delete(op.id);
      }
    }
    double ingest_ops_s = static_cast<double>(ops.size()) / SecondsSince(t0);
    for (const Op& op : ops) {
      if (op.insert) {
        twin.Insert(op.id, op.v);
      } else {
        twin.Delete(op.id);
      }
    }

    FlatL2Index truth = LiveTruth(twin, dim);
    RecallEval eval(truth, queries, kTopK, &pool);
    double twin_recall = eval.Evaluate(twin, &pool);  // Must be exactly 1.0.
    double recall = eval.Evaluate(ivf, &pool);
    double qps = MeasureQps(ivf, queries, kTopK, kQpsRepeats);
    MutableIndexStats s = ivf.stats();
    last_recall = recall;

    table.AddRow({StrFormat("%d", phase), Table::Num(ingest_ops_s, 0), Table::Num(qps, 0),
                  Table::Num(recall, 4), Table::Num(twin_recall, 4),
                  StrFormat("%zu", s.live_rows), StrFormat("%zu", s.open_segments),
                  StrFormat("%zu", s.tombstones), StrFormat("%llu", (unsigned long long)s.seals),
                  StrFormat("%llu", (unsigned long long)s.compactions),
                  StrFormat("%llu", (unsigned long long)s.retrains)});
    BenchJsonRecord rec;
    rec.name = StrFormat("phase%d", phase);
    rec.tags = {{"impl", "mutable_ivf"}};
    rec.metrics = {{"recall_at_10", recall},
                   {"twin_recall_at_10", twin_recall},
                   {"qps", qps},
                   {"ingest_ops_per_s", ingest_ops_s},
                   {"live_rows", static_cast<double>(s.live_rows)},
                   {"segments", static_cast<double>(s.open_segments)},
                   {"tombstones", static_cast<double>(s.tombstones)},
                   {"seals", static_cast<double>(s.seals)},
                   {"compactions", static_cast<double>(s.compactions)},
                   {"retrains", static_cast<double>(s.retrains)}};
    records.push_back(std::move(rec));
    if (twin_recall != 1.0) {
      std::printf("PARITY VIOLATION: flat twin recall %.6f != 1.0 in phase %d\n", twin_recall,
                  phase);
      table.Print();
      return 1;
    }
  }

  // --- Final comparison: fresh static build over the final live set ---
  FlatL2Index truth = LiveTruth(twin, dim);
  RecallEval eval(truth, queries, kTopK, &pool);
  IvfL2Index static_ivf(dim, ivf_opt.nlist, ivf_opt.nprobe, ivf_opt.train_seed,
                        ivf_opt.shards);
  {
    std::shared_ptr<const MutableEpoch> epoch = ivf.PinEpoch();
    ivf.ForEachLiveRow(*epoch, [&](ChunkId id, const float* row) {
      static_ivf.Add(id, Embedding(row, row + dim));
    });
  }
  static_ivf.Train(&pool);
  double static_recall = eval.Evaluate(static_ivf, &pool);
  double static_qps = MeasureQps(static_ivf, queries, kTopK, kQpsRepeats);
  double mutable_recall = eval.Evaluate(ivf, &pool);
  double mutable_qps = MeasureQps(ivf, queries, kTopK, kQpsRepeats);
  table.AddRow({"static_final", "-", Table::Num(static_qps, 0), Table::Num(static_recall, 4),
                "-", StrFormat("%zu", static_ivf.size()), "-", "-", "-", "-", "-"});
  table.Print();

  BenchJsonRecord sr;
  sr.name = "static_final";
  sr.tags = {{"impl", "static_ivf"}};
  sr.metrics = {{"recall_at_10", static_recall}, {"qps", static_qps}};
  records.push_back(std::move(sr));
  BenchJsonRecord mr;
  mr.name = "mutable_final";
  mr.tags = {{"impl", "mutable_ivf"}};
  mr.metrics = {{"recall_at_10", mutable_recall}, {"qps", mutable_qps}};
  records.push_back(std::move(mr));

  BenchJsonRecord summary;
  summary.name = "summary";
  summary.metrics = {{"n", static_cast<double>(n)},
                     {"dim", static_cast<double>(dim)},
                     {"k", static_cast<double>(kTopK)},
                     {"num_queries", static_cast<double>(queries.size())},
                     {"phases", static_cast<double>(phases)},
                     {"ops_per_phase", static_cast<double>(ops_per_phase)},
                     {"insert_fraction", insert_fraction},
                     {"host_cpus", static_cast<double>(std::thread::hardware_concurrency())}};
  records.push_back(std::move(summary));

  bool recall_close = mutable_recall >= static_recall - 0.02;
  PrintShapeCheck(
      "live-mutation index holds recall@10 within 2% of a fresh static build",
      StrFormat("mutable=%.4f static=%.4f (last mid-stream phase %.4f)", mutable_recall,
                static_recall, last_recall),
      recall_close);

  WriteBenchJson("BENCH_ingest.json", "ingest", records,
                 "QPS values are machine-dependent; recall values are deterministic.");
  std::printf("wrote BENCH_ingest.json (%zu records)\n", records.size());
  return recall_close ? 0 : 1;
}
