// Paper-style retrieval-depth figure (ROADMAP "retrieval-depth experiments"):
// F1 and delay vs probe budget under load, on the IVF backend, comparing
//
//   - fixed run-wide budgets (the PR 3 knob): every query probes B lists,
//     B swept over the axis;
//   - profiler-driven per-query budgets (RetrievalDepthPolicy): each query
//     probes budget(p) = clamp(20 - 4 * num_info_pieces, 4, 16) lists, in
//     fixed or adaptive (early-termination) mode.
//
// The METIS claim transferred to the retrieval knob: per-query adaptation
// reaches the deep-fixed-budget quality at strictly fewer probes, by
// spending depth where its marginal F1 is highest — single-fact lookups are
// all-or-nothing (a missed gold list collapses F1 to ~0), while multihop
// queries accrue partial credit from the lists nearest their mixture
// embedding and saturate early, so the budget curve DESCENDS in pieces (the
// measured direction; rationale in retrieval_depth.h). The corpus is
// musique_topical: Musique with the topically-clustered embedding geometry
// real passage collections have, so IVF lists align with topics and depth
// need genuinely varies per query (RAGGED). The run is a full serving-stack
// simulation (METIS system, Poisson arrivals), so "F1" and "delay" here are
// end-to-end, not index-level.
//
// All metrics are deterministic for a given spec (simulated time, bit-stable
// kernels), so BENCH_depth.json reproduces exactly on any host and the CI
// gate watches mean_f1 with a tight tolerance
// (bench/baselines/BENCH_depth.baseline.json).
//
// Output: console tables + BENCH_depth.json (schema in docs/BENCH.md).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/retrieval_depth.h"
#include "src/runner/runner.h"
#include "src/vectordb/vectordb.h"

using namespace metis;

namespace {

RunSpec BaseSpec() {
  RunSpec spec;
  spec.dataset = "musique_topical";  // Clustered geometry: depth need varies per query.
  spec.num_queries = 150;
  spec.arrival_rate = 2.0;  // Under load: retrieval shares the stack with queueing.
  spec.system = SystemKind::kMetis;
  spec.seed = 42;
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 16;
  spec.retrieval.nprobe = 4;
  spec.retrieval.adaptive.min_probes = 1;
  // Tight squared-distance ratio (1.095x in true distance): early termination
  // only trims lists that are clearly past the query's topical neighborhood.
  spec.retrieval.adaptive.distance_ratio = 1.2;
  // The per-query budget line 20 - 4p over [4, 16]: pieces {1,2,3,>=4} ->
  // budgets {16,12,8,4} (nlist above is 16, so the cap is exhaustive probing).
  spec.scheduler.depth.base_probes = 20;
  spec.scheduler.depth.probes_per_piece = -4;
  spec.scheduler.depth.min_budget = 4;
  spec.scheduler.depth.max_budget = 16;
  return spec;
}

struct Row {
  std::string name;
  std::string mode;
  double budget_axis = 0;  // Fixed budget B, or the policy max for per-query rows.
  RunMetrics metrics;
};

std::string HistogramToString(const std::vector<uint64_t>& hist) {
  std::string out;
  for (size_t p = 0; p < hist.size(); ++p) {
    if (hist[p] > 0) {
      out += StrFormat("%s%zu:%llu", out.empty() ? "" : " ", p,
                       static_cast<unsigned long long>(hist[p]));
    }
  }
  return out;
}

}  // namespace

int main() {
  std::vector<Row> rows;

  // --- Fixed run-wide budgets (the per-run knob) ---
  for (size_t budget : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{12}, size_t{16}}) {
    RunSpec spec = BaseSpec();
    spec.scheduler.per_query_depth = false;
    spec.scheduler.adaptive_nprobe = false;
    spec.scheduler.nprobe_budget = budget;
    Row row;
    row.name = StrFormat("fixed_b%zu", budget);
    row.mode = "fixed";
    row.budget_axis = static_cast<double>(budget);
    std::printf("running %s ...\n", row.name.c_str());
    row.metrics = RunExperiment(spec);
    rows.push_back(std::move(row));
  }

  // --- Profiler-driven per-query budgets ---
  for (bool adaptive : {false, true}) {
    RunSpec spec = BaseSpec();
    spec.scheduler.per_query_depth = true;
    spec.scheduler.depth.adaptive = adaptive;
    Row row;
    row.name = adaptive ? "perquery_adaptive" : "perquery_fixed";
    row.mode = adaptive ? "perquery_adaptive" : "perquery_fixed";
    row.budget_axis = static_cast<double>(spec.scheduler.depth.max_budget);
    std::printf("running %s ...\n", row.name.c_str());
    row.metrics = RunExperiment(spec);
    std::printf("  probe histogram: %s\n",
                HistogramToString(row.metrics.probe_histogram).c_str());
    rows.push_back(std::move(row));
  }

  // --- Tables + JSON ---
  Table table(
      "bench_fig_depth: end-to-end F1 / delay vs probe budget (musique_topical, IVF nlist=16)");
  table.SetHeader({"config", "mean F1", "mean delay (s)", "p90 delay (s)", "mean probes"});
  std::vector<BenchJsonRecord> records;
  for (const Row& row : rows) {
    table.AddRow({row.name, Table::Num(row.metrics.mean_f1(), 4),
                  Table::Num(row.metrics.mean_delay(), 3),
                  Table::Num(row.metrics.p90_delay(), 3),
                  Table::Num(row.metrics.mean_probes, 2)});
    BenchJsonRecord rec;
    rec.name = row.name;
    rec.tags = {{"mode", row.mode}, {"dataset", "musique_topical"}};
    rec.metrics = {{"budget", row.budget_axis},
                   {"mean_f1", row.metrics.mean_f1()},
                   {"mean_delay_s", row.metrics.mean_delay()},
                   {"p50_delay_s", row.metrics.p50_delay()},
                   {"p90_delay_s", row.metrics.p90_delay()},
                   {"p99_delay_s", row.metrics.p99_delay()},
                   {"mean_probes", row.metrics.mean_probes},
                   {"throughput_qps", row.metrics.throughput_qps}};
    records.push_back(std::move(rec));
  }
  table.Print();

  // --- Verdicts ---
  const Row* fixed_ref = nullptr;      // The deep fixed reference (b12).
  const Row* fixed_shallow = nullptr;  // b1.
  const Row* pq_fixed = nullptr;
  const Row* pq_adaptive = nullptr;
  for (const Row& row : rows) {
    if (row.name == "fixed_b12") fixed_ref = &row;
    if (row.name == "fixed_b1") fixed_shallow = &row;
    if (row.name == "perquery_fixed") pq_fixed = &row;
    if (row.name == "perquery_adaptive") pq_adaptive = &row;
  }
  bool ok = true;
  if (fixed_ref != nullptr && fixed_shallow != nullptr && pq_fixed != nullptr &&
      pq_adaptive != nullptr) {
    PrintShapeCheck(
        "depth matters: deep fixed budget beats shallow fixed budget on F1",
        StrFormat("b12 F1 %.4f vs b1 F1 %.4f", fixed_ref->metrics.mean_f1(),
                  fixed_shallow->metrics.mean_f1()),
        fixed_ref->metrics.mean_f1() > fixed_shallow->metrics.mean_f1());
    bool pq_fixed_ok = pq_fixed->metrics.mean_f1() >= fixed_ref->metrics.mean_f1() &&
                       pq_fixed->metrics.mean_probes < fixed_ref->metrics.mean_probes;
    PrintShapeCheck(
        "per-query budgets reach the fixed-b12 F1 at strictly fewer mean probes",
        StrFormat("perquery %.4f @ %.2f probes vs fixed %.4f @ %.2f",
                  pq_fixed->metrics.mean_f1(), pq_fixed->metrics.mean_probes,
                  fixed_ref->metrics.mean_f1(), fixed_ref->metrics.mean_probes),
        pq_fixed_ok);
    bool pq_adaptive_ok =
        pq_adaptive->metrics.mean_f1() >= fixed_ref->metrics.mean_f1() &&
        pq_adaptive->metrics.mean_probes < pq_fixed->metrics.mean_probes;
    PrintShapeCheck(
        "adaptive mode trims further probes without losing the fixed-b12 F1",
        StrFormat("adaptive %.4f @ %.2f probes vs perquery-fixed @ %.2f",
                  pq_adaptive->metrics.mean_f1(), pq_adaptive->metrics.mean_probes,
                  pq_fixed->metrics.mean_probes),
        pq_adaptive_ok);
    // The frontier statement: the CHEAPEST fixed budget whose F1 matches the
    // per-query row spends strictly more probes than the per-query row does.
    double cheapest_matching_fixed = -1;
    for (const Row& row : rows) {
      if (row.mode == "fixed" && row.metrics.mean_f1() >= pq_fixed->metrics.mean_f1()) {
        if (cheapest_matching_fixed < 0 || row.budget_axis < cheapest_matching_fixed) {
          cheapest_matching_fixed = row.budget_axis;
        }
      }
    }
    bool frontier_ok = cheapest_matching_fixed > pq_fixed->metrics.mean_probes;
    PrintShapeCheck(
        "matching the per-query F1 with a run-wide budget costs more probes",
        cheapest_matching_fixed < 0
            ? StrFormat("no fixed budget up to 16 reaches perquery F1 %.4f (mean %.2f probes)",
                        pq_fixed->metrics.mean_f1(), pq_fixed->metrics.mean_probes)
            : StrFormat("fixed needs b=%.0f vs perquery mean %.2f probes",
                        cheapest_matching_fixed, pq_fixed->metrics.mean_probes),
        cheapest_matching_fixed < 0 || frontier_ok);
    ok = fixed_ref->metrics.mean_f1() > fixed_shallow->metrics.mean_f1() && pq_fixed_ok &&
         pq_adaptive_ok && (cheapest_matching_fixed < 0 || frontier_ok);
  } else {
    std::printf("missing rows for verdicts\n");
    ok = false;
  }

  const RunSpec base = BaseSpec();
  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"mode", "summary"}, {"dataset", base.dataset}};
  summary.metrics = {{"num_queries", static_cast<double>(base.num_queries)},
                     {"arrival_rate_qps", base.arrival_rate},
                     {"nlist", static_cast<double>(base.retrieval.nlist)},
                     {"depth_base", static_cast<double>(base.scheduler.depth.base_probes)},
                     {"depth_slope", static_cast<double>(base.scheduler.depth.probes_per_piece)},
                     {"depth_min", static_cast<double>(base.scheduler.depth.min_budget)},
                     {"depth_max", static_cast<double>(base.scheduler.depth.max_budget)},
                     {"host_cpus",
                      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()))}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_depth.json", "depth", records,
                 "all metrics are simulation-deterministic and host-independent "
                 "(bit-identical kernels + simulated time)");
  std::printf("wrote BENCH_depth.json (%zu records)\n", records.size());
  return ok ? 0 : 1;
}
