// Hybrid-retrieval bench: profile-routed ensemble fusion vs the fixed
// single-backend arms (ISSUE 10; ROADMAP "hybrid retrieval as a schedulable
// knob").
//
// Runs the four "<dataset>_hybrid" evaluation workloads — task types rotate
// factual / semantic / temporal / comparative by query id, each constructed
// so a different backend mix wins (dataset.h DatasetProfile::hybrid_eval) —
// through three retrieval arms over the same corpus and index:
//
//   dense    the incumbent dense-only stack (hybrid knob off),
//   lexical  BM25 only (hybrid on, dense weight 0),
//   routed   HybridRouter defaults: the profiler classifies each query's task
//            type from its text, the router picks per-backend weights and the
//            temporal metadata filter, the database fuses by weighted RRF.
//
// Per arm: retrieval-level mean F1 at k = |gold chunk set| (at that k,
// precision = recall = F1 = overlap/|gold|), single-thread QPS over the
// classify+route+retrieve loop, and mean retrieval cost in rows, where cost =
// dense rows scored (all live rows, or the filter-surviving rows on filtered
// scans) + BM25 postings scanned (LexicalIndexStats). The verdict pins the
// tentpole's acceptance claim: on >= 2 of the 4 datasets the routed arm beats
// the BEST fixed single-backend arm on mean F1 at a mean cost no higher than
// the dense-only incumbent's.
//
// Output: console tables + BENCH_hybrid.json (schema in docs/BENCH.md), gated
// against bench/baselines/BENCH_hybrid.baseline.json by the
// check_bench_regression target (mean_f1 2%, qps 20%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/core/hybrid_router.h"
#include "src/text/tokenizer.h"
#include "src/vectordb/lexical_index.h"
#include "src/vectordb/vectordb.h"
#include "src/workload/dataset.h"

using namespace metis;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kNumQueries = 120;
constexpr uint64_t kSeed = 42;
const char* kEmbedModel = "cohere-embed-v3-sim";

struct ArmResult {
  double mean_f1 = 0;
  double qps = 0;
  double mean_cost_rows = 0;      // dense rows scored + lexical postings, per query.
  double mean_dense_rows = 0;
  double mean_lex_postings = 0;
  double f1_by_type[kNumQueryTaskTypes] = {0, 0, 0, 0};
};

// The quality an arm uses for one query. `routed` consults the router.
RetrievalQuality QualityFor(const std::string& arm, const HybridRouter& router,
                            const RagQuery& query) {
  if (arm == "dense") {
    return {};
  }
  if (arm == "lexical") {
    RetrievalQuality q;
    q.hybrid = true;
    q.dense_weight = 0.0f;
    q.lexical_weight = 1.0f;
    return q;
  }
  QueryProfile profile;
  profile.task_type = ClassifyTaskType(Tokenize(query.text), &profile.time_bucket);
  return router.Route(profile, {});
}

ArmResult MeasureArm(const Dataset& dataset, const std::string& arm,
                     const HybridRouter& router,
                     const std::vector<std::vector<ChunkId>>& gold_sets,
                     const std::vector<size_t>& bucket_rows) {
  const VectorDatabase& db = dataset.db();
  const size_t live_rows = db.num_chunks();
  ArmResult r;
  double type_sum[kNumQueryTaskTypes] = {0, 0, 0, 0};
  size_t type_n[kNumQueryTaskTypes] = {0, 0, 0, 0};

  // Quality pass: F1 and the dense-leg cost (analytic: a flat scan scores
  // every live row; a filtered scan scores only the filter-surviving rows).
  db.ResetHybridStats();
  db.lexical_index()->ResetSearchStats();
  uint64_t postings_before = db.lexical_index()->stats().postings_scanned;
  double dense_rows = 0;
  for (size_t i = 0; i < dataset.queries().size(); ++i) {
    const RagQuery& query = dataset.queries()[i];
    const std::vector<ChunkId>& gold = gold_sets[i];
    if (gold.empty()) {
      continue;
    }
    RetrievalQuality quality = QualityFor(arm, router, query);
    std::vector<SearchHit> hits = db.RetrieveWithDistances(query.text, gold.size(), quality);
    size_t overlap = 0;
    for (const SearchHit& h : hits) {
      overlap += std::binary_search(gold.begin(), gold.end(), h.id) ? 1 : 0;
    }
    double precision = hits.empty() ? 0.0 : static_cast<double>(overlap) / hits.size();
    double recall = static_cast<double>(overlap) / gold.size();
    double f1 = precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
    r.mean_f1 += f1;
    int type = static_cast<int>(ClassifyTaskType(Tokenize(query.text)));
    type_sum[type] += f1;
    ++type_n[type];
    bool wants_dense = !quality.hybrid || quality.dense_weight > 0;
    if (wants_dense) {
      dense_rows += quality.filter.time_bucket >= 0
                        ? static_cast<double>(
                              bucket_rows[static_cast<size_t>(quality.filter.time_bucket)])
                        : static_cast<double>(live_rows);
    }
  }
  size_t nq = dataset.queries().size();
  r.mean_f1 /= nq;
  for (int t = 0; t < kNumQueryTaskTypes; ++t) {
    r.f1_by_type[t] = type_n[t] > 0 ? type_sum[t] / type_n[t] : 0.0;
  }
  double postings =
      static_cast<double>(db.lexical_index()->stats().postings_scanned - postings_before);
  r.mean_dense_rows = dense_rows / nq;
  r.mean_lex_postings = postings / nq;
  r.mean_cost_rows = r.mean_dense_rows + r.mean_lex_postings;

  // Timing pass: best of 5 windows of the full classify+route+retrieve loop.
  // The lexical arm answers a query in microseconds, so one 120-query pass is
  // far too short to time reliably — repeat the loop until each timed window
  // covers at least ~250 ms, and keep the fastest window (clips scheduler
  // steal on shared hosts).
  auto run_loop = [&]() {
    for (size_t i = 0; i < dataset.queries().size(); ++i) {
      const RagQuery& query = dataset.queries()[i];
      RetrievalQuality quality = QualityFor(arm, router, query);
      size_t k = std::max<size_t>(1, gold_sets[i].size());
      if (db.RetrieveWithDistances(query.text, k, quality).empty()) {
        std::printf("unexpected empty results\n");
      }
    }
  };
  auto start = Clock::now();
  run_loop();
  double once_s = SecondsSince(start);
  int iters = once_s > 0 ? static_cast<int>(0.25 / once_s) + 1 : 1;
  for (int rep = 0; rep < 5; ++rep) {
    start = Clock::now();
    for (int it = 0; it < iters; ++it) {
      run_loop();
    }
    r.qps = std::max(
        r.qps, static_cast<double>(iters) * static_cast<double>(nq) / SecondsSince(start));
  }
  return r;
}

}  // namespace

int main() {
  const std::vector<std::string> datasets = {"squad_hybrid", "musique_hybrid",
                                             "kg_rag_finsec_hybrid", "qmsum_hybrid"};
  const std::vector<std::string> arms = {"dense", "lexical", "routed"};

  HybridRouterOptions router_options;
  router_options.enabled = true;
  HybridRouter router(router_options);

  std::vector<BenchJsonRecord> records;
  int routed_wins = 0;
  for (const std::string& name : datasets) {
    DatasetGenerator generator(GetDatasetProfile(name), kSeed);
    RetrievalIndexOptions index_options;
    index_options.lexical = true;
    std::unique_ptr<Dataset> dataset =
        generator.Generate(kNumQueries, kEmbedModel, index_options);

    // Gold chunk set per query (sorted unique), and the per-time-bucket live
    // row counts filtered dense scans are charged for.
    std::vector<std::vector<ChunkId>> gold_sets;
    for (const RagQuery& query : dataset->queries()) {
      std::vector<ChunkId> gold;
      for (int32_t fact_id : query.gold_fact_ids) {
        gold.push_back(dataset->fact(fact_id).chunk_id);
      }
      std::sort(gold.begin(), gold.end());
      gold.erase(std::unique(gold.begin(), gold.end()), gold.end());
      gold_sets.push_back(std::move(gold));
    }
    std::vector<size_t> bucket_rows(
        static_cast<size_t>(std::max(1, dataset->profile().num_time_buckets)), 0);
    for (size_t i = 0; i < dataset->db().num_chunks(); ++i) {
      const Chunk& c = dataset->db().chunk(static_cast<ChunkId>(i));
      if (c.time_bucket >= 0 && static_cast<size_t>(c.time_bucket) < bucket_rows.size()) {
        ++bucket_rows[static_cast<size_t>(c.time_bucket)];
      }
    }

    std::printf("\n=== %s (%d queries, %zu chunks) ===\n", name.c_str(), kNumQueries,
                dataset->db().num_chunks());
    std::printf("%-8s %8s %10s %10s %12s %12s  %s\n", "arm", "mean_f1", "qps", "cost_rows",
                "dense_rows", "lex_postings", "f1 fact/sem/temp/comp");
    std::vector<ArmResult> results;
    for (const std::string& arm : arms) {
      ArmResult r = MeasureArm(*dataset, arm, router, gold_sets, bucket_rows);
      std::printf("%-8s %8.4f %10.0f %10.1f %12.1f %12.1f  %.3f/%.3f/%.3f/%.3f\n", arm.c_str(),
                  r.mean_f1, r.qps, r.mean_cost_rows, r.mean_dense_rows, r.mean_lex_postings,
                  r.f1_by_type[0], r.f1_by_type[1], r.f1_by_type[2], r.f1_by_type[3]);
      BenchJsonRecord rec;
      rec.name = name + "/" + arm;
      rec.tags = {{"dataset", name}, {"arm", arm}};
      rec.metrics = {{"mean_f1", r.mean_f1},
                     {"qps", r.qps},
                     {"mean_cost_rows", r.mean_cost_rows},
                     {"mean_dense_rows", r.mean_dense_rows},
                     {"mean_lex_postings", r.mean_lex_postings},
                     {"f1_factual", r.f1_by_type[0]},
                     {"f1_semantic", r.f1_by_type[1]},
                     {"f1_temporal", r.f1_by_type[2]},
                     {"f1_comparative", r.f1_by_type[3]}};
      records.push_back(std::move(rec));
      results.push_back(r);
    }

    const ArmResult& dense = results[0];
    const ArmResult& lexical = results[1];
    const ArmResult& routed = results[2];
    double best_fixed_f1 = std::max(dense.mean_f1, lexical.mean_f1);
    bool wins = routed.mean_f1 > best_fixed_f1 &&
                routed.mean_cost_rows <= dense.mean_cost_rows;
    routed_wins += wins ? 1 : 0;
    PrintShapeCheck(
        "routed F1 beats the best fixed single backend at <= dense-only cost",
        StrFormat("routed %.4f @ %.0f rows vs best fixed %.4f, dense %.0f rows",
                  routed.mean_f1, routed.mean_cost_rows, best_fixed_f1,
                  dense.mean_cost_rows),
        wins);
  }

  bool ok = routed_wins >= 2;
  PrintShapeCheck("profile routing pays on >= 2 of 4 datasets",
                  StrFormat("routed wins on %d of %zu", routed_wins, datasets.size()), ok);

  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"arm", "summary"}};
  summary.metrics = {{"num_queries", static_cast<double>(kNumQueries)},
                     {"num_datasets", static_cast<double>(datasets.size())},
                     {"routed_wins", static_cast<double>(routed_wins)}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_hybrid.json", "hybrid", records,
                 "mean_f1 and cost are simulation-deterministic and host-independent; "
                 "qps is machine-dependent");
  std::printf("wrote BENCH_hybrid.json (%zu records)\n", records.size());
  return ok ? 0 : 1;
}
