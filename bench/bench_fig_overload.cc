// Multi-tenant overload control (ROADMAP "multi-tenant overload control and
// SLO-aware scheduling"): offered load swept PAST the engine's saturation
// point, with three SLO classes sharing one METIS stack:
//
//   interactive  priority 2, tight deadline  (never rejected by the ladder)
//   standard     priority 1, medium deadline (never rejected by the ladder)
//   besteffort   priority 0, loose deadline  (first to be shed)
//
// Two arms per offered rate:
//
//   off  — today's stack: every arrival admitted and served at the joint
//          scheduler's configuration. Past saturation the queue grows without
//          bound, EVERY class blows through its deadline, and goodput
//          (in-deadline completions/s) collapses even though throughput
//          stays positive.
//   on   — the OverloadController's degradation ladder (src/core/overload.h):
//          clamp retrieval depth, then drop to the cheap synthesis config,
//          then reject best-effort arrivals with deterministic backoff.
//
// The claim under test: past saturation the ladder converts best-effort
// goodput into protected-class goodput — ladder-on total goodput is at least
// ladder-off's, and the interactive class keeps its deadline p99 while
// best-effort absorbs the shedding. A flash-crowd row (8x arrival step for a
// window mid-run) shows the same mechanism under a transient, not just a
// sustained, overload.
//
// All metrics are simulation-deterministic (bit-stable kernels + simulated
// time), so BENCH_overload.json reproduces exactly on any host and the CI
// gate watches per-class goodput at the tight 2% tolerance
// (bench/baselines/BENCH_overload.baseline.json).
//
// Output: console tables + BENCH_overload.json (schema in docs/BENCH.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/runner/runner.h"

using namespace metis;

namespace {

// Offered rates (qps). bench_fig11 places this spec's saturation in the
// 4-8 qps band; the sweep brackets it from comfortably-under to well-past.
const std::vector<double> kRates = {2.0, 8.0, 16.0, 32.0, 64.0};

std::vector<TenantClass> Tenants() {
  // Deadlines sit ~3x above the unloaded p99 (~1.2 s at 2 qps): comfortably
  // clear at healthy load, and genuinely at risk past saturation, where the
  // ladderless tail grows past 3.8 s.
  return {
      TenantClass{"interactive", /*priority=*/2, /*deadline_s=*/3.5, /*rate_share=*/0.2},
      TenantClass{"standard", /*priority=*/1, /*deadline_s=*/7.0, /*rate_share=*/0.3},
      TenantClass{"besteffort", /*priority=*/0, /*deadline_s=*/14.0, /*rate_share=*/0.5},
  };
}

RunSpec BaseSpec(double rate, bool ladder) {
  RunSpec spec;
  spec.dataset = "musique_topical";
  spec.num_queries = 150;
  spec.arrival_rate = rate;
  spec.system = SystemKind::kMetis;
  spec.seed = 42;
  // IVF backend + per-query depth so ladder rung 1 (retrieval-budget clamp)
  // is live end to end, observable in mean_probes.
  spec.retrieval.backend = RetrievalIndexOptions::Backend::kIvf;
  spec.retrieval.nlist = 16;
  spec.retrieval.nprobe = 4;
  spec.scheduler.per_query_depth = true;
  spec.scheduler.depth.base_probes = 4;
  spec.scheduler.depth.probes_per_piece = 2;
  spec.scheduler.depth.min_budget = 2;
  spec.scheduler.depth.max_budget = 16;
  spec.scheduler.depth.adaptive = false;
  spec.tenants = Tenants();
  spec.overload.enabled = ladder;
  return spec;
}

struct ArmResult {
  double rate = 0;
  std::string arm;   // "off" / "on"
  std::string load;  // "steady" / "flash"
  RunMetrics metrics;
};

void AddRecords(const ArmResult& r, std::vector<BenchJsonRecord>& records) {
  const RunMetrics& m = r.metrics;
  BenchJsonRecord total;
  total.name = StrFormat("%s/rate%.0f/%s/total", r.load.c_str(), r.rate, r.arm.c_str());
  total.tags = {{"load", r.load}, {"arm", r.arm}, {"class", "total"}};
  total.metrics = {{"offered_qps", r.rate},
                   {"goodput_qps", m.goodput_qps},
                   {"throughput_qps", m.throughput_qps},
                   {"rejected", static_cast<double>(m.rejected_queries)},
                   {"mean_f1", m.mean_f1()},
                   {"p50_delay_s", m.p50_delay()},
                   {"p90_delay_s", m.p90_delay()},
                   {"p99_delay_s", m.p99_delay()},
                   {"mean_probes", m.mean_probes},
                   {"peak_queue_depth", static_cast<double>(m.engine_stats.peak_queue_depth)},
                   {"peak_queue_age_s", m.engine_stats.peak_queue_age_s}};
  records.push_back(std::move(total));
  for (const TenantClassMetrics& cm : m.class_metrics) {
    BenchJsonRecord rec;
    rec.name = StrFormat("%s/rate%.0f/%s/%s", r.load.c_str(), r.rate, r.arm.c_str(),
                         cm.name.c_str());
    rec.tags = {{"load", r.load}, {"arm", r.arm}, {"class", cm.name}};
    rec.metrics = {{"offered_qps", r.rate},
                   {"goodput_qps", cm.goodput_qps},
                   {"offered", static_cast<double>(cm.offered)},
                   {"completed", static_cast<double>(cm.completed)},
                   {"rejected", static_cast<double>(cm.rejected)},
                   {"missed_deadline", static_cast<double>(cm.missed_deadline)},
                   {"depth_shed", static_cast<double>(cm.depth_shed)},
                   {"synthesis_degraded", static_cast<double>(cm.synthesis_degraded)},
                   {"precision_shed", static_cast<double>(cm.precision_shed)},
                   {"deadline_s", cm.deadline_s},
                   {"p50_delay_s", cm.p50_delay()},
                   {"p99_delay_s", cm.p99_delay()}};
    records.push_back(std::move(rec));
  }
}

const TenantClassMetrics& ClassByName(const RunMetrics& m, const std::string& name) {
  for (const TenantClassMetrics& cm : m.class_metrics) {
    if (cm.name == name) {
      return cm;
    }
  }
  std::fprintf(stderr, "missing class %s\n", name.c_str());
  std::abort();
}

}  // namespace

int main() {
  std::vector<ArmResult> results;
  for (double rate : kRates) {
    for (bool ladder : {false, true}) {
      std::printf("running steady rate=%.0f ladder=%s ...\n", rate, ladder ? "on" : "off");
      ArmResult r;
      r.rate = rate;
      r.arm = ladder ? "on" : "off";
      r.load = "steady";
      r.metrics = RunExperiment(BaseSpec(rate, ladder));
      results.push_back(std::move(r));
    }
  }
  // Flash crowd: nominal 2 qps (comfortably under capacity) with a 24x step
  // for a 15 s window — a transient the ladder must ride out and recover
  // from, not a sustained regime change.
  for (bool ladder : {false, true}) {
    std::printf("running flash ladder=%s ...\n", ladder ? "on" : "off");
    RunSpec spec = BaseSpec(2.0, ladder);
    spec.arrivals.kind = ArrivalKind::kFlashCrowd;
    spec.arrivals.flash_start_s = 20.0;
    spec.arrivals.flash_duration_s = 15.0;
    spec.arrivals.flash_factor = 24.0;
    ArmResult r;
    r.rate = 2.0;
    r.arm = ladder ? "on" : "off";
    r.load = "flash";
    r.metrics = RunExperiment(spec);
    results.push_back(std::move(r));
  }

  Table table("bench_fig_overload: goodput and per-class tail delay vs offered load");
  table.SetHeader({"load/rate/arm", "goodput", "qps", "rej", "int p99", "int miss", "std p99",
                   "be p99", "be rej", "probes"});
  std::vector<BenchJsonRecord> records;
  for (const ArmResult& r : results) {
    const RunMetrics& m = r.metrics;
    const TenantClassMetrics& interactive = ClassByName(m, "interactive");
    const TenantClassMetrics& standard = ClassByName(m, "standard");
    const TenantClassMetrics& besteffort = ClassByName(m, "besteffort");
    table.AddRow({StrFormat("%s/%.0f/%s", r.load.c_str(), r.rate, r.arm.c_str()),
                  Table::Num(m.goodput_qps, 2), Table::Num(m.throughput_qps, 2),
                  StrFormat("%llu", static_cast<unsigned long long>(m.rejected_queries)),
                  Table::Num(interactive.p99_delay(), 1),
                  StrFormat("%llu", static_cast<unsigned long long>(interactive.missed_deadline)),
                  Table::Num(standard.p99_delay(), 1), Table::Num(besteffort.p99_delay(), 1),
                  StrFormat("%llu", static_cast<unsigned long long>(besteffort.rejected)),
                  Table::Num(m.mean_probes, 2)});
    AddRecords(r, records);
  }
  table.Print();

  // --- Verdicts ---
  // Past saturation (the highest swept rate), the ladder must (1) not lose
  // total goodput, (2) keep the interactive class inside its deadline at p99,
  // and (3) concentrate the shedding on the best-effort class.
  auto find = [&](const std::string& load, double rate, const std::string& arm) -> const RunMetrics& {
    for (const ArmResult& r : results) {
      if (r.load == load && r.rate == rate && r.arm == arm) {
        return r.metrics;
      }
    }
    std::fprintf(stderr, "missing arm %s/%.0f/%s\n", load.c_str(), rate, arm.c_str());
    std::abort();
  };
  double top_rate = kRates.back();
  const RunMetrics& off = find("steady", top_rate, "off");
  const RunMetrics& on = find("steady", top_rate, "on");

  bool goodput_ok = on.goodput_qps >= off.goodput_qps;
  PrintShapeCheck(
      StrFormat("past saturation (%.0f qps): ladder-on total goodput >= ladder-off", top_rate),
      StrFormat("on %.2f vs off %.2f qps", on.goodput_qps, off.goodput_qps), goodput_ok);

  const TenantClassMetrics& on_int = ClassByName(on, "interactive");
  const TenantClassMetrics& off_int = ClassByName(off, "interactive");
  bool tail_ok = on_int.p99_delay() <= on_int.deadline_s;
  PrintShapeCheck(
      "past saturation: ladder keeps interactive p99 inside its deadline",
      StrFormat("on p99 %.1fs vs deadline %.1fs (off p99 %.1fs)", on_int.p99_delay(),
                on_int.deadline_s, off_int.p99_delay()),
      tail_ok);

  const TenantClassMetrics& on_be = ClassByName(on, "besteffort");
  bool shed_ok = on_int.rejected == 0 && ClassByName(on, "standard").rejected == 0 &&
                 on_be.rejected > 0;
  PrintShapeCheck("past saturation: rejections land on best-effort only",
                  StrFormat("int %llu, std %llu, be %llu rejected",
                            static_cast<unsigned long long>(on_int.rejected),
                            static_cast<unsigned long long>(
                                ClassByName(on, "standard").rejected),
                            static_cast<unsigned long long>(on_be.rejected)),
                  shed_ok);

  const RunMetrics& flash_on = find("flash", 2.0, "on");
  const RunMetrics& flash_off = find("flash", 2.0, "off");
  bool flash_ok = flash_on.goodput_qps >= flash_off.goodput_qps;
  PrintShapeCheck("flash crowd: ladder-on goodput >= ladder-off",
                  StrFormat("on %.2f vs off %.2f qps", flash_on.goodput_qps,
                            flash_off.goodput_qps),
                  flash_ok);

  bool ok = goodput_ok && tail_ok && shed_ok && flash_ok;

  BenchJsonRecord summary;
  summary.name = "summary";
  summary.tags = {{"arm", "summary"}};
  summary.metrics = {
      {"num_queries", static_cast<double>(BaseSpec(2.0, false).num_queries)},
      {"num_rates", static_cast<double>(kRates.size())},
      {"top_rate_qps", kRates.back()},
      {"num_classes", static_cast<double>(Tenants().size())},
      {"host_cpus", static_cast<double>(std::max(1u, std::thread::hardware_concurrency()))}};
  records.push_back(std::move(summary));
  WriteBenchJson("BENCH_overload.json", "overload", records,
                 "all metrics are simulation-deterministic and host-independent "
                 "(bit-identical kernels + simulated time)");
  std::printf("wrote BENCH_overload.json (%zu records)\n", records.size());
  return ok ? 0 : 1;
}
