// google-benchmark microbenchmarks for the substrate libraries: embedding,
// vector search (flat vs IVF), tokenizer, F1 scoring, KV-cache allocation,
// and raw engine step throughput.

#include <benchmark/benchmark.h>

#include "src/embed/embedding.h"
#include "src/llm/engine.h"
#include "src/llm/kv_cache.h"
#include "src/quality/f1.h"
#include "src/sim/simulator.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"
#include "src/vectordb/vectordb.h"

namespace metis {
namespace {

std::string MakeText(size_t tokens, uint64_t seed) {
  Vocabulary vocab(seed, 1000);
  Rng rng(seed);
  return vocab.FillerSentence(rng, tokens);
}

void BM_Tokenize(benchmark::State& state) {
  std::string text = MakeText(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Tokenize)->Arg(256)->Arg(1024);

void BM_Embed(benchmark::State& state) {
  EmbeddingModel model(GetEmbeddingModel("cohere-embed-v3-sim"));
  std::string text = MakeText(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Embed(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Embed)->Arg(256)->Arg(1024);

void BM_FlatSearch(benchmark::State& state) {
  EmbeddingModel model(GetEmbeddingModel("cohere-embed-v3-sim"));
  FlatL2Index index(model.dim());
  for (int i = 0; i < state.range(0); ++i) {
    index.Add(i, model.Embed(MakeText(64, static_cast<uint64_t>(i + 10))));
  }
  Embedding q = model.Embed("the quick query about revenue and schedules");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(q, 10));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatSearch)->Arg(500)->Arg(2000);

void BM_IvfSearch(benchmark::State& state) {
  EmbeddingModel model(GetEmbeddingModel("cohere-embed-v3-sim"));
  IvfL2Index index(model.dim(), 16, 4, 7);
  for (int i = 0; i < state.range(0); ++i) {
    index.Add(i, model.Embed(MakeText(64, static_cast<uint64_t>(i + 10))));
  }
  index.Train();
  Embedding q = model.Embed("the quick query about revenue and schedules");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(q, 10));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IvfSearch)->Arg(500)->Arg(2000);

void BM_TokenF1(benchmark::State& state) {
  auto gen = Tokenize(MakeText(64, 3));
  auto gold = Tokenize(MakeText(32, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenF1(gen, gold));
  }
}
BENCHMARK(BM_TokenF1);

void BM_KvCacheAllocFree(benchmark::State& state) {
  KvCacheManager kv(8.0 * kGiB, 16, 131072);
  uint64_t id = 1;
  for (auto _ : state) {
    kv.Allocate(id, 2048);
    kv.Free(id);
    ++id;
  }
}
BENCHMARK(BM_KvCacheAllocFree);

// End-to-end simulated engine throughput: how many simulated requests per
// wall-clock second the DES engine can process.
void BM_EngineSimThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    EngineConfig cfg;
    cfg.model = Mistral7BAwq();
    cfg.kv_pool_bytes = 8.0 * kGiB;
    LlmEngine engine(&sim, cfg, 1);
    int done = 0;
    for (int i = 0; i < 200; ++i) {
      InferenceRequest req;
      req.prompt_tokens = 1500;
      req.output_tokens = 30;
      req.on_complete = [&done](const RequestTiming&) { ++done; };
      engine.Submit(std::move(req));
    }
    sim.Run();
    if (done != 200) {
      state.SkipWithError("engine lost requests");
    }
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_EngineSimThroughput);

}  // namespace
}  // namespace metis

BENCHMARK_MAIN();
