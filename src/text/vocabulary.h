// Deterministic synthetic vocabulary.
//
// The workload generator needs word material with two properties: (1) topical
// words shared between a query and the chunk that answers it, so embedding
// retrieval genuinely works; and (2) filler words that act as noise. Words are
// pseudo-English syllable strings generated from a seeded stream, so corpora
// are reproducible and tokenizer-stable.

#ifndef METIS_SRC_TEXT_VOCABULARY_H_
#define METIS_SRC_TEXT_VOCABULARY_H_

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace metis {

class Vocabulary {
 public:
  // Builds `size` distinct words from the given seed.
  Vocabulary(uint64_t seed, size_t size);

  const std::string& word(size_t i) const { return words_[i % words_.size()]; }
  size_t size() const { return words_.size(); }

  // Samples a word (Zipf-weighted so common fillers repeat, like real text).
  const std::string& Sample(Rng& rng) const;

  // A sentence of `n` filler words.
  std::string FillerSentence(Rng& rng, size_t n) const;

 private:
  std::vector<std::string> words_;
};

// Generates one pseudo-word from an RNG (2-4 syllables).
std::string MakeWord(Rng& rng);

}  // namespace metis

#endif  // METIS_SRC_TEXT_VOCABULARY_H_
