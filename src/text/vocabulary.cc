#include "src/text/vocabulary.h"

#include <unordered_set>

#include "src/common/check.h"

namespace metis {

namespace {

constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",  "k", "l",
                                   "m",  "n",  "p",  "r",  "s",  "t",  "v",  "w", "z",
                                   "br", "cl", "dr", "fl", "gr", "pl", "st", "tr"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
constexpr const char* kCodas[] = {"", "n", "r", "s", "t", "l", "m", "nd", "rk", "st"};

}  // namespace

std::string MakeWord(Rng& rng) {
  int syllables = static_cast<int>(rng.UniformInt(2, 4));
  std::string w;
  for (int i = 0; i < syllables; ++i) {
    w += kOnsets[rng.Index(std::size(kOnsets))];
    w += kVowels[rng.Index(std::size(kVowels))];
    if (i + 1 == syllables) {
      w += kCodas[rng.Index(std::size(kCodas))];
    }
  }
  return w;
}

Vocabulary::Vocabulary(uint64_t seed, size_t size) {
  METIS_CHECK_GT(size, 0u);
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  words_.reserve(size);
  while (words_.size() < size) {
    std::string w = MakeWord(rng);
    if (seen.insert(w).second) {
      words_.push_back(std::move(w));
    }
  }
}

const std::string& Vocabulary::Sample(Rng& rng) const {
  return words_[static_cast<size_t>(rng.Zipf(static_cast<int>(words_.size()), 1.07))];
}

std::string Vocabulary::FillerSentence(Rng& rng, size_t n) const {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      s += ' ';
    }
    s += Sample(rng);
  }
  return s;
}

}  // namespace metis
