// Tokenization for the synthetic corpus.
//
// The paper's pipeline counts tokens for chunking, memory sizing, and F1. We
// use word-level tokens: the synthetic vocabulary is built from word-like
// strings, so words == tokens keeps the whole pipeline self-consistent.

#ifndef METIS_SRC_TEXT_TOKENIZER_H_
#define METIS_SRC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace metis {

// Lowercases, strips surrounding punctuation, splits on whitespace.
std::vector<std::string> Tokenize(std::string_view text);

// Number of tokens Tokenize() would return, without materializing them.
size_t CountTokens(std::string_view text);

// Truncates `text` to at most `max_tokens` tokens (joined by single spaces).
std::string TruncateTokens(std::string_view text, size_t max_tokens);

}  // namespace metis

#endif  // METIS_SRC_TEXT_TOKENIZER_H_
