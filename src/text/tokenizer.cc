#include "src/text/tokenizer.h"

#include "src/common/strings.h"

namespace metis {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  for (const std::string& raw : SplitWords(text)) {
    std::string_view stripped = StripPunct(raw);
    if (!stripped.empty()) {
      out.push_back(ToLowerAscii(stripped));
    }
  }
  return out;
}

size_t CountTokens(std::string_view text) {
  size_t n = 0;
  bool in_token = false;
  for (char c : text) {
    bool ws = (c == ' ' || c == '\t' || c == '\n' || c == '\r');
    if (!ws && !in_token) {
      ++n;
      in_token = true;
    } else if (ws) {
      in_token = false;
    }
  }
  return n;
}

std::string TruncateTokens(std::string_view text, size_t max_tokens) {
  std::vector<std::string> words = SplitWords(text);
  if (words.size() > max_tokens) {
    words.resize(max_tokens);
  }
  return Join(words, " ");
}

}  // namespace metis
