#include "src/profiler/profiler.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/check.h"
#include "src/text/tokenizer.h"

namespace metis {

const char* QueryTaskTypeName(QueryTaskType t) {
  switch (t) {
    case QueryTaskType::kFactual:
      return "factual";
    case QueryTaskType::kSemantic:
      return "semantic";
    case QueryTaskType::kTemporal:
      return "temporal";
    case QueryTaskType::kComparative:
      return "comparative";
  }
  return "factual";
}

QueryTaskType ClassifyTaskType(const std::vector<std::string>& tokens, int* time_bucket_out) {
  bool temporal = false, comparative = false, semantic = false;
  int bucket = -1;
  for (const std::string& t : tokens) {
    if (t == "when") {
      temporal = true;
    } else if (t.size() > 6 && t.compare(0, 6, "period") == 0) {
      // "period3" survives tokenization as one alphanumeric token; a
      // digits-only suffix is the query's time bucket.
      bool digits = true;
      int value = 0;
      for (size_t i = 6; i < t.size(); ++i) {
        if (t[i] < '0' || t[i] > '9') {
          digits = false;
          break;
        }
        value = value * 10 + (t[i] - '0');
      }
      if (digits) {
        temporal = true;
        bucket = value;
      }
    } else if (t == "compare") {
      comparative = true;
    } else if (t == "why" || t == "explain" || t == "summarize") {
      semantic = true;
    }
  }
  if (time_bucket_out != nullptr) {
    *time_bucket_out = bucket;
  }
  if (temporal) return QueryTaskType::kTemporal;
  if (comparative) return QueryTaskType::kComparative;
  if (semantic) return QueryTaskType::kSemantic;
  return QueryTaskType::kFactual;
}

ProfilerParams Gpt4oProfilerParams() {
  ProfilerParams p;
  p.base_error_rate = 0.035;
  p.underspecified_penalty = 0.34;
  p.feedback_gain = 0.30;
  return p;
}

ProfilerParams Llama70BProfilerParams() {
  ProfilerParams p;
  p.base_error_rate = 0.085;
  p.underspecified_penalty = 0.44;
  p.feedback_gain = 0.25;
  return p;
}

QueryProfiler::QueryProfiler(Simulator* sim, ApiLlmClient* api, const DatabaseMetadata* metadata,
                             ProfilerParams params, uint64_t seed)
    : sim_(sim), api_(api), metadata_(metadata), params_(params), rng_(seed ^ 0x50524F46ull) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(api != nullptr);
  METIS_CHECK(metadata != nullptr);
}

double QueryProfiler::EffectiveError(double base) const {
  double factor = 1.0;
  for (size_t i = 0; i < feedback_.size(); ++i) {
    factor *= (1.0 - params_.feedback_gain);
  }
  return base * factor;
}

namespace {

constexpr const char* kNumberWords[] = {"zero", "one", "two",   "three", "four", "five",
                                        "six",  "seven", "eight", "nine",  "ten"};

// Returns the value of the first number word in the tokens, or -1.
int FirstNumberWord(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) {
    for (size_t n = 0; n < std::size(kNumberWords); ++n) {
      if (t == kNumberWords[n]) {
        return static_cast<int>(n);
      }
    }
  }
  return -1;
}

}  // namespace

QueryProfiler::Outcome QueryProfiler::Estimate(const RagQuery& query) {
  ++profiles_;
  std::vector<std::string> tokens = Tokenize(query.text);
  std::unordered_set<std::string> set(tokens.begin(), tokens.end());

  // --- Cue analysis (what a capable LLM reads off the question text) ---
  bool cue_high = set.count("why") > 0 || set.count("explain") > 0 ||
                  set.count("reasons") > 0 || set.count("reason") > 0;
  bool cue_joint = set.count("compare") > 0 || set.count("summarize") > 0 ||
                   set.count("identify") > 0 || set.count("jointly") > 0;
  bool cue_underspecified = set.count("recent") > 0;  // "...the recent records of X".
  // Hybrid-routing cues — RNG-free, so the noise process below is untouched.
  int cue_time_bucket = -1;
  QueryTaskType cue_task = ClassifyTaskType(tokens, &cue_time_bucket);

  int pieces;
  int number_cue = FirstNumberWord(tokens);
  if (number_cue > 0) {
    pieces = number_cue;
  } else if (cue_joint || cue_high) {
    // Estimate from the enumeration: entities are comma/"and"-separated in the
    // raw text; commas survive tokenization as punctuation boundaries, so
    // count separators in the raw string.
    int separators = 0;
    for (char c : query.text) {
      if (c == ',') {
        ++separators;
      }
    }
    pieces = separators > 0 ? separators + 2 : (cue_joint ? 2 : 1);
  } else {
    pieces = 1;
  }

  // --- Noise process ---
  double p_bad = EffectiveError(params_.base_error_rate);
  if (cue_underspecified) {
    double penalty = params_.underspecified_penalty;
    if (!feedback_.empty()) {
      // Feedback teaches the dataset's typical structure, softening guesses.
      penalty *= (1.0 - 0.20 * static_cast<double>(feedback_.size()));
    }
    p_bad = std::min(1.0, p_bad + penalty);
  }
  bool bad = rng_.Bernoulli(p_bad);

  QueryProfile profile;
  profile.high_complexity = cue_high;
  profile.requires_joint = cue_joint;
  profile.task_type = cue_task;
  profile.time_bucket = cue_time_bucket;

  if (cue_underspecified) {
    // No quantity cue: the profiler must guess the piece count. Feedback
    // prompts anchor the guess to the dataset's typical structure.
    if (learned_pieces_mean_ > 0) {
      pieces = std::max(1, static_cast<int>(learned_pieces_mean_ + rng_.Normal(0, 0.8) + 0.5));
    } else {
      pieces = 1 + rng_.Poisson(1.0);
    }
  }

  if (bad) {
    // Materially wrong profile: flip a dimension and skew the counts.
    double which = rng_.NextDouble();
    if (which < 0.35) {
      profile.requires_joint = !profile.requires_joint;
    } else if (which < 0.65) {
      profile.high_complexity = !profile.high_complexity;
    }
    pieces += static_cast<int>(rng_.UniformInt(2, 4)) *
              (rng_.Bernoulli(0.5) ? 1 : -1);
  }
  profile.num_info_pieces = std::clamp(pieces, 1, 10);

  // --- Summary-length range (uses metadata: bigger chunks need bigger
  // budgets to survive compression) ---
  double chunk_factor =
      std::clamp(static_cast<double>(metadata_->chunk_size_tokens) / 512.0, 0.5, 1.5);
  int base = profile.high_complexity ? 50 : 30;
  int span = profile.high_complexity ? 20 + 8 * profile.num_info_pieces : 25;
  profile.summary_min_tokens =
      std::clamp(static_cast<int>(base * chunk_factor), 30, 150);
  profile.summary_max_tokens =
      std::clamp(profile.summary_min_tokens + static_cast<int>(span * chunk_factor), 40, 200);

  // --- Confidence (log-prob proxy): correlates with profile goodness ---
  if (bad) {
    profile.confidence = rng_.Bernoulli(0.13) ? rng_.Uniform(0.90, 0.96)
                                              : rng_.Uniform(0.55, 0.90);
  } else {
    profile.confidence = rng_.Bernoulli(0.012) ? rng_.Uniform(0.80, 0.90)
                                               : rng_.Uniform(0.905, 0.995);
  }

  Outcome out;
  out.profile = profile;
  out.was_bad = bad;
  return out;
}

void QueryProfiler::ProfileAsync(const RagQuery& query, std::function<void(Outcome)> done) {
  METIS_CHECK(done != nullptr);
  Outcome out = Estimate(query);

  int input_tokens = static_cast<int>(CountTokens(query.text)) +
                     static_cast<int>(CountTokens(metadata_->description)) + 40 /*prompt*/ +
                     static_cast<int>(feedback_.size()) * params_.feedback_prompt_tokens;
  // Everything except the query itself (instructions, metadata, retained
  // feedback prompts) is a stable prefix the provider caches: billed at ~25%.
  api_->Call(input_tokens, params_.profile_output_tokens,
             [out, done = std::move(done)](double latency) mutable {
               out.delay_seconds = latency;
               done(std::move(out));
             },
             /*billed_input_frac=*/0.25);
}

void QueryProfiler::AddGoldenFeedback(const RagQuery& query, int true_pieces,
                                      int true_summary_tokens) {
  (void)query;
  feedback_.push_back(Feedback{true_pieces, true_summary_tokens});
  while (feedback_.size() > static_cast<size_t>(ProfilerParams::kMaxFeedbackPrompts)) {
    feedback_.pop_front();
  }
  double pieces_sum = 0;
  double summary_sum = 0;
  for (const auto& f : feedback_) {
    pieces_sum += f.pieces;
    summary_sum += f.summary_tokens;
  }
  learned_pieces_mean_ = pieces_sum / static_cast<double>(feedback_.size());
  learned_summary_mean_ = summary_sum / static_cast<double>(feedback_.size());
}

}  // namespace metis
