// LLM query profiler (paper §4.1, §5).
//
// METIS asks a large LLM four questions about each incoming query: is it
// complex, does it need joint reasoning, how many pieces of information does
// it need, and how long should per-chunk summaries be. The profiler sees only
// the query text and the database metadata (a one-line corpus description +
// chunk size) — never the ground-truth profile.
//
// The reproduction implements the profiler as a natural-language cue analyzer
// over the workload's query grammar ("why"/"explain" => complex; "compare"/
// "summarize" => joint; enumerations and number words => pieces), with a
// model-grade noise process layered on top:
//   - underspecified queries (no quantity cues) force the profiler to guess,
//   - each profiler model has a base error rate (GPT-4o low, open models
//     higher),
//   - the output carries a log-prob-style confidence score that correlates
//     with profile goodness, enabling the §5 confidence-threshold fallback,
//   - golden-configuration feedback prompts (every 30 queries, last 4 kept)
//     shrink the error rate and teach the profiler the dataset's typical
//     structure, reproducing the Fig. 14 improvement.
//
// Latency and dollar cost go through ApiLlmClient: the profiler reads ~100x
// fewer tokens than the RAG context, which is why its delay stays at ~1/10 of
// the end-to-end response delay (Fig. 18).

#ifndef METIS_SRC_PROFILER_PROFILER_H_
#define METIS_SRC_PROFILER_PROFILER_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/llm/engine.h"
#include "src/sim/simulator.h"
#include "src/vectordb/vectordb.h"
#include "src/workload/dataset.h"

namespace metis {

// Task type the hybrid retrieval router keys its per-backend weights on
// (src/core/hybrid_router.h): factual lookups favor exact-term matching,
// semantic/explanatory questions favor the dense embedding space, temporal
// questions carry a time cue the metadata filter can act on, and comparative
// questions spread their evidence across both spaces.
enum class QueryTaskType : uint8_t {
  kFactual = 0,
  kSemantic = 1,
  kTemporal = 2,
  kComparative = 3,
};
inline constexpr int kNumQueryTaskTypes = 4;

// Stable lowercase name ("factual", ...) for logs and bench tags.
const char* QueryTaskTypeName(QueryTaskType t);

// RNG-free task-type classification over tokenized query text (the keyword
// cues of the workload grammar). Priority: temporal ("when", or a
// "period<digits>" token — which also yields the query's time bucket) >
// comparative ("compare") > semantic ("why"/"explain"/"summarize") > factual.
// `time_bucket_out` (optional) receives the parsed period bucket, or -1.
QueryTaskType ClassifyTaskType(const std::vector<std::string>& tokens,
                               int* time_bucket_out = nullptr);

// The four estimated dimensions (paper Fig. 7) plus the confidence score.
struct QueryProfile {
  bool high_complexity = false;
  bool requires_joint = false;
  int num_info_pieces = 1;     // 1..10.
  int summary_min_tokens = 30; // 30..200 range estimate.
  int summary_max_tokens = 60;
  double confidence = 1.0;     // From output log-probs, 0..1.
  // Hybrid-routing cues, classified RNG-free from the query text (so adding
  // them never perturbs the noise process above).
  QueryTaskType task_type = QueryTaskType::kFactual;
  int time_bucket = -1;  // Parsed "period<b>" cue, or -1 when absent.
};

struct ProfilerParams {
  // Baseline probability that the profile comes out materially wrong.
  double base_error_rate = 0.04;
  // Extra bad-profile probability when the query text lacks quantity cues.
  double underspecified_penalty = 0.45;
  // Each golden-feedback prompt multiplies the error terms by (1 - gain),
  // up to kMaxFeedbackPrompts prompts (paper keeps the last four).
  double feedback_gain = 0.16;
  // Output tokens of the profile completion ("short binary decisions", §4.2).
  int profile_output_tokens = 8;
  // Tokens of each retained feedback prompt added to the profiler input.
  int feedback_prompt_tokens = 90;

  static constexpr int kMaxFeedbackPrompts = 4;
};

// Per-model presets.
ProfilerParams Gpt4oProfilerParams();
ProfilerParams Llama70BProfilerParams();

class QueryProfiler {
 public:
  struct Outcome {
    QueryProfile profile;
    double delay_seconds = 0;  // Profiler API latency for this query.
    bool was_bad = false;      // Ground-truth label used by Fig. 9 analysis.
  };

  QueryProfiler(Simulator* sim, ApiLlmClient* api, const DatabaseMetadata* metadata,
                ProfilerParams params, uint64_t seed);

  // Asynchronous profile with modeled API latency.
  void ProfileAsync(const RagQuery& query, std::function<void(Outcome)> done);

  // Pure estimate without latency (tests and the AdaptiveRAG* baseline's
  // offline analysis).
  Outcome Estimate(const RagQuery& query);

  // Golden-configuration feedback (paper §5): the most accurate answer for a
  // recently served query is shown back to the profiler. `true_pieces` and
  // `true_summary_tokens` leak only what that answer reveals: how many facts
  // it drew on and how much summary material those answers actually used.
  void AddGoldenFeedback(const RagQuery& query, int true_pieces, int true_summary_tokens);

  int feedback_prompts() const { return static_cast<int>(feedback_.size()); }
  uint64_t profiles_produced() const { return profiles_; }

 private:
  double EffectiveError(double base) const;

  Simulator* sim_;
  ApiLlmClient* api_;
  const DatabaseMetadata* metadata_;
  ProfilerParams params_;
  Rng rng_;
  uint64_t profiles_ = 0;

  struct Feedback {
    int pieces;
    int summary_tokens;
  };
  std::deque<Feedback> feedback_;   // Last kMaxFeedbackPrompts entries.
  double learned_pieces_mean_ = 0;  // Dataset structure learned from feedback.
  double learned_summary_mean_ = 0;
};

}  // namespace metis

#endif  // METIS_SRC_PROFILER_PROFILER_H_
