// Response-quality metric: token-level F1 (paper §2).
//
// F1 is the harmonic mean of precision (fraction of generated tokens that are
// correct) and recall (fraction of ground-truth tokens that were generated),
// computed over bag-of-token overlap — the standard SQuAD-style definition the
// paper adopts.

#ifndef METIS_SRC_QUALITY_F1_H_
#define METIS_SRC_QUALITY_F1_H_

#include <string>
#include <string_view>
#include <vector>

namespace metis {

struct F1Breakdown {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t overlap = 0;
  size_t generated_tokens = 0;
  size_t gold_tokens = 0;
};

// Multiset token overlap F1 between generated and gold token lists.
F1Breakdown TokenF1(const std::vector<std::string>& generated,
                    const std::vector<std::string>& gold);

// Convenience: tokenizes both texts first.
F1Breakdown TextF1(std::string_view generated, std::string_view gold);

}  // namespace metis

#endif  // METIS_SRC_QUALITY_F1_H_
