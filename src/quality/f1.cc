#include "src/quality/f1.h"

#include <unordered_map>

#include "src/text/tokenizer.h"

namespace metis {

F1Breakdown TokenF1(const std::vector<std::string>& generated,
                    const std::vector<std::string>& gold) {
  F1Breakdown out;
  out.generated_tokens = generated.size();
  out.gold_tokens = gold.size();
  if (generated.empty() || gold.empty()) {
    return out;
  }

  std::unordered_map<std::string, int> gold_counts;
  for (const auto& t : gold) {
    ++gold_counts[t];
  }
  size_t overlap = 0;
  for (const auto& t : generated) {
    auto it = gold_counts.find(t);
    if (it != gold_counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  out.overlap = overlap;
  if (overlap == 0) {
    return out;
  }
  out.precision = static_cast<double>(overlap) / static_cast<double>(generated.size());
  out.recall = static_cast<double>(overlap) / static_cast<double>(gold.size());
  out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  return out;
}

F1Breakdown TextF1(std::string_view generated, std::string_view gold) {
  return TokenF1(Tokenize(generated), Tokenize(gold));
}

}  // namespace metis
