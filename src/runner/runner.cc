#include "src/runner/runner.h"

#include <deque>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/retrieval_batcher.h"
#include "src/vectordb/mutable_index.h"

namespace metis {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kVllmFixed:
      return "vllm_fixed";
    case SystemKind::kParrotFixed:
      return "parrot*";
    case SystemKind::kAdaptiveRag:
      return "adaptive_rag*";
    case SystemKind::kMetis:
      return "metis";
  }
  return "unknown";
}

double DefaultKvPoolGib(const ModelSpec& model) {
  // A40 server: 48 GiB/GPU at vLLM's 0.9 utilization, minus quantized weights
  // and activation workspace, per GPU; tensor-parallel models pool GPUs.
  double per_gpu = 48.0 * 0.9 - 4.0;
  double pool = per_gpu * model.num_gpus - model.weight_bytes / kGiB;
  // The evaluation server co-hosts both serving models plus fragmentation,
  // activation headroom and worst-case reservations (§7.1), so a deployment
  // sees ~12% of the residual as usable KV pool — which keeps KV memory a
  // binding-under-load resource, matching the paper's Fig. 8 regime
  // (single-digit-GiB free memory against multi-GiB stuff prompts).
  pool *= 0.12;
  return std::max(pool, 2.5);
}

namespace {

// Cache-key encoding of the retrieval backend configuration: two databases
// built under different options must not share a cache entry — and options
// MakeIndex ignores must not split one. The flat backend ignores every
// IVF-only field, so its key carries only backend + shards (an nlist sweep
// over flat-backend specs reuses one dataset); %.17g round-trips doubles
// exactly, so near-identical distance_ratio values cannot alias.
std::string IndexOptionsKey(const RetrievalIndexOptions& o) {
  // Quantized-mirror build knobs apply to every backend: a quant-enabled and
  // a quant-free build of the same corpus must not alias (the calibrator's
  // tier sweep keys off index().quantizers()).
  // The lexical flag splits the cache too: a lexical-enabled database builds
  // (and serves from) a BM25 inverted index a dense-only build lacks.
  std::string quant = StrFormat("q%d%d:%zu:%zu:%zu:lex%d", o.quant.sq ? 1 : 0,
                                o.quant.pq ? 1 : 0, o.quant.pq_m,
                                o.quant.pq_train_rows, o.quant.pq_train_iters,
                                o.lexical ? 1 : 0);
  if (o.backend == RetrievalIndexOptions::Backend::kFlat) {
    return StrFormat("b%d:s%zu:%s", static_cast<int>(o.backend), o.shards,
                     quant.c_str());
  }
  return StrFormat("b%d:s%zu:l%zu:p%zu:a%d:m%zu:x%zu:r%.17g:t%llu:%s",
                   static_cast<int>(o.backend), o.shards, o.nlist, o.nprobe,
                   o.adaptive.enabled ? 1 : 0, o.adaptive.min_probes, o.adaptive.max_probes,
                   o.adaptive.distance_ratio,
                   static_cast<unsigned long long>(o.train_seed), quant.c_str());
}

// Mutex-guarded bounded dataset cache (benches may call runners from pool
// threads; long bench binaries sweep many corpora). Eviction is
// oldest-insertion-first; evicted datasets stay alive for whoever still holds
// their shared_ptr.
struct DatasetCache {
  using Key = std::tuple<std::string, int, std::string, uint64_t, std::string>;
  std::mutex mu;
  std::map<Key, std::shared_ptr<const Dataset>> entries;
  std::deque<Key> insertion_order;
};

DatasetCache& TheDatasetCache() {
  static DatasetCache* cache = new DatasetCache;  // Leaked: process-lifetime.
  return *cache;
}

// The one generation recipe behind both the cache and the private-instance
// path in RunMixedExperiment: the duplicate-dataset fix there relies on a
// fresh instance being deterministically identical to the cached one, so the
// recipe must live in exactly one place.
std::shared_ptr<Dataset> GenerateDatasetUncached(
    const std::string& dataset_name, int num_queries, const std::string& embedding_model,
    uint64_t seed, const RetrievalIndexOptions& index_options) {
  DatasetGenerator generator(GetDatasetProfile(dataset_name), seed);
  return generator.Generate(num_queries, embedding_model, index_options);
}

}  // namespace

std::shared_ptr<const Dataset> GetOrGenerateDataset(const std::string& dataset_name,
                                                    int num_queries,
                                                    const std::string& embedding_model,
                                                    uint64_t seed,
                                                    const RetrievalIndexOptions& index_options) {
  DatasetCache& cache = TheDatasetCache();
  DatasetCache::Key key{dataset_name, num_queries, embedding_model, seed,
                        IndexOptionsKey(index_options)};
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      return it->second;
    }
  }
  // Generate outside the lock: generation is seconds-long, and concurrent
  // misses on distinct keys must not serialize. Two racing misses on the SAME
  // key both generate (deterministically identical) datasets; the first
  // insert wins and the loser adopts it.
  std::shared_ptr<const Dataset> ds =
      GenerateDatasetUncached(dataset_name, num_queries, embedding_model, seed, index_options);
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.entries.emplace(key, ds);
  if (!inserted) {
    return it->second;
  }
  cache.insertion_order.push_back(key);
  while (cache.entries.size() > kDatasetCacheMaxEntries && !cache.insertion_order.empty()) {
    cache.entries.erase(cache.insertion_order.front());
    cache.insertion_order.pop_front();
  }
  return ds;
}

void ClearDatasetCache() {
  DatasetCache& cache = TheDatasetCache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
  cache.insertion_order.clear();
}

std::vector<RagConfig> FixedConfigMenu(const DatasetProfile& profile) {
  // A practitioner's grid: every method at small/medium/large retrieval
  // widths, map_reduce at two intermediate lengths. Hand-picked offline, as
  // real deployments do (§1).
  std::vector<int> chunk_grid;
  if (profile.max_facts <= 2) {
    chunk_grid = {1, 2, 5, 10};
  } else {
    chunk_grid = {2, 5, 10, 20, 30};
  }
  std::vector<RagConfig> menu;
  for (int k : chunk_grid) {
    menu.push_back(RagConfig{SynthesisMethod::kMapRerank, k, 0});
    menu.push_back(RagConfig{SynthesisMethod::kStuff, k, 0});
    menu.push_back(RagConfig{SynthesisMethod::kMapReduce, k, 60});
    menu.push_back(RagConfig{SynthesisMethod::kMapReduce, k, 150});
  }
  return menu;
}

namespace {

// Per-dataset policy stack sharing one engine + simulator.
struct DatasetStack {
  std::shared_ptr<const Dataset> dataset;
  Dataset* live_dataset = nullptr;  // Non-null when this run may mutate it.
  std::unique_ptr<RetrievalBatcher> batcher;
  std::unique_ptr<SynthesisExecutor> executor;
  std::unique_ptr<ApiLlmClient> profiler_api;
  std::unique_ptr<QueryProfiler> profiler;
  std::unique_ptr<JointScheduler> scheduler;
  std::unique_ptr<ServingSystem> system;
  std::vector<QueryRecord> records;
};

struct Stack {
  Simulator sim;
  std::unique_ptr<LlmEngine> engine;
  std::unique_ptr<BehaviorModel> behavior;
  std::unique_ptr<RetrievalBatcher> batcher;
  std::unique_ptr<SynthesisExecutor> executor;
  std::unique_ptr<ApiLlmClient> profiler_api;
  std::unique_ptr<QueryProfiler> profiler;
  std::unique_ptr<JointScheduler> scheduler;
  std::unique_ptr<OverloadController> overload;
  std::unique_ptr<ServingSystem> system;
};

// Routes each query to an SLO class with probability proportional to
// rate_share, on its own Rng stream so arrival times are untouched. Empty
// `tenants` leaves every query in the implicit default class (tenant 0) and
// draws nothing — bit-for-bit parity with the pre-tenant runner.
void AssignTenants(std::vector<RagQuery>& queries, const std::vector<TenantClass>& tenants,
                   uint64_t seed) {
  if (tenants.empty()) {
    return;
  }
  std::vector<double> cumulative;
  double total = 0;
  for (const TenantClass& t : tenants) {
    total += std::max(0.0, t.rate_share);
    cumulative.push_back(total);
  }
  Rng rng(seed ^ 0x7E4A47ull);
  for (RagQuery& q : queries) {
    if (total <= 0) {
      q.tenant = 0;
      continue;
    }
    double u = rng.NextDouble() * total;
    size_t idx = std::lower_bound(cumulative.begin(), cumulative.end(), u) -
                 cumulative.begin();
    q.tenant = static_cast<int>(std::min(idx, tenants.size() - 1));
  }
}

// Shared-query shaping (SharedWorkloadOptions): replaces hot_fraction of the
// stream with duplicates of the first num_hot queries, on its own Rng stream.
// A duplicate is a full template copy — text, golds, id — so retrieval,
// generation behaviour, and F1 scoring all see the template query (query ids
// therefore repeat in the records); only the slot's arrival time and tenant
// survive. Called after tenants are assigned and before arrivals, and a no-op
// (no draws) at hot_fraction == 0.
void ApplySharedWorkload(std::vector<RagQuery>& queries, const SharedWorkloadOptions& options,
                         uint64_t seed) {
  if (options.hot_fraction <= 0 || queries.empty()) {
    return;
  }
  int num_hot = std::clamp(options.num_hot, 1, static_cast<int>(queries.size()));
  std::vector<RagQuery> templates(queries.begin(), queries.begin() + num_hot);
  Rng rng(seed ^ 0x4077D05Eull);
  for (RagQuery& q : queries) {
    if (!rng.Bernoulli(options.hot_fraction)) {
      continue;
    }
    const RagQuery& t = templates[rng.Index(templates.size())];
    SimTime arrival = q.arrival_time;
    int tenant = q.tenant;
    q = t;
    q.arrival_time = arrival;
    q.tenant = tenant;
  }
}

// Shared aggregation over a run's records: overall + per-class Samples,
// duration window, throughput (completions only), goodput (in-deadline
// completions), and rejection accounting. With overload control off there
// are no rejected records and no deadlines, so throughput == goodput and
// every value matches the historical aggregation bit-for-bit.
void AggregateRecords(RunMetrics& metrics, const std::vector<TenantClass>& tenants,
                      SimTime first_arrival) {
  metrics.class_metrics.clear();
  if (tenants.empty()) {
    metrics.class_metrics.emplace_back();  // Implicit "default" class.
  } else {
    for (const TenantClass& t : tenants) {
      TenantClassMetrics cm;
      cm.name = t.name;
      cm.priority = t.priority;
      cm.deadline_s = t.deadline_s;
      metrics.class_metrics.push_back(std::move(cm));
    }
  }
  SimTime last_finish = first_arrival;
  uint64_t good_total = 0;
  std::vector<uint64_t> good_per_class(metrics.class_metrics.size(), 0);
  for (const QueryRecord& rec : metrics.records) {
    size_t c = rec.tenant >= 0 &&
                       static_cast<size_t>(rec.tenant) < metrics.class_metrics.size()
                   ? static_cast<size_t>(rec.tenant)
                   : 0;
    TenantClassMetrics& cm = metrics.class_metrics[c];
    ++cm.offered;
    if (rec.rejected) {
      ++cm.rejected;
      ++metrics.rejected_queries;
      continue;
    }
    ++cm.completed;
    cm.delays.Add(rec.e2e_delay);
    if (cm.deadline_s > 0 && rec.e2e_delay > cm.deadline_s) {
      ++cm.missed_deadline;
    } else {
      ++good_total;
      ++good_per_class[c];
    }
    if (rec.depth_shed) {
      ++cm.depth_shed;
    }
    if (rec.synthesis_degraded) {
      ++cm.synthesis_degraded;
    }
    if (rec.precision_shed) {
      ++cm.precision_shed;
    }
    metrics.delays.Add(rec.e2e_delay);
    metrics.f1s.Add(rec.result.f1);
    if (rec.profiler_delay > 0) {
      metrics.profiler_delays.Add(rec.profiler_delay);
      if (rec.e2e_delay > 0) {
        metrics.profiler_fracs.Add(rec.profiler_delay / rec.e2e_delay);
      }
    }
    last_finish = std::max(last_finish, rec.finish_time);
  }
  metrics.sim_duration = std::max(1e-9, last_finish - first_arrival);
  uint64_t completed_total = 0;
  for (size_t c = 0; c < metrics.class_metrics.size(); ++c) {
    TenantClassMetrics& cm = metrics.class_metrics[c];
    completed_total += cm.completed;
    cm.goodput_qps = static_cast<double>(good_per_class[c]) / metrics.sim_duration;
  }
  metrics.throughput_qps = static_cast<double>(completed_total) / metrics.sim_duration;
  metrics.goodput_qps = static_cast<double>(good_total) / metrics.sim_duration;
}

// Schedules the spec'd ingest stream into `sim`. Op times come from the same
// arrival-process machinery as query arrivals; the insert/delete choice,
// insert contents, and delete victims come from a dedicated Rng stream.
// Delete victims are drawn at EXECUTION time from the then-live pool — still
// deterministic, because the simulator fires events in timestamp order. The
// closure state (victim pool, Rng) is shared across ops via shared_ptrs.
void ScheduleIngest(Simulator& sim, Dataset* dataset, const IngestOptions& opts,
                    uint64_t seed) {
  VectorDatabase* db = &dataset->mutable_db();
  METIS_CHECK(db->mutable_index() != nullptr);
  METIS_CHECK_GT(opts.rate, 0);
  // Deletable pool: live chunks, minus gold-bearing ones unless delete_gold
  // (so F1 stays comparable with a static run of the same queries).
  auto victims = std::make_shared<std::vector<ChunkId>>();
  std::unordered_set<ChunkId> gold;
  if (!opts.delete_gold) {
    for (const RagQuery& q : dataset->queries()) {
      for (int32_t fid : q.gold_fact_ids) {
        gold.insert(dataset->fact(fid).chunk_id);
      }
    }
  }
  for (ChunkId id = 0; id < static_cast<ChunkId>(db->num_chunks()); ++id) {
    if (db->chunk_live(id) && gold.count(id) == 0) {
      victims->push_back(id);
    }
  }
  uint64_t op_state = seed ^ 0x16357ull;
  auto rng = std::make_shared<Rng>(SplitMix64(op_state));
  uint64_t time_state = seed ^ 0x71A357ull;
  Rng time_rng(SplitMix64(time_state));
  std::vector<SimTime> times = ArrivalTimesFor(opts.arrivals, time_rng, opts.num_ops, opts.rate);
  const int chunk_tokens = dataset->profile().chunk_tokens;
  const double insert_fraction = opts.insert_fraction;
  for (SimTime t : times) {
    sim.ScheduleAt(t, [db, victims, rng, chunk_tokens, insert_fraction]() {
      if (rng->Bernoulli(insert_fraction) || victims->empty()) {
        // A synthetic filler chunk out of unique pseudo-words: it lands in
        // its own corner of embedding space, like the generator's own filler.
        Chunk c;
        std::string text;
        for (int w = 0; w < 12; ++w) {
          if (w > 0) {
            text += ' ';
          }
          text += StrFormat("ing%llx", static_cast<unsigned long long>(rng->NextU64()));
        }
        c.text = std::move(text);
        c.token_count = chunk_tokens;
        ChunkId id = db->InsertChunks({std::move(c)}).front();
        victims->push_back(id);  // Freshly inserted chunks are deletable too.
      } else {
        size_t pick = rng->Index(victims->size());
        ChunkId id = (*victims)[pick];
        (*victims)[pick] = victims->back();
        victims->pop_back();
        METIS_CHECK_EQ(db->DeleteChunks({id}), 1u);
      }
    });
  }
}

// End-of-run snapshot of the mutable index's counters into RunMetrics::ingest
// (no-op for static-index runs, leaving the zeros).
void FillIngestMetrics(RunMetrics& metrics, const VectorDatabase& db) {
  const MutableIndex* mi = db.mutable_index();
  if (mi == nullptr) {
    return;
  }
  MutableIndexStats s = mi->stats();
  metrics.ingest.inserts = s.inserts;
  metrics.ingest.deletes = s.deletes;
  metrics.ingest.seals = s.seals;
  metrics.ingest.compactions = s.compactions;
  metrics.ingest.retrains = s.retrains;
  metrics.ingest.live_chunks = s.live_rows;
  metrics.ingest.segments = s.open_segments;
  metrics.ingest.memtable_rows = s.memtable_rows;
  metrics.ingest.tombstones = s.tombstones;
}

}  // namespace

JointSchedulerOptions EffectiveSchedulerOptions(const MixedRunSpec& spec, size_t d,
                                                const Dataset& dataset) {
  JointSchedulerOptions options = spec.scheduler;
  if (!spec.per_dataset_depth) {
    return options;  // Ablation off: the shared curve, bit-for-bit.
  }
  if (d < spec.per_dataset_scheduler.size() && spec.per_dataset_scheduler[d].has_value()) {
    return *spec.per_dataset_scheduler[d];
  }
  DepthCalibrator calibrator(spec.calibrator);
  const IvfL2Index* ivf = dataset.db().ivf_index();
  options.depth = spec.depth_calibration == MixedRunSpec::DepthCalibration::kOffline
                      ? calibrator.Calibrate(dataset)
                      : calibrator.DeriveFromProfile(dataset.profile(),
                                                     ivf != nullptr ? ivf->nlist() : 0);
  // Fourth calibration axis: per-dataset hybrid backend weights. Only refines
  // an already-enabled router table (hybrid off stays bit-identical), and
  // only under offline calibration — the weight sweep needs the holdout's
  // gold labels, like the tier sweep.
  if (options.hybrid.enabled &&
      spec.depth_calibration == MixedRunSpec::DepthCalibration::kOffline &&
      dataset.db().lexical_index() != nullptr) {
    options.hybrid = calibrator.CalibrateHybridWeights(dataset, options.hybrid);
  }
  return options;
}

std::vector<RunMetrics> RunMixedExperiment(const MixedRunSpec& spec) {
  METIS_CHECK(!spec.datasets.empty());
  METIS_CHECK(!spec.fixed_configs.empty());
  const bool ingesting = spec.ingest.enabled && spec.ingest.num_ops > 0;
  if (ingesting) {
    METIS_CHECK(spec.retrieval.mutable_index);  // Live ingest needs the mutable index.
  }

  Simulator sim;
  const ModelSpec& model = GetModelSpec(spec.serving_model);
  EngineConfig ecfg;
  ecfg.model = model;
  double pool_gib = spec.kv_pool_gib > 0 ? spec.kv_pool_gib : DefaultKvPoolGib(model);
  ecfg.kv_pool_bytes = pool_gib * kGiB;
  ecfg.max_batched_tokens = spec.max_batched_tokens;
  bool batching = spec.system == SystemKind::kParrotFixed || spec.system == SystemKind::kMetis;
  if (spec.override_prefix_sharing.has_value()) {
    batching = *spec.override_prefix_sharing;
  }
  ecfg.prefix_sharing = batching;
  ecfg.policy = batching ? AdmissionPolicy::kGroupAware : AdmissionPolicy::kFcfs;
  if (spec.scheduler.cross_query_prefix) {
    // Retention is an engine-wide property, so the SHARED engine takes the
    // top-level scheduler's window (per-stack overrides only steer grouping).
    ecfg.prefix_retention_s = spec.scheduler.prefix_retention_s;
  }
  LlmEngine engine(&sim, ecfg, spec.seed);
  BehaviorModel behavior(BehaviorParams{}, spec.seed ^ 0xBE4A11ull);

  // One controller for the shared engine: every METIS stack feeds it, so the
  // ladder reacts to the aggregate backlog across the whole mix.
  std::unique_ptr<OverloadController> overload;
  if (spec.overload.enabled && spec.system == SystemKind::kMetis) {
    overload = std::make_unique<OverloadController>(&engine, spec.tenants, spec.overload);
  }

  std::vector<DatasetStack> stacks(spec.datasets.size());
  std::vector<JointSchedulerOptions> stack_options(spec.datasets.size());
  std::map<std::string, size_t> name_count;
  for (size_t d = 0; d < spec.datasets.size(); ++d) {
    DatasetStack& ds = stacks[d];
    if (spec.retrieval.mutable_index) {
      // Mutable-index stacks always own a private instance: the ingest stream
      // mutates each stack's database independently, and cached corpora must
      // stay immutable (same reasoning as RunExperiment).
      std::shared_ptr<Dataset> priv =
          GenerateDatasetUncached(spec.datasets[d], spec.queries_per_dataset,
                                  spec.embedding_model, spec.seed, spec.retrieval);
      ds.live_dataset = priv.get();
      ds.dataset = priv;
    } else if (name_count[spec.datasets[d]]++ == 0) {
      ds.dataset = GetOrGenerateDataset(spec.datasets[d], spec.queries_per_dataset,
                                        spec.embedding_model, spec.seed, spec.retrieval);
    } else {
      // Repeated dataset name: the cache would hand every occurrence the SAME
      // Dataset (and index), commingling per-stack probe accounting. Give
      // repeats a private instance — generation is deterministic, so contents
      // (and therefore results) are identical to the cached one.
      ds.dataset = GenerateDatasetUncached(spec.datasets[d], spec.queries_per_dataset,
                                           spec.embedding_model, spec.seed, spec.retrieval);
    }
    // May probe the stack's index (offline calibration); probe stats are
    // reset below, after every stack is built.
    stack_options[d] = EffectiveSchedulerOptions(spec, d, *ds.dataset);
    const JointSchedulerOptions& scheduler_options = stack_options[d];
    RetrievalQuality retrieval_quality = RetrievalQualityFromOptions(scheduler_options);
    if (scheduler_options.coalesce_retrieval) {
      ds.batcher = std::make_unique<RetrievalBatcher>(&sim, &ds.dataset->db(),
                                                      SynthesisExecutor::kRetrievalSeconds,
                                                      retrieval_quality);
    }
    ds.executor = std::make_unique<SynthesisExecutor>(&sim, &engine, &behavior,
                                                      ds.dataset.get(),
                                                      spec.seed ^ 0x5E1Full, ds.batcher.get());
    ds.executor->set_retrieval_quality(retrieval_quality);
    // Corpus-salted group keys keep cross-dataset chunk ids from aliasing on
    // the shared engine (SynthesisExecutor::ChunkPrefixGroup).
    ds.executor->set_cross_query_prefix(scheduler_options.cross_query_prefix);
    auto sink = [records = &ds.records](QueryRecord rec) { records->push_back(std::move(rec)); };

    RagConfig fixed = spec.fixed_configs[std::min(d, spec.fixed_configs.size() - 1)];
    const bool needs_profiler =
        spec.system == SystemKind::kAdaptiveRag || spec.system == SystemKind::kMetis;
    if (needs_profiler) {
      ds.profiler_api = std::make_unique<ApiLlmClient>(&sim, GetModelSpec(spec.profiler_model),
                                                       spec.seed ^ (0xA91ull + d));
      ProfilerParams pparams = spec.profiler_model == "gpt-4o" ? Gpt4oProfilerParams()
                                                               : Llama70BProfilerParams();
      ds.profiler = std::make_unique<QueryProfiler>(&sim, ds.profiler_api.get(),
                                                    &ds.dataset->db().metadata(), pparams,
                                                    spec.seed ^ (0x9867ull + d));
      ds.scheduler = std::make_unique<JointScheduler>(&engine, ds.executor.get(), 10,
                                                      scheduler_options);
    }
    switch (spec.system) {
      case SystemKind::kVllmFixed:
        ds.system = std::make_unique<FixedConfigSystem>(
            &sim, ds.executor.get(), fixed,
            StrFormat("vllm[%s]", RagConfigToString(fixed).c_str()), sink);
        break;
      case SystemKind::kParrotFixed:
        ds.system = std::make_unique<FixedConfigSystem>(
            &sim, ds.executor.get(), fixed,
            StrFormat("parrot*[%s]", RagConfigToString(fixed).c_str()), sink);
        break;
      case SystemKind::kAdaptiveRag:
        ds.system = std::make_unique<AdaptiveRagSystem>(&sim, ds.executor.get(),
                                                        ds.profiler.get(), ds.scheduler.get(),
                                                        sink);
        break;
      case SystemKind::kMetis: {
        MetisSystem::Options opts = spec.metis;
        opts.output_token_estimate = ds.dataset->profile().max_output_tokens;
        ds.system = std::make_unique<MetisSystem>(&sim, ds.executor.get(), ds.profiler.get(),
                                                  ds.scheduler.get(), ds.dataset.get(), opts,
                                                  sink, overload.get());
        break;
      }
    }
  }

  // Every stack owns a distinct Dataset instance (repeats get private
  // copies), so this zeroes each index's probe counters exactly once, after
  // offline calibration probed them and before any serving traffic —
  // per-stack mean_probes/probe_histogram then report that stack's traffic
  // only.
  for (DatasetStack& ds : stacks) {
    if (ds.dataset->db().ivf_index() != nullptr) {
      ds.dataset->db().ivf_index()->ResetProbeStats();
    }
    // Same contract for the hybrid counters (the weight calibration above
    // retrieves through the database).
    ds.dataset->db().ResetHybridStats();
  }

  // Independent arrival streams per dataset, all on the shared engine.
  // Throughput windows are per dataset: each stack's clock starts at its OWN
  // first arrival, not the earliest arrival across the whole mix.
  std::vector<SimTime> first_arrival(spec.datasets.size(), -1);
  for (size_t d = 0; d < spec.datasets.size(); ++d) {
    std::vector<RagQuery> queries = stacks[d].dataset->queries();
    // Per-dataset seeds are mixed through SplitMix64: the raw
    // `seed ^ (0xD00D + d)` values differ only in their low bits for adjacent
    // d, and AssignArrivals XORs its own constant on top — nearby datasets
    // would get visibly correlated streams. SplitMix64 decorrelates them.
    uint64_t arrival_state = spec.seed ^ (0xD00Dull + static_cast<uint64_t>(d));
    AssignArrivals(queries, spec.arrivals, spec.rate_per_dataset, SplitMix64(arrival_state));
    uint64_t tenant_state = spec.seed ^ (0x7E7A47ull + static_cast<uint64_t>(d));
    AssignTenants(queries, spec.tenants, SplitMix64(tenant_state));
    if (ingesting) {
      // Per-stack decorrelated op stream, same SplitMix64 mixing as arrivals.
      uint64_t ingest_state = spec.seed ^ (0x1A6E57ull + static_cast<uint64_t>(d));
      ScheduleIngest(sim, stacks[d].live_dataset, spec.ingest, SplitMix64(ingest_state));
    }
    for (const RagQuery& q : queries) {
      if (first_arrival[d] < 0 || q.arrival_time < first_arrival[d]) {
        first_arrival[d] = q.arrival_time;
      }
      sim.ScheduleAt(q.arrival_time, [sys = stacks[d].system.get(), q]() { sys->Accept(q); });
    }
  }
  sim.Run();

  // --- Aggregate per dataset; engine cost attributed by token share. ---
  double total_tokens = 0;
  for (const auto& ds : stacks) {
    for (const auto& rec : ds.records) {
      total_tokens += rec.result.total_prompt_tokens + rec.result.total_output_tokens;
    }
  }
  std::vector<RunMetrics> out;
  for (size_t d = 0; d < spec.datasets.size(); ++d) {
    DatasetStack& ds = stacks[d];
    RunMetrics metrics;
    metrics.label = StrFormat("%s/%s", SystemKindName(spec.system), spec.datasets[d].c_str());
    // The single-dataset RunSpec this stack is equivalent to, so downstream
    // tooling sees the same RunMetrics contract RunExperiment fills
    // (metrics.spec.scheduler carries the stack's RESOLVED options, i.e. the
    // calibrated per-dataset depth line when per_dataset_depth engaged one).
    metrics.spec.dataset = spec.datasets[d];
    metrics.spec.num_queries = spec.queries_per_dataset;
    metrics.spec.arrival_rate = spec.rate_per_dataset;
    metrics.spec.serving_model = spec.serving_model;
    metrics.spec.kv_pool_gib = spec.kv_pool_gib;
    metrics.spec.max_batched_tokens = spec.max_batched_tokens;
    metrics.spec.embedding_model = spec.embedding_model;
    metrics.spec.profiler_model = spec.profiler_model;
    metrics.spec.system = spec.system;
    metrics.spec.fixed_config = spec.fixed_configs[std::min(d, spec.fixed_configs.size() - 1)];
    metrics.spec.metis = spec.metis;
    metrics.spec.scheduler = stack_options[d];
    metrics.spec.retrieval = spec.retrieval;
    metrics.spec.override_prefix_sharing = spec.override_prefix_sharing;
    metrics.spec.tenants = spec.tenants;
    metrics.spec.arrivals = spec.arrivals;
    metrics.spec.overload = spec.overload;
    metrics.spec.ingest = spec.ingest;
    metrics.spec.seed = spec.seed;
    metrics.records = std::move(ds.records);
    // A zero-query stack (ingest-only) never sets its first arrival; clamp
    // the sentinel so the window starts at 0.
    AggregateRecords(metrics, spec.tenants, std::max<SimTime>(0, first_arrival[d]));
    double ds_tokens = 0;
    for (const QueryRecord& rec : metrics.records) {
      ds_tokens += rec.result.total_prompt_tokens + rec.result.total_output_tokens;
    }
    metrics.engine_stats = engine.stats();
    if (ds.dataset->db().ivf_index() != nullptr) {
      metrics.mean_probes = ds.dataset->db().ivf_index()->mean_probes();
      metrics.probe_histogram = ds.dataset->db().ivf_index()->probe_histogram();
    }
    metrics.hybrid = ds.dataset->db().hybrid_stats();
    FillIngestMetrics(metrics, ds.dataset->db());
    if (model.api_model) {
      double cost = 0;
      for (const QueryRecord& rec : metrics.records) {
        cost += rec.result.total_prompt_tokens * model.usd_per_1m_input_tokens / 1e6 +
                rec.result.total_output_tokens * model.usd_per_1m_output_tokens / 1e6;
      }
      metrics.engine_cost_usd = cost;
    } else {
      metrics.engine_cost_usd =
          engine.busy_cost_usd() * (total_tokens > 0 ? ds_tokens / total_tokens : 0);
    }
    if (ds.profiler_api) {
      metrics.profiler_cost_usd = ds.profiler_api->total_cost_usd();
    }
    out.push_back(std::move(metrics));
  }
  return out;
}

RunMetrics RunExperiment(const RunSpec& spec) {
  const bool ingesting = spec.ingest.enabled && spec.ingest.num_ops > 0;
  if (ingesting) {
    METIS_CHECK(spec.retrieval.mutable_index);  // Live ingest needs the mutable index.
  }
  std::shared_ptr<const Dataset> dataset;
  Dataset* live_dataset = nullptr;  // Non-null when this run may mutate it.
  if (spec.retrieval.mutable_index) {
    // Mutable-index runs bypass the shared cache: the ingest stream mutates
    // the database, and a cached corpus must stay immutable for every other
    // spec resolving to the same entry. Generation is deterministic, so the
    // private instance is identical to what the cache would have held.
    std::shared_ptr<Dataset> priv = GenerateDatasetUncached(
        spec.dataset, spec.num_queries, spec.embedding_model, spec.seed, spec.retrieval);
    live_dataset = priv.get();
    dataset = priv;
  } else {
    dataset = GetOrGenerateDataset(spec.dataset, spec.num_queries, spec.embedding_model,
                                   spec.seed, spec.retrieval);
  }
  // Probe accounting is per-run: the dataset (and its index) is shared
  // through the cache, so zero the counters before this run's traffic.
  const IvfL2Index* ivf = dataset->db().ivf_index();
  if (ivf != nullptr) {
    ivf->ResetProbeStats();
  }
  dataset->db().ResetHybridStats();

  Stack stack;
  const ModelSpec& model = GetModelSpec(spec.serving_model);

  EngineConfig ecfg;
  ecfg.model = model;
  double pool_gib = spec.kv_pool_gib > 0 ? spec.kv_pool_gib : DefaultKvPoolGib(model);
  ecfg.kv_pool_bytes = pool_gib * kGiB;
  ecfg.max_batched_tokens = spec.max_batched_tokens;
  bool batching = spec.system == SystemKind::kParrotFixed || spec.system == SystemKind::kMetis;
  if (spec.override_prefix_sharing.has_value()) {
    batching = *spec.override_prefix_sharing;
  }
  ecfg.prefix_sharing = batching;
  ecfg.policy = batching ? AdmissionPolicy::kGroupAware : AdmissionPolicy::kFcfs;
  if (spec.scheduler.cross_query_prefix) {
    // Cross-query reuse needs the engine to hold hot chunk prefixes across
    // the gap between queries; gated so the default engine stays bit-identical.
    ecfg.prefix_retention_s = spec.scheduler.prefix_retention_s;
  }
  stack.engine = std::make_unique<LlmEngine>(&stack.sim, ecfg, spec.seed);

  stack.behavior = std::make_unique<BehaviorModel>(BehaviorParams{}, spec.seed ^ 0xBE4A11ull);
  RetrievalQuality retrieval_quality = RetrievalQualityFromOptions(spec.scheduler);
  if (spec.scheduler.coalesce_retrieval) {
    stack.batcher = std::make_unique<RetrievalBatcher>(&stack.sim, &dataset->db(),
                                                       SynthesisExecutor::kRetrievalSeconds,
                                                       retrieval_quality);
  }
  stack.executor = std::make_unique<SynthesisExecutor>(&stack.sim, stack.engine.get(),
                                                       stack.behavior.get(), dataset.get(),
                                                       spec.seed ^ 0x5E1Full, stack.batcher.get());
  stack.executor->set_retrieval_quality(retrieval_quality);
  stack.executor->set_cross_query_prefix(spec.scheduler.cross_query_prefix);

  RunMetrics metrics;
  metrics.spec = spec;
  metrics.label = SystemKindName(spec.system);

  std::vector<QueryRecord>* records = &metrics.records;
  auto sink = [records](QueryRecord rec) { records->push_back(std::move(rec)); };

  const bool needs_profiler =
      spec.system == SystemKind::kAdaptiveRag || spec.system == SystemKind::kMetis;
  if (needs_profiler) {
    stack.profiler_api = std::make_unique<ApiLlmClient>(
        &stack.sim, GetModelSpec(spec.profiler_model), spec.seed ^ 0xA91ull);
  }
  ProfilerParams pparams = spec.profiler_model == "gpt-4o" ? Gpt4oProfilerParams()
                                                           : Llama70BProfilerParams();
  if (needs_profiler) {
    stack.profiler = std::make_unique<QueryProfiler>(&stack.sim, stack.profiler_api.get(),
                                                     &dataset->db().metadata(), pparams,
                                                     spec.seed ^ 0x9867ull);
    stack.scheduler = std::make_unique<JointScheduler>(stack.engine.get(),
                                                       stack.executor.get(), 10,
                                                       spec.scheduler);
  }

  switch (spec.system) {
    case SystemKind::kVllmFixed:
      stack.system = std::make_unique<FixedConfigSystem>(
          &stack.sim, stack.executor.get(), spec.fixed_config,
          StrFormat("vllm[%s]", RagConfigToString(spec.fixed_config).c_str()), sink);
      break;
    case SystemKind::kParrotFixed:
      stack.system = std::make_unique<FixedConfigSystem>(
          &stack.sim, stack.executor.get(), spec.fixed_config,
          StrFormat("parrot*[%s]", RagConfigToString(spec.fixed_config).c_str()), sink);
      break;
    case SystemKind::kAdaptiveRag:
      stack.system = std::make_unique<AdaptiveRagSystem>(&stack.sim, stack.executor.get(),
                                                         stack.profiler.get(),
                                                         stack.scheduler.get(), sink);
      break;
    case SystemKind::kMetis: {
      MetisSystem::Options opts = spec.metis;
      opts.output_token_estimate = dataset->profile().max_output_tokens;
      if (spec.overload.enabled) {
        stack.overload = std::make_unique<OverloadController>(stack.engine.get(),
                                                              spec.tenants, spec.overload);
      }
      stack.system = std::make_unique<MetisSystem>(&stack.sim, stack.executor.get(),
                                                   stack.profiler.get(), stack.scheduler.get(),
                                                   dataset.get(), opts, sink,
                                                   stack.overload.get());
      break;
    }
  }

  // The ingest stream shares the simulation clock with the query stream.
  if (ingesting) {
    ScheduleIngest(stack.sim, live_dataset, spec.ingest, spec.seed);
  }

  // Per-run copy of the queries so arrival times don't leak across runs.
  std::vector<RagQuery> queries = dataset->queries();
  AssignTenants(queries, spec.tenants, spec.seed);
  ApplySharedWorkload(queries, spec.shared_workload, spec.seed);
  SimTime first_arrival = 0;

  if (spec.arrival_rate > 0) {
    AssignArrivals(queries, spec.arrivals, spec.arrival_rate, spec.seed);
    // Ingest-only specs (num_queries == 0) have no arrivals; the window then
    // starts at 0 and every completion-derived metric stays defined (zero).
    first_arrival = queries.empty() ? 0 : queries.front().arrival_time;
    for (const RagQuery& q : queries) {
      stack.sim.ScheduleAt(q.arrival_time, [sys = stack.system.get(), q]() { sys->Accept(q); });
    }
    stack.sim.Run();
  } else {
    // Closed loop: one query outstanding at a time (Fig. 19's low load).
    AssignSequentialArrivals(queries);
    size_t next = 0;
    size_t total = queries.size();
    // Chain Accept calls off completions by polling the record count.
    std::function<void()> pump = [&]() {
      if (next >= total) {
        return;
      }
      size_t expected = metrics.records.size() + 1;
      stack.system->Accept(queries[next++]);
      stack.sim.Run();  // Drain until this query (and its events) complete.
      METIS_CHECK_GE(metrics.records.size(), expected);
    };
    while (next < total) {
      pump();
    }
  }
  stack.sim.Run();

  // --- Aggregate ---
  AggregateRecords(metrics, spec.tenants, first_arrival);
  metrics.engine_stats = stack.engine->stats();
  // Re-fetch the IVF handle: under a mutable index a retrain swaps the base,
  // so the pre-run pointer may be stale. Probe counters are carried across
  // swaps (CopyProbeStatsFrom), so readings stay cumulative for the run.
  const IvfL2Index* ivf_now = dataset->db().ivf_index();
  if (ivf_now != nullptr) {
    metrics.mean_probes = ivf_now->mean_probes();
    metrics.probe_histogram = ivf_now->probe_histogram();
  }
  metrics.hybrid = dataset->db().hybrid_stats();
  FillIngestMetrics(metrics, dataset->db());

  if (model.api_model) {
    // API-served inference (the Fig. 13 GPT-4o comparison): per-token price.
    double cost = 0;
    for (const QueryRecord& rec : metrics.records) {
      cost += rec.result.total_prompt_tokens * model.usd_per_1m_input_tokens / 1e6 +
              rec.result.total_output_tokens * model.usd_per_1m_output_tokens / 1e6;
    }
    metrics.engine_cost_usd = cost;
  } else {
    metrics.engine_cost_usd = stack.engine->busy_cost_usd();
  }
  if (stack.profiler_api) {
    metrics.profiler_cost_usd = stack.profiler_api->total_cost_usd();
  }
  return metrics;
}

RagResult RunSingleQuery(const Dataset& dataset, const RagQuery& query, const RagConfig& config,
                         const std::string& serving_model, uint64_t seed) {
  Simulator sim;
  const ModelSpec& model = GetModelSpec(serving_model);
  EngineConfig ecfg;
  ecfg.model = model;
  ecfg.kv_pool_bytes = DefaultKvPoolGib(model) * kGiB;
  LlmEngine engine(&sim, ecfg, seed);
  BehaviorModel behavior(BehaviorParams{}, seed ^ 0xBE4A11ull);
  SynthesisExecutor executor(&sim, &engine, &behavior, &dataset, seed ^ 0x5E1Full);

  RagResult out;
  bool finished = false;
  executor.Execute(query, config, [&](RagResult r) {
    out = std::move(r);
    finished = true;
  });
  sim.Run();
  METIS_CHECK(finished);
  return out;
}

}  // namespace metis
