// Experiment runner: builds a full serving stack (dataset -> vector DB ->
// engine -> system) inside one simulation and measures what the paper's
// evaluation measures. Shared by every bench binary and example.

#ifndef METIS_SRC_RUNNER_RUNNER_H_
#define METIS_SRC_RUNNER_RUNNER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/depth_calibrator.h"
#include "src/core/systems.h"
#include "src/llm/behavior.h"
#include "src/llm/engine.h"
#include "src/profiler/profiler.h"
#include "src/synthesis/synthesis.h"
#include "src/workload/dataset.h"

namespace metis {

enum class SystemKind {
  kVllmFixed,    // vLLM baseline: static config, FCFS, no prefix sharing.
  kParrotFixed,  // Parrot*: static config + group-aware batching + prefixes.
  kAdaptiveRag,  // AdaptiveRAG*: per-query quality-max config on vLLM.
  kMetis,        // Full METIS (options configurable).
};

const char* SystemKindName(SystemKind kind);

// Streaming ingest under serving load (requires retrieval.mutable_index).
// The runner schedules `num_ops` insert/delete operations into the same
// simulation clock the query stream runs on, through the same arrival-process
// machinery — deterministic per seed. Inserts add synthetic filler chunks to
// the live database; deletes tombstone a uniformly random live victim.
struct IngestOptions {
  bool enabled = false;
  int num_ops = 0;
  double rate = 4.0;             // Ops/sec (mean of `arrivals`).
  double insert_fraction = 0.8;  // P(insert) per op; the rest delete.
  // False (default): deletes only ever pick non-gold chunks, so query F1
  // stays comparable with a static-index run of the same spec. True widens
  // the victim pool to the whole live corpus (recall-under-churn stress).
  bool delete_gold = false;
  ArrivalProcess arrivals;  // Op arrival shape (kPoisson default).
};

// Ingest-stream + index-lifecycle accounting for one run (zeros unless the
// spec ran a mutable index). Counter fields mirror MutableIndexStats; the
// gauges are end-of-run snapshots.
struct IngestMetrics {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t seals = 0;
  uint64_t compactions = 0;
  uint64_t retrains = 0;
  size_t live_chunks = 0;
  size_t segments = 0;
  size_t memtable_rows = 0;
  size_t tombstones = 0;
};

// Shared-query workload shaping (cross-query KV reuse experiments). With
// hot_fraction > 0, that fraction of the query stream (chosen on its own Rng
// stream, so arrival times and tenant assignment are untouched) is replaced
// by duplicates of `num_hot` template queries drawn from the head of the
// stream — each duplicate keeps its slot's arrival time and tenant but
// carries the template's text/golds, so many concurrent queries retrieve the
// SAME chunks (the regime where canonical-order prefix grouping aliases KV).
// hot_fraction == 0 (default) leaves the stream bit-identical.
struct SharedWorkloadOptions {
  double hot_fraction = 0;
  int num_hot = 4;
};

struct RunSpec {
  std::string dataset = "musique";
  int num_queries = 200;
  // Open-loop Poisson rate (queries/sec); <= 0 runs closed-loop sequential
  // (one query in flight at a time — the paper's low-load setup, Fig. 19).
  double arrival_rate = 2.0;

  std::string serving_model = "mistral-7b-v3-awq";
  // KV pool (GiB); < 0 derives a default from the model.
  double kv_pool_gib = -1;
  int max_batched_tokens = 2048;
  std::string embedding_model = "cohere-embed-v3-sim";
  std::string profiler_model = "gpt-4o";

  SystemKind system = SystemKind::kMetis;
  RagConfig fixed_config{SynthesisMethod::kStuff, 10, 100};
  MetisSystem::Options metis;
  JointSchedulerOptions scheduler;  // Design-ablation switches (§ DESIGN.md 5).
  // Retrieval backend the dataset's vector database builds (paper default:
  // exact flat). The IVF backend makes the scheduler's retrieval-depth knob
  // (scheduler.adaptive_nprobe / nprobe_budget) live end to end; `shards`
  // partitions index storage for shard-parallel batched sweeps.
  RetrievalIndexOptions retrieval;
  // Forces engine batching features regardless of the system default
  // (used by the Fig. 12 ablation to stage batching separately).
  std::optional<bool> override_prefix_sharing;

  // --- Multi-tenant overload control (src/core/overload.h) ---
  // SLO classes queries arrive under. Empty (default): every query runs in
  // one implicit default class and nothing below changes any behaviour.
  // Non-empty: each query is assigned a class deterministically, with
  // probability proportional to rate_share (its own Rng stream, so arrival
  // times are untouched).
  std::vector<TenantClass> tenants;
  // Arrival process shape. kPoisson (default) is bit-identical to the
  // historical AssignPoissonArrivals stream; bursty/diurnal/flash_crowd keep
  // the same mean rate but concentrate arrivals (overload experiments).
  ArrivalProcess arrivals;
  // Degradation ladder; enabled=false (default) never constructs the
  // controller — bit-for-bit parity with the ladderless stack. Only the
  // METIS system consults it.
  OverloadOptions overload;

  // Live insert/delete stream concurrent with the query stream (requires
  // retrieval.mutable_index; ignored when disabled).
  IngestOptions ingest;

  // Shared-query shaping of the stream (see SharedWorkloadOptions above).
  SharedWorkloadOptions shared_workload;

  uint64_t seed = 42;
};

// Per-SLO-class outcome accounting for one run (RunMetrics::class_metrics).
// When the spec declares no tenants, every run still reports one implicit
// "default" class so downstream tooling has a uniform shape.
struct TenantClassMetrics {
  std::string name = "default";
  int priority = 0;
  double deadline_s = 0;     // <= 0: every completion counts as good.
  uint64_t offered = 0;      // Arrivals routed to this class.
  uint64_t completed = 0;    // Served to completion (rejected excluded).
  uint64_t rejected = 0;     // Shed by admission control (ladder rung 4).
  uint64_t missed_deadline = 0;  // Completed but past deadline_s.
  uint64_t depth_shed = 0;       // Served with a clamped retrieval budget.
  uint64_t synthesis_degraded = 0;  // Served with the cheap synthesis config.
  uint64_t precision_shed = 0;      // Served on a shed quantized scan tier.
  Samples delays;            // e2e delay of completed queries only.
  double goodput_qps = 0;    // In-deadline completions / run sim_duration.

  double p50_delay() const { return delays.empty() ? 0 : delays.Quantile(0.5); }
  double p99_delay() const { return delays.empty() ? 0 : delays.p99(); }
};

struct RunMetrics {
  std::string label;
  RunSpec spec;

  Samples delays;           // End-to-end per-query delay (s); completed only.
  Samples f1s;              // Per-query token F1; completed only.
  Samples profiler_delays;  // Per-query profiler latency (s); 0 for fixed.
  Samples profiler_fracs;   // profiler_delay / e2e_delay.

  double mean_delay() const { return delays.mean(); }
  double p50_delay() const { return delays.empty() ? 0 : delays.Quantile(0.5); }
  double p90_delay() const { return delays.empty() ? 0 : delays.p90(); }
  double p99_delay() const { return delays.empty() ? 0 : delays.p99(); }
  double mean_f1() const { return f1s.mean(); }

  double sim_duration = 0;    // First arrival to last completion (s).
  double throughput_qps = 0;  // Completed queries / sim_duration.
  // Overload accounting. Goodput counts completions within their class
  // deadline (no deadline = all completions good); without overload control
  // and without deadlines, goodput_qps == throughput_qps and
  // rejected_queries == 0.
  uint64_t rejected_queries = 0;
  double goodput_qps = 0;
  // One entry per spec.tenants class (a single "default" entry when empty).
  std::vector<TenantClassMetrics> class_metrics;
  // IVF backend only: average inverted lists probed per index search during
  // this run (0 under the flat backend) — the observable that proves the
  // retrieval-depth knob reached the index.
  double mean_probes = 0;
  // IVF backend only: per-query probe-depth distribution — bucket p counts
  // searches that scanned exactly p inverted lists (last bucket clamps; see
  // IvfL2Index::probe_histogram). Empty under the flat backend. With a fixed
  // budget B the whole run lands in bucket B; with per-query depth
  // (JointSchedulerOptions::per_query_depth) the spread shows which budgets
  // the RetrievalDepthPolicy actually assigned.
  std::vector<uint64_t> probe_histogram;
  // Hybrid retrieval accounting (vectordb.h HybridSearchStats): dense /
  // lexical backend scans and fused queries this run issued. All zeros for a
  // dense-only stack (the hybrid path was never taken).
  HybridSearchStats hybrid;
  // Mutable-index runs only: what the ingest stream did and where the index's
  // segment lifecycle ended up (all zeros for static-index runs).
  IngestMetrics ingest;
  double engine_cost_usd = 0;
  double profiler_cost_usd = 0;
  double total_cost_usd() const { return engine_cost_usd + profiler_cost_usd; }

  EngineStats engine_stats;
  std::vector<QueryRecord> records;
};

// Runs one full experiment. Deterministic for a given spec.
RunMetrics RunExperiment(const RunSpec& spec);

// Mixed-workload experiment: the paper's §7.1 setup sends all datasets
// *concurrently* to one serving engine (Poisson, `rate_per_dataset` each) and
// reports results per dataset. The shared engine is where cross-dataset
// contention — and METIS's resource-aware adaptation — plays out.
struct MixedRunSpec {
  std::vector<std::string> datasets = {"squad", "musique", "kg_rag_finsec", "qmsum"};
  int queries_per_dataset = 200;
  double rate_per_dataset = 2.0;

  std::string serving_model = "mistral-7b-v3-awq";
  double kv_pool_gib = -1;
  int max_batched_tokens = 2048;
  std::string embedding_model = "cohere-embed-v3-sim";
  std::string profiler_model = "gpt-4o";

  SystemKind system = SystemKind::kMetis;
  // Fixed-config baselines may use a different hand-picked config per dataset
  // (aligned with `datasets`); a single entry applies to all.
  std::vector<RagConfig> fixed_configs = {RagConfig{SynthesisMethod::kStuff, 10, 100}};
  MetisSystem::Options metis;
  JointSchedulerOptions scheduler;  // Design-ablation switches (§ DESIGN.md 5).
  RetrievalIndexOptions retrieval;  // Shared by every dataset's database.
  std::optional<bool> override_prefix_sharing;

  // --- Per-dataset retrieval-depth policies ---
  // The per-piece F1-vs-budget curves differ per dataset profile (RAGGED), so
  // the mixed path can give every dataset stack its OWN
  // RetrievalDepthPolicyOptions budget line instead of the one
  // `scheduler.depth` line above. Ablation flag: false (default) applies
  // `scheduler` unchanged to every stack — the shared-curve behaviour,
  // bit-for-bit (every field below is ignored then; parity-tested).
  bool per_dataset_depth = false;
  // How a stack with no explicit override below derives its line:
  //   kProfile — closed-form from the DatasetProfile (DeriveFromProfile);
  //   kOffline — probe-grid calibration on a held-out query slice
  //              (DepthCalibrator::Calibrate), mirroring METIS's offline
  //              config-space pruning.
  enum class DepthCalibration { kProfile, kOffline };
  DepthCalibration depth_calibration = DepthCalibration::kProfile;
  DepthCalibratorOptions calibrator;  // Grid/holdout/tolerance for both modes.
  // Full per-stack scheduler overrides, aligned with `datasets`; entry d (when
  // present and engaged by per_dataset_depth) replaces `scheduler` for
  // datasets[d]'s whole stack. Missing/nullopt entries fall back to the
  // calibrated line above.
  std::vector<std::optional<JointSchedulerOptions>> per_dataset_scheduler;

  // --- Multi-tenant overload control (same contract as RunSpec) ---
  // One controller watches the SHARED engine; all dataset stacks feed it, so
  // the ladder reacts to aggregate backlog, not per-dataset slices.
  std::vector<TenantClass> tenants;
  ArrivalProcess arrivals;  // Applied per dataset stream (kPoisson default).
  OverloadOptions overload;

  // Live insert/delete stream, applied to EVERY dataset stack's database on
  // its own decorrelated op stream (requires retrieval.mutable_index).
  IngestOptions ingest;

  uint64_t seed = 42;
};

// The scheduler options RunMixedExperiment builds datasets[d]'s stack with:
// `spec.scheduler` verbatim unless per_dataset_depth engages an override or a
// calibrated depth line (see MixedRunSpec). Exposed so benches/tests can see
// the per-stack budget lines a spec resolves to without running the
// experiment. `dataset` must be the generated dataset the stack would serve
// (its profile and index feed the calibrator).
JointSchedulerOptions EffectiveSchedulerOptions(const MixedRunSpec& spec, size_t d,
                                                const Dataset& dataset);

// Returns one RunMetrics per dataset (order matches spec.datasets). Engine
// stats are global; engine cost is attributed by processed-token share.
std::vector<RunMetrics> RunMixedExperiment(const MixedRunSpec& spec);

// Shared dataset cache: generation is deterministic per (profile, seed,
// embedder, num_queries, index options), so benches sweeping configs reuse
// the corpus. Distinct retrieval backends key distinct cache entries. The
// cache is mutex-guarded (safe to call from pool threads) and bounded: past
// kDatasetCacheMaxEntries the oldest entries are evicted (outstanding
// shared_ptrs keep evicted datasets alive).
//
// Probe-accounting contract: IVF probe counters live on the (shared) index,
// and each run resets them at start-of-traffic, so RunMetrics::mean_probes /
// probe_histogram are exact for SEQUENTIAL runs — today's only usage.
// CONCURRENT runs that resolve to the same cache entry would commingle (and
// mutually reset) one counter set; callers wanting parallel runs with probe
// stats must use distinct specs (or per-run private datasets, as
// RunMixedExperiment does for repeated dataset names).
inline constexpr size_t kDatasetCacheMaxEntries = 32;
std::shared_ptr<const Dataset> GetOrGenerateDataset(const std::string& dataset_name,
                                                    int num_queries,
                                                    const std::string& embedding_model,
                                                    uint64_t seed,
                                                    const RetrievalIndexOptions& index_options = {});

// Drops every cached dataset (long bench binaries sweeping many corpora can
// release the memory between phases). Datasets still referenced elsewhere
// stay alive through their shared_ptrs.
void ClearDatasetCache();

// Runs a single query in isolation (idle engine, no queueing) and returns the
// result — the probe the Fig. 4 / Fig. 5 per-knob sweeps use.
RagResult RunSingleQuery(const Dataset& dataset, const RagQuery& query, const RagConfig& config,
                         const std::string& serving_model, uint64_t seed);

// The static-configuration menu the fixed-config baselines sweep over.
std::vector<RagConfig> FixedConfigMenu(const DatasetProfile& profile);

// Default KV pool (GiB) for a serving model on the paper's A40 server.
double DefaultKvPoolGib(const ModelSpec& model);

}  // namespace metis

#endif  // METIS_SRC_RUNNER_RUNNER_H_
