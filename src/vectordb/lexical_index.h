// Lexical retrieval backend: an inverted posting-list BM25 index over chunk
// text, the second leg of the hybrid Retriever layer (dense + lexical +
// metadata filters; see docs/ARCHITECTURE.md "Hybrid retrieval").
//
// Scoring is Okapi BM25 (k1 = 1.2, b = 0.75) with the Lucene-style
// non-negative idf
//
//     idf(t) = ln((N - df(t) + 0.5) / (df(t) + 0.5) + 1)
//
// where N, avgdl, and df(t) are EXACT statistics of the live document set —
// not approximations frozen at segment-build time. Add maintains them
// incrementally and Remove decrements them from the stored per-document term
// list, so a score computed at any point in the index's lifecycle is
// bit-identical to a fresh build over the same live set.
//
// Determinism contract (mirrors the dense substrate):
//   - Documents are hash-partitioned across shards by the same ShardOfId
//     used by the dense IndexShards, and each shard runs the memtable ->
//     sealed segment -> compaction lifecycle of MutableIndexOptions. None of
//     that structure is visible in results: a document's postings live in
//     exactly one structure at a time, query terms are deduplicated and
//     iterated in sorted order, and per-document scores accumulate in double
//     — so each document's score is a pure function of (its term
//     frequencies, the live-set statistics), invariant to shard count,
//     segment layout, and thread count.
//   - Ranking runs under the (score descending, insertion order ascending)
//     total order. Insertion order is the global Add order, the same
//     tie-break role candidate order plays in the dense indexes. Per-shard
//     top-k heaps merge under that total order on the calling thread, so any
//     shard x thread combination returns bit-identical hits.
//
// Search returns SearchHit with distance = -score, so "lower distance =
// better" holds for both backends and fusion code can stay backend-blind.

#ifndef METIS_SRC_VECTORDB_LEXICAL_INDEX_H_
#define METIS_SRC_VECTORDB_LEXICAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/vectordb/vectordb.h"

namespace metis {

// Snapshot of the search-side work counters (hybrid benches report lexical
// scan cost as postings scanned, the lexical analogue of rows visited).
struct LexicalIndexStats {
  uint64_t searches = 0;
  uint64_t postings_scanned = 0;
  uint64_t docs_scored = 0;
  uint64_t seals = 0;
  uint64_t compactions = 0;
};

class LexicalIndex {
 public:
  explicit LexicalIndex(size_t num_shards = 1, size_t memtable_rows = 256,
                        size_t compact_segments = 8);

  // Tokenizes `text` (src/text/ tokenizer — the same tokens F1 scoring and
  // the profiler see) and indexes the document. Ids must be unique.
  void Add(ChunkId id, const std::string& text);

  // Tombstones a document: it never appears in results again and the live
  // statistics (N, avgdl, df) are decremented exactly. Returns true when the
  // id was live. Memtable postings are erased eagerly; sealed postings are
  // masked until their shard's next compaction rewrites them away.
  bool Remove(ChunkId id);

  // Top-k by BM25 over the live set, best first, under the
  // (score desc, insertion order asc) total order. `exclude` is an extra
  // sorted id set filtered inside the scan (metadata-filter push-down);
  // tombstones are always filtered. `pool` shards the scan across workers —
  // results are bit-identical for any pool size. distance = -score.
  std::vector<SearchHit> Search(const std::string& query_text, size_t k,
                                const IdFilter& exclude = {},
                                ThreadPool* pool = nullptr) const;

  size_t num_docs() const { return live_docs_; }
  size_t num_shards() const { return shards_.size(); }
  // Total sealed (uncompacted + compacted) segments across shards.
  size_t num_segments() const;
  // Documents currently in shard memtables (live only).
  size_t memtable_docs() const;

  LexicalIndexStats stats() const;
  void ResetSearchStats() const;

 private:
  struct Posting {
    ChunkId id;
    int32_t tf;
    int32_t doc_len;
    uint32_t order;  // Global insertion order (tie-break rank).
  };
  using PostingMap = std::unordered_map<std::string, std::vector<Posting>>;

  struct Segment {
    PostingMap postings;
    size_t docs = 0;  // Docs sealed into this segment (live + dead).
  };

  struct Shard {
    PostingMap memtable;
    size_t memtable_docs = 0;
    std::vector<Segment> segments;
    std::vector<ChunkId> tombstones;  // Sorted; ids masked in sealed segments.
  };

  struct DocInfo {
    int32_t len = 0;
    uint32_t order = 0;
    bool live = false;
    bool sealed = false;  // Postings moved out of the memtable.
    // Sorted unique terms with counts — what Remove needs to decrement df and
    // erase memtable postings without re-tokenizing.
    std::vector<std::pair<std::string, int32_t>> terms;
  };

  void SealMemtable(Shard& shard);
  void MaybeCompact(Shard& shard);
  // Scores shard s for the resolved query terms; returns the shard's top-k
  // as (score, order, id), best first.
  struct Scored {
    double score;
    uint32_t order;
    ChunkId id;
  };
  struct QueryTerm {
    std::string term;
    double idf;
  };
  std::vector<Scored> ScoreShard(const Shard& shard, const std::vector<QueryTerm>& terms,
                                 size_t k, const IdFilter& exclude, double avgdl,
                                 uint64_t* postings_scanned, uint64_t* docs_scored) const;

  size_t memtable_rows_;
  size_t compact_segments_;
  std::vector<Shard> shards_;
  std::unordered_map<ChunkId, DocInfo> docs_;
  std::unordered_map<std::string, int64_t> df_;
  size_t live_docs_ = 0;
  uint64_t total_live_len_ = 0;
  uint32_t next_order_ = 0;
  uint64_t seals_ = 0;
  uint64_t compactions_ = 0;

  mutable std::atomic<uint64_t> searches_{0};
  mutable std::atomic<uint64_t> postings_scanned_{0};
  mutable std::atomic<uint64_t> docs_scored_{0};
};

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_LEXICAL_INDEX_H_
