#include "src/vectordb/vectordb.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/lexical_index.h"
#include "src/vectordb/mutable_index.h"
#include "src/vectordb/quantize.h"
#include "src/vectordb/topk.h"

namespace metis {

// --- RowPool ----------------------------------------------------------------

namespace {

constexpr size_t kStrideFloats = 16;  // 64 bytes.

size_t PaddedStride(size_t dim) {
  return (dim + kStrideFloats - 1) / kStrideFloats * kStrideFloats;
}

}  // namespace

RowPool::RowPool(size_t dim) : dim_(dim), stride_(PaddedStride(dim)) {
  METIS_CHECK_GT(dim, 0u);
}

size_t ShardOfId(ChunkId id, size_t num_shards) {
  if (num_shards <= 1) {
    return 0;
  }
  uint64_t state = static_cast<uint64_t>(static_cast<uint32_t>(id));
  return static_cast<size_t>(SplitMix64(state) % num_shards);
}

void RowPool::Append(ChunkId id, const float* v) {
  size_t offset = data_.size();
  data_.resize(offset + stride_, 0.0f);
  std::memcpy(data_.data() + offset, v, dim_ * sizeof(float));
  norms_.push_back(SquaredNormBlocked(data_.data() + offset, dim_));
  ids_.push_back(id);
}

// --- Bounded top-k selection ------------------------------------------------
//
// Cand / BoundedTopK moved to topk.h (shared with mutable_index.cc); the
// distance scans stay here so the hot-flags TU holds their only codegen.

namespace {

// Folds per-shard top-k heaps (heaps[start + i * stride] for i in
// [0, count)) into the global top-k. Each shard heap holds its shard's k
// best candidates under the shared (distance, order) total order — a
// superset of that shard's contribution to the global top-k — so offering
// them all into one fresh heap yields exactly the single-shard result.
std::vector<SearchHit> MergeShardTopK(std::vector<BoundedTopK>& heaps, size_t start,
                                      size_t stride, size_t count, size_t k) {
  if (count == 1) {
    return heaps[start].Drain();
  }
  BoundedTopK merged(k);
  for (size_t i = 0; i < count; ++i) {
    for (const Cand& c : heaps[start + i * stride].cands()) {
      merged.Offer(c.dist, c.order, c.id);
    }
  }
  return merged.Drain();
}

// Scores pool rows [begin, end) against one query and offers them to `out`.
// Candidate order is `base` + orders[i]: every scanned pool is an IndexShard
// pool, whose parallel `orders` array carries the single-shard-equivalent
// order per row. The dispatched dot kernel is fetched once per scan, not
// once per row. Templated on filtering so the unfiltered static path keeps
// exactly the loop it had before tombstones existed.
template <bool kFiltered>
void ScanRowsImpl(const RowPool& pool, size_t begin, size_t end, const float* q, double qnorm,
                  const size_t* orders, size_t base, const IdFilter& exclude, BoundedTopK& out) {
  size_t dim = pool.dim();
  DotKernelFn dot = ActiveDotKernel();
  for (size_t i = begin; i < end; ++i) {
    if (kFiltered && exclude.contains(pool.id(i))) {
      continue;
    }
    float d = static_cast<float>(pool.norm(i) + qnorm - 2.0 * dot(pool.row(i), q, dim));
    if (d < 0.0f) {
      d = 0.0f;  // Decomposition rounding can dip just below zero for rows
                 // within ~1e-7 of the query; a squared distance is never
                 // negative.
    }
    out.Offer(d, base + orders[i], pool.id(i));
  }
}

void ScanRows(const RowPool& pool, size_t begin, size_t end, const float* q, double qnorm,
              const size_t* orders, size_t base, BoundedTopK& out) {
  ScanRowsImpl<false>(pool, begin, end, q, qnorm, orders, base, IdFilter{}, out);
}

// Scans shard `shard` of every probed inverted list into `out` (IVF batch
// fan-out unit). `probe_lists`/`bases` come from IvfL2Index::PlanProbes.
void ScanProbedShard(const std::vector<std::vector<IndexShard>>& lists,
                     const std::vector<size_t>& probe_lists, const std::vector<size_t>& bases,
                     size_t shard, const float* q, double qnorm, const IdFilter& exclude,
                     BoundedTopK& out) {
  for (size_t p = 0; p < probe_lists.size(); ++p) {
    const IndexShard& sh = lists[probe_lists[p]][shard];
    ScanRowsInto(sh.rows, 0, sh.rows.size(), q, qnorm, sh.orders.data(), bases[p], exclude, out);
  }
}

// Rows per cache block for the shared batch sweep: ~128 KiB of row data, so a
// block stays L2-resident while every query in the batch scores it.
size_t BlockRows(size_t stride) {
  constexpr size_t kBlockFloats = 128 * 1024 / sizeof(float);
  return std::max<size_t>(1, kBlockFloats / stride);
}

}  // namespace

// The one definition of the filtered scan (declared in topk.h; see there for
// why mutable_index.cc must not grow its own copy).
void ScanRowsInto(const RowPool& pool, size_t begin, size_t end, const float* q, double qnorm,
                  const size_t* orders, size_t base, const IdFilter& exclude, BoundedTopK& out) {
  if (exclude.empty()) {
    ScanRowsImpl<false>(pool, begin, end, q, qnorm, orders, base, exclude, out);
  } else {
    ScanRowsImpl<true>(pool, begin, end, q, qnorm, orders, base, exclude, out);
  }
}

const char* RetrievalPrecisionName(RetrievalPrecision p) {
  switch (p) {
    case RetrievalPrecision::kFp32:
      return "fp32";
    case RetrievalPrecision::kInt8:
      return "int8";
    case RetrievalPrecision::kPq:
      return "pq";
  }
  return "unknown";
}

// The rerank tail's scorer (declared in quantize.h): the exact decomposition
// with the same combine and clamp as ScanRowsImpl, defined in this TU so the
// exact distance has a single codegen.
float ExactRowDistance(const RowPool& pool, size_t row, const float* q, double qnorm) {
  DotKernelFn dot = ActiveDotKernel();
  float d = static_cast<float>(pool.norm(row) + qnorm - 2.0 * dot(pool.row(row), q, pool.dim()));
  return d < 0.0f ? 0.0f : d;
}

// Exact scan into a quantized-candidate heap (declared in quantize.h): the
// ScanRowsImpl loop with candidates marked pool == nullptr so the rerank tail
// passes them through. Lives here for the same single-codegen reason.
void ScanRowsExactInto(const RowPool& pool, size_t begin, size_t end, const float* q,
                       double qnorm, const size_t* orders, size_t base, const IdFilter& exclude,
                       BoundedQuantTopK& out) {
  size_t dim = pool.dim();
  DotKernelFn dot = ActiveDotKernel();
  bool filtered = !exclude.empty();
  for (size_t i = begin; i < end; ++i) {
    if (filtered && exclude.contains(pool.id(i))) {
      continue;
    }
    float d = static_cast<float>(pool.norm(i) + qnorm - 2.0 * dot(pool.row(i), q, dim));
    if (d < 0.0f) {
      d = 0.0f;
    }
    out.Offer(d, base + orders[i], pool.id(i), nullptr, 0);
  }
}

// --- VectorIndex default batch ----------------------------------------------

std::vector<std::vector<SearchHit>> VectorIndex::SearchBatch(
    const std::vector<Embedding>& queries, size_t k, ThreadPool* pool) const {
  (void)pool;
  std::vector<std::vector<SearchHit>> results;
  results.reserve(queries.size());
  for (const Embedding& q : queries) {
    results.push_back(Search(q, k));
  }
  return results;
}

std::vector<std::vector<SearchHit>> VectorIndex::SearchBatch(
    const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
    const std::vector<RetrievalQuality>& qualities) const {
  METIS_CHECK_EQ(qualities.size(), queries.size());
  (void)pool;
  std::vector<std::vector<SearchHit>> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.push_back(Search(queries[i], k, qualities[i]));
  }
  return results;
}

std::vector<OrderedHit> VectorIndex::SearchOrdered(const Embedding& query, size_t k,
                                                   const RetrievalQuality& quality,
                                                   const IdFilter& exclude) const {
  // Rank order is only a valid candidate order when nothing is filtered out;
  // backends with real storage override this with a scan-level filter.
  METIS_CHECK(exclude.empty());
  std::vector<SearchHit> hits = Search(query, k, quality);
  std::vector<OrderedHit> out;
  out.reserve(hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    out.push_back(OrderedHit{hits[i].id, hits[i].distance, i});
  }
  return out;
}

std::vector<QuantCand> VectorIndex::SearchQuantCandidates(const Embedding& query, size_t fetch_k,
                                                          const RetrievalQuality& quality,
                                                          const IdFilter& exclude) const {
  // Backends without quantized mirrors serve exact candidates: distances are
  // already final, so rerank passes them through (pool == nullptr).
  std::vector<OrderedHit> hits = SearchOrdered(query, fetch_k, quality, exclude);
  std::vector<QuantCand> out;
  out.reserve(hits.size());
  for (const OrderedHit& h : hits) {
    out.push_back(QuantCand{h.distance, h.order, h.id, nullptr, 0});
  }
  return out;
}

// --- FlatL2Index ------------------------------------------------------------

FlatL2Index::FlatL2Index(size_t dim, size_t num_shards, QuantizationOptions quant) : dim_(dim) {
  METIS_CHECK_GT(dim, 0u);
  METIS_CHECK_GT(num_shards, 0u);
  qopts_ = quant;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(dim);
  }
}

void FlatL2Index::Add(ChunkId id, const Embedding& v) {
  METIS_CHECK_EQ(v.size(), dim_);
  shards_[ShardOfId(id, shards_.size())].Append(id, v.data(), count_++);
}

std::vector<SearchHit> FlatL2Index::Search(const Embedding& query, size_t k) const {
  METIS_CHECK_EQ(query.size(), dim_);
  if (k == 0 || count_ == 0) {
    return {};
  }
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  // One heap across all shards: the (distance, global order) total order
  // makes the scan order across shards irrelevant.
  BoundedTopK topk(k);
  for (const IndexShard& shard : shards_) {
    ScanRows(shard.rows, 0, shard.rows.size(), query.data(), qnorm, shard.orders.data(), 0,
             topk);
  }
  return topk.Drain();
}

std::vector<std::vector<SearchHit>> FlatL2Index::SearchBatch(const std::vector<Embedding>& queries,
                                                             size_t k, ThreadPool* pool) const {
  for (const Embedding& q : queries) {
    METIS_CHECK_EQ(q.size(), dim_);
  }
  std::vector<std::vector<SearchHit>> results(queries.size());
  if (queries.empty() || k == 0 || count_ == 0) {
    return results;
  }
  size_t nq = queries.size();
  size_t nshards = shards_.size();
  std::vector<double> qnorms(nq);
  for (size_t qi = 0; qi < nq; ++qi) {
    qnorms[qi] = SquaredNormBlocked(queries[qi].data(), dim_);
  }

  // Fan the (shard x query) grid out across the pool: one heap per cell, so
  // workers own disjoint slots and the merged result is independent of the
  // partitioning. Task ids are shard-major — a contiguous task range covers
  // consecutive queries of one shard before moving to the next — so each
  // worker still streams a shard's rows through the cache-sized blocks once
  // for all of its queries.
  std::vector<BoundedTopK> heaps;
  heaps.reserve(nshards * nq);
  for (size_t i = 0; i < nshards * nq; ++i) {
    heaps.emplace_back(k);
  }
  auto sweep = [&](size_t tb, size_t te) {
    size_t t = tb;
    while (t < te) {
      size_t shard = t / nq;
      size_t run_end = std::min(te, (shard + 1) * nq);
      size_t qb = t - shard * nq;
      size_t qe = run_end - shard * nq;
      const IndexShard& sh = shards_[shard];
      size_t block = BlockRows(sh.rows.stride());
      for (size_t rb = 0; rb < sh.rows.size(); rb += block) {
        size_t re = std::min(rb + block, sh.rows.size());
        for (size_t qi = qb; qi < qe; ++qi) {
          ScanRows(sh.rows, rb, re, queries[qi].data(), qnorms[qi], sh.orders.data(), 0,
                   heaps[shard * nq + qi]);
        }
      }
      t = run_end;
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && nshards * nq > 1) {
    pool->ParallelFor(nshards * nq, sweep);
  } else {
    sweep(0, nshards * nq);
  }
  for (size_t qi = 0; qi < nq; ++qi) {
    results[qi] = MergeShardTopK(heaps, /*start=*/qi, /*stride=*/nq, nshards, k);
  }
  return results;
}

std::vector<SearchHit> FlatL2Index::Search(const Embedding& query, size_t k,
                                           const RetrievalQuality& quality) const {
  RetrievalPrecision tier = ResolveTier(quality, quantizers());
  if (tier == RetrievalPrecision::kFp32) {
    // Exact path: byte-for-byte the quality-less search.
    return Search(query, k);
  }
  METIS_CHECK_EQ(query.size(), dim_);
  if (k == 0 || count_ == 0) {
    return {};
  }
  size_t fetch = k * ResolveRerankFactor(quality);
  std::vector<QuantCand> cands = SearchQuantCandidates(query, fetch, quality, IdFilter{});
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  return RerankToHits(std::move(cands), query.data(), qnorm, k);
}

std::vector<std::vector<SearchHit>> FlatL2Index::SearchBatch(
    const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
    const RetrievalQuality& quality) const {
  return SearchBatch(queries, k, pool, std::vector<RetrievalQuality>(queries.size(), quality));
}

std::vector<std::vector<SearchHit>> FlatL2Index::SearchBatch(
    const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
    const std::vector<RetrievalQuality>& qualities) const {
  METIS_CHECK_EQ(qualities.size(), queries.size());
  std::vector<size_t> quant_idx;  // Queries resolving to a quantized tier.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (ResolveTier(qualities[i], quantizers()) != RetrievalPrecision::kFp32) {
      quant_idx.push_back(i);
    }
  }
  if (quant_idx.empty()) {
    // All-exact group: the shared shard-major sweep, bit-identical to the
    // pre-quantization index.
    return SearchBatch(queries, k, pool);
  }
  // Mixed group: the exact subset still rides the shared sweep; quantized
  // queries fan out per query across the pool. Either way results[i] is
  // bit-identical to Search(queries[i], k, qualities[i]).
  std::vector<std::vector<SearchHit>> results(queries.size());
  std::vector<Embedding> exact_q;
  std::vector<size_t> exact_idx;
  for (size_t i = 0, qj = 0; i < queries.size(); ++i) {
    if (qj < quant_idx.size() && quant_idx[qj] == i) {
      ++qj;
      continue;
    }
    exact_idx.push_back(i);
    exact_q.push_back(queries[i]);
  }
  if (!exact_q.empty()) {
    std::vector<std::vector<SearchHit>> exact_res = SearchBatch(exact_q, k, pool);
    for (size_t j = 0; j < exact_idx.size(); ++j) {
      results[exact_idx[j]] = std::move(exact_res[j]);
    }
  }
  auto quant_sweep = [&](size_t b, size_t e) {
    for (size_t t = b; t < e; ++t) {
      size_t qi = quant_idx[t];
      results[qi] = Search(queries[qi], k, qualities[qi]);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && quant_idx.size() > 1) {
    pool->ParallelFor(quant_idx.size(), quant_sweep);
  } else {
    quant_sweep(0, quant_idx.size());
  }
  return results;
}

std::vector<OrderedHit> FlatL2Index::SearchOrdered(const Embedding& query, size_t k,
                                                   const RetrievalQuality& quality,
                                                   const IdFilter& exclude) const {
  (void)quality;  // Exact backend: no recall knob.
  METIS_CHECK_EQ(query.size(), dim_);
  std::vector<OrderedHit> out;
  if (k == 0 || count_ == 0) {
    return out;
  }
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  BoundedTopK topk(k);
  for (const IndexShard& shard : shards_) {
    ScanRowsInto(shard.rows, 0, shard.rows.size(), query.data(), qnorm, shard.orders.data(), 0,
                 exclude, topk);
  }
  for (const Cand& c : topk.DrainCands()) {
    out.push_back(OrderedHit{c.id, c.dist, c.order});
  }
  return out;
}

namespace {
// Quantizer training seed for backends without their own (the flat index);
// matches RetrievalIndexOptions::train_seed's default.
constexpr uint64_t kQuantTrainSeed = 17;
}  // namespace

bool FlatL2Index::BuildQuantizedMirrors() {
  if (!qopts_.any() || count_ == 0) {
    return false;
  }
  // Train over rows in global insertion order (shard.orders maps each shard
  // row back to its single-shard position), so the trained quantizers — and
  // therefore quantized rankings — are invariant to the shard count.
  std::vector<const float*> rows(count_, nullptr);
  for (const IndexShard& shard : shards_) {
    for (size_t i = 0; i < shard.rows.size(); ++i) {
      rows[shard.orders[i]] = shard.rows.row(i);
    }
  }
  auto accessor = [&rows](size_t i) { return rows[i]; };
  quantizers_ = TrainQuantizers(accessor, rows.size(), dim_, qopts_, kQuantTrainSeed);
  qcodes_.assign(shards_.size(), QuantizedCodes{});
  for (size_t s = 0; s < shards_.size(); ++s) {
    EncodeRows(quantizers_, shards_[s].rows, 0, shards_[s].rows.size(), &qcodes_[s]);
  }
  quantized_ = true;
  return true;
}

std::vector<QuantCand> FlatL2Index::SearchQuantCandidates(const Embedding& query, size_t fetch_k,
                                                          const RetrievalQuality& quality,
                                                          const IdFilter& exclude) const {
  METIS_CHECK_EQ(query.size(), dim_);
  if (fetch_k == 0 || count_ == 0) {
    return {};
  }
  RetrievalPrecision tier = ResolveTier(quality, quantizers());
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  BoundedQuantTopK topk(fetch_k);
  if (tier == RetrievalPrecision::kFp32) {
    for (const IndexShard& shard : shards_) {
      ScanRowsExactInto(shard.rows, 0, shard.rows.size(), query.data(), qnorm,
                        shard.orders.data(), 0, exclude, topk);
    }
    return topk.DrainCands();
  }
  SqQuery sq;
  PqQuery pq;
  if (tier == RetrievalPrecision::kInt8) {
    BuildSqQuery(quantizers_.sq, query.data(), dim_, &sq);
  } else {
    BuildPqQuery(quantizers_.pq, query.data(), dim_, &pq);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const IndexShard& shard = shards_[s];
    const QuantizedCodes& codes = qcodes_[s];
    // Mirror prefix scans quantized; rows appended after the mirror was
    // encoded scan exactly into the same heap (quantize.h).
    size_t enc = std::min(codes.rows, shard.rows.size());
    if (tier == RetrievalPrecision::kInt8) {
      ScanSqRowsInto(codes, 0, shard.rows, 0, enc, sq, shard.orders.data(), 0, exclude, topk);
    } else {
      ScanPqRowsInto(codes, 0, shard.rows, 0, enc, pq, quantizers_.pq.m, shard.orders.data(), 0,
                     exclude, topk);
    }
    if (enc < shard.rows.size()) {
      ScanRowsExactInto(shard.rows, enc, shard.rows.size(), query.data(), qnorm,
                        shard.orders.data(), 0, exclude, topk);
    }
  }
  return topk.DrainCands();
}

size_t FlatL2Index::bytes_per_row(RetrievalPrecision tier) const {
  switch (tier) {
    case RetrievalPrecision::kFp32:
      return PaddedStride(dim_) * sizeof(float);
    case RetrievalPrecision::kInt8:
      return quantized_ && quantizers_.sq.valid() ? SqCodeStride(dim_) : 0;
    case RetrievalPrecision::kPq:
      return quantized_ && quantizers_.pq.valid() ? quantizers_.pq.m : 0;
  }
  return 0;
}

// --- IvfL2Index -------------------------------------------------------------

IvfL2Index::IvfL2Index(size_t dim, size_t nlist, size_t nprobe, uint64_t seed, size_t num_shards,
                       QuantizationOptions quant)
    : dim_(dim),
      nlist_(nlist),
      nprobe_(std::min(nprobe, nlist)),
      seed_(seed),
      num_shards_(num_shards),
      centroids_(dim),
      staged_(dim) {
  METIS_CHECK_GT(dim, 0u);
  METIS_CHECK_GT(nlist, 0u);
  METIS_CHECK_GT(nprobe, 0u);
  METIS_CHECK_GT(num_shards, 0u);
  qopts_ = quant;
}

void IvfL2Index::Add(ChunkId id, const Embedding& v) {
  METIS_CHECK_EQ(v.size(), dim_);
  ++count_;
  if (!trained_) {
    staged_.Append(id, v.data());
    return;
  }
  size_t list = NearestCentroid(v.data());
  lists_[list][ShardOfId(id, num_shards_)].Append(id, v.data(), list_counts_[list]++);
}

double IvfL2Index::NearestCentroidDistance(const float* v) const {
  double vnorm = SquaredNormBlocked(v, dim_);
  DotKernelFn dot = ActiveDotKernel();
  float best_d = std::numeric_limits<float>::max();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    float d = static_cast<float>(centroids_.norm(c) + vnorm - 2.0 * dot(centroids_.row(c), v, dim_));
    if (d < best_d) {
      best_d = d;
    }
  }
  return centroids_.size() == 0 ? 0.0 : std::max(0.0, static_cast<double>(best_d));
}

size_t IvfL2Index::NearestCentroid(const float* v) const {
  double vnorm = SquaredNormBlocked(v, dim_);
  DotKernelFn dot = ActiveDotKernel();
  size_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    float d = static_cast<float>(centroids_.norm(c) + vnorm - 2.0 * dot(centroids_.row(c), v, dim_));
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void IvfL2Index::Train(ThreadPool* pool) {
  METIS_CHECK(!trained_);
  METIS_CHECK_GT(staged_.size(), 0u);
  size_t n = staged_.size();
  size_t nlist = std::min(nlist_, n);

  auto parallel = [&](size_t count, const std::function<void(size_t, size_t)>& fn) {
    if (pool != nullptr && pool->num_threads() > 1) {
      pool->ParallelFor(count, fn);
    } else {
      fn(0, count);
    }
  };
  auto copy_row = [&](size_t i) {
    const float* r = staged_.row(i);
    return Embedding(r, r + dim_);
  };
  auto rebuild_centroids = [&](const std::vector<Embedding>& cents) {
    centroids_ = RowPool(dim_);
    for (size_t c = 0; c < cents.size(); ++c) {
      centroids_.Append(static_cast<ChunkId>(c), cents[c].data());
    }
  };

  // Farthest-point seeding from a deterministic stream (approximates
  // k-means++ well enough here). nearest_d[i] — the distance from row i to
  // its closest centroid so far — is maintained incrementally: appending a
  // centroid only needs one O(n * dim) sharded scan against that centroid,
  // instead of the seed's O(n * ncentroids * dim) rescan per pick. min() is
  // associative, so the incremental values (and the picks) are exact.
  Rng rng(seed_);
  std::vector<Embedding> cents;
  cents.push_back(copy_row(rng.Index(n)));
  std::vector<float> nearest_d(n, std::numeric_limits<float>::max());
  auto absorb_centroid = [&](const Embedding& c) {
    double cnorm = SquaredNormBlocked(c.data(), dim_);
    DotKernelFn dot = ActiveDotKernel();
    parallel(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        float d = static_cast<float>(cnorm + staged_.norm(i) -
                                     2.0 * dot(staged_.row(i), c.data(), dim_));
        if (d < nearest_d[i]) {
          nearest_d[i] = d;
        }
      }
    });
  };
  absorb_centroid(cents.back());
  while (cents.size() < nlist) {
    size_t best_i = 0;
    float best_d = -1;
    for (size_t i = 0; i < n; ++i) {
      if (nearest_d[i] > best_d) {
        best_d = nearest_d[i];
        best_i = i;
      }
    }
    cents.push_back(copy_row(best_i));
    absorb_centroid(cents.back());
  }

  // Lloyd rounds. Assignment (the O(n * nlist * dim) part) shards across the
  // pool into a per-row slot; the float accumulation then runs serially in
  // row order so centroids are bit-identical for every pool size.
  std::vector<size_t> assign(n);
  auto assign_all = [&]() {
    parallel(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        assign[i] = NearestCentroid(staged_.row(i));
      }
    });
  };
  for (int round = 0; round < 5; ++round) {
    rebuild_centroids(cents);
    assign_all();
    std::vector<Embedding> sums(cents.size(), Embedding(dim_, 0));
    std::vector<size_t> counts(cents.size(), 0);
    for (size_t i = 0; i < n; ++i) {
      const float* r = staged_.row(i);
      Embedding& sum = sums[assign[i]];
      for (size_t j = 0; j < dim_; ++j) {
        sum[j] += r[j];
      }
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < cents.size(); ++c) {
      if (counts[c] > 0) {
        for (size_t j = 0; j < dim_; ++j) {
          cents[c][j] = sums[c][j] / static_cast<float>(counts[c]);
        }
      }
    }
  }

  rebuild_centroids(cents);
  assign_all();
  // Fill the hash-partitioned lists in staged (insertion) order: a row's
  // in-list order is the position it would have in a single-shard list, so
  // search results cannot depend on num_shards_.
  lists_.clear();
  lists_.reserve(cents.size());
  for (size_t c = 0; c < cents.size(); ++c) {
    std::vector<IndexShard> shards;
    shards.reserve(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      shards.emplace_back(dim_);
    }
    lists_.push_back(std::move(shards));
  }
  list_counts_.assign(cents.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    size_t list = assign[i];
    ChunkId id = staged_.id(i);
    lists_[list][ShardOfId(id, num_shards_)].Append(id, staged_.row(i), list_counts_[list]++);
  }
  // Train-time centroid fit: the reference point the mutable index compares
  // newly sealed rows against to detect centroid-quality decay.
  double assign_dist_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    assign_dist_sum += NearestCentroidDistance(staged_.row(i));
  }
  train_mean_assign_dist_ = assign_dist_sum / static_cast<double>(n);
  staged_ = RowPool(dim_);
  trained_ = true;
}

IvfL2Index::ProbePlan IvfL2Index::ResolveProbe(const RetrievalQuality& quality) const {
  ProbePlan plan;
  switch (quality.mode) {
    case RetrievalQuality::ProbeMode::kIndexDefault:
      plan.adaptive = adaptive_.enabled;
      break;
    case RetrievalQuality::ProbeMode::kFixed:
      plan.adaptive = false;
      break;
    case RetrievalQuality::ProbeMode::kAdaptive:
      plan.adaptive = true;
      break;
  }
  if (plan.adaptive) {
    plan.budget = quality.nprobe > 0      ? quality.nprobe
                  : adaptive_.max_probes > 0 ? adaptive_.max_probes
                                             : nprobe_;
    plan.min_probes = std::max<size_t>(1, std::min(adaptive_.min_probes, plan.budget));
    plan.ratio = adaptive_.distance_ratio;
  } else {
    plan.budget = quality.nprobe > 0 ? quality.nprobe : nprobe_;
    plan.min_probes = plan.budget;
  }
  return plan;
}

IvfL2Index::ProbeSet IvfL2Index::PlanProbes(const float* q, double qnorm,
                                            const ProbePlan& plan) const {
  // Rank lists by centroid distance; probe the closest lists. Ties resolve
  // toward the lower list index (pair comparison), as in the seed.
  std::vector<std::pair<float, size_t>> order;
  order.reserve(centroids_.size());
  DotKernelFn dot = ActiveDotKernel();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    order.emplace_back(
        static_cast<float>(centroids_.norm(c) + qnorm - 2.0 * dot(centroids_.row(c), q, dim_)),
        c);
  }
  std::stable_sort(order.begin(), order.end());

  // Candidate-order bases run through the probed lists in probe order,
  // matching the seed's concatenate-then-stable-sort tie-break.
  ProbeSet set;
  size_t budget = std::min(plan.budget, order.size());
  // Adaptive early termination: once past min_probes, stop at the first list
  // whose centroid distance exceeds ratio x the closest centroid's distance.
  // Squared distances never go below zero (clamp guards decomposition
  // rounding), so a query sitting on a centroid (d0 == 0) stops right after
  // its mandatory probes.
  double cutoff = plan.adaptive && budget > 0
                      ? plan.ratio * std::max(0.0f, order[0].first)
                      : std::numeric_limits<double>::infinity();
  size_t base = 0;
  for (size_t p = 0; p < budget; ++p) {
    if (plan.adaptive && p >= plan.min_probes && static_cast<double>(order[p].first) > cutoff) {
      break;
    }
    set.lists.push_back(order[p].second);
    set.bases.push_back(base);
    base += list_counts_[order[p].second];
  }
  return set;
}

std::vector<SearchHit> IvfL2Index::SearchOne(const float* q, size_t k, const ProbePlan& plan,
                                             uint64_t* probes_used) const {
  METIS_CHECK(trained_);
  double qnorm = SquaredNormBlocked(q, dim_);
  ProbeSet probes = PlanProbes(q, qnorm, plan);
  // One heap across every shard of every probed list: the (distance, order)
  // total order makes the shard visit order irrelevant.
  BoundedTopK topk(k);
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    ScanProbedShard(lists_, probes.lists, probes.bases, shard, q, qnorm, IdFilter{}, topk);
  }
  if (probes_used != nullptr) {
    *probes_used = probes.lists.size();
  }
  return topk.Drain();
}

std::vector<OrderedHit> IvfL2Index::SearchOneOrdered(const float* q, size_t k,
                                                     const ProbePlan& plan,
                                                     const IdFilter& exclude,
                                                     uint64_t* probes_used) const {
  METIS_CHECK(trained_);
  double qnorm = SquaredNormBlocked(q, dim_);
  ProbeSet probes = PlanProbes(q, qnorm, plan);
  BoundedTopK topk(k);
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    ScanProbedShard(lists_, probes.lists, probes.bases, shard, q, qnorm, exclude, topk);
  }
  if (probes_used != nullptr) {
    *probes_used = probes.lists.size();
  }
  std::vector<OrderedHit> out;
  for (const Cand& c : topk.DrainCands()) {
    out.push_back(OrderedHit{c.id, c.dist, c.order});
  }
  return out;
}

std::vector<QuantCand> IvfL2Index::QuantCandidatesOne(const float* q, size_t fetch_k,
                                                      RetrievalPrecision tier,
                                                      const ProbePlan& plan,
                                                      const IdFilter& exclude,
                                                      uint64_t* probes_used) const {
  METIS_CHECK(trained_);
  double qnorm = SquaredNormBlocked(q, dim_);
  // Probe planning stays fp32 on every tier, so a quantized query probes
  // exactly the lists its fp32 twin would (tier-invariant probe counts).
  ProbeSet probes = PlanProbes(q, qnorm, plan);
  SqQuery sq;
  PqQuery pq;
  if (tier == RetrievalPrecision::kInt8) {
    BuildSqQuery(quantizers_.sq, q, dim_, &sq);
  } else {
    BuildPqQuery(quantizers_.pq, q, dim_, &pq);
  }
  BoundedQuantTopK topk(fetch_k);
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    for (size_t p = 0; p < probes.lists.size(); ++p) {
      const IndexShard& sh = lists_[probes.lists[p]][shard];
      const QuantizedCodes& codes = qcodes_[probes.lists[p]][shard];
      size_t enc = std::min(codes.rows, sh.rows.size());
      if (tier == RetrievalPrecision::kInt8) {
        ScanSqRowsInto(codes, 0, sh.rows, 0, enc, sq, sh.orders.data(), probes.bases[p], exclude,
                       topk);
      } else {
        ScanPqRowsInto(codes, 0, sh.rows, 0, enc, pq, quantizers_.pq.m, sh.orders.data(),
                       probes.bases[p], exclude, topk);
      }
      if (enc < sh.rows.size()) {
        // Rows assigned to this list after the mirror was encoded.
        ScanRowsExactInto(sh.rows, enc, sh.rows.size(), q, qnorm, sh.orders.data(),
                          probes.bases[p], exclude, topk);
      }
    }
  }
  if (probes_used != nullptr) {
    *probes_used = probes.lists.size();
  }
  return topk.DrainCands();
}

std::vector<SearchHit> IvfL2Index::SearchOneQuant(const float* q, size_t k,
                                                  RetrievalPrecision tier,
                                                  const RetrievalQuality& quality,
                                                  const ProbePlan& plan,
                                                  uint64_t* probes_used) const {
  size_t fetch = k * ResolveRerankFactor(quality);
  std::vector<QuantCand> cands = QuantCandidatesOne(q, fetch, tier, plan, IdFilter{}, probes_used);
  double qnorm = SquaredNormBlocked(q, dim_);
  return RerankToHits(std::move(cands), q, qnorm, k);
}

std::vector<OrderedHit> IvfL2Index::SearchOrdered(const Embedding& query, size_t k,
                                                  const RetrievalQuality& quality,
                                                  const IdFilter& exclude) const {
  METIS_CHECK_EQ(query.size(), dim_);
  uint64_t probes = 0;
  std::vector<OrderedHit> hits =
      SearchOneOrdered(query.data(), k, ResolveProbe(quality), exclude, &probes);
  stats_.Record(probes);
  return hits;
}

std::vector<SearchHit> IvfL2Index::Search(const Embedding& query, size_t k) const {
  return Search(query, k, RetrievalQuality{});
}

std::vector<SearchHit> IvfL2Index::Search(const Embedding& query, size_t k,
                                          const RetrievalQuality& quality) const {
  METIS_CHECK_EQ(query.size(), dim_);
  RetrievalPrecision tier = ResolveTier(quality, quantizers());
  uint64_t probes = 0;
  std::vector<SearchHit> hits =
      tier == RetrievalPrecision::kFp32
          ? SearchOne(query.data(), k, ResolveProbe(quality), &probes)
          : SearchOneQuant(query.data(), k, tier, quality, ResolveProbe(quality), &probes);
  stats_.Record(probes);
  return hits;
}

std::vector<uint64_t> IvfL2Index::probe_histogram() const {
  std::vector<uint64_t> hist(kProbeHistogramBuckets);
  for (size_t i = 0; i < hist.size(); ++i) {
    hist[i] = stats_.hist[i].load(std::memory_order_relaxed);
  }
  return hist;
}

std::vector<QuantCand> IvfL2Index::SearchQuantCandidates(const Embedding& query, size_t fetch_k,
                                                         const RetrievalQuality& quality,
                                                         const IdFilter& exclude) const {
  METIS_CHECK_EQ(query.size(), dim_);
  RetrievalPrecision tier = ResolveTier(quality, quantizers());
  uint64_t probes = 0;
  std::vector<QuantCand> cands;
  if (tier == RetrievalPrecision::kFp32) {
    // Exact candidates (no mirror, or fp32 requested): distances are final.
    std::vector<OrderedHit> hits =
        SearchOneOrdered(query.data(), fetch_k, ResolveProbe(quality), exclude, &probes);
    cands.reserve(hits.size());
    for (const OrderedHit& h : hits) {
      cands.push_back(QuantCand{h.distance, h.order, h.id, nullptr, 0});
    }
  } else {
    cands = QuantCandidatesOne(query.data(), fetch_k, tier, ResolveProbe(quality), exclude,
                               &probes);
  }
  stats_.Record(probes);
  return cands;
}

bool IvfL2Index::BuildQuantizedMirrors() {
  if (!qopts_.any() || !trained_ || count_ == 0) {
    return false;
  }
  // Train over rows in (list, in-list order) — both shard-invariant — so the
  // quantizers, and therefore quantized rankings, do not depend on the shard
  // count.
  std::vector<const float*> rows;
  rows.reserve(count_);
  for (size_t l = 0; l < lists_.size(); ++l) {
    std::vector<const float*> in_list(list_counts_[l], nullptr);
    for (const IndexShard& sh : lists_[l]) {
      for (size_t i = 0; i < sh.rows.size(); ++i) {
        in_list[sh.orders[i]] = sh.rows.row(i);
      }
    }
    rows.insert(rows.end(), in_list.begin(), in_list.end());
  }
  auto accessor = [&rows](size_t i) { return rows[i]; };
  quantizers_ = TrainQuantizers(accessor, rows.size(), dim_, qopts_, seed_);
  qcodes_.assign(lists_.size(), std::vector<QuantizedCodes>(num_shards_));
  for (size_t l = 0; l < lists_.size(); ++l) {
    for (size_t s = 0; s < num_shards_; ++s) {
      EncodeRows(quantizers_, lists_[l][s].rows, 0, lists_[l][s].rows.size(), &qcodes_[l][s]);
    }
  }
  quantized_ = true;
  return true;
}

size_t IvfL2Index::bytes_per_row(RetrievalPrecision tier) const {
  switch (tier) {
    case RetrievalPrecision::kFp32:
      return PaddedStride(dim_) * sizeof(float);
    case RetrievalPrecision::kInt8:
      return quantized_ && quantizers_.sq.valid() ? SqCodeStride(dim_) : 0;
    case RetrievalPrecision::kPq:
      return quantized_ && quantizers_.pq.valid() ? quantizers_.pq.m : 0;
  }
  return 0;
}

std::vector<std::vector<SearchHit>> IvfL2Index::SearchBatch(const std::vector<Embedding>& queries,
                                                            size_t k, ThreadPool* pool) const {
  return SearchBatch(queries, k, pool, RetrievalQuality{});
}

std::vector<std::vector<SearchHit>> IvfL2Index::SearchBatch(const std::vector<Embedding>& queries,
                                                            size_t k, ThreadPool* pool,
                                                            const RetrievalQuality& quality) const {
  return SearchBatch(queries, k, pool, std::vector<RetrievalQuality>(queries.size(), quality));
}

std::vector<std::vector<SearchHit>> IvfL2Index::SearchBatch(
    const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
    const std::vector<RetrievalQuality>& qualities) const {
  METIS_CHECK(trained_);
  METIS_CHECK_EQ(qualities.size(), queries.size());
  for (const Embedding& q : queries) {
    METIS_CHECK_EQ(q.size(), dim_);
  }
  std::vector<std::vector<SearchHit>> results(queries.size());
  if (queries.empty()) {
    return results;
  }
  size_t nq = queries.size();
  size_t nshards = num_shards_;
  bool parallel = pool != nullptr && pool->num_threads() > 1;

  std::vector<RetrievalPrecision> tiers(nq);
  bool any_quant = false;
  for (size_t qi = 0; qi < nq; ++qi) {
    tiers[qi] = ResolveTier(qualities[qi], quantizers());
    any_quant = any_quant || tiers[qi] != RetrievalPrecision::kFp32;
  }
  if (any_quant) {
    // Mixed-tier group: the exact subset rides the shared 3-phase sweep (the
    // recursive call resolves all-fp32 and takes the path below); quantized
    // queries fan out per query, probes recorded after the barrier. Either
    // way results[i] is bit-identical to Search(queries[i], k, qualities[i]).
    std::vector<Embedding> exact_q;
    std::vector<RetrievalQuality> exact_quals;
    std::vector<size_t> exact_idx;
    std::vector<size_t> quant_idx;
    for (size_t qi = 0; qi < nq; ++qi) {
      if (tiers[qi] == RetrievalPrecision::kFp32) {
        exact_idx.push_back(qi);
        exact_q.push_back(queries[qi]);
        exact_quals.push_back(qualities[qi]);
      } else {
        quant_idx.push_back(qi);
      }
    }
    if (!exact_q.empty()) {
      std::vector<std::vector<SearchHit>> exact_res = SearchBatch(exact_q, k, pool, exact_quals);
      for (size_t j = 0; j < exact_idx.size(); ++j) {
        results[exact_idx[j]] = std::move(exact_res[j]);
      }
    }
    std::vector<uint64_t> probes(quant_idx.size(), 0);
    auto quant_sweep = [&](size_t b, size_t e) {
      for (size_t t = b; t < e; ++t) {
        size_t qi = quant_idx[t];
        results[qi] = SearchOneQuant(queries[qi].data(), k, tiers[qi], qualities[qi],
                                     ResolveProbe(qualities[qi]), &probes[t]);
      }
    };
    if (parallel && quant_idx.size() > 1) {
      pool->ParallelFor(quant_idx.size(), quant_sweep);
    } else {
      quant_sweep(0, quant_idx.size());
    }
    for (uint64_t p : probes) {
      stats_.Record(p);
    }
    return results;
  }

  // Phase 1 — plan: per-query centroid ranking + adaptive rule, into
  // disjoint slots (deterministic for any partitioning). Each query resolves
  // its OWN quality override, so a coalesced group can mix probe modes and
  // budgets; the probe count is fixed here, before any row is scanned.
  std::vector<double> qnorms(nq);
  std::vector<ProbeSet> sets(nq);
  auto plan_phase = [&](size_t qb, size_t qe) {
    for (size_t qi = qb; qi < qe; ++qi) {
      qnorms[qi] = SquaredNormBlocked(queries[qi].data(), dim_);
      sets[qi] = PlanProbes(queries[qi].data(), qnorms[qi], ResolveProbe(qualities[qi]));
    }
  };
  if (parallel && nq > 1) {
    pool->ParallelFor(nq, plan_phase);
  } else {
    plan_phase(0, nq);
  }

  // Phase 2 — scan: fan the (query x shard) grid out across the pool, one
  // heap per cell.
  std::vector<BoundedTopK> heaps;
  heaps.reserve(nq * nshards);
  for (size_t i = 0; i < nq * nshards; ++i) {
    heaps.emplace_back(k);
  }
  auto scan_phase = [&](size_t tb, size_t te) {
    for (size_t t = tb; t < te; ++t) {
      size_t qi = t / nshards;
      size_t shard = t % nshards;
      ScanProbedShard(lists_, sets[qi].lists, sets[qi].bases, shard, queries[qi].data(),
                      qnorms[qi], IdFilter{}, heaps[t]);
    }
  };
  if (parallel && nq * nshards > 1) {
    pool->ParallelFor(nq * nshards, scan_phase);
  } else {
    scan_phase(0, nq * nshards);
  }

  // Phase 3 — merge per query and fold the probe tally into the counters
  // after the barrier, on the calling thread.
  for (size_t qi = 0; qi < nq; ++qi) {
    results[qi] = MergeShardTopK(heaps, qi * nshards, /*stride=*/1, nshards, k);
    stats_.Record(sets[qi].lists.size());
  }
  return results;
}

// --- VectorDatabase ---------------------------------------------------------

namespace {
// Query texts repeat across profiler probes, config sweeps, and feedback
// runs, but the working set per run is modest.
constexpr size_t kQueryCacheCapacity = 512;
}  // namespace

std::unique_ptr<VectorIndex> MakeBackendIndex(size_t dim, const RetrievalIndexOptions& options,
                                              IvfL2Index** ivf_out) {
  *ivf_out = nullptr;
  size_t shards = std::max<size_t>(1, options.shards);
  if (options.backend == RetrievalIndexOptions::Backend::kIvf) {
    auto ivf = std::make_unique<IvfL2Index>(dim, options.nlist, options.nprobe,
                                            options.train_seed, shards, options.quant);
    ivf->set_adaptive_probe(options.adaptive);
    *ivf_out = ivf.get();
    return ivf;
  }
  return std::make_unique<FlatL2Index>(dim, shards, options.quant);
}

VectorDatabase::VectorDatabase(EmbeddingModel embedder, DatabaseMetadata metadata,
                               RetrievalIndexOptions index_options)
    : embedder_(std::move(embedder)),
      metadata_(std::move(metadata)),
      index_options_(index_options),
      query_cache_(&embedder_, kQueryCacheCapacity) {
  // In the body, not the init list: the factory writes ivf_, whose own
  // default initializer would otherwise run afterwards and null it out again.
  if (index_options_.mutable_index) {
    auto mut = std::make_unique<MutableIndex>(embedder_.dim(), index_options_);
    mutable_ = mut.get();
    index_ = std::move(mut);
  } else {
    index_ = MakeBackendIndex(embedder_.dim(), index_options_, &ivf_);
  }
  if (index_options_.lexical) {
    lexical_ = std::make_unique<LexicalIndex>(std::max<size_t>(1, index_options_.shards),
                                              index_options_.mutation.memtable_rows,
                                              index_options_.mutation.compact_segments);
  }
}

// Out of line: LexicalIndex is incomplete in the header.
VectorDatabase::~VectorDatabase() = default;

const IvfL2Index* VectorDatabase::ivf_index() const {
  return mutable_ != nullptr ? mutable_->base_ivf() : ivf_;
}

ChunkId VectorDatabase::AddChunk(Chunk chunk) {
  chunk.id = static_cast<ChunkId>(chunks_.size());
  index_->Add(chunk.id, embedder_.Embed(chunk.text));
  if (lexical_ != nullptr) {
    lexical_->Add(chunk.id, chunk.text);
  }
  chunks_.push_back(std::move(chunk));
  deleted_.push_back(false);
  return chunks_.back().id;
}

std::vector<ChunkId> VectorDatabase::AddChunks(std::vector<Chunk> chunks, ThreadPool* pool) {
  // Embedding (tokenize + hash) dominates bulk load and each text is
  // independent, so the batch shards across the pool; indexing then runs
  // serially in order, preserving AddChunk-for-AddChunk identical ids and
  // insertion orders.
  std::vector<std::string> texts;
  texts.reserve(chunks.size());
  for (const Chunk& c : chunks) {
    texts.push_back(c.text);
  }
  std::vector<Embedding> embeddings = embedder_.EmbedBatch(texts, pool);
  std::vector<ChunkId> ids;
  ids.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    Chunk& chunk = chunks[i];
    chunk.id = static_cast<ChunkId>(chunks_.size());
    index_->Add(chunk.id, embeddings[i]);
    if (lexical_ != nullptr) {
      lexical_->Add(chunk.id, chunk.text);
    }
    chunks_.push_back(std::move(chunk));
    deleted_.push_back(false);
    ids.push_back(chunks_.back().id);
  }
  return ids;
}

void VectorDatabase::FinalizeIndex(ThreadPool* pool) {
  if (mutable_ != nullptr) {
    mutable_->Finalize(pool);
    return;
  }
  if (ivf_ != nullptr && !ivf_->trained() && ivf_->size() > 0) {
    ivf_->Train(pool);
  }
  // Quantized mirrors (no-op unless index_options.quant enables a tier).
  index_->BuildQuantizedMirrors();
}

std::vector<ChunkId> VectorDatabase::InsertChunks(std::vector<Chunk> chunks, ThreadPool* pool) {
  METIS_CHECK(mutable_ != nullptr);
  // Post-finalize, index_->Add routes into the mutable index's memtable, so
  // the bulk-load path is exactly the streaming-insert path.
  return AddChunks(std::move(chunks), pool);
}

size_t VectorDatabase::DeleteChunks(const std::vector<ChunkId>& ids) {
  METIS_CHECK(mutable_ != nullptr);
  size_t deleted = 0;
  for (ChunkId id : ids) {
    METIS_CHECK_GE(id, 0);
    METIS_CHECK_LT(static_cast<size_t>(id), chunks_.size());
    if (deleted_[static_cast<size_t>(id)]) {
      continue;
    }
    METIS_CHECK(mutable_->Delete(id));
    if (lexical_ != nullptr) {
      METIS_CHECK(lexical_->Remove(id));
    }
    deleted_[static_cast<size_t>(id)] = true;
    ++deleted_count_;
    ++deleted;
  }
  return deleted;
}

bool VectorDatabase::chunk_live(ChunkId id) const {
  METIS_CHECK_GE(id, 0);
  METIS_CHECK_LT(static_cast<size_t>(id), chunks_.size());
  return !deleted_[static_cast<size_t>(id)];
}

namespace {

// Does this quality leave the pure-dense fast path? (The fast path must stay
// byte-for-byte the pre-hybrid code: parity when the knob is off.)
bool NeedsHybridPath(const RetrievalQuality& quality) {
  return quality.hybrid || quality.filter.active();
}

// Deterministic weighted reciprocal-rank fusion over the two backends'
// candidate lists (fixed backend order: dense, then lexical):
//
//     fused(d) = sum_b  w_b / (60 + rank_b(d) + 1)
//
// with ranks 0-based and the classic RRF damping constant 60. The final
// ranking runs under (fused score desc, chunk id asc) — a total order over
// deterministic inputs, so fusion is bit-stable for any shard/thread count.
// Returned distance = -fused score (lower = better, like both legs).
std::vector<SearchHit> FuseReciprocalRank(const std::vector<SearchHit>& dense, float dense_w,
                                          const std::vector<SearchHit>& lexical, float lexical_w,
                                          size_t k) {
  struct Fused {
    double score = 0;
    ChunkId id = -1;
  };
  std::vector<Fused> fused;
  std::unordered_map<ChunkId, size_t> slot;
  auto fold = [&](const std::vector<SearchHit>& hits, double w) {
    for (size_t rank = 0; rank < hits.size(); ++rank) {
      auto [it, inserted] = slot.try_emplace(hits[rank].id, fused.size());
      if (inserted) {
        fused.push_back(Fused{0.0, hits[rank].id});
      }
      fused[it->second].score += w / (60.0 + static_cast<double>(rank) + 1.0);
    }
  };
  fold(dense, static_cast<double>(dense_w));
  fold(lexical, static_cast<double>(lexical_w));
  std::sort(fused.begin(), fused.end(), [](const Fused& a, const Fused& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (fused.size() > k) {
    fused.resize(k);
  }
  std::vector<SearchHit> out;
  out.reserve(fused.size());
  for (const Fused& f : fused) {
    out.push_back(SearchHit{f.id, -static_cast<float>(f.score)});
  }
  return out;
}

}  // namespace

std::shared_ptr<const std::vector<ChunkId>> VectorDatabase::CompileFilter(
    const MetadataFilter& filter) const {
  std::lock_guard<std::mutex> lock(filter_mu_);
  if (cached_filter_excluded_ != nullptr && cached_filter_ == filter &&
      cached_filter_chunks_ == chunks_.size() && cached_filter_deletes_ == deleted_count_) {
    return cached_filter_excluded_;
  }
  auto excluded = std::make_shared<std::vector<ChunkId>>();
  for (const Chunk& c : chunks_) {
    if (!filter.Matches(c)) {
      excluded->push_back(c.id);  // Ids are assigned in order: already sorted.
    }
  }
  cached_filter_ = filter;
  cached_filter_chunks_ = chunks_.size();
  cached_filter_deletes_ = deleted_count_;
  cached_filter_excluded_ = excluded;
  return excluded;
}

std::vector<SearchHit> VectorDatabase::RetrieveHybrid(const std::string& query_text, size_t k,
                                                      const RetrievalQuality& quality) const {
  // Compile the metadata filter into a sorted excluded-id set, pushed into
  // every backend's scan (inside the scan, before top-k — the tombstone rule).
  std::shared_ptr<const std::vector<ChunkId>> excluded;
  IdFilter exclude;
  if (quality.filter.active()) {
    excluded = CompileFilter(quality.filter);
    exclude = IdFilter{excluded->data(), excluded->data() + excluded->size()};
  }

  bool want_dense = !quality.hybrid || quality.dense_weight > 0;
  // The lexical leg needs a lexical index; without one the query serves
  // dense-only (the knob can only be cheaper, never wrong).
  bool want_lexical = quality.hybrid && quality.lexical_weight > 0 && lexical_ != nullptr;
  if (!want_dense && !want_lexical) {
    want_dense = true;  // Both weights zero: degenerate, serve dense.
  }

  std::vector<SearchHit> dense_hits;
  if (want_dense) {
    const Embedding& query = query_cache_.Get(query_text);
    if (exclude.empty()) {
      dense_hits = index_->Search(query, k, quality);
    } else if (mutable_ != nullptr) {
      dense_hits = mutable_->SearchFiltered(query, k, quality, exclude);
    } else {
      // SearchOrdered is the static backends' exclusion-aware scan (always
      // exact fp32; filtered scans don't ride quantized mirrors).
      for (const OrderedHit& h : index_->SearchOrdered(query, k, quality, exclude)) {
        dense_hits.push_back(SearchHit{h.id, h.distance});
      }
    }
    dense_searches_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<SearchHit> lexical_hits;
  if (want_lexical) {
    lexical_hits = lexical_->Search(query_text, k, exclude, search_pool_);
    lexical_searches_.fetch_add(1, std::memory_order_relaxed);
  }

  if (!want_lexical) {
    return dense_hits;  // Filter-only or dense-only: the leg's native ranking.
  }
  if (!want_dense) {
    return lexical_hits;  // Lexical-only: BM25's native ranking.
  }
  fused_queries_.fetch_add(1, std::memory_order_relaxed);
  return FuseReciprocalRank(dense_hits, quality.dense_weight, lexical_hits,
                            quality.lexical_weight, k);
}

std::vector<SearchHit> VectorDatabase::RetrieveWithDistances(const std::string& query_text,
                                                             size_t k,
                                                             const RetrievalQuality& quality) const {
  if (NeedsHybridPath(quality)) {
    return RetrieveHybrid(query_text, k, quality);
  }
  return index_->Search(query_cache_.Get(query_text), k, quality);
}

std::vector<std::vector<SearchHit>> VectorDatabase::RetrieveBatch(
    const std::vector<std::string>& query_texts, size_t k,
    const RetrievalQuality& quality) const {
  if (NeedsHybridPath(quality)) {
    std::vector<std::vector<SearchHit>> results;
    results.reserve(query_texts.size());
    for (const std::string& text : query_texts) {
      results.push_back(RetrieveHybrid(text, k, quality));
    }
    return results;
  }
  // GetBatch serves cache hits and embeds the misses in one EmbedBatch
  // (sharded across the search pool), returning owned copies so later cache
  // evictions cannot invalidate the batch.
  std::vector<Embedding> queries = query_cache_.GetBatch(query_texts, search_pool_);
  return index_->SearchBatch(queries, k, search_pool_, quality);
}

std::vector<std::vector<SearchHit>> VectorDatabase::RetrieveBatch(
    const std::vector<std::string>& query_texts, size_t k,
    const std::vector<RetrievalQuality>& qualities) const {
  METIS_CHECK_EQ(qualities.size(), query_texts.size());
  bool any_hybrid = false;
  for (const RetrievalQuality& q : qualities) {
    if (NeedsHybridPath(q)) {
      any_hybrid = true;
      break;
    }
  }
  if (any_hybrid) {
    // Mixed batches split: hybrid/filtered queries run their per-query path,
    // the plain remainder still rides one coalesced SearchBatch sweep.
    std::vector<std::vector<SearchHit>> results(query_texts.size());
    std::vector<size_t> plain;
    for (size_t i = 0; i < query_texts.size(); ++i) {
      if (NeedsHybridPath(qualities[i])) {
        results[i] = RetrieveHybrid(query_texts[i], k, qualities[i]);
      } else {
        plain.push_back(i);
      }
    }
    if (!plain.empty()) {
      std::vector<std::string> texts;
      std::vector<RetrievalQuality> quals;
      texts.reserve(plain.size());
      quals.reserve(plain.size());
      for (size_t i : plain) {
        texts.push_back(query_texts[i]);
        quals.push_back(qualities[i]);
      }
      std::vector<Embedding> queries = query_cache_.GetBatch(texts, search_pool_);
      std::vector<std::vector<SearchHit>> swept =
          index_->SearchBatch(queries, k, search_pool_, quals);
      for (size_t j = 0; j < plain.size(); ++j) {
        results[plain[j]] = std::move(swept[j]);
      }
    }
    return results;
  }
  std::vector<Embedding> queries = query_cache_.GetBatch(query_texts, search_pool_);
  return index_->SearchBatch(queries, k, search_pool_, qualities);
}

HybridSearchStats VectorDatabase::hybrid_stats() const {
  HybridSearchStats out;
  out.dense_searches = dense_searches_.load(std::memory_order_relaxed);
  out.lexical_searches = lexical_searches_.load(std::memory_order_relaxed);
  out.fused_queries = fused_queries_.load(std::memory_order_relaxed);
  return out;
}

void VectorDatabase::ResetHybridStats() const {
  dense_searches_.store(0, std::memory_order_relaxed);
  lexical_searches_.store(0, std::memory_order_relaxed);
  fused_queries_.store(0, std::memory_order_relaxed);
  if (lexical_ != nullptr) {
    lexical_->ResetSearchStats();
  }
}

std::vector<ChunkId> VectorDatabase::Retrieve(const std::string& query_text, size_t k,
                                              const RetrievalQuality& quality) const {
  std::vector<ChunkId> ids;
  for (const SearchHit& hit : RetrieveWithDistances(query_text, k, quality)) {
    ids.push_back(hit.id);
  }
  return ids;
}

const Chunk& VectorDatabase::chunk(ChunkId id) const {
  METIS_CHECK_GE(id, 0);
  METIS_CHECK_LT(static_cast<size_t>(id), chunks_.size());
  return chunks_[static_cast<size_t>(id)];
}

}  // namespace metis
