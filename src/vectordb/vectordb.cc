#include "src/vectordb/vectordb.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace metis {

namespace {

// Shared top-k selection over (id, distance) candidates.
std::vector<SearchHit> TopK(std::vector<SearchHit> hits, size_t k) {
  std::stable_sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    return a.distance < b.distance;
  });
  if (hits.size() > k) {
    hits.resize(k);
  }
  return hits;
}

}  // namespace

FlatL2Index::FlatL2Index(size_t dim) : dim_(dim) { METIS_CHECK_GT(dim, 0u); }

void FlatL2Index::Add(ChunkId id, const Embedding& v) {
  METIS_CHECK_EQ(v.size(), dim_);
  ids_.push_back(id);
  data_.insert(data_.end(), v.begin(), v.end());
}

std::vector<SearchHit> FlatL2Index::Search(const Embedding& query, size_t k) const {
  METIS_CHECK_EQ(query.size(), dim_);
  std::vector<SearchHit> hits;
  hits.reserve(ids_.size());
  for (size_t row = 0; row < ids_.size(); ++row) {
    const float* p = &data_[row * dim_];
    double d = 0;
    for (size_t j = 0; j < dim_; ++j) {
      double diff = static_cast<double>(p[j]) - query[j];
      d += diff * diff;
    }
    hits.push_back(SearchHit{ids_[row], static_cast<float>(d)});
  }
  return TopK(std::move(hits), k);
}

IvfL2Index::IvfL2Index(size_t dim, size_t nlist, size_t nprobe, uint64_t seed)
    : dim_(dim), nlist_(nlist), nprobe_(std::min(nprobe, nlist)), seed_(seed) {
  METIS_CHECK_GT(dim, 0u);
  METIS_CHECK_GT(nlist, 0u);
  METIS_CHECK_GT(nprobe, 0u);
}

void IvfL2Index::Add(ChunkId id, const Embedding& v) {
  METIS_CHECK_EQ(v.size(), dim_);
  if (!trained_) {
    staged_.emplace_back(id, v);
    return;
  }
  lists_[NearestCentroid(v)].push_back(ListEntry{id, v});
}

size_t IvfL2Index::size() const {
  size_t n = staged_.size();
  for (const auto& l : lists_) {
    n += l.size();
  }
  return n;
}

size_t IvfL2Index::NearestCentroid(const Embedding& v) const {
  size_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    float d = L2DistanceSquared(centroids_[c], v);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void IvfL2Index::Train() {
  METIS_CHECK(!trained_);
  METIS_CHECK(!staged_.empty());
  size_t nlist = std::min(nlist_, staged_.size());

  // k-means++ style seeding from a deterministic stream, then Lloyd rounds.
  Rng rng(seed_);
  centroids_.clear();
  centroids_.push_back(staged_[rng.Index(staged_.size())].second);
  while (centroids_.size() < nlist) {
    // Pick the staged vector farthest from its nearest centroid (deterministic
    // farthest-point seeding approximates k-means++ well enough here).
    size_t best_i = 0;
    float best_d = -1;
    for (size_t i = 0; i < staged_.size(); ++i) {
      float d = std::numeric_limits<float>::max();
      for (const auto& c : centroids_) {
        d = std::min(d, L2DistanceSquared(c, staged_[i].second));
      }
      if (d > best_d) {
        best_d = d;
        best_i = i;
      }
    }
    centroids_.push_back(staged_[best_i].second);
  }

  for (int round = 0; round < 5; ++round) {
    std::vector<Embedding> sums(centroids_.size(), Embedding(dim_, 0));
    std::vector<size_t> counts(centroids_.size(), 0);
    for (const auto& [id, v] : staged_) {
      size_t c = NearestCentroid(v);
      for (size_t j = 0; j < dim_; ++j) {
        sums[c][j] += v[j];
      }
      ++counts[c];
    }
    for (size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] > 0) {
        for (size_t j = 0; j < dim_; ++j) {
          centroids_[c][j] = sums[c][j] / static_cast<float>(counts[c]);
        }
      }
    }
  }

  lists_.assign(centroids_.size(), {});
  for (auto& [id, v] : staged_) {
    lists_[NearestCentroid(v)].push_back(ListEntry{id, std::move(v)});
  }
  staged_.clear();
  trained_ = true;
}

std::vector<SearchHit> IvfL2Index::Search(const Embedding& query, size_t k) const {
  METIS_CHECK(trained_);
  METIS_CHECK_EQ(query.size(), dim_);

  // Rank lists by centroid distance; probe the closest nprobe lists.
  std::vector<std::pair<float, size_t>> order;
  order.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    order.emplace_back(L2DistanceSquared(centroids_[c], query), c);
  }
  std::stable_sort(order.begin(), order.end());

  std::vector<SearchHit> hits;
  size_t probes = std::min(nprobe_, order.size());
  for (size_t p = 0; p < probes; ++p) {
    for (const auto& entry : lists_[order[p].second]) {
      hits.push_back(SearchHit{entry.id, L2DistanceSquared(entry.v, query)});
    }
  }
  return TopK(std::move(hits), k);
}

VectorDatabase::VectorDatabase(EmbeddingModel embedder, DatabaseMetadata metadata)
    : embedder_(std::move(embedder)), metadata_(std::move(metadata)), index_(embedder_.dim()) {}

ChunkId VectorDatabase::AddChunk(Chunk chunk) {
  chunk.id = static_cast<ChunkId>(chunks_.size());
  index_.Add(chunk.id, embedder_.Embed(chunk.text));
  chunks_.push_back(std::move(chunk));
  return chunks_.back().id;
}

std::vector<SearchHit> VectorDatabase::RetrieveWithDistances(const std::string& query_text,
                                                             size_t k) const {
  return index_.Search(embedder_.Embed(query_text), k);
}

std::vector<ChunkId> VectorDatabase::Retrieve(const std::string& query_text, size_t k) const {
  std::vector<ChunkId> ids;
  for (const SearchHit& hit : RetrieveWithDistances(query_text, k)) {
    ids.push_back(hit.id);
  }
  return ids;
}

const Chunk& VectorDatabase::chunk(ChunkId id) const {
  METIS_CHECK_GE(id, 0);
  METIS_CHECK_LT(static_cast<size_t>(id), chunks_.size());
  return chunks_[static_cast<size_t>(id)];
}

}  // namespace metis
