// Vector database: chunk store + similarity index.
//
// Mirrors the paper's retrieval substrate (FAISS IndexFlatL2 over
// Cohere-embed-v3 chunk embeddings, §6): documents are split into fixed-size
// token chunks, each chunk is embedded, and queries retrieve top-k chunks by
// exact L2 distance. An IVF index is provided as an optional accelerated
// backend; both return identical results on the workloads used here.
//
// Retrieval substrate layout (the high-throughput rebuild):
//
//   - Vectors live in RowPool: contiguous, 64-byte-aligned structure-of-arrays
//     storage (row-major float rows padded to a 16-float stride), with a
//     precomputed squared L2 norm per row. Distances are evaluated as
//         |x - q|^2 = |x|^2 + |q|^2 - 2 * dot(x, q)
//     so the inner loop is a pure float-data dot product. DotBlocked runs
//     that dot over eight independent double accumulators, which lets the
//     compiler vectorize it without -ffast-math (no reassociation of a single
//     accumulation chain is needed) and keeps eight chains in flight even in
//     scalar code. Double accumulation keeps the decomposition's absolute
//     error near 1e-14, so rankings match the seed's direct scalar loop
//     bit-for-bit except for distinct-but-near-identical rows (true distance
//     below ~1e-12, i.e. rows within ~1e-6 of the query that are not bitwise
//     equal — bitwise duplicates still score an exact 0); in that regime the
//     two formulas may round differently, and sub-zero rounding clamps to 0.
//   - Top-k selection is a bounded max-heap over (distance, candidate order):
//     O(n log k) with O(k) memory instead of materializing and full-sorting
//     all n candidates. The candidate-order tie-break reproduces the seed's
//     stable_sort semantics exactly: equal distances rank by insertion order.
//   - SearchBatch answers many queries in one sweep: rows are visited in
//     cache-sized blocks and each block is scored against every query in the
//     batch before moving on, so the index streams through memory once per
//     block rather than once per query. An optional ThreadPool shards the
//     batch across workers; results are identical for any thread count.
//   - IVF inverted lists and centroids use the same RowPool layout, and
//     IvfL2Index::Train can shard its O(n * nlist * dim) scans over a pool.

#ifndef METIS_SRC_VECTORDB_VECTORDB_H_
#define METIS_SRC_VECTORDB_VECTORDB_H_

#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/embed/embedding.h"

namespace metis {

using ChunkId = int32_t;

struct Chunk {
  ChunkId id = -1;
  int32_t doc_id = -1;
  std::string text;
  int32_t token_count = 0;
  // Ids of workload facts contained in this chunk (empty for pure noise).
  std::vector<int32_t> fact_ids;
};

// Search hit: chunk id plus L2^2 distance (lower is closer).
struct SearchHit {
  ChunkId id = -1;
  float distance = 0;
};

// --- SIMD-friendly kernels -------------------------------------------------

// Dot product over float data with eight independent double accumulators:
// auto-vectorizable under strict FP semantics (no reassociation needed) and
// precise enough that the decomposed distance rounds to the same float as the
// seed's direct double-precision loop — which is what keeps rankings
// bit-identical. Deterministic for a given (a, b, n).
double DotBlocked(const float* a, const float* b, size_t n);

// Squared L2 norm with the same accumulation structure as DotBlocked, so
// dot(x, x) == SquaredNormBlocked(x) bit-for-bit (exact-duplicate rows get an
// exact-zero distance).
double SquaredNormBlocked(const float* a, size_t n);

// --- Aligned SoA row storage -----------------------------------------------

// Minimal 64-byte-aligned allocator so row starts sit on cache-line (and
// widest-SIMD-register) boundaries.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlignment));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

// Contiguous aligned row storage with per-row precomputed squared norms and
// chunk ids. Shared by the flat index, the IVF inverted lists, and the IVF
// centroid table.
class RowPool {
 public:
  explicit RowPool(size_t dim);

  // Copies one dim()-length row; the padded tail of the stride is zeroed.
  void Append(ChunkId id, const float* v);

  size_t size() const { return ids_.size(); }
  size_t dim() const { return dim_; }
  size_t stride() const { return stride_; }
  const float* row(size_t i) const { return data_.data() + i * stride_; }
  double norm(size_t i) const { return norms_[i]; }
  ChunkId id(size_t i) const { return ids_[i]; }

 private:
  size_t dim_;
  size_t stride_;  // dim rounded up to 16 floats (one cache line).
  std::vector<float, AlignedAllocator<float>> data_;
  std::vector<double> norms_;  // Full precision: see DotBlocked.
  std::vector<ChunkId> ids_;
};

// --- Index interface --------------------------------------------------------

// Interface shared by index implementations.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual void Add(ChunkId id, const Embedding& v) = 0;
  // Returns up to k nearest ids by L2 distance, closest first; ties broken by
  // insertion order for determinism.
  virtual std::vector<SearchHit> Search(const Embedding& query, size_t k) const = 0;
  // Batched search: one result vector per query, each identical to what
  // Search(queries[i], k) returns. `pool` optionally shards the batch across
  // workers; results do not depend on the pool size. The default
  // implementation loops Search; concrete indexes override it with a shared
  // sweep over their storage.
  virtual std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                          size_t k,
                                                          ThreadPool* pool = nullptr) const;
  virtual size_t size() const = 0;
};

// Exact brute-force L2 index (FAISS IndexFlatL2 equivalent).
class FlatL2Index : public VectorIndex {
 public:
  explicit FlatL2Index(size_t dim);

  void Add(ChunkId id, const Embedding& v) override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                  size_t k,
                                                  ThreadPool* pool = nullptr) const override;
  size_t size() const override { return rows_.size(); }

 private:
  size_t dim_;
  RowPool rows_;
};

// Inverted-file index: k-means coarse quantizer + per-list exact search.
// Approximate unless nprobe == nlist. Provided as the "extension" backend the
// paper's future-work discussion gestures at; experiments default to flat.
class IvfL2Index : public VectorIndex {
 public:
  IvfL2Index(size_t dim, size_t nlist, size_t nprobe, uint64_t seed);

  void Add(ChunkId id, const Embedding& v) override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                  size_t k,
                                                  ThreadPool* pool = nullptr) const override;
  // O(1): a running count maintained by Add()/Train().
  size_t size() const override { return count_; }

  // Builds the coarse quantizer from the vectors added so far (call once after
  // bulk load; Add() after Train() assigns to the nearest centroid). `pool`
  // optionally shards the farthest-point seeding and Lloyd assignment scans;
  // the trained index is identical for any pool size.
  void Train(ThreadPool* pool = nullptr);
  bool trained() const { return trained_; }

 private:
  size_t NearestCentroid(const float* v) const;
  std::vector<SearchHit> SearchOne(const float* q, size_t k) const;

  size_t dim_;
  size_t nlist_;
  size_t nprobe_;
  uint64_t seed_;
  bool trained_ = false;
  size_t count_ = 0;
  RowPool centroids_;
  // Pre-train staging area, emptied by Train().
  RowPool staged_;
  std::vector<RowPool> lists_;
};

// Database metadata shown to the LLM query profiler (paper §4.1, §A.1): a
// one-line description of the corpus plus the chunk size.
struct DatabaseMetadata {
  std::string description;
  int chunk_size_tokens = 0;
  std::string domain;  // e.g. "finance", "meetings", "wiki".
};

// The assembled retrieval database: chunks + embeddings + index + metadata.
class VectorDatabase {
 public:
  VectorDatabase(EmbeddingModel embedder, DatabaseMetadata metadata);

  // Not movable: the query cache points at the owned embedder.
  VectorDatabase(const VectorDatabase&) = delete;
  VectorDatabase& operator=(const VectorDatabase&) = delete;

  // Adds a chunk; embeds its text and indexes it. Returns the chunk id.
  ChunkId AddChunk(Chunk chunk);

  // Embeds the query text and returns the top-k chunks, closest first.
  // Query embeddings are memoized (EmbeddingCache), so repeated retrievals of
  // the same text — config sweeps, golden-config feedback — skip re-embedding.
  std::vector<ChunkId> Retrieve(const std::string& query_text, size_t k) const;
  std::vector<SearchHit> RetrieveWithDistances(const std::string& query_text, size_t k) const;

  // Batched retrieval: embeds every query (through the memo cache) and runs
  // one SearchBatch sweep over the index. results[i] matches what
  // RetrieveWithDistances(query_texts[i], k) returns.
  std::vector<std::vector<SearchHit>> RetrieveBatch(const std::vector<std::string>& query_texts,
                                                    size_t k) const;

  // Optional worker pool used by RetrieveBatch; not owned, may be null.
  void set_search_pool(ThreadPool* pool) { search_pool_ = pool; }

  const Chunk& chunk(ChunkId id) const;
  size_t num_chunks() const { return chunks_.size(); }
  const DatabaseMetadata& metadata() const { return metadata_; }
  const EmbeddingModel& embedder() const { return embedder_; }
  size_t query_cache_hits() const { return query_cache_.hits(); }

 private:
  EmbeddingModel embedder_;
  DatabaseMetadata metadata_;
  std::vector<Chunk> chunks_;
  FlatL2Index index_;
  mutable EmbeddingCache query_cache_;
  ThreadPool* search_pool_ = nullptr;
};

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_VECTORDB_H_
