// Vector database: chunk store + similarity index.
//
// Mirrors the paper's retrieval substrate (FAISS IndexFlatL2 over
// Cohere-embed-v3 chunk embeddings, §6): documents are split into fixed-size
// token chunks, each chunk is embedded, and queries retrieve top-k chunks by
// exact L2 distance. An IVF index is provided as an optional accelerated
// backend; both return identical results on the workloads used here.

#ifndef METIS_SRC_VECTORDB_VECTORDB_H_
#define METIS_SRC_VECTORDB_VECTORDB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/embed/embedding.h"

namespace metis {

using ChunkId = int32_t;

struct Chunk {
  ChunkId id = -1;
  int32_t doc_id = -1;
  std::string text;
  int32_t token_count = 0;
  // Ids of workload facts contained in this chunk (empty for pure noise).
  std::vector<int32_t> fact_ids;
};

// Search hit: chunk id plus L2^2 distance (lower is closer).
struct SearchHit {
  ChunkId id = -1;
  float distance = 0;
};

// Interface shared by index implementations.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual void Add(ChunkId id, const Embedding& v) = 0;
  // Returns up to k nearest ids by L2 distance, closest first; ties broken by
  // insertion order for determinism.
  virtual std::vector<SearchHit> Search(const Embedding& query, size_t k) const = 0;
  virtual size_t size() const = 0;
};

// Exact brute-force L2 index (FAISS IndexFlatL2 equivalent).
class FlatL2Index : public VectorIndex {
 public:
  explicit FlatL2Index(size_t dim);

  void Add(ChunkId id, const Embedding& v) override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  size_t size() const override { return ids_.size(); }

 private:
  size_t dim_;
  std::vector<ChunkId> ids_;
  std::vector<float> data_;  // Row-major, size() * dim_.
};

// Inverted-file index: k-means coarse quantizer + per-list exact search.
// Approximate unless nprobe == nlist. Provided as the "extension" backend the
// paper's future-work discussion gestures at; experiments default to flat.
class IvfL2Index : public VectorIndex {
 public:
  IvfL2Index(size_t dim, size_t nlist, size_t nprobe, uint64_t seed);

  void Add(ChunkId id, const Embedding& v) override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  size_t size() const override;

  // Builds the coarse quantizer from the vectors added so far (call once after
  // bulk load; Add() after Train() assigns to the nearest centroid).
  void Train();
  bool trained() const { return trained_; }

 private:
  size_t NearestCentroid(const Embedding& v) const;

  size_t dim_;
  size_t nlist_;
  size_t nprobe_;
  uint64_t seed_;
  bool trained_ = false;
  std::vector<Embedding> centroids_;
  // Pre-train staging area, emptied by Train().
  std::vector<std::pair<ChunkId, Embedding>> staged_;
  struct ListEntry {
    ChunkId id;
    Embedding v;
  };
  std::vector<std::vector<ListEntry>> lists_;
};

// Database metadata shown to the LLM query profiler (paper §4.1, §A.1): a
// one-line description of the corpus plus the chunk size.
struct DatabaseMetadata {
  std::string description;
  int chunk_size_tokens = 0;
  std::string domain;  // e.g. "finance", "meetings", "wiki".
};

// The assembled retrieval database: chunks + embeddings + index + metadata.
class VectorDatabase {
 public:
  VectorDatabase(EmbeddingModel embedder, DatabaseMetadata metadata);

  // Adds a chunk; embeds its text and indexes it. Returns the chunk id.
  ChunkId AddChunk(Chunk chunk);

  // Embeds the query text and returns the top-k chunks, closest first.
  std::vector<ChunkId> Retrieve(const std::string& query_text, size_t k) const;
  std::vector<SearchHit> RetrieveWithDistances(const std::string& query_text, size_t k) const;

  const Chunk& chunk(ChunkId id) const;
  size_t num_chunks() const { return chunks_.size(); }
  const DatabaseMetadata& metadata() const { return metadata_; }
  const EmbeddingModel& embedder() const { return embedder_; }

 private:
  EmbeddingModel embedder_;
  DatabaseMetadata metadata_;
  std::vector<Chunk> chunks_;
  FlatL2Index index_;
};

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_VECTORDB_H_
