// Vector database: chunk store + similarity index.
//
// Mirrors the paper's retrieval substrate (FAISS IndexFlatL2 over
// Cohere-embed-v3 chunk embeddings, §6): documents are split into fixed-size
// token chunks, each chunk is embedded, and queries retrieve top-k chunks by
// exact L2 distance. An IVF index is the accelerated backend; its recall/
// latency tradeoff (nprobe, fixed or per-query adaptive) is exposed as a
// METIS-style quality knob.
//
// Retrieval substrate layout (the high-throughput rebuild):
//
//   - Vectors live in RowPool: contiguous, 64-byte-aligned structure-of-arrays
//     storage (row-major float rows padded to a 16-float stride), with a
//     precomputed squared L2 norm per row. Distances are evaluated as
//         |x - q|^2 = |x|^2 + |q|^2 - 2 * dot(x, q)
//     so the inner loop is a pure float-data dot product.
//   - The dot kernel lives in kernels.h/.cc behind a CPUID-based runtime
//     dispatcher with three tiers: portable auto-vectorized scalar, AVX2
//     intrinsics, and AVX-512 intrinsics. All tiers accumulate in double over
//     eight chains with identical rounding (no FMA) and an identical
//     reduction tree, so the dispatched kernel returns the bit-identical
//     double on every tier — rankings do not depend on the host CPU, and the
//     parity tests force each tier and assert exactly that. Double
//     accumulation keeps the decomposition's absolute error near 1e-14, so
//     rankings match the seed's direct scalar loop bit-for-bit except for
//     distinct-but-near-identical rows (true distance below ~1e-12); in that
//     regime the two formulas may round differently, and sub-zero rounding
//     clamps to 0. Bitwise-duplicate rows still score an exact 0.
//   - Top-k selection is a bounded max-heap over (distance, candidate order):
//     O(n log k) with O(k) memory instead of materializing and full-sorting
//     all n candidates. The candidate-order tie-break reproduces the seed's
//     stable_sort semantics exactly: equal distances rank by insertion order.
//   - SearchBatch answers many queries in one sweep: rows are visited in
//     cache-sized blocks and each block is scored against every query in the
//     batch before moving on, so the index streams through memory once per
//     block rather than once per query. An optional ThreadPool shards the
//     batch across workers; results are identical for any thread count.
//   - IVF inverted lists and centroids use the same RowPool layout, and
//     IvfL2Index::Train can shard its O(n * nlist * dim) scans over a pool.
//   - Row storage is hash-partitioned across N IndexShards (each its own
//     RowPool; flat rows and IVF lists both). Every shard row remembers the
//     candidate order it would have had in the single-shard index, so
//     shard-parallel top-k heaps merge back to the exact single-shard
//     ranking — shard count, like thread count, never changes results.
//
// Recall subsystem (IVF):
//
//   - nprobe — how many inverted lists a query scans — is the retrieval-depth
//     knob: more probes mean higher recall and proportionally more work.
//   - AdaptiveProbePolicy picks nprobe *per query* with a distance-ratio
//     early-termination rule: probe lists in ascending centroid distance and
//     stop (after min_probes) at the first list whose centroid distance
//     exceeds distance_ratio x the closest centroid's distance, or at the
//     max_probes budget. Queries that land inside a cluster stop early;
//     queries between clusters keep probing — so at equal *average* probe
//     count, adaptive probing spends the work where recall needs it.
//   - RetrievalQuality threads a per-call override (fixed vs adaptive, probe
//     budget) from the serving-stack configuration down to the index, so the
//     joint scheduler can treat retrieval depth like its other quality knobs
//     (JointSchedulerOptions::adaptive_nprobe / nprobe_budget).
//   - recall.h provides RecallEval (recall@k against flat-index ground truth)
//     and bench_recall sweeps nlist x nprobe x adaptive mode into
//     BENCH_recall.json (schema in docs/BENCH.md).

#ifndef METIS_SRC_VECTORDB_VECTORDB_H_
#define METIS_SRC_VECTORDB_VECTORDB_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/embed/embedding.h"
#include "src/vectordb/kernels.h"

namespace metis {

using ChunkId = int32_t;

struct Chunk {
  ChunkId id = -1;
  int32_t doc_id = -1;
  std::string text;
  int32_t token_count = 0;
  // Ids of workload facts contained in this chunk (empty for pure noise).
  std::vector<int32_t> fact_ids;
  // Typed metadata attributes (hybrid retrieval's filter push-down). Assigned
  // deterministically by DatasetGenerator as pure functions of the chunk's
  // document layout — no RNG — so corpora that never filter are unchanged.
  int32_t source = 0;       // Which upstream source/collection the doc came from.
  int32_t time_bucket = 0;  // Coarse timestamp bucket of the doc.
  int32_t section = 0;      // Section tag: chunk's index within its document.
};

// Conjunctive pre-scan filter over Chunk attributes; -1 = wildcard. Pushed
// into both the dense and lexical scans as an id-exclusion set compiled by
// VectorDatabase (filtering inside the scan, before top-k — the same rule
// tombstones follow).
struct MetadataFilter {
  int32_t source = -1;
  int32_t time_bucket = -1;
  int32_t section = -1;

  bool active() const { return source >= 0 || time_bucket >= 0 || section >= 0; }
  bool Matches(const Chunk& c) const {
    return (source < 0 || c.source == source) &&
           (time_bucket < 0 || c.time_bucket == time_bucket) &&
           (section < 0 || c.section == section);
  }
  friend bool operator==(const MetadataFilter& a, const MetadataFilter& b) {
    return a.source == b.source && a.time_bucket == b.time_bucket && a.section == b.section;
  }
  friend bool operator!=(const MetadataFilter& a, const MetadataFilter& b) { return !(a == b); }
};

// Search hit: chunk id plus L2^2 distance (lower is closer).
struct SearchHit {
  ChunkId id = -1;
  float distance = 0;
};

// Search hit carrying the backend's candidate order (the (distance, order)
// tie-break position). The mutable serving index merges base-index hits with
// memtable/segment hits under that shared total order, so the base has to
// surface it (see VectorIndex::SearchOrdered and mutable_index.h).
struct OrderedHit {
  ChunkId id = -1;
  float distance = 0;
  size_t order = 0;
};

// Non-owning view of a sorted id set excluded from a search (the mutable
// index's tombstones). Filtering happens *inside* the scan, before top-k
// selection — post-filtering a top-k would let deleted rows crowd out live
// ones and break parity with an index built from the live set only.
struct IdFilter {
  const ChunkId* begin = nullptr;
  const ChunkId* end = nullptr;

  bool empty() const { return begin == end; }
  bool contains(ChunkId id) const { return std::binary_search(begin, end, id); }
};

// --- Aligned SoA row storage -----------------------------------------------

// Minimal 64-byte-aligned allocator so row starts sit on cache-line (and
// widest-SIMD-register) boundaries.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlignment));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

// Contiguous aligned row storage with per-row precomputed squared norms and
// chunk ids. Shared by the flat index, the IVF inverted lists, and the IVF
// centroid table. Norms are kernel-target-independent (see kernels.h), so a
// pool built under one dispatch tier is valid under any other.
class RowPool {
 public:
  explicit RowPool(size_t dim);

  // Copies one dim()-length row; the padded tail of the stride is zeroed.
  void Append(ChunkId id, const float* v);

  // Preallocates capacity for `rows` rows. The mutable index's append-only
  // row log depends on this: a reserved pool never reallocates its arrays, so
  // rows below a published watermark can be read concurrently with appends.
  void Reserve(size_t rows) {
    data_.reserve(rows * stride_);
    norms_.reserve(rows);
    ids_.reserve(rows);
  }

  size_t size() const { return ids_.size(); }
  size_t dim() const { return dim_; }
  size_t stride() const { return stride_; }
  const float* row(size_t i) const { return data_.data() + i * stride_; }
  double norm(size_t i) const { return norms_[i]; }
  ChunkId id(size_t i) const { return ids_[i]; }

 private:
  size_t dim_;
  size_t stride_;  // dim rounded up to 16 floats (one cache line).
  std::vector<float, AlignedAllocator<float>> data_;
  std::vector<double> norms_;  // Full precision: see kernels.h.
  std::vector<ChunkId> ids_;
};

// --- Shard storage ----------------------------------------------------------

// One hash-partition of an index's vector storage: its own 64-byte-aligned
// RowPool plus, for each row, the candidate order the row would have had in
// the equivalent single-shard index (global insertion order for the flat
// index; in-list insertion order for an IVF inverted list). Top-k selection
// runs under the (distance, candidate order) total order, which is
// partition-invariant: scanning shards in any order into one heap — or in
// parallel into per-shard heaps merged afterwards — reproduces the
// single-shard ranking bit for bit, ids, order, and distances alike.
struct IndexShard {
  explicit IndexShard(size_t dim) : rows(dim) {}

  void Append(ChunkId id, const float* v, size_t order) {
    rows.Append(id, v);
    orders.push_back(order);
  }

  void Reserve(size_t n) {
    rows.Reserve(n);
    orders.reserve(n);
  }

  RowPool rows;
  std::vector<size_t> orders;  // Parallel to rows: single-shard-equivalent order.
};

// Which shard a row id hashes to under `num_shards` partitions (SplitMix64 of
// the id). A pure function of (id, num_shards), so rebuilding an index at the
// same shard count always reproduces the same partitioning.
size_t ShardOfId(ChunkId id, size_t num_shards);

// --- Probe policies ---------------------------------------------------------

// Per-query adaptive nprobe: the distance-ratio early-termination rule
// described in the header comment. Distances are squared L2, so
// distance_ratio is a ratio of squared distances (2.25 == 1.5x in true
// distance).
struct AdaptiveProbePolicy {
  bool enabled = false;
  size_t min_probes = 1;  // Always probe at least this many lists.
  size_t max_probes = 0;  // Per-query probe budget; 0 = the index's nprobe.
  double distance_ratio = 2.25;
};

// Per-call retrieval-quality override, threaded from the serving-stack
// configuration (JointSchedulerOptions) through SynthesisExecutor /
// RetrievalBatcher / VectorDatabase down to the index. Ignored by exact
// (flat) backends. Since PR 4 the override is per *query*, not just per
// call: the profiler-driven RetrievalDepthPolicy (src/core/) assigns each
// query its own quality, and the batched sweeps accept one RetrievalQuality
// per query (heterogeneous groups stay bit-identical to per-query scans).
// Scan-tier precision: which row representation the candidate-generation scan
// reads. fp32 is the exact path (bit-identical to the pre-quantization index);
// int8 and PQ scan 4-32x narrower quantized mirrors and feed an exact fp32
// rerank tail (see quantize.h). Ordered by cost: cheaper tiers compare lower,
// so "shed precision" under overload means moving toward kPq.
enum class RetrievalPrecision : uint8_t {
  kFp32 = 0,
  kInt8 = 1,
  kPq = 2,
};

// Stable lowercase name ("fp32", "int8", "pq") for logs and bench tags.
const char* RetrievalPrecisionName(RetrievalPrecision p);

// Scan-cost rank for shedding decisions: fp32 (2) > int8 (1) > pq (0). The
// overload ladder's precision rung only ever moves a query to a LOWER-cost
// tier — degradation never makes a query more expensive.
inline int RetrievalPrecisionCost(RetrievalPrecision p) {
  switch (p) {
    case RetrievalPrecision::kFp32:
      return 2;
    case RetrievalPrecision::kInt8:
      return 1;
    case RetrievalPrecision::kPq:
      return 0;
  }
  return 2;
}

struct RetrievalQuality {
  enum class ProbeMode {
    kIndexDefault,  // Use the index's own AdaptiveProbePolicy / nprobe.
    kFixed,         // Force fixed-nprobe probing.
    kAdaptive,      // Force adaptive probing.
  };
  ProbeMode mode = ProbeMode::kIndexDefault;
  // >0 overrides the probe count (fixed mode) or budget (adaptive mode).
  size_t nprobe = 0;
  // Scan tier for this query. Quantized tiers require the index to have built
  // quantized mirrors (RetrievalIndexOptions::quant); an index without the
  // requested mirror serves the query exactly instead — the knob can only be
  // cheaper, never wrong. kFp32 (the default) is bit-identical to an index
  // with no quantization support at all.
  RetrievalPrecision precision = RetrievalPrecision::kFp32;
  // Over-fetch multiple for the exact rerank tail: a quantized scan selects
  // k * rerank_factor candidates under (approx distance, order), then the
  // exact kernel re-scores them and the best k win under (exact distance,
  // order). 0 = the default factor (4). Ignored on the fp32 tier.
  size_t rerank_factor = 0;
  // --- Hybrid retrieval (the "which retriever" knob; src/core/hybrid_router.h) ---
  // Off (default): the dense path above, bit-identical to pre-hybrid builds.
  // On: the database runs the weighted backends and fuses their candidate
  // lists by reciprocal-rank fusion. A weight-0 backend is never scanned; a
  // single-weighted backend returns its native ranking unfused. Requires the
  // database to have built a lexical index (RetrievalIndexOptions::lexical)
  // for the lexical leg; without one the query serves dense-only — like the
  // quantized tiers, the knob can only be cheaper, never wrong.
  bool hybrid = false;
  float dense_weight = 1.0f;
  float lexical_weight = 0.0f;
  // Metadata filter pushed into every backend's scan (active() == false by
  // default). Usable with or without `hybrid`; a filtered dense scan runs on
  // the exact fp32 tier.
  MetadataFilter filter;
};

// The effective over-fetch multiple for a quality (0 = default 4).
inline size_t ResolveRerankFactor(const RetrievalQuality& quality) {
  return quality.rerank_factor > 0 ? quality.rerank_factor : 4;
}

// --- Quantized mirror storage (built by quantize.cc) -------------------------

// Build-time knobs: which quantized mirrors an index materializes alongside
// its fp32 rows (RetrievalIndexOptions::quant). Mirrors are pure accelerators:
// they never change what precision=fp32 returns.
struct QuantizationOptions {
  bool sq = false;  // int8 scalar quantization (per-dimension affine).
  bool pq = false;  // Product quantization (m subspaces x <=256 centroids).
  // PQ subspace count; clamped down to the nearest divisor of dim at train
  // time. Bytes/row on the PQ tier is exactly the effective m.
  size_t pq_m = 8;
  // PQ k-means trains on a deterministic strided sample of at most this many
  // rows (training is O(rows * 256 * dim * iters)).
  size_t pq_train_rows = 4096;
  size_t pq_train_iters = 5;
  bool any() const { return sq || pq; }
};

// Int8 scalar quantizer: per-dimension affine params over the training rows.
// code = round((x - vmin[d]) / scale[d]) clamped to [0, 255].
struct Int8Params {
  std::vector<float> vmin;
  std::vector<float> scale;
  bool valid() const { return !vmin.empty(); }
};

// Product quantizer: m subspaces of dsub dims, each with its own centroid
// codebook (row-major: centroids[(s * ncentroids + c) * dsub + d]).
struct PqParams {
  size_t m = 0;
  size_t dsub = 0;
  size_t ncentroids = 0;
  std::vector<float> centroids;
  bool valid() const { return m > 0; }
};

// The quantizers an index trained over its rows. Shared with the mutable
// wrapper, which encodes sealed segments against its base's params so segment
// codes and base codes live in the same code space.
struct IndexQuantizers {
  Int8Params sq;
  PqParams pq;
  bool any() const { return sq.valid() || pq.valid(); }
};

// Quantized mirror of (a prefix of) one IndexShard's RowPool: parallel code
// arrays, one row of codes per fp32 row. Rows appended after the mirror was
// encoded (rows >= `rows`) are scanned exactly instead — the same rule that
// keeps the mutable index's memtable exact.
struct QuantizedCodes {
  size_t rows = 0;
  // SQ: rows x sq_stride uint8 codes (stride = dim padded to 64 bytes), plus
  // the per-row correction term sum_d (scale[d] * code[d])^2 the asymmetric
  // distance needs (quantize.h).
  size_t sq_stride = 0;
  std::vector<uint8_t, AlignedAllocator<uint8_t>> sq;
  std::vector<double> sq_row_const;
  // PQ: rows x m uint8 centroid codes.
  std::vector<uint8_t> pq;
};

// Candidate surfaced by a quantized scan, carrying its row location so the
// rerank tail can re-score it with the exact kernel. pool == nullptr marks a
// candidate whose dist is already exact (memtable rows, un-encoded suffixes,
// fp32 fallbacks); rerank leaves it untouched.
struct QuantCand {
  float dist;
  size_t order;
  ChunkId id;
  const RowPool* pool;
  uint32_t row;
};

// --- Index interface --------------------------------------------------------

// Interface shared by index implementations.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual void Add(ChunkId id, const Embedding& v) = 0;
  // Returns up to k nearest ids by L2 distance, closest first; ties broken by
  // insertion order for determinism.
  virtual std::vector<SearchHit> Search(const Embedding& query, size_t k) const = 0;
  // Batched search: one result vector per query, each identical to what
  // Search(queries[i], k) returns. `pool` optionally shards the batch across
  // workers; results do not depend on the pool size. The default
  // implementation loops Search; concrete indexes override it with a shared
  // sweep over their storage.
  virtual std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                          size_t k,
                                                          ThreadPool* pool = nullptr) const;
  // Quality-aware variants. Exact backends have no recall knob: the defaults
  // ignore `quality` and forward to the plain overloads. Approximate backends
  // (IVF) override them to resolve probing from their policy + the per-call
  // override, so callers can pass quality through uniformly without knowing
  // the backend.
  virtual std::vector<SearchHit> Search(const Embedding& query, size_t k,
                                        const RetrievalQuality& quality) const {
    (void)quality;
    return Search(query, k);
  }
  virtual std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                          size_t k, ThreadPool* pool,
                                                          const RetrievalQuality& quality) const {
    (void)quality;
    return SearchBatch(queries, k, pool);
  }
  // Heterogeneous-quality batch: qualities[i] applies to queries[i] only
  // (the per-query retrieval-depth knob). results[i] must be bit-identical
  // to Search(queries[i], k, qualities[i]) for every i. Exact backends
  // ignore the qualities; the default loops the quality-aware Search, and
  // concrete indexes override it with a shared sweep.
  virtual std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
      const std::vector<RetrievalQuality>& qualities) const;
  // Top-k with the backend's candidate orders attached and `exclude` (sorted
  // tombstoned ids) filtered out before selection. This is the base-index
  // hook for the mutable serving index (mutable_index.h): its memtable and
  // segment heaps merge with these hits under the shared (distance, order)
  // total order. The default maps Search's ranks to orders and only supports
  // an empty filter; the concrete backends override it with real scans.
  virtual std::vector<OrderedHit> SearchOrdered(const Embedding& query, size_t k,
                                                const RetrievalQuality& quality,
                                                const IdFilter& exclude) const;
  // --- Quantized-tier hooks ---
  // Trains quantizers over the rows added so far and encodes the quantized
  // mirrors (per the backend's QuantizationOptions). Idempotent-by-intent:
  // called once after bulk load / (re)train. Returns false when the backend
  // has no quantization configured. Not synchronized with concurrent reads.
  virtual bool BuildQuantizedMirrors() { return false; }
  // The trained quantizers, or null when no mirror exists. The mutable
  // wrapper encodes sealed segments against its base's quantizers.
  virtual const IndexQuantizers* quantizers() const { return nullptr; }
  // Up to fetch_k candidates under the requested tier's (approx distance,
  // order) total order, with row locations attached for the exact rerank
  // tail. SearchOrdered stays exact regardless of quality.precision; this is
  // the quantized counterpart the mutable index merges from. Falls back to
  // exact candidates (pool == nullptr) when the tier's mirror is absent. The
  // default serves exact candidates through SearchOrdered. Counts toward
  // probe stats exactly like Search — the rerank tail is not a probe.
  virtual std::vector<QuantCand> SearchQuantCandidates(const Embedding& query, size_t fetch_k,
                                                       const RetrievalQuality& quality,
                                                       const IdFilter& exclude) const;
  virtual size_t size() const = 0;
};

// Exact brute-force L2 index (FAISS IndexFlatL2 equivalent). Storage is
// hash-partitioned across `num_shards` IndexShards — each its own aligned
// RowPool, so shards can live on (and be scanned by) different cores or
// sockets — and SearchBatch fans the (shard x query) grid out across the
// ThreadPool. Results are bit-identical to the single-shard index for any
// shard count and any thread count (see IndexShard).
class FlatL2Index : public VectorIndex {
 public:
  explicit FlatL2Index(size_t dim, size_t num_shards = 1, QuantizationOptions quant = {});

  void Add(ChunkId id, const Embedding& v) override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  // quality.precision routes to the quantized mirrors + exact rerank when
  // mirrors exist; kFp32 (and any tier with no mirror) is the exact path,
  // bit-identical to the quality-less overload.
  std::vector<SearchHit> Search(const Embedding& query, size_t k,
                                const RetrievalQuality& quality) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                  size_t k,
                                                  ThreadPool* pool = nullptr) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries, size_t k,
                                                  ThreadPool* pool,
                                                  const RetrievalQuality& quality) const override;
  // Heterogeneous batch: fp32 queries ride the plain shared sweep; quantized
  // queries fan out per query. results[i] is bit-identical to
  // Search(queries[i], k, qualities[i]).
  std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
      const std::vector<RetrievalQuality>& qualities) const override;
  // Exact scan with tombstone filtering; orders are global insertion orders.
  // Always exact regardless of quality.precision (the quantized counterpart
  // is SearchQuantCandidates).
  std::vector<OrderedHit> SearchOrdered(const Embedding& query, size_t k,
                                        const RetrievalQuality& quality,
                                        const IdFilter& exclude) const override;
  bool BuildQuantizedMirrors() override;
  const IndexQuantizers* quantizers() const override {
    return quantized_ ? &quantizers_ : nullptr;
  }
  std::vector<QuantCand> SearchQuantCandidates(const Embedding& query, size_t fetch_k,
                                               const RetrievalQuality& quality,
                                               const IdFilter& exclude) const override;
  size_t size() const override { return count_; }
  size_t num_shards() const { return shards_.size(); }
  // Scan-tier bytes per row (padded strides included): the memory the hot
  // candidate scan streams for one row on each tier. 0 = tier unavailable.
  size_t bytes_per_row(RetrievalPrecision tier) const;

 private:
  size_t dim_;
  size_t count_ = 0;  // Rows added so far; doubles as the next global order.
  std::vector<IndexShard> shards_;
  QuantizationOptions qopts_;
  bool quantized_ = false;
  IndexQuantizers quantizers_;
  std::vector<QuantizedCodes> qcodes_;  // Parallel to shards_.
};

// Inverted-file index: k-means coarse quantizer + per-list exact search.
// Approximate unless nprobe == nlist; recall is controlled by the fixed
// nprobe, or per query by an AdaptiveProbePolicy / RetrievalQuality override.
// Like the flat index, row storage is hash-partitioned: every inverted list
// is split across `num_shards` IndexShards, and batched search fans the
// (query x shard) grid out across the ThreadPool after a per-query probe-
// planning pass. Centroids, training, and probe selection are shard-blind, so
// rankings (and probe counts) are bit-identical for any shard count.
class IvfL2Index : public VectorIndex {
 public:
  IvfL2Index(size_t dim, size_t nlist, size_t nprobe, uint64_t seed, size_t num_shards = 1,
             QuantizationOptions quant = {});

  void Add(ChunkId id, const Embedding& v) override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries,
                                                  size_t k,
                                                  ThreadPool* pool = nullptr) const override;
  // Quality-aware variants: probing is resolved from the index's policy and
  // the per-call override (see RetrievalQuality). The plain overrides above
  // forward here with the default quality.
  std::vector<SearchHit> Search(const Embedding& query, size_t k,
                                const RetrievalQuality& quality) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries, size_t k,
                                                  ThreadPool* pool,
                                                  const RetrievalQuality& quality) const override;
  // Heterogeneous per-query qualities: the coalesced sweep resolves one
  // ProbePlan per query from qualities[i] — probe schedules, results, and
  // probe accounting are bit-identical to per-query Search calls (the
  // uniform-quality overloads all funnel here).
  std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
      const std::vector<RetrievalQuality>& qualities) const override;
  // Probed scan with tombstone filtering; orders are the probe-concatenation
  // positions (the same orders the plain Search selects under). Counts toward
  // the probe stats exactly like Search.
  std::vector<OrderedHit> SearchOrdered(const Embedding& query, size_t k,
                                        const RetrievalQuality& quality,
                                        const IdFilter& exclude) const override;
  // Trains quantizers over the inverted lists and encodes per-list-shard
  // mirrors. Call after Train(); rows added later are scanned exactly (the
  // un-encoded-suffix rule).
  bool BuildQuantizedMirrors() override;
  const IndexQuantizers* quantizers() const override {
    return quantized_ ? &quantizers_ : nullptr;
  }
  // Probe planning (centroid ranking, adaptive rule) is always fp32, so a
  // quantized query probes exactly the lists its fp32 twin would — probe
  // counts are tier-invariant, and the rerank tail never counts as a probe.
  std::vector<QuantCand> SearchQuantCandidates(const Embedding& query, size_t fetch_k,
                                               const RetrievalQuality& quality,
                                               const IdFilter& exclude) const override;
  // Scan-tier bytes per row (see FlatL2Index::bytes_per_row).
  size_t bytes_per_row(RetrievalPrecision tier) const;
  // O(1): a running count maintained by Add()/Train().
  size_t size() const override { return count_; }

  // Builds the coarse quantizer from the vectors added so far (call once after
  // bulk load; Add() after Train() assigns to the nearest centroid). `pool`
  // optionally shards the farthest-point seeding and Lloyd assignment scans;
  // the trained index is identical for any pool size.
  void Train(ThreadPool* pool = nullptr);
  bool trained() const { return trained_; }

  // Per-query adaptive probing policy (off by default). Takes effect on the
  // next search; not synchronized with in-flight searches.
  void set_adaptive_probe(const AdaptiveProbePolicy& policy) { adaptive_ = policy; }
  const AdaptiveProbePolicy& adaptive_probe() const { return adaptive_; }
  size_t nlist() const { return nlist_; }
  size_t nprobe() const { return nprobe_; }
  size_t num_shards() const { return num_shards_; }
  uint64_t train_seed() const { return seed_; }

  // Squared L2 distance from `v` to its nearest centroid. The mutable index
  // samples this over newly sealed segments: when the mean drifts past a
  // ratio of the train-time mean (below), the centroids no longer describe
  // the data and a retrain is triggered.
  double NearestCentroidDistance(const float* v) const;
  // Mean nearest-centroid distance of the training set, recorded by Train().
  double train_mean_assign_dist() const { return train_mean_assign_dist_; }

  // Snapshots another index's probe counters into this one. Retrains swap in
  // a freshly trained IvfL2Index; carrying the counters over keeps
  // mean_probes / probe_histogram cumulative across the swap.
  void CopyProbeStatsFrom(const IvfL2Index& other) { stats_ = other.stats_; }

  // --- Probe accounting (recall/latency evaluation) ---
  // Relaxed atomics: concurrent const searches on a shared index stay
  // race-free (as in PR 1) and never lose counts. Batch sweeps merge worker
  // tallies after the barrier, so reads between search operations are exact.
  uint64_t searches() const { return stats_.searches.load(std::memory_order_relaxed); }
  uint64_t probes_issued() const { return stats_.probes.load(std::memory_order_relaxed); }
  double mean_probes() const {
    uint64_t s = searches();
    return s == 0 ? 0.0 : static_cast<double>(probes_issued()) / static_cast<double>(s);
  }
  // Per-query probe-depth histogram: bucket p counts searches that scanned
  // exactly p inverted lists (the last bucket absorbs deeper scans). The
  // per-query observable behind RunMetrics::probe_histogram — with a fixed
  // budget every search lands in one bucket; with per-query depth the
  // distribution shows where the policy spent its probes.
  static constexpr size_t kProbeHistogramBuckets = 65;
  std::vector<uint64_t> probe_histogram() const;
  void ResetProbeStats() const {
    stats_.searches.store(0, std::memory_order_relaxed);
    stats_.probes.store(0, std::memory_order_relaxed);
    for (auto& bucket : stats_.hist) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }

 private:
  // Probing resolved against one query: scan the `budget` closest lists,
  // stopping early per the ratio rule when `adaptive`.
  struct ProbePlan {
    bool adaptive = false;
    size_t min_probes = 1;
    size_t budget = 1;
    double ratio = 2.25;
  };
  ProbePlan ResolveProbe(const RetrievalQuality& quality) const;

  // The probe schedule resolved for one query: the inverted lists to scan in
  // probe order, each with the candidate-order base it has under the
  // single-shard concatenate-then-sort semantics (cumulative *global* sizes
  // of the previously probed lists). Shard-blind by construction: it depends
  // only on centroid distances and total list sizes.
  struct ProbeSet {
    std::vector<size_t> lists;
    std::vector<size_t> bases;
  };
  ProbeSet PlanProbes(const float* q, double qnorm, const ProbePlan& plan) const;

  size_t NearestCentroid(const float* v) const;
  std::vector<SearchHit> SearchOne(const float* q, size_t k, const ProbePlan& plan,
                                   uint64_t* probes_used) const;
  std::vector<OrderedHit> SearchOneOrdered(const float* q, size_t k, const ProbePlan& plan,
                                           const IdFilter& exclude, uint64_t* probes_used) const;
  // Quantized candidate generation over the probed lists (tier must have a
  // mirror; the callers resolve fallbacks). Does not touch the probe stats —
  // callers record, like the exact SearchOne paths' callers.
  std::vector<QuantCand> QuantCandidatesOne(const float* q, size_t fetch_k,
                                            RetrievalPrecision tier, const ProbePlan& plan,
                                            const IdFilter& exclude, uint64_t* probes_used) const;
  std::vector<SearchHit> SearchOneQuant(const float* q, size_t k, RetrievalPrecision tier,
                                        const RetrievalQuality& quality, const ProbePlan& plan,
                                        uint64_t* probes_used) const;

  size_t dim_;
  size_t nlist_;
  size_t nprobe_;
  uint64_t seed_;
  size_t num_shards_;
  bool trained_ = false;
  size_t count_ = 0;
  double train_mean_assign_dist_ = 0.0;
  AdaptiveProbePolicy adaptive_;
  RowPool centroids_;
  // Pre-train staging area, emptied by Train().
  RowPool staged_;
  // Inverted lists, hash-partitioned: lists_[list][shard]. list_counts_[list]
  // is the list's global row count, which is both the next row's in-list
  // order and the base increment the probe planner uses.
  std::vector<std::vector<IndexShard>> lists_;
  std::vector<size_t> list_counts_;
  QuantizationOptions qopts_;
  bool quantized_ = false;
  IndexQuantizers quantizers_;
  std::vector<std::vector<QuantizedCodes>> qcodes_;  // Parallel to lists_.

  // Copyable atomic counters (atomics alone would delete the index's
  // copy/move, which tests rely on); copies snapshot the counts.
  struct ProbeCounters {
    std::atomic<uint64_t> searches{0};
    std::atomic<uint64_t> probes{0};
    std::array<std::atomic<uint64_t>, kProbeHistogramBuckets> hist{};

    ProbeCounters() = default;
    ProbeCounters(const ProbeCounters& other)
        : searches(other.searches.load(std::memory_order_relaxed)),
          probes(other.probes.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < hist.size(); ++i) {
        hist[i].store(other.hist[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
      }
    }
    ProbeCounters& operator=(const ProbeCounters& other) {
      searches.store(other.searches.load(std::memory_order_relaxed), std::memory_order_relaxed);
      probes.store(other.probes.load(std::memory_order_relaxed), std::memory_order_relaxed);
      for (size_t i = 0; i < hist.size(); ++i) {
        hist[i].store(other.hist[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
      }
      return *this;
    }
    void Record(uint64_t probes_used) {
      searches.fetch_add(1, std::memory_order_relaxed);
      probes.fetch_add(probes_used, std::memory_order_relaxed);
      hist[std::min<size_t>(probes_used, kProbeHistogramBuckets - 1)].fetch_add(
          1, std::memory_order_relaxed);
    }
  };
  mutable ProbeCounters stats_;
};

// Database metadata shown to the LLM query profiler (paper §4.1, §A.1): a
// one-line description of the corpus plus the chunk size.
struct DatabaseMetadata {
  std::string description;
  int chunk_size_tokens = 0;
  std::string domain;  // e.g. "finance", "meetings", "wiki".
};

// Knobs for the live-mutation wrapper (MutableIndex, mutable_index.h): the
// epoch-versioned memtable -> sealed segment -> compaction lifecycle layered
// over either static backend.
struct MutableIndexOptions {
  // Seal the memtable into an immutable segment once it holds this many rows.
  size_t memtable_rows = 256;
  // Merge sealed segments into one tombstone-free compacted segment once this
  // many have accumulated.
  size_t compact_segments = 8;
  // Rebuild the base index over the live set once live delta rows (rows not
  // yet absorbed into the base) exceed this fraction of
  // max(base live rows, memtable_rows).
  double retrain_delta_fraction = 0.5;
  // IVF only: retrain when the mean nearest-centroid distance of newly sealed
  // rows exceeds this multiple of the base's train-time mean — the measured
  // centroid-quality-decay threshold.
  double retrain_distance_ratio = 2.0;
  // Capacity of the append-only row log (initial corpus + every insert ever;
  // the log backs concurrent lock-free reads, so it is preallocated).
  size_t max_rows = size_t{1} << 20;
  // Run compaction/retrain on the maintenance ThreadPool instead of inline on
  // the mutating thread. Off by default: the inline path keeps runs
  // bit-reproducible regardless of maintenance timing, which the parity tests
  // and benches rely on; the stress test exercises the background path.
  bool background_maintenance = false;
};

// Which similarity index a VectorDatabase builds. The paper's experiments
// default to exact flat search; the IVF backend trades recall for speed via
// the probe knobs above.
struct RetrievalIndexOptions {
  enum class Backend { kFlat, kIvf };
  Backend backend = Backend::kFlat;
  // Hash-partitions of the row storage (both backends). Results are
  // bit-identical for any value; >1 gives SearchBatch shard-level
  // parallelism and NUMA-friendly pools.
  size_t shards = 1;
  // IVF-only:
  size_t nlist = 64;
  size_t nprobe = 8;
  AdaptiveProbePolicy adaptive;
  uint64_t train_seed = 17;
  // Quantized mirrors (both backends): which tiers FinalizeIndex trains and
  // encodes alongside the fp32 rows. Off by default — mirrors cost memory and
  // only queries whose RetrievalQuality asks for a quantized tier read them.
  QuantizationOptions quant;
  // Wrap the backend in the epoch-versioned MutableIndex so the database
  // accepts InsertChunks/DeleteChunks while serving.
  bool mutable_index = false;
  MutableIndexOptions mutation;
  // Build a BM25 lexical index (lexical_index.h) alongside the dense backend,
  // sharded by the same `shards` and running the same memtable/compaction
  // thresholds (`mutation`). Off by default — only hybrid RetrievalQuality
  // reads it.
  bool lexical = false;
};

// Builds the configured *static* backend (ignores options.mutable_index).
// Shared by VectorDatabase's index construction and by MutableIndex, which
// rebuilds its base through this exact factory so a retrained base is
// bit-identical to a fresh static build over the same rows.
std::unique_ptr<VectorIndex> MakeBackendIndex(size_t dim, const RetrievalIndexOptions& options,
                                              IvfL2Index** ivf_out);

class MutableIndex;
class LexicalIndex;

// Work counters for the hybrid retrieval paths (bench cost accounting).
struct HybridSearchStats {
  uint64_t dense_searches = 0;    // Dense-leg scans issued by hybrid/filtered paths.
  uint64_t lexical_searches = 0;  // Lexical-leg scans issued.
  uint64_t fused_queries = 0;     // Queries whose two legs were RRF-fused.
};

// The assembled retrieval database: chunks + embeddings + index + metadata.
class VectorDatabase {
 public:
  VectorDatabase(EmbeddingModel embedder, DatabaseMetadata metadata,
                 RetrievalIndexOptions index_options = {});
  ~VectorDatabase();

  // Not movable: the query cache points at the owned embedder.
  VectorDatabase(const VectorDatabase&) = delete;
  VectorDatabase& operator=(const VectorDatabase&) = delete;

  // Adds a chunk; embeds its text and indexes it. Returns the chunk id.
  ChunkId AddChunk(Chunk chunk);

  // Bulk load: embeds every chunk's text in one EmbedBatch (sharded across
  // `pool` when given) and indexes them in order. Identical ids and index
  // contents to calling AddChunk per chunk, for any pool size.
  std::vector<ChunkId> AddChunks(std::vector<Chunk> chunks, ThreadPool* pool = nullptr);

  // Call once after bulk-loading chunks. Trains the IVF coarse quantizer
  // (no-op for the flat backend or if already trained); chunks added later
  // assign to the nearest centroid.
  void FinalizeIndex(ThreadPool* pool = nullptr);

  // --- Live mutations (require index_options.mutable_index) ---
  // Streaming insert after FinalizeIndex: embeds and indexes the chunks into
  // the mutable index's memtable. Identical id assignment to AddChunks.
  std::vector<ChunkId> InsertChunks(std::vector<Chunk> chunks, ThreadPool* pool = nullptr);
  // Tombstones the given chunks; deleted chunks never appear in results
  // again. Ids must be valid; deleting an already-deleted id is a no-op.
  // Returns how many chunks this call transitioned from live to deleted.
  size_t DeleteChunks(const std::vector<ChunkId>& ids);
  bool chunk_live(ChunkId id) const;
  size_t num_live_chunks() const { return num_chunks() - deleted_count_; }

  // Embeds the query text and returns the top-k chunks, closest first.
  // Query embeddings are memoized (EmbeddingCache), so repeated retrievals of
  // the same text — config sweeps, golden-config feedback — skip re-embedding.
  // `quality` tunes the IVF probe knobs for this call; exact backends ignore
  // it.
  std::vector<ChunkId> Retrieve(const std::string& query_text, size_t k,
                                const RetrievalQuality& quality = {}) const;
  std::vector<SearchHit> RetrieveWithDistances(const std::string& query_text, size_t k,
                                               const RetrievalQuality& quality = {}) const;

  // Batched retrieval: embeds every query (through the memo cache) and runs
  // one SearchBatch sweep over the index. results[i] matches what
  // RetrieveWithDistances(query_texts[i], k, quality) returns.
  std::vector<std::vector<SearchHit>> RetrieveBatch(const std::vector<std::string>& query_texts,
                                                    size_t k,
                                                    const RetrievalQuality& quality = {}) const;
  // Heterogeneous variant: qualities[i] applies to query_texts[i] only, so a
  // coalesced group can carry one retrieval depth per query. results[i]
  // matches RetrieveWithDistances(query_texts[i], k, qualities[i]).
  std::vector<std::vector<SearchHit>> RetrieveBatch(
      const std::vector<std::string>& query_texts, size_t k,
      const std::vector<RetrievalQuality>& qualities) const;

  // Optional worker pool used by RetrieveBatch; not owned, may be null.
  void set_search_pool(ThreadPool* pool) { search_pool_ = pool; }

  const Chunk& chunk(ChunkId id) const;
  size_t num_chunks() const { return chunks_.size(); }
  const DatabaseMetadata& metadata() const { return metadata_; }
  const EmbeddingModel& embedder() const { return embedder_; }
  const RetrievalIndexOptions& index_options() const { return index_options_; }
  const VectorIndex& index() const { return *index_; }
  // Non-null iff the IVF backend is active (probe stats, policy tweaks).
  // Under a mutable index this is the *current* base — retrains swap the base
  // and carry the probe counters over, so readings stay cumulative.
  const IvfL2Index* ivf_index() const;
  // Non-null iff index_options.mutable_index (lifecycle controls, stats).
  MutableIndex* mutable_index() { return mutable_; }
  const MutableIndex* mutable_index() const { return mutable_; }
  // Non-null iff index_options.lexical (the BM25 backend the hybrid paths
  // scan; stats/introspection).
  const LexicalIndex* lexical_index() const { return lexical_.get(); }
  size_t query_cache_hits() const { return query_cache_.hits(); }

  // Hybrid work counters (snapshot; relaxed atomics like the probe stats).
  HybridSearchStats hybrid_stats() const;
  void ResetHybridStats() const;

 private:
  // The hybrid/filtered retrieval path behind RetrieveWithDistances: runs the
  // weighted dense/lexical legs with the filter's exclusion set pushed into
  // both scans and fuses by weighted reciprocal rank.
  std::vector<SearchHit> RetrieveHybrid(const std::string& query_text, size_t k,
                                        const RetrievalQuality& quality) const;
  // Compiles quality.filter into a sorted excluded-id vector (ids FAILING the
  // filter), memoized against (filter, corpus version).
  std::shared_ptr<const std::vector<ChunkId>> CompileFilter(const MetadataFilter& filter) const;
  EmbeddingModel embedder_;
  DatabaseMetadata metadata_;
  RetrievalIndexOptions index_options_;
  std::vector<Chunk> chunks_;
  std::vector<bool> deleted_;  // Parallel to chunks_.
  size_t deleted_count_ = 0;
  std::unique_ptr<VectorIndex> index_;
  IvfL2Index* ivf_ = nullptr;      // Owned by index_ when backend == kIvf (static).
  MutableIndex* mutable_ = nullptr;  // Owned by index_ when mutable_index.
  std::unique_ptr<LexicalIndex> lexical_;  // Non-null iff index_options.lexical.
  mutable EmbeddingCache query_cache_;
  ThreadPool* search_pool_ = nullptr;

  // Single-entry filter-compilation memo: hybrid workloads reuse a small set
  // of filters against an (often) static corpus, so recompiling the exclusion
  // set per query would dominate. Invalidated by corpus version (chunk count +
  // delete count). Mutex-guarded: retrievals are const and may be concurrent.
  mutable std::mutex filter_mu_;
  mutable MetadataFilter cached_filter_;
  mutable size_t cached_filter_chunks_ = 0;
  mutable size_t cached_filter_deletes_ = 0;
  mutable std::shared_ptr<const std::vector<ChunkId>> cached_filter_excluded_;

  mutable std::atomic<uint64_t> dense_searches_{0};
  mutable std::atomic<uint64_t> lexical_searches_{0};
  mutable std::atomic<uint64_t> fused_queries_{0};
};

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_VECTORDB_H_
