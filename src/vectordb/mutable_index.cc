#include "src/vectordb/mutable_index.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/common/check.h"
#include "src/vectordb/kernels.h"
#include "src/vectordb/quantize.h"
#include "src/vectordb/topk.h"

namespace metis {

namespace {

// Rows per log block. Blocks are allocated with reserved capacity on first
// touch, so a block's arrays never reallocate — a row written before an epoch
// publication can be read lock-free forever after.
constexpr size_t kLogBlockRows = 512;

IdFilter FilterOf(const std::vector<ChunkId>& tombstones) {
  return IdFilter{tombstones.data(), tombstones.data() + tombstones.size()};
}

}  // namespace

MutableIndex::MutableIndex(size_t dim, const RetrievalIndexOptions& options)
    : dim_(dim),
      options_(options),
      mopts_(options.mutation),
      block_rows_(kLogBlockRows),
      tombstones_(std::make_shared<const std::vector<ChunkId>>()) {
  METIS_CHECK_GT(dim, 0u);
  METIS_CHECK_GT(mopts_.memtable_rows, 0u);
  METIS_CHECK_GT(mopts_.max_rows, 0u);
  blocks_.resize(mopts_.max_rows / block_rows_ + 1);
  IvfL2Index* ivf = nullptr;
  base_ = MakeBackendIndex(dim_, options_, &ivf);
  base_ivf_ = ivf;
  std::unique_lock<std::mutex> lock(mu_);
  PublishLocked();
}

MutableIndex::~MutableIndex() {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForMaintenanceLocked(lock);
}

// --- Log access --------------------------------------------------------------

const IndexShard& MutableIndex::LogBlock(size_t pos) const {
  return *blocks_[pos / block_rows_];
}

ChunkId MutableIndex::LogId(size_t pos) const {
  return LogBlock(pos).rows.id(pos % block_rows_);
}

const float* MutableIndex::LogRow(size_t pos) const {
  return LogBlock(pos).rows.row(pos % block_rows_);
}

void MutableIndex::ScanLogRange(size_t lo, size_t hi, const float* q, double qnorm,
                                const IdFilter& exclude, BoundedTopK& out) const {
  for (size_t b = lo / block_rows_; b * block_rows_ < hi; ++b) {
    const IndexShard& block = *blocks_[b];
    size_t blo = std::max(lo, b * block_rows_) - b * block_rows_;
    size_t bhi = std::min(hi, (b + 1) * block_rows_) - b * block_rows_;
    // block.orders carries the rows' global log positions, so base 0 keeps
    // log position == candidate order.
    ScanRowsInto(block.rows, blo, bhi, q, qnorm, block.orders.data(), 0, exclude, out);
  }
}

size_t MutableIndex::AppendLogLocked(ChunkId id, const float* v) {
  size_t pos = log_size_;
  METIS_CHECK_LT(pos, mopts_.max_rows);
  size_t b = pos / block_rows_;
  if (blocks_[b] == nullptr) {
    auto block = std::make_unique<IndexShard>(dim_);
    block->Reserve(block_rows_);
    blocks_[b] = std::move(block);
  }
  blocks_[b]->Append(id, v, pos);
  log_size_ = pos + 1;
  return pos;
}

// --- Epoch publication -------------------------------------------------------

void MutableIndex::PublishLocked() {
  auto e = std::make_shared<MutableEpoch>();
  e->epoch = ++epoch_counter_;
  e->base = base_;
  e->base_ivf = base_ivf_;
  e->base_searchable = base_ivf_ == nullptr || base_ivf_->trained();
  e->base_cut = base_cut_;
  e->segments = segments_;
  e->memtable_lo = mt_lo_;
  e->memtable_hi = mt_hi_;
  e->tombstones = tombstones_;
  e->live_rows = live_rows_;
  std::atomic_store(&epoch_, std::shared_ptr<const MutableEpoch>(std::move(e)));
}

std::shared_ptr<const MutableEpoch> MutableIndex::PinEpoch() const {
  return std::atomic_load(&epoch_);
}

bool MutableIndex::TombstonedLocked(ChunkId id) const {
  return std::binary_search(tombstones_->begin(), tombstones_->end(), id);
}

// --- Writes ------------------------------------------------------------------

void MutableIndex::Insert(ChunkId id, const Embedding& v) {
  METIS_CHECK_EQ(v.size(), dim_);
  std::unique_lock<std::mutex> lock(mu_);
  // Fresh-id contract: never currently live, never previously deleted.
  METIS_CHECK(live_pos_.find(id) == live_pos_.end());
  METIS_CHECK(!TombstonedLocked(id));
  size_t pos = AppendLogLocked(id, v.data());
  live_pos_.emplace(id, pos);
  ++live_rows_;
  if (!finalized_) {
    // Bulk-load phase: the row also feeds the base (flat rows / IVF staging),
    // and the memtable stays the empty tail.
    base_->Add(id, v);
    base_cut_ = log_size_;
    ++live_in_base_;
    mt_lo_ = mt_hi_ = log_size_;
    PublishLocked();
    return;
  }
  ++counters_.inserts;
  mt_hi_ = log_size_;
  PublishLocked();
  if (mt_hi_ - mt_lo_ >= mopts_.memtable_rows) {
    SealLocked();
    MaybeMaintainLocked(lock);
  }
}

bool MutableIndex::Delete(ChunkId id) {
  std::unique_lock<std::mutex> lock(mu_);
  METIS_CHECK(finalized_);
  auto it = live_pos_.find(id);
  if (it == live_pos_.end()) {
    return false;
  }
  size_t pos = it->second;
  live_pos_.erase(it);
  auto tomb = std::make_shared<std::vector<ChunkId>>(*tombstones_);
  tomb->insert(std::lower_bound(tomb->begin(), tomb->end(), id), id);
  tombstones_ = std::move(tomb);
  --live_rows_;
  if (pos < base_cut_) {
    --live_in_base_;
  }
  ++counters_.deletes;
  PublishLocked();
  return true;
}

void MutableIndex::Finalize(ThreadPool* pool) {
  std::unique_lock<std::mutex> lock(mu_);
  METIS_CHECK(!finalized_);
  if (base_ivf_ != nullptr && !base_ivf_->trained() && base_ivf_->size() > 0) {
    base_ivf_->Train(pool);
  }
  base_->BuildQuantizedMirrors();
  finalized_ = true;
  base_cut_ = log_size_;
  mt_lo_ = mt_hi_ = log_size_;
  PublishLocked();
}

bool MutableIndex::finalized() const {
  std::unique_lock<std::mutex> lock(mu_);
  return finalized_;
}

void MutableIndex::SealLocked() {
  if (mt_hi_ == mt_lo_) {
    return;
  }
  MutableSegment seg;
  seg.lo = mt_lo_;
  seg.hi = mt_hi_;
  // Encode the sealed rows against the base's quantizers (one shared code
  // space; see MutableSegment::codes). O(rows * dim) — cheaper than the
  // drift scan below. The memtable itself is never encoded: unsealed rows
  // always scan exactly.
  if (const IndexQuantizers* qz = base_->quantizers(); qz != nullptr && qz->any()) {
    auto codes = std::make_shared<QuantizedCodes>();
    for (size_t b = seg.lo / block_rows_; b * block_rows_ < seg.hi; ++b) {
      const IndexShard& block = *blocks_[b];
      size_t blo = std::max(seg.lo, b * block_rows_) - b * block_rows_;
      size_t bhi = std::min(seg.hi, (b + 1) * block_rows_) - b * block_rows_;
      EncodeRows(*qz, block.rows, blo, bhi, codes.get());
    }
    seg.codes = std::move(codes);
  }
  segments_.push_back(seg);
  mt_lo_ = mt_hi_;
  ++counters_.seals;
  // Centroid-drift signal: how far the sealed rows sit from their nearest
  // centroid, vs. the distance the training set saw.
  if (base_ivf_ != nullptr && base_ivf_->trained()) {
    for (size_t pos = seg.lo; pos < seg.hi; ++pos) {
      if (!TombstonedLocked(LogId(pos))) {
        sealed_dist_sum_ += base_ivf_->NearestCentroidDistance(LogRow(pos));
        ++sealed_dist_rows_;
      }
    }
  }
  PublishLocked();
}

void MutableIndex::SealMemtable() {
  std::unique_lock<std::mutex> lock(mu_);
  METIS_CHECK(finalized_);
  SealLocked();
}

// --- Maintenance -------------------------------------------------------------

MutableIndex::MaintOp MutableIndex::PickMaintenanceLocked() const {
  size_t delta_live = live_rows_ - live_in_base_;
  bool retrain =
      static_cast<double>(delta_live) >
      mopts_.retrain_delta_fraction *
          static_cast<double>(std::max(live_in_base_, mopts_.memtable_rows));
  if (!retrain && base_ivf_ != nullptr && base_ivf_->trained() && sealed_dist_rows_ > 0 &&
      base_ivf_->train_mean_assign_dist() > 0.0) {
    double sealed_mean = sealed_dist_sum_ / static_cast<double>(sealed_dist_rows_);
    retrain = sealed_mean > mopts_.retrain_distance_ratio * base_ivf_->train_mean_assign_dist();
  }
  if (retrain && live_rows_ > 0) {
    return MaintOp::kRetrain;
  }
  if (segments_.size() >= mopts_.compact_segments) {
    return MaintOp::kCompact;
  }
  return MaintOp::kNone;
}

void MutableIndex::WaitForMaintenanceLocked(std::unique_lock<std::mutex>& lock) {
  maintenance_cv_.wait(lock, [this] { return !maintenance_inflight_; });
}

void MutableIndex::MaybeMaintainLocked(std::unique_lock<std::mutex>& lock) {
  MaintOp op = PickMaintenanceLocked();
  if (op == MaintOp::kNone) {
    return;
  }
  bool background = mopts_.background_maintenance && maintenance_pool_ != nullptr;
  if (!background) {
    if (op == MaintOp::kRetrain) {
      RetrainPlan plan = SnapshotRetrainLocked();
      SwapBaseLocked(plan, BuildBase(plan, nullptr));
    } else {
      CompactPlan plan = SnapshotCompactLocked();
      SwapCompactedLocked(plan, BuildCompacted(this, plan));
    }
    return;
  }
  if (maintenance_inflight_) {
    return;  // One job at a time; the next seal re-evaluates.
  }
  maintenance_inflight_ = true;
  if (op == MaintOp::kRetrain) {
    RetrainPlan plan = SnapshotRetrainLocked();
    maintenance_pool_->Submit([this, plan] {
      BuiltBase built = BuildBase(plan, nullptr);
      std::unique_lock<std::mutex> relock(mu_);
      SwapBaseLocked(plan, std::move(built));
      maintenance_inflight_ = false;
      maintenance_cv_.notify_all();
    });
  } else {
    CompactPlan plan = SnapshotCompactLocked();
    maintenance_pool_->Submit([this, plan] {
      CompactedBuild built = BuildCompacted(this, plan);
      std::unique_lock<std::mutex> relock(mu_);
      SwapCompactedLocked(plan, std::move(built));
      maintenance_inflight_ = false;
      maintenance_cv_.notify_all();
    });
  }
  (void)lock;
}

MutableIndex::CompactPlan MutableIndex::SnapshotCompactLocked() const {
  CompactPlan plan;
  plan.segments = segments_;
  plan.tombstones = tombstones_;
  plan.base = base_;
  return plan;
}

MutableIndex::CompactedBuild MutableIndex::BuildCompacted(const MutableIndex* self,
                                                          const CompactPlan& plan) {
  // Inputs are immutable: frozen log ranges, already-compacted shards, and a
  // COW tombstone snapshot — safe to run off-lock. Rows deleted after the
  // snapshot simply stay tombstone-filtered at search time.
  CompactedBuild built;
  built.shard = std::make_shared<IndexShard>(self->dim_);
  IndexShard& merged = *built.shard;
  IdFilter dead = FilterOf(*plan.tombstones);
  for (const MutableSegment& seg : plan.segments) {
    if (seg.compacted != nullptr) {
      const IndexShard& src = *seg.compacted;
      for (size_t i = 0; i < src.orders.size(); ++i) {
        if (!dead.contains(src.rows.id(i))) {
          merged.Append(src.rows.id(i), src.rows.row(i), src.orders[i]);
        }
      }
    } else {
      for (size_t pos = seg.lo; pos < seg.hi; ++pos) {
        ChunkId id = self->LogId(pos);
        if (!dead.contains(id)) {
          merged.Append(id, self->LogRow(pos), pos);
        }
      }
    }
  }
  // Re-encode the merged rows against the (snapshot-pinned) base quantizers.
  // Encoding is a pure per-row transform, so the merged codes equal the
  // original per-segment codes row for row.
  const IndexQuantizers* qz = plan.base != nullptr ? plan.base->quantizers() : nullptr;
  if (qz != nullptr && qz->any() && merged.rows.size() > 0) {
    auto codes = std::make_shared<QuantizedCodes>();
    EncodeRows(*qz, merged.rows, 0, merged.rows.size(), codes.get());
    built.codes = std::move(codes);
  }
  return built;
}

void MutableIndex::SwapCompactedLocked(const CompactPlan& plan, CompactedBuild built) {
  if (plan.segments.empty()) {
    return;
  }
  size_t plan_hi = plan.segments.back().hi;
  // Keep segments sealed after the snapshot (they start at or past plan_hi).
  std::vector<MutableSegment> next;
  if (built.shard->orders.size() > 0) {
    MutableSegment seg;
    seg.lo = plan.segments.front().lo;
    seg.hi = plan_hi;
    seg.compacted = std::move(built.shard);
    seg.codes = std::move(built.codes);
    next.push_back(std::move(seg));
  }
  for (const MutableSegment& seg : segments_) {
    if (seg.lo >= plan_hi) {
      next.push_back(seg);
    }
  }
  segments_ = std::move(next);
  ++counters_.compactions;
  PublishLocked();
}

void MutableIndex::CompactSegments() {
  std::unique_lock<std::mutex> lock(mu_);
  METIS_CHECK(finalized_);
  WaitForMaintenanceLocked(lock);
  if (segments_.empty()) {
    return;
  }
  CompactPlan plan = SnapshotCompactLocked();
  SwapCompactedLocked(plan, BuildCompacted(this, plan));
}

MutableIndex::RetrainPlan MutableIndex::SnapshotRetrainLocked() const {
  RetrainPlan plan;
  plan.cut = log_size_;
  plan.tombstones = tombstones_;
  return plan;
}

MutableIndex::BuiltBase MutableIndex::BuildBase(const RetrainPlan& plan, ThreadPool* pool) const {
  // Rebuild through the same factory, options, and train seed as a fresh
  // static build over the live rows in insertion order — which is exactly
  // what this is, so the result is bit-identical to one (the parity tests
  // compare against an independently constructed reference).
  BuiltBase built;
  built.index = MakeBackendIndex(dim_, options_, &built.ivf);
  IdFilter dead = FilterOf(*plan.tombstones);
  Embedding row(dim_);
  for (size_t pos = 0; pos < plan.cut; ++pos) {
    ChunkId id = LogId(pos);
    if (dead.contains(id)) {
      continue;
    }
    const float* r = LogRow(pos);
    row.assign(r, r + dim_);
    built.index->Add(id, row);
    ++built.rows;
  }
  if (built.ivf != nullptr && built.rows > 0) {
    built.ivf->Train(pool);
  }
  built.index->BuildQuantizedMirrors();
  return built;
}

void MutableIndex::SwapBaseLocked(const RetrainPlan& plan, BuiltBase built) {
  if (built.ivf != nullptr && base_ivf_ != nullptr) {
    built.ivf->CopyProbeStatsFrom(*base_ivf_);
  }
  base_ = std::shared_ptr<VectorIndex>(std::move(built.index));
  base_ivf_ = built.ivf;
  base_cut_ = plan.cut;
  // Drop structures the new base absorbed; clip stragglers that sealed across
  // the cut while a background build ran. Compacted segments cannot straddle
  // the cut: only one maintenance op runs at a time, so every compacted
  // segment predates the snapshot and sits wholly below it.
  std::vector<MutableSegment> next;
  for (MutableSegment& seg : segments_) {
    if (seg.hi <= plan.cut) {
      continue;
    }
    if (seg.lo < plan.cut) {
      METIS_CHECK(seg.compacted == nullptr);
      seg.lo = plan.cut;
    }
    // Surviving segments were encoded against the old base's quantizers;
    // those codes are meaningless in the new base's code space. Drop them —
    // the segment scans exactly until the next compaction re-encodes it.
    seg.codes = nullptr;
    next.push_back(std::move(seg));
  }
  segments_ = std::move(next);
  mt_lo_ = std::max(mt_lo_, plan.cut);
  // Recount the regions: deletes may have landed since the snapshot.
  size_t live_delta = 0;
  for (size_t pos = plan.cut; pos < log_size_; ++pos) {
    if (!TombstonedLocked(LogId(pos))) {
      ++live_delta;
    }
  }
  live_in_base_ = live_rows_ - live_delta;
  sealed_dist_sum_ = 0.0;
  sealed_dist_rows_ = 0;
  ++counters_.retrains;
  PublishLocked();
}

void MutableIndex::RetrainBase(ThreadPool* pool) {
  std::unique_lock<std::mutex> lock(mu_);
  METIS_CHECK(finalized_);
  WaitForMaintenanceLocked(lock);
  if (live_rows_ == 0) {
    return;
  }
  RetrainPlan plan = SnapshotRetrainLocked();
  SwapBaseLocked(plan, BuildBase(plan, pool));
}

void MutableIndex::set_maintenance_pool(ThreadPool* pool) {
  std::unique_lock<std::mutex> lock(mu_);
  maintenance_pool_ = pool;
}

// --- Reads -------------------------------------------------------------------

void MutableIndex::ScanLogRangeExact(size_t lo, size_t hi, const float* q, double qnorm,
                                     const IdFilter& exclude, BoundedQuantTopK& out) const {
  for (size_t b = lo / block_rows_; b * block_rows_ < hi; ++b) {
    const IndexShard& block = *blocks_[b];
    size_t blo = std::max(lo, b * block_rows_) - b * block_rows_;
    size_t bhi = std::min(hi, (b + 1) * block_rows_) - b * block_rows_;
    ScanRowsExactInto(block.rows, blo, bhi, q, qnorm, block.orders.data(), 0, exclude, out);
  }
}

std::vector<SearchHit> MutableIndex::SearchPinnedQuant(const MutableEpoch& epoch,
                                                       const Embedding& query, size_t k,
                                                       RetrievalPrecision tier,
                                                       const RetrievalQuality& quality) const {
  IdFilter dead = FilterOf(*epoch.tombstones);
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  size_t fetch = k * ResolveRerankFactor(quality);
  // One over-fetch heap across base + segments + memtable under the (approx
  // distance, order) total order, then a single exact rerank over the union —
  // the same merge shape as the exact flow, shifted to candidates.
  BoundedQuantTopK merged(fetch);
  if (epoch.base_searchable) {
    for (const QuantCand& c : epoch.base->SearchQuantCandidates(query, fetch, quality, dead)) {
      merged.OfferCand(c);
    }
  } else {
    ScanLogRangeExact(0, epoch.base_cut, query.data(), qnorm, dead, merged);
  }
  const IndexQuantizers* qz = epoch.base->quantizers();
  SqQuery sq;
  PqQuery pq;
  if (tier == RetrievalPrecision::kInt8) {
    BuildSqQuery(qz->sq, query.data(), dim_, &sq);
  } else {
    BuildPqQuery(qz->pq, query.data(), dim_, &pq);
  }
  for (const MutableSegment& seg : epoch.segments) {
    if (seg.compacted != nullptr) {
      const IndexShard& src = *seg.compacted;
      if (seg.codes != nullptr) {
        if (tier == RetrievalPrecision::kInt8) {
          ScanSqRowsInto(*seg.codes, 0, src.rows, 0, src.rows.size(), sq, src.orders.data(), 0,
                         dead, merged);
        } else {
          ScanPqRowsInto(*seg.codes, 0, src.rows, 0, src.rows.size(), pq, qz->pq.m,
                         src.orders.data(), 0, dead, merged);
        }
      } else {
        ScanRowsExactInto(src.rows, 0, src.rows.size(), query.data(), qnorm, src.orders.data(),
                          0, dead, merged);
      }
    } else if (seg.codes != nullptr) {
      // Log-range segment: codes cover [seg.lo, seg.hi) sequentially; walk
      // the underlying blocks with the matching code offset.
      for (size_t b = seg.lo / block_rows_; b * block_rows_ < seg.hi; ++b) {
        const IndexShard& block = *blocks_[b];
        size_t glo = std::max(seg.lo, b * block_rows_);
        size_t blo = glo - b * block_rows_;
        size_t bhi = std::min(seg.hi, (b + 1) * block_rows_) - b * block_rows_;
        size_t code_lo = glo - seg.lo;
        if (tier == RetrievalPrecision::kInt8) {
          ScanSqRowsInto(*seg.codes, code_lo, block.rows, blo, bhi, sq, block.orders.data(), 0,
                         dead, merged);
        } else {
          ScanPqRowsInto(*seg.codes, code_lo, block.rows, blo, bhi, pq, qz->pq.m,
                         block.orders.data(), 0, dead, merged);
        }
      }
    } else {
      ScanLogRangeExact(seg.lo, seg.hi, query.data(), qnorm, dead, merged);
    }
  }
  // The memtable always scans exactly.
  ScanLogRangeExact(epoch.memtable_lo, epoch.memtable_hi, query.data(), qnorm, dead, merged);
  return RerankToHits(merged.DrainCands(), query.data(), qnorm, k);
}

std::vector<SearchHit> MutableIndex::SearchPinned(const MutableEpoch& epoch,
                                                  const Embedding& query, size_t k,
                                                  const RetrievalQuality& quality) const {
  METIS_CHECK_EQ(query.size(), dim_);
  if (k == 0) {
    return {};
  }
  RetrievalPrecision tier = ResolveTier(quality, epoch.base->quantizers());
  if (tier != RetrievalPrecision::kFp32) {
    return SearchPinnedQuant(epoch, query, k, tier, quality);
  }
  IdFilter dead = FilterOf(*epoch.tombstones);
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  // One heap across base + segments + memtable: the (distance, candidate
  // order) total order makes the structure visit order irrelevant, exactly
  // as it does for shards. Base hits arrive with their own candidate orders,
  // which are order-isomorphic to (and strictly below) the delta rows' log
  // positions.
  BoundedTopK merged(k);
  if (epoch.base_searchable) {
    for (const OrderedHit& h : epoch.base->SearchOrdered(query, k, quality, dead)) {
      merged.Offer(h.distance, h.order, h.id);
    }
  } else {
    // Untrained IVF base (empty or pre-finalize corpus): exact scan of its
    // log range.
    ScanLogRange(0, epoch.base_cut, query.data(), qnorm, dead, merged);
  }
  for (const MutableSegment& seg : epoch.segments) {
    if (seg.compacted != nullptr) {
      ScanRowsInto(seg.compacted->rows, 0, seg.compacted->orders.size(), query.data(), qnorm,
                   seg.compacted->orders.data(), 0, dead, merged);
    } else {
      ScanLogRange(seg.lo, seg.hi, query.data(), qnorm, dead, merged);
    }
  }
  ScanLogRange(epoch.memtable_lo, epoch.memtable_hi, query.data(), qnorm, dead, merged);
  return merged.Drain();
}

std::vector<SearchHit> MutableIndex::SearchFiltered(const Embedding& query, size_t k,
                                                    const RetrievalQuality& quality,
                                                    const IdFilter& exclude) const {
  METIS_CHECK_EQ(query.size(), dim_);
  if (k == 0) {
    return {};
  }
  std::shared_ptr<const MutableEpoch> epoch = PinEpoch();
  // Union the epoch's tombstones with the caller's exclusion set (both
  // sorted), so one binary-searchable filter serves every scan below.
  std::vector<ChunkId> dead_union(epoch->tombstones->size() +
                                  static_cast<size_t>(exclude.end - exclude.begin));
  dead_union.erase(std::set_union(epoch->tombstones->begin(), epoch->tombstones->end(),
                                  exclude.begin, exclude.end, dead_union.begin()),
                   dead_union.end());
  IdFilter dead = FilterOf(dead_union);
  // Filtered scans are always exact: strip any quantized-tier request.
  RetrievalQuality exact = quality;
  exact.precision = RetrievalPrecision::kFp32;
  double qnorm = SquaredNormBlocked(query.data(), dim_);
  BoundedTopK merged(k);
  if (epoch->base_searchable) {
    for (const OrderedHit& h : epoch->base->SearchOrdered(query, k, exact, dead)) {
      merged.Offer(h.distance, h.order, h.id);
    }
  } else {
    ScanLogRange(0, epoch->base_cut, query.data(), qnorm, dead, merged);
  }
  for (const MutableSegment& seg : epoch->segments) {
    if (seg.compacted != nullptr) {
      ScanRowsInto(seg.compacted->rows, 0, seg.compacted->orders.size(), query.data(), qnorm,
                   seg.compacted->orders.data(), 0, dead, merged);
    } else {
      ScanLogRange(seg.lo, seg.hi, query.data(), qnorm, dead, merged);
    }
  }
  ScanLogRange(epoch->memtable_lo, epoch->memtable_hi, query.data(), qnorm, dead, merged);
  return merged.Drain();
}

std::vector<SearchHit> MutableIndex::Search(const Embedding& query, size_t k) const {
  return Search(query, k, RetrievalQuality{});
}

std::vector<SearchHit> MutableIndex::Search(const Embedding& query, size_t k,
                                            const RetrievalQuality& quality) const {
  return SearchPinned(*PinEpoch(), query, k, quality);
}

std::vector<std::vector<SearchHit>> MutableIndex::SearchBatch(const std::vector<Embedding>& queries,
                                                              size_t k, ThreadPool* pool) const {
  return SearchBatch(queries, k, pool, RetrievalQuality{});
}

std::vector<std::vector<SearchHit>> MutableIndex::SearchBatch(const std::vector<Embedding>& queries,
                                                              size_t k, ThreadPool* pool,
                                                              const RetrievalQuality& quality) const {
  return SearchBatch(queries, k, pool, std::vector<RetrievalQuality>(queries.size(), quality));
}

std::vector<std::vector<SearchHit>> MutableIndex::SearchBatch(
    const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
    const std::vector<RetrievalQuality>& qualities) const {
  METIS_CHECK_EQ(qualities.size(), queries.size());
  std::vector<std::vector<SearchHit>> results(queries.size());
  if (queries.empty()) {
    return results;
  }
  // Pin one epoch for the whole batch (the batcher's coalesced groups rely
  // on this single-snapshot guarantee), then fan queries across the pool
  // into disjoint slots.
  std::shared_ptr<const MutableEpoch> epoch = PinEpoch();
  auto sweep = [&](size_t qb, size_t qe) {
    for (size_t qi = qb; qi < qe; ++qi) {
      results[qi] = SearchPinned(*epoch, queries[qi], k, qualities[qi]);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && queries.size() > 1) {
    pool->ParallelFor(queries.size(), sweep);
  } else {
    sweep(0, queries.size());
  }
  return results;
}

size_t MutableIndex::size() const {
  return PinEpoch()->live_rows;
}

void MutableIndex::ForEachLiveRow(const MutableEpoch& epoch,
                                  const std::function<void(ChunkId, const float*)>& fn) const {
  IdFilter dead = FilterOf(*epoch.tombstones);
  for (size_t pos = 0; pos < epoch.memtable_hi; ++pos) {
    ChunkId id = LogId(pos);
    if (!dead.contains(id)) {
      fn(id, LogRow(pos));
    }
  }
}

MutableIndexStats MutableIndex::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  MutableIndexStats s = counters_;
  s.live_rows = live_rows_;
  s.base_rows = live_in_base_;
  s.open_segments = segments_.size();
  s.memtable_rows = mt_hi_ - mt_lo_;
  s.tombstones = tombstones_->size();
  s.log_rows = log_size_;
  return s;
}

}  // namespace metis
