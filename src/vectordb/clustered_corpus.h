// Clustered synthetic corpus for recall evaluation — shared by the recall
// tests and bench_recall so the geometry that pins the adaptive-vs-fixed
// claims cannot silently diverge from the geometry the bench measures.
//
// Orthogonal constant-norm clusters: cluster c sits at 10 * e_c (requires
// dim >= num_clusters), with tight gaussian jitter. The geometry is chosen so
// probe difficulty is controllable: an in-cluster ("easy") query has one
// centroid at tiny distance and every other at ~2x the inter-center norm,
// while a `mix_way`-cluster midpoint ("hard") query is *exactly* equidistant
// from its mix_way source centroids, so its true top-k provably straddles
// several inverted lists.
//
// Header-only and test/bench-facing: production code must not depend on it.

#ifndef METIS_SRC_VECTORDB_CLUSTERED_CORPUS_H_
#define METIS_SRC_VECTORDB_CLUSTERED_CORPUS_H_

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/embed/embedding.h"

namespace metis {

inline Embedding Jitter(Rng& rng, const Embedding& base, double sigma) {
  Embedding v = base;
  for (float& x : v) {
    x += static_cast<float>(rng.Normal(0, sigma));
  }
  return v;
}

struct ClusteredCorpus {
  std::vector<Embedding> centers;
  std::vector<Embedding> points;
  std::vector<Embedding> easy_queries;  // Inside one cluster.
  std::vector<Embedding> hard_queries;  // Midpoint of mix_way clusters.

  // Easy queries first, hard queries after — the order every consumer uses.
  std::vector<Embedding> AllQueries() const {
    std::vector<Embedding> queries = easy_queries;
    queries.insert(queries.end(), hard_queries.begin(), hard_queries.end());
    return queries;
  }
};

inline ClusteredCorpus MakeClusteredCorpus(size_t dim, size_t num_clusters,
                                           size_t points_per_cluster, size_t num_easy,
                                           size_t num_hard, uint64_t seed, size_t mix_way = 4) {
  METIS_CHECK_GE(dim, num_clusters);
  METIS_CHECK_GT(num_clusters, mix_way);
  Rng rng(seed);
  ClusteredCorpus corpus;
  for (size_t c = 0; c < num_clusters; ++c) {
    Embedding center(dim, 0.0f);
    center[c] = 10.0f;
    corpus.centers.push_back(std::move(center));
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    for (size_t p = 0; p < points_per_cluster; ++p) {
      corpus.points.push_back(Jitter(rng, corpus.centers[c], 0.35));
    }
  }
  for (size_t q = 0; q < num_easy; ++q) {
    size_t c = rng.Index(num_clusters);
    corpus.easy_queries.push_back(Jitter(rng, corpus.centers[c], 0.35));
  }
  for (size_t q = 0; q < num_hard; ++q) {
    std::vector<size_t> picks;
    while (picks.size() < mix_way) {
      size_t p = rng.Index(num_clusters);
      bool dup = false;
      for (size_t o : picks) {
        dup = dup || o == p;
      }
      if (!dup) {
        picks.push_back(p);
      }
    }
    Embedding mid(dim, 0.0f);
    for (size_t p : picks) {
      for (size_t j = 0; j < dim; ++j) {
        mid[j] += corpus.centers[p][j] / static_cast<float>(mix_way);
      }
    }
    corpus.hard_queries.push_back(Jitter(rng, mid, 0.35));
  }
  return corpus;
}

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_CLUSTERED_CORPUS_H_
