// Frozen copy of the seed (pre-rebuild) FlatL2Index::Search: scalar
// double-precision difference loop, a hit materialized for every row, full
// stable_sort, truncate. This is the canonical baseline that the parity tests
// assert ranking-equality against and that bench_retrieval reports speedups
// over — keep it bit-for-bit as the seed wrote it; do not "improve" it.
//
// Header-only and test/bench-facing: production code must not depend on it.

#ifndef METIS_SRC_VECTORDB_SEED_REFERENCE_H_
#define METIS_SRC_VECTORDB_SEED_REFERENCE_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/vectordb/vectordb.h"

namespace metis {

struct SeedFlatIndex {
  size_t dim;
  std::vector<ChunkId> ids;
  std::vector<float> data;  // Row-major.

  explicit SeedFlatIndex(size_t d) : dim(d) {}

  void Add(ChunkId id, const Embedding& v) {
    ids.push_back(id);
    data.insert(data.end(), v.begin(), v.end());
  }

  std::vector<SearchHit> Search(const Embedding& query, size_t k) const {
    std::vector<SearchHit> hits;
    hits.reserve(ids.size());
    for (size_t row = 0; row < ids.size(); ++row) {
      const float* p = &data[row * dim];
      double d = 0;
      for (size_t j = 0; j < dim; ++j) {
        double diff = static_cast<double>(p[j]) - query[j];
        d += diff * diff;
      }
      hits.push_back(SearchHit{ids[row], static_cast<float>(d)});
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const SearchHit& a, const SearchHit& b) { return a.distance < b.distance; });
    if (hits.size() > k) {
      hits.resize(k);
    }
    return hits;
  }
};

// Shared corpus helper for the parity tests and the retrieval bench.
inline Embedding RandomUnitVector(Rng& rng, size_t dim) {
  Embedding v(dim);
  double norm2 = 0;
  for (size_t j = 0; j < dim; ++j) {
    v[j] = static_cast<float>(rng.Normal(0, 1));
    norm2 += static_cast<double>(v[j]) * v[j];
  }
  float inv = norm2 > 0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
  for (float& x : v) {
    x *= inv;
  }
  return v;
}

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_SEED_REFERENCE_H_
