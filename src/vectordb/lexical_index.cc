#include "src/vectordb/lexical_index.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/text/tokenizer.h"

namespace metis {
namespace {

constexpr double kBm25K1 = 1.2;
constexpr double kBm25B = 0.75;

// One term's BM25 contribution. Pure double arithmetic over live-set
// statistics — bit-deterministic for a given (tf, doc_len, idf, avgdl)
// regardless of which structure the posting was read from.
double TermScore(double idf, int32_t tf, int32_t doc_len, double avgdl) {
  double norm = kBm25K1 * (1.0 - kBm25B + kBm25B * (static_cast<double>(doc_len) / avgdl));
  double tfd = static_cast<double>(tf);
  return idf * (tfd * (kBm25K1 + 1.0)) / (tfd + norm);
}

}  // namespace

LexicalIndex::LexicalIndex(size_t num_shards, size_t memtable_rows, size_t compact_segments)
    : memtable_rows_(memtable_rows), compact_segments_(compact_segments) {
  METIS_CHECK(num_shards >= 1);
  METIS_CHECK(memtable_rows_ >= 1);
  METIS_CHECK(compact_segments_ >= 2);
  shards_.resize(num_shards);
}

void LexicalIndex::Add(ChunkId id, const std::string& text) {
  METIS_CHECK(docs_.find(id) == docs_.end());
  std::vector<std::string> tokens = Tokenize(text);

  DocInfo info;
  info.len = static_cast<int32_t>(tokens.size());
  info.order = next_order_++;
  info.live = true;
  std::sort(tokens.begin(), tokens.end());
  for (size_t i = 0; i < tokens.size();) {
    size_t j = i;
    while (j < tokens.size() && tokens[j] == tokens[i]) ++j;
    info.terms.emplace_back(tokens[i], static_cast<int32_t>(j - i));
    i = j;
  }

  Shard& shard = shards_[ShardOfId(id, shards_.size())];
  for (const auto& [term, tf] : info.terms) {
    shard.memtable[term].push_back(Posting{id, tf, info.len, info.order});
    ++df_[term];
  }
  ++shard.memtable_docs;
  ++live_docs_;
  total_live_len_ += static_cast<uint64_t>(info.len);
  docs_.emplace(id, std::move(info));

  if (shard.memtable_docs >= memtable_rows_) {
    SealMemtable(shard);
    MaybeCompact(shard);
  }
}

bool LexicalIndex::Remove(ChunkId id) {
  auto it = docs_.find(id);
  if (it == docs_.end() || !it->second.live) {
    return false;
  }
  DocInfo& info = it->second;
  info.live = false;
  --live_docs_;
  total_live_len_ -= static_cast<uint64_t>(info.len);
  for (const auto& [term, tf] : info.terms) {
    (void)tf;
    auto dfi = df_.find(term);
    METIS_CHECK(dfi != df_.end() && dfi->second > 0);
    if (--dfi->second == 0) {
      df_.erase(dfi);
    }
  }

  Shard& shard = shards_[ShardOfId(id, shards_.size())];
  if (!info.sealed) {
    // Memtable postings are mutable: erase them in place. Surviving posting
    // order within a vector is irrelevant to results (scores accumulate per
    // document, not per vector position).
    for (const auto& [term, tf] : info.terms) {
      (void)tf;
      auto pi = shard.memtable.find(term);
      METIS_CHECK(pi != shard.memtable.end());
      auto& vec = pi->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [id](const Posting& p) { return p.id == id; }),
                vec.end());
      if (vec.empty()) {
        shard.memtable.erase(pi);
      }
    }
    METIS_CHECK(shard.memtable_docs > 0);
    --shard.memtable_docs;
  } else {
    // Sealed postings are immutable: mask via the shard tombstone set until
    // compaction rewrites the segments without them.
    auto pos = std::lower_bound(shard.tombstones.begin(), shard.tombstones.end(), id);
    shard.tombstones.insert(pos, id);
  }
  return true;
}

void LexicalIndex::SealMemtable(Shard& shard) {
  if (shard.memtable.empty()) {
    shard.memtable_docs = 0;
    return;
  }
  Segment seg;
  seg.postings = std::move(shard.memtable);
  seg.docs = shard.memtable_docs;
  shard.segments.push_back(std::move(seg));
  shard.memtable.clear();
  shard.memtable_docs = 0;
  ++seals_;
  // Every doc that was in this memtable is now sealed.
  for (auto& [term, postings] : shard.segments.back().postings) {
    (void)term;
    for (const Posting& p : postings) {
      docs_[p.id].sealed = true;
    }
  }
}

void LexicalIndex::MaybeCompact(Shard& shard) {
  if (shard.segments.size() < compact_segments_) {
    return;
  }
  Segment merged;
  IdFilter dead{shard.tombstones.data(), shard.tombstones.data() + shard.tombstones.size()};
  std::vector<ChunkId> live_docs_seen;
  for (Segment& seg : shard.segments) {
    for (auto& [term, postings] : seg.postings) {
      auto& out = merged.postings[term];
      for (const Posting& p : postings) {
        if (dead.empty() || !dead.contains(p.id)) {
          out.push_back(p);
        }
      }
      if (out.empty()) {
        merged.postings.erase(term);
      }
    }
  }
  // Normalize posting order to insertion order inside the compacted segment
  // (not required for result determinism — scores accumulate per doc — but it
  // keeps segment contents canonical for any prior segment layout).
  std::vector<ChunkId> ids;
  for (auto& [term, postings] : merged.postings) {
    (void)term;
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) { return a.order < b.order; });
    for (const Posting& p : postings) ids.push_back(p.id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  merged.docs = ids.size();
  shard.segments.clear();
  if (!merged.postings.empty()) {
    shard.segments.push_back(std::move(merged));
  }
  // Tombstoned ids can only have lived in sealed segments (memtable removes
  // are eager), and every sealed segment of this shard was just rewritten
  // without them — the mask set is empty again.
  shard.tombstones.clear();
  ++compactions_;
}

std::vector<LexicalIndex::Scored> LexicalIndex::ScoreShard(
    const Shard& shard, const std::vector<QueryTerm>& terms, size_t k, const IdFilter& exclude,
    double avgdl, uint64_t* postings_scanned, uint64_t* docs_scored) const {
  IdFilter dead{shard.tombstones.data(), shard.tombstones.data() + shard.tombstones.size()};
  std::unordered_map<ChunkId, Scored> acc;
  auto scan = [&](const PostingMap& postings, const QueryTerm& qt) {
    auto it = postings.find(qt.term);
    if (it == postings.end()) {
      return;
    }
    for (const Posting& p : it->second) {
      ++*postings_scanned;
      if (!dead.empty() && dead.contains(p.id)) continue;
      if (!exclude.empty() && exclude.contains(p.id)) continue;
      auto [ai, inserted] = acc.try_emplace(p.id, Scored{0.0, p.order, p.id});
      (void)inserted;
      ai->second.score += TermScore(qt.idf, p.tf, p.doc_len, avgdl);
    }
  };
  // Terms outer (sorted by the caller), structures inner: a document's
  // postings live in exactly one structure, so its score accumulates in
  // term-sorted order no matter how the shard's lifecycle has arranged them.
  for (const QueryTerm& qt : terms) {
    scan(shard.memtable, qt);
    for (const Segment& seg : shard.segments) {
      scan(seg.postings, qt);
    }
  }
  *docs_scored += acc.size();

  std::vector<Scored> scored;
  scored.reserve(acc.size());
  for (const auto& [id, s] : acc) {
    (void)id;
    scored.push_back(s);
  }
  auto better = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.order < b.order;
  };
  if (scored.size() > k) {
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(), better);
    scored.resize(k);
  } else {
    std::sort(scored.begin(), scored.end(), better);
  }
  return scored;
}

std::vector<SearchHit> LexicalIndex::Search(const std::string& query_text, size_t k,
                                            const IdFilter& exclude, ThreadPool* pool) const {
  searches_.fetch_add(1, std::memory_order_relaxed);
  if (k == 0 || live_docs_ == 0) {
    return {};
  }
  // Sorted unique query terms with live-set idf. Terms with df == 0 have no
  // live postings anywhere and are dropped up front.
  std::vector<std::string> tokens = Tokenize(query_text);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  double n = static_cast<double>(live_docs_);
  std::vector<QueryTerm> terms;
  terms.reserve(tokens.size());
  for (std::string& t : tokens) {
    auto it = df_.find(t);
    if (it == df_.end()) continue;
    double df = static_cast<double>(it->second);
    double idf = std::log((n - df + 0.5) / (df + 0.5) + 1.0);
    terms.push_back(QueryTerm{std::move(t), idf});
  }
  if (terms.empty()) {
    return {};
  }
  double avgdl = static_cast<double>(total_live_len_) / n;

  size_t num_shards = shards_.size();
  std::vector<std::vector<Scored>> per_shard(num_shards);
  std::vector<uint64_t> postings(num_shards, 0), docs(num_shards, 0);
  auto score_range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      per_shard[s] =
          ScoreShard(shards_[s], terms, k, exclude, avgdl, &postings[s], &docs[s]);
    }
  };
  if (pool != nullptr && num_shards > 1) {
    pool->ParallelFor(num_shards, score_range);
  } else {
    score_range(0, num_shards);
  }

  uint64_t total_postings = 0, total_docs = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    total_postings += postings[s];
    total_docs += docs[s];
  }
  postings_scanned_.fetch_add(total_postings, std::memory_order_relaxed);
  docs_scored_.fetch_add(total_docs, std::memory_order_relaxed);

  // Merge per-shard top-k under the shared total order. Documents are
  // disjoint across shards and per-doc scores are structure-invariant, so
  // this reproduces the single-shard ranking bit for bit.
  std::vector<Scored> merged;
  for (auto& list : per_shard) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  std::sort(merged.begin(), merged.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.order < b.order;
  });
  if (merged.size() > k) {
    merged.resize(k);
  }
  std::vector<SearchHit> hits;
  hits.reserve(merged.size());
  for (const Scored& s : merged) {
    hits.push_back(SearchHit{s.id, -static_cast<float>(s.score)});
  }
  return hits;
}

size_t LexicalIndex::num_segments() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    n += s.segments.size();
  }
  return n;
}

size_t LexicalIndex::memtable_docs() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    n += s.memtable_docs;
  }
  return n;
}

LexicalIndexStats LexicalIndex::stats() const {
  LexicalIndexStats out;
  out.searches = searches_.load(std::memory_order_relaxed);
  out.postings_scanned = postings_scanned_.load(std::memory_order_relaxed);
  out.docs_scored = docs_scored_.load(std::memory_order_relaxed);
  out.seals = seals_;
  out.compactions = compactions_;
  return out;
}

void LexicalIndex::ResetSearchStats() const {
  searches_.store(0, std::memory_order_relaxed);
  postings_scanned_.store(0, std::memory_order_relaxed);
  docs_scored_.store(0, std::memory_order_relaxed);
}

}  // namespace metis
