// Live-mutation serving index: epoch-versioned memtable -> immutable segments.
//
// Layers streaming Insert/Delete over either static backend (flat or IVF)
// while preserving the repo's determinism contract: at any point in a
// mutation stream, search results are bit-identical — ids, order, AND
// distances — to an index freshly built from the live document set (the
// mutation-parity tests assert exactly this).
//
// Structure (an LSM-style lifecycle over one append-only row log):
//
//     writes                 seal                  compact / retrain
//   ┌─────────┐   ┌────────────────────────┐   ┌──────────────────────┐
//   │ memtable │──>│ immutable segments ... │──>│ compacted segment /  │
//   │ (log tail)│  │ (frozen log ranges)    │   │ retrained base index │
//   └─────────┘   └────────────────────────┘   └──────────────────────┘
//
//   - Every row ever inserted (including the initial bulk load) is appended
//     to a preallocated block log; a row's *log position* is its global
//     candidate order. The memtable is simply the unsealed log tail — absorbed
//     by flat scan at search time.
//   - At memtable_rows the tail is sealed into an immutable segment (a frozen
//     log range — sealing is O(1), no copying). Segments are swept exactly
//     like shards: per-structure BoundedTopK heaps merge under the existing
//     (distance, candidate order) total order, so how rows are partitioned
//     across base/segments/memtable can never change results.
//   - Deletes are tombstones: a copy-on-write sorted id set, filtered
//     *inside* every scan before top-k selection (post-filtering a top-k
//     could let dead rows crowd out live ones).
//   - Compaction merges sealed segments into one tombstone-free segment whose
//     rows keep their original log-position orders. Retrain rebuilds the base
//     index over the live set (through the same MakeBackendIndex factory and
//     train seed as a fresh build, so the result is bit-identical to one) —
//     triggered when live delta rows outgrow the base or, for IVF, when the
//     mean nearest-centroid distance of newly sealed rows decays past a
//     measured multiple of the train-time mean.
//
// Epochs: readers never block and never see torn state. Every mutation
// publishes a new immutable MutableEpoch (a shared_ptr snapshot of base +
// segment list + memtable bounds + tombstones) via an atomic shared_ptr
// swap; a search pins one epoch and answers entirely against it. Log rows
// below the pinned epoch's watermark are immutable, so concurrent appends
// are invisible to pinned readers. Maintenance (compaction/retrain) can run
// on a ThreadPool with readers still serving the old epoch; the synchronous
// default keeps runs bit-reproducible for the parity tests and benches.
//
// The RetrievalBatcher's coalesced groups pass through here as one
// SearchBatch call, which pins a single epoch for the whole group — every
// query in a batch sees the same snapshot.

#ifndef METIS_SRC_VECTORDB_MUTABLE_INDEX_H_
#define METIS_SRC_VECTORDB_MUTABLE_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/vectordb/vectordb.h"

namespace metis {

class BoundedTopK;       // topk.h (internal).
class BoundedQuantTopK;  // quantize.h (internal).

// One sealed segment: a frozen log range, optionally replaced by a compacted
// (tombstone-free) row set whose orders are the original log positions.
struct MutableSegment {
  size_t lo = 0, hi = 0;  // Log positions covered: [lo, hi).
  // Null: scan log rows [lo, hi) directly. Non-null: scan these rows instead
  // (same live content, dead rows dropped).
  std::shared_ptr<const IndexShard> compacted;
  // Quantized mirror of the segment's rows (the log range, or `compacted`
  // when set), encoded at seal/compaction time against the *base's* trained
  // quantizers so segment codes and base codes share one code space. Null
  // when the base has no quantizers — the segment then scans exactly on
  // every tier (the memtable rule). A retrain drops surviving segments'
  // codes (they were encoded against the old base's quantizers); they scan
  // exactly until the next compaction re-encodes them.
  std::shared_ptr<const QuantizedCodes> codes;
};

// Immutable snapshot of the serving structures at one publication point.
// Everything reachable from an epoch is frozen: the base index, the segment
// list, the tombstone set, and every log row below memtable_hi.
struct MutableEpoch {
  uint64_t epoch = 0;
  std::shared_ptr<const VectorIndex> base;
  const IvfL2Index* base_ivf = nullptr;  // Borrowed from base when IVF.
  // False while an IVF base is untrained; searches then scan the base's log
  // range [0, base_cut) directly (exact), instead of probing.
  bool base_searchable = false;
  size_t base_cut = 0;  // Log rows below this live in the base.
  // Sealed segments covering [base_cut, memtable_lo), oldest first.
  std::vector<MutableSegment> segments;
  size_t memtable_lo = 0, memtable_hi = 0;  // Unsealed log tail.
  // Sorted tombstoned ids (copy-on-write; never mutated once published, and
  // never pruned — ids are never reused, so a tombstone stays valid forever).
  std::shared_ptr<const std::vector<ChunkId>> tombstones;
  size_t live_rows = 0;
};

// Counters + gauges surfaced through RunMetrics::ingest and BENCH_ingest.
struct MutableIndexStats {
  uint64_t inserts = 0;      // Post-finalize streaming inserts.
  uint64_t deletes = 0;
  uint64_t seals = 0;
  uint64_t compactions = 0;
  uint64_t retrains = 0;
  size_t live_rows = 0;
  size_t base_rows = 0;      // Live rows currently served by the base index.
  size_t open_segments = 0;
  size_t memtable_rows = 0;
  size_t tombstones = 0;
  size_t log_rows = 0;
};

class MutableIndex : public VectorIndex {
 public:
  // `options.mutation` holds the lifecycle knobs; the rest of `options`
  // configures the base backend (and its retrain rebuilds).
  MutableIndex(size_t dim, const RetrievalIndexOptions& options);
  ~MutableIndex() override;

  MutableIndex(const MutableIndex&) = delete;
  MutableIndex& operator=(const MutableIndex&) = delete;

  // --- VectorIndex surface (reads are lock-free; Add == Insert) ---
  void Add(ChunkId id, const Embedding& v) override { Insert(id, v); }
  std::vector<SearchHit> Search(const Embedding& query, size_t k) const override;
  std::vector<SearchHit> Search(const Embedding& query, size_t k,
                                const RetrievalQuality& quality) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries, size_t k,
                                                  ThreadPool* pool = nullptr) const override;
  std::vector<std::vector<SearchHit>> SearchBatch(const std::vector<Embedding>& queries, size_t k,
                                                  ThreadPool* pool,
                                                  const RetrievalQuality& quality) const override;
  // One epoch pin for the whole batch: a coalesced group is answered against
  // a single snapshot no matter how the writer races it.
  std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<Embedding>& queries, size_t k, ThreadPool* pool,
      const std::vector<RetrievalQuality>& qualities) const override;
  // Exclusion-aware search (the hybrid metadata-filter push-down): like
  // Search(query, k, quality) but with `exclude` (sorted ids) filtered inside
  // every scan, unioned with the epoch's tombstones. Filtered scans always
  // run the exact fp32 tier (quantized-tier requests are stripped).
  std::vector<SearchHit> SearchFiltered(const Embedding& query, size_t k,
                                        const RetrievalQuality& quality,
                                        const IdFilter& exclude) const;
  // Live rows (inserted minus deleted).
  size_t size() const override;

  // --- Lifecycle ---
  // Call once after the initial bulk load (VectorDatabase::FinalizeIndex
  // forwards here): trains an IVF base over the loaded rows and opens the
  // memtable. Adds before this go to the base; adds after go to the memtable.
  void Finalize(ThreadPool* pool = nullptr);
  bool finalized() const;

  // Streaming write paths. Ids must be fresh — never currently live and never
  // previously deleted (VectorDatabase's monotone chunk ids guarantee this;
  // delete-then-reinsert therefore means inserting under a new id).
  void Insert(ChunkId id, const Embedding& v);
  // Tombstones a live id. Returns false if the id was never inserted or is
  // already deleted.
  bool Delete(ChunkId id);

  // Manual lifecycle controls (the automatic triggers call the same paths;
  // these run synchronously even in background mode, waiting out any
  // in-flight maintenance first).
  void SealMemtable();
  void CompactSegments();
  void RetrainBase(ThreadPool* pool = nullptr);

  // Pool used by background maintenance (options.mutation
  // .background_maintenance); unused in the synchronous default. Not owned.
  void set_maintenance_pool(ThreadPool* pool);

  // --- Epoch introspection (stress/parity tests, docs of the contract) ---
  // Pins the current epoch: the returned snapshot answers SearchPinned
  // identically forever, regardless of concurrent mutations.
  std::shared_ptr<const MutableEpoch> PinEpoch() const;
  std::vector<SearchHit> SearchPinned(const MutableEpoch& epoch, const Embedding& query, size_t k,
                                      const RetrievalQuality& quality = {}) const;
  // Enumerates the epoch's live rows in insertion (log) order — the exact
  // stream a from-scratch reference build over the live set would consume.
  void ForEachLiveRow(const MutableEpoch& epoch,
                      const std::function<void(ChunkId, const float*)>& fn) const;

  MutableIndexStats stats() const;
  // The current base as an IVF index (null for the flat backend). Retrains
  // swap the base but carry probe counters over, so mean_probes /
  // probe_histogram stay cumulative across swaps.
  const IvfL2Index* base_ivf() const { return PinEpoch()->base_ivf; }
  // The current base's quantizers (null when RetrievalIndexOptions::quant is
  // off). Like base_ivf(), the pointer is borrowed from the current base and
  // stays valid until the next retrain swaps it.
  const IndexQuantizers* quantizers() const override { return PinEpoch()->base->quantizers(); }
  size_t dim() const { return dim_; }
  const MutableIndexOptions& mutation_options() const { return mopts_; }

 private:
  enum class MaintOp { kNone, kCompact, kRetrain };

  // Log access (rows below a published epoch's memtable_hi are immutable).
  const IndexShard& LogBlock(size_t pos) const;
  ChunkId LogId(size_t pos) const;
  const float* LogRow(size_t pos) const;
  void ScanLogRange(size_t lo, size_t hi, const float* q, double qnorm, const IdFilter& exclude,
                    BoundedTopK& out) const;
  // Exact scan of a log range into a quantized-candidate heap (memtable and
  // un-encoded segments in the quantized search flow).
  void ScanLogRangeExact(size_t lo, size_t hi, const float* q, double qnorm,
                         const IdFilter& exclude, BoundedQuantTopK& out) const;
  // The quantized SearchPinned flow: base candidates + segment code scans +
  // exact memtable into one (approx distance, order) heap, then one exact
  // rerank. Only called when `tier` is a quantized tier with a live mirror.
  std::vector<SearchHit> SearchPinnedQuant(const MutableEpoch& epoch, const Embedding& query,
                                           size_t k, RetrievalPrecision tier,
                                           const RetrievalQuality& quality) const;

  size_t AppendLogLocked(ChunkId id, const float* v);
  void PublishLocked();
  bool TombstonedLocked(ChunkId id) const;
  void SealLocked();
  MaintOp PickMaintenanceLocked() const;
  void MaybeMaintainLocked(std::unique_lock<std::mutex>& lock);
  void WaitForMaintenanceLocked(std::unique_lock<std::mutex>& lock);

  // Compaction: snapshot under the lock, build anywhere (inputs immutable),
  // swap under the lock.
  struct CompactPlan {
    std::vector<MutableSegment> segments;
    std::shared_ptr<const std::vector<ChunkId>> tombstones;
    // Keeps the base (and its quantizers, which the off-lock build encodes
    // the merged rows against) alive for the build's duration. Safe to read
    // off-lock: maintenance ops are serialized, so no retrain swaps the base
    // while a compaction is in flight.
    std::shared_ptr<const VectorIndex> base;
  };
  CompactPlan SnapshotCompactLocked() const;
  struct CompactedBuild {
    std::shared_ptr<IndexShard> shard;
    std::shared_ptr<const QuantizedCodes> codes;
  };
  static CompactedBuild BuildCompacted(const MutableIndex* self, const CompactPlan& plan);
  void SwapCompactedLocked(const CompactPlan& plan, CompactedBuild built);

  // Retrain: same snapshot/build/swap split.
  struct RetrainPlan {
    size_t cut = 0;  // Log rows [0, cut) feed the new base.
    std::shared_ptr<const std::vector<ChunkId>> tombstones;
  };
  RetrainPlan SnapshotRetrainLocked() const;
  struct BuiltBase {
    std::unique_ptr<VectorIndex> index;
    IvfL2Index* ivf = nullptr;
    size_t rows = 0;
  };
  BuiltBase BuildBase(const RetrainPlan& plan, ThreadPool* pool) const;
  void SwapBaseLocked(const RetrainPlan& plan, BuiltBase built);

  const size_t dim_;
  const RetrievalIndexOptions options_;
  const MutableIndexOptions mopts_;
  const size_t block_rows_;

  // Append-only row log: preallocated block directory; blocks allocate (with
  // reserved capacity, so their arrays never move) on first touch. Readers
  // only address rows below a pinned epoch's watermark.
  std::vector<std::unique_ptr<IndexShard>> blocks_;

  mutable std::mutex mu_;
  std::condition_variable maintenance_cv_;
  bool maintenance_inflight_ = false;
  ThreadPool* maintenance_pool_ = nullptr;

  // Writer state (all guarded by mu_; published to readers via epoch_).
  bool finalized_ = false;
  uint64_t epoch_counter_ = 0;
  size_t log_size_ = 0;
  std::shared_ptr<VectorIndex> base_;
  IvfL2Index* base_ivf_ = nullptr;
  size_t base_cut_ = 0;
  std::vector<MutableSegment> segments_;
  size_t mt_lo_ = 0, mt_hi_ = 0;
  std::shared_ptr<const std::vector<ChunkId>> tombstones_;
  std::unordered_map<ChunkId, size_t> live_pos_;  // Live id -> log position.
  size_t live_rows_ = 0;
  size_t live_in_base_ = 0;
  // IVF centroid-drift signal: nearest-centroid distances of rows sealed
  // since the last (re)train.
  double sealed_dist_sum_ = 0.0;
  size_t sealed_dist_rows_ = 0;
  MutableIndexStats counters_;

  // The published epoch (std::atomic_load/store on shared_ptr).
  std::shared_ptr<const MutableEpoch> epoch_;
};

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_MUTABLE_INDEX_H_
