// SIMD distance kernels with runtime dispatch.
//
// The retrieval hot loop is a dot product between a stored row and a query
// (distances are evaluated via |x-q|^2 = |x|^2 + |q|^2 - 2 dot(x,q); see
// vectordb.h). This header exposes that kernel behind a CPUID-based runtime
// dispatcher with three tiers:
//
//   kScalar  - portable C++: eight independent double accumulators, written so
//              the compiler can auto-vectorize under strict FP semantics.
//   kAvx2    - AVX2 intrinsics: two 4-wide double accumulator registers.
//   kAvx512  - AVX-512F intrinsics: one 8-wide double accumulator register.
//
// Every tier computes the *bit-identical* double. All three accumulate
// element i into chain (i mod 8), convert each float pair to double, multiply
// and add with separate roundings (no FMA contraction; the TU is built with
// -ffp-contract=off), and reduce the eight chains with the same halving tree
//     ((c0+c4)+(c2+c6)) + ((c1+c5)+(c3+c7))
// before adding the scalar tail. Lane j of a SIMD accumulator register
// performs exactly the additions of scalar chain j in the same order, and the
// halving reduction performs exactly the scalar tree's additions, so the
// returned double does not depend on the dispatch target. That is what lets
// the parity suite assert bit-identical rankings (and distances) with
// dispatch forced to each tier, and what lets RowPool norms computed under
// one tier be reused under another.
//
// Dispatch is resolved once at startup from CPUID (best supported tier wins)
// and can be overridden:
//   - env METIS_KERNEL_TARGET=scalar|avx2|avx512 (consulted at first use);
//   - SetKernelTarget() at runtime (tests and benches force each tier).
// Forcing an unsupported tier fails and leaves the active tier unchanged.
//
// Quantized kernel (int8 scalar-quantized tier, quantize.h): DotU8F32 is the
// asymmetric widening-multiply dot — uint8 row codes x a precomputed fp32
// per-query weight vector — accumulated in FLOAT across SIXTEEN chains
// (element i -> chain i mod 16). Same determinism recipe as the fp32 kernel,
// one level wider: every tier converts code u8 -> f32 exactly, multiplies and
// adds with separate roundings, folds chain j into chain j-8 first (the
// AVX-512 zmm halving step), then reduces eight partials through the fixed
// tree ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)) and adds the scalar tail — so
// the returned float is bit-identical on every tier. Sixteen float chains is
// what a 16-lane f32 SIMD register imposes; float accumulation is fine here
// because the result only ranks *candidates* for the exact fp32 rerank tail.
//
// fast_math mode (explicit opt-in; OFF by default): relaxed variants of the
// quantized kernel only — FMA contraction and wider ILP, no fixed chain
// structure, results may differ from the strict tiers in the last ulps. The
// exact fp32 kernel is never relaxed (it defines stored norms and final
// rankings). Enable via SetKernelFastMath(true) or METIS_KERNEL_FAST_MATH=1.
// Because the rerank tail re-scores candidates exactly, fast_math can only
// perturb *which* candidates get reranked, never the ordering of survivors.

#ifndef METIS_SRC_VECTORDB_KERNELS_H_
#define METIS_SRC_VECTORDB_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace metis {

// Dispatch tiers, ordered from portable to widest.
enum class KernelTarget {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// Stable lowercase name ("scalar", "avx2", "avx512") for logs and bench tags.
const char* KernelTargetName(KernelTarget target);

// True if the running CPU can execute `target` (CPUID; kScalar is always
// supported).
bool KernelTargetSupported(KernelTarget target);

// The fastest supported tier on this CPU by dispatch policy: AVX2 when
// available (under the 8-chain determinism contract the kernel is bound by
// accumulator-add latency, and AVX2's two independent accumulator registers
// pipeline better than AVX-512's single wider one — see kernels.cc), else
// AVX-512, else scalar.
KernelTarget BestSupportedTarget();

// The tier DotBlocked currently dispatches to.
KernelTarget ActiveKernelTarget();

// Forces dispatch to `target` for subsequent calls. Returns false (and leaves
// dispatch unchanged) if the CPU does not support it. Not synchronized with
// concurrent searches: switch targets only between search operations, as the
// parity tests and benches do.
bool SetKernelTarget(KernelTarget target);

// Restores the startup default: METIS_KERNEL_TARGET if set and supported,
// else the best supported tier.
void ResetKernelTarget();

// Dot product over float data, accumulated in double across eight chains as
// described above. Dispatches to the active tier; deterministic for a given
// (a, b, n) regardless of tier.
double DotBlocked(const float* a, const float* b, size_t n);

// Squared L2 norm with the same accumulation structure, so
// SquaredNormBlocked(x) == DotBlocked(x, x) bit-for-bit (exact-duplicate rows
// score an exact-zero distance).
double SquaredNormBlocked(const float* a, size_t n);

// Runs the kernel of a specific tier, bypassing dispatch (parity tests).
// Aborts if the tier is unsupported on this CPU.
double DotBlockedTarget(KernelTarget target, const float* a, const float* b, size_t n);

// The active tier's raw function pointer. Hot loops that score many rows
// against one query fetch it once and call it directly, skipping the
// per-call dispatch load.
using DotKernelFn = double (*)(const float*, const float*, size_t);
DotKernelFn ActiveDotKernel();

// --- Quantized (u8 x f32) kernel --------------------------------------------

// Widening dot between uint8 row codes and a float weight vector, accumulated
// in float across sixteen chains (header comment above). Strict tiers are
// bit-identical across dispatch targets; with fast_math enabled the result
// may differ in the last ulps (and between CPUs), which the exact rerank
// tail absorbs.
float DotU8F32(const uint8_t* codes, const float* w, size_t n);

// Runs a specific tier's strict or fast variant, bypassing dispatch (parity
// tests). Aborts if the tier is unsupported on this CPU; a fast variant falls
// back to the tier's strict kernel when the CPU lacks FMA.
float DotU8F32Target(KernelTarget target, bool fast_math, const uint8_t* codes, const float* w,
                     size_t n);

// The active u8 kernel's raw function pointer (quantized scan loops fetch it
// once per scan, like ActiveDotKernel).
using U8DotKernelFn = float (*)(const uint8_t*, const float*, size_t);
U8DotKernelFn ActiveU8DotKernel();

// fast_math switch for the quantized kernels (never the exact fp32 kernel).
// Startup default comes from METIS_KERNEL_FAST_MATH=1; strict otherwise.
// Like SetKernelTarget, not synchronized with in-flight searches.
bool KernelFastMathEnabled();
void SetKernelFastMath(bool enabled);

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_KERNELS_H_
