// Internal top-k selection primitives shared by the static indexes
// (vectordb.cc) and the live-mutation wrapper (mutable_index.cc).
//
// Everything here is either comparison-only (Cand, BoundedTopK — no floating-
// point arithmetic, so any TU may inline it without affecting bit-identity)
// or a *declaration* of a distance-scan routine whose single definition lives
// in vectordb.cc. That one-definition rule is load-bearing: vectordb.cc is
// compiled -O3 -march=native, where the compiler may contract the
// norm + qnorm - 2*dot combine differently than a default-flags TU would.
// Keeping exactly one codegen of the scan loop is what lets the mutation-
// parity tests assert distances bit-equal between a mutable index and a
// freshly built static one.

#ifndef METIS_SRC_VECTORDB_TOPK_H_
#define METIS_SRC_VECTORDB_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/vectordb/vectordb.h"

namespace metis {

// Candidate under selection: distance plus the position at which it was
// considered (insertion order for flat, probe-concatenation order for IVF,
// log position for the mutable index's delta structures).
struct Cand {
  float dist;
  size_t order;
  ChunkId id;
};

// Total order matching the seed's stable_sort-by-distance: distance first,
// candidate order as the tie-break. Selecting the k smallest under this total
// order is independent of how candidates are partitioned or interleaved.
inline bool CandLess(const Cand& a, const Cand& b) {
  if (a.dist != b.dist) {
    return a.dist < b.dist;
  }
  return a.order < b.order;
}

// Max-heap of the k best candidates seen so far: O(log k) per insertion past
// the warmup, O(k) memory — replaces the seed's materialize-all + stable_sort.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(float dist, size_t order, ChunkId id) {
    if (k_ == 0) {
      return;
    }
    if (heap_.size() < k_) {
      heap_.push_back(Cand{dist, order, id});
      std::push_heap(heap_.begin(), heap_.end(), CandLess);
      return;
    }
    const Cand& worst = heap_.front();
    if (dist > worst.dist || (dist == worst.dist && order > worst.order)) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), CandLess);
    heap_.back() = Cand{dist, order, id};
    std::push_heap(heap_.begin(), heap_.end(), CandLess);
  }

  std::vector<SearchHit> Drain() {
    std::sort_heap(heap_.begin(), heap_.end(), CandLess);  // Ascending.
    std::vector<SearchHit> hits;
    hits.reserve(heap_.size());
    for (const Cand& c : heap_) {
      hits.push_back(SearchHit{c.id, c.dist});
    }
    heap_.clear();
    return hits;
  }

  // Like Drain, but keeps the candidate orders (the mutable index merges
  // base-index hits with delta-structure hits under the shared total order).
  std::vector<Cand> DrainCands() {
    std::sort_heap(heap_.begin(), heap_.end(), CandLess);
    std::vector<Cand> out = std::move(heap_);
    heap_.clear();
    return out;
  }

  // The retained candidates in heap order (for cross-shard merging; the
  // merge re-heapifies, so ordering here does not matter).
  const std::vector<Cand>& cands() const { return heap_; }

 private:
  size_t k_;
  std::vector<Cand> heap_;
};

// Scores pool rows [begin, end) against one query and offers the survivors of
// `exclude` (sorted tombstoned ids; empty = keep all) to `out`. Candidate
// order is `base` + orders[i]. Defined in vectordb.cc — see the header
// comment for why there is exactly one definition.
void ScanRowsInto(const RowPool& pool, size_t begin, size_t end, const float* q, double qnorm,
                  const size_t* orders, size_t base, const IdFilter& exclude, BoundedTopK& out);

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_TOPK_H_
