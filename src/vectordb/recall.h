// Recall evaluation for approximate indexes.
//
// Ground truth for recall@k is the exact flat scan: for each query, the set
// of ids FlatL2Index returns at depth k. An approximate index's recall@k is
// the mean fraction of that set it recovers (set overlap — rank order within
// the top-k does not matter, matching the usual ANN-benchmarks definition).
//
// Typical use (bench_recall, recall tests):
//
//   RecallEval eval(flat, queries, /*k=*/10);
//   double r = eval.Evaluate(ivf);                 // index's own policy
//   double r2 = eval.Evaluate(ivf, &pool, quality) // forced probe mode
//
// Ground truth is computed once at construction and reused across every
// candidate index / probe configuration in a sweep.

#ifndef METIS_SRC_VECTORDB_RECALL_H_
#define METIS_SRC_VECTORDB_RECALL_H_

#include <cstddef>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/vectordb/vectordb.h"

namespace metis {

// Mean recall@k of `got` against `truth` (both outer-indexed by query).
// got[i] may be shorter than truth[i] (early-terminated probes); extra hits
// beyond the truth depth never help. Empty truth rows count as recall 1.
double RecallAtK(const std::vector<std::vector<SearchHit>>& got,
                 const std::vector<std::vector<SearchHit>>& truth);

class RecallEval {
 public:
  // Computes exact ground truth for `queries` at depth `k` with one batched
  // flat sweep. `truth` is borrowed and must outlive the eval only during
  // construction.
  RecallEval(const FlatL2Index& truth, std::vector<Embedding> queries, size_t k,
             ThreadPool* pool = nullptr);

  // Wraps precomputed ground truth directly — the cheap path for sweeps that
  // evaluate many configurations (probe grids, quantized tiers, rerank
  // factors) over ONE corpus: compute truth once, share it across every
  // grid cell instead of re-running (or worse, rebuilding) the O(n·q) flat
  // scan per cell. `truth[i]` is the exact top-k for `queries[i]`.
  RecallEval(std::vector<Embedding> queries, size_t k,
             std::vector<std::vector<SearchHit>> truth);

  // Ground truth from an EXISTING index's own exact path — no flat-index
  // rebuild of a corpus that is already resident. `quality` must make the
  // sweep exact: the default fp32 quality is exact on the flat and mutable
  // backends; for IVF pass a fixed full-probe override (nprobe >= nlist).
  static RecallEval FromExactSearch(const VectorIndex& index, std::vector<Embedding> queries,
                                    size_t k, ThreadPool* pool = nullptr,
                                    const RetrievalQuality& quality = {});

  // Recall@k of `index` over the eval's query set, under the index's own
  // probe policy or an explicit quality override (IVF only; other indexes
  // ignore `quality`).
  double Evaluate(const VectorIndex& index, ThreadPool* pool = nullptr,
                  const RetrievalQuality& quality = {}) const;

  size_t k() const { return k_; }
  const std::vector<Embedding>& queries() const { return queries_; }
  const std::vector<std::vector<SearchHit>>& ground_truth() const { return truth_; }

 private:
  size_t k_;
  std::vector<Embedding> queries_;
  std::vector<std::vector<SearchHit>> truth_;
};

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_RECALL_H_
