// Runtime-dispatched SIMD dot kernels. See kernels.h for the contract: every
// tier returns the bit-identical double, so this file is deliberately rigid
// about accumulation structure:
//
//   - element i feeds chain (i mod 8); a chain's additions happen in index
//     order (strictly sequential per chain);
//   - each element contributes round(round-to-double(a)*round-to-double(b))
//     via a separate multiply and add — never an FMA. The float->double
//     conversions are exact, the product is rounded once, the add once; the
//     intrinsic tiers use mul_pd + add_pd and this TU is compiled with
//     -ffp-contract=off so the scalar tier cannot be contracted either;
//   - the eight chains reduce through the fixed halving tree
//     ((c0+c4)+(c2+c6)) + ((c1+c5)+(c3+c7)), which is exactly what a
//     log2-halving SIMD reduction computes, then the scalar tail is added.
//
// Change any of these and the tiers stop agreeing in the last ulp, the float
// distances can round differently, and the cross-target ranking parity the
// tests assert is gone.

#include "src/vectordb/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define METIS_KERNELS_X86 1
#else
#define METIS_KERNELS_X86 0
#endif

#include "src/common/check.h"

namespace metis {
namespace {

// --- Scalar tier ------------------------------------------------------------

double DotScalar(const float* a, const float* b, size_t n) {
  double acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  double acc4 = 0, acc5 = 0, acc6 = 0, acc7 = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 += static_cast<double>(a[i + 0]) * b[i + 0];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
    acc4 += static_cast<double>(a[i + 4]) * b[i + 4];
    acc5 += static_cast<double>(a[i + 5]) * b[i + 5];
    acc6 += static_cast<double>(a[i + 6]) * b[i + 6];
    acc7 += static_cast<double>(a[i + 7]) * b[i + 7];
  }
  double tail = 0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return (((acc0 + acc4) + (acc2 + acc6)) + ((acc1 + acc5) + (acc3 + acc7))) + tail;
}

// --- Scalar u8 tier ----------------------------------------------------------
//
// The quantized kernel's bit-defining reference: sixteen float chains
// (element i -> chain i mod 16), each element contributing
// round(f32(code) * w) via a separate multiply and add (-ffp-contract=off
// forbids contraction here too). The reduction first folds chain j+8 into
// chain j — exactly the AVX-512 tier's zmm -> ymm halving step — then runs
// the same eight-partial tree as the fp32 kernel, then adds the float tail.
float DotU8F32Scalar(const uint8_t* codes, const float* w, size_t n) {
  float acc[16] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (size_t j = 0; j < 16; ++j) {
      acc[j] += static_cast<float>(codes[i + j]) * w[i + j];
    }
  }
  float s8[8];
  for (size_t j = 0; j < 8; ++j) {
    s8[j] = acc[j] + acc[j + 8];
  }
  float sum = ((s8[0] + s8[4]) + (s8[2] + s8[6])) + ((s8[1] + s8[5]) + (s8[3] + s8[7]));
  float tail = 0;
  for (; i < n; ++i) {
    tail += static_cast<float>(codes[i]) * w[i];
  }
  return sum + tail;
}

#if METIS_KERNELS_X86

// GCC's _mm512_cvtps_pd / _mm512_extractf64x4_pd expand through
// _mm*_undefined_pd(), whose deliberately-uninitialized value trips
// -Wuninitialized in the instantiating TU. Header-internal false positive;
// scoped off for the intrinsic tiers only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// --- AVX2 tier --------------------------------------------------------------
//
// Accumulator lo holds chains 0..3, hi holds chains 4..7. Each 8-element step
// loads 8 floats per operand, widens 4+4 to double, and does one mul_pd +
// add_pd per half — lane j of lo/hi performs precisely scalar chain j's
// operations in the same order.
__attribute__((target("avx2"))) double DotAvx2(const float* a, const float* b, size_t n) {
  __m256d lo = _mm256_setzero_pd();  // Chains 0..3.
  __m256d hi = _mm256_setzero_pd();  // Chains 4..7.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d a_lo = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    __m256d a_hi = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 4));
    __m256d b_lo = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    __m256d b_hi = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    lo = _mm256_add_pd(lo, _mm256_mul_pd(a_lo, b_lo));
    hi = _mm256_add_pd(hi, _mm256_mul_pd(a_hi, b_hi));
  }
  // s4 = [c0+c4, c1+c5, c2+c6, c3+c7]; halve again and the scalar tree falls
  // out: lane0+lane1 of s2 = ((c0+c4)+(c2+c6)) + ((c1+c5)+(c3+c7)).
  __m256d s4 = _mm256_add_pd(lo, hi);
  __m128d s2 = _mm_add_pd(_mm256_castpd256_pd128(s4), _mm256_extractf128_pd(s4, 1));
  double sum = _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
  double tail = 0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return sum + tail;
}

// --- AVX-512 tier -----------------------------------------------------------
//
// One zmm accumulator holds all eight chains; each 8-element step widens both
// operands' 8 floats to 8 doubles and does one mul_pd + add_pd.
__attribute__((target("avx512f"))) double DotAvx512(const float* a, const float* b, size_t n) {
  __m512d acc = _mm512_setzero_pd();  // Lane j = chain j.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d av = _mm512_cvtps_pd(_mm256_loadu_ps(a + i));
    __m512d bv = _mm512_cvtps_pd(_mm256_loadu_ps(b + i));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(av, bv));
  }
  // Halving reduction == the scalar tree (see DotAvx2).
  __m256d s4 = _mm256_add_pd(_mm512_castpd512_pd256(acc), _mm512_extractf64x4_pd(acc, 1));
  __m128d s2 = _mm_add_pd(_mm256_castpd256_pd128(s4), _mm256_extractf128_pd(s4, 1));
  double sum = _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
  double tail = 0;
  for (; i < n; ++i) {
    tail += static_cast<double>(a[i]) * b[i];
  }
  return sum + tail;
}

// --- AVX2 u8 tier -----------------------------------------------------------
//
// lo holds chains 0..7, hi holds chains 8..15. Each 16-element step loads 16
// codes, zero-extends 8+8 to i32, converts to f32 (both conversions exact for
// u8 values), and does one mul_ps + add_ps per half. The lo+hi fold in the
// reduction is the scalar tier's s8[j] = acc[j] + acc[j+8].
__attribute__((target("avx2"))) float DotU8F32Avx2(const uint8_t* codes, const float* w,
                                                   size_t n) {
  __m256 lo = _mm256_setzero_ps();  // Chains 0..7.
  __m256 hi = _mm256_setzero_ps();  // Chains 8..15.
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m256 c_lo = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw));
    __m256 c_hi = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(raw, 8)));
    lo = _mm256_add_ps(lo, _mm256_mul_ps(c_lo, _mm256_loadu_ps(w + i)));
    hi = _mm256_add_ps(hi, _mm256_mul_ps(c_hi, _mm256_loadu_ps(w + i + 8)));
  }
  // s8 = lo + hi; halve twice more and the scalar tree falls out.
  __m256 s8 = _mm256_add_ps(lo, hi);
  __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps(s8, 1));
  __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  float sum = _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1)));
  float tail = 0;
  for (; i < n; ++i) {
    tail += static_cast<float>(codes[i]) * w[i];
  }
  return sum + tail;
}

// --- AVX-512 u8 tier --------------------------------------------------------
//
// One zmm accumulator holds all sixteen chains; the zmm -> ymm halving step
// is the scalar tier's acc[j] + acc[j+8] fold, then the same tree as AVX2.
// (extractf64x4 + casts instead of extractf32x8: the latter needs AVX512DQ
// and this kernel only assumes AVX512F.)
__attribute__((target("avx512f"))) float DotU8F32Avx512(const uint8_t* codes, const float* w,
                                                        size_t n) {
  __m512 acc = _mm512_setzero_ps();  // Lane j = chain j.
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m512 c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(raw));
    acc = _mm512_add_ps(acc, _mm512_mul_ps(c, _mm512_loadu_ps(w + i)));
  }
  __m256 s8 = _mm256_add_ps(
      _mm512_castps512_ps256(acc),
      _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(acc), 1)));
  __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps(s8, 1));
  __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  float sum = _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1)));
  float tail = 0;
  for (; i < n; ++i) {
    tail += static_cast<float>(codes[i]) * w[i];
  }
  return sum + tail;
}

// --- fast_math u8 variants ---------------------------------------------------
//
// Opt-in only (see kernels.h): FMA contraction and doubled ILP, no fixed
// chain structure — NOT bit-stable across tiers or CPUs. Safe for quantized
// candidate generation only because the exact rerank tail re-scores.
__attribute__((target("avx2,fma"))) float DotU8F32FastAvx2(const uint8_t* codes, const float* w,
                                                           size_t n) {
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 16));
    a0 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(r0)),
                         _mm256_loadu_ps(w + i), a0);
    a1 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(r0, 8))),
                         _mm256_loadu_ps(w + i + 8), a1);
    a2 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(r1)),
                         _mm256_loadu_ps(w + i + 16), a2);
    a3 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(r1, 8))),
                         _mm256_loadu_ps(w + i + 24), a3);
  }
  for (; i + 8 <= n; i += 8) {
    __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    a0 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw)), _mm256_loadu_ps(w + i),
                         a0);
  }
  __m256 s = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
  __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
  __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  float sum = _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1)));
  for (; i < n; ++i) {
    sum += static_cast<float>(codes[i]) * w[i];
  }
  return sum;
}

__attribute__((target("avx512f"))) float DotU8F32FastAvx512(const uint8_t* codes, const float* w,
                                                            size_t n) {
  __m512 a0 = _mm512_setzero_ps();
  __m512 a1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 16));
    a0 = _mm512_fmadd_ps(_mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(r0)), _mm512_loadu_ps(w + i),
                         a0);
    a1 = _mm512_fmadd_ps(_mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(r1)),
                         _mm512_loadu_ps(w + i + 16), a1);
  }
  float sum = _mm512_reduce_add_ps(_mm512_add_ps(a0, a1));
  for (; i < n; ++i) {
    sum += static_cast<float>(codes[i]) * w[i];
  }
  return sum;
}

#pragma GCC diagnostic pop

#endif  // METIS_KERNELS_X86

// --- Dispatch ---------------------------------------------------------------

DotKernelFn KernelForTarget(KernelTarget target) {
  switch (target) {
#if METIS_KERNELS_X86
    case KernelTarget::kAvx2:
      return &DotAvx2;
    case KernelTarget::kAvx512:
      return &DotAvx512;
#endif
    default:
      return &DotScalar;
  }
}

U8DotKernelFn U8KernelForTarget(KernelTarget target, bool fast_math) {
#if METIS_KERNELS_X86
  switch (target) {
    case KernelTarget::kAvx2:
      if (fast_math && __builtin_cpu_supports("fma") != 0) {
        return &DotU8F32FastAvx2;
      }
      return &DotU8F32Avx2;
    case KernelTarget::kAvx512:
      // AVX-512F implies FMA support in practice; the fast variant only
      // assumes avx512f.
      return fast_math ? &DotU8F32FastAvx512 : &DotU8F32Avx512;
    default:
      break;
  }
#else
  (void)target;
#endif
  (void)fast_math;  // The scalar tier has no relaxed variant worth keeping.
  return &DotU8F32Scalar;
}

bool DefaultFastMath() {
  const char* env = std::getenv("METIS_KERNEL_FAST_MATH");
  return env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0';
}

KernelTarget DefaultTarget() {
  const char* env = std::getenv("METIS_KERNEL_TARGET");
  if (env != nullptr) {
    for (KernelTarget t : {KernelTarget::kScalar, KernelTarget::kAvx2, KernelTarget::kAvx512}) {
      if (std::strcmp(env, KernelTargetName(t)) == 0 && KernelTargetSupported(t)) {
        return t;
      }
    }
    // An ignored override silently mislabels every downstream measurement —
    // say so once, at resolution time.
    std::fprintf(stderr,
                 "metis: ignoring METIS_KERNEL_TARGET=%s (unknown or unsupported "
                 "on this CPU); dispatching to %s\n",
                 env, KernelTargetName(BestSupportedTarget()));
  }
  return BestSupportedTarget();
}

struct Dispatch {
  std::atomic<KernelTarget> target;
  std::atomic<DotKernelFn> fn;
  std::atomic<U8DotKernelFn> u8fn;
  std::atomic<bool> fast_math;

  Dispatch() {
    KernelTarget t = DefaultTarget();
    bool fast = DefaultFastMath();
    target.store(t, std::memory_order_relaxed);
    fn.store(KernelForTarget(t), std::memory_order_relaxed);
    u8fn.store(U8KernelForTarget(t, fast), std::memory_order_relaxed);
    fast_math.store(fast, std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;  // Resolved once, on first use (thread-safe static init).
  return d;
}

}  // namespace

const char* KernelTargetName(KernelTarget target) {
  switch (target) {
    case KernelTarget::kScalar:
      return "scalar";
    case KernelTarget::kAvx2:
      return "avx2";
    case KernelTarget::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool KernelTargetSupported(KernelTarget target) {
  switch (target) {
    case KernelTarget::kScalar:
      return true;
#if METIS_KERNELS_X86
    case KernelTarget::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelTarget::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    case KernelTarget::kAvx2:
    case KernelTarget::kAvx512:
      return false;
#endif
  }
  return false;
}

KernelTarget BestSupportedTarget() {
  // AVX2 outranks AVX-512 on purpose. The 8-chain determinism contract makes
  // the kernel bound by accumulator-add latency, and the AVX2 tier keeps TWO
  // independent vector-add dependency chains in flight (lo/hi registers)
  // where the AVX-512 tier's single zmm accumulator is one serial chain —
  // measured consistently faster (bench_retrieval's per-tier rows). Wider is
  // not better until the contract allows more chains; re-measure if that
  // changes.
  if (KernelTargetSupported(KernelTarget::kAvx2)) {
    return KernelTarget::kAvx2;
  }
  if (KernelTargetSupported(KernelTarget::kAvx512)) {
    return KernelTarget::kAvx512;
  }
  return KernelTarget::kScalar;
}

KernelTarget ActiveKernelTarget() {
  return dispatch().target.load(std::memory_order_relaxed);
}

bool SetKernelTarget(KernelTarget target) {
  if (!KernelTargetSupported(target)) {
    return false;
  }
  dispatch().target.store(target, std::memory_order_relaxed);
  dispatch().fn.store(KernelForTarget(target), std::memory_order_relaxed);
  dispatch().u8fn.store(
      U8KernelForTarget(target, dispatch().fast_math.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  return true;
}

void ResetKernelTarget() {
  SetKernelFastMath(DefaultFastMath());
  METIS_CHECK(SetKernelTarget(DefaultTarget()));
}

double DotBlocked(const float* a, const float* b, size_t n) {
  return dispatch().fn.load(std::memory_order_relaxed)(a, b, n);
}

double SquaredNormBlocked(const float* a, size_t n) { return DotBlocked(a, a, n); }

double DotBlockedTarget(KernelTarget target, const float* a, const float* b, size_t n) {
  METIS_CHECK(KernelTargetSupported(target));
  return KernelForTarget(target)(a, b, n);
}

DotKernelFn ActiveDotKernel() { return dispatch().fn.load(std::memory_order_relaxed); }

float DotU8F32(const uint8_t* codes, const float* w, size_t n) {
  return dispatch().u8fn.load(std::memory_order_relaxed)(codes, w, n);
}

float DotU8F32Target(KernelTarget target, bool fast_math, const uint8_t* codes, const float* w,
                     size_t n) {
  METIS_CHECK(KernelTargetSupported(target));
  return U8KernelForTarget(target, fast_math)(codes, w, n);
}

U8DotKernelFn ActiveU8DotKernel() { return dispatch().u8fn.load(std::memory_order_relaxed); }

bool KernelFastMathEnabled() { return dispatch().fast_math.load(std::memory_order_relaxed); }

void SetKernelFastMath(bool enabled) {
  dispatch().fast_math.store(enabled, std::memory_order_relaxed);
  dispatch().u8fn.store(
      U8KernelForTarget(dispatch().target.load(std::memory_order_relaxed), enabled),
      std::memory_order_relaxed);
}

}  // namespace metis
