// Quantizer training, encoding, and the quantized scan loops. Single
// definitions (see quantize.h): every structure that scores codes — static
// shards, IVF list shards, sealed segments, compacted segments — goes through
// the functions in this TU, so quantized distances cannot depend on which
// structure a row currently lives in.

#include "src/vectordb/quantize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/vectordb/kernels.h"

namespace metis {

namespace {

constexpr size_t kSqStrideBytes = 64;  // Code-row alignment, one cache line.

// Squared L2 between two float spans, sequential double accumulation. Cold
// paths only (training, ADC table build uses the strict kernel instead).
double SeqSquaredDist(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace

size_t SqCodeStride(size_t dim) {
  return (dim + kSqStrideBytes - 1) / kSqStrideBytes * kSqStrideBytes;
}

// --- Training ----------------------------------------------------------------

Int8Params TrainInt8(const RowAccessor& row, size_t n, size_t dim) {
  Int8Params params;
  if (n == 0) {
    return params;
  }
  std::vector<float> vmin(dim, std::numeric_limits<float>::max());
  std::vector<float> vmax(dim, std::numeric_limits<float>::lowest());
  for (size_t i = 0; i < n; ++i) {
    const float* r = row(i);
    for (size_t d = 0; d < dim; ++d) {
      vmin[d] = std::min(vmin[d], r[d]);
      vmax[d] = std::max(vmax[d], r[d]);
    }
  }
  params.vmin = std::move(vmin);
  params.scale.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    float range = vmax[d] - params.vmin[d];
    params.scale[d] = range > 0 ? range / 255.0f : 0.0f;
  }
  return params;
}

PqParams TrainPq(const RowAccessor& row, size_t n, size_t dim, const QuantizationOptions& opts,
                 uint64_t seed) {
  PqParams params;
  if (n == 0) {
    return params;
  }
  size_t m = std::max<size_t>(1, std::min(opts.pq_m, dim));
  while (dim % m != 0) {
    --m;
  }
  size_t dsub = dim / m;

  // Deterministic strided sample: row indices 0, step, 2*step, ...
  size_t cap = std::max<size_t>(1, opts.pq_train_rows);
  size_t step = (n + cap - 1) / cap;
  std::vector<size_t> sample;
  for (size_t i = 0; i < n; i += step) {
    sample.push_back(i);
  }
  size_t ns = sample.size();
  size_t nc = std::min<size_t>(256, ns);

  params.m = m;
  params.dsub = dsub;
  params.ncentroids = nc;
  params.centroids.assign(m * nc * dsub, 0.0f);

  std::vector<float> cent(nc * dsub);
  std::vector<float> nearest_d(ns);
  std::vector<size_t> assign(ns);
  for (size_t s = 0; s < m; ++s) {
    size_t off = s * dsub;
    auto sub = [&](size_t si) { return row(sample[si]) + off; };
    // Farthest-point seeding (the IvfL2Index::Train recipe, per subspace).
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)));
    size_t seed_i = rng.Index(ns);
    std::copy(sub(seed_i), sub(seed_i) + dsub, cent.begin());
    std::fill(nearest_d.begin(), nearest_d.end(), std::numeric_limits<float>::max());
    size_t seeded = 1;
    auto absorb = [&](size_t c) {
      const float* cv = cent.data() + c * dsub;
      for (size_t si = 0; si < ns; ++si) {
        float d = static_cast<float>(SeqSquaredDist(sub(si), cv, dsub));
        nearest_d[si] = std::min(nearest_d[si], d);
      }
    };
    absorb(0);
    while (seeded < nc) {
      size_t best_i = 0;
      float best_d = -1;
      for (size_t si = 0; si < ns; ++si) {
        if (nearest_d[si] > best_d) {
          best_d = nearest_d[si];
          best_i = si;
        }
      }
      std::copy(sub(best_i), sub(best_i) + dsub, cent.begin() + seeded * dsub);
      absorb(seeded);
      ++seeded;
    }
    // Lloyd rounds: serial, in sample order — deterministic.
    for (size_t round = 0; round < std::max<size_t>(1, opts.pq_train_iters); ++round) {
      for (size_t si = 0; si < ns; ++si) {
        size_t best_c = 0;
        double best_d = std::numeric_limits<double>::max();
        for (size_t c = 0; c < nc; ++c) {
          double d = SeqSquaredDist(sub(si), cent.data() + c * dsub, dsub);
          if (d < best_d) {
            best_d = d;
            best_c = c;
          }
        }
        assign[si] = best_c;
      }
      std::vector<double> sums(nc * dsub, 0.0);
      std::vector<size_t> counts(nc, 0);
      for (size_t si = 0; si < ns; ++si) {
        const float* v = sub(si);
        double* sum = sums.data() + assign[si] * dsub;
        for (size_t d = 0; d < dsub; ++d) {
          sum[d] += v[d];
        }
        ++counts[assign[si]];
      }
      for (size_t c = 0; c < nc; ++c) {
        if (counts[c] > 0) {
          for (size_t d = 0; d < dsub; ++d) {
            cent[c * dsub + d] =
                static_cast<float>(sums[c * dsub + d] / static_cast<double>(counts[c]));
          }
        }
      }
    }
    std::copy(cent.begin(), cent.begin() + nc * dsub,
              params.centroids.begin() + s * nc * dsub);
  }
  return params;
}

IndexQuantizers TrainQuantizers(const RowAccessor& row, size_t n, size_t dim,
                                const QuantizationOptions& opts, uint64_t seed) {
  IndexQuantizers qz;
  if (opts.sq) {
    qz.sq = TrainInt8(row, n, dim);
  }
  if (opts.pq) {
    qz.pq = TrainPq(row, n, dim, opts, seed);
  }
  return qz;
}

// --- Encoding ----------------------------------------------------------------

void EncodeRows(const IndexQuantizers& qz, const RowPool& pool, size_t begin, size_t end,
                QuantizedCodes* out) {
  size_t dim = pool.dim();
  if (qz.sq.valid()) {
    METIS_CHECK_EQ(qz.sq.vmin.size(), dim);
    size_t stride = SqCodeStride(dim);
    if (out->rows == 0) {
      out->sq_stride = stride;
    }
    METIS_CHECK_EQ(out->sq_stride, stride);
    for (size_t i = begin; i < end; ++i) {
      const float* r = pool.row(i);
      size_t base = out->sq.size();
      out->sq.resize(base + stride, 0);
      double row_const = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        float scale = qz.sq.scale[d];
        uint8_t code = 0;
        if (scale > 0) {
          float t = (r[d] - qz.sq.vmin[d]) / scale;
          t = std::min(255.0f, std::max(0.0f, std::nearbyint(t)));
          code = static_cast<uint8_t>(t);
        }
        out->sq[base + d] = code;
        double rec = static_cast<double>(scale) * static_cast<double>(code);
        row_const += rec * rec;
      }
      out->sq_row_const.push_back(row_const);
    }
  }
  if (qz.pq.valid()) {
    size_t m = qz.pq.m;
    size_t dsub = qz.pq.dsub;
    size_t nc = qz.pq.ncentroids;
    METIS_CHECK_EQ(m * dsub, dim);
    for (size_t i = begin; i < end; ++i) {
      const float* r = pool.row(i);
      for (size_t s = 0; s < m; ++s) {
        const float* sub = r + s * dsub;
        const float* cents = qz.pq.centroids.data() + s * nc * dsub;
        size_t best_c = 0;
        double best_d = std::numeric_limits<double>::max();
        for (size_t c = 0; c < nc; ++c) {
          double d = SeqSquaredDist(sub, cents + c * dsub, dsub);
          if (d < best_d) {
            best_d = d;
            best_c = c;
          }
        }
        out->pq.push_back(static_cast<uint8_t>(best_c));
      }
    }
  }
  out->rows += end - begin;
}

// --- Per-query contexts ------------------------------------------------------

void BuildSqQuery(const Int8Params& sq, const float* q, size_t dim, SqQuery* out) {
  size_t stride = SqCodeStride(dim);
  out->w.assign(stride, 0.0f);
  std::vector<float> r(dim);
  for (size_t d = 0; d < dim; ++d) {
    r[d] = q[d] - sq.vmin[d];
    out->w[d] = r[d] * sq.scale[d];
  }
  // Exact-kernel accumulation: tier-invariant, like every stored norm.
  out->r2 = SquaredNormBlocked(r.data(), dim);
}

void BuildPqQuery(const PqParams& pq, const float* q, size_t dim, PqQuery* out) {
  METIS_CHECK_EQ(pq.m * pq.dsub, dim);
  size_t nc = pq.ncentroids;
  out->table.resize(pq.m * nc);
  std::vector<float> diff(pq.dsub);
  for (size_t s = 0; s < pq.m; ++s) {
    const float* sub = q + s * pq.dsub;
    const float* cents = pq.centroids.data() + s * nc * pq.dsub;
    for (size_t c = 0; c < nc; ++c) {
      const float* cv = cents + c * pq.dsub;
      for (size_t d = 0; d < pq.dsub; ++d) {
        diff[d] = sub[d] - cv[d];
      }
      // Strict kernel: the table entry is bit-identical on every tier.
      out->table[s * nc + c] = static_cast<float>(SquaredNormBlocked(diff.data(), pq.dsub));
    }
  }
}

// --- Quantized top-k ---------------------------------------------------------

namespace {

inline bool QuantCandLess(const QuantCand& a, const QuantCand& b) {
  if (a.dist != b.dist) {
    return a.dist < b.dist;
  }
  return a.order < b.order;
}

}  // namespace

void BoundedQuantTopK::Offer(float dist, size_t order, ChunkId id, const RowPool* pool,
                             uint32_t row) {
  if (k_ == 0) {
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(QuantCand{dist, order, id, pool, row});
    std::push_heap(heap_.begin(), heap_.end(), QuantCandLess);
    return;
  }
  const QuantCand& worst = heap_.front();
  if (dist > worst.dist || (dist == worst.dist && order > worst.order)) {
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), QuantCandLess);
  heap_.back() = QuantCand{dist, order, id, pool, row};
  std::push_heap(heap_.begin(), heap_.end(), QuantCandLess);
}

std::vector<QuantCand> BoundedQuantTopK::DrainCands() {
  std::sort_heap(heap_.begin(), heap_.end(), QuantCandLess);
  std::vector<QuantCand> out = std::move(heap_);
  heap_.clear();
  return out;
}

// --- Scans -------------------------------------------------------------------

void ScanSqRowsInto(const QuantizedCodes& codes, size_t code_lo, const RowPool& pool,
                    size_t begin, size_t end, const SqQuery& sq, const size_t* orders,
                    size_t base, const IdFilter& exclude, BoundedQuantTopK& out) {
  U8DotKernelFn dot = ActiveU8DotKernel();
  size_t dim = pool.dim();
  size_t stride = codes.sq_stride;
  bool filtered = !exclude.empty();
  for (size_t i = begin; i < end; ++i) {
    if (filtered && exclude.contains(pool.id(i))) {
      continue;
    }
    size_t ci = code_lo + (i - begin);
    float s = dot(codes.sq.data() + ci * stride, sq.w.data(), dim);
    float d = static_cast<float>(sq.r2 - 2.0 * static_cast<double>(s) + codes.sq_row_const[ci]);
    if (d < 0.0f) {
      d = 0.0f;  // Same clamp rule as the exact decomposition.
    }
    out.Offer(d, base + orders[i], pool.id(i), &pool, static_cast<uint32_t>(i));
  }
}

void ScanPqRowsInto(const QuantizedCodes& codes, size_t code_lo, const RowPool& pool,
                    size_t begin, size_t end, const PqQuery& pq, size_t pq_m,
                    const size_t* orders, size_t base, const IdFilter& exclude,
                    BoundedQuantTopK& out) {
  size_t nc = pq.table.size() / pq_m;
  bool filtered = !exclude.empty();
  for (size_t i = begin; i < end; ++i) {
    if (filtered && exclude.contains(pool.id(i))) {
      continue;
    }
    const uint8_t* c = codes.pq.data() + (code_lo + (i - begin)) * pq_m;
    float d = 0.0f;
    for (size_t s = 0; s < pq_m; ++s) {
      d += pq.table[s * nc + c[s]];  // Sequential adds: deterministic.
    }
    out.Offer(d, base + orders[i], pool.id(i), &pool, static_cast<uint32_t>(i));
  }
}

// --- Rerank tail -------------------------------------------------------------

void RerankCandidates(std::vector<QuantCand>& cands, const float* q, double qnorm, size_t k) {
  for (QuantCand& c : cands) {
    if (c.pool != nullptr) {
      c.dist = ExactRowDistance(*c.pool, c.row, q, qnorm);
    }
  }
  std::sort(cands.begin(), cands.end(), QuantCandLess);
  if (cands.size() > k) {
    cands.resize(k);
  }
}

std::vector<SearchHit> RerankToHits(std::vector<QuantCand> cands, const float* q, double qnorm,
                                    size_t k) {
  RerankCandidates(cands, q, qnorm, k);
  std::vector<SearchHit> hits;
  hits.reserve(cands.size());
  for (const QuantCand& c : cands) {
    hits.push_back(SearchHit{c.id, c.dist});
  }
  return hits;
}

}  // namespace metis
