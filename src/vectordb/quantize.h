// Quantized index tiers: int8 scalar quantization (SQ) and product
// quantization (PQ), with an exact fp32 rerank tail.
//
// Both tiers are *mirrors*: the fp32 RowPool rows stay authoritative (and are
// what the rerank tail and the fp32 path read); the mirrors are narrower
// parallel code arrays the candidate-generation scan streams instead — 4x
// narrower for SQ (1 byte/dim), dim/m * 4x narrower for PQ (m bytes/row).
//
// Asymmetric distance contract (SQ). With per-dimension affine params
// (vmin[d], scale[d]) and codes c[d], the reconstructed row is
// vmin[d] + scale[d]*c[d], so with r[d] = q[d] - vmin[d]:
//
//     |q - x^|^2 = sum r[d]^2  -  2 * sum (r[d]*scale[d]) * c[d]
//                             +  sum (scale[d]*c[d])^2
//
// The first term and the weight vector w[d] = r[d]*scale[d] are per-query
// precomputes (O(dim), exact-kernel accumulation); the last term is a
// per-row constant computed once at encode time; the middle term is the hot
// loop — DotU8F32, the 16-chain widening kernel in kernels.h. The query side
// stays fp32 end to end: only the stored rows are quantized.
//
// Asymmetric distance contract (PQ). Per query, an ADC table holds the exact
// squared distance from the query's subvector s to every centroid c of
// subspace s; a row's approximate distance is the sum of its m table entries
// in subspace order (sequential float adds — deterministic).
//
// Rerank determinism rule. A quantized search over-fetches k * rerank_factor
// candidates under the (approx distance, order) total order — the same
// shard/thread/partition-invariant selection machinery as the exact path —
// then re-scores every candidate with the exact kernel and keeps the best k
// under (exact distance, order). For a fixed build and fixed (tier,
// rerank_factor) the result is therefore deterministic across shard counts,
// thread counts, and batching; and whenever the candidate set contains the
// true top-k, it is *identical* to the exact search result, distances and
// all. Candidates that enter the heap with an exact distance already
// (memtable rows, un-encoded suffixes, tiers without mirrors) pass through
// rerank untouched.
//
// Single-definition rule: the quantized scan loops live in quantize.cc only
// (mutable segments and static shards must score codes identically), and the
// exact re-scoring goes through ExactRowDistance, whose one definition lives
// in vectordb.cc next to ScanRowsInto for the same codegen-uniqueness reason
// (see topk.h).

#ifndef METIS_SRC_VECTORDB_QUANTIZE_H_
#define METIS_SRC_VECTORDB_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/vectordb/vectordb.h"

namespace metis {

// Row accessor for training/encoding: returns the float row at index i of a
// corpus of n rows. Cold paths only.
using RowAccessor = std::function<const float*(size_t)>;

// SQ code-row stride: dim padded up to 64 bytes (one cache line), mirroring
// RowPool's 16-float stride. This is also the int8 tier's bytes/row.
size_t SqCodeStride(size_t dim);

// --- Training ----------------------------------------------------------------

// Per-dimension min/max affine params over the corpus. Constant dimensions
// get scale 0 (every code 0, zero reconstruction error).
Int8Params TrainInt8(const RowAccessor& row, size_t n, size_t dim);

// Deterministic per-subspace k-means (farthest-point seeding + Lloyd rounds,
// the IvfL2Index::Train recipe) over a strided sample of at most
// opts.pq_train_rows rows. opts.pq_m is clamped down to the nearest divisor
// of dim. ncentroids = min(256, sample size).
PqParams TrainPq(const RowAccessor& row, size_t n, size_t dim, const QuantizationOptions& opts,
                 uint64_t seed);

// Trains whichever quantizers `opts` enables (empty quantizers otherwise).
IndexQuantizers TrainQuantizers(const RowAccessor& row, size_t n, size_t dim,
                                const QuantizationOptions& opts, uint64_t seed);

// --- Encoding ----------------------------------------------------------------

// Appends code rows for pool rows [begin, end) to `out` (SQ and/or PQ,
// whichever params are valid). Pure per-row transform: encoding rows in any
// grouping yields identical codes, so static shards, sealed segments, and
// compacted segments all land in the same code space.
void EncodeRows(const IndexQuantizers& qz, const RowPool& pool, size_t begin, size_t end,
                QuantizedCodes* out);

// --- Per-query contexts ------------------------------------------------------

// SQ query precompute: w[d] = (q[d] - vmin[d]) * scale[d] plus the exact
// sum of (q[d] - vmin[d])^2 (strict-kernel accumulation).
struct SqQuery {
  std::vector<float, AlignedAllocator<float>> w;
  double r2 = 0.0;
};
void BuildSqQuery(const Int8Params& sq, const float* q, size_t dim, SqQuery* out);

// PQ query precompute: the ADC table, table[s * ncentroids + c] = squared
// distance from query subvector s to centroid (s, c). Built once per query
// per SearchBatch.
struct PqQuery {
  std::vector<float> table;
};
void BuildPqQuery(const PqParams& pq, const float* q, size_t dim, PqQuery* out);

// --- Quantized top-k ---------------------------------------------------------

// BoundedTopK's twin over QuantCand: same (dist, order) total order, same
// bounded max-heap, candidates carry their row location for the rerank tail.
// Comparison-only — safe to inline anywhere (topk.h).
class BoundedQuantTopK {
 public:
  explicit BoundedQuantTopK(size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(float dist, size_t order, ChunkId id, const RowPool* pool, uint32_t row);
  void OfferCand(const QuantCand& c) { Offer(c.dist, c.order, c.id, c.pool, c.row); }

  // Ascending (dist, order); clears the heap.
  std::vector<QuantCand> DrainCands();
  const std::vector<QuantCand>& cands() const { return heap_; }

 private:
  size_t k_;
  std::vector<QuantCand> heap_;
};

// --- Scans (single definitions in quantize.cc) -------------------------------

// Scores pool rows [begin, end) against the SQ query context and offers
// survivors of `exclude` to `out`. Row i reads code row (i - begin) +
// code_lo of `codes`; candidate order is base + orders[i]. Requires
// codes.sq to cover that range.
void ScanSqRowsInto(const QuantizedCodes& codes, size_t code_lo, const RowPool& pool,
                    size_t begin, size_t end, const SqQuery& sq, const size_t* orders,
                    size_t base, const IdFilter& exclude, BoundedQuantTopK& out);

// Same shape for the PQ tier (ADC table lookups).
void ScanPqRowsInto(const QuantizedCodes& codes, size_t code_lo, const RowPool& pool,
                    size_t begin, size_t end, const PqQuery& pq, size_t pq_m,
                    const size_t* orders, size_t base, const IdFilter& exclude,
                    BoundedQuantTopK& out);

// Exact-distance scan into a quantized-candidate heap (memtable rows,
// un-encoded suffixes, and whole-index fp32 fallbacks). Distances come out
// bit-identical to ScanRowsInto — defined in vectordb.cc under the
// single-codegen rule. Candidates are marked pool == nullptr (distance
// already exact), so the rerank tail passes them through.
void ScanRowsExactInto(const RowPool& pool, size_t begin, size_t end, const float* q,
                       double qnorm, const size_t* orders, size_t base, const IdFilter& exclude,
                       BoundedQuantTopK& out);

// Exact fp32 distance of one pool row (the rerank tail's scorer); the one
// definition lives in vectordb.cc so it shares the scan loop's codegen.
float ExactRowDistance(const RowPool& pool, size_t row, const float* q, double qnorm);

// --- Rerank tail -------------------------------------------------------------

// Re-scores every candidate with pool != nullptr via ExactRowDistance, sorts
// by (exact distance, order), truncates to k. Candidates with pool == nullptr
// keep their (already exact) distance.
void RerankCandidates(std::vector<QuantCand>& cands, const float* q, double qnorm, size_t k);

// RerankCandidates, then strip to SearchHit form.
std::vector<SearchHit> RerankToHits(std::vector<QuantCand> cands, const float* q, double qnorm,
                                    size_t k);

// --- Tier resolution ---------------------------------------------------------

// The tier a query actually scans on: quality.precision downgraded to kFp32
// when `qz` is null or lacks the requested mirror. "Absent mirror" can only
// mean a more exact answer, never a wrong one.
inline RetrievalPrecision ResolveTier(const RetrievalQuality& quality, const IndexQuantizers* qz) {
  switch (quality.precision) {
    case RetrievalPrecision::kInt8:
      return (qz != nullptr && qz->sq.valid()) ? RetrievalPrecision::kInt8
                                               : RetrievalPrecision::kFp32;
    case RetrievalPrecision::kPq:
      return (qz != nullptr && qz->pq.valid()) ? RetrievalPrecision::kPq
                                               : RetrievalPrecision::kFp32;
    case RetrievalPrecision::kFp32:
      break;
  }
  return RetrievalPrecision::kFp32;
}

}  // namespace metis

#endif  // METIS_SRC_VECTORDB_QUANTIZE_H_
