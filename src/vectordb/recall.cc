#include "src/vectordb/recall.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace metis {

double RecallAtK(const std::vector<std::vector<SearchHit>>& got,
                 const std::vector<std::vector<SearchHit>>& truth) {
  METIS_CHECK_EQ(got.size(), truth.size());
  if (truth.empty()) {
    return 1.0;
  }
  double total = 0;
  for (size_t qi = 0; qi < truth.size(); ++qi) {
    if (truth[qi].empty()) {
      total += 1.0;
      continue;
    }
    // Sorted-id intersection: cheap at top-k sizes, no hashing.
    std::vector<ChunkId> want, have;
    want.reserve(truth[qi].size());
    have.reserve(got[qi].size());
    for (const SearchHit& h : truth[qi]) {
      want.push_back(h.id);
    }
    for (const SearchHit& h : got[qi]) {
      have.push_back(h.id);
    }
    std::sort(want.begin(), want.end());
    std::sort(have.begin(), have.end());
    size_t overlap = 0;
    size_t a = 0, b = 0;
    while (a < want.size() && b < have.size()) {
      if (want[a] == have[b]) {
        ++overlap;
        ++a;
        ++b;
      } else if (want[a] < have[b]) {
        ++a;
      } else {
        ++b;
      }
    }
    total += static_cast<double>(overlap) / static_cast<double>(want.size());
  }
  return total / static_cast<double>(truth.size());
}

RecallEval::RecallEval(const FlatL2Index& truth, std::vector<Embedding> queries, size_t k,
                       ThreadPool* pool)
    : k_(k), queries_(std::move(queries)) {
  METIS_CHECK_GT(k, 0u);
  truth_ = truth.SearchBatch(queries_, k_, pool);
}

RecallEval::RecallEval(std::vector<Embedding> queries, size_t k,
                       std::vector<std::vector<SearchHit>> truth)
    : k_(k), queries_(std::move(queries)), truth_(std::move(truth)) {
  METIS_CHECK_GT(k, 0u);
  METIS_CHECK_EQ(queries_.size(), truth_.size());
}

RecallEval RecallEval::FromExactSearch(const VectorIndex& index, std::vector<Embedding> queries,
                                       size_t k, ThreadPool* pool,
                                       const RetrievalQuality& quality) {
  METIS_CHECK_GT(k, 0u);
  std::vector<std::vector<SearchHit>> truth = index.SearchBatch(queries, k, pool, quality);
  return RecallEval(std::move(queries), k, std::move(truth));
}

double RecallEval::Evaluate(const VectorIndex& index, ThreadPool* pool,
                            const RetrievalQuality& quality) const {
  return RecallAtK(index.SearchBatch(queries_, k_, pool, quality), truth_);
}

}  // namespace metis
