// Small string helpers shared across modules.

#ifndef METIS_SRC_COMMON_STRINGS_H_
#define METIS_SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace metis {

// Splits on any run of the given delimiter characters; drops empty pieces.
std::vector<std::string> SplitWords(std::string_view text, std::string_view delims = " \t\n\r");

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy (sufficient for the synthetic corpus vocabulary).
std::string ToLowerAscii(std::string_view s);

// Strips ASCII punctuation from both ends of a token.
std::string_view StripPunct(std::string_view token);

// True if `text` contains `needle` as a substring (case-sensitive).
bool Contains(std::string_view text, std::string_view needle);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace metis

#endif  // METIS_SRC_COMMON_STRINGS_H_
