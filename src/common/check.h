// Lightweight assertion macros used across the METIS libraries.
//
// These are always-on invariant checks (not compiled out in release builds):
// the simulation is deterministic and cheap, and a silently-corrupt schedule
// is much worse than an aborted run.

#ifndef METIS_SRC_COMMON_CHECK_H_
#define METIS_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace metis {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace metis

#define METIS_CHECK(expr)                                \
  do {                                                   \
    if (!(expr)) {                                       \
      ::metis::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                    \
  } while (0)

#define METIS_CHECK_GE(a, b) METIS_CHECK((a) >= (b))
#define METIS_CHECK_GT(a, b) METIS_CHECK((a) > (b))
#define METIS_CHECK_LE(a, b) METIS_CHECK((a) <= (b))
#define METIS_CHECK_LT(a, b) METIS_CHECK((a) < (b))
#define METIS_CHECK_EQ(a, b) METIS_CHECK((a) == (b))
#define METIS_CHECK_NE(a, b) METIS_CHECK((a) != (b))

#endif  // METIS_SRC_COMMON_CHECK_H_
