// Console table printer used by the benchmark harness to emit the rows and
// series that each paper table/figure reports.

#ifndef METIS_SRC_COMMON_TABLE_H_
#define METIS_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace metis {

class Table {
 public:
  explicit Table(std::string title);

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders with aligned columns and a title banner.
  std::string Render() const;
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metis

#endif  // METIS_SRC_COMMON_TABLE_H_
