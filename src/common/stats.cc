#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace metis {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::Add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::AddAll(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) {
    return 0;
  }
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  double s = 0;
  for (double v : values_) {
    s += v;
  }
  return s;
}

double Samples::min() const {
  METIS_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  METIS_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

void Samples::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::Quantile(double q) const {
  METIS_CHECK(!values_.empty());
  METIS_CHECK_GE(q, 0.0);
  METIS_CHECK_LE(q, 1.0);
  EnsureSorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  double pos = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets) : lo_(lo), hi_(hi) {
  METIS_CHECK_LT(lo, hi);
  METIS_CHECK_GT(buckets, 0u);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  auto bucket = static_cast<int64_t>(t * static_cast<double>(counts_.size()));
  bucket = std::clamp<int64_t>(bucket, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bucket)];
  raw_.push_back(x);
  ++total_;
}

double Histogram::BucketLow(size_t bucket) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) / static_cast<double>(counts_.size());
}

double Histogram::BucketHigh(size_t bucket) const { return BucketLow(bucket + 1); }

double Histogram::FractionAtOrAbove(double threshold) const {
  if (total_ == 0) {
    return 0;
  }
  size_t n = 0;
  for (double v : raw_) {
    if (v >= threshold) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(total_);
}

}  // namespace metis
