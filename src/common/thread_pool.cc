#include "src/common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace metis {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // No workers: run inline, matching ParallelFor's convention.
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Exit only once stop_ is set, the queue is drained, AND no task is still
    // running — a running task may Submit follow-up work, which must execute
    // before the destructor joins (see Submit's contract). The last finisher
    // notifies, so sleeping workers re-check the exit condition.
    cv_.wait(lock, [this]() { return !tasks_.empty() || (stop_ && active_ == 0); });
    if (tasks_.empty()) {
      return;
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop();
    ++active_;
    lock.unlock();
    task();
    task = nullptr;  // Destroy captures outside the lock.
    lock.lock();
    if (--active_ == 0 && stop_ && tasks_.empty()) {
      cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  size_t shards = std::min(n, threads_.size());
  if (shards <= 1) {
    fn(0, n);
    return;
  }

  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = shards;

  size_t chunk = n / shards;
  size_t rem = n % shards;
  size_t begin = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < shards; ++s) {
      size_t end = begin + chunk + (s < rem ? 1 : 0);
      tasks_.push([&fn, begin, end, sync]() {
        fn(begin, end);
        std::lock_guard<std::mutex> sync_lock(sync->mu);
        if (--sync->remaining == 0) {
          sync->cv.notify_all();
        }
      });
      begin = end;
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&sync]() { return sync->remaining == 0; });
}

}  // namespace metis
