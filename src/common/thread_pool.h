// Fixed-size worker pool for data-parallel sweeps.
//
// Built for the retrieval substrate: batched vector search shards its queries
// across workers, and IVF training shards its row scans. The pool is generic,
// though — any caller with an index range to split can use ParallelFor.
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous shards
// whose boundaries are a pure function of (n, shard count). Callers that
// write only to disjoint per-index slots therefore produce identical results
// for every pool size, which is what lets the parity tests assert bit-equal
// search results across 1..8 threads.

#ifndef METIS_SRC_COMMON_THREAD_POOL_H_
#define METIS_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace metis {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 means "no workers", in which case every
  // ParallelFor runs inline on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Runs fn(begin, end) over a partition of [0, n) into at most num_threads()
  // contiguous shards and blocks until all shards complete. With zero or one
  // worker (or n <= 1) the whole range runs inline on the calling thread.
  // fn must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  // Fire-and-forget: enqueues `task` for a worker; returns immediately. With
  // zero workers the task runs inline. Tasks may Submit follow-up tasks —
  // including from inside a running task during destruction: the destructor
  // drains the queue AND waits out running tasks (which may still submit)
  // before joining, so every task submitted before or from within a task is
  // guaranteed to execute. Submitting from outside the pool's tasks after
  // the destructor has begun is a data race (as with any object). task must
  // not throw.
  void Submit(std::function<void()> task);

  // A reasonable worker count for this machine.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  size_t active_ = 0;  // Tasks currently executing (shutdown gate: a running
                       // task may still Submit follow-up work).
  bool stop_ = false;
};

}  // namespace metis

#endif  // METIS_SRC_COMMON_THREAD_POOL_H_
