#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace metis {

std::vector<std::string> SplitWords(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    if (end > start) {
      out.emplace_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    out.push_back(c);
  }
  return out;
}

std::string_view StripPunct(std::string_view token) {
  auto is_punct = [](char c) {
    return c == '.' || c == ',' || c == '?' || c == '!' || c == ';' || c == ':' || c == '"' ||
           c == '\'' || c == '(' || c == ')' || c == '[' || c == ']';
  };
  while (!token.empty() && is_punct(token.front())) {
    token.remove_prefix(1);
  }
  while (!token.empty() && is_punct(token.back())) {
    token.remove_suffix(1);
  }
  return token;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace metis
