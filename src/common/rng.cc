#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace metis {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t HashString64(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  uint64_t st = h;
  return SplitMix64(st);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t st = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(st);
  }
}

Rng Rng::Fork(std::string_view tag) const {
  uint64_t mixed = seed_ ^ Rotl(HashString64(tag), 17);
  uint64_t st = mixed;
  return Rng(SplitMix64(st));
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  METIS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % span);
  uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller. Draws two uniforms per call; simplicity beats caching here.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double rate) {
  METIS_CHECK_GT(rate, 0);
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  METIS_CHECK_GE(mean, 0);
  if (mean == 0) {
    return 0;
  }
  if (mean < 30) {
    // Knuth's method.
    double l = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means.
  double v = Normal(mean, std::sqrt(mean));
  return v < 0 ? 0 : static_cast<int>(v + 0.5);
}

int Rng::Zipf(int n, double s) {
  METIS_CHECK_GT(n, 0);
  // Inverse-CDF over the (small) support; n is at most a few thousand here.
  double total = 0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  double target = NextDouble() * total;
  double acc = 0;
  for (int k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    if (acc >= target) {
      return k;
    }
  }
  return n - 1;
}

size_t Rng::Index(size_t size) {
  METIS_CHECK_GT(size, 0u);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(size) - 1));
}

}  // namespace metis
