#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/strings.h"

namespace metis {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void Table::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string Table::Render() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) {
    cols = std::max(cols, r.size());
  }
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    widen(r);
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < cols; ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      line += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (size_t i = 0; i < cols; ++i) {
    sep += std::string(width[i] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out;
  out += "== " + title_ + " ==\n";
  out += sep;
  if (!header_.empty()) {
    out += render_row(header_);
    out += sep;
  }
  for (const auto& r : rows_) {
    out += render_row(r);
  }
  out += sep;
  return out;
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace metis
