// Aggregation helpers for experiment metrics (delay percentiles, F1 means).

#ifndef METIS_SRC_COMMON_STATS_H_
#define METIS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace metis {

// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

// Stores all samples; supports exact quantiles. Sample counts in this
// repository are small (hundreds to tens of thousands), so exact is fine.
class Samples {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  // q in [0, 1]; linear interpolation between closest ranks.
  double Quantile(double q) const;
  double median() const { return Quantile(0.5); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the
// first/last bucket. Used by the confidence-threshold experiment (Fig. 9).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  size_t count(size_t bucket) const { return counts_[bucket]; }
  size_t total() const { return total_; }
  double BucketLow(size_t bucket) const;
  double BucketHigh(size_t bucket) const;
  // Fraction of samples at or above the given threshold value.
  double FractionAtOrAbove(double threshold) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  std::vector<double> raw_;
  size_t total_ = 0;
};

}  // namespace metis

#endif  // METIS_SRC_COMMON_STATS_H_
