// Deterministic random number generation for the METIS simulation.
//
// All randomness in the repository flows from seeded Rng instances. Components
// derive their own streams via Rng::Fork(tag) so that adding randomness in one
// module never perturbs another module's stream (a requirement for the
// reproducible experiment harness).

#ifndef METIS_SRC_COMMON_RNG_H_
#define METIS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace metis {

// SplitMix64 step; used for seeding and hashing.
uint64_t SplitMix64(uint64_t& state);

// Stable 64-bit hash of a string (FNV-1a finished with SplitMix64).
uint64_t HashString64(std::string_view s);

// xoshiro256** PRNG. Small, fast, and good enough statistical quality for
// workload synthesis and timing jitter; crucially, fully deterministic and
// serializable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Derives an independent child stream. The child is a pure function of
  // (parent seed, tag), not of how many numbers the parent has produced.
  Rng Fork(std::string_view tag) const;

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate). Used for Poisson arrivals.
  double Exponential(double rate);

  // Poisson-distributed count with the given mean (Knuth for small means).
  int Poisson(double mean);

  // Zipf-like rank sampler over [0, n): P(k) proportional to 1/(k+1)^s.
  int Zipf(int n, double s);

  // Picks a uniformly random element index from a non-empty container size.
  size_t Index(size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) {
      return;
    }
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap(v[i], v[j]);
    }
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_ = 0;
  uint64_t s_[4] = {0, 0, 0, 0};
};

}  // namespace metis

#endif  // METIS_SRC_COMMON_RNG_H_
