// Multi-tenant overload control (ROADMAP: "multi-tenant overload control and
// SLO-aware scheduling").
//
// The serving stack so far assumes offered load below capacity: every arrival
// is admitted, profiled, and executed at whatever configuration the joint
// scheduler picks. Past saturation that policy collapses — the engine queue
// grows without bound, every class's delay blows through its deadline, and
// goodput (completions *within* deadline) goes to zero even though throughput
// stays positive. RAGGED's stability analysis frames the quality-vs-load
// frontier; this controller walks it deliberately instead of falling off it.
//
// The OverloadController watches the same signals the depth policy already
// uses — engine backlog (queue depth + projected KV deficit from the
// LlmEngine the JointScheduler reads), queue age, and profiler confidence —
// folds them into one dimensionless pressure score, and maps the score onto a
// three-rung degradation ladder:
//
//   rung 1, kShedDepth:      clamp every query's retrieval-depth budget
//                            (RetrievalDepthPolicy::ClampToBudget) — including
//                            the §5 low-confidence full-budget fallback, which
//                            must not over-retrieve while the engine drowns;
//   rung 2, kCheapSynthesis: drop the scheduler's configuration to a cheap
//                            synthesis config (map_rerank, few chunks — small
//                            per-call KV footprints the engine can admit
//                            piecewise);
//   rung 3, kShedPrecision:  drop the retrieval scan tier to a quantized
//                            mirror (int8 / PQ with exact rerank, quantize.h)
//                            — cheaper candidate generation before the ladder
//                            starts refusing queries. Only ever moves a query
//                            to a LOWER-cost tier, and is inert unless the
//                            index built the mirror (and the default shed
//                            tier is fp32, i.e. the rung is opt-in);
//   rung 4, kReject:         stop admitting the lowest-priority classes, with
//                            a deterministic exponential backoff that still
//                            lets a probing trickle through so recovery is
//                            observed without re-opening the floodgates.
//
// Classes with priority >= protect_priority are never rejected: the ladder
// trades best-effort goodput away to keep the interactive class inside its
// deadline. Everything is deterministic (pure function of the signal
// sequence), default-off, and bit-for-bit invisible when disabled.

#ifndef METIS_SRC_CORE_OVERLOAD_H_
#define METIS_SRC_CORE_OVERLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/llm/engine.h"
#include "src/synthesis/config.h"
#include "src/vectordb/vectordb.h"

namespace metis {

// One tenant SLO class. RunSpec/MixedRunSpec carry a vector of these; each
// query arrives under one class (RagQuery::tenant indexes it).
struct TenantClass {
  std::string name = "default";
  // Higher = more important. Classes with priority >= protect_priority are
  // never rejected by the ladder.
  int priority = 0;
  // End-to-end deadline (s) for goodput accounting: a completion counts
  // toward goodput only if e2e_delay <= deadline_s. <= 0 = no deadline
  // (every completion is good).
  double deadline_s = 0;
  // Relative share of offered arrivals routed to this class (normalized over
  // the spec's classes by the runner's tenant stream).
  double rate_share = 1.0;
};

// Ladder rungs, ordered by severity. Comparisons use the underlying value.
enum class OverloadLevel {
  kNone = 0,
  kShedDepth = 1,
  kCheapSynthesis = 2,
  kShedPrecision = 3,
  kReject = 4,
};

const char* OverloadLevelName(OverloadLevel level);

struct OverloadOptions {
  // Default-off: with `enabled` false the controller is never constructed and
  // every run is bit-for-bit identical to the ladderless stack
  // (overload_test pins this parity).
  bool enabled = false;

  // Pressure score (dimensionless):
  //   pressure = queue_depth / queue_depth_ref
  //            + oldest_waiting_age / queue_age_ref_s
  //            + kv_deficit_weight * max(0, -projected_free_kv / total_kv)
  // projected_free_kv is prefix-aware (LlmEngine::projected_free_kv_bytes):
  // queued siblings of one prefix group charge the shared prefix once — and
  // not at all when it is already resident, including retained (refs==0)
  // prefixes the allocator can reclaim. Under cross-query KV reuse the
  // deficit term therefore reflects the memory the queue will ACTUALLY need,
  // so shared-prefix bursts no longer read as phantom pressure.
  // Each term is ~1.0 when that signal alone indicates saturation. The refs
  // are sized to the engine's per-chunk fanout: one map_reduce query alone
  // parks up to ~30 requests in the waiting queue, so a healthy stack
  // transiently peaks near depth ~20 at age well under 0.2 s, while a
  // saturated one runs at hundreds of waiting requests aging past a second.
  double queue_depth_ref = 32.0;
  double queue_age_ref_s = 1.0;
  double kv_deficit_weight = 2.0;
  // Optional fourth pressure term: the co-scheduler's own per-decision service
  // estimate (SchedulerDecision::est_service_s), EWMA-smoothed, normalized by
  // this reference. The estimate already folds in prefix-hit discounts and
  // batch effects the raw queue signals cannot see, so rising predicted
  // service times flag saturation EARLIER than queue depth does. 0 (default)
  // disables the term — Pressure() is then bit-identical to the three-term
  // score (overload_test pins this).
  double service_ref_s = 0;

  // Rung thresholds on the pressure score (ascending).
  double shed_depth_at = 0.75;
  double cheap_synthesis_at = 1.5;
  double shed_precision_at = 2.0;
  double reject_at = 2.5;

  // Rung 1: probe-budget cap while at kShedDepth or higher (0 disables the
  // clamp; only bites on the approximate IVF backend, like every depth knob).
  size_t shed_probe_budget = 2;
  // Rung 2: the configuration the scheduler's choice is dropped to while at
  // kCheapSynthesis or higher. num_chunks is a cap — degradation never
  // *increases* work over the scheduler's own choice.
  RagConfig cheap_config{SynthesisMethod::kMapRerank, 3, 0};
  // Rung 3: the scan tier queries are dropped to while at kShedPrecision or
  // higher, when it is CHEAPER than the scheduler's choice
  // (RetrievalPrecisionCost — shedding never upgrades a query). The default
  // kFp32 makes the rung a no-op, preserving the three-rung ladder's
  // behaviour bit-for-bit; deployments with quantized mirrors opt in with
  // kInt8 or kPq. shed_rerank_factor overrides the over-fetch multiple for
  // shed queries (0 = the tier default).
  RetrievalPrecision shed_precision = RetrievalPrecision::kFp32;
  size_t shed_rerank_factor = 0;
  // Rung 4: classes with priority >= protect_priority are never rejected.
  int protect_priority = 1;
  // Deterministic admission backoff while at kReject: an unprotected class
  // admits one query, then rejects `stride - 1`, with the stride doubling
  // from backoff_initial up to backoff_max on each admitted probe. The
  // stride resets when the controller leaves the reject rung.
  uint64_t backoff_initial = 2;
  uint64_t backoff_max = 32;
};

struct OverloadStats {
  uint64_t assessments = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t depth_shed = 0;           // Decisions taken at rung >= kShedDepth.
  uint64_t synthesis_degraded = 0;   // Decisions taken at rung >= kCheapSynthesis.
  uint64_t precision_shed = 0;       // Decisions taken at rung >= kShedPrecision.
  uint64_t hybrid_shed = 0;          // Fused retrievals collapsed to one backend.
  int max_level = 0;                 // Highest rung ever assessed.
  double peak_pressure = 0;
};

class OverloadController {
 public:
  // `engine` (not owned) supplies the backlog signals. `classes` may be empty
  // — every query then falls into one implicit default class (priority 0,
  // protected only if protect_priority <= 0).
  OverloadController(const LlmEngine* engine, std::vector<TenantClass> classes,
                     OverloadOptions options);

  // The class a tenant index resolves to (out-of-range indexes clamp to the
  // implicit default class).
  const TenantClass& tenant(int index) const;
  size_t num_classes() const { return classes_.size(); }

  // Folds the engine's current backlog signals into the pressure score.
  double Pressure() const;

  // Pressure -> ladder rung; records stats and (on leaving kReject) resets
  // the admission backoff. Called once per admission decision point.
  OverloadLevel Assess();

  // Admission decision for a query of class `tenant_index` under `level`.
  // Deterministic: protected classes and rungs below kReject always admit;
  // unprotected classes at kReject follow the exponential-backoff trickle.
  bool Admit(int tenant_index, OverloadLevel level);

  // Accounting hooks for the systems applying rungs 1/2 (the controller
  // cannot see whether a decision point actually executed its clamp).
  void NoteDepthShed() { ++stats_.depth_shed; }
  void NoteSynthesisDegraded() { ++stats_.synthesis_degraded; }
  void NotePrecisionShed() { ++stats_.precision_shed; }
  void NoteHybridShed() { ++stats_.hybrid_shed; }

  // Profiler-confidence signal (EWMA over recent profiles): recorded so the
  // ladder's depth rung can be audited against the §5 fallback pressure —
  // low-confidence stretches are exactly when the ladderless stack would
  // over-retrieve hardest.
  void ObserveConfidence(double confidence);
  double mean_confidence() const { return confidence_ewma_; }

  // Co-scheduler service-estimate signal (S1): the scheduler's predicted
  // service seconds for each committed decision, EWMA-smoothed into the
  // Pressure() service term when options.service_ref_s > 0 (inert otherwise).
  void ObserveServiceEstimate(double est_service_s);
  double mean_service_estimate() const { return service_ewma_; }

  const OverloadOptions& options() const { return options_; }
  const OverloadStats& stats() const { return stats_; }

 private:
  const LlmEngine* engine_;
  std::vector<TenantClass> classes_;
  TenantClass default_class_;
  OverloadOptions options_;
  OverloadStats stats_;
  double confidence_ewma_ = 1.0;
  double service_ewma_ = 0.0;
  bool in_reject_ = false;

  struct Backoff {
    uint64_t stride = 0;     // 0 = fresh (next arrival admits and arms it).
    uint64_t countdown = 0;  // Rejections left before the next admitted probe.
  };
  std::vector<Backoff> backoff_;  // Aligned with classes_ (or size 1).
};

}  // namespace metis

#endif  // METIS_SRC_CORE_OVERLOAD_H_
