// Retrieval coalescing for the serving stack.
//
// Every synthesis pipeline starts with a vector-index lookup that is modeled
// at a fixed latency (SynthesisExecutor::kRetrievalSeconds). When several
// queued queries reach that stage at the same simulated instant — burst
// arrivals, golden-config feedback fan-out — each used to run its own full
// index scan. The batcher collects all requests that fall due at the same
// tick and answers them with ONE VectorDatabase::RetrieveBatch sweep, so the
// index streams through memory once for the whole group.
//
// Timing-neutral by construction: every request keeps its OWN simulator
// event, scheduled at Submit time for exactly `delay_seconds` later — the
// identical (time, sequence) slot the seed's per-query ScheduleAfter would
// have used, so even events interleaved at the same instant by other
// components fire in the same order. Only the index sweep is shared: the
// first delivery of a same-tick group runs one RetrieveBatch for the whole
// group and the remaining deliveries drain the precomputed results.
//
// On a live-mutable serving index the shared sweep also fixes the snapshot:
// SearchBatch pins ONE epoch for the whole call, so a coalesced group can
// never straddle a concurrent insert/delete/compaction — every answer in
// the group reflects the same live set (src/vectordb/mutable_index.h).

#ifndef METIS_SRC_CORE_RETRIEVAL_BATCHER_H_
#define METIS_SRC_CORE_RETRIEVAL_BATCHER_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/vectordb/vectordb.h"

namespace metis {

class RetrievalBatcher {
 public:
  using Callback = std::function<void(std::vector<ChunkId>)>;

  // `quality` is the default for requests submitted without their own (the
  // serving stack's per-run retrieval-depth knob, from
  // JointSchedulerOptions); the default-default leaves the database's own
  // index policy in charge. Probe selection depends only on the query (never
  // on k), so mixed-k groups stay prefix-consistent under any quality
  // setting.
  RetrievalBatcher(Simulator* sim, const VectorDatabase* db, double delay_seconds,
                   RetrievalQuality quality = {});

  // Requests the top-k chunks for `query_text`; `cb` runs in simulation
  // context exactly delay_seconds from now. The first form retrieves at the
  // batcher's default quality; the second carries a per-QUERY quality (the
  // profiler-driven depth), so one coalesced sweep can mix probe budgets —
  // results stay bit-identical to uncoalesced per-query scans either way
  // (the index resolves a probe plan per query; see
  // VectorIndex::SearchBatch's heterogeneous overload).
  void Submit(std::string query_text, size_t k, Callback cb);
  void Submit(std::string query_text, size_t k, const RetrievalQuality& quality, Callback cb);

  // --- Introspection (tests, benches) ---
  size_t requests() const { return requests_; }
  size_t batches_issued() const { return batches_; }
  size_t max_batch_size() const { return max_batch_; }

 private:
  void Deliver();

  Simulator* sim_;
  const VectorDatabase* db_;
  double delay_;
  RetrievalQuality quality_;

  struct Pending {
    std::string text;
    size_t k;
    RetrievalQuality quality;
    Callback cb;
    SimTime due;
  };
  // Ordered by due time (Submit is FIFO and due offsets are constant), and
  // aligned 1:1 with the per-request Deliver events in flight.
  std::deque<Pending> pending_;
  // Results precomputed by the first delivery of the current same-tick group,
  // drained front-to-front with pending_.
  std::deque<std::vector<ChunkId>> ready_;

  size_t requests_ = 0;
  size_t batches_ = 0;
  size_t max_batch_ = 0;
};

}  // namespace metis

#endif  // METIS_SRC_CORE_RETRIEVAL_BATCHER_H_
