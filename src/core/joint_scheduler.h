// Joint configuration-scheduling (paper §4.3).
//
// Given the pruned configuration space for a query and the engine's *current*
// free KV memory, picks the configuration to execute:
//
//   - A configuration "fits" if its peak concurrent KV footprint (the whole
//     prompt for stuff; one mapper unit for map_rerank/map_reduce, whose calls
//     the engine can admit piecewise — Fig. 8) fits in free memory after the
//     2% OOM buffer.
//   - Among fitting configurations, the one with the highest peak footprint
//     wins: inside the pruned (already-high-quality) space, more memory means
//     more chunks / longer intermediates, i.e. slightly higher quality.
//   - If nothing in the space fits, fall back to a cheap configuration just
//     outside the range rather than queueing: map_rerank with as many chunks
//     as the space allows when no joint reasoning is needed, else stuff with
//     as many chunks as fit right now.

#ifndef METIS_SRC_CORE_JOINT_SCHEDULER_H_
#define METIS_SRC_CORE_JOINT_SCHEDULER_H_

#include "src/core/hybrid_router.h"
#include "src/core/mapping.h"
#include "src/core/retrieval_depth.h"
#include "src/llm/engine.h"
#include "src/synthesis/synthesis.h"

namespace metis {

struct SchedulerDecision {
  RagConfig config;
  // Retrieval depth chosen for THIS query (profiler-driven when
  // JointSchedulerOptions::per_query_depth, else the per-run knob) — the
  // retrieval-side half of the configuration, threaded to
  // SynthesisExecutor::Execute alongside `config`.
  RetrievalQuality retrieval;
  bool used_fallback = false;
  double peak_bytes = 0;     // Estimated peak KV footprint of the choice.
  double free_bytes = 0;     // Free KV at decision time (for tracing).
  // Co-scheduling trace (e2e_budget_s > 0): predicted service seconds of the
  // choice under the observed prefix-hit rate; whether the budget forced
  // synthesis tokens to be trimmed; and whether, with synthesis already at
  // the space floor, retrieval depth was clamped to its minimum budget too.
  double est_service_s = 0;
  bool budget_trimmed = false;
  bool depth_traded = false;
};

// Design-choice switches for the scheduler, used by the design-ablation bench
// (bench_ablation_design) to quantify each refinement this reproduction makes
// on top of Algorithm 1's letter. Defaults are the full system.
struct JointSchedulerOptions {
  // Exclude stuff configurations whose prompt exceeds the LITM-safe budget.
  bool litm_cap = true;
  // Prefer map_reduce for high-complexity queries when it fits (Fig. 4a).
  bool prefer_map_reduce_for_complex = true;
  // Fall back to map_reduce when stuff-as-fits cannot cover the information
  // need (the Fig. 8 scenario); false = always stuff-as-fits, the literal
  // reading of §4.3.
  bool fig8_fallback = true;
  // Measure headroom as projected free memory (free minus waiting-queue
  // claims); false = raw free bytes.
  bool use_projected_free = true;
  // Coalesce same-tick retrievals from queued queries into one batched index
  // sweep (RetrievalBatcher -> VectorIndex::SearchBatch); false = one scan
  // per query, the seed behaviour. Timing- and result-neutral either way —
  // the switch exists so the design ablation can attribute the
  // retrieval-substrate work separately.
  bool coalesce_retrieval = true;
  // Retrieval-depth quality knob (METIS treats nprobe like its other knobs:
  // spend retrieval work where quality needs it). Only bites when the
  // dataset's VectorDatabase runs the approximate IVF backend — the paper's
  // default flat (exact) backend ignores it, so these defaults are
  // behaviour-neutral for the stock experiments.
  //   adaptive_nprobe: per-query adaptive probing (distance-ratio early
  //     termination, vectordb.h) instead of a fixed probe count.
  //   nprobe_budget: probe count (fixed mode) or per-query budget (adaptive
  //     mode); 0 = the index's configured default.
  bool adaptive_nprobe = true;
  size_t nprobe_budget = 0;
  // Retrieval scan tier for the per-run knob (and the default tier the
  // per-query depth policy inherits): fp32 exact, or a quantized mirror with
  // exact rerank (vectordb.h RetrievalPrecision). kFp32 (default) is
  // bit-identical to a stack with no quantization support; quantized tiers
  // only bite when the dataset's index built the mirrors. rerank_factor is
  // the quantized over-fetch multiple (0 = tier default).
  RetrievalPrecision precision = RetrievalPrecision::kFp32;
  size_t rerank_factor = 0;
  // Per-QUERY retrieval depth (the METIS §4 treatment of the knob above):
  // when true, profiler-driven systems derive each query's RetrievalQuality
  // from its QueryProfile via RetrievalDepthPolicy (`depth` holds the budget
  // curve) instead of applying adaptive_nprobe/nprobe_budget run-wide. False
  // restores the PR 3 per-run knob bit-for-bit (parity-tested). Like the
  // knobs above, only bites on the approximate IVF backend, and only for
  // systems that profile (fixed-config baselines have no QueryProfile).
  bool per_query_depth = true;
  RetrievalDepthPolicyOptions depth;
  // --- Joint co-scheduling with cross-query KV reuse ---
  // cross_query_prefix: assemble synthesis contexts in canonical chunk order
  // and key prefix groups by retrieved-chunk content (SynthesisExecutor), and
  // run the engine with prefix retention, so concurrent queries that
  // retrieved the same chunks alias resident KV blocks and skip the shared
  // prefill. The scheduler then discounts its fit checks and service
  // estimates by the observed hit rate. Off (default) = the per-query prefix
  // layout and undiscounted planning, bit-identical to the prior stack.
  bool cross_query_prefix = false;
  // Grace window (s) the engine holds refs==0 prefixes reclaimably resident
  // (EngineConfig::prefix_retention_s); wired by the runner only when
  // cross_query_prefix is on.
  double prefix_retention_s = 0.5;
  // Per-query end-to-end delay budget (s). When > 0, Choose() receives the
  // budget remaining after queueing/profiling and splits it between the two
  // halves of the configuration: first trims synthesis (intermediate_tokens,
  // then num_chunks, floored at the space minimum — the information need),
  // and only when synthesis is at its floor clamps retrieval depth to the
  // policy's min_budget. Under KV pressure this trades work for latency
  // instead of shedding the query. 0 (default) = no budget, bit-identical
  // scheduling.
  double e2e_budget_s = 0;
  // --- Hybrid retrieval routing (src/core/hybrid_router.h) ---
  // When hybrid.enabled, RetrievalQualityFor runs the profile's task type
  // through the router AFTER the depth policy, so per-query depth and the
  // backend mix compose. Off (default): bit-identical qualities. Only bites
  // for profiler-driven systems (fixed-config baselines have no profile) and
  // on databases that built a lexical index.
  HybridRouterOptions hybrid;
};

// The RetrievalQuality handed to SynthesisExecutor / RetrievalBatcher for a
// stack built under `options`.
RetrievalQuality RetrievalQualityFromOptions(const JointSchedulerOptions& options);

class JointScheduler {
 public:
  // `output_token_estimate`: expected answer length used in footprint math.
  JointScheduler(const LlmEngine* engine, const SynthesisExecutor* executor,
                 int intermediate_stride = 10, JointSchedulerOptions options = {});

  // Peak concurrent KV bytes (incl. admission buffer) a config needs.
  double PeakBytes(const RagConfig& config, int query_tokens, int output_estimate) const;
  // Total KV bytes across all of a config's calls (tie-break desirability).
  double TotalBytes(const RagConfig& config, int query_tokens, int output_estimate) const;

  // The best-fit selection described above. The decision also carries the
  // query's retrieval depth (see RetrievalQualityFor). `remaining_budget_s`
  // is the e2e delay budget left for this query (arrival + e2e_budget_s −
  // now); < 0 (default) or options().e2e_budget_s == 0 disables the budget
  // split and reproduces the unbudgeted selection exactly.
  SchedulerDecision Choose(const PrunedConfigSpace& space, const QueryProfile& profile,
                           int query_tokens, int output_estimate,
                           double remaining_budget_s = -1) const;

  // Fraction of prefill tokens the engine has skipped via resident shared
  // prefixes so far (saved / (charged + saved)); the scheduler's predictor
  // for how much of the NEXT shared prefix will already be resident. 0 until
  // evidence accumulates, and always 0 with cross_query_prefix off.
  double PredictedPrefixHitFrac() const;

  // Predicted wall-clock seconds to serve `config` on the engine right now:
  // prefill at the model's linear rate — discounted by PredictedPrefixHitFrac
  // on the shared-prefix portion — plus quadratic attention terms and a
  // decode estimate that amortizes step overhead over the running batch.
  // A planning signal (monotone in the knobs), not an accounting identity.
  double EstimatedServiceSeconds(const RagConfig& config, int query_tokens,
                                 int output_estimate) const;

  // Retrieval depth for one query: the RetrievalDepthPolicy mapping of
  // `profile` when options().per_query_depth, else the per-run
  // RetrievalQualityFromOptions knob. Callers that bypass Choose (the
  // median-of-space ablation pick) use this directly.
  RetrievalQuality RetrievalQualityFor(const QueryProfile& profile) const;

  const RetrievalDepthPolicy& depth_policy() const { return depth_policy_; }

  // Resource-oblivious reference policies (ablation / baselines):
  // median of the pruned space (the "straw-man" of §4.3).
  RagConfig MedianOfSpace(const PrunedConfigSpace& space) const;
  // Quality-maximizing corner of the space (the AdaptiveRAG* behaviour:
  // most expensive method, most chunks, longest intermediates).
  RagConfig QualityMaxOfSpace(const PrunedConfigSpace& space, int query_tokens = 32) const;

  // Largest stuff num_chunks (>= min_chunks) whose prompt stays inside the
  // lost-in-the-middle-safe context budget. Both the scheduler and the
  // quality-max policy refuse stuff prompts beyond this: Fig. 4b shows
  // quality *drops* there, so such configs are not "promising" (§4.2).
  int MaxLitmSafeStuffChunks(const PrunedConfigSpace& space, int query_tokens) const;

  // Context budget (tokens) past which stuff prompts are considered
  // quality-degrading. Default tracks the behaviour model's LITM onset.
  static constexpr int kStuffContextBudgetTokens = 5120;

  const LlmEngine& engine() const { return *engine_; }
  const JointSchedulerOptions& options() const { return options_; }

 private:
  // Tokens of `config`'s context that precede the query-specific tail under
  // the canonical cross-query layout (0 with the feature off).
  int SharedPrefixTokens(const RagConfig& config, int query_tokens) const;
  // Trims `decision` to fit `remaining_budget_s` per the e2e_budget_s doc.
  void ApplyBudget(SchedulerDecision* decision, const PrunedConfigSpace& space,
                   int query_tokens, int output_estimate, double remaining_budget_s) const;

  const LlmEngine* engine_;
  const SynthesisExecutor* executor_;
  int intermediate_stride_;
  JointSchedulerOptions options_;
  RetrievalDepthPolicy depth_policy_;
};

}  // namespace metis

#endif  // METIS_SRC_CORE_JOINT_SCHEDULER_H_
