#include "src/core/joint_scheduler.h"

#include <algorithm>

#include "src/common/check.h"

namespace metis {

RetrievalQuality RetrievalQualityFromOptions(const JointSchedulerOptions& options) {
  RetrievalQuality quality;
  quality.mode = options.adaptive_nprobe ? RetrievalQuality::ProbeMode::kAdaptive
                                         : RetrievalQuality::ProbeMode::kFixed;
  quality.nprobe = options.nprobe_budget;
  quality.precision = options.precision;
  quality.rerank_factor = options.rerank_factor;
  return quality;
}

JointScheduler::JointScheduler(const LlmEngine* engine, const SynthesisExecutor* executor,
                               int intermediate_stride, JointSchedulerOptions options)
    : engine_(engine),
      executor_(executor),
      intermediate_stride_(intermediate_stride),
      options_(options),
      depth_policy_(options.depth) {
  METIS_CHECK(engine != nullptr);
  METIS_CHECK(executor != nullptr);
  METIS_CHECK_GT(intermediate_stride, 0);
}

RetrievalQuality JointScheduler::RetrievalQualityFor(const QueryProfile& profile) const {
  RetrievalQuality quality = options_.per_query_depth ? depth_policy_.QualityFor(profile)
                                                      : RetrievalQualityFromOptions(options_);
  if (options_.hybrid.enabled) {
    // The backend mix composes on top of the depth/precision decision: the
    // dense leg keeps its probe budget and scan tier.
    quality = HybridRouter(options_.hybrid).Route(profile, quality);
  }
  return quality;
}

double JointScheduler::PeakBytes(const RagConfig& config, int query_tokens,
                                 int output_estimate) const {
  switch (config.method) {
    case SynthesisMethod::kStuff: {
      int prompt = executor_->StuffPromptTokens(query_tokens, config.num_chunks);
      return engine_->BytesNeededFor(prompt, output_estimate);
    }
    case SynthesisMethod::kMapRerank: {
      // Mappers are independent single-chunk calls; the engine admits them
      // piecewise, so the schedulable unit is one mapper.
      int prompt = executor_->MapperPromptTokens(query_tokens);
      return engine_->BytesNeededFor(prompt, output_estimate);
    }
    case SynthesisMethod::kMapReduce: {
      int mapper = executor_->MapperPromptTokens(query_tokens);
      int reduce = executor_->ReducePromptTokens(query_tokens, config.num_chunks,
                                                 config.intermediate_tokens);
      double mapper_bytes = engine_->BytesNeededFor(mapper, config.intermediate_tokens);
      double reduce_bytes = engine_->BytesNeededFor(reduce, output_estimate);
      return std::max(mapper_bytes, reduce_bytes);
    }
  }
  METIS_CHECK(false && "unreachable");
  return 0;
}

double JointScheduler::TotalBytes(const RagConfig& config, int query_tokens,
                                  int output_estimate) const {
  switch (config.method) {
    case SynthesisMethod::kStuff:
      return PeakBytes(config, query_tokens, output_estimate);
    case SynthesisMethod::kMapRerank: {
      int prompt = executor_->MapperPromptTokens(query_tokens);
      return config.num_chunks * engine_->BytesNeededFor(prompt, output_estimate);
    }
    case SynthesisMethod::kMapReduce: {
      int mapper = executor_->MapperPromptTokens(query_tokens);
      int reduce = executor_->ReducePromptTokens(query_tokens, config.num_chunks,
                                                 config.intermediate_tokens);
      return config.num_chunks * engine_->BytesNeededFor(mapper, config.intermediate_tokens) +
             engine_->BytesNeededFor(reduce, output_estimate);
    }
  }
  METIS_CHECK(false && "unreachable");
  return 0;
}

double JointScheduler::PredictedPrefixHitFrac() const {
  if (!options_.cross_query_prefix) {
    return 0;
  }
  const EngineStats& s = engine_->stats();
  double denom = static_cast<double>(s.prefill_tokens + s.prefill_tokens_saved);
  if (denom <= 0) {
    return 0;
  }
  return static_cast<double>(s.prefill_tokens_saved) / denom;
}

int JointScheduler::SharedPrefixTokens(const RagConfig& config, int query_tokens) const {
  if (!options_.cross_query_prefix) {
    return 0;
  }
  // Canonical layout: everything before the query tail is shared — the
  // instruction plus the chunk block (stuff) or one chunk (mapper unit).
  switch (config.method) {
    case SynthesisMethod::kStuff:
      return executor_->StuffPromptTokens(query_tokens, config.num_chunks) - query_tokens;
    case SynthesisMethod::kMapRerank:
    case SynthesisMethod::kMapReduce:
      return executor_->MapperPromptTokens(query_tokens) - query_tokens;
  }
  METIS_CHECK(false && "unreachable");
  return 0;
}

double JointScheduler::EstimatedServiceSeconds(const RagConfig& config, int query_tokens,
                                               int output_estimate) const {
  const ModelSpec& m = engine_->model();
  double hit = PredictedPrefixHitFrac();
  // Prefill compute serializes through the step token budget; the quadratic
  // attention term sums positions 0..prompt (~prompt^2 / 2). A resident
  // prefix skips BOTH for its tokens, hence the discount on `prompt` itself.
  auto prefill_s = [&](int prompt, int shared) {
    double effective = prompt - hit * shared;
    return effective / m.prefill_tokens_per_sec +
           m.attn_prefill_coeff * 0.5 * effective * effective;
  };
  // Decodes overlap with the running batch, so the per-step weight-read
  // overhead amortizes; attention still pays the full context per token.
  double batch = std::max<double>(1.0, static_cast<double>(engine_->running_count()));
  auto decode_s = [&](int prompt, int output) {
    return output * (m.step_overhead_sec / batch +
                     m.attn_decode_coeff * (prompt + 0.5 * output));
  };
  int shared = SharedPrefixTokens(config, query_tokens);
  switch (config.method) {
    case SynthesisMethod::kStuff: {
      int prompt = executor_->StuffPromptTokens(query_tokens, config.num_chunks);
      return prefill_s(prompt, shared) + decode_s(prompt, output_estimate);
    }
    case SynthesisMethod::kMapRerank: {
      int prompt = executor_->MapperPromptTokens(query_tokens);
      // Mapper prefills serialize; their decodes run concurrently, so the
      // decode tail is paid once.
      return config.num_chunks * prefill_s(prompt, shared) +
             decode_s(prompt, output_estimate);
    }
    case SynthesisMethod::kMapReduce: {
      int mapper = executor_->MapperPromptTokens(query_tokens);
      int reduce = executor_->ReducePromptTokens(query_tokens, config.num_chunks,
                                                 config.intermediate_tokens);
      return config.num_chunks * prefill_s(mapper, shared) +
             decode_s(mapper, config.intermediate_tokens) +
             prefill_s(reduce, 0) + decode_s(reduce, output_estimate);
    }
  }
  METIS_CHECK(false && "unreachable");
  return 0;
}

void JointScheduler::ApplyBudget(SchedulerDecision* decision, const PrunedConfigSpace& space,
                                 int query_tokens, int output_estimate,
                                 double remaining_budget_s) const {
  decision->est_service_s =
      EstimatedServiceSeconds(decision->config, query_tokens, output_estimate);
  if (options_.e2e_budget_s <= 0 || remaining_budget_s < 0) {
    return;  // Budget split disabled: selection identical to the prior stack.
  }
  // Synthesis side first: shave intermediate tokens, then chunks, never below
  // the space floor — the profiler's information need stays covered.
  RagConfig cfg = decision->config;
  bool trimmed = false;
  while (decision->est_service_s > remaining_budget_s) {
    if (cfg.method == SynthesisMethod::kMapReduce &&
        cfg.intermediate_tokens - intermediate_stride_ >= space.min_intermediate) {
      cfg.intermediate_tokens -= intermediate_stride_;
    } else if (cfg.num_chunks > space.min_chunks) {
      --cfg.num_chunks;
    } else {
      break;
    }
    trimmed = true;
    decision->est_service_s = EstimatedServiceSeconds(cfg, query_tokens, output_estimate);
  }
  if (trimmed) {
    decision->budget_trimmed = true;
    decision->config = cfg;
    decision->peak_bytes = PeakBytes(cfg, query_tokens, output_estimate);
  }
  if (decision->est_service_s > remaining_budget_s) {
    // Synthesis is at its floor and still over budget: spend the retrieval
    // half of the split — clamp the probe budget to the policy minimum so the
    // retrieval front half gives back what time it can.
    decision->retrieval = RetrievalDepthPolicy::ClampToBudget(
        decision->retrieval, depth_policy_.options().min_budget);
    decision->depth_traded = true;
  }
}

SchedulerDecision JointScheduler::Choose(const PrunedConfigSpace& space,
                                         const QueryProfile& profile, int query_tokens,
                                         int output_estimate,
                                         double remaining_budget_s) const {
  SchedulerDecision decision;
  decision.retrieval = RetrievalQualityFor(profile);
  decision.free_bytes = options_.use_projected_free ? engine_->projected_free_kv_bytes()
                                                    : engine_->free_kv_bytes();
  double hit_frac = PredictedPrefixHitFrac();

  bool found = false;
  double best_peak = -1;
  double best_total = -1;
  RagConfig best;

  auto consider = [&](const RagConfig& cfg) {
    double peak = PeakBytes(cfg, query_tokens, output_estimate);
    // Cross-query reuse: the shared prefix predicted to be resident costs no
    // new blocks, so the fit check charges only the expected-novel fraction.
    double fit_peak = peak;
    if (hit_frac > 0) {
      fit_peak -= hit_frac * engine_->kv().BytesForTokens(
                                 SharedPrefixTokens(cfg, query_tokens));
    }
    if (fit_peak > decision.free_bytes) {
      return;  // Would queue behind memory; never picked (§4.3).
    }
    double total = TotalBytes(cfg, query_tokens, output_estimate);
    if (peak > best_peak || (peak == best_peak && total > best_total)) {
      best_peak = peak;
      best_total = total;
      best = cfg;
      found = true;
    }
  };

  auto consider_method = [&](SynthesisMethod m) {
    int max_k = space.max_chunks;
    if (m == SynthesisMethod::kStuff && options_.litm_cap) {
      max_k = MaxLitmSafeStuffChunks(space, query_tokens);
    }
    for (int k = space.min_chunks; k <= max_k; ++k) {
      if (m == SynthesisMethod::kMapReduce) {
        for (int L = space.min_intermediate; L <= space.max_intermediate;
             L += intermediate_stride_) {
          consider(RagConfig{m, k, L});
        }
      } else {
        consider(RagConfig{m, k, space.min_intermediate});
      }
    }
  };

  // Within the pruned space, quality ordering is known (Fig. 4a): complex
  // queries do best with map_reduce's denoising, so when any map_reduce
  // configuration fits it is preferred; the memory best-fit then picks the
  // richest variant. Other methods are only considered when map_reduce does
  // not fit at all (or is not in the space).
  bool has_map_reduce = options_.prefer_map_reduce_for_complex &&
                        std::find(space.methods.begin(), space.methods.end(),
                                  SynthesisMethod::kMapReduce) != space.methods.end();
  if (profile.high_complexity && has_map_reduce) {
    consider_method(SynthesisMethod::kMapReduce);
  }
  if (!found) {
    for (SynthesisMethod m : space.methods) {
      if (profile.high_complexity && has_map_reduce && m == SynthesisMethod::kMapReduce) {
        continue;  // Already considered.
      }
      consider_method(m);
    }
  }

  if (found) {
    decision.config = best;
    decision.peak_bytes = best_peak;
    ApplyBudget(&decision, space, query_tokens, output_estimate, remaining_budget_s);
    return decision;
  }

  // Nothing in the pruned space fits the GPU right now: fall back to a
  // cheaper configuration just outside the range instead of queueing (§4.3).
  decision.used_fallback = true;
  if (!profile.requires_joint) {
    // map_rerank units always fit piecewise; cover the information need with
    // the usual 1.5x retrieval headroom.
    int k = std::min(space.max_chunks, (3 * space.min_chunks + 1) / 2);
    decision.config = RagConfig{SynthesisMethod::kMapRerank, k, space.min_intermediate};
  } else {
    // stuff with as many chunks as fit in the currently free memory — but if
    // that cannot even cover the query's information need, the cheaper
    // configuration that *does* meet the requirement is map_reduce with short
    // intermediates: its mappers slot into the current batch piecewise. This
    // is exactly the Fig. 8 scenario ("we select MapReduce as it readily fits
    // in the current batch").
    int k_fit = 0;
    for (int k = space.max_chunks; k >= 1; --k) {
      RagConfig cfg{SynthesisMethod::kStuff, k, space.min_intermediate};
      if (PeakBytes(cfg, query_tokens, output_estimate) <= decision.free_bytes) {
        k_fit = k;
        break;
      }
    }
    if (k_fit >= space.min_chunks || !options_.fig8_fallback) {
      decision.config =
          RagConfig{SynthesisMethod::kStuff, std::max(k_fit, 1), space.min_intermediate};
    } else {
      int mid_intermediate = (space.min_intermediate + space.max_intermediate) / 2;
      decision.config =
          RagConfig{SynthesisMethod::kMapReduce, space.min_chunks, mid_intermediate};
    }
  }
  decision.peak_bytes = PeakBytes(decision.config, query_tokens, output_estimate);
  ApplyBudget(&decision, space, query_tokens, output_estimate, remaining_budget_s);
  return decision;
}

RagConfig JointScheduler::MedianOfSpace(const PrunedConfigSpace& space) const {
  METIS_CHECK(!space.methods.empty());
  RagConfig cfg;
  // Prefer the middle method by the cheap->expensive order the space uses.
  cfg.method = space.methods[space.methods.size() / 2];
  cfg.num_chunks = (space.min_chunks + space.max_chunks) / 2;
  if (cfg.method == SynthesisMethod::kStuff) {
    cfg.num_chunks = std::min(cfg.num_chunks, MaxLitmSafeStuffChunks(space, 32));
  }
  cfg.intermediate_tokens = (space.min_intermediate + space.max_intermediate) / 2;
  return cfg;
}

int JointScheduler::MaxLitmSafeStuffChunks(const PrunedConfigSpace& space,
                                           int query_tokens) const {
  int max_k = space.min_chunks;  // Never shrink below the information need.
  for (int k = space.min_chunks; k <= space.max_chunks; ++k) {
    if (executor_->StuffPromptTokens(query_tokens, k) > kStuffContextBudgetTokens) {
      break;
    }
    max_k = k;
  }
  return max_k;
}

RagConfig JointScheduler::QualityMaxOfSpace(const PrunedConfigSpace& space,
                                            int query_tokens) const {
  METIS_CHECK(!space.methods.empty());
  RagConfig cfg;
  cfg.method = space.methods.back();  // Most expensive method listed.
  // Retrieval coverage saturates around 1.5-2x the information need; beyond
  // that extra chunks only dilute quality (Fig. 4b), so the F1-maximizing
  // width sits at ~1.5x the space minimum, and stuff additionally respects
  // the LITM budget.
  int quality_k = std::min(space.max_chunks, (3 * space.min_chunks + 1) / 2);
  cfg.num_chunks = cfg.method == SynthesisMethod::kStuff
                       ? std::min(quality_k, MaxLitmSafeStuffChunks(space, query_tokens))
                       : quality_k;
  // Summary quality saturates well inside the estimated range (Fig. 4c);
  // beyond that longer intermediates no longer maximize F1.
  cfg.intermediate_tokens =
      space.min_intermediate + (space.max_intermediate - space.min_intermediate) * 3 / 5;
  return cfg;
}

}  // namespace metis
