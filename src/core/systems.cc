#include "src/core/systems.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/retrieval_depth.h"
#include "src/text/tokenizer.h"

namespace metis {

namespace {

QueryRecord MakeRecord(const char* system, const RagQuery& query, const RagConfig& config,
                       SimTime arrival, SimTime finish, RagResult result) {
  QueryRecord rec;
  rec.query_id = query.id;
  rec.system = system;
  rec.config = config;
  rec.arrival_time = arrival;
  rec.finish_time = finish;
  rec.e2e_delay = finish - arrival;
  rec.result = std::move(result);
  return rec;
}

}  // namespace

FixedConfigSystem::FixedConfigSystem(Simulator* sim, SynthesisExecutor* executor,
                                     RagConfig config, std::string label, RecordSink sink)
    : sim_(sim),
      executor_(executor),
      config_(config),
      label_(std::move(label)),
      sink_(std::move(sink)) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(executor != nullptr);
  METIS_CHECK(sink_ != nullptr);
}

void FixedConfigSystem::Accept(const RagQuery& query) {
  SimTime arrival = sim_->now();
  executor_->Execute(query, config_, [this, query, arrival](RagResult result) {
    sink_(MakeRecord(label_.c_str(), query, config_, arrival, sim_->now(), std::move(result)));
  });
}

AdaptiveRagSystem::AdaptiveRagSystem(Simulator* sim, SynthesisExecutor* executor,
                                     QueryProfiler* profiler, JointScheduler* scheduler,
                                     RecordSink sink)
    : sim_(sim),
      executor_(executor),
      profiler_(profiler),
      scheduler_(scheduler),
      sink_(std::move(sink)) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(executor != nullptr);
  METIS_CHECK(profiler != nullptr);
  METIS_CHECK(scheduler != nullptr);
  METIS_CHECK(sink_ != nullptr);
}

void AdaptiveRagSystem::Accept(const RagQuery& query) {
  SimTime arrival = sim_->now();
  profiler_->ProfileAsync(query, [this, query, arrival](QueryProfiler::Outcome outcome) {
    PrunedConfigSpace space = RuleBasedMapping(outcome.profile);
    // Maximize the F1 proxy, disregarding the system resource cost (§7.1).
    RagConfig config = scheduler_->QualityMaxOfSpace(space);
    executor_->Execute(query, config, [this, query, arrival, outcome,
                                       config](RagResult result) {
      QueryRecord rec = MakeRecord("adaptive_rag*", query, config, arrival, sim_->now(),
                                   std::move(result));
      rec.profile = outcome.profile;
      rec.profile_was_bad = outcome.was_bad;
      rec.profiler_delay = outcome.delay_seconds;
      sink_(std::move(rec));
    });
  });
}

MetisSystem::MetisSystem(Simulator* sim, SynthesisExecutor* executor, QueryProfiler* profiler,
                         JointScheduler* scheduler, const Dataset* dataset, Options options,
                         RecordSink sink, OverloadController* overload)
    : sim_(sim),
      executor_(executor),
      profiler_(profiler),
      scheduler_(scheduler),
      dataset_(dataset),
      options_(options),
      sink_(std::move(sink)),
      overload_(overload) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(executor != nullptr);
  METIS_CHECK(profiler != nullptr);
  METIS_CHECK(scheduler != nullptr);
  METIS_CHECK(dataset != nullptr);
  METIS_CHECK(sink_ != nullptr);
}

PrunedConfigSpace MetisSystem::ApplyKnobMasks(PrunedConfigSpace space) const {
  if (!options_.tune_method) {
    space.methods = {options_.base_config.method};
  }
  if (!options_.tune_chunks) {
    space.min_chunks = options_.base_config.num_chunks;
    space.max_chunks = options_.base_config.num_chunks;
  }
  if (!options_.tune_intermediate) {
    space.min_intermediate = options_.base_config.intermediate_tokens;
    space.max_intermediate = options_.base_config.intermediate_tokens;
  }
  return space;
}

void MetisSystem::MaybeRunGoldenFeedback(const RagQuery& query) {
  if (!options_.feedback_enabled) {
    return;
  }
  if (accepted_ % static_cast<uint64_t>(options_.feedback_interval) != 0) {
    return;
  }
  // Cost control (§5): the golden configuration is heavyweight, so it only
  // runs when the engine has clear headroom — otherwise its decode burst
  // would degrade the configuration decisions of concurrent queries.
  const LlmEngine& engine = scheduler_->engine();
  if (engine.queue_depth() > 0 ||
      engine.projected_free_kv_bytes() < 0.5 * engine.total_kv_bytes()) {
    return;
  }
  ++feedback_runs_;
  // Most accurate configuration (paper §5): map_reduce, 30 chunks, 300-token
  // intermediates. Runs as background load; its output is not recorded as a
  // served query but its structure teaches the profiler.
  RagConfig golden{SynthesisMethod::kMapReduce, 30, 300};
  executor_->Execute(query, golden, [this, query](RagResult result) {
    // The golden answer exposes how many standalone facts the full-effort
    // pipeline actually drew on and the summary detail it needed; that is
    // the signal fed back (§5).
    int pieces = result.gold_facts_retrieved > 0 ? result.gold_facts_retrieved
                                                 : query.num_facts;
    profiler_->AddGoldenFeedback(query, pieces, query.ideal_summary_tokens);
  });
}

void MetisSystem::Accept(const RagQuery& query) {
  ++accepted_;
  SimTime arrival = sim_->now();

  // Overload admission (ladder rung 3) happens at arrival, before any
  // profiler work is spent on a query that will be shed. Rejected queries
  // still produce a QueryRecord — no query is ever silently lost — with an
  // empty result and e2e_delay 0 (a rejection is instantaneous).
  if (overload_ != nullptr) {
    OverloadLevel level = overload_->Assess();
    if (!overload_->Admit(query.tenant, level)) {
      QueryRecord rec = MakeRecord("metis", query, RagConfig{}, arrival, arrival, RagResult{});
      rec.tenant = query.tenant;
      rec.rejected = true;
      rec.overload_level = static_cast<int>(level);
      sink_(std::move(rec));
      return;
    }
  }

  MaybeRunGoldenFeedback(query);

  profiler_->ProfileAsync(query, [this, query, arrival](QueryProfiler::Outcome outcome) {
    int max_chunks = static_cast<int>(dataset_->db().num_chunks());
    PrunedConfigSpace space = RuleBasedMapping(outcome.profile, max_chunks);

    bool low_confidence = outcome.profile.confidence < options_.confidence_threshold;
    if (low_confidence && !recent_spaces_.empty()) {
      // §5: distrust the profile; reuse the pruned spaces of recent queries.
      std::vector<PrunedConfigSpace> window(recent_spaces_.begin(), recent_spaces_.end());
      space = PrunedConfigSpace::AverageOf(window);
    } else {
      recent_spaces_.push_back(space);
      while (recent_spaces_.size() > static_cast<size_t>(options_.recent_spaces)) {
        recent_spaces_.pop_front();
      }
    }

    space = ApplyKnobMasks(space);

    int query_tokens = static_cast<int>(CountTokens(query.text));
    SchedulerDecision decision;
    if (options_.pick == ConfigPick::kBestFit) {
      // Co-scheduling: the delay budget left after arrival queueing and the
      // profiler round-trip is what Choose() splits between retrieval depth
      // and synthesis tokens. -1 (budget off) keeps the unbudgeted selection.
      double remaining_budget_s = -1;
      double e2e_budget = scheduler_->options().e2e_budget_s;
      if (e2e_budget > 0) {
        remaining_budget_s = std::max(0.0, arrival + e2e_budget - sim_->now());
      }
      decision = scheduler_->Choose(space, outcome.profile, query_tokens,
                                    options_.output_token_estimate, remaining_budget_s);
    } else {
      decision.config = scheduler_->MedianOfSpace(space);
      decision.retrieval = scheduler_->RetrievalQualityFor(outcome.profile);
    }

    // Degradation rungs 1/2 re-assess at the decision point: pressure may
    // have changed during the profiling delay, and this is where the
    // configuration and retrieval depth are actually committed.
    OverloadLevel decision_level = OverloadLevel::kNone;
    bool depth_shed = false;
    bool synthesis_degraded = false;
    bool precision_shed = false;
    bool hybrid_shed = false;
    if (overload_ != nullptr) {
      overload_->ObserveConfidence(outcome.profile.confidence);
      overload_->ObserveServiceEstimate(decision.est_service_s);
      decision_level = overload_->Assess();
      if (decision_level >= OverloadLevel::kCheapSynthesis) {
        const RagConfig& cheap = overload_->options().cheap_config;
        RagConfig degraded = cheap;
        // Degradation only ever reduces work relative to the scheduler's
        // own pick.
        degraded.num_chunks = std::min(cheap.num_chunks, decision.config.num_chunks);
        degraded.intermediate_tokens =
            std::min(cheap.intermediate_tokens, decision.config.intermediate_tokens);
        if (!(degraded == decision.config)) {
          decision.config = degraded;
          synthesis_degraded = true;
          overload_->NoteSynthesisDegraded();
        }
      }
      if (decision_level >= OverloadLevel::kShedPrecision) {
        // Rung 3: move candidate generation onto a quantized mirror. Only a
        // strictly cheaper tier is ever applied (RetrievalPrecisionCost), so
        // the default fp32 shed tier makes this rung a no-op, and an index
        // without the mirror serves the shed tier exactly anyway
        // (ResolveTier) — degraded, never wrong.
        RetrievalPrecision shed = overload_->options().shed_precision;
        if (RetrievalPrecisionCost(shed) <
            RetrievalPrecisionCost(decision.retrieval.precision)) {
          decision.retrieval.precision = shed;
          if (overload_->options().shed_rerank_factor > 0) {
            decision.retrieval.rerank_factor = overload_->options().shed_rerank_factor;
          }
          precision_shed = true;
          overload_->NotePrecisionShed();
        }
      }
      if (decision_level >= OverloadLevel::kShedDepth &&
          overload_->options().shed_probe_budget > 0) {
        RetrievalQuality clamped = RetrievalDepthPolicy::ClampToBudget(
            decision.retrieval, overload_->options().shed_probe_budget);
        if (clamped.mode != decision.retrieval.mode ||
            clamped.nprobe != decision.retrieval.nprobe) {
          decision.retrieval = clamped;
          depth_shed = true;
          overload_->NoteDepthShed();
        }
      }
      if (decision_level >= OverloadLevel::kShedDepth &&
          decision.retrieval.hybrid && decision.retrieval.dense_weight > 0 &&
          decision.retrieval.lexical_weight > 0) {
        // Under pressure a fused retrieval costs two scans; collapse to the
        // cheapest single backend (metadata filters stay — they only shrink
        // the remaining scan).
        decision.retrieval = HybridRouter::ShedToSingleBackend(decision.retrieval);
        hybrid_shed = true;
        overload_->NoteHybridShed();
      }
    }

    executor_->Execute(query, decision.config, decision.retrieval,
                       [this, query, arrival, outcome, decision, low_confidence, decision_level,
                        depth_shed, synthesis_degraded, precision_shed,
                        hybrid_shed](RagResult result) {
      QueryRecord rec = MakeRecord("metis", query, decision.config, arrival, sim_->now(),
                                   std::move(result));
      rec.retrieval_quality = decision.retrieval;
      rec.profile = outcome.profile;
      rec.profile_was_bad = outcome.was_bad;
      rec.profiler_delay = outcome.delay_seconds;
      rec.low_confidence_fallback = low_confidence;
      rec.scheduler_fallback = decision.used_fallback;
      rec.tenant = query.tenant;
      rec.overload_level = static_cast<int>(decision_level);
      rec.depth_shed = depth_shed;
      rec.synthesis_degraded = synthesis_degraded;
      rec.precision_shed = precision_shed;
      rec.hybrid_shed = hybrid_shed;
      rec.est_service_s = decision.est_service_s;
      rec.budget_trimmed = decision.budget_trimmed;
      rec.depth_traded = decision.depth_traded;
      sink_(std::move(rec));
    });
  });
}

}  // namespace metis
