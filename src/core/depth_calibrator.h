// Per-dataset retrieval-depth budget lines (the mixed-workload half of the
// METIS retrieval knob).
//
// PR 4 gave each QUERY its own probe budget via RetrievalDepthPolicy, but the
// mixed-workload path (RunMixedExperiment, the paper's §7.1 concurrent-dataset
// setup) still applied ONE JointSchedulerOptions::depth line to every dataset
// stack — even though the per-piece F1-vs-budget curves differ sharply per
// dataset profile. RAGGED (Hsia et al., 2024) measures exactly this
// workload-dependence of optimal retrieval depth, and RAG-Stack (Jiang, 2025)
// argues the quality/performance knobs must be co-tuned per corpus.
//
// DepthCalibrator derives a DATASET's budget line (base, slope, min, max):
//
//   - DeriveFromProfile: closed-form from the DatasetProfile statistics the
//     generator already publishes (max_facts, topic_fraction,
//     max_output_tokens) and the index's nlist. Zero-cost; the line mirrors
//     the measured PR 4 direction (descending in pieces) scaled to the
//     dataset's piece range and corpus geometry.
//   - Calibrate: offline probe-grid sweep on a held-out slice of the
//     dataset's queries — for each piece group, find the smallest budget
//     whose gold-chunk coverage matches the deepest grid budget's within a
//     tolerance, then fit the cheapest line that COVERS every group's
//     minimal budget (budget(p) >= target_p for all measured p, minimizing
//     expected probes). This mirrors how METIS prunes its configuration
//     space offline (§4.2): a small bounded probe pass before serving,
//     amortized across the whole run, that never under-provisions a
//     measured group.
//
// RunMixedExperiment consumes the calibrator when
// MixedRunSpec::per_dataset_depth is set; the flag off restores the shared
// line bit-for-bit (parity-tested in mixed_runner_test).

#ifndef METIS_SRC_CORE_DEPTH_CALIBRATOR_H_
#define METIS_SRC_CORE_DEPTH_CALIBRATOR_H_

#include <cstddef>
#include <vector>

#include "src/core/hybrid_router.h"
#include "src/core/retrieval_depth.h"
#include "src/workload/dataset.h"

namespace metis {

struct DepthCalibratorOptions {
  // Offline sweep: probe budgets to try, ascending. Entries above the
  // index's nlist clamp to it; empty uses {1, 2, 3, 4, 6, 8, 10, 12, 16}.
  std::vector<size_t> probe_grid;
  // Held-out slice: the first `holdout_queries` of the dataset's query list
  // (generation is deterministic, so this is a stable slice).
  size_t holdout_queries = 32;
  // Retrieval width used when measuring gold coverage.
  size_t top_k = 10;
  // A budget is "good enough" for a piece group when its mean gold-chunk
  // coverage is within this of the deepest grid budget's coverage. The 0
  // default never trades coverage for probes: a group's minimal budget is
  // the start of its coverage plateau.
  double coverage_tolerance = 0.0;
  // Probe mode written into the fitted options (see
  // RetrievalDepthPolicyOptions::adaptive).
  bool adaptive = true;
  // Copied into the fitted options (confidence fallback threshold).
  double min_confidence = 0.5;
  // Scan-tier sweep (the third calibration axis, tier x rerank x budget):
  // after the budget line is fitted, every (tier_grid x rerank_grid) pair is
  // re-measured on the holdout AT the fitted per-piece budgets, and the
  // cheapest tier (RetrievalPrecisionCost) whose mean gold coverage stays
  // within tier_coverage_tolerance of fp32's is written into the fitted
  // options. An empty tier_grid (the default) skips the sweep entirely —
  // the calibrator stays bit-identical to the budget-only version — as does
  // a dataset whose index never built quantized mirrors. rerank_grid empty
  // = {0} (the tier-default over-fetch).
  std::vector<RetrievalPrecision> tier_grid;
  std::vector<size_t> rerank_grid;
  double tier_coverage_tolerance = 0.0;
  // Hybrid-weight sweep (CalibrateHybridWeights): dense weights of the FUSED
  // candidates tried per task type, on top of the always-included
  // single-backend candidates {1,0} and {0,1}. Empty = {0.4, 0.5, 0.6}.
  std::vector<float> hybrid_weight_grid;
  // A candidate is "good enough" for a task type when its mean gold coverage
  // is within this of the best candidate's; among good-enough candidates the
  // CHEAPEST wins (lexical-only < dense-only < fused).
  double hybrid_coverage_tolerance = 0.0;
};

class DepthCalibrator {
 public:
  explicit DepthCalibrator(DepthCalibratorOptions options = {});

  // Closed-form line from the dataset's Table-1 profile statistics; `nlist`
  // is the serving index's list count (the depth axis ceiling).
  RetrievalDepthPolicyOptions DeriveFromProfile(const DatasetProfile& profile,
                                                size_t nlist) const;

  // Offline probe-grid calibration against the dataset's own index and gold
  // labels (see header comment). Requires the IVF backend; returns
  // DeriveFromProfile's line when the dataset is served flat (the options are
  // inert there anyway). NOTE: probing perturbs the index's probe counters —
  // callers that report probe stats must ResetProbeStats() after calibrating.
  RetrievalDepthPolicyOptions Calibrate(const Dataset& dataset) const;

  // The grid actually swept for an index with `nlist` lists: the configured
  // (or default) grid, clamped to nlist and deduplicated, ascending.
  std::vector<size_t> GridFor(size_t nlist) const;

  // Hybrid-weight calibration (the fourth calibration axis: WHICH backend).
  // Classifies the holdout queries by task type (ClassifyTaskType on the
  // query text — the same RNG-free cue parse the serving profiler runs),
  // measures each weight candidate's mean gold-chunk coverage per type, and
  // writes the per-type winner into a copy of `base` with enabled set.
  // Ties break toward the CHEAPER candidate (lexical-only, then dense-only,
  // then fused — "a backend we don't scan is free"). Temporal queries that
  // parse a time bucket are measured with the metadata filter attached when
  // base.use_metadata_filter. A dataset whose database built no lexical
  // index returns `base` unchanged (there is nothing to route to).
  HybridRouterOptions CalibrateHybridWeights(const Dataset& dataset,
                                             const HybridRouterOptions& base = {}) const;

  const DepthCalibratorOptions& options() const { return options_; }

 private:
  DepthCalibratorOptions options_;
};

}  // namespace metis

#endif  // METIS_SRC_CORE_DEPTH_CALIBRATOR_H_
