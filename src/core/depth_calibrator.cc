#include "src/core/depth_calibrator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "src/common/check.h"
#include "src/text/tokenizer.h"

namespace metis {

DepthCalibrator::DepthCalibrator(DepthCalibratorOptions options) : options_(std::move(options)) {
  METIS_CHECK_GE(options_.top_k, 1u);
  METIS_CHECK_GE(options_.coverage_tolerance, 0.0);
}

std::vector<size_t> DepthCalibrator::GridFor(size_t nlist) const {
  std::vector<size_t> grid =
      options_.probe_grid.empty() ? std::vector<size_t>{1, 2, 3, 4, 6, 8, 10, 12, 16}
                                  : options_.probe_grid;
  for (size_t& b : grid) {
    b = std::max<size_t>(1, std::min(b, std::max<size_t>(nlist, 1)));
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

RetrievalDepthPolicyOptions DepthCalibrator::DeriveFromProfile(const DatasetProfile& profile,
                                                               size_t nlist) const {
  RetrievalDepthPolicyOptions line;
  line.adaptive = options_.adaptive;
  line.min_confidence = options_.min_confidence;
  if (nlist == 0) {
    return line;  // Flat backend: the options are inert; keep the defaults.
  }
  // Ceiling: single-piece lookups are all-or-nothing (a missed gold list
  // collapses token F1 to ~0), so they may scan every list. Long-output
  // tasks (summarization-style, Table 1's max_output_tokens) accrue partial
  // credit across many gold chunks and saturate earlier — cap their deepest
  // scan at 3/4 of the lists.
  size_t max_budget = nlist;
  if (profile.max_output_tokens > 20) {
    max_budget = std::max<size_t>(2, (nlist * 3) / 4);
  }
  // Floor: when the corpus geometry is diffuse (low topic_fraction the
  // shared filler vocabulary dominates and IVF lists carry little topical
  // meaning), shallow probes are near-random — keep a geometry-scaled
  // minimum. A topical corpus (high fraction) lets many-piece queries stop
  // at the couple of lists nearest their mixture embedding.
  size_t min_budget = std::max<size_t>(
      2, static_cast<size_t>(std::lround(nlist * (1.0 - profile.topic_fraction) * 0.4)));
  min_budget = std::min(min_budget, max_budget);
  // Slope: spread the [min, max] range down the dataset's piece range
  // [1, max_facts] — the PR 4 measured direction (descending in pieces),
  // scaled per dataset. max_facts == 1 collapses to a flat line at the cap.
  int slope = 0;
  if (profile.max_facts > 1 && max_budget > min_budget) {
    slope = -std::max<int>(
        1, static_cast<int>(std::lround(static_cast<double>(max_budget - min_budget) /
                                        static_cast<double>(profile.max_facts))));
  }
  line.min_budget = min_budget;
  line.max_budget = max_budget;
  line.probes_per_piece = slope;
  // base + slope * 1 == max_budget: single-piece queries get the full cap.
  line.base_probes = max_budget + static_cast<size_t>(-slope);
  return line;
}

RetrievalDepthPolicyOptions DepthCalibrator::Calibrate(const Dataset& dataset) const {
  const IvfL2Index* ivf = dataset.db().ivf_index();
  const size_t nlist = ivf != nullptr ? ivf->nlist() : 0;
  RetrievalDepthPolicyOptions line = DeriveFromProfile(dataset.profile(), nlist);
  if (ivf == nullptr) {
    return line;  // Flat: nothing to sweep, and the options are inert anyway.
  }
  const std::vector<size_t> grid = GridFor(nlist);
  const size_t holdout = std::min<size_t>(options_.holdout_queries, dataset.queries().size());
  if (grid.empty() || holdout == 0) {
    return line;
  }

  // Mean gold-chunk coverage per (piece group, grid budget). The offline pass
  // may use gold labels (they exist at calibration time, like the profiling
  // data METIS prunes its config space with); the serving path still works
  // from the profiler's num_info_pieces estimate.
  struct GroupStats {
    std::vector<double> coverage;  // Parallel to `grid`.
    size_t queries = 0;
  };
  std::map<int, GroupStats> groups;
  for (size_t i = 0; i < holdout; ++i) {
    const RagQuery& query = dataset.queries()[i];
    std::unordered_set<ChunkId> gold_chunks;
    for (int32_t fact_id : query.gold_fact_ids) {
      if (dataset.has_fact(fact_id)) {
        gold_chunks.insert(dataset.fact(fact_id).chunk_id);
      }
    }
    if (gold_chunks.empty()) {
      continue;
    }
    GroupStats& group = groups[std::max(query.num_facts, 1)];
    if (group.coverage.empty()) {
      group.coverage.assign(grid.size(), 0.0);
    }
    group.queries++;
    for (size_t g = 0; g < grid.size(); ++g) {
      RetrievalQuality quality;
      quality.mode = RetrievalQuality::ProbeMode::kFixed;
      quality.nprobe = grid[g];
      std::vector<ChunkId> got = dataset.db().Retrieve(query.text, options_.top_k, quality);
      size_t hit = 0;
      for (ChunkId id : got) {
        hit += gold_chunks.count(id);
      }
      group.coverage[g] +=
          static_cast<double>(hit) / static_cast<double>(gold_chunks.size());
    }
  }
  if (groups.empty()) {
    return line;
  }

  // Per group: the smallest grid budget whose coverage matches the deepest
  // budget's within the tolerance — that group's minimal sufficient budget.
  struct Target {
    long pieces;
    long budget;
    double weight;
  };
  std::vector<Target> targets;
  size_t min_target = grid.back();
  size_t max_target = grid.front();
  for (auto& [pieces, group] : groups) {
    double deepest = group.coverage.back() / group.queries;
    size_t target = grid.back();
    for (size_t g = 0; g < grid.size(); ++g) {
      if (group.coverage[g] / group.queries >= deepest - options_.coverage_tolerance) {
        target = grid[g];
        break;
      }
    }
    targets.push_back(Target{pieces, static_cast<long>(target),
                             static_cast<double>(group.queries)});
    min_target = std::min(min_target, target);
    max_target = std::max(max_target, target);
  }
  line.min_budget = std::max<size_t>(1, min_target);
  line.max_budget = std::max<size_t>(line.min_budget, max_target);

  // Fit the cheapest COVERING line: over integer slopes, take the smallest
  // intercept with budget(p) >= target_p for every measured group, then keep
  // the (slope, base) pair with the lowest expected probe spend. Covering —
  // rather than least-squares through the targets — means the fitted line
  // never under-probes a group the sweep measured (a least-squares fit
  // splits the difference between groups and silently trades their
  // coverage); probes are saved only where the line would OVER-probe a
  // group's plateau. Clamps at [min, max] keep out-of-range piece counts
  // (profiler over-estimates) sane. Slopes are restricted to <= 0: the
  // serving-time num_info_pieces is an ESTIMATE, and a non-ascending line
  // fails safe under piece under-estimates (deeper, not shallower) — an
  // ascending fit would under-probe exactly the all-or-nothing queries a
  // miss is unrecoverable for, so ascending target sets collapse to the
  // flat covering line instead.
  long best_slope = 0;
  long best_base = static_cast<long>(max_target);
  double best_cost = -1;
  const long slope_limit = static_cast<long>(grid.back());
  for (long slope = -slope_limit; slope <= 0; ++slope) {
    long base = 0;
    for (const Target& t : targets) {
      base = std::max(base, t.budget - slope * t.pieces);
    }
    // Profile-noise headroom: the sweep's targets are indexed by ground-truth
    // pieces, but serving budgets come from the profiler's ESTIMATE. A
    // one-piece over-estimate slides a query |slope| probes down the line,
    // so the intercept absorbs half of that; steeper lines pay a larger
    // guard, which the cost comparison below charges them for.
    base += (-slope + 1) / 2;
    double cost = 0;
    for (const Target& t : targets) {
      long b = std::clamp(base + slope * t.pieces, static_cast<long>(line.min_budget),
                          static_cast<long>(line.max_budget));
      cost += t.weight * static_cast<double>(b);
    }
    // Tie-break toward the flattest line (least extrapolation risk).
    if (best_cost < 0 || cost < best_cost ||
        (cost == best_cost && std::abs(slope) < std::abs(best_slope))) {
      best_cost = cost;
      best_slope = slope;
      best_base = base;
    }
  }
  line.probes_per_piece = static_cast<int>(best_slope);
  line.base_probes = static_cast<size_t>(std::max<long>(0, best_base));

  // --- Tier sweep (tier x rerank x fitted budget) ---------------------------
  // Re-measure the holdout at the fitted per-piece budgets under every
  // candidate (tier, rerank) pair; the cheapest tier whose coverage matches
  // fp32's within the tolerance wins. Skipped entirely (bit-parity with the
  // budget-only calibrator) when tier_grid is empty or the dataset's index
  // never built a quantized mirror.
  if (options_.tier_grid.empty() || dataset.db().index().quantizers() == nullptr) {
    return line;
  }
  auto budget_for = [&](int pieces) {
    long p = std::max(pieces, 1);
    long b = static_cast<long>(line.base_probes) +
             static_cast<long>(line.probes_per_piece) * p;
    return static_cast<size_t>(std::clamp(b, static_cast<long>(line.min_budget),
                                          static_cast<long>(line.max_budget)));
  };
  auto coverage_at = [&](RetrievalPrecision tier, size_t rerank) {
    double sum = 0;
    size_t measured = 0;
    for (size_t i = 0; i < holdout; ++i) {
      const RagQuery& query = dataset.queries()[i];
      std::unordered_set<ChunkId> gold_chunks;
      for (int32_t fact_id : query.gold_fact_ids) {
        if (dataset.has_fact(fact_id)) {
          gold_chunks.insert(dataset.fact(fact_id).chunk_id);
        }
      }
      if (gold_chunks.empty()) {
        continue;
      }
      RetrievalQuality quality;
      quality.mode = RetrievalQuality::ProbeMode::kFixed;
      quality.nprobe = budget_for(query.num_facts);
      quality.precision = tier;
      quality.rerank_factor = rerank;
      std::vector<ChunkId> got = dataset.db().Retrieve(query.text, options_.top_k, quality);
      size_t hit = 0;
      for (ChunkId id : got) {
        hit += gold_chunks.count(id);
      }
      sum += static_cast<double>(hit) / static_cast<double>(gold_chunks.size());
      ++measured;
    }
    return measured == 0 ? 1.0 : sum / static_cast<double>(measured);
  };
  const double fp32_coverage = coverage_at(RetrievalPrecision::kFp32, 0);
  const std::vector<size_t> reranks =
      options_.rerank_grid.empty() ? std::vector<size_t>{0} : options_.rerank_grid;
  RetrievalPrecision best_tier = RetrievalPrecision::kFp32;
  size_t best_rerank = 0;
  for (RetrievalPrecision tier : options_.tier_grid) {
    if (RetrievalPrecisionCost(tier) >= RetrievalPrecisionCost(best_tier)) {
      continue;  // Only ever move cheaper; grid order never matters.
    }
    for (size_t rerank : reranks) {
      if (coverage_at(tier, rerank) >= fp32_coverage - options_.tier_coverage_tolerance) {
        best_tier = tier;
        best_rerank = rerank;
        break;  // Reranks sweep ascending cost; first sufficient one wins.
      }
    }
  }
  line.precision = best_tier;
  line.rerank_factor = best_rerank;
  return line;
}

HybridRouterOptions DepthCalibrator::CalibrateHybridWeights(
    const Dataset& dataset, const HybridRouterOptions& base) const {
  if (dataset.db().lexical_index() == nullptr) {
    return base;  // Nothing to route to: the dense path is the only backend.
  }
  const size_t holdout = std::min<size_t>(options_.holdout_queries, dataset.queries().size());
  if (holdout == 0) {
    return base;
  }

  // Candidates, CHEAPEST FIRST (the tie-break order): a backend we never
  // scan is free, and postings scans are cheaper than dense row sweeps.
  struct Candidate {
    HybridBackendWeights weights;
  };
  std::vector<Candidate> candidates = {{{0.0f, 1.0f}}, {{1.0f, 0.0f}}};
  std::vector<float> fused = options_.hybrid_weight_grid.empty()
                                 ? std::vector<float>{0.4f, 0.5f, 0.6f}
                                 : options_.hybrid_weight_grid;
  for (float dense_w : fused) {
    if (dense_w > 0.0f && dense_w < 1.0f) {
      candidates.push_back({{dense_w, 1.0f - dense_w}});
    }
  }

  // Holdout queries bucketed by the SERVING-TIME classification (the cue
  // parse of the query text, not the generator's ground truth).
  struct Holdout {
    const RagQuery* query;
    std::vector<ChunkId> gold;  // Sorted unique gold chunk ids.
    int time_bucket = -1;
  };
  std::vector<std::vector<Holdout>> by_type(static_cast<size_t>(kNumQueryTaskTypes));
  for (size_t i = 0; i < holdout; ++i) {
    const RagQuery& query = dataset.queries()[i];
    Holdout h;
    h.query = &query;
    for (int32_t fact_id : query.gold_fact_ids) {
      if (dataset.has_fact(fact_id)) {
        h.gold.push_back(dataset.fact(fact_id).chunk_id);
      }
    }
    std::sort(h.gold.begin(), h.gold.end());
    h.gold.erase(std::unique(h.gold.begin(), h.gold.end()), h.gold.end());
    if (h.gold.empty()) {
      continue;
    }
    QueryTaskType type = ClassifyTaskType(Tokenize(query.text), &h.time_bucket);
    by_type[static_cast<size_t>(type)].push_back(std::move(h));
  }

  HybridRouterOptions fitted = base;
  fitted.enabled = true;
  for (size_t t = 0; t < by_type.size(); ++t) {
    const std::vector<Holdout>& group = by_type[t];
    if (group.empty()) {
      continue;  // Unobserved type: keep the base table's row.
    }
    std::vector<double> coverage(candidates.size(), 0.0);
    for (size_t c = 0; c < candidates.size(); ++c) {
      const HybridBackendWeights& w = candidates[c].weights;
      for (const Holdout& h : group) {
        RetrievalQuality quality;
        if (w.lexical > 0.0f) {
          quality.hybrid = true;
          quality.dense_weight = w.dense;
          quality.lexical_weight = w.lexical;
        }
        if (base.use_metadata_filter &&
            static_cast<QueryTaskType>(t) == QueryTaskType::kTemporal &&
            h.time_bucket >= 0) {
          quality.filter.time_bucket = h.time_bucket;
        }
        std::vector<ChunkId> got =
            dataset.db().Retrieve(h.query->text, options_.top_k, quality);
        size_t hit = 0;
        for (ChunkId id : got) {
          hit += std::binary_search(h.gold.begin(), h.gold.end(), id) ? 1 : 0;
        }
        coverage[c] += static_cast<double>(hit) / static_cast<double>(h.gold.size());
      }
      coverage[c] /= static_cast<double>(group.size());
    }
    double best = *std::max_element(coverage.begin(), coverage.end());
    size_t pick = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (coverage[c] >= best - options_.hybrid_coverage_tolerance) {
        pick = c;  // Candidates are ordered cheapest-first.
        break;
      }
    }
    HybridBackendWeights* row = nullptr;
    switch (static_cast<QueryTaskType>(t)) {
      case QueryTaskType::kFactual:
        row = &fitted.factual;
        break;
      case QueryTaskType::kSemantic:
        row = &fitted.semantic;
        break;
      case QueryTaskType::kTemporal:
        row = &fitted.temporal;
        break;
      case QueryTaskType::kComparative:
        row = &fitted.comparative;
        break;
    }
    if (row != nullptr) {
      *row = candidates[pick].weights;
    }
  }
  return fitted;
}

}  // namespace metis
