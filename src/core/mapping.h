// Rule-based mapping from query profiles to pruned configuration spaces
// (paper §4.2, Algorithm 1).
//
// The mapping converts the profiler's four estimates into a small range of
// RAG configurations that should all yield high quality — shrinking the
// combinatorial knob space by 50-100x so the joint scheduler can afford to
// enumerate it. The rules, verbatim from Algorithm 1:
//
//   if not joint-reasoning:       synthesis = { map_rerank }
//   elif complexity is low:       synthesis = { stuff }
//   else:                         synthesis = { stuff, map_reduce }
//   num_chunks  in [pieces, 3 * pieces]
//   intermediate_length in the profiler's summary range

#ifndef METIS_SRC_CORE_MAPPING_H_
#define METIS_SRC_CORE_MAPPING_H_

#include <vector>

#include "src/profiler/profiler.h"
#include "src/synthesis/config.h"

namespace metis {

struct PrunedConfigSpace {
  std::vector<SynthesisMethod> methods;
  int min_chunks = 1;
  int max_chunks = 3;
  int min_intermediate = 30;
  int max_intermediate = 60;

  bool Contains(const RagConfig& config) const;
  // Number of distinct configurations in the space (chunk values are
  // enumerated exactly; intermediate lengths with the standard stride).
  size_t ApproximateSize(int intermediate_stride = 10) const;
  // Merges another space into this one (used by the low-confidence fallback,
  // which unions the spaces of recent queries, §5).
  void UnionWith(const PrunedConfigSpace& other);

  // The typical space of a window of recent queries: methods are unioned,
  // numeric bounds averaged. This is what the §5 low-confidence fallback
  // uses — the average right-sizes the space, where a pure union would
  // over-provision every rescued query.
  static PrunedConfigSpace AverageOf(const std::vector<PrunedConfigSpace>& spaces);
};

// Algorithm 1. `max_available_chunks` caps num_chunks to the database size.
PrunedConfigSpace RuleBasedMapping(const QueryProfile& profile, int max_available_chunks = 64);

// Size of the unpruned knob grid the paper quotes (for the 50-100x claim):
// all three methods x chunk counts up to `max_chunks` x intermediate lengths.
size_t FullConfigSpaceSize(int max_chunks = 30, int intermediate_values = 50);

}  // namespace metis

#endif  // METIS_SRC_CORE_MAPPING_H_
