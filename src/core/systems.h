// Serving systems: METIS and the paper's baselines on a shared substrate.
//
// Every system drives the same SynthesisExecutor and LlmEngine; they differ
// only in *policy* — which RAG configuration each query runs with, and how
// engine-level batching is configured (done by the experiment runner):
//
//   - FixedConfigSystem (vLLM):   one static RagConfig for every query.
//   - Parrot*:                    FixedConfigSystem on an engine with
//                                 group-aware batching + prefix sharing.
//   - AdaptiveRagSystem:          profiles each query, then picks the
//                                 quality-maximizing configuration with no
//                                 regard to resources (paper §7.1).
//   - MetisSystem:                profile -> Algorithm-1 pruning -> joint
//                                 best-fit selection against live GPU memory,
//                                 with confidence fallback (§5) and optional
//                                 golden-config feedback (§5); knob masks
//                                 support the Fig. 16 incremental ablation.

#ifndef METIS_SRC_CORE_SYSTEMS_H_
#define METIS_SRC_CORE_SYSTEMS_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/core/joint_scheduler.h"
#include "src/core/mapping.h"
#include "src/core/overload.h"
#include "src/profiler/profiler.h"
#include "src/synthesis/synthesis.h"

namespace metis {

// Everything the experiment harness wants to know about one served query.
struct QueryRecord {
  int32_t query_id = -1;
  std::string system;
  RagConfig config;
  // Retrieval depth the stack used for this query (per-query when
  // JointSchedulerOptions::per_query_depth; the default value for
  // fixed-config systems, which retrieve at the stack-wide knob).
  RetrievalQuality retrieval_quality;
  QueryProfile profile;  // As estimated (default for fixed-config systems).
  bool profile_was_bad = false;
  bool low_confidence_fallback = false;
  bool scheduler_fallback = false;
  double profiler_delay = 0;
  SimTime arrival_time = 0;
  SimTime finish_time = 0;
  double e2e_delay = 0;  // finish - arrival; includes profiling + queueing.
  RagResult result;

  // --- Multi-tenant overload control (src/core/overload.h) ---
  int tenant = 0;              // Tenant-class index (RunSpec::tenants); 0 default.
  bool rejected = false;       // Shed by admission control; result is empty.
  int overload_level = 0;      // Ladder rung at this query's decision point.
  bool depth_shed = false;     // Rung 1 applied: retrieval budget clamped.
  bool synthesis_degraded = false;  // Rung 2 applied: cheap synthesis config.
  bool precision_shed = false;      // Rung 3 applied: quantized scan tier.
  bool hybrid_shed = false;    // Fused retrieval collapsed to one backend.

  // --- Joint co-scheduling (JointSchedulerOptions::e2e_budget_s) ---
  double est_service_s = 0;    // Scheduler's service-time prediction.
  bool budget_trimmed = false; // Budget split trimmed synthesis tokens.
  bool depth_traded = false;   // ...and clamped retrieval depth at the floor.
};

using RecordSink = std::function<void(QueryRecord)>;

class ServingSystem {
 public:
  virtual ~ServingSystem() = default;
  // Called at the query's arrival time in simulation context.
  virtual void Accept(const RagQuery& query) = 0;
  virtual const char* name() const = 0;
};

// vLLM / Parrot* baseline policy: a single static configuration.
class FixedConfigSystem : public ServingSystem {
 public:
  FixedConfigSystem(Simulator* sim, SynthesisExecutor* executor, RagConfig config,
                    std::string label, RecordSink sink);

  void Accept(const RagQuery& query) override;
  const char* name() const override { return label_.c_str(); }

 private:
  Simulator* sim_;
  SynthesisExecutor* executor_;
  RagConfig config_;
  std::string label_;
  RecordSink sink_;
};

// AdaptiveRAG*: per-query profile-driven configuration that maximizes
// quality, oblivious to system resources (and to the cost of its own choice).
class AdaptiveRagSystem : public ServingSystem {
 public:
  AdaptiveRagSystem(Simulator* sim, SynthesisExecutor* executor, QueryProfiler* profiler,
                    JointScheduler* scheduler, RecordSink sink);

  void Accept(const RagQuery& query) override;
  const char* name() const override { return "adaptive_rag*"; }

 private:
  Simulator* sim_;
  SynthesisExecutor* executor_;
  QueryProfiler* profiler_;
  JointScheduler* scheduler_;
  RecordSink sink_;
};

// METIS controller (paper §4).
class MetisSystem : public ServingSystem {
 public:
  enum class ConfigPick {
    kMedianOfSpace,  // Straw-man of §4.3: ignore resources, take the median.
    kBestFit,        // Full joint configuration-scheduling.
  };

  struct Options {
    ConfigPick pick = ConfigPick::kBestFit;
    double confidence_threshold = 0.90;
    int recent_spaces = 10;      // Low-confidence fallback window (§5).
    bool feedback_enabled = false;
    int feedback_interval = 30;  // Golden-config feedback cadence (§5).
    // Knob masks for the Fig. 16 incremental study. A masked knob stays at
    // base_config's value.
    bool tune_chunks = true;
    bool tune_method = true;
    bool tune_intermediate = true;
    RagConfig base_config{SynthesisMethod::kStuff, 10, 100};
    // Output-length estimate used in KV footprint math.
    int output_token_estimate = 48;
  };

  // `overload` (optional, not owned): the overload controller driving the
  // degradation ladder on this system's Accept path. Null (the default, and
  // whenever OverloadOptions::enabled is false) keeps Accept bit-for-bit
  // identical to the ladderless behaviour — no signal reads, no extra
  // branches taken.
  MetisSystem(Simulator* sim, SynthesisExecutor* executor, QueryProfiler* profiler,
              JointScheduler* scheduler, const Dataset* dataset, Options options,
              RecordSink sink, OverloadController* overload = nullptr);

  void Accept(const RagQuery& query) override;
  const char* name() const override { return "metis"; }

  uint64_t feedback_runs() const { return feedback_runs_; }

 private:
  PrunedConfigSpace ApplyKnobMasks(PrunedConfigSpace space) const;
  void MaybeRunGoldenFeedback(const RagQuery& query);

  Simulator* sim_;
  SynthesisExecutor* executor_;
  QueryProfiler* profiler_;
  JointScheduler* scheduler_;
  const Dataset* dataset_;
  Options options_;
  RecordSink sink_;
  OverloadController* overload_ = nullptr;

  std::deque<PrunedConfigSpace> recent_spaces_;
  uint64_t accepted_ = 0;
  uint64_t feedback_runs_ = 0;
};

}  // namespace metis

#endif  // METIS_SRC_CORE_SYSTEMS_H_
