#include "src/core/hybrid_router.h"

namespace metis {

HybridBackendWeights HybridRouter::WeightsFor(QueryTaskType type) const {
  switch (type) {
    case QueryTaskType::kFactual:
      return options_.factual;
    case QueryTaskType::kSemantic:
      return options_.semantic;
    case QueryTaskType::kTemporal:
      return options_.temporal;
    case QueryTaskType::kComparative:
      return options_.comparative;
  }
  return options_.factual;
}

RetrievalQuality HybridRouter::Route(const QueryProfile& profile,
                                     const RetrievalQuality& base) const {
  if (!options_.enabled) {
    return base;
  }
  HybridBackendWeights w = WeightsFor(profile.task_type);
  bool want_filter = options_.use_metadata_filter &&
                     profile.task_type == QueryTaskType::kTemporal && profile.time_bucket >= 0;
  if (w.lexical <= 0 && !want_filter) {
    // Pure dense, no filter: the base quality verbatim — these queries never
    // leave the fast path, and a weight-0 lexical backend is never scanned.
    return base;
  }
  RetrievalQuality routed = base;
  routed.hybrid = true;
  routed.dense_weight = w.dense;
  routed.lexical_weight = w.lexical;
  if (want_filter) {
    routed.filter.time_bucket = profile.time_bucket;
  }
  return routed;
}

RetrievalQuality HybridRouter::ShedToSingleBackend(const RetrievalQuality& quality) {
  if (!quality.hybrid || quality.dense_weight <= 0 || quality.lexical_weight <= 0) {
    return quality;  // Already single-backend (or not hybrid): nothing to shed.
  }
  RetrievalQuality shed = quality;
  if (quality.dense_weight > quality.lexical_weight) {
    shed.lexical_weight = 0;
  } else {
    shed.dense_weight = 0;  // Ties go lexical: the cheaper scan.
  }
  return shed;
}

}  // namespace metis
