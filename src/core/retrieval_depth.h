// Profiler-driven per-query retrieval depth (METIS §4 applied to the
// retrieval knob).
//
// PRs 2-3 made retrieval depth (IVF nprobe) a serving-stack quality knob, but
// one set per RUN: every query probed under the same RetrievalQuality. METIS's
// core claim is per-QUERY configuration adaptation, and retrieval depth wants
// it as much as chunk count does: a query needing one fact is served by the
// first list or two, while a query whose evidence is scattered across many
// chunks needs a deep scan — RAGGED (Hsia et al., 2024) measures exactly this
// per-query spread in optimal depth.
//
// RetrievalDepthPolicy closes the loop: it maps the profiler's QueryProfile to
// a per-query RetrievalQuality, which the JointScheduler folds into its
// decision and the SynthesisExecutor / RetrievalBatcher thread down to the
// index's heterogeneous-quality SearchBatch.
//
// The documented budget curve (pinned by depth_policy_test):
//
//     budget(p) = clamp(base_probes + probes_per_piece * p,
//                       min_budget, max_budget)        for confident profiles
//     budget(p) = max_budget                           when confidence < min_confidence
//
// where p = QueryProfile::num_info_pieces and probes_per_piece is SIGNED —
// and the default slope is NEGATIVE: fewer pieces get a deeper budget. That
// direction is measured, not assumed (bench_fig_depth's per-piece-group
// F1-vs-budget curves, on both the stock and the topical Musique corpus):
// a single-fact query is all-or-nothing — if its one gold chunk's inverted
// list is not probed, token-F1 collapses to ~0 — so its marginal F1 per
// probe stays high until deep into the list ranking. A many-piece query's
// mixture embedding sits between its topics' centroids, its gold spreads
// over exactly those nearest lists, and partial credit accrues from the
// first few probes — it saturates early. (RAGGED's observation that optimal
// depth varies strongly per query, with the variation direction an
// empirical property of the workload.) The confidence fallback mirrors the
// paper's §5 low-confidence handling: a distrusted profile must not be
// allowed to under-retrieve, so it gets the full budget. `adaptive` selects
// the probe MODE within the budget: fixed (probe exactly budget lists) or
// the PR 2 distance-ratio early-termination rule (probe up to budget lists,
// stopping early for easy queries).

#ifndef METIS_SRC_CORE_RETRIEVAL_DEPTH_H_
#define METIS_SRC_CORE_RETRIEVAL_DEPTH_H_

#include <cstddef>

#include "src/profiler/profiler.h"
#include "src/vectordb/vectordb.h"

namespace metis {

struct RetrievalDepthPolicyOptions {
  // Budget curve: budget(p) = clamp(base + slope * p, min, max). The default
  // line (10 - 2p over [2, 8]) maps pieces {1, 2, 3, >=4} to budgets
  // {8, 6, 4, 2} — deep scans for all-or-nothing lookups, shallow for
  // partial-credit multihop (see the header rationale).
  size_t base_probes = 10;
  int probes_per_piece = -2;  // Signed slope.
  size_t min_budget = 2;
  // Cap (and the depth used for distrusted profiles). Should not exceed the
  // index's nlist — deeper budgets clamp to the list count at plan time.
  size_t max_budget = 8;
  // Profiles below this confidence get max_budget (never under-retrieve on a
  // profile the §5 fallback would distrust).
  double min_confidence = 0.5;
  // Probe mode within the budget: true = distance-ratio early termination
  // (AdaptiveProbePolicy), false = probe exactly budget(p) lists.
  bool adaptive = true;
  // Scan tier every quality from this policy carries: fp32 (default, exact,
  // behaviour-neutral) or a quantized mirror + exact rerank. Unlike the
  // probe budget this is per-POLICY, not per-profile — the tier is a
  // dataset/deployment property (did the index build mirrors, what recall
  // does the corpus geometry keep), calibrated offline by DepthCalibrator.
  RetrievalPrecision precision = RetrievalPrecision::kFp32;
  size_t rerank_factor = 0;  // Quantized over-fetch multiple (0 = default).
};

class RetrievalDepthPolicy {
 public:
  explicit RetrievalDepthPolicy(RetrievalDepthPolicyOptions options = {});

  // The documented budget curve above.
  size_t BudgetFor(const QueryProfile& profile) const;

  // The per-query RetrievalQuality handed to the executor: BudgetFor() as the
  // probe budget, mode per `options.adaptive`. Exact (flat) backends ignore
  // it, so the policy is behaviour-neutral for the paper's default setup.
  RetrievalQuality QualityFor(const QueryProfile& profile) const;

  // Overload-ladder support: `quality` with its probe budget clamped to at
  // most `budget_cap` (floored at 1 probe; kIndexDefault resolves to a
  // concrete fixed budget first so the cap is enforceable). The depth rung of
  // the degradation ladder applies this to every decision — including the §5
  // low-confidence full-budget fallback, which must not over-retrieve while
  // the engine is drowning. No-op when budget_cap == 0.
  static RetrievalQuality ClampToBudget(RetrievalQuality quality, size_t budget_cap);

  const RetrievalDepthPolicyOptions& options() const { return options_; }

 private:
  RetrievalDepthPolicyOptions options_;
};

}  // namespace metis

#endif  // METIS_SRC_CORE_RETRIEVAL_DEPTH_H_
