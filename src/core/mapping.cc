#include "src/core/mapping.h"

#include <algorithm>

#include "src/common/check.h"

namespace metis {

bool PrunedConfigSpace::Contains(const RagConfig& config) const {
  bool method_ok = std::find(methods.begin(), methods.end(), config.method) != methods.end();
  if (!method_ok) {
    return false;
  }
  if (config.num_chunks < min_chunks || config.num_chunks > max_chunks) {
    return false;
  }
  if (config.method == SynthesisMethod::kMapReduce &&
      (config.intermediate_tokens < min_intermediate ||
       config.intermediate_tokens > max_intermediate)) {
    return false;
  }
  return true;
}

size_t PrunedConfigSpace::ApproximateSize(int intermediate_stride) const {
  METIS_CHECK_GT(intermediate_stride, 0);
  size_t chunk_values = static_cast<size_t>(std::max(0, max_chunks - min_chunks + 1));
  size_t total = 0;
  for (SynthesisMethod m : methods) {
    if (m == SynthesisMethod::kMapReduce) {
      size_t interm_values = static_cast<size_t>(
          std::max(0, (max_intermediate - min_intermediate) / intermediate_stride + 1));
      total += chunk_values * interm_values;
    } else {
      total += chunk_values;
    }
  }
  return total;
}

void PrunedConfigSpace::UnionWith(const PrunedConfigSpace& other) {
  for (SynthesisMethod m : other.methods) {
    if (std::find(methods.begin(), methods.end(), m) == methods.end()) {
      methods.push_back(m);
    }
  }
  min_chunks = std::min(min_chunks, other.min_chunks);
  max_chunks = std::max(max_chunks, other.max_chunks);
  min_intermediate = std::min(min_intermediate, other.min_intermediate);
  max_intermediate = std::max(max_intermediate, other.max_intermediate);
}

PrunedConfigSpace PrunedConfigSpace::AverageOf(const std::vector<PrunedConfigSpace>& spaces) {
  METIS_CHECK(!spaces.empty());
  PrunedConfigSpace out = spaces[0];
  double min_c = 0, max_c = 0, min_i = 0, max_i = 0;
  for (const auto& s : spaces) {
    for (SynthesisMethod m : s.methods) {
      if (std::find(out.methods.begin(), out.methods.end(), m) == out.methods.end()) {
        out.methods.push_back(m);
      }
    }
    min_c += s.min_chunks;
    max_c += s.max_chunks;
    min_i += s.min_intermediate;
    max_i += s.max_intermediate;
  }
  double n = static_cast<double>(spaces.size());
  out.min_chunks = static_cast<int>(min_c / n + 0.5);
  out.max_chunks = static_cast<int>(max_c / n + 0.5);
  out.min_intermediate = static_cast<int>(min_i / n + 0.5);
  out.max_intermediate = static_cast<int>(max_i / n + 0.5);
  return out;
}

PrunedConfigSpace RuleBasedMapping(const QueryProfile& profile, int max_available_chunks) {
  PrunedConfigSpace space;
  if (!profile.requires_joint) {
    space.methods = {SynthesisMethod::kMapRerank};
  } else if (!profile.high_complexity) {
    space.methods = {SynthesisMethod::kStuff};
  } else {
    space.methods = {SynthesisMethod::kStuff, SynthesisMethod::kMapReduce};
  }
  // num_chunks in [n, 3n]: headroom for imperfect retrieval (a typical RAG
  // retriever over-fetches 2-3x, §4.2) and room for the scheduler to flex.
  int n = std::max(1, profile.num_info_pieces);
  space.min_chunks = std::min(n, max_available_chunks);
  space.max_chunks = std::min(3 * n, max_available_chunks);
  space.min_intermediate = profile.summary_min_tokens;
  space.max_intermediate = profile.summary_max_tokens;
  return space;
}

size_t FullConfigSpaceSize(int max_chunks, int intermediate_values) {
  // map_rerank and stuff vary only chunks; map_reduce varies both knobs.
  return static_cast<size_t>(max_chunks) * 2 +
         static_cast<size_t>(max_chunks) * static_cast<size_t>(intermediate_values);
}

}  // namespace metis
