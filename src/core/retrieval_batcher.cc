#include "src/core/retrieval_batcher.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace metis {

RetrievalBatcher::RetrievalBatcher(Simulator* sim, const VectorDatabase* db,
                                   double delay_seconds, RetrievalQuality quality)
    : sim_(sim), db_(db), delay_(delay_seconds), quality_(quality) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(db != nullptr);
  METIS_CHECK_GE(delay_seconds, 0.0);
}

void RetrievalBatcher::Submit(std::string query_text, size_t k, Callback cb) {
  Submit(std::move(query_text), k, quality_, std::move(cb));
}

void RetrievalBatcher::Submit(std::string query_text, size_t k, const RetrievalQuality& quality,
                              Callback cb) {
  METIS_CHECK(cb != nullptr);
  ++requests_;
  pending_.push_back(
      Pending{std::move(query_text), k, quality, std::move(cb), sim_->now() + delay_});
  // Per-request event: claims the exact (time, sequence) slot the seed's
  // per-query ScheduleAfter would have, so coalescing cannot reorder this
  // callback relative to any other same-instant event in the simulation.
  sim_->ScheduleAt(pending_.back().due, [this]() { Deliver(); });
}

void RetrievalBatcher::Deliver() {
  METIS_CHECK(!pending_.empty());
  if (ready_.empty()) {
    // First delivery of a same-tick group: sweep the index once for every
    // request already queued that falls due now. Later submits (even at this
    // same timestamp) start their own group when their events fire.
    SimTime now = sim_->now();
    size_t group = 0;
    size_t max_k = 0;
    while (group < pending_.size() && pending_[group].due <= now) {
      max_k = std::max(max_k, pending_[group].k);
      ++group;
    }
    METIS_CHECK_GT(group, 0u);
    std::vector<std::string> texts;
    std::vector<RetrievalQuality> qualities;
    texts.reserve(group);
    qualities.reserve(group);
    for (size_t i = 0; i < group; ++i) {
      texts.push_back(pending_[i].text);
      qualities.push_back(pending_[i].quality);
    }
    // One shared sweep at the largest requested width; per-request widths
    // are prefixes of it (top-k lists are prefix-consistent under the
    // index's (distance, insertion-order) total order), and each request
    // keeps its own retrieval depth through the heterogeneous-quality sweep.
    std::vector<std::vector<SearchHit>> hits = db_->RetrieveBatch(texts, max_k, qualities);
    ++batches_;
    max_batch_ = std::max(max_batch_, group);
    for (size_t i = 0; i < group; ++i) {
      size_t take = std::min(pending_[i].k, hits[i].size());
      std::vector<ChunkId> ids;
      ids.reserve(take);
      for (size_t h = 0; h < take; ++h) {
        ids.push_back(hits[i][h].id);
      }
      ready_.push_back(std::move(ids));
    }
  }
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  std::vector<ChunkId> ids = std::move(ready_.front());
  ready_.pop_front();
  p.cb(std::move(ids));
}

}  // namespace metis
