// Profile-routed hybrid retrieval: task type -> per-backend ensemble weights.
//
// The newest scheduled knob (after depth, precision, and synthesis method):
// WHICH retriever serves a query. The profiler classifies each query's task
// type from its text (QueryTaskType, RNG-free keyword cues); the router maps
// the type to (dense weight, lexical weight) and — for temporal queries that
// carry a parsed time bucket — attaches a metadata filter. The database fuses
// the weighted backends' candidate lists by deterministic weighted
// reciprocal-rank fusion (vectordb.cc).
//
// Pure-dense routes (lexical weight 0, no filter) return the base quality
// UNTOUCHED, so a router whose table sends a type dense-only is bit-identical
// to no router at all for those queries — and a weight-0 backend is provably
// never scanned (hybrid_router_test.cc).
//
// The weight table is per-dataset calibratable (DepthCalibrator::
// CalibrateHybridWeights sweeps a weight grid on holdout gold coverage) and
// clamped by the overload ladder: at the shed-depth rung and above, fused
// queries collapse to their cheapest single backend (ShedToSingleBackend).

#ifndef METIS_SRC_CORE_HYBRID_ROUTER_H_
#define METIS_SRC_CORE_HYBRID_ROUTER_H_

#include "src/profiler/profiler.h"
#include "src/vectordb/vectordb.h"

namespace metis {

struct HybridBackendWeights {
  float dense = 1.0f;
  float lexical = 0.0f;
};

struct HybridRouterOptions {
  // Off (default): Route() returns the base quality untouched — bit-parity
  // with the dense-only stack.
  bool enabled = false;
  // Per-task-type weight table. Defaults encode the routing intuition the
  // calibrator refines: factual lookups live on exact term matches, semantic
  // questions on the embedding space, temporal/comparative spread evidence.
  HybridBackendWeights factual{0.0f, 1.0f};
  HybridBackendWeights semantic{1.0f, 0.0f};
  HybridBackendWeights temporal{0.5f, 0.5f};
  // Lexical-leaning: in a comparative fusion the lexical list carries ALL the
  // enumerated facts while the dense list carries only the topically-heavy
  // ones, so lexical-only ranks must outvote dense-only junk at equal depth.
  HybridBackendWeights comparative{0.4f, 0.6f};
  // Attach a time-bucket metadata filter to temporal queries whose profile
  // parsed a "period<b>" cue.
  bool use_metadata_filter = true;
};

class HybridRouter {
 public:
  explicit HybridRouter(HybridRouterOptions options) : options_(options) {}

  const HybridRouterOptions& options() const { return options_; }

  // Applies the profile's task-type route to `base` (the scheduler's
  // depth/precision decision, which stays in force for the dense leg).
  // Disabled, or routed pure-dense with no filter: returns `base` untouched.
  RetrievalQuality Route(const QueryProfile& profile, const RetrievalQuality& base) const;

  // The weight row for one task type.
  HybridBackendWeights WeightsFor(QueryTaskType type) const;

  // Overload clamp: collapses a fused quality to its cheapest single backend
  // (the higher-weight one; ties go lexical — postings scans are cheaper than
  // dense row sweeps). Keeps any metadata filter: filters only shrink scans.
  // Non-hybrid qualities pass through unchanged.
  static RetrievalQuality ShedToSingleBackend(const RetrievalQuality& quality);

 private:
  HybridRouterOptions options_;
};

}  // namespace metis

#endif  // METIS_SRC_CORE_HYBRID_ROUTER_H_
