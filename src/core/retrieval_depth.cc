#include "src/core/retrieval_depth.h"

#include <algorithm>

#include "src/common/check.h"

namespace metis {

RetrievalDepthPolicy::RetrievalDepthPolicy(RetrievalDepthPolicyOptions options)
    : options_(options) {
  METIS_CHECK_GE(options_.min_budget, 1u);
  METIS_CHECK_GE(options_.max_budget, options_.min_budget);
}

size_t RetrievalDepthPolicy::BudgetFor(const QueryProfile& profile) const {
  if (profile.confidence < options_.min_confidence) {
    return options_.max_budget;
  }
  long pieces = std::max(profile.num_info_pieces, 1);
  long budget = static_cast<long>(options_.base_probes) +
                static_cast<long>(options_.probes_per_piece) * pieces;
  budget = std::clamp(budget, static_cast<long>(options_.min_budget),
                      static_cast<long>(options_.max_budget));
  return static_cast<size_t>(budget);
}

RetrievalQuality RetrievalDepthPolicy::QualityFor(const QueryProfile& profile) const {
  RetrievalQuality quality;
  quality.mode = options_.adaptive ? RetrievalQuality::ProbeMode::kAdaptive
                                   : RetrievalQuality::ProbeMode::kFixed;
  quality.nprobe = BudgetFor(profile);
  quality.precision = options_.precision;
  quality.rerank_factor = options_.rerank_factor;
  return quality;
}

RetrievalQuality RetrievalDepthPolicy::ClampToBudget(RetrievalQuality quality,
                                                     size_t budget_cap) {
  if (budget_cap == 0) {
    return quality;
  }
  size_t cap = std::max<size_t>(budget_cap, 1);
  if (quality.mode == RetrievalQuality::ProbeMode::kIndexDefault || quality.nprobe == 0) {
    // The index's own default depth is not visible here; shed to exactly the
    // cap (fixed mode) so the clamp is a hard ceiling, not a suggestion.
    quality.mode = RetrievalQuality::ProbeMode::kFixed;
    quality.nprobe = cap;
    return quality;
  }
  quality.nprobe = std::min(quality.nprobe, cap);
  return quality;
}

}  // namespace metis
