#include "src/core/overload.h"

#include <algorithm>

#include "src/common/check.h"

namespace metis {

const char* OverloadLevelName(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kNone:
      return "none";
    case OverloadLevel::kShedDepth:
      return "shed_depth";
    case OverloadLevel::kCheapSynthesis:
      return "cheap_synthesis";
    case OverloadLevel::kShedPrecision:
      return "shed_precision";
    case OverloadLevel::kReject:
      return "reject";
  }
  return "unknown";
}

OverloadController::OverloadController(const LlmEngine* engine,
                                       std::vector<TenantClass> classes,
                                       OverloadOptions options)
    : engine_(engine), classes_(std::move(classes)), options_(options) {
  METIS_CHECK(engine != nullptr);
  METIS_CHECK_GT(options_.queue_depth_ref, 0.0);
  METIS_CHECK_GT(options_.queue_age_ref_s, 0.0);
  METIS_CHECK_GE(options_.cheap_synthesis_at, options_.shed_depth_at);
  METIS_CHECK_GE(options_.shed_precision_at, options_.cheap_synthesis_at);
  METIS_CHECK_GE(options_.reject_at, options_.shed_precision_at);
  METIS_CHECK_GE(options_.backoff_initial, 1u);
  METIS_CHECK_GE(options_.backoff_max, options_.backoff_initial);
  backoff_.resize(std::max<size_t>(classes_.size(), 1));
}

const TenantClass& OverloadController::tenant(int index) const {
  if (index >= 0 && static_cast<size_t>(index) < classes_.size()) {
    return classes_[static_cast<size_t>(index)];
  }
  return default_class_;
}

double OverloadController::Pressure() const {
  double depth_term =
      static_cast<double>(engine_->queue_depth()) / options_.queue_depth_ref;
  double age_term = engine_->oldest_waiting_age() / options_.queue_age_ref_s;
  double deficit = 0;
  double total = engine_->total_kv_bytes();
  if (total > 0) {
    deficit = std::max(0.0, -engine_->projected_free_kv_bytes() / total);
  }
  double pressure = depth_term + age_term + options_.kv_deficit_weight * deficit;
  if (options_.service_ref_s > 0) {
    pressure += service_ewma_ / options_.service_ref_s;
  }
  return pressure;
}

OverloadLevel OverloadController::Assess() {
  double pressure = Pressure();
  OverloadLevel level = OverloadLevel::kNone;
  if (pressure >= options_.reject_at) {
    level = OverloadLevel::kReject;
  } else if (pressure >= options_.shed_precision_at) {
    level = OverloadLevel::kShedPrecision;
  } else if (pressure >= options_.cheap_synthesis_at) {
    level = OverloadLevel::kCheapSynthesis;
  } else if (pressure >= options_.shed_depth_at) {
    level = OverloadLevel::kShedDepth;
  }
  ++stats_.assessments;
  stats_.peak_pressure = std::max(stats_.peak_pressure, pressure);
  stats_.max_level = std::max(stats_.max_level, static_cast<int>(level));
  bool reject_now = level == OverloadLevel::kReject;
  if (in_reject_ && !reject_now) {
    // Recovered: the next reject episode starts its backoff fresh.
    for (Backoff& b : backoff_) {
      b = Backoff{};
    }
  }
  in_reject_ = reject_now;
  return level;
}

bool OverloadController::Admit(int tenant_index, OverloadLevel level) {
  const TenantClass& cls = tenant(tenant_index);
  if (level < OverloadLevel::kReject || cls.priority >= options_.protect_priority) {
    ++stats_.admitted;
    return true;
  }
  size_t slot = 0;
  if (tenant_index >= 0 && static_cast<size_t>(tenant_index) < classes_.size()) {
    slot = static_cast<size_t>(tenant_index);
  }
  Backoff& b = backoff_[slot];
  if (b.countdown > 0) {
    --b.countdown;
    ++stats_.rejected;
    return false;
  }
  // Admit one probe, then back off for a doubling stride: sustained overload
  // converges to a 1-in-backoff_max trickle per class; any recovery (Assess
  // leaving kReject) resets the stride.
  b.stride = b.stride == 0 ? options_.backoff_initial
                           : std::min(b.stride * 2, options_.backoff_max);
  b.countdown = b.stride - 1;
  ++stats_.admitted;
  return true;
}

void OverloadController::ObserveConfidence(double confidence) {
  constexpr double kAlpha = 0.2;
  confidence_ewma_ = (1.0 - kAlpha) * confidence_ewma_ + kAlpha * confidence;
}

void OverloadController::ObserveServiceEstimate(double est_service_s) {
  if (est_service_s <= 0) {
    return;  // MedianOfSpace decisions carry no estimate; don't decay toward 0.
  }
  constexpr double kAlpha = 0.2;
  service_ewma_ = (1.0 - kAlpha) * service_ewma_ + kAlpha * est_service_s;
}

}  // namespace metis
