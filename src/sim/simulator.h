// Discrete-event simulation core.
//
// The whole METIS reproduction runs on a single simulated clock: query
// arrivals, profiler API calls, engine batching steps, and synthesis state
// machines are all events. Time is a double in seconds; the simulation is
// single-threaded and deterministic.

#ifndef METIS_SRC_SIM_SIMULATOR_H_
#define METIS_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace metis {

using SimTime = double;  // Seconds since simulation start.

// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool cancelled() const { return state_ && state_->cancelled; }
  void Cancel() {
    if (state_) {
      state_->cancelled = true;
    }
  }

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

// Event-queue driven simulator.
//
// Ordering guarantee: events fire in (time, sequence-number) order, so two
// events scheduled for the same instant fire in scheduling order. This keeps
// runs reproducible regardless of floating-point ties.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` to run at absolute time `when` (>= now).
  EventHandle ScheduleAt(SimTime when, Callback cb);

  // Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventHandle ScheduleAfter(SimTime delay, Callback cb);

  // Runs events until the queue is empty or the optional horizon is reached.
  // Returns the number of events executed.
  size_t Run(SimTime horizon = -1.0);

  // Runs a single event if one is pending; returns false when idle.
  bool Step();

  bool idle() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback cb;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace metis

#endif  // METIS_SRC_SIM_SIMULATOR_H_
