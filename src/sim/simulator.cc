#include "src/sim/simulator.h"

#include "src/common/check.h"

namespace metis {

EventHandle Simulator::ScheduleAt(SimTime when, Callback cb) {
  METIS_CHECK_GE(when, now_);
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(cb), state});
  return EventHandle(std::move(state));
}

EventHandle Simulator::ScheduleAfter(SimTime delay, Callback cb) {
  METIS_CHECK_GE(delay, 0.0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (e.state && e.state->cancelled) {
      continue;
    }
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
  }
  return false;
}

size_t Simulator::Run(SimTime horizon) {
  size_t n = 0;
  while (!queue_.empty()) {
    if (horizon >= 0 && queue_.top().when > horizon) {
      break;
    }
    if (Step()) {
      ++n;
    }
  }
  return n;
}

}  // namespace metis
