#include "src/workload/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace metis {

DatasetProfile SquadProfile() {
  DatasetProfile p;
  p.name = "squad";
  p.task_type = "Single hop QA";
  p.chunk_tokens = 256;
  p.corpus_filler_chunks = 250;
  p.min_facts = 1;
  p.max_facts = 2;
  p.p_joint_given_multi = 0.25;
  p.p_high_complexity = 0.04;
  p.p_underspecified = 0.05;
  p.hard_negatives_per_fact = 2.0;
  p.answer_tokens_per_fact = 5;
  p.conclusion_tokens = 2;
  p.min_output_tokens = 5;
  p.max_output_tokens = 10;
  p.min_input_tokens = 400;
  p.max_input_tokens = 2000;
  p.metadata_description =
      "reading comprehension passages from encyclopedia articles; each question is answered by "
      "a short span inside one passage";
  p.domain = "wiki";
  return p;
}

DatasetProfile MusiqueProfile() {
  DatasetProfile p;
  p.name = "musique";
  p.task_type = "Multihop QA";
  p.chunk_tokens = 256;
  p.corpus_filler_chunks = 300;
  p.min_facts = 1;  // Some hops decompose to a single lookup (paper's Q1).
  p.max_facts = 4;
  p.p_joint_given_multi = 0.95;
  p.p_high_complexity = 0.35;
  p.p_underspecified = 0.10;
  p.hard_negatives_per_fact = 1.2;
  p.answer_tokens_per_fact = 4;
  p.conclusion_tokens = 4;
  p.min_output_tokens = 5;
  p.max_output_tokens = 20;
  p.min_input_tokens = 1000;
  p.max_input_tokens = 5000;
  p.metadata_description =
      "multihop reasoning questions over encyclopedia passages; answers require composing "
      "information from several passages";
  p.domain = "wiki";
  return p;
}

DatasetProfile FinSecProfile() {
  DatasetProfile p;
  p.name = "kg_rag_finsec";
  p.task_type = "Doc Level QA";
  p.chunk_tokens = 1024;
  p.corpus_filler_chunks = 150;
  p.min_facts = 3;
  p.max_facts = 8;
  p.p_joint_given_multi = 0.9;
  p.p_high_complexity = 0.45;
  p.p_underspecified = 0.15;
  p.hard_negatives_per_fact = 0.8;
  p.answer_tokens_per_fact = 4;
  p.conclusion_tokens = 6;
  p.min_output_tokens = 20;
  p.max_output_tokens = 40;
  p.min_input_tokens = 4000;
  p.max_input_tokens = 10000;
  p.metadata_description =
      "quarterly financial reports of Fortune 500 companies: revenue growth indicators, product "
      "release information, sales and operating costs";
  p.domain = "finance";
  return p;
}

DatasetProfile QmsumProfile() {
  DatasetProfile p;
  p.name = "qmsum";
  p.task_type = "Summarization QA";
  p.chunk_tokens = 512;
  p.corpus_filler_chunks = 200;
  p.min_facts = 4;
  p.max_facts = 10;
  p.p_joint_given_multi = 1.0;
  p.p_high_complexity = 0.65;
  p.p_underspecified = 0.18;
  p.hard_negatives_per_fact = 0.7;
  p.answer_tokens_per_fact = 5;
  p.conclusion_tokens = 8;
  p.min_output_tokens = 20;
  p.max_output_tokens = 60;
  p.min_input_tokens = 4000;
  p.max_input_tokens = 12000;
  p.metadata_description =
      "multi-domain meeting transcripts with per-speaker turns; queries ask for query-focused "
      "summaries of relevant meeting spans, decisions and reasons";
  p.domain = "meetings";
  return p;
}

const std::vector<DatasetProfile>& AllDatasetProfiles() {
  static const std::vector<DatasetProfile> kAll = {SquadProfile(), MusiqueProfile(),
                                                   FinSecProfile(), QmsumProfile()};
  return kAll;
}

DatasetProfile MusiqueTopicalProfile() {
  // Musique with the clustered embedding geometry real passage collections
  // have: most non-fact tokens come from the chunk's topic pool, so chunks
  // concentrate around their topics in embedding space and IVF lists align
  // with topics. Single-lookup queries then resolve inside one or two lists
  // while scattered-evidence multihop queries straddle several — the
  // per-query retrieval-depth workload (bench_fig_depth, depth tests). Not
  // part of AllDatasetProfiles(): the paper's Table-1 sweeps stay on the
  // four stock datasets.
  DatasetProfile p = MusiqueProfile();
  p.name = "musique_topical";
  p.topic_fraction = 0.85;
  return p;
}

DatasetProfile GetDatasetProfile(const std::string& name) {
  // Generic "<dataset>_topical": the base profile with the clustered
  // embedding geometry (topic_fraction as in MusiqueTopicalProfile, which
  // this branch reproduces for "musique_topical"). Gives every evaluation
  // dataset a retrieval-depth-sensitive variant — the mixed
  // per-dataset-depth experiments (bench_fig_mixed_depth) run on these.
  const std::string suffix = "_topical";
  if (name.size() > suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    DatasetProfile p = GetDatasetProfile(name.substr(0, name.size() - suffix.size()));
    p.name = name;
    p.topic_fraction = 0.85;
    return p;
  }
  // Generic "<dataset>_hybrid": the base profile with the task-type-rotated
  // hybrid-retrieval evaluation workload (DatasetProfile::hybrid_eval).
  const std::string hybrid_suffix = "_hybrid";
  if (name.size() > hybrid_suffix.size() &&
      name.compare(name.size() - hybrid_suffix.size(), hybrid_suffix.size(),
                   hybrid_suffix) == 0) {
    DatasetProfile p =
        GetDatasetProfile(name.substr(0, name.size() - hybrid_suffix.size()));
    p.name = name;
    p.hybrid_eval = true;
    return p;
  }
  for (const auto& p : AllDatasetProfiles()) {
    if (p.name == name) {
      return p;
    }
  }
  METIS_CHECK(false && "unknown dataset");
  std::abort();
}

Dataset::Dataset(DatasetProfile profile, std::unique_ptr<VectorDatabase> db,
                 std::vector<RagQuery> queries, std::unordered_map<int32_t, Fact> facts)
    : profile_(std::move(profile)),
      db_(std::move(db)),
      queries_(std::move(queries)),
      facts_(std::move(facts)) {}

const Fact& Dataset::fact(int32_t id) const {
  auto it = facts_.find(id);
  METIS_CHECK(it != facts_.end());
  return it->second;
}

DatasetGenerator::DatasetGenerator(DatasetProfile profile, uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

namespace {

constexpr const char* kNumberWords[] = {"zero", "one", "two",   "three", "four", "five",
                                        "six",  "seven", "eight", "nine",  "ten"};

constexpr const char* kRelations[] = {"revenue",  "location", "origin",   "duration",
                                      "capacity", "founder",  "schedule", "outcome"};

// Generates a globally-unique lowercase word by retrying against `seen`.
std::string UniqueWord(Rng& rng, std::unordered_set<std::string>& seen) {
  for (;;) {
    std::string w = MakeWord(rng);
    if (seen.insert(w).second) {
      return w;
    }
  }
}

// One sentence stating a fact: entities + relation + answer tokens. No
// function words: they would be shared with every query template and smear
// the retrieval signal across unrelated chunks.
std::string FactSentence(const Fact& fact, const std::string& relation) {
  std::vector<std::string> words;
  for (const auto& e : fact.entity_words) {
    words.push_back(e);
  }
  words.push_back(relation);
  for (const auto& a : fact.answer_tokens) {
    words.push_back(a);
  }
  return Join(words, " ");
}

struct PendingChunk {
  std::vector<int32_t> fact_ids;
  std::vector<std::string> topic_words;  // Recur through the filler.
};

}  // namespace

std::unique_ptr<Dataset> DatasetGenerator::Generate(int num_queries,
                                                    const std::string& embedding_model_name,
                                                    const RetrievalIndexOptions& index_options) {
  // Zero queries is a valid degenerate corpus (filler chunks only) — the
  // ingest-only runner specs use it to measure pure write paths.
  METIS_CHECK_GE(num_queries, 0);
  Rng root(seed_ ^ HashString64(profile_.name));
  Rng structure = root.Fork("structure");
  Rng words = root.Fork("words");
  Rng textgen = root.Fork("textgen");

  Vocabulary filler_vocab(root.Fork("vocab").seed(), 1800);
  std::unordered_set<std::string> unique_words;

  std::vector<RagQuery> queries;
  std::unordered_map<int32_t, Fact> facts;
  int32_t next_fact_id = 0;

  // Chunks to assemble, with the doc structure that owns them.
  std::vector<PendingChunk> pending;
  std::vector<int32_t> chunk_doc;  // Parallel doc ids for debugging.
  std::vector<int32_t> doc_bucket;  // Per-doc time-bucket override (-1 = doc_id % buckets).
  int32_t next_doc = 0;
  const int time_buckets = std::max(1, profile_.num_time_buckets);

  for (int32_t qid = 0; qid < num_queries; ++qid) {
    RagQuery q;
    q.id = qid;
    q.num_facts = static_cast<int>(structure.UniformInt(profile_.min_facts, profile_.max_facts));
    q.requires_joint =
        q.num_facts > 1 && structure.Bernoulli(profile_.p_joint_given_multi);
    double p_high = profile_.p_high_complexity * (q.requires_joint ? 1.0 : 0.3);
    q.high_complexity = structure.Bernoulli(p_high);
    q.underspecified = structure.Bernoulli(profile_.p_underspecified);

    // --- Hybrid-eval task rotation (only "<dataset>_hybrid" profiles; stock
    // profiles never take these branches, so their generation streams are
    // bit-identical to the pre-hybrid generator) ---
    //   qid % 4: 0 factual, 1 semantic, 2 temporal, 3 comparative.
    // The flag overrides below pick the query template carrying that type's
    // classifier cue (profiler.h ClassifyTaskType).
    const int hybrid_kind = profile_.hybrid_eval ? static_cast<int>(qid % 4) : -1;
    const int hybrid_bucket = hybrid_kind == 2 ? static_cast<int>(qid) % time_buckets : -1;
    if (hybrid_kind >= 0) {
      q.underspecified = false;
      switch (hybrid_kind) {
        case 0:  // factual: "what is the ..."
          q.num_facts = 1;
          q.requires_joint = false;
          q.high_complexity = false;
          break;
        case 1:  // semantic: "why did ... explain ..."
          q.num_facts = 1;
          q.requires_joint = false;
          q.high_complexity = true;
          break;
        case 2:  // temporal: "when and why ..." + " in period<b>" suffix
          q.num_facts = 1;
          q.requires_joint = true;
          q.high_complexity = true;
          break;
        case 3:  // comparative: "compare the ..."
          q.num_facts = std::max(2, q.num_facts);
          q.requires_joint = true;
          q.high_complexity = false;
          break;
      }
    }

    // --- Facts ---
    std::string relation = kRelations[structure.Index(std::size(kRelations))];
    std::vector<Fact*> gold_facts;
    for (int f = 0; f < q.num_facts; ++f) {
      Fact fact;
      fact.id = next_fact_id++;
      fact.query_id = qid;
      fact.gold = true;
      int entity_n = static_cast<int>(structure.UniformInt(2, 3));
      if (hybrid_kind == 0) {
        // Factual: three rare entity terms give BM25 a decisive multi-term
        // match over the single-shared-term distractors below.
        entity_n = 3;
      }
      for (int e = 0; e < entity_n; ++e) {
        fact.entity_words.push_back(UniqueWord(words, unique_words));
      }
      int answer_n = profile_.answer_tokens_per_fact +
                     static_cast<int>(structure.UniformInt(-1, 1));
      answer_n = std::max(answer_n, 2);
      for (int a = 0; a < answer_n; ++a) {
        fact.answer_tokens.push_back(UniqueWord(words, unique_words));
      }
      fact.sentence = FactSentence(fact, relation);
      q.gold_fact_ids.push_back(fact.id);
      facts[fact.id] = std::move(fact);
      gold_facts.push_back(&facts[q.gold_fact_ids.back()]);
    }

    // --- Gold answer tokens ---
    for (const Fact* f : gold_facts) {
      for (const auto& t : f->answer_tokens) {
        q.gold_answer_tokens.push_back(t);
      }
    }
    if (q.requires_joint && profile_.conclusion_tokens > 0) {
      for (int c = 0; c < profile_.conclusion_tokens; ++c) {
        q.conclusion_tokens.push_back(UniqueWord(words, unique_words));
      }
      for (const auto& t : q.conclusion_tokens) {
        q.gold_answer_tokens.push_back(t);
      }
    }
    q.target_output_tokens = std::clamp(static_cast<int>(q.gold_answer_tokens.size()),
                                        profile_.min_output_tokens, profile_.max_output_tokens);
    q.ideal_summary_tokens =
        std::clamp(30 + 10 * q.num_facts + (q.high_complexity ? 60 : 0), 30, 200);

    // --- Document layout: relevant-context footprint per Table 1 ---
    int input_tokens = static_cast<int>(
        structure.UniformInt(profile_.min_input_tokens, profile_.max_input_tokens));
    int doc_chunks = std::max(q.num_facts, input_tokens / profile_.chunk_tokens);
    std::vector<std::string> doc_topic;
    for (int t = 0; t < 4; ++t) {
      doc_topic.push_back(UniqueWord(words, unique_words));
    }

    // Gold facts occupy distinct chunks (multi-hop) except single-hop
    // multi-fact queries, which co-locate facts in one chunk.
    bool colocate = !q.requires_joint && q.num_facts > 1;
    std::vector<PendingChunk> doc(static_cast<size_t>(doc_chunks));
    for (auto& c : doc) {
      c.topic_words = doc_topic;
    }
    for (size_t f = 0; f < q.gold_fact_ids.size(); ++f) {
      size_t slot = colocate ? 0 : f % doc.size();
      doc[slot].fact_ids.push_back(q.gold_fact_ids[f]);
      Fact& fact = facts[q.gold_fact_ids[f]];
      // Entity words dominate the owning chunk's topic pool (a report section
      // keeps naming its subject), which is what retrieval keys on. Tripled so
      // the entity signal stands clear of hashed-projection noise.
      // Hybrid exceptions: factual golds (and the odd-indexed comparative
      // golds) keep their entities at tf 1 — the fact sentence only — so the
      // dense hashed-BoW signal stays weak there and only the lexical
      // backend's rare-term idf recovers them.
      bool recur = true;
      if (hybrid_kind == 0 || (hybrid_kind == 3 && f % 2 == 1)) {
        recur = false;
      }
      if (recur) {
        for (const auto& e : fact.entity_words) {
          doc[slot].topic_words.push_back(e);
          doc[slot].topic_words.push_back(e);
          doc[slot].topic_words.push_back(e);
        }
      }
    }

    // Hard negatives: same-topic facts with wrong answers, placed in the
    // remaining doc chunks. They share one entity word with a gold fact, so
    // they rank close behind the gold chunks in retrieval.
    int hard_n = static_cast<int>(profile_.hard_negatives_per_fact * q.num_facts + 0.5);
    if (hybrid_kind == 0) {
      hard_n = std::max(hard_n, 2);  // Factual needs real dense competition.
    } else if (hybrid_kind == 2) {
      hard_n = 0;  // Temporal: the off-bucket decoy doc below is the distractor.
    }
    for (int h = 0; h < hard_n; ++h) {
      Fact neg;
      neg.id = next_fact_id++;
      neg.query_id = qid;
      neg.gold = false;
      const Fact& src = facts[q.gold_fact_ids[static_cast<size_t>(h) % q.gold_fact_ids.size()]];
      // Shares the source fact's entity anchor (both words), so it competes
      // head-on with the gold chunk in retrieval — the distractor pattern that
      // makes over-fetching necessary (§4.2's 2-3x rule).
      // Hybrid shapes: factual/comparative distractors share only ONE entity
      // word (they must recur hard enough to beat the tf-1 gold in the dense
      // space while matching just 1 of 3 rare query terms in BM25); semantic
      // distractors share the full entity anchor but at recurrence 1, so the
      // gold chunk's tripled topic mass wins both backends.
      if (hybrid_kind == 0 || hybrid_kind == 3) {
        neg.entity_words.push_back(src.entity_words[0]);
        neg.entity_words.push_back(UniqueWord(words, unique_words));
        neg.entity_words.push_back(UniqueWord(words, unique_words));
      } else if (hybrid_kind == 1) {
        neg.entity_words.push_back(src.entity_words[1]);
        neg.entity_words.push_back(src.entity_words[0]);
        neg.entity_words.push_back(UniqueWord(words, unique_words));
      } else {
        neg.entity_words.push_back(src.entity_words[0]);
        neg.entity_words.push_back(src.entity_words[1]);
        neg.entity_words.push_back(UniqueWord(words, unique_words));
      }
      for (int a = 0; a < profile_.answer_tokens_per_fact; ++a) {
        neg.answer_tokens.push_back(UniqueWord(words, unique_words));
      }
      neg.sentence = FactSentence(neg, relation);
      size_t slot = doc.size() > 1
                        ? 1 + static_cast<size_t>(h) % (doc.size() - 1)
                        : 0;
      doc[slot].fact_ids.push_back(neg.id);
      // Distractor strength varies: recurrence 2..4 against the gold chunk's
      // 3, so some negatives outrank the gold. This is what makes the right
      // retrieval width query-dependent — the variance a static num_chunks
      // cannot serve (§3).
      int reps = 2 + h % 3;
      if (hybrid_kind == 1) {
        reps = 1;  // Semantic golds must win the dense space decisively.
      } else if (hybrid_kind == 3) {
        reps = 2;  // Comparative: distractors stay below the even golds' 3.
      }
      for (const auto& e : neg.entity_words) {
        for (int r = 0; r < reps; ++r) {
          doc[slot].topic_words.push_back(e);
        }
      }
      facts[neg.id] = std::move(neg);
    }

    for (auto& c : doc) {
      pending.push_back(std::move(c));
      chunk_doc.push_back(next_doc);
    }
    ++next_doc;
    doc_bucket.push_back(hybrid_bucket);

    if (hybrid_kind == 2) {
      // Temporal decoy: the SAME entity anchor as the gold fact at strictly
      // higher pool recurrence (5 vs 3), in its own doc assigned the NEXT
      // time bucket. Both text backends rank it above the gold chunk —
      // linear-tf dense and saturating-tf BM25 are both monotone in tf — so
      // only the router's time-bucket metadata filter recovers the gold.
      const Fact& src = facts[q.gold_fact_ids[0]];
      Fact decoy;
      decoy.id = next_fact_id++;
      decoy.query_id = qid;
      decoy.gold = false;
      decoy.entity_words = src.entity_words;
      for (int a = 0; a < profile_.answer_tokens_per_fact; ++a) {
        decoy.answer_tokens.push_back(UniqueWord(words, unique_words));
      }
      decoy.sentence = FactSentence(decoy, relation);
      PendingChunk dc;
      dc.fact_ids.push_back(decoy.id);
      for (int t = 0; t < 4; ++t) {
        dc.topic_words.push_back(UniqueWord(words, unique_words));
      }
      for (const auto& e : decoy.entity_words) {
        for (int r = 0; r < 5; ++r) {
          dc.topic_words.push_back(e);
        }
      }
      facts[decoy.id] = std::move(decoy);
      pending.push_back(std::move(dc));
      chunk_doc.push_back(next_doc);
      ++next_doc;
      doc_bucket.push_back((hybrid_bucket + 1) % time_buckets);
    }

    // --- Query text (the only thing the LLM profiler may read) ---
    std::vector<std::string> entity_phrases;
    for (const Fact* f : gold_facts) {
      entity_phrases.push_back(Join(f->entity_words, " "));
    }
    std::string enumeration;
    if (q.underspecified) {
      enumeration = "the recent " + relation + " records of " + entity_phrases[0];
    } else if (entity_phrases.size() == 1) {
      enumeration = entity_phrases[0];
    } else {
      std::vector<std::string> head(entity_phrases.begin(), entity_phrases.end() - 1);
      enumeration = Join(head, ", ") + " and " + entity_phrases.back();
      // An explicit count cue, like "the three quarters of 2024".
      if (entity_phrases.size() < std::size(kNumberWords)) {
        enumeration = StrFormat("the %s values of ", kNumberWords[entity_phrases.size()]) +
                      enumeration;
      }
    }

    if (!q.requires_joint && !q.high_complexity) {
      q.text = StrFormat("what is the %s of %s?", relation.c_str(), enumeration.c_str());
    } else if (!q.requires_joint && q.high_complexity) {
      q.text = StrFormat("why did the %s of %s change? explain the main reason.",
                         relation.c_str(), enumeration.c_str());
    } else if (q.requires_joint && !q.high_complexity) {
      q.text = StrFormat("compare the %s across %s and identify the highest one.",
                         relation.c_str(), enumeration.c_str());
    } else if (profile_.domain == "meetings") {
      q.text = StrFormat(
          "summarize the discussion of %s regarding %s, including why each decision was made.",
          enumeration.c_str(), relation.c_str());
    } else {
      q.text = StrFormat(
          "when and why did the %s of %s change? summarize the reasons for each shift.",
          relation.c_str(), enumeration.c_str());
    }
    if (hybrid_kind == 2) {
      // "periodN" survives tokenization as one alphanumeric token; the
      // profiler parses it into QueryProfile::time_bucket (ClassifyTaskType)
      // and the router turns it into a metadata filter.
      q.text += StrFormat(" in period%d", hybrid_bucket);
    }

    queries.push_back(std::move(q));
  }

  // --- Pure filler chunks (background corpus noise) ---
  for (int f = 0; f < profile_.corpus_filler_chunks; ++f) {
    PendingChunk c;
    for (int t = 0; t < 5; ++t) {
      c.topic_words.push_back(UniqueWord(words, unique_words));
    }
    pending.push_back(std::move(c));
    chunk_doc.push_back(next_doc);
  }
  ++next_doc;
  doc_bucket.push_back(-1);

  // --- Assemble chunk text and build the vector database ---
  DatabaseMetadata meta;
  meta.description = StrFormat("The dataset consists of %s. The chunk size is %d tokens.",
                               profile_.metadata_description.c_str(), profile_.chunk_tokens);
  meta.chunk_size_tokens = profile_.chunk_tokens;
  meta.domain = profile_.domain;

  auto db = std::make_unique<VectorDatabase>(
      EmbeddingModel(GetEmbeddingModel(embedding_model_name)), meta, index_options);

  std::vector<Chunk> chunk_objs;
  chunk_objs.reserve(pending.size());
  for (size_t ci = 0; ci < pending.size(); ++ci) {
    PendingChunk& pc = pending[ci];
    // Build the chunk as a token stream: topic-seasoned filler with fact
    // sentences spliced in at deterministic positions.
    std::vector<std::string> tokens;
    tokens.reserve(static_cast<size_t>(profile_.chunk_tokens));

    // Compute where each fact sentence starts (evenly spread with jitter).
    struct Placement {
      int32_t fact_id;
      int offset;
    };
    std::vector<Placement> placements;
    int region = profile_.chunk_tokens / std::max<int>(1, static_cast<int>(pc.fact_ids.size()));
    for (size_t f = 0; f < pc.fact_ids.size(); ++f) {
      int base = static_cast<int>(f) * region;
      int jitter = static_cast<int>(textgen.UniformInt(0, std::max(1, region / 3)));
      placements.push_back(Placement{pc.fact_ids[f], base + jitter});
    }

    size_t next_fact = 0;
    while (static_cast<int>(tokens.size()) < profile_.chunk_tokens) {
      if (next_fact < placements.size() &&
          static_cast<int>(tokens.size()) >= placements[next_fact].offset) {
        Fact& fact = facts[placements[next_fact].fact_id];
        fact.offset_tokens = static_cast<int>(tokens.size());
        for (const auto& w : SplitWords(fact.sentence)) {
          tokens.push_back(w);
        }
        ++next_fact;
        continue;
      }
      // Topic word topic_fraction (default ~35%) of the time, global filler
      // otherwise. Filler is drawn uniformly: with sublinear-TF embeddings, a
      // Zipf head would otherwise give every chunk a large shared component
      // and drown the topic signal.
      if (!pc.topic_words.empty() && textgen.Bernoulli(profile_.topic_fraction)) {
        tokens.push_back(pc.topic_words[textgen.Index(pc.topic_words.size())]);
      } else {
        tokens.push_back(filler_vocab.word(textgen.Index(filler_vocab.size())));
      }
    }
    tokens.resize(static_cast<size_t>(profile_.chunk_tokens));

    Chunk chunk;
    chunk.doc_id = chunk_doc[ci];
    chunk.text = Join(tokens, " ");
    chunk.token_count = profile_.chunk_tokens;
    chunk.fact_ids = pc.fact_ids;
    // Typed attributes, assigned RNG-free for every dataset (metadata-filter
    // push-down keys on them; stock generation streams are untouched):
    // source rotates by document, time_bucket follows the document (with the
    // per-doc override the temporal hybrid construction sets), section is the
    // chunk's ordinal within its document.
    chunk.source = chunk.doc_id % std::max(1, profile_.num_sources);
    int32_t override_bucket = chunk.doc_id < static_cast<int32_t>(doc_bucket.size())
                                  ? doc_bucket[static_cast<size_t>(chunk.doc_id)]
                                  : -1;
    chunk.time_bucket =
        override_bucket >= 0 ? override_bucket : chunk.doc_id % time_buckets;
    chunk.section = (ci > 0 && chunk_doc[ci] == chunk_doc[ci - 1])
                        ? chunk_objs.back().section + 1
                        : 0;
    chunk_objs.push_back(std::move(chunk));
  }

  // Bulk load: one EmbedBatch over the whole corpus (sharded across the
  // pool), then finalize the index — for the IVF backend this trains the
  // coarse quantizer, so retrieval-depth experiments get a ready index.
  ThreadPool pool(ThreadPool::DefaultThreads());
  std::vector<ChunkId> chunk_ids = db->AddChunks(std::move(chunk_objs), &pool);
  METIS_CHECK_EQ(chunk_ids.size(), pending.size());
  for (size_t ci = 0; ci < pending.size(); ++ci) {
    for (int32_t fid : pending[ci].fact_ids) {
      facts[fid].chunk_id = chunk_ids[ci];
    }
  }
  db->FinalizeIndex(&pool);

  return std::make_unique<Dataset>(profile_, std::move(db), std::move(queries),
                                   std::move(facts));
}

std::vector<SimTime> PoissonArrivalTimes(Rng& rng, int n, double rate) {
  METIS_CHECK_GT(rate, 0.0);
  std::vector<SimTime> times;
  times.reserve(static_cast<size_t>(n));
  SimTime t = 0;
  for (int i = 0; i < n; ++i) {
    t += rng.Exponential(rate);
    times.push_back(t);
  }
  return times;
}

void AssignPoissonArrivals(std::vector<RagQuery>& queries, double rate, uint64_t seed) {
  Rng rng(seed ^ 0x41525256ull);
  std::vector<SimTime> times = PoissonArrivalTimes(rng, static_cast<int>(queries.size()), rate);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].arrival_time = times[i];
  }
}

void AssignSequentialArrivals(std::vector<RagQuery>& queries) {
  for (auto& q : queries) {
    q.arrival_time = 0;
  }
}

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kFlashCrowd:
      return "flash_crowd";
  }
  return "unknown";
}

namespace {

// Two-state MMPP: alternate exponential on/off periods; within each period
// arrivals are Poisson at that state's rate. The off-rate solves
// f * on + (1 - f) * off = rate so the long-run mean is preserved (clamped at
// 0 when the burst carries more than the whole mean).
std::vector<SimTime> BurstyArrivalTimes(const ArrivalProcess& p, Rng& rng, int n, double rate) {
  METIS_CHECK_GT(p.burst_factor, 1.0);
  METIS_CHECK_GT(p.burst_fraction, 0.0);
  METIS_CHECK_LT(p.burst_fraction, 1.0);
  METIS_CHECK_GT(p.mean_cycle_s, 0.0);
  double on_rate = rate * p.burst_factor;
  double off_rate =
      std::max(0.0, rate * (1.0 - p.burst_fraction * p.burst_factor) / (1.0 - p.burst_fraction));
  double mean_on_s = p.burst_fraction * p.mean_cycle_s;
  double mean_off_s = (1.0 - p.burst_fraction) * p.mean_cycle_s;

  std::vector<SimTime> times;
  times.reserve(static_cast<size_t>(n));
  SimTime t = 0;
  bool on = true;  // Start in a burst so short traces still exercise one.
  SimTime state_end = rng.Exponential(1.0 / mean_on_s);
  while (static_cast<int>(times.size()) < n) {
    double state_rate = on ? on_rate : off_rate;
    // state_rate can be 0 (all-burst mean): the off state then only advances
    // the clock to the next burst.
    SimTime next = state_rate > 0 ? t + rng.Exponential(state_rate)
                                  : std::numeric_limits<SimTime>::infinity();
    if (next <= state_end) {
      t = next;
      times.push_back(t);
    } else {
      t = state_end;
      on = !on;
      state_end = t + rng.Exponential(1.0 / (on ? mean_on_s : mean_off_s));
    }
  }
  return times;
}

// Nonhomogeneous Poisson via Lewis-Shedler thinning: candidates at the peak
// rate, accepted with probability rate(t) / peak. One uniform is consumed per
// candidate, so the stream is a pure function of the Rng state.
template <typename RateFn>
std::vector<SimTime> ThinnedArrivalTimes(Rng& rng, int n, double peak_rate, RateFn rate_at) {
  METIS_CHECK_GT(peak_rate, 0.0);
  std::vector<SimTime> times;
  times.reserve(static_cast<size_t>(n));
  SimTime t = 0;
  while (static_cast<int>(times.size()) < n) {
    t += rng.Exponential(peak_rate);
    if (rng.NextDouble() * peak_rate < rate_at(t)) {
      times.push_back(t);
    }
  }
  return times;
}

}  // namespace

std::vector<SimTime> ArrivalTimesFor(const ArrivalProcess& process, Rng& rng, int n,
                                     double rate) {
  METIS_CHECK_GT(rate, 0.0);
  switch (process.kind) {
    case ArrivalKind::kPoisson:
      return PoissonArrivalTimes(rng, n, rate);
    case ArrivalKind::kBursty:
      return BurstyArrivalTimes(process, rng, n, rate);
    case ArrivalKind::kDiurnal: {
      METIS_CHECK_GE(process.diurnal_amplitude, 0.0);
      METIS_CHECK_LE(process.diurnal_amplitude, 1.0);
      METIS_CHECK_GT(process.diurnal_period_s, 0.0);
      double amplitude = process.diurnal_amplitude;
      double omega = 2.0 * 3.141592653589793 / process.diurnal_period_s;
      return ThinnedArrivalTimes(rng, n, rate * (1.0 + amplitude), [&](SimTime t) {
        return rate * (1.0 + amplitude * std::sin(omega * t));
      });
    }
    case ArrivalKind::kFlashCrowd: {
      METIS_CHECK_GT(process.flash_factor, 1.0);
      METIS_CHECK_GT(process.flash_duration_s, 0.0);
      double start = process.flash_start_s;
      double end = process.flash_start_s + process.flash_duration_s;
      return ThinnedArrivalTimes(rng, n, rate * process.flash_factor, [&](SimTime t) {
        return t >= start && t < end ? rate * process.flash_factor : rate;
      });
    }
  }
  return PoissonArrivalTimes(rng, n, rate);
}

void AssignArrivals(std::vector<RagQuery>& queries, const ArrivalProcess& process, double rate,
                    uint64_t seed) {
  // Same stream derivation as AssignPoissonArrivals, so kPoisson (the stock
  // spec) replays the historical arrival times bit for bit.
  Rng rng(seed ^ 0x41525256ull);
  std::vector<SimTime> times =
      ArrivalTimesFor(process, rng, static_cast<int>(queries.size()), rate);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].arrival_time = times[i];
  }
}

}  // namespace metis
