// Synthetic RAG-QA dataset generators.
//
// The paper evaluates on Squad (single-hop), Musique (multi-hop reasoning),
// KG RAG FinSec (document-level financial QA) and QMSUM (query-based meeting
// summarization). Those corpora cannot ship with this repo, so each dataset is
// regenerated synthetically with the properties the system actually consumes:
//
//   - Table-1 token statistics (chunk size, relevant-input size, output size),
//   - query *profiles*: how many standalone facts a query needs, whether they
//     must be reasoned over jointly, and how complex the question is,
//   - a corpus in which each gold fact lives in a topically-coherent chunk,
//     flanked by hard-negative chunks that share entity vocabulary (so
//     retrieval is good-but-imperfect, and over-retrieving drags noise in),
//   - natural-language query text whose phrasing carries the complexity cues
//     an LLM profiler reads ("why", "compare", "the three quarters", ...),
//   - exact gold answers for token-F1 scoring.

#ifndef METIS_SRC_WORKLOAD_DATASET_H_
#define METIS_SRC_WORKLOAD_DATASET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/vectordb/vectordb.h"

namespace metis {

// Knowledge atom: a statement placed into exactly one chunk.
struct Fact {
  int32_t id = -1;
  int32_t query_id = -1;  // Owning query for gold facts; owner for hard
                          // negatives too (they imitate that query's topic).
  bool gold = false;      // True: part of its query's answer.
  std::vector<std::string> entity_words;
  std::vector<std::string> answer_tokens;
  std::string sentence;
  ChunkId chunk_id = -1;
  int offset_tokens = 0;  // Token offset of the sentence inside its chunk.
};

struct RagQuery {
  int32_t id = -1;
  std::string text;
  std::vector<int32_t> gold_fact_ids;
  // Gold answer = all gold facts' tokens + conclusion tokens (joint queries).
  std::vector<std::string> gold_answer_tokens;
  std::vector<std::string> conclusion_tokens;

  // Ground-truth profile (used by evaluation and the oracle; the LLM profiler
  // must work from `text` + database metadata alone).
  bool requires_joint = false;
  bool high_complexity = false;
  int num_facts = 1;
  int ideal_summary_tokens = 40;
  int target_output_tokens = 16;
  // True when the text omits explicit quantity cues; profilers struggle here.
  bool underspecified = false;

  SimTime arrival_time = 0;  // Filled by the arrival process.
  // Tenant-class index (RunSpec::tenants) this query arrives under; assigned
  // by the runner's deterministic tenant stream. 0 when no classes are
  // configured — the single-anonymous-tenant behaviour.
  int tenant = 0;
};

struct DatasetProfile {
  std::string name;
  std::string task_type;
  int chunk_tokens = 256;
  int corpus_filler_chunks = 200;  // Pure-noise chunks on top of query chunks.
  // Query structure.
  int min_facts = 1;
  int max_facts = 1;
  double p_joint_given_multi = 1.0;   // P(joint reasoning | >1 fact).
  double p_high_complexity = 0.1;
  double p_underspecified = 0.08;
  double hard_negatives_per_fact = 1.0;
  int answer_tokens_per_fact = 4;
  int conclusion_tokens = 0;          // Extra answer tokens for joint queries.
  // Fraction of non-fact chunk tokens drawn from the chunk's topic pool
  // (entity + document words) rather than the globally shared filler vocab.
  // Controls the corpus's embedding-space geometry: at the 0.35 default the
  // shared filler dominates and chunk embeddings form one diffuse mass (IVF
  // lists carry little topical meaning); raising it concentrates chunks
  // around their topics, giving the corpus the clustered geometry real
  // document collections have — which is what makes per-query retrieval
  // depth matter (RAGGED: scattered-evidence queries need deeper scans).
  double topic_fraction = 0.35;
  // --- Hybrid-retrieval evaluation (hybrid_router.h) ---
  // hybrid_eval (set by the "<dataset>_hybrid" name suffix) rotates queries
  // through the four QueryTaskTypes (qid % 4) with per-type corpus
  // constructions that decorrelate the dense and lexical backends: factual
  // queries are won by exact rare-term matches (gold entities stay at tf 1,
  // distractors recur), semantic queries by embedding mass (gold topics
  // recur, distractors don't), temporal queries only by the time-bucket
  // metadata filter (an off-bucket decoy outranks the gold chunk in BOTH
  // text backends), and comparative queries by fusing the two lists. Stock
  // profiles never enter these branches, so their generation streams are
  // bit-identical to the pre-hybrid generator.
  bool hybrid_eval = false;
  // Typed chunk-attribute spaces (Chunk::source / time_bucket / section are
  // assigned RNG-free for EVERY dataset; these only size the value spaces).
  int num_sources = 4;
  int num_time_buckets = 4;
  // Table-1 statistics.
  int min_output_tokens = 5;
  int max_output_tokens = 10;
  int min_input_tokens = 400;         // Relevant-context footprint.
  int max_input_tokens = 2000;
  // Database metadata string shown to the profiler (paper §A.1).
  std::string metadata_description;
  std::string domain;
};

// The four evaluation datasets (paper §7.1, Table 1).
DatasetProfile SquadProfile();
DatasetProfile MusiqueProfile();
DatasetProfile FinSecProfile();
DatasetProfile QmsumProfile();
// Musique with topically-clustered embedding geometry (high topic_fraction)
// — the retrieval-depth workload. Resolvable by name ("musique_topical") but
// not part of AllDatasetProfiles().
DatasetProfile MusiqueTopicalProfile();
const std::vector<DatasetProfile>& AllDatasetProfiles();
// Resolves a profile by name. Besides the stock names, any "<dataset>_topical"
// resolves to the base profile with the clustered embedding geometry
// (topic_fraction = 0.85, as MusiqueTopicalProfile) — the
// retrieval-depth-sensitive variants the mixed depth experiments run on —
// and any "<dataset>_hybrid" to the base profile with hybrid_eval set (the
// task-type-rotated hybrid-retrieval workload bench_fig_hybrid runs on).
DatasetProfile GetDatasetProfile(const std::string& name);

// A generated dataset: retrieval DB + queries + fact registry.
class Dataset {
 public:
  Dataset(DatasetProfile profile, std::unique_ptr<VectorDatabase> db,
          std::vector<RagQuery> queries, std::unordered_map<int32_t, Fact> facts);

  const DatasetProfile& profile() const { return profile_; }
  const VectorDatabase& db() const { return *db_; }
  // Mutable database access for live-ingest runs (insert/delete streams over
  // a mutable_index backend). Such runs hold a PRIVATE Dataset instance — the
  // runner bypasses the shared dataset cache whenever the spec can mutate the
  // database, so cached corpora stay immutable.
  VectorDatabase& mutable_db() { return *db_; }
  const std::vector<RagQuery>& queries() const { return queries_; }
  std::vector<RagQuery>& mutable_queries() { return queries_; }
  const Fact& fact(int32_t id) const;
  bool has_fact(int32_t id) const { return facts_.count(id) > 0; }
  size_t num_facts() const { return facts_.size(); }

 private:
  DatasetProfile profile_;
  std::unique_ptr<VectorDatabase> db_;
  std::vector<RagQuery> queries_;
  std::unordered_map<int32_t, Fact> facts_;
};

class DatasetGenerator {
 public:
  DatasetGenerator(DatasetProfile profile, uint64_t seed);

  // Generates `num_queries` queries plus their corpus, embedded (in one
  // EmbedBatch sharded over a worker pool) and indexed with the given
  // embedding model. `index_options` picks the retrieval backend the
  // dataset's VectorDatabase builds (exact flat by default; IVF + shard
  // count for retrieval-depth experiments) — the index is finalized
  // (IVF-trained) before the dataset is returned.
  std::unique_ptr<Dataset> Generate(int num_queries, const std::string& embedding_model_name,
                                    const RetrievalIndexOptions& index_options = {});

 private:
  DatasetProfile profile_;
  uint64_t seed_;
};

// Open-loop Poisson arrival times: `n` arrivals at `rate` per second.
std::vector<SimTime> PoissonArrivalTimes(Rng& rng, int n, double rate);

// Assigns arrival times to queries in place.
void AssignPoissonArrivals(std::vector<RagQuery>& queries, double rate, uint64_t seed);

// Sequential (closed-loop) arrivals are represented by arrival_time = 0 and
// are driven by the runner; this marks them.
void AssignSequentialArrivals(std::vector<RagQuery>& queries);

// --- Non-Poisson arrival processes (overload workloads) ---------------------
//
// The paper replays one well-behaved open-loop Poisson trace; overload
// control needs traffic that *exceeds* capacity in realistic shapes. Three
// generators join AssignPoissonArrivals, all deterministic per seed and all
// parameterized by the same mean `rate` so "offered load" stays comparable
// across shapes:
//
//   kBursty:     two-state Markov-modulated Poisson (on/off). Bursts arrive
//                at rate * burst_factor for an exponential on-period, then a
//                quiet off-period whose rate is chosen so the long-run mean
//                stays `rate` (off-rate clamps at 0 when burst_factor >
//                1/burst_fraction — the mean is then slightly below `rate`).
//   kDiurnal:    sinusoidal rate modulation rate(t) = rate * (1 +
//                amplitude * sin(2*pi*t / period)), via thinning against the
//                peak rate — a compressed day/night cycle.
//   kFlashCrowd: baseline Poisson at `rate` with one spike window
//                [flash_start_s, flash_start_s + flash_duration_s] during
//                which the rate multiplies by flash_factor — the
//                past-saturation regime the degradation ladder exists for.
enum class ArrivalKind { kPoisson, kBursty, kDiurnal, kFlashCrowd };

const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kPoisson;
  // kBursty:
  double burst_factor = 3.0;     // In-burst rate multiplier (> 1).
  double burst_fraction = 0.25;  // Long-run fraction of time in burst state.
  double mean_cycle_s = 40.0;    // Mean on+off cycle length (s).
  // kDiurnal:
  double diurnal_period_s = 120.0;
  double diurnal_amplitude = 0.8;  // In [0, 1].
  // kFlashCrowd:
  double flash_start_s = 20.0;
  double flash_duration_s = 15.0;
  double flash_factor = 8.0;
};

// `n` arrival times under `process` at mean rate `rate`, strictly increasing,
// deterministic per Rng state. kPoisson reproduces PoissonArrivalTimes on the
// same Rng bit for bit.
std::vector<SimTime> ArrivalTimesFor(const ArrivalProcess& process, Rng& rng, int n,
                                     double rate);

// Assigns arrival times under `process` in place. kPoisson is bit-identical
// to AssignPoissonArrivals(queries, rate, seed) — the runner routes every
// spec through this entry point, so the default spec replays the historical
// stream exactly.
void AssignArrivals(std::vector<RagQuery>& queries, const ArrivalProcess& process,
                    double rate, uint64_t seed);

}  // namespace metis

#endif  // METIS_SRC_WORKLOAD_DATASET_H_
