// Model catalog: resource and quality envelopes of the LLMs the paper serves.
//
// The reproduction never runs a neural network; a model is its envelope:
//   - memory:   weight footprint and KV-cache bytes per token (from public
//               model configs: layers x kv_heads x head_dim x fp16 x 2),
//   - speed:    prefill token rate, per-step overhead (decode rate), and the
//               quadratic attention coefficients, calibrated to public A40
//               serving measurements,
//   - quality:  base fact-recovery probability and reasoning factor used by
//               the generation behaviour model,
//   - price:    $ per token (API models) or $ per GPU-second (self-hosted).

#ifndef METIS_SRC_LLM_MODEL_SPEC_H_
#define METIS_SRC_LLM_MODEL_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

namespace metis {

struct ModelSpec {
  std::string name;

  // --- Memory ---
  double weight_bytes = 0;         // Quantized weight footprint.
  double kv_bytes_per_token = 0;   // fp16 KV cache per token.

  // --- Speed (per engine step) ---
  double prefill_tokens_per_sec = 0;  // Linear prefill compute rate.
  double step_overhead_sec = 0;       // Weight-read time; bounds decode rate.
  // Attention cost: prefilling a token at context position p adds
  // attn_prefill_coeff * p seconds; each decode step over context L adds
  // attn_decode_coeff * L seconds. These make long stuff prompts superlinear.
  double attn_prefill_coeff = 0;
  double attn_decode_coeff = 0;

  int max_context_tokens = 32768;

  // --- Quality (behaviour model inputs) ---
  double fact_recovery = 0.85;   // P(recover a clean, salient fact in context).
  double reasoning_factor = 0.9; // Multiplier on joint-reasoning success.

  // --- Price ---
  bool api_model = false;         // True: priced per token; false: per GPU-sec.
  double usd_per_1m_input_tokens = 0;
  double usd_per_1m_output_tokens = 0;
  double usd_per_gpu_sec = 0;
  int num_gpus = 1;

  // API latency model (api_model only): rtt + tokens/rate.
  double api_rtt_sec = 0;
  double api_prefill_tokens_per_sec = 0;
  double api_decode_tokens_per_sec = 0;
};

// Serving models.
ModelSpec Mistral7BAwq();    // Primary inference model (1x A40).
ModelSpec Llama70BAwq();     // Larger inference model (2x A40), Fig. 15.
// Profiler / comparison API models.
ModelSpec Gpt4oApi();        // Default profiler.
ModelSpec Llama70BApi();     // Open-source profiler alternative (Fig. 17).
ModelSpec Gpt4oServing();    // GPT-4o as the serving model (Fig. 13).

// Catalog lookup by name; aborts on unknown names.
const ModelSpec& GetModelSpec(std::string_view name);
const std::vector<ModelSpec>& ModelCatalog();

// KV bytes/token from an architecture (2 * layers * kv_heads * head_dim * 2B).
double KvBytesPerToken(int layers, int kv_heads, int head_dim);

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace metis

#endif  // METIS_SRC_LLM_MODEL_SPEC_H_
