// Paged KV-cache manager (PagedAttention-style block allocator).
//
// The GPU's KV pool is divided into fixed-size token blocks. Each running
// request owns a chain of blocks covering its prompt + generated tokens.
// Prefix sharing lets requests in the same prefix group alias the blocks that
// hold their shared instruction prefix (refcounted), which is how the Parrot*
// baseline and METIS save both prefill compute and memory on sibling calls.

#ifndef METIS_SRC_LLM_KV_CACHE_H_
#define METIS_SRC_LLM_KV_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace metis {

class KvCacheManager {
 public:
  // pool_bytes: KV budget (GPU memory after weights); block_tokens: tokens per
  // block; kv_bytes_per_token: from the model spec.
  KvCacheManager(double pool_bytes, int block_tokens, double kv_bytes_per_token);

  // Number of whole blocks needed to hold `tokens` tokens.
  int64_t BlocksForTokens(int64_t tokens) const;

  // Bytes that `tokens` tokens occupy after block rounding.
  double BytesForTokens(int64_t tokens) const;

  int64_t total_blocks() const { return total_blocks_; }
  int64_t free_blocks() const { return total_blocks_ - used_blocks_; }
  double free_bytes() const { return static_cast<double>(free_blocks()) * block_bytes_; }
  double total_bytes() const { return static_cast<double>(total_blocks_) * block_bytes_; }
  double block_bytes() const { return block_bytes_; }
  int block_tokens() const { return block_tokens_; }

  // Reserves blocks for `tokens` tokens for request `req`. Returns false
  // (without side effects) if the pool cannot satisfy the reservation.
  bool Allocate(uint64_t req, int64_t tokens);

  // Extends request `req` by `extra_tokens` (decode growth). Only allocates
  // new blocks when the request crosses a block boundary.
  bool Extend(uint64_t req, int64_t extra_tokens);

  // Releases everything owned by `req` (no-op if unknown).
  void Free(uint64_t req);

  // --- Prefix sharing ---
  // Acquires the shared prefix of `group` covering `tokens` tokens. The first
  // caller pays the blocks; later callers just bump the refcount. Returns the
  // number of *newly allocated* blocks (0 on a cache hit), or -1 if the pool
  // is out of space.
  int64_t AcquirePrefix(uint64_t group, int64_t tokens);
  // Drops one reference; frees the blocks when the last reference goes away.
  void ReleasePrefix(uint64_t group);
  // True if the group's prefix is resident (someone holds it).
  bool PrefixResident(uint64_t group) const;

  // Observability.
  int64_t used_blocks() const { return used_blocks_; }
  size_t live_requests() const { return owned_.size(); }

 private:
  int block_tokens_;
  double block_bytes_;
  int64_t total_blocks_;
  int64_t used_blocks_ = 0;

  struct Owned {
    int64_t tokens = 0;
    int64_t blocks = 0;
  };
  std::unordered_map<uint64_t, Owned> owned_;

  struct Prefix {
    int64_t blocks = 0;
    int refs = 0;
  };
  std::unordered_map<uint64_t, Prefix> prefixes_;
};

}  // namespace metis

#endif  // METIS_SRC_LLM_KV_CACHE_H_
