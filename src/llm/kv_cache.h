// Paged KV-cache manager (PagedAttention-style block allocator).
//
// The GPU's KV pool is divided into fixed-size token blocks. Each running
// request owns a chain of blocks covering its prompt + generated tokens.
// Prefix sharing lets requests in the same prefix group alias the blocks that
// hold their shared instruction prefix (refcounted), which is how the Parrot*
// baseline and METIS save both prefill compute and memory on sibling calls.
//
// Prefix LRU retention (cross-query KV reuse): with ReleasePrefixRetained,
// a prefix whose last reference drops is parked on a retained list instead of
// freed — its blocks stay resident (counted as used, but reclaimable) so a
// later request in the same group revives it and skips the shared prefill.
// Retained prefixes are evicted oldest-release-first whenever an allocation
// needs the room, and ExpireRetained frees the ones older than the engine's
// grace window. A manager that only ever uses ReleasePrefix (the eager path)
// never parks anything and behaves bit-identically to the pre-retention code.

#ifndef METIS_SRC_LLM_KV_CACHE_H_
#define METIS_SRC_LLM_KV_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace metis {

class KvCacheManager {
 public:
  // pool_bytes: KV budget (GPU memory after weights); block_tokens: tokens per
  // block; kv_bytes_per_token: from the model spec.
  KvCacheManager(double pool_bytes, int block_tokens, double kv_bytes_per_token);

  // Number of whole blocks needed to hold `tokens` tokens.
  int64_t BlocksForTokens(int64_t tokens) const;

  // Bytes that `tokens` tokens occupy after block rounding.
  double BytesForTokens(int64_t tokens) const;

  int64_t total_blocks() const { return total_blocks_; }
  int64_t free_blocks() const { return total_blocks_ - used_blocks_; }
  double free_bytes() const { return static_cast<double>(free_blocks()) * block_bytes_; }
  double total_bytes() const { return static_cast<double>(total_blocks_) * block_bytes_; }
  double block_bytes() const { return block_bytes_; }
  int block_tokens() const { return block_tokens_; }

  // Reserves blocks for `tokens` tokens for request `req`. Returns false
  // (without side effects) if the pool cannot satisfy the reservation even
  // after evicting every retained prefix.
  bool Allocate(uint64_t req, int64_t tokens);

  // Extends request `req` by `extra_tokens` (decode growth). Only allocates
  // new blocks when the request crosses a block boundary.
  bool Extend(uint64_t req, int64_t extra_tokens);

  // Releases everything owned by `req` (no-op if unknown).
  void Free(uint64_t req);

  // --- Prefix sharing ---
  // Acquires the shared prefix of `group` covering `tokens` tokens. The first
  // caller pays the blocks; later callers just bump the refcount, and a
  // retained (refs==0, still resident) prefix is revived off the LRU list.
  // Returns the number of *newly allocated* blocks (0 on a cache hit), or -1
  // if the pool is out of space.
  int64_t AcquirePrefix(uint64_t group, int64_t tokens);
  // Drops one reference; frees the blocks when the last reference goes away.
  void ReleasePrefix(uint64_t group);
  // Drops one reference; at refcount zero the blocks are PARKED (retained,
  // reclaimable) instead of freed, stamped with `now` for ExpireRetained.
  void ReleasePrefixRetained(uint64_t group, double now);
  // Frees every retained prefix released at or before `cutoff` (the engine
  // calls this each step with now - grace_window).
  void ExpireRetained(double cutoff);
  // True if the group's prefix is resident — referenced OR retained; either
  // way an admission in this group skips the shared prefill.
  bool PrefixResident(uint64_t group) const;
  // True if the group's prefix is resident with zero references (parked).
  bool PrefixRetained(uint64_t group) const;

  // Observability.
  int64_t used_blocks() const { return used_blocks_; }
  size_t live_requests() const { return owned_.size(); }
  // Blocks/bytes held by retained (refs==0) prefixes. They count as used but
  // are reclaimable on demand, so "obtainable" headroom = free + retained.
  int64_t retained_blocks() const { return retained_blocks_; }
  double retained_bytes() const { return static_cast<double>(retained_blocks_) * block_bytes_; }
  uint64_t retained_evictions() const { return retained_evictions_; }
  uint64_t retained_expirations() const { return retained_expirations_; }
  uint64_t retained_revivals() const { return retained_revivals_; }

 private:
  // Evicts retained prefixes (oldest release first) until `blocks` fit in
  // free_blocks() or nothing retained is left.
  void EvictRetainedFor(int64_t blocks);
  void DropRetained(uint64_t group);

  int block_tokens_;
  double block_bytes_;
  int64_t total_blocks_;
  int64_t used_blocks_ = 0;

  struct Owned {
    int64_t tokens = 0;
    int64_t blocks = 0;
  };
  std::unordered_map<uint64_t, Owned> owned_;

  struct Prefix {
    int64_t blocks = 0;
    int refs = 0;
    uint64_t retained_seq = 0;  // Nonzero while parked on the retained list.
    double released_at = 0;     // Stamp of the release that parked it.
  };
  std::unordered_map<uint64_t, Prefix> prefixes_;

  // Release-order index over parked prefixes: seq -> group. Monotone seq
  // makes LRU eviction and expiry deterministic (release order == time order
  // under a monotone clock).
  std::map<uint64_t, uint64_t> retained_;
  int64_t retained_blocks_ = 0;
  uint64_t retained_seq_counter_ = 0;
  uint64_t retained_evictions_ = 0;
  uint64_t retained_expirations_ = 0;
  uint64_t retained_revivals_ = 0;
};

}  // namespace metis

#endif  // METIS_SRC_LLM_KV_CACHE_H_
