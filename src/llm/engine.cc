#include "src/llm/engine.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace metis {

LlmEngine::LlmEngine(Simulator* sim, EngineConfig config, uint64_t /*seed*/)
    : sim_(sim),
      config_(std::move(config)),
      kv_(config_.kv_pool_bytes, config_.block_tokens, config_.model.kv_bytes_per_token) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK_GT(config_.max_batched_tokens, 0);
  METIS_CHECK_GT(config_.max_running, 0);
}

double LlmEngine::BytesNeededFor(int prompt_tokens, int output_tokens) const {
  return kv_.BytesForTokens(prompt_tokens + output_tokens) +
         config_.admit_buffer_frac * kv_.total_bytes();
}

double LlmEngine::RetentionS() const {
  if (!config_.adaptive_prefix_retention || prefix_interarrival_ewma_ <= 0) {
    return config_.prefix_retention_s;  // Fixed window (bit-parity when off).
  }
  return std::clamp(config_.adaptive_retention_mult * prefix_interarrival_ewma_,
                    config_.adaptive_retention_min_s, config_.adaptive_retention_max_s);
}

double LlmEngine::oldest_waiting_age() const {
  // The queue is submit-ordered (push_back in Submit; group-aware admission
  // may remove from the middle but never reorders), so the front is the
  // earliest-submitted request still waiting.
  if (waiting_.empty()) {
    return 0;
  }
  return sim_->now() - waiting_.front()->timing.submit_time;
}

double LlmEngine::projected_free_kv_bytes() const {
  // Mirror AdmitIfFits's accounting instead of charging every waiting request
  // its full prompt + output: a request with a shared prefix only ever owns
  // its tail (prompt - shared + output, block-rounded separately from the
  // prefix), the prefix itself is paid once per group, and not at all when it
  // is already resident. Charging N queued siblings the full prefix each
  // under-reports headroom under grouped load, which made the overload
  // controller's KV-deficit term over-shed.
  double claimed = 0;
  std::unordered_set<uint64_t> counted_groups;
  for (const auto& rq : waiting_) {
    int shared = 0;
    if (config_.prefix_sharing && rq->req.prefix_group != 0 &&
        rq->req.shared_prefix_tokens > 0) {
      shared = rq->req.shared_prefix_tokens;
      if (!kv_.PrefixResident(rq->req.prefix_group) &&
          counted_groups.insert(rq->req.prefix_group).second) {
        claimed += kv_.BytesForTokens(shared);  // First sibling pays the prefix.
      }
    }
    claimed += kv_.BytesForTokens(rq->req.prompt_tokens - shared + rq->req.output_tokens);
  }
  return kv_.free_bytes() + kv_.retained_bytes() - claimed;
}

uint64_t LlmEngine::Submit(InferenceRequest request) {
  METIS_CHECK_GT(request.prompt_tokens, 0);
  METIS_CHECK_GT(request.output_tokens, 0);
  METIS_CHECK_LE(request.shared_prefix_tokens, request.prompt_tokens);
  // A request must be satisfiable by an empty pool, or it would block forever.
  METIS_CHECK_LE(kv_.BytesForTokens(request.prompt_tokens + request.output_tokens),
                 kv_.total_bytes());

  if (config_.adaptive_prefix_retention && config_.prefix_sharing &&
      request.prefix_group != 0 && request.shared_prefix_tokens > 0) {
    // Hot-prefix inter-arrival EWMA: a repeat of a known prefix group is
    // exactly the event retention exists to catch, so its arrival cadence is
    // the right horizon to retain for (RetentionS). Guarded by the adaptive
    // flag so the default engine does zero extra work.
    auto [it, first_time] = prefix_last_seen_.try_emplace(request.prefix_group, sim_->now());
    if (!first_time) {
      double gap = sim_->now() - it->second;
      it->second = sim_->now();
      constexpr double kAlpha = 0.2;
      prefix_interarrival_ewma_ = prefix_interarrival_ewma_ <= 0
                                      ? gap
                                      : (1.0 - kAlpha) * prefix_interarrival_ewma_ + kAlpha * gap;
    }
  }

  auto rq = std::make_unique<Rq>();
  rq->id = next_id_++;
  rq->req = std::move(request);
  rq->timing.id = rq->id;
  rq->timing.submit_time = sim_->now();
  rq->timing.prompt_tokens = rq->req.prompt_tokens;
  rq->timing.output_tokens = rq->req.output_tokens;
  uint64_t id = rq->id;
  waiting_.push_back(std::move(rq));
  ++stats_.submitted;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth,
                                     static_cast<uint64_t>(waiting_.size()));
  Kick();
  return id;
}

void LlmEngine::Kick() {
  if (!step_in_flight_) {
    PlanStep();
  }
}

bool LlmEngine::AdmitIfFits(Rq* rq) {
  if (running_.size() >= static_cast<size_t>(config_.max_running)) {
    return false;
  }

  // Pool-otherwise-empty probe BEFORE acquiring this request's own prefix:
  // the admission buffer exists to absorb concurrent decode growth, and with
  // no running request and no live allocation nothing else can grow. Without
  // the waiver below, a request needing between total - buffer and total
  // bytes passes Submit's satisfiability check yet can never admit — a
  // permanent head-of-line livelock.
  bool pool_otherwise_empty = running_.empty() && kv_.live_requests() == 0;

  int shared = 0;
  bool holds_prefix = false;
  bool prefix_was_resident = false;
  bool prefix_was_retained = false;
  if (config_.prefix_sharing && rq->req.prefix_group != 0 && rq->req.shared_prefix_tokens > 0) {
    prefix_was_resident = kv_.PrefixResident(rq->req.prefix_group);
    prefix_was_retained = kv_.PrefixRetained(rq->req.prefix_group);
    int64_t newly = kv_.AcquirePrefix(rq->req.prefix_group, rq->req.shared_prefix_tokens);
    if (newly < 0) {
      return false;
    }
    holds_prefix = true;
    shared = rq->req.shared_prefix_tokens;
  }

  // The first sibling computes the prefix; later siblings skip those tokens.
  int charged = prefix_was_resident ? rq->req.prompt_tokens - shared : rq->req.prompt_tokens;
  int owned_tokens = (rq->req.prompt_tokens - shared) + rq->req.output_tokens;

  double buffer = pool_otherwise_empty ? 0.0 : config_.admit_buffer_frac * kv_.total_bytes();
  // Retained (refs==0) prefixes count toward the fit: the allocator evicts
  // them on demand, so they are headroom, not occupancy.
  bool fits = kv_.BytesForTokens(owned_tokens) + buffer <=
              kv_.free_bytes() + kv_.retained_bytes();
  if (fits) {
    fits = kv_.Allocate(rq->id, owned_tokens);
  }
  if (!fits) {
    if (holds_prefix) {
      if (prefix_was_resident && RetentionS() > 0) {
        // Keep a warm (already-prefilled) prefix parked instead of destroying
        // it just because this admission attempt failed.
        kv_.ReleasePrefixRetained(rq->req.prefix_group, sim_->now());
      } else {
        kv_.ReleasePrefix(rq->req.prefix_group);
      }
    }
    return false;
  }

  if (prefix_was_resident) {
    stats_.prefill_tokens_saved += shared;
    ++stats_.prefix_hits;
    if (prefix_was_retained) {
      ++stats_.retained_prefix_hits;
    }
  }
  rq->holds_prefix = holds_prefix;
  rq->charged_prefill = charged;
  rq->prefilled = 0;
  rq->generated = 0;
  rq->timing.admit_time = sim_->now();
  rq->timing.prefill_tokens_charged = charged;
  double used = kv_.total_bytes() - kv_.free_bytes();
  stats_.peak_kv_bytes = std::max(stats_.peak_kv_bytes, used);
  return true;
}

bool LlmEngine::PrefillBacklogFull() const {
  // Admission stops once the admitted-but-unprefilled token backlog covers a
  // few steps of compute. Without this, queued requests would reserve KV long
  // before the GPU can touch them, pinning "free memory" at zero under load —
  // real engines allocate as computation progresses, so free memory tracks
  // the active working set (decoding incumbents + imminent prefill).
  int64_t backlog = 0;
  for (const auto& rq : running_) {
    backlog += rq->charged_prefill - rq->prefilled;
  }
  return backlog >= static_cast<int64_t>(2) * config_.max_batched_tokens;
}

void LlmEngine::PlanStep() {
  METIS_CHECK(!step_in_flight_);
  stats_.peak_queue_age_s = std::max(stats_.peak_queue_age_s, oldest_waiting_age());
  double retention_s = RetentionS();
  if (retention_s > 0) {
    // Retained prefixes past the grace window stop earning their keep.
    kv_.ExpireRetained(sim_->now() - retention_s);
    stats_.retained_evictions = kv_.retained_evictions();
    stats_.retained_expirations = kv_.retained_expirations();
  }

  // --- Admission ---
  bool progressed = true;
  while (progressed && !waiting_.empty() && !PrefillBacklogFull()) {
    progressed = false;
    Rq* head = waiting_.front().get();
    if (AdmitIfFits(head)) {
      running_.push_back(std::move(waiting_.front()));
      waiting_.pop_front();
      progressed = true;
      continue;
    }
    if (config_.policy == AdmissionPolicy::kGroupAware) {
      // Head does not fit: look a bounded distance down the queue for a
      // sibling whose shared prefix is already resident — it is cheap (its
      // prefix KV is free) and keeps the GPU busy instead of head-of-line
      // blocking. This is the Parrot*-style app-aware batching.
      constexpr size_t kScanLimit = 32;
      size_t limit = std::min(waiting_.size(), kScanLimit);
      for (size_t i = 1; i < limit; ++i) {
        Rq* cand = waiting_[i].get();
        if (cand->req.prefix_group != 0 && kv_.PrefixResident(cand->req.prefix_group) &&
            AdmitIfFits(cand)) {
          running_.push_back(std::move(waiting_[i]));
          waiting_.erase(waiting_.begin() + static_cast<int64_t>(i));
          progressed = true;
          break;
        }
      }
    }
  }

  if (running_.empty()) {
    return;  // Idle; the next Submit() kicks the loop again.
  }

  // --- Step composition: decodes first, then chunked prefill. ---
  struct PrefillSlice {
    Rq* rq;
    int chunk;
    int start_pos;  // Context length before this slice (incl. shared prefix).
  };
  std::vector<Rq*> decoding;
  std::vector<PrefillSlice> slices;
  int budget = config_.max_batched_tokens;

  for (auto& rq : running_) {
    if (rq->prefilled >= rq->charged_prefill) {
      decoding.push_back(rq.get());
    }
  }
  budget -= static_cast<int>(decoding.size());
  budget = std::max(budget, 0);

  for (auto& rq : running_) {
    if (budget == 0) {
      break;
    }
    int remaining = rq->charged_prefill - rq->prefilled;
    if (remaining > 0) {
      int chunk = std::min(remaining, budget);
      int skipped = rq->req.prompt_tokens - rq->charged_prefill;  // Shared-prefix discount.
      slices.push_back(PrefillSlice{rq.get(), chunk, skipped + rq->prefilled});
      budget -= chunk;
    }
  }

  // --- Step latency ---
  const ModelSpec& m = config_.model;
  double prefill_tokens = 0;
  double attn = 0;
  for (const auto& s : slices) {
    prefill_tokens += s.chunk;
    // Each token at position p attends over p tokens: sum over the slice is
    // chunk * (start + chunk/2).
    attn += m.attn_prefill_coeff * s.chunk *
            (static_cast<double>(s.start_pos) + static_cast<double>(s.chunk) / 2.0);
  }
  for (const Rq* rq : decoding) {
    double ctx = rq->req.prompt_tokens + rq->generated;
    attn += m.attn_decode_coeff * ctx;
  }
  double linear = (prefill_tokens + static_cast<double>(decoding.size())) /
                  m.prefill_tokens_per_sec;
  double step_time = m.step_overhead_sec + linear + attn;

  ++stats_.steps;
  stats_.busy_seconds += step_time;
  stats_.prefill_tokens += static_cast<int64_t>(prefill_tokens);
  stats_.decode_tokens += static_cast<int64_t>(decoding.size());

  step_in_flight_ = true;
  // Record just ids; requests cannot disappear while a step is in flight.
  std::vector<Rq*> decode_set = decoding;
  std::vector<std::pair<Rq*, int>> prefill_set;
  prefill_set.reserve(slices.size());
  for (const auto& s : slices) {
    prefill_set.emplace_back(s.rq, s.chunk);
  }

  sim_->ScheduleAfter(step_time, [this, decode_set, prefill_set]() {
    // --- Apply step results ---
    for (auto& [rq, chunk] : prefill_set) {
      rq->prefilled += chunk;
      METIS_CHECK_LE(rq->prefilled, rq->charged_prefill);
      if (rq->prefilled == rq->charged_prefill) {
        // The final prefill chunk emits the first output token.
        rq->timing.first_token_time = sim_->now();
        rq->generated = 1;
      }
    }
    for (Rq* rq : decode_set) {
      ++rq->generated;
    }

    // Collect completions (preserve relative order for determinism).
    std::vector<std::unique_ptr<Rq>> done;
    for (auto& rq : running_) {
      if (rq->prefilled >= rq->charged_prefill && rq->generated >= rq->req.output_tokens) {
        done.push_back(std::move(rq));
      }
    }
    running_.erase(std::remove(running_.begin(), running_.end(), nullptr), running_.end());

    // Completion callbacks may Submit follow-up requests (e.g. the reduce
    // stage); keep the step marked in-flight so their Kick() is a no-op and
    // the single PlanStep below sees all of them.
    for (auto& rq : done) {
      Complete(std::move(rq));
    }
    step_in_flight_ = false;
    PlanStep();
  });
}

void LlmEngine::Complete(std::unique_ptr<Rq> rq) {
  rq->timing.finish_time = sim_->now();
  if (rq->timing.first_token_time == 0 && rq->timing.finish_time > 0) {
    rq->timing.first_token_time = rq->timing.finish_time;
  }
  kv_.Free(rq->id);
  if (rq->holds_prefix) {
    if (RetentionS() > 0) {
      kv_.ReleasePrefixRetained(rq->req.prefix_group, sim_->now());
    } else {
      kv_.ReleasePrefix(rq->req.prefix_group);
    }
  }
  ++stats_.completed;
  if (rq->req.on_complete) {
    rq->req.on_complete(rq->timing);
  }
}

double LlmEngine::busy_cost_usd() const {
  return stats_.busy_seconds * config_.model.usd_per_gpu_sec * config_.model.num_gpus;
}

ApiLlmClient::ApiLlmClient(Simulator* sim, ModelSpec model, uint64_t seed)
    : sim_(sim), model_(std::move(model)), seed_(seed) {
  METIS_CHECK(sim != nullptr);
  METIS_CHECK(model_.api_model);
}

double ApiLlmClient::CostOf(int input_tokens, int output_tokens) const {
  return input_tokens * model_.usd_per_1m_input_tokens / 1e6 +
         output_tokens * model_.usd_per_1m_output_tokens / 1e6;
}

void ApiLlmClient::Call(int input_tokens, int output_tokens,
                        std::function<void(double)> done, double billed_input_frac) {
  METIS_CHECK_GE(input_tokens, 0);
  METIS_CHECK_GE(output_tokens, 0);
  Rng rng(seed_ ^ (0xA5A5A5A5ull + calls_ * 0x9E3779B97F4A7C15ull));
  double latency = model_.api_rtt_sec +
                   input_tokens / std::max(1.0, model_.api_prefill_tokens_per_sec) +
                   output_tokens / std::max(1.0, model_.api_decode_tokens_per_sec);
  latency *= std::max(0.6, 1.0 + rng.Normal(0, 0.08));
  ++calls_;
  total_cost_usd_ += CostOf(static_cast<int>(input_tokens * billed_input_frac),
                            output_tokens);
  sim_->ScheduleAfter(latency, [latency, cb = std::move(done)]() { cb(latency); });
}

}  // namespace metis
